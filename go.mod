module hrtsched

go 1.22
