package hrtsched_test

import (
	"testing"

	hrtsched "hrtsched"
	"hrtsched/internal/legion"
)

// TestConstructorArgumentErrors checks that invalid arguments to the public
// run-time constructors surface as errors, not panics.
func TestConstructorArgumentErrors(t *testing.T) {
	spec := hrtsched.PhiKNL()
	spec.NumCPUs = 4
	m := hrtsched.NewMachine(spec, 1)
	k := hrtsched.Boot(m, hrtsched.DefaultConfig(spec))

	if _, err := hrtsched.NewGroup(k, "bad", 0, hrtsched.DefaultGroupCosts()); err == nil {
		t.Error("NewGroup with size 0 returned no error")
	}
	if _, err := hrtsched.NewOMPTeam(k, hrtsched.OMPConfig{Workers: 0}); err == nil {
		t.Error("NewOMPTeam with 0 workers returned no error")
	}
	if _, err := hrtsched.NewOMPTeam(k, hrtsched.OMPConfig{
		Workers: 2, FirstCPU: 1, Sync: hrtsched.OMPSyncTimed,
	}); err == nil {
		t.Error("NewOMPTeam with timed sync but no periodic constraints returned no error")
	}
	if _, err := hrtsched.NewLegion(k, legion.Config{Workers: 0}); err == nil {
		t.Error("NewLegion with 0 workers returned no error")
	}

	// Valid arguments still construct.
	if _, err := hrtsched.NewGroup(k, "ok", 2, hrtsched.DefaultGroupCosts()); err != nil {
		t.Errorf("NewGroup with valid size errored: %v", err)
	}
}
