// Package hrtsched is a reproduction, as a Go library, of "Hard Real-time
// Scheduling for Parallel Run-time Systems" (Dinda, Wang, Wang, Beauchene,
// Hetland — HPDC 2018): a hard real-time scheduler for node-level parallel
// systems, built in the Nautilus hybrid run-time kernel framework and
// evaluated on the Intel Xeon Phi.
//
// Because a garbage-collected Go runtime cannot itself be a bare-metal hard
// real-time kernel, the library reimplements the paper's entire software
// stack — the per-CPU eager-EDF local schedulers, admission control with
// utilization limits and reservations, thread groups with distributed
// admission and phase correction, tasks, work stealing, and the BSP
// microbenchmark — on top of a deterministic, cycle-resolution simulation
// of the hardware platform (TSCs with boot skew, APIC one-shot timers,
// IPIs, steerable device interrupts, and SMI "missing time"). Every
// algorithm is the paper's; only the physics is simulated. See DESIGN.md
// for the substitution table and EXPERIMENTS.md for paper-vs-measured
// results on every figure.
//
// This package is a facade: it re-exports the stable public surface of the
// internal packages so that library consumers have a single import.
//
//	spec := hrtsched.PhiKNL()
//	m := hrtsched.NewMachine(spec, 42)
//	k := hrtsched.Boot(m, hrtsched.DefaultConfig(spec))
//	th := k.Spawn("worker", 1, hrtsched.ProgramFunc(func(tc *hrtsched.ThreadCtx) hrtsched.Action {
//	    return hrtsched.Compute{Cycles: 20_000}
//	}))
//	k.RunNs(50_000_000)
//
// # Constructors
//
// Fallible constructors follow one convention across the whole surface:
// NewX(...) (*X, error) validates its arguments and returns an error —
// use it whenever the inputs come from configuration or callers; and
// MustNewX(...) *X is the same constructor for statically-correct call
// sites (literal sizes, compile-time configs), panicking on error the way
// regexp.MustCompile does. Every MustNewX is exactly NewX with the error
// turned into a panic — never a different code path. Infallible
// constructors (NewMachine, NewIncrementalPlan, NewMetricsRegistry, …)
// return the value alone and have no Must variant.
//
// # Cancellation and deprecation
//
// Service methods that can queue, block, or shed take a context.Context
// and carry the Context suffix (AnalyzeContext, CapacityContext,
// AnalyzeBatchContext); batched forms answer many items per call with
// each item bit-identical to its single-item twin. Context-less variants
// of the same operations are retained only as deprecated shims over the
// *Context forms — they behave identically with context.Background() —
// and new code should call the *Context form directly. The same policy
// governs the HTTP surface: a retired route answers 410 Gone with a Link
// header naming its /v1 successor rather than silently vanishing.
//
// The cmd/hrtbench tool regenerates every figure of the paper's evaluation;
// cmd/scopeview renders the oscilloscope verification; cmd/sweep runs
// individual BSP benchmark points; cmd/hrtd serves the analysis over HTTP
// (see the v1 API contract in DESIGN.md) and cmd/hrtload load-tests it.
package hrtsched
