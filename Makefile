GO ?= go

.PHONY: ci build vet test race planverify chaos bench bench-engine bench-record engine-bench-smoke serve-smoke cluster-smoke

# ci is the tier-1 gate: every change must pass vet, build, the race-
# enabled test suite, the planverify cross-check, the engine benchmark
# smoke, and both serving-layer smokes before it lands (see README
# "Testing").
ci: vet build race planverify engine-bench-smoke serve-smoke cluster-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# planverify rebuilds the admission layers with the verification tag on,
# so every Incremental verdict is asserted bit-identical to a fresh full
# Analyze of the same candidate, under the race detector.
planverify:
	$(GO) vet -tags planverify ./internal/plan ./internal/serve
	$(GO) test -race -tags planverify ./internal/plan ./internal/serve

# chaos smoke-runs every fault-injection scenario at a fixed seed and fails
# on any invariant violation.
chaos:
	@for s in smi-storm irq-storm drift overload-shed; do \
		echo "== chaos $$s =="; \
		$(GO) run ./cmd/chaos -scenario $$s -seed 7 || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-engine runs the event-engine microbenchmarks, rewrite and legacy
# reference side by side.
bench-engine:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkEngine|BenchmarkLegacy|BenchmarkFreeze' -benchmem

# bench-record regenerates the committed benchmark trajectory artifact
# (BENCH_PR4.json): engine microbenchmarks plus the Quick figure-suite
# wall-clock, as machine-readable JSON.
bench-record:
	$(GO) run ./cmd/benchrecord -o BENCH_PR4.json

# engine-bench-smoke compiles and exercises every engine benchmark for a
# fixed 100 iterations — fast enough for ci, and it catches benchmarks
# that panic or assert without paying for stable timings.
engine-bench-smoke:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkEngine' -benchtime 100x

# serve-smoke boots hrtd on an ephemeral port, drives it with hrtload for
# two seconds, and fails on any hard error or a cache that never hits.
serve-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "serve-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -dur 2s -conns 16 -check

# cluster-smoke boots hrtd with a 4-node placement cluster, drives the
# v1 cluster endpoints with hrtload in cluster mode for two seconds, and
# fails unless placements both succeeded and showed up in /metrics.
cluster-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -policy worst-fit >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "cluster-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode cluster -dur 2s -conns 8 -check
