GO ?= go

.PHONY: ci build vet test race chaos bench

# ci is the tier-1 gate: every change must pass vet, build and the race-
# enabled test suite before it lands (see README "Testing").
ci: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos smoke-runs every fault-injection scenario at a fixed seed and fails
# on any invariant violation.
chaos:
	@for s in smi-storm irq-storm drift overload-shed; do \
		echo "== chaos $$s =="; \
		$(GO) run ./cmd/chaos -scenario $$s -seed 7 || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchmem ./...
