GO ?= go

.PHONY: ci build vet test race planverify perf-gate chaos bench bench-engine bench-record bench-record-pr5 bench-record-pr7 bench-record-pr8 bench-record-pr9 bench-record-pr10 engine-bench-smoke serve-smoke cluster-smoke batch-smoke recovery-smoke failover-smoke dag-smoke shard-smoke simulate-smoke

# ci is the tier-1 gate: every change must pass vet, build, the race-
# enabled test suite, the planverify cross-check, the non-race perf
# gates, the engine benchmark smoke, and the serving-layer smokes —
# including the kill -9 recovery, leader-failover, DAG-recovery,
# batched-placement, sharded-router, and what-if simulation smokes —
# before it lands (see README "Testing").
ci: vet build race planverify perf-gate engine-bench-smoke serve-smoke cluster-smoke batch-smoke recovery-smoke failover-smoke dag-smoke shard-smoke simulate-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# perf-gate runs the wall-clock throughput gates without the race
# detector (whose several-fold slowdown would measure the
# instrumentation, not the code — the gates skip themselves under -race).
perf-gate:
	$(GO) test -run TestDurablePlaceThroughputAtLeast8k -count=1 ./internal/serve
	$(GO) test -run TestRoutedPlaceScaleoutAtLeast1_8x -count=1 ./internal/route

# planverify rebuilds the admission layers with the verification tag on,
# so every Incremental verdict is asserted bit-identical to a fresh full
# Analyze of the same candidate, under the race detector.
planverify:
	$(GO) vet -tags planverify ./internal/plan ./internal/serve ./internal/route
	$(GO) test -race -tags planverify ./internal/plan ./internal/serve ./internal/route

# chaos smoke-runs every fault-injection scenario at a fixed seed and fails
# on any invariant violation.
chaos:
	@for s in smi-storm irq-storm drift overload-shed; do \
		echo "== chaos $$s =="; \
		$(GO) run ./cmd/chaos -scenario $$s -seed 7 || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-engine runs the event-engine microbenchmarks, rewrite and legacy
# reference side by side.
bench-engine:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkEngine|BenchmarkLegacy|BenchmarkFreeze' -benchmem

# bench-record regenerates the committed benchmark trajectory artifact
# (BENCH_PR4.json): engine microbenchmarks plus the Quick figure-suite
# wall-clock, as machine-readable JSON.
bench-record:
	$(GO) run ./cmd/benchrecord -o BENCH_PR4.json

# bench-record-pr5 regenerates the durability overhead artifact
# (BENCH_PR5.json): fsync-backed versus in-memory cluster placement, with
# the derived durable_place_overhead_x ratio.
bench-record-pr5:
	$(GO) run ./cmd/benchrecord -pkg ./internal/serve -bench 'BenchmarkClusterPlace' -skip-suite -o BENCH_PR5.json

# bench-record-pr7 regenerates the DAG admission artifact (BENCH_PR7.json):
# end-to-end validate + RTA + placement + removal throughput, with the
# derived dag_admission_ops_per_sec figure.
bench-record-pr7:
	$(GO) run ./cmd/benchrecord -pkg ./internal/serve -bench 'BenchmarkDAGAdmission' -skip-suite -o BENCH_PR7.json

# bench-record-pr8 regenerates the fast-path admission artifact
# (BENCH_PR8.json): memoized versus uncached repeated admission, curve
# versus uncached gang probes, and the batched/durable placement rates,
# with the derived repeat_admission_speedup_x, batch_probe_speedup_x,
# batch_place_ops_per_sec, and durable_place_ops_per_sec figures.
bench-record-pr8:
	$(GO) run ./cmd/benchrecord -pkg './internal/plan ./internal/serve' \
		-bench 'BenchmarkAnalyzeRepeat|BenchmarkGangProbe|BenchmarkClusterPlace' \
		-skip-suite -o BENCH_PR8.json

# bench-record-pr9 regenerates the horizontal scale-out artifact
# (BENCH_PR9.json): routed place-batch throughput on one shard group
# versus four over the same 8 nodes, with the derived
# routed_place_scaleout_x and routed_place_ops_per_sec figures.
bench-record-pr9:
	$(GO) run ./cmd/benchrecord -pkg ./internal/route -bench 'BenchmarkRoutedPlace' -skip-suite -o BENCH_PR9.json

# bench-record-pr10 regenerates the what-if simulation artifact
# (BENCH_PR10.json): seeded stochastic replication throughput, with the
# derived simulate_hyperperiods_per_sec and simulate_scenarios_per_sec
# figures.
bench-record-pr10:
	$(GO) run ./cmd/benchrecord -pkg ./internal/whatif -bench 'BenchmarkWhatif' -skip-suite -o BENCH_PR10.json

# engine-bench-smoke compiles and exercises every engine benchmark for a
# fixed 100 iterations — fast enough for ci, and it catches benchmarks
# that panic or assert without paying for stable timings.
engine-bench-smoke:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkEngine' -benchtime 100x

# serve-smoke boots hrtd on an ephemeral port, drives it with hrtload for
# two seconds, and fails on any hard error or a cache that never hits.
serve-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "serve-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -dur 2s -conns 16 -check

# cluster-smoke boots hrtd with a 4-node placement cluster, drives the
# v1 cluster endpoints with hrtload in cluster mode for two seconds, and
# fails unless placements both succeeded and showed up in /metrics.
cluster-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -policy worst-fit >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "cluster-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode cluster -dur 2s -conns 8 -check

# batch-smoke boots hrtd with a 4-node cluster and drives the batched
# placement endpoint with hrtload in batch mode for two seconds, failing
# on any hard error, a per-item error envelope, or zero placements.
batch-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -policy worst-fit >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "batch-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode batch -dur 2s -conns 8 -live 8 -check

# recovery-smoke is the end-to-end crash-recovery drill: boot hrtd with a
# durable 4-node cluster, drive it with hrtload, kill the daemon with
# SIGKILL mid-flight, restart it on the same data directory, and fail
# unless the recovered placement count matches the pre-crash probe (and
# is non-zero — an empty cluster would pass a trivial diff).
recovery-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill -9 $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -data-dir "$$dir"/data >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "recovery-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode cluster -dur 2s -conns 8 -check; \
	before=$$("$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode status -check | sed -n 's/.*status placements=\([0-9]*\).*/\1/p'); \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; pid=; \
	rm -f "$$dir"/addr; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -data-dir "$$dir"/data >"$$dir"/hrtd2.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "recovery-smoke: hrtd never rebound"; cat "$$dir"/hrtd2.log; exit 1; fi; \
	after=$$("$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode status -check | sed -n 's/.*status placements=\([0-9]*\).*/\1/p'); \
	grep 'hrtd: recovery:' "$$dir"/hrtd2.log || { echo "recovery-smoke: no recovery boot line"; cat "$$dir"/hrtd2.log; exit 1; }; \
	if [ -z "$$before" ] || [ "$$before" -eq 0 ]; then echo "recovery-smoke: pre-crash placements empty ($$before)"; exit 1; fi; \
	if [ "$$before" != "$$after" ]; then echo "recovery-smoke: placements diverged: before=$$before after=$$after"; cat "$$dir"/hrtd2.log; exit 1; fi; \
	echo "recovery-smoke: ok ($$before placements survived kill -9)"

# dag-smoke is the end-to-end DAG admission drill: boot hrtd with a
# durable 4-node cluster, submit a random DAG fleet with hrtload in dag
# mode, kill the daemon with SIGKILL, restart it on the same data
# directory, and fail unless the recovered status line — DAG placements
# and the replicated placed total included — is byte-identical to the
# pre-crash probe (session-local WAL counters stripped), and non-empty.
dag-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill -9 $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -data-dir "$$dir"/data >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "dag-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode dag -dur 2s -conns 8 -check; \
	before=$$("$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode status -check | sed 's/ durable=.*//'); \
	case "$$before" in *"dag_placements="*) ;; *) echo "dag-smoke: no DAG block in status: $$before"; exit 1;; esac; \
	case "$$before" in *"dag_placements=0 "*) echo "dag-smoke: zero DAG placements would pass a trivial diff: $$before"; exit 1;; esac; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; pid=; \
	rm -f "$$dir"/addr; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -data-dir "$$dir"/data >"$$dir"/hrtd2.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "dag-smoke: hrtd never rebound"; cat "$$dir"/hrtd2.log; exit 1; fi; \
	grep 'hrtd: recovery:' "$$dir"/hrtd2.log >/dev/null || { echo "dag-smoke: no recovery boot line"; cat "$$dir"/hrtd2.log; exit 1; }; \
	after=$$("$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode status -check | sed 's/ durable=.*//'); \
	if [ "$$before" != "$$after" ]; then echo "dag-smoke: status diverged across kill -9:"; echo " before: $$before"; echo " after:  $$after"; cat "$$dir"/hrtd2.log; exit 1; fi; \
	echo "dag-smoke: ok ($$before)"

# shard-smoke is the end-to-end horizontal scale-out drill: boot four
# independent shard-group daemons (2 nodes each), front them with a
# stateless router daemon, drive the routed place-batch path with
# hrtload, assert the aggregate status sees all four groups, then kill -9
# one group's daemon and fail unless the router keeps serving — batches
# still place on the surviving groups (degrading per-item, not
# per-request) and the aggregate status reports exactly one group down.
shard-smoke:
	@set -e; dir=$$(mktemp -d); g1=; g2=; g3=; g4=; rpid=; \
	cleanup() { for p in $$g1 $$g2 $$g3 $$g4 $$rpid; do kill -9 $$p 2>/dev/null || true; done; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	for g in 1 2 3 4; do \
		"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/g$$g.addr -nodes 2 >"$$dir"/g$$g.log 2>&1 & \
		eval g$$g=$$!; \
	done; \
	for g in 1 2 3 4; do \
		for i in $$(seq 100); do [ -s "$$dir"/g$$g.addr ] && break; sleep 0.1; done; \
		if ! [ -s "$$dir"/g$$g.addr ]; then echo "shard-smoke: group $$g never bound"; cat "$$dir"/g$$g.log; exit 1; fi; \
	done; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/router.addr \
		-route "$$(cat "$$dir"/g1.addr)" -route "$$(cat "$$dir"/g2.addr)" \
		-route "$$(cat "$$dir"/g3.addr)" -route "$$(cat "$$dir"/g4.addr)" \
		>"$$dir"/router.log 2>&1 & rpid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/router.addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/router.addr ]; then echo "shard-smoke: router never bound"; cat "$$dir"/router.log; exit 1; fi; \
	grep 'hrtd: routing: groups=4' "$$dir"/router.log >/dev/null || { echo "shard-smoke: no routing boot line"; cat "$$dir"/router.log; exit 1; }; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/router.addr)" -mode batch -dur 2s -conns 4 -live 8 -check; \
	st=$$("$$dir"/hrtload -addr "$$(cat "$$dir"/router.addr)" -mode status -check); \
	case "$$st" in *"groups=4 reachable=4"*) ;; *) echo "shard-smoke: bad healthy status: $$st"; exit 1;; esac; \
	kill -9 $$g2; wait $$g2 2>/dev/null || true; g2=; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/router.addr)" -mode batch -dur 2s -conns 4 -live 8 >"$$dir"/degraded.log 2>&1 || true; \
	placed=$$(sed -n 's/^hrtload: \([0-9]*\) placed.*/\1/p' "$$dir"/degraded.log); \
	if [ -z "$$placed" ] || [ "$$placed" -eq 0 ]; then echo "shard-smoke: nothing placed with one group down"; cat "$$dir"/degraded.log; cat "$$dir"/router.log; exit 1; fi; \
	st2=$$("$$dir"/hrtload -addr "$$(cat "$$dir"/router.addr)" -mode status -check); \
	case "$$st2" in *"groups=4 reachable=3"*) ;; *) echo "shard-smoke: bad degraded status: $$st2"; exit 1;; esac; \
	echo "shard-smoke: ok ($$placed placements with one of four groups killed; $$st2)"

# simulate-smoke is the end-to-end what-if drill: boot hrtd with two
# in-process shard groups (so /v1/simulate rides the router), run the
# same small distributed sweep grid twice through cmd/sweep and fail
# unless the outputs are byte-identical, then drive the endpoint with
# hrtload in simulate mode, which fails on any hard error or a reply
# that diverged for a repeated seed.
simulate-smoke:
	@set -e; dir=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload ./cmd/sweep; \
	"$$dir"/hrtd -addr 127.0.0.1:0 -addr-file "$$dir"/addr -nodes 4 -shard-groups 2 >"$$dir"/hrtd.log 2>&1 & pid=$$!; \
	for i in $$(seq 100); do [ -s "$$dir"/addr ] && break; sleep 0.1; done; \
	if ! [ -s "$$dir"/addr ]; then echo "simulate-smoke: hrtd never bound"; cat "$$dir"/hrtd.log; exit 1; fi; \
	"$$dir"/sweep -targets "$$(cat "$$dir"/addr)" -models wcet,half-random -utils 0.5,0.8 \
		-grid-seeds 2 -reps 5 -json >"$$dir"/sweep1.json; \
	"$$dir"/sweep -targets "$$(cat "$$dir"/addr)" -models wcet,half-random -utils 0.5,0.8 \
		-grid-seeds 2 -reps 5 -json >"$$dir"/sweep2.json; \
	cmp "$$dir"/sweep1.json "$$dir"/sweep2.json || { echo "simulate-smoke: repeated sweep diverged"; exit 1; }; \
	"$$dir"/hrtload -addr "$$(cat "$$dir"/addr)" -mode simulate -dur 2s -conns 4 -check; \
	echo "simulate-smoke: ok (repeated sweep byte-identical)"

# failover-smoke is the end-to-end replication drill: boot a 3-replica
# hrtd placement service, drive mutations through a follower (so every
# one rides a 307 leader redirect), kill -9 the leader mid-stream, and
# fail unless a new leader emerges within the election budget, both
# survivors converge to the same durable view, and a final checked load
# run lands cleanly on the re-formed cluster.
failover-smoke:
	@set -e; dir=$$(mktemp -d); p1=; p2=; p3=; loadpid=; \
	cleanup() { for p in $$p1 $$p2 $$p3 $$loadpid; do kill -9 $$p 2>/dev/null || true; done; rm -rf "$$dir"; }; \
	trap cleanup EXIT; \
	$(GO) build -o "$$dir" ./cmd/hrtd ./cmd/hrtload; \
	peers="-peer 0=127.0.0.1:29871 -peer 1=127.0.0.1:29872 -peer 2=127.0.0.1:29873"; \
	for r in 1 2 3; do \
		"$$dir"/hrtd -addr 127.0.0.1:2987$$r -nodes 4 -data-dir "$$dir"/d$$r \
			-replicas 3 -id $$((r-1)) $$peers >"$$dir"/hrtd$$r.log 2>&1 & \
		eval p$$r=$$!; \
	done; \
	leader=; \
	for i in $$(seq 100); do \
		for r in 1 2 3; do \
			line=$$("$$dir"/hrtload -addr 127.0.0.1:2987$$r -mode status 2>/dev/null || true); \
			case "$$line" in *"role=leader"*) leader=$$r; break 2;; esac; \
		done; \
		sleep 0.1; \
	done; \
	if [ -z "$$leader" ]; then echo "failover-smoke: no leader elected"; cat "$$dir"/hrtd1.log; exit 1; fi; \
	follower=1; [ "$$leader" = 1 ] && follower=2; \
	echo "failover-smoke: leader is replica $$((leader-1)), loading via follower $$((follower-1))"; \
	"$$dir"/hrtload -addr 127.0.0.1:2987$$follower -mode cluster -dur 4s -conns 4 >"$$dir"/load.log 2>&1 & loadpid=$$!; \
	sleep 1; \
	eval kill -9 \$$p$$leader; eval p$$leader=; \
	newleader=; \
	for i in $$(seq 100); do \
		for r in 1 2 3; do \
			[ "$$r" = "$$leader" ] && continue; \
			line=$$("$$dir"/hrtload -addr 127.0.0.1:2987$$r -mode status 2>/dev/null || true); \
			case "$$line" in *"role=leader"*) newleader=$$r; break 2;; esac; \
		done; \
		sleep 0.1; \
	done; \
	if [ -z "$$newleader" ]; then echo "failover-smoke: no new leader after kill -9"; cat "$$dir"/hrtd$$follower.log; exit 1; fi; \
	echo "failover-smoke: replica $$((newleader-1)) took over"; \
	wait $$loadpid 2>/dev/null || true; loadpid=; \
	grep 'leader redirects followed' "$$dir"/load.log >/dev/null || { echo "failover-smoke: no 307 redirects observed"; cat "$$dir"/load.log; exit 1; }; \
	"$$dir"/hrtload -addr 127.0.0.1:2987$$follower -mode cluster -dur 2s -conns 4 -check; \
	other=; for r in 1 2 3; do [ "$$r" != "$$leader" ] && [ "$$r" != "$$newleader" ] && other=$$r; done; \
	same=; \
	for i in $$(seq 50); do \
		v1=$$("$$dir"/hrtload -addr 127.0.0.1:2987$$newleader -mode status 2>/dev/null | sed 's/ durable=.*//'); \
		v2=$$("$$dir"/hrtload -addr 127.0.0.1:2987$$other -mode status 2>/dev/null | sed 's/ durable=.*//'); \
		if [ -n "$$v1" ] && [ "$$v1" = "$$v2" ]; then same=yes; break; fi; \
		sleep 0.2; \
	done; \
	if [ -z "$$same" ]; then echo "failover-smoke: survivors diverged:"; echo " $$v1"; echo " $$v2"; exit 1; fi; \
	case "$$v1" in *"placements=0"*) echo "failover-smoke: empty cluster would pass a trivial diff"; exit 1;; esac; \
	echo "failover-smoke: ok ($$v1)"
