package hrtsched

import (
	"context"
	"time"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/cyclic"
	"hrtsched/internal/dag"
	"hrtsched/internal/durable"
	"hrtsched/internal/group"
	"hrtsched/internal/ksync"
	"hrtsched/internal/legion"
	"hrtsched/internal/machine"
	"hrtsched/internal/mem"
	"hrtsched/internal/ndp"
	"hrtsched/internal/omp"
	"hrtsched/internal/paging"
	"hrtsched/internal/pgas"
	"hrtsched/internal/plan"
	"hrtsched/internal/route"
	"hrtsched/internal/scope"
	"hrtsched/internal/serve"
	"hrtsched/internal/sim"
	"hrtsched/internal/timesync"
	"hrtsched/internal/trace"
	"hrtsched/internal/whatif"
)

// --- Platform (internal/machine) -------------------------------------------

// Spec describes a simulated hardware platform.
type Spec = machine.Spec

// Machine is one simulated shared-memory x64 node.
type Machine = machine.Machine

// CPU is one simulated hardware thread.
type CPU = machine.CPU

// DeviceSource is a steerable external interrupt source.
type DeviceSource = machine.DeviceSource

// PhiKNL returns the paper's Xeon Phi 7210 testbed model (256 CPUs,
// 1.3 GHz).
func PhiKNL() Spec { return machine.PhiKNL() }

// R415 returns the paper's Dell R415 testbed model (8 CPUs, 2.2 GHz).
func R415() Spec { return machine.R415() }

// NewMachine builds a machine from a spec with all randomness derived from
// seed; equal seeds give bit-identical simulations.
func NewMachine(spec Spec, seed uint64) *Machine { return machine.New(spec, seed) }

// --- Kernel and scheduler (internal/core) ----------------------------------

// Kernel is a booted Nautilus-style kernel instance.
type Kernel = core.Kernel

// Config is the boot-time local scheduler configuration.
type Config = core.Config

// LocalScheduler is the per-CPU eager EDF engine.
type LocalScheduler = core.LocalScheduler

// Thread is a kernel thread.
type Thread = core.Thread

// Task is a queued callback cheaper than a thread (softIRQ/DPC analogue).
type Task = core.Task

// Constraints is the admission-control interface: aperiodic, periodic
// (phase, period, slice) or sporadic (phase, size, deadline, priority).
type Constraints = core.Constraints

// ConstraintType selects the timing-constraint class.
type ConstraintType = core.ConstraintType

// Timing constraint classes.
const (
	Aperiodic = core.Aperiodic
	Periodic  = core.Periodic
	Sporadic  = core.Sporadic
)

// Program is the body of a thread: a state machine yielding Actions.
type Program = core.Program

// ProgramFunc adapts a function to Program.
type ProgramFunc = core.ProgramFunc

// ThreadCtx is the context passed to program steps.
type ThreadCtx = core.ThreadCtx

// Action is one step of thread execution.
type Action = core.Action

// Thread actions.
type (
	// Compute consumes CPU cycles.
	Compute = core.Compute
	// Exit terminates the thread.
	Exit = core.Exit
	// Yield invokes the scheduler without blocking.
	Yield = core.Yield
	// SleepUntil parks the thread until a wall-clock time.
	SleepUntil = core.SleepUntil
	// Block parks the thread until woken.
	Block = core.Block
	// Call runs a function instantaneously in thread context.
	Call = core.Call
	// ChangeConstraints performs individual admission control.
	ChangeConstraints = core.ChangeConstraints
)

// Step is a continuation-passing program stage, for multi-phase protocols.
type Step = core.Step

// Boot constructs a kernel on a machine: calibrates cycle counters and
// starts one local scheduler per CPU.
func Boot(m *Machine, cfg Config) *Kernel { return core.Boot(m, cfg) }

// DefaultConfig returns the paper's default scheduler configuration for a
// platform (99% utilization limit, 10% sporadic and 10% aperiodic
// reservations, eager EDF, power-of-two-choices work stealing).
func DefaultConfig(spec Spec) Config { return core.DefaultConfig(spec) }

// PeriodicConstraints builds (phase, period, slice) constraints (ns).
func PeriodicConstraints(phaseNs, periodNs, sliceNs int64) Constraints {
	return core.PeriodicConstraints(phaseNs, periodNs, sliceNs)
}

// SporadicConstraints builds (phase, size, deadline, priority) constraints.
func SporadicConstraints(phaseNs, sizeNs, deadlineNs int64, prio uint32) Constraints {
	return core.SporadicConstraints(phaseNs, sizeNs, deadlineNs, prio)
}

// AperiodicConstraints builds priority-only constraints.
func AperiodicConstraints(priority uint32) Constraints {
	return core.AperiodicConstraints(priority)
}

// FlowProgram turns a step chain into a Program.
func FlowProgram(start Step) Program { return core.FlowProgram(start) }

// FlowThen runs a step chain, then continues with cont.
func FlowThen(start Step, cont Program) Program { return core.FlowThen(start, cont) }

// --- Groups (internal/group) ------------------------------------------------

// Group is a named thread group with distributed admission control.
type Group = group.Group

// GroupBarrier is a reusable group barrier with measured release stagger.
type GroupBarrier = group.Barrier

// GroupCosts models the coordination costs inside group operations.
type GroupCosts = group.Costs

// GroupAdmitOptions tunes group admission (phase correction on/off).
type GroupAdmitOptions = group.AdmitOptions

// NewGroup creates a thread group expecting size members. It returns an
// error for a non-positive size.
func NewGroup(k *Kernel, name string, size int, costs GroupCosts) (*Group, error) {
	return group.New(k, name, size, costs)
}

// MustNewGroup is NewGroup for statically-sized call sites; it panics on
// error.
func MustNewGroup(k *Kernel, name string, size int, costs GroupCosts) *Group {
	return group.MustNew(k, name, size, costs)
}

// DefaultGroupCosts returns the Figure 10 calibration.
func DefaultGroupCosts() GroupCosts { return group.DefaultCosts() }

// --- BSP microbenchmark (internal/bsp) --------------------------------------

// BSPParams configures the Section 6.1 microbenchmark.
type BSPParams = bsp.Params

// BSPResult reports one benchmark run.
type BSPResult = bsp.Result

// BSPBench is one instantiated benchmark.
type BSPBench = bsp.Bench

// NewBSP builds the benchmark on a kernel.
func NewBSP(k *Kernel, p BSPParams) *BSPBench { return bsp.New(k, p) }

// BSPCoarseGrain returns the coarsest granularity of the paper's study.
func BSPCoarseGrain(p, n int) BSPParams { return bsp.CoarseGrain(p, n) }

// BSPFineGrain returns the finest granularity of the paper's study.
func BSPFineGrain(p, n int) BSPParams { return bsp.FineGrain(p, n) }

// --- Cyclic executives (internal/cyclic) -------------------------------------

// CyclicTask is one periodic task to compile into a static schedule.
type CyclicTask = cyclic.Task

// CyclicTable is a compiled cyclic-executive schedule.
type CyclicTable = cyclic.Table

// CyclicExecutive runs a compiled table on one CPU, time-driven.
type CyclicExecutive = cyclic.Executive

// BuildCyclic compiles a task set into a static schedule (offline EDF),
// validating schedulability — the paper's future-work direction of
// real-time behavior by static construction.
func BuildCyclic(tasks []CyclicTask, utilizationLimit float64) (*CyclicTable, error) {
	return cyclic.Build(tasks, utilizationLimit)
}

// NewCyclicExecutive prepares an executive for the table on the given CPU.
func NewCyclicExecutive(k *Kernel, cpu int, table *CyclicTable) *CyclicExecutive {
	return cyclic.NewExecutive(k, cpu, table)
}

// --- Memory substrate (internal/mem) -----------------------------------------

// MemZone is one NUMA zone managed by a buddy allocator with bounded,
// deterministic operation path lengths.
type MemZone = mem.Zone

// NUMA is the zone-selected allocation layer.
type NUMA = mem.NUMA

// NewMemZone creates a buddy-managed zone.
func NewMemZone(name string, base, size, minBlock uint64) (*MemZone, error) {
	return mem.NewZone(name, base, size, minBlock)
}

// --- Parallel run-times (internal/omp, internal/ndp) -------------------------

// OMPTeam is the OpenMP-like worker team: statically-scheduled parallel-for
// regions, optionally gang-scheduled, optionally barrier-free.
type OMPTeam = omp.Team

// OMPConfig configures a team.
type OMPConfig = omp.Config

// OMPRegion is one parallel-for region.
type OMPRegion = omp.Region

// OMP synchronization modes.
const (
	OMPSyncBarrier = omp.SyncBarrier
	OMPSyncTimed   = omp.SyncTimed
)

// NewOMPTeam creates and starts a worker team. It returns an error for a
// non-positive worker count or timed sync without periodic constraints.
func NewOMPTeam(k *Kernel, cfg OMPConfig) (*OMPTeam, error) { return omp.NewTeam(k, cfg) }

// MustNewOMPTeam is NewOMPTeam for statically-correct call sites; it panics
// on error.
func MustNewOMPTeam(k *Kernel, cfg OMPConfig) *OMPTeam { return omp.MustNewTeam(k, cfg) }

// LegionRuntime is the Legion-like task-based run-time: tasks with region
// requirements, implicit dependence extraction, greedy worker-pool
// execution.
type LegionRuntime = legion.Runtime

// LegionTask is a unit of work with declared region requirements.
type LegionTask = legion.Task

// LegionRegion is a logical region tasks operate on.
type LegionRegion = legion.Region

// LegionReq is one region requirement.
type LegionReq = legion.Req

// Legion access modes.
const (
	LegionReadOnly  = legion.ReadOnly
	LegionReadWrite = legion.ReadWrite
)

// NewLegion creates a Legion-like runtime with a worker pool. It returns an
// error for a non-positive worker count.
func NewLegion(k *Kernel, cfg legion.Config) (*LegionRuntime, error) { return legion.New(k, cfg) }

// MustNewLegion is NewLegion for statically-correct call sites; it panics
// on error.
func MustNewLegion(k *Kernel, cfg legion.Config) *LegionRuntime { return legion.MustNew(k, cfg) }

// PGASArray is a shared array partitioned across a team (UPC-like).
type PGASArray = pgas.Array

// PGAS distributions and placements.
const (
	PGASBlocked    = pgas.Blocked
	PGASCyclic     = pgas.Cyclic
	PGASByAffinity = pgas.ByAffinity
	PGASByChunk    = pgas.ByChunk
)

// NewPGASArray allocates a shared array on the team.
func NewPGASArray(team *OMPTeam, n int, dist pgas.Distribution) *PGASArray {
	return pgas.NewArray(team, n, dist)
}

// PGASForAll runs an affinity-aware parallel loop over [0, n).
func PGASForAll(team *OMPTeam, name string, n int, placement pgas.Placement,
	touches []*PGASArray, body func(i int), maxEvents uint64) error {
	return pgas.ForAll(team, name, n, placement, touches, body, maxEvents)
}

// SegVector is a flattened nested vector for the NESL-like run-time.
type SegVector = ndp.SegVector

// NewSegVector builds a segmented vector from nested slices.
func NewSegVector(segments [][]float64) *SegVector { return ndp.NewSegVector(segments) }

// --- Kernel synchronization (internal/ksync) ---------------------------------

// WaitQueue is the event-signaling primitive.
type WaitQueue = ksync.WaitQueue

// KMutex is a blocking kernel mutex with FIFO handoff.
type KMutex = ksync.Mutex

// KSemaphore is a counting semaphore with blocking acquire.
type KSemaphore = ksync.Semaphore

// NewWaitQueue creates a wait queue.
func NewWaitQueue(k *Kernel) *WaitQueue { return ksync.NewWaitQueue(k) }

// NewKMutex creates a mutex.
func NewKMutex(k *Kernel) *KMutex { return ksync.NewMutex(k) }

// NewKSemaphore creates a semaphore.
func NewKSemaphore(k *Kernel, initial int64) *KSemaphore {
	return ksync.NewSemaphore(k, initial)
}

// --- Tracing (internal/trace) -------------------------------------------------

// TraceRecorder accumulates a structured execution timeline.
type TraceRecorder = trace.Recorder

// NewTraceRecorder creates a recorder holding up to limit events.
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// AttachTrace wires a recorder into a kernel's instrumentation hooks.
func AttachTrace(k *Kernel, r *TraceRecorder) { trace.Attach(k, r) }

// --- Paging (internal/paging) --------------------------------------------------

// MMU models identity-mapped translation with a TLB.
type MMU = paging.MMU

// PagingPageSize selects the mapping granularity.
type PagingPageSize = paging.PageSize

// Page sizes.
const (
	Page4K = paging.Page4K
	Page2M = paging.Page2M
	Page1G = paging.Page1G
)

// NewMMU builds an MMU over an identity map.
func NewMMU(physBytes uint64, size PagingPageSize, tlbEntries int, walkCostPerLevel int64) *MMU {
	return paging.NewMMU(physBytes, size, tlbEntries, walkCostPerLevel)
}

// --- Schedulability analysis (internal/plan) ---------------------------------

// PlanTask is one periodic task (period, slice) for offline analysis.
type PlanTask = plan.Task

// PlanTaskSet is a set of periodic tasks under analysis.
type PlanTaskSet = plan.TaskSet

// PlanSpec is the platform model an analysis runs against: per-invocation
// scheduler overhead and the utilization limit.
type PlanSpec = plan.Spec

// PlanVerdict is a full admission answer: the closed-form bound, the
// hyperperiod simulation, and the combined decision.
type PlanVerdict = plan.Verdict

// CapacityReport is the what-if headroom answer of PlanCapacity.
type CapacityReport = plan.CapacityReport

// Placement is a first-fit assignment of task sets to CPUs.
type Placement = plan.Placement

// PlanSpecFor derives the analysis spec for a machine spec at a
// utilization limit, charging the same per-invocation overhead the
// kernel's own admission simulation charges.
func PlanSpecFor(m Spec, utilizationLimit float64) PlanSpec {
	return serve.SpecFor(m, utilizationLimit)
}

// AnalyzeTaskSet answers admit/reject for a task set on a platform.
func AnalyzeTaskSet(spec PlanSpec, set PlanTaskSet) PlanVerdict {
	return plan.Analyze(spec, set)
}

// AnalyzeGang answers all-or-nothing admission for a gang of tasks
// arriving together on a CPU that already runs `existing`.
func AnalyzeGang(spec PlanSpec, existing, gang PlanTaskSet) PlanVerdict {
	return plan.AnalyzeGang(spec, existing, gang)
}

// PlanCapacity reports how much additional utilization a CPU running
// `set` can still take at the probe period (0 = the set's largest period).
func PlanCapacity(spec PlanSpec, set PlanTaskSet, probePeriodNs int64) CapacityReport {
	return plan.Capacity(spec, set, probePeriodNs)
}

// PlaceFirstFit packs task sets onto ncpus CPUs first-fit, consulting the
// full analysis (bound + simulation) for every placement decision.
func PlaceFirstFit(spec PlanSpec, ncpus int, sets []PlanTaskSet) (Placement, error) {
	return plan.PlaceFirstFit(spec, ncpus, sets)
}

// IncrementalPlan is the stateful admission analyzer for one CPU: it
// retains the admitted task set and its demand decomposition so a
// one-task delta is answered by patching rather than re-simulating the
// whole hyperperiod, falling back to the full analysis whenever the
// hyperperiod shifts. Its verdicts are equivalent (PlanVerdictsEquivalent)
// to AnalyzeTaskSet on the same candidate set — asserted on every verdict
// under `go test -tags planverify`.
type IncrementalPlan = plan.Incremental

// IncrementalPlanStats counts how often an IncrementalPlan answered by
// patching versus falling back to the full analysis.
type IncrementalPlanStats = plan.IncrementalStats

// NewIncrementalPlan creates an empty per-CPU incremental analyzer.
func NewIncrementalPlan(spec PlanSpec) *IncrementalPlan { return plan.NewIncremental(spec) }

// PlanVerdictsEquivalent reports whether two verdicts agree on everything
// but the simulation step counter (a work measure, not a decision).
func PlanVerdictsEquivalent(a, b PlanVerdict) bool { return plan.VerdictsEquivalent(a, b) }

// PlanAnalysis is the pluggable admission-analysis interface: stateless
// verdicts (Analyze/AnalyzeGang/Capacity) plus a factory for stateful
// engines. The default plug-in, named DefaultPlanAnalysis, is the EDF
// hyperperiod analysis every function above delegates to.
type PlanAnalysis = plan.Analysis

// PlanEngine is the stateful half of a PlanAnalysis — exactly
// IncrementalPlan's method set.
type PlanEngine = plan.Engine

// DefaultPlanAnalysis names the registry's incumbent analysis.
const DefaultPlanAnalysis = plan.DefaultAnalysisName

// NewPlanAnalysis instantiates a registered analysis by name for a spec.
func NewPlanAnalysis(name string, spec PlanSpec) (PlanAnalysis, error) {
	return plan.NewAnalysis(name, spec)
}

// PlanAnalysisNames lists the registered analyses, sorted.
func PlanAnalysisNames() []string { return plan.AnalysisNames() }

// PlanMemo is a demand-bound-curve cache: a digest-keyed LRU over
// canonically-equal task sets whose entries retain the incremental curve,
// so repeated Analyze/Capacity calls and gang probes against the same set
// skip the hyperperiod simulation. Answers are bit-identical to the
// uncached analysis of the canonical task ordering (see DESIGN.md §12).
type PlanMemo = plan.Memo

// PlanMemoStats counts a PlanMemo's hits, misses, and live entries.
type PlanMemoStats = plan.MemoStats

// NewPlanMemo creates a curve cache holding up to entries task sets
// (0 = DefaultMemoEntries).
func NewPlanMemo(spec PlanSpec, entries int) *PlanMemo { return plan.NewMemo(spec, entries) }

// AnalyzeTaskSetBatch answers many admission queries in one pass, sharing
// demand-bound curves across canonically-equal sets; out[i] is
// bit-identical to AnalyzeTaskSet on sets[i]'s canonical ordering.
func AnalyzeTaskSetBatch(spec PlanSpec, sets []PlanTaskSet) []PlanVerdict {
	return plan.AnalyzeBatch(spec, sets)
}

// AnalyzeGangBatch evaluates many candidate gangs against one existing
// set with a single demand-curve pass; out[i] is equivalent
// (PlanVerdictsEquivalent) to AnalyzeGang(spec, existing, gangs[i]).
func AnalyzeGangBatch(spec PlanSpec, existing PlanTaskSet, gangs []PlanTaskSet) []PlanVerdict {
	return plan.TryGangBatch(spec, existing, gangs)
}

// --- Admission-query service (internal/serve) --------------------------------

// ServeConfig configures the sharded admission-query server.
type ServeConfig = serve.Config

// Server is the sharded, batching, caching admission-query service behind
// cmd/hrtd.
type Server = serve.Server

// MetricsRegistry is the pull-based Prometheus-text metrics registry.
type MetricsRegistry = serve.Registry

// NewServer starts an admission-query server; Close releases its shards.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// MustNewServer is NewServer for statically-correct configurations; it
// panics on error.
func MustNewServer(cfg ServeConfig) *Server {
	s, err := serve.New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Cluster is the stateful placement session behind cmd/hrtd's
// /v1/cluster routes: N simulated nodes, each owning an IncrementalPlan
// behind a bounded mutation queue, with first-fit/worst-fit placement,
// node drain, and rebalancing.
type Cluster = serve.Cluster

// ClusterConfig configures a Cluster.
type ClusterConfig = serve.ClusterConfig

// PlacePolicy selects how a Cluster orders candidate nodes.
type PlacePolicy = serve.Policy

// Placement policies.
const (
	PlaceFirstFitPolicy = serve.FirstFit
	PlaceWorstFitPolicy = serve.WorstFit
)

// PlaceResult reports one Cluster placement attempt.
type PlaceResult = serve.PlaceResult

// ClusterBatchPlaceItem is one placement request of Cluster.PlaceBatch.
type ClusterBatchPlaceItem = serve.BatchPlaceItem

// ClusterBatchPlaceResult is one per-item answer of Cluster.PlaceBatch,
// in input order: exactly what Place would have returned for that item.
type ClusterBatchPlaceResult = serve.BatchPlaceResult

// DrainReport summarizes one Cluster node drain.
type DrainReport = serve.DrainReport

// ClusterStatus is a Cluster's session-wide status snapshot.
type ClusterStatus = serve.ClusterStatus

// NewCluster starts a placement session; Close releases its node workers.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return serve.NewCluster(cfg) }

// MustNewCluster is NewCluster for statically-correct configurations; it
// panics on error.
func MustNewCluster(cfg ClusterConfig) *Cluster {
	c, err := serve.NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// ClusterDurabilityConfig makes a Cluster crash-recoverable: committed
// mutations are group-committed to a write-ahead log in Dir before the
// client's reply, periodic snapshots bound replay, and NewCluster
// recovers the pre-crash state on boot (see DESIGN.md §9).
type ClusterDurabilityConfig = serve.DurabilityConfig

// ClusterDurabilityStatus is the durability block of ClusterStatus,
// present only when durability is enabled.
type ClusterDurabilityStatus = serve.DurabilityStatus

// ClusterRecoveryResult reports what a durable Cluster rebuilt at boot:
// snapshot LSN, records replayed and rejected, torn bytes truncated,
// segments dropped, orphans released.
type ClusterRecoveryResult = durable.RecoveryResult

// --- DAG tasks (internal/dag) ------------------------------------------------

// DAGTask is a parallel task with precedence structure: WCET-annotated
// nodes, precedence edges, a period, a constrained deadline, and a core
// budget. Validate rejects malformed graphs with typed codes before any
// analysis runs.
type DAGTask = dag.Task

// DAGNode is one unit of sequential work inside a DAGTask.
type DAGNode = dag.Node

// DAGEdge is a precedence constraint between two DAGTask nodes.
type DAGEdge = dag.Edge

// DAGResult is one response-time analysis outcome: the admission bit, a
// typed rejection reason, the bound, and the blocking path that set it.
type DAGResult = dag.Result

// DAGValidationError is the typed structural rejection (cycle, bad WCET,
// edge out of range, ...) with the offending node/edge/path.
type DAGValidationError = dag.ValidationError

// DAGAnalyzer computes a response-time bound for a validated DAGTask;
// "classical" is the 1/m interference bound, "alpha-beta" the
// interference-set refinement.
type DAGAnalyzer = dag.Analyzer

// NewDAGAnalyzer resolves an analyzer by name ("" = classical).
func NewDAGAnalyzer(name string) (DAGAnalyzer, error) { return dag.NewAnalyzer(name) }

// DAGAnalyzerNames lists the registered DAG analyzers, sorted.
func DAGAnalyzerNames() []string { return dag.AnalyzerNames() }

// AnalyzeDAG validates t and runs the named response-time analysis
// against spec — the library form of hrtd's POST /v1/dag/analyze.
func AnalyzeDAG(spec PlanSpec, t DAGTask, analyzer string) (DAGResult, error) {
	rta, err := dag.NewAnalyzer(analyzer)
	if err != nil {
		return DAGResult{}, err
	}
	return dag.New(spec, rta).AnalyzeDAG(&t)
}

// DAGPlaceResult reports one Cluster DAG admission: the analysis, the
// derived periodic server task, and where it was placed.
type DAGPlaceResult = serve.DAGPlaceResult

// ClusterDAGStatus is the DAG block of ClusterStatus, present once any
// DAG has been submitted.
type ClusterDAGStatus = serve.DAGStatus

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return serve.NewRegistry() }

// RegisterKernelMetrics exposes a kernel's robustness counters (deadline
// misses, degradation, watchdog) on a registry — the same code path
// cmd/chaos -metrics and hrtd use.
func RegisterKernelMetrics(r *MetricsRegistry, k *Kernel) { serve.RegisterKernel(r, k) }

// --- Placement router (internal/route) ---------------------------------------

// PlacementRouter shards a node fleet into independent placement groups
// behind a thin stateless routing layer: task-set ids map to owning
// groups by rendezvous hashing, batches split and re-merge in input
// order, and cross-shard drain/rebalance move sets between groups with
// admit-before-release safety (see DESIGN.md §13).
type PlacementRouter = route.Router

// RouterConfig configures a PlacementRouter.
type RouterConfig = route.Config

// RouterGroup is one shard group behind a router: the subset of the
// Cluster surface the router fans requests to.
type RouterGroup = route.Group

// RouterBatchResult is the merged, input-ordered answer of a routed
// PlaceBatch, with the owning group recorded per item.
type RouterBatchResult = route.BatchResult

// RoutedStatus is the aggregated fleet status of Router.Status: global
// totals plus a per-group breakdown with staleness ages.
type RoutedStatus = route.RoutedStatus

// RoutedGroupStatus is one group's entry in RoutedStatus.
type RoutedGroupStatus = route.GroupStatus

// RouterDrainReport summarizes one cross-shard node drain.
type RouterDrainReport = route.DrainReport

// RouterRebalanceReport summarizes one cross-shard rebalance pass.
type RouterRebalanceReport = route.RebalanceReport

// RouteEnvelopeError is a structured error proxied verbatim from a
// remote shard group (status code, error envelope, Retry-After).
type RouteEnvelopeError = route.EnvelopeError

// ErrShardGroupUnreachable reports that a shard group could not be
// reached at all (transport failure, not a structured rejection).
var ErrShardGroupUnreachable = route.ErrGroupUnreachable

// ShardGroupHeader is the response header naming the shard group(s)
// that served a routed request.
const ShardGroupHeader = route.ShardGroupHeader

// NewPlacementRouter builds a router over shard groups. It returns an
// error for an empty group list or inconsistent configuration.
func NewPlacementRouter(groups []RouterGroup, cfg RouterConfig) (*PlacementRouter, error) {
	return route.New(groups, cfg)
}

// NewLocalShardGroup wraps an in-process Cluster as a shard group
// (migratable in cross-shard drain/rebalance).
func NewLocalShardGroup(c *Cluster) *route.LocalGroup { return route.NewLocalGroup(c) }

// NewRemoteShardGroup dials a remote hrtd group endpoint and wraps it
// as a shard group (served, but not migratable).
func NewRemoteShardGroup(ctx context.Context, baseURL string, timeout time.Duration) (*route.RemoteGroup, error) {
	return route.NewRemoteGroup(ctx, baseURL, timeout)
}

// PartitionFleetNodes deterministically partitions node indices
// [0, total) into the given number of shard groups by rendezvous
// hashing, evened to within one node per group.
func PartitionFleetNodes(total, groups int) [][]int { return route.PartitionNodes(total, groups) }

// --- What-if simulation (internal/whatif) ------------------------------------

// WhatifScenario describes one stochastic what-if experiment: a task set,
// an execution-time model, optional fault presets, and a replication
// count. Equal (scenario, seed) pairs produce byte-identical reports.
type WhatifScenario = whatif.Scenario

// WhatifTask is one periodic task in a what-if scenario.
type WhatifTask = whatif.Task

// WhatifReport is the aggregated outcome of a what-if run: per-task miss
// counts and response-time quantiles, survival probability, and the
// admission-verdict-vs-observed disagreement counters.
type WhatifReport = whatif.Report

// WhatifTaskReport is the per-task slice of a what-if report.
type WhatifTaskReport = whatif.TaskReport

// WhatifExecModel is a parsed execution-time model ("wcet",
// "full-random", "half-random", "random-a,b", with an optional
// ":uniform" or ":normal" distribution suffix).
type WhatifExecModel = whatif.ExecModel

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest = serve.SimulateRequest

// RunWhatif normalizes, validates, and runs one what-if scenario with
// the given root seed.
func RunWhatif(sc WhatifScenario, seed uint64) (*WhatifReport, error) {
	return whatif.Run(sc, seed)
}

// ParseExecModel parses an execution-time model string.
func ParseExecModel(s string) (WhatifExecModel, error) { return whatif.ParseModel(s) }

// WhatifFaultNames lists the fault-injection presets a scenario may name.
func WhatifFaultNames() []string { return whatif.FaultNames() }

// --- Instruments ------------------------------------------------------------

// ScopeTrace is the analysis of one GPIO pin (external verification).
type ScopeTrace = scope.Trace

// AnalyzeScope extracts a trace for a GPIO pin.
func AnalyzeScope(m *Machine, pin uint, label string) *ScopeTrace {
	return scope.Analyze(m, pin, label)
}

// ScopeHook wires GPIO instrumentation to one CPU and thread.
type ScopeHook = core.ScopeHook

// CalibResult is the outcome of boot-time cycle-counter calibration.
type CalibResult = timesync.Result

// SimTime is a point in simulated time (cycles of the reference clock).
type SimTime = sim.Time
