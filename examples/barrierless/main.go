// Barrierless example: demonstrates the gang-scheduling guarantee directly.
// A group of periodic threads is admitted with identical constraints and
// phase correction; each thread then counts iterations with NO
// synchronization whatsoever. The local schedulers, coordinating only
// through calibrated wall-clock time, keep the group in near lock-step
// (Sections 4 and 5.5).
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/group"
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

func main() {
	const n = 16
	spec := machine.PhiKNL().Scaled(n + 1)
	m := machine.New(spec, 99)
	k := core.Boot(m, core.DefaultConfig(spec))

	cons := core.PeriodicConstraints(0, 100_000, 50_000)
	g := group.MustNew(k, "lockstep", n, group.DefaultCosts())
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons,
		group.AdmitOptions{PhaseCorrection: true}, nil))

	// Record every context switch into a member, per CPU.
	switchTimes := make([][]int64, n+1)
	k.OnSwitch = func(cpu int, t *core.Thread, nowNs int64, wall sim.Time) {
		if t.Constraints().Type == core.Periodic {
			switchTimes[cpu] = append(switchTimes[cpu], nowNs)
		}
	}

	iters := make([]int64, n)
	for i := 0; i < n; i++ {
		i := i
		body := core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			iters[i]++
			return core.Compute{Cycles: 30_000}
		})
		k.Spawn(fmt.Sprintf("w%d", i), i+1, core.FlowThen(flow, body))
	}
	k.RunNs(100_000_000) // 100 ms

	var min, max int64
	for i, v := range iters {
		if i == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	fmt.Printf("%d threads, no barriers, 100 ms: iteration counts span [%d, %d]\n", n, min, max)

	// Cross-CPU switch alignment at a common invocation index.
	idx := 50
	var lo, hi int64
	for cpu := 1; cpu <= n; cpu++ {
		if len(switchTimes[cpu]) <= idx {
			continue
		}
		v := switchTimes[cpu][idx]
		if lo == 0 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	spreadCycles := sim.NanosToCycles(hi-lo, spec.FreqHz)
	fmt.Printf("context-switch spread at invocation %d: %d ns (%d cycles)\n",
		idx, hi-lo, int64(spreadCycles))
	fmt.Printf("(the paper keeps 255 threads within ~4000 cycles / ~3 us)\n")
}
