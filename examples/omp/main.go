// OMP example: the mini OpenMP-like run-time from Section 8's integration
// work. One worker team runs the same stencil-ish workload in three modes:
// plain (aperiodic + barriers), gang-scheduled at 90% utilization with
// barriers, and gang-scheduled with barriers REMOVED — timing replaces
// synchronization.
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/omp"
)

func run(label string, cons core.Constraints, sync omp.SyncMode) {
	spec := machine.PhiKNL().Scaled(17)
	m := machine.New(spec, 555)
	k := core.Boot(m, core.DefaultConfig(spec))
	team := omp.MustNewTeam(k, omp.Config{
		Workers: 16, FirstCPU: 1, Constraints: cons, Sync: sync,
	})

	const n, regions = 1024, 50
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	start := k.NowNs()
	for r := 0; r < regions; r++ {
		team.Submit(omp.Region{
			Name: "relax", Iterations: n, CostPerIter: 800,
			Body: func(i int) {
				l, r := (i+n-1)%n, (i+1)%n
				data[i] = (data[l] + data[i] + data[r]) / 3
			},
		})
	}
	if !team.Wait(regions, 1<<28) {
		panic("team stalled")
	}
	fmt.Printf("%-28s %8.3f ms  (checksum %.3f)\n",
		label, float64(k.NowNs()-start)/1e6, data[n/2])
}

func main() {
	fmt.Println("16-worker parallel-for team, 50 fine-grain regions:")
	run("aperiodic + barriers", core.AperiodicConstraints(50), omp.SyncBarrier)
	rt := core.PeriodicConstraints(0, 200_000, 180_000)
	run("gang 90% + barriers", rt, omp.SyncBarrier)
	run("gang 90% + timed (no barriers)", rt, omp.SyncTimed)
	fmt.Println("\ntimed mode deletes every inter-region barrier; lockstep group")
	fmt.Println("scheduling keeps the workers synchronized through time alone.")
}
