// Throttle example: administrative resource control with commensurate
// performance (Section 6.3). The same parallel job is run under a range of
// utilization caps set purely through timing constraints; execution time
// scales inversely with the allocation.
package main

import (
	"fmt"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func main() {
	fmt.Println("BSP job (16 threads, coarse grain) under administrative throttling:")
	fmt.Printf("%-12s %-12s %-10s\n", "utilization", "exec (ms)", "T*u (ms)")

	const periodNs = 1_000_000 // 1 ms
	for _, pct := range []int64{20, 40, 60, 80, 90} {
		spec := machine.PhiKNL().Scaled(17)
		m := machine.New(spec, 7)
		k := core.Boot(m, core.DefaultConfig(spec))

		p := bsp.CoarseGrain(16, 10)
		p.Constraints = core.PeriodicConstraints(0, periodNs, periodNs*pct/100)
		p.PhaseCorrection = true
		r := bsp.New(k, p).Run(1 << 30)

		u := float64(pct) / 100
		execMs := float64(r.ExecNs) / 1e6
		fmt.Printf("%-12.2f %-12.3f %-10.3f\n", u, execMs, execMs*u)
	}
	fmt.Println("\nT*u stays roughly flat: the application gets performance commensurate")
	fmt.Println("with the time resources the administrator grants it.")
}
