// Cyclic example: the paper's future-work direction (Section 8) — compile
// a periodic task set into a cyclic executive and get hard real-time
// behavior by static construction, with far fewer scheduler interactions
// than online EDF.
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/cyclic"
	"hrtsched/internal/machine"
)

func main() {
	tasks := []cyclic.Task{
		{Name: "sensor-fusion", PeriodNs: 100_000, SliceNs: 25_000},
		{Name: "control-law", PeriodNs: 200_000, SliceNs: 70_000},
		{Name: "telemetry", PeriodNs: 400_000, SliceNs: 60_000},
	}
	tbl, err := cyclic.Build(tasks, 0.99)
	if err != nil {
		panic(err)
	}
	fmt.Println("compiled static schedule:")
	fmt.Print(tbl)

	spec := machine.PhiKNL().Scaled(2)
	m := machine.New(spec, 77)
	k := core.Boot(m, core.DefaultConfig(spec))
	ex := cyclic.NewExecutive(k, 1, tbl)
	ex.Start()
	k.RunNs(100_000_000) // 100 ms

	fmt.Printf("\nafter 100 ms: %d hyperperiods, %d dispatches, worst dispatch jitter %d ns\n",
		ex.Cycles(), ex.Dispatches, ex.WorstJitterNs)
	for i, task := range tasks {
		fmt.Printf("  %-14s served %.2f ms (asked %.2f ms)\n", task.Name,
			float64(ex.ServedNs[i])/1e6,
			float64(tbl.HyperperiodNs/task.PeriodNs*task.SliceNs)*float64(ex.Cycles())/1e6)
	}
	fmt.Printf("scheduler invocations on the executive CPU: %d (one per table entry, no admission control)\n",
		k.Locals[1].Stats.Invocations)
}
