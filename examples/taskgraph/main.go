// Taskgraph example: the Legion-like task-based run-time (one of the
// Section 2 HRT ports). A small pipeline-with-fanout graph — simulate,
// then analyze in parallel, then reduce — runs twice: free-running, and
// with every worker individually admitted as a hard real-time periodic
// thread (time-sharing the node with guaranteed slices).
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/legion"
	"hrtsched/internal/machine"
)

func run(label string, cons core.Constraints) {
	spec := machine.PhiKNL().Scaled(5)
	m := machine.New(spec, 1234)
	k := core.Boot(m, core.DefaultConfig(spec))
	rt := legion.MustNew(k, legion.Config{Workers: 4, FirstCPU: 1, Constraints: cons})

	state := rt.NewRegion("state", 64)
	parts := make([]*legion.Region, 4)
	for i := range parts {
		parts[i] = rt.NewRegion(fmt.Sprintf("analysis-%d", i), 1)
	}
	result := rt.NewRegion("result", 1)

	start := k.NowNs()
	const steps = 6
	total := 0
	for s := 0; s < steps; s++ {
		// Simulation step: exclusive on state.
		rt.Submit(legion.Task{Name: "sim", CostCycles: 600_000,
			Reqs: []legion.Req{{Region: state, Mode: legion.ReadWrite}},
			Fn: func() {
				for i := range state.Data {
					state.Data[i] += 1
				}
			}})
		total++
		// Fan-out analyses: read state, write private partials — all four
		// run concurrently.
		for i := range parts {
			p := parts[i]
			rt.Submit(legion.Task{Name: "analyze", CostCycles: 900_000,
				Reqs: []legion.Req{{Region: state, Mode: legion.ReadOnly},
					{Region: p, Mode: legion.ReadWrite}},
				Fn: func() { p.Data[0] = state.Data[0] * 2 }})
			total++
		}
		// Reduce: read partials, update result.
		rt.Submit(legion.Task{Name: "reduce", CostCycles: 200_000,
			Reqs: []legion.Req{
				{Region: parts[0], Mode: legion.ReadOnly},
				{Region: parts[1], Mode: legion.ReadOnly},
				{Region: parts[2], Mode: legion.ReadOnly},
				{Region: parts[3], Mode: legion.ReadOnly},
				{Region: result, Mode: legion.ReadWrite}},
			Fn: func() {
				result.Data[0] = parts[0].Data[0] + parts[1].Data[0] +
					parts[2].Data[0] + parts[3].Data[0]
			}})
		total++
	}
	if !rt.Wait(total, 1<<28) {
		panic("graph stalled")
	}
	fmt.Printf("%-24s %7.3f ms   result=%v   peak parallelism=%d\n",
		label, float64(k.NowNs()-start)/1e6, result.Data[0], rt.MaxConcurrent)
}

func main() {
	fmt.Println("Legion-like task graph: 6x (simulate -> 4x analyze -> reduce)")
	run("free-running", core.AperiodicConstraints(50))
	run("RT workers (50% each)", core.PeriodicConstraints(0, 200_000, 100_000))
	fmt.Println("\nsame results, dependence-driven parallelism intact; the RT run")
	fmt.Println("time-shares the node with a guaranteed 50% slice per worker.")
}
