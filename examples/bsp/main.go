// BSP example: the paper's Section 6 workload as a library consumer would
// run it — a 32-thread fine-grain bulk-synchronous computation on a
// simulated Phi, gang-scheduled through group admission control, once with
// per-iteration barriers and once relying purely on time-synchronized
// hard real-time scheduling.
package main

import (
	"fmt"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func run(useBarrier bool) bsp.Result {
	spec := machine.PhiKNL().Scaled(33) // CPU 0 = interrupt-laden partition
	m := machine.New(spec, 2024)
	k := core.Boot(m, core.DefaultConfig(spec))

	p := bsp.FineGrain(32, 30)
	p.UseBarrier = useBarrier
	p.Constraints = core.PeriodicConstraints(0, 500_000, 450_000) // 90% util
	p.PhaseCorrection = true
	return bsp.New(k, p).Run(1 << 30)
}

func main() {
	with := run(true)
	without := run(false)

	fmt.Println("fine-grain BSP, 32 threads, periodic 500us/450us (90% utilization):")
	fmt.Printf("  with barriers:    %.3f ms  (misses=%d, skew=%d)\n",
		float64(with.ExecNs)/1e6, with.Misses, with.MaxSkew)
	fmt.Printf("  without barriers: %.3f ms  (misses=%d, skew=%d)\n",
		float64(without.ExecNs)/1e6, without.Misses, without.MaxSkew)
	fmt.Printf("  barrier-removal speedup: %.2fx\n",
		float64(with.ExecNs)/float64(without.ExecNs))
	if without.WriteErrors == 0 && without.MaxSkew <= 2 {
		fmt.Println("  lockstep held without any synchronization: ring-write invariant intact")
	}
}
