// Mixedload example: the full scheduling model of Section 3.1 coexisting on
// one node — hard real-time periodic threads, a sporadic burst, aperiodic
// background work balanced by work stealing, size-tagged tasks executed by
// the scheduler, unsized tasks on the helper thread, and a device interrupt
// source steered to the interrupt-laden partition.
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func main() {
	spec := machine.PhiKNL().Scaled(8)
	m := machine.New(spec, 31337)
	cfg := core.DefaultConfig(spec)
	cfg.InterruptThread = true // defer device IRQ bodies to a thread
	k := core.Boot(m, cfg)

	// A NIC-like device interrupting CPU 0 (the interrupt-laden partition)
	// every ~100 us with a bounded 9,000-cycle handler.
	m.IRQ.AddDevice("nic", 130_000, 9_000)

	// Hard real-time: two periodic threads on interrupt-free CPUs.
	mkRT := func(name string, cpu int, periodNs, sliceNs int64) *core.Thread {
		admitted := false
		return k.Spawn(name, cpu, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			if !admitted {
				admitted = true
				return core.ChangeConstraints{C: core.PeriodicConstraints(0, periodNs, sliceNs)}
			}
			return core.Compute{Cycles: 10_000}
		}))
	}
	rt1 := mkRT("sensor", 1, 50_000, 20_000)
	rt2 := mkRT("control", 2, 200_000, 100_000)

	// Sporadic: one guaranteed 300 us burst within 2 ms, then background
	// life at aperiodic priority 80.
	sporadicDone := false
	sp := k.Spawn("burst", 3, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !sporadicDone {
			sporadicDone = true
			return core.ChangeConstraints{C: core.SporadicConstraints(0, 300_000, 2_000_000, 80)}
		}
		return core.Compute{Cycles: 15_000}
	}))

	// Aperiodic batch, all spawned on CPU 4: only work stealing spreads it.
	finished := 0
	for i := 0; i < 12; i++ {
		th := k.SpawnStealable(fmt.Sprintf("batch%d", i), 4,
			core.Seq(core.Compute{Cycles: 3_000_000}))
		th.OnExit = func(*core.Thread) { finished++ }
	}

	// Tasks: size-tagged ones run inline in the scheduler; unsized ones go
	// to the per-CPU helper thread. Neither may disturb the RT threads.
	tasksRun := 0
	for i := 0; i < 6; i++ {
		k.PostTask(5, &core.Task{Name: "sized", SizeCycles: 40_000, ActualCycles: 35_000,
			Fn: func(*core.Kernel, int) { tasksRun++ }})
		k.PostTask(5, &core.Task{Name: "unsized", ActualCycles: 60_000,
			Fn: func(*core.Kernel, int) { tasksRun++ }})
	}

	k.RunNs(60_000_000) // 60 ms

	fmt.Println("mixed workload on 8 CPUs after 60 ms:")
	fmt.Printf("  periodic %q:  %4d arrivals, %d misses\n", rt1.Name(), rt1.Arrivals, rt1.Misses)
	fmt.Printf("  periodic %q: %4d arrivals, %d misses\n", rt2.Name(), rt2.Arrivals, rt2.Misses)
	fmt.Printf("  sporadic %q: now %v (served burst, %d misses)\n",
		sp.Name(), sp.Constraints().Type, sp.Misses)
	fmt.Printf("  aperiodic batch: %d/12 finished\n", finished)
	var steals int64
	for _, ls := range k.Locals {
		steals += ls.Stats.Steals
	}
	fmt.Printf("  work stealing: %d migrations\n", steals)
	fmt.Printf("  tasks executed: %d/12\n", tasksRun)
	fmt.Printf("  device interrupts delivered to CPU 0: %d\n", m.IRQ.Sources()[0].Raised())
}
