// Quickstart: boot a simulated Xeon Phi node, admit one hard real-time
// periodic thread (period 100 us, slice 50 us), run it for 50 simulated
// milliseconds, and report what the scheduler guaranteed.
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func main() {
	// 1. Build the platform: a 4-CPU slice of the Xeon Phi 7210 model.
	spec := machine.PhiKNL().Scaled(4)
	m := machine.New(spec, 42)

	// 2. Boot the kernel: boot-time cycle-counter calibration, one local
	// scheduler per CPU (99% utilization limit, 10%+10% reservations).
	k := core.Boot(m, core.DefaultConfig(spec))
	fmt.Printf("booted %s: %d CPUs @%.1f GHz, TSC calibrated to <=%d cycles\n",
		spec.Name, k.NumCPUs(), float64(spec.FreqHz)/1e9, k.Calib.MaxResidual())

	// 3. Spawn a thread. All threads start aperiodic; this one immediately
	// requests periodic hard real-time constraints and then computes in
	// 20,000-cycle chunks forever.
	cons := core.PeriodicConstraints(0 /*phase*/, 100_000 /*period ns*/, 50_000 /*slice ns*/)
	admitted := false
	th := k.Spawn("worker", 1, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: cons}
		}
		if !tc.AdmitOK {
			fmt.Println("admission rejected:", tc.AdmitErr)
			return core.Exit{}
		}
		return core.Compute{Cycles: 20_000}
	}))

	// 4. Run 50 ms of simulated time.
	k.RunNs(50_000_000)

	// 5. The admission-control contract: the thread received its slice in
	// every period, with zero deadline misses.
	supplyNs := k.Clocks[1].CyclesToNanos(th.SupplyCycles)
	fmt.Printf("thread %q: %d arrivals, %d misses, %.1f%% of CPU (asked 50%%)\n",
		th.Name(), th.Arrivals, th.Misses,
		100*float64(supplyNs)/float64(k.NowNs()))

	st := k.Locals[1].Stats
	fmt.Printf("local scheduler on CPU 1: %d invocations, mean pass %.0f cycles\n",
		st.Invocations, st.ReschedCycles.Mean())
}
