// PGAS example: the UPC-like partitioned-global-address-space run-time
// (one of the Section 2 HRT ports). The same relaxation kernel runs three
// ways: affinity-placed over a blocked array (all-local), chunk-placed over
// a cyclic array (mostly remote), and affinity-placed on a gang-scheduled
// barrier-free team — UPC semantics on hard real-time scheduling.
package main

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/omp"
	"hrtsched/internal/pgas"
)

func run(label string, dist pgas.Distribution, place pgas.Placement,
	cons core.Constraints, sync omp.SyncMode) {
	spec := machine.PhiKNL().Scaled(9)
	m := machine.New(spec, 99)
	k := core.Boot(m, core.DefaultConfig(spec))
	team := omp.MustNewTeam(k, omp.Config{Workers: 8, FirstCPU: 1,
		Constraints: cons, Sync: sync})

	const n = 1024
	a := pgas.NewArray(team, n, dist)
	a.Fill(func(i int) float64 { return float64(i % 7) })

	start := k.NowNs()
	for r := 0; r < 20; r++ {
		if err := pgas.ForAll(team, "relax", n, place, []*pgas.Array{a},
			func(i int) { a.Set(i, a.At(i)*0.5+1) }, 1<<28); err != nil {
			panic(err)
		}
	}
	local, remote := pgas.Stats(a)
	fmt.Printf("%-34s %8.3f ms   local=%d remote=%d   checksum=%.4f\n",
		label, float64(k.NowNs()-start)/1e6, local, remote, a.At(n/2))
}

func main() {
	fmt.Println("UPC-like PGAS relaxation, 8 workers, 1024 shared elements, 20 sweeps:")
	aper := core.AperiodicConstraints(50)
	run("blocked + affinity (all local)", pgas.Blocked, pgas.ByAffinity, aper, omp.SyncBarrier)
	run("cyclic + chunk (mostly remote)", pgas.Cyclic, pgas.ByChunk, aper, omp.SyncBarrier)
	rt := core.PeriodicConstraints(0, 200_000, 180_000)
	run("blocked + affinity, gang timed", pgas.Blocked, pgas.ByAffinity, rt, omp.SyncTimed)
	fmt.Println("\naffinity placement eliminates remote traffic; the gang-scheduled run")
	fmt.Println("drops the barriers too, synchronized purely through time.")
}
