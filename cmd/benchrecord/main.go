// Command benchrecord captures the engine benchmark trajectory as a
// committed JSON artifact (BENCH_PR4.json at the repository root). It runs
// the internal/sim microbenchmarks — rewrite and preserved legacy engine
// side by side — through `go test -bench`, parses the results, times the
// Quick-preset figure suite wall-clock, and writes one machine-readable
// record with the derived speedup ratios.
//
// Usage:
//
//	go run ./cmd/benchrecord                 # writes BENCH_PR4.json
//	go run ./cmd/benchrecord -o out.json -benchtime 500x
//	go run ./cmd/benchrecord -pkg ./internal/serve -bench BenchmarkClusterPlace \
//	    -skip-suite -o BENCH_PR5.json       # durability overhead artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hrtsched/internal/experiments"
)

// benchResult is one parsed `go test -bench` line.
type benchResult struct {
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// record is the schema of BENCH_PR4.json.
type record struct {
	GeneratedBy string                 `json:"generated_by"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Benchtime   string                 `json:"benchtime"`
	Microbench  map[string]benchResult `json:"microbench"`
	Derived     map[string]float64     `json:"derived"`
	QuickSuite  quickSuite             `json:"quick_suite"`
}

// quickSuite is the wall-clock of every registered experiment at the Quick
// preset — the end-to-end number the engine rewrite moves.
type quickSuite struct {
	TotalSeconds float64            `json:"total_seconds"`
	Experiments  map[string]float64 `json:"experiments_seconds"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		out       = flag.String("o", "BENCH_PR4.json", "output path")
		benchtime = flag.String("benchtime", "", "passed to go test -benchtime (default: go's)")
		pattern   = flag.String("bench", "BenchmarkEngine|BenchmarkLegacy|BenchmarkFreeze",
			"benchmark name pattern")
		pkg       = flag.String("pkg", "./internal/sim", "package(s) to benchmark, space-separated")
		skipSuite = flag.Bool("skip-suite", false, "skip the Quick figure-suite timing")
	)
	flag.Parse()

	rec := record{
		GeneratedBy: "cmd/benchrecord",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Benchtime:   *benchtime,
		Microbench:  map[string]benchResult{},
		Derived:     map[string]float64{},
	}

	if err := runMicrobench(&rec, *pkg, *pattern, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	derive(&rec)
	if !*skipSuite {
		runQuickSuite(&rec)
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, quick suite %.2fs)\n",
		*out, len(rec.Microbench), rec.QuickSuite.TotalSeconds)
}

// runMicrobench shells out to `go test -bench` for pkg (which may name
// several space-separated packages) and parses every reported benchmark
// into rec.Microbench.
func runMicrobench(rec *record, pkg, pattern, benchtime string) error {
	args := append([]string{"test"}, strings.Fields(pkg)...)
	args = append(args, "-run", "^$",
		"-bench", pattern, "-benchmem", "-count", "1")
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(outBuf), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r benchResult
		r.N, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rec.Microbench[m[1]] = r
	}
	if len(rec.Microbench) == 0 {
		return fmt.Errorf("no benchmark lines parsed from go test output")
	}
	return nil
}

// derive computes the rewrite-vs-legacy ratios the acceptance gates track.
func derive(rec *record) {
	ratio := func(legacy, rewritten string) (float64, bool) {
		l, okL := rec.Microbench[legacy]
		r, okR := rec.Microbench[rewritten]
		if !okL || !okR || r.NsPerOp == 0 {
			return 0, false
		}
		return l.NsPerOp / r.NsPerOp, true
	}
	pairs := map[string][2]string{
		"freeze_storm_speedup_x": {"BenchmarkLegacyFreezeStorm", "BenchmarkEngineFreezeStorm"},
		"rearm_speedup_x":        {"BenchmarkLegacyRearm", "BenchmarkEngineRearm"},
		"cancel_heavy_speedup_x": {"BenchmarkLegacyCancelHeavy", "BenchmarkEngineCancelHeavy"},
		"throughput_speedup_x":   {"BenchmarkLegacyThroughput", "BenchmarkEngineThroughput"},
		// PR5: cost of fsync-backed placement relative to in-memory — here
		// the "legacy" slot is the durable run so the ratio reads as overhead.
		"durable_place_overhead_x": {"BenchmarkClusterPlaceDurable", "BenchmarkClusterPlaceMemory"},
		// PR8: the memoized/curve fast paths against the uncached analysis.
		"repeat_admission_speedup_x": {"BenchmarkAnalyzeRepeatUncached", "BenchmarkAnalyzeRepeatMemo"},
		"batch_probe_speedup_x":      {"BenchmarkGangProbeUncached", "BenchmarkGangProbeCurve"},
		// PR9: routed place-batch over 4 shard groups against a single group
		// on the same 8 nodes — the horizontal scale-out factor.
		"routed_place_scaleout_x": {"BenchmarkRoutedPlaceOneGroup", "BenchmarkRoutedPlaceFourGroups"},
	}
	for name, p := range pairs {
		if v, ok := ratio(p[0], p[1]); ok {
			rec.Derived[name] = v
		}
	}
	// PR7: end-to-end DAG admission throughput (validate + RTA + placement
	// + removal per op) as an absolute rate rather than a ratio.
	if r, ok := rec.Microbench["BenchmarkDAGAdmission"]; ok && r.NsPerOp > 0 {
		rec.Derived["dag_admission_ops_per_sec"] = 1e9 / r.NsPerOp
	}
	// PR8: absolute placement rates. One bench op is a place+remove pair,
	// so ops/s counts 2 mutations per op — the same accounting as the
	// TestDurablePlaceThroughputAtLeast8k gate.
	for name, bench := range map[string]string{
		"durable_place_ops_per_sec": "BenchmarkClusterPlaceDurable",
		"batch_place_ops_per_sec":   "BenchmarkClusterPlaceBatch",
	} {
		if r, ok := rec.Microbench[bench]; ok && r.NsPerOp > 0 {
			rec.Derived[name] = 2e9 / r.NsPerOp
		}
	}
	// PR9: absolute routed placement rate. One bench op is a 64-item
	// place-batch plus its removals, so placements/s is 64 per op — the
	// same accounting as the TestRoutedPlaceScaleoutAtLeast1_8x gate.
	if r, ok := rec.Microbench["BenchmarkRoutedPlaceFourGroups"]; ok && r.NsPerOp > 0 {
		rec.Derived["routed_place_ops_per_sec"] = 64e9 / r.NsPerOp
	}
	// PR10: what-if simulation throughput. BenchmarkWhatifHyperperiod runs
	// one replication over one hyperperiod per op; BenchmarkWhatifScenario
	// runs one default 20-replication scenario per op.
	if r, ok := rec.Microbench["BenchmarkWhatifHyperperiod"]; ok && r.NsPerOp > 0 {
		rec.Derived["simulate_hyperperiods_per_sec"] = 1e9 / r.NsPerOp
	}
	if r, ok := rec.Microbench["BenchmarkWhatifScenario"]; ok && r.NsPerOp > 0 {
		rec.Derived["simulate_scenarios_per_sec"] = 1e9 / r.NsPerOp
	}
}

// runQuickSuite times every registered experiment at the Quick preset.
func runQuickSuite(rec *record) {
	rec.QuickSuite.Experiments = map[string]float64{}
	ids := experiments.IDs()
	sort.Strings(ids)
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		if _, err := experiments.Run(id, experiments.DefaultOptions()); err != nil {
			fmt.Fprintf(os.Stderr, "benchrecord: experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		rec.QuickSuite.Experiments[id] = time.Since(t0).Seconds()
	}
	rec.QuickSuite.TotalSeconds = time.Since(start).Seconds()
}
