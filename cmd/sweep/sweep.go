package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hrtsched/internal/stats"
	"hrtsched/internal/whatif"
)

// sweepRow is one cell of the distributed what-if grid: a (model,
// utilization, seed) scenario and the report highlights it produced.
// Fixed field order keeps -json output byte-stable.
type sweepRow struct {
	Scenario     string  `json:"scenario"`
	Model        string  `json:"model"`
	Util         float64 `json:"util"`
	Seed         uint64  `json:"seed"`
	Target       string  `json:"target"`
	Admit        bool    `json:"admit"`
	Replications int     `json:"replications"`
	SurvivedReps int     `json:"survived_reps"`
	SurvivalProb float64 `json:"survival_prob"`
	Misses       int64   `json:"misses"`
	LateJobs     int64   `json:"late_jobs"`
	AdmittedMiss int     `json:"admitted_missed_reps"`
	RejectedOK   int     `json:"rejected_clean_reps"`
	Err          string  `json:"error,omitempty"`
}

// sweepSummary aggregates one (model, utilization) grid line across its
// seeds: the error bar for the EXPERIMENTS.md stochastic-sweep plot.
type sweepSummary struct {
	Model    string  `json:"model"`
	Util     float64 `json:"util"`
	Seeds    int     `json:"seeds"`
	ProbMean float64 `json:"survival_prob_mean"`
	ProbStd  float64 `json:"survival_prob_std"`
	Misses   int64   `json:"misses_total"`
	Late     int64   `json:"late_jobs_total"`
}

// sweepScenario builds the grid cell's scenario: a provisioning
// question. Two tasks with FIXED nominal demand (WCETs of 27% and 18%
// of the period, 45% combined) share ONE CPU, and the swept utilization
// is the bandwidth RESERVED for them, split 60/40. The util axis is
// therefore headroom: at 0.45 the reservations equal the WCETs and any
// overrun is fatal; at 0.9 each task holds twice its nominal demand.
// The reservation clips hard — a job that exhausts its slice is parked
// until its next arrival, never absorbed into idle bandwidth — so
// overrun models (random-a,b with b > 1) trace how much headroom buys
// back survival while WCET-bounded models stay flat at 1.0. The horizon
// spans several hyperperiods because an overrunning job completes in a
// LATER period; a one-hyperperiod horizon ends before any overrun
// becomes observable. The scenario name encodes the cell so rendezvous
// routing spreads the grid across shard groups.
func sweepScenario(model string, util float64, periodNs int64, reps, hyperperiods int, faults []string, idx int) whatif.Scenario {
	w1 := int64(0.27 * float64(periodNs))
	w2 := int64(0.18 * float64(periodNs))
	s1 := int64(util * 0.6 * float64(periodNs))
	s2 := int64(util * 0.4 * float64(periodNs))
	return whatif.Scenario{
		Name:   fmt.Sprintf("sweep-%d-%s-u%.2f", idx, model, util),
		CPUs:   1,
		Model:  model,
		Faults: faults,
		Tasks: []whatif.Task{
			{PeriodNs: periodNs, SliceNs: s1, WcetNs: w1, CPU: 0},
			{PeriodNs: periodNs, SliceNs: s2, WcetNs: w2, CPU: 0},
		},
		Replications: reps,
		Hyperperiods: hyperperiods,
	}
}

// postSimulate runs one grid cell against one target, honoring 429/503
// Retry-After (bounded retries) so a busy group sheds without losing the
// cell.
func postSimulate(client *http.Client, target string, sc whatif.Scenario, seed uint64) (*whatif.Report, error) {
	body, err := json.Marshal(struct {
		Scenario whatif.Scenario `json:"scenario"`
		Seed     uint64          `json:"seed"`
	}{sc, seed})
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post("http://"+target+"/v1/simulate", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var rep whatif.Report
			if err := json.Unmarshal(b, &rep); err != nil {
				return nil, err
			}
			return &rep, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt >= 8 {
				return nil, fmt.Errorf("%s: shed %d times, giving up", target, attempt+1)
			}
			delay := 100 * time.Millisecond
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && secs > 0 {
					delay = time.Duration(secs) * time.Second
				}
			}
			if delay > 2*time.Second {
				delay = 2 * time.Second
			}
			time.Sleep(delay)
		default:
			return nil, fmt.Errorf("%s: status %d: %s", target, resp.StatusCode, strings.TrimSpace(string(b)))
		}
	}
}

// runSweep fans the (model x util x seed) grid over the targets with
// bounded concurrency, then prints the merged rows in deterministic grid
// order plus per-(model,util) error-bar summaries. Returns the number of
// failed cells.
func runSweep(targets, models []string, utils []float64, seeds, reps, hyperperiods int,
	periodNs int64, faults []string, conc int, asJSON bool) int {
	client := &http.Client{Timeout: 120 * time.Second}
	type cell struct {
		model string
		util  float64
		seed  uint64
		idx   int
	}
	var cells []cell
	for _, mdl := range models {
		for _, u := range utils {
			for s := 0; s < seeds; s++ {
				cells = append(cells, cell{mdl, u, uint64(s + 1), len(cells)})
			}
		}
	}
	rows := make([]sweepRow, len(cells))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			target := targets[c.idx%len(targets)]
			sc := sweepScenario(c.model, c.util, periodNs, reps, hyperperiods, faults, c.idx)
			row := sweepRow{Scenario: sc.Name, Model: c.model, Util: c.util,
				Seed: c.seed, Target: target}
			rep, err := postSimulate(client, target, sc, c.seed)
			if err != nil {
				row.Err = err.Error()
			} else {
				row.Admit = rep.Admit
				row.Replications = rep.Replications
				row.SurvivedReps = rep.SurvivedReps
				row.SurvivalProb = rep.SurvivalProb
				row.Misses = rep.TotalMisses
				row.LateJobs = rep.TotalLateJobs
				row.AdmittedMiss = rep.Disagreement.AdmittedMissedReps
				row.RejectedOK = rep.Disagreement.RejectedCleanReps
			}
			rows[i] = row
		}(i, c)
	}
	wg.Wait()

	// Merge: rows are already in grid order (model-major, then util, then
	// seed); summaries aggregate each (model, util) line across its seeds.
	var summaries []sweepSummary
	byLine := map[string]*stats.Summary{}
	lineTotals := map[string]*sweepSummary{}
	var lineKeys []string
	failed := 0
	for _, row := range rows {
		if row.Err != "" {
			failed++
			continue
		}
		key := row.Model + "\x00" + strconv.FormatFloat(row.Util, 'g', -1, 64)
		if byLine[key] == nil {
			byLine[key] = &stats.Summary{}
			lineTotals[key] = &sweepSummary{Model: row.Model, Util: row.Util}
			lineKeys = append(lineKeys, key)
		}
		byLine[key].Add(row.SurvivalProb)
		lineTotals[key].Seeds++
		lineTotals[key].Misses += row.Misses
		lineTotals[key].Late += row.LateJobs
	}
	sort.Strings(lineKeys)
	for _, key := range lineKeys {
		s := lineTotals[key]
		s.ProbMean = byLine[key].Mean()
		s.ProbStd = byLine[key].Std()
		summaries = append(summaries, *s)
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, row := range rows {
			enc.Encode(struct { //nolint:errcheck
				Kind string `json:"kind"`
				sweepRow
			}{"row", row})
		}
		for _, s := range summaries {
			enc.Encode(struct { //nolint:errcheck
				Kind string `json:"kind"`
				sweepSummary
			}{"summary", s})
		}
	} else {
		for _, row := range rows {
			if row.Err != "" {
				fmt.Printf("%-28s model=%-22s util=%.2f seed=%-3d ERROR %s\n",
					row.Scenario, row.Model, row.Util, row.Seed, row.Err)
				continue
			}
			fmt.Printf("%-28s model=%-22s util=%.2f seed=%-3d admit=%-5v survived=%d/%d prob=%.4f misses=%d late=%d\n",
				row.Scenario, row.Model, row.Util, row.Seed, row.Admit,
				row.SurvivedReps, row.Replications, row.SurvivalProb,
				row.Misses, row.LateJobs)
		}
		for _, s := range summaries {
			fmt.Printf("summary model=%-22s util=%.2f seeds=%d survival=%.4f±%.4f misses=%d late=%d\n",
				s.Model, s.Util, s.Seeds, s.ProbMean, s.ProbStd, s.Misses, s.Late)
		}
	}
	return failed
}
