// Command sweep runs a single BSP benchmark configuration at arbitrary
// parameters — the building block of Figures 13-16 — and prints the
// result row: utilization, execution time, misses, skew, and the
// with/without-barrier comparison when requested.
//
// Usage:
//
//	sweep -p 64 -ne 8192 -nc 8 -nw 16 -n 20 -period 1000 -slicepct 50
//	sweep -p 255 -fine -compare            # with vs without barrier
//	sweep -p 64 -aperiodic                 # non-real-time reference
package main

import (
	"flag"
	"fmt"
	"os"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func main() {
	var (
		p        = flag.Int("p", 64, "benchmark threads (CPUs 1..p)")
		ne       = flag.Int("ne", 8192, "elements per CPU")
		nc       = flag.Int("nc", 8, "computations per element")
		nw       = flag.Int("nw", 16, "remote writes per iteration")
		n        = flag.Int("n", 20, "iterations")
		fine     = flag.Bool("fine", false, "use the finest-granularity preset")
		coarse   = flag.Bool("coarse", false, "use the coarsest-granularity preset")
		periodUs = flag.Int64("period", 1000, "period in microseconds")
		slicePct = flag.Int64("slicepct", 50, "slice as percent of period")
		aper     = flag.Bool("aperiodic", false, "run without real-time constraints")
		compare  = flag.Bool("compare", false, "run with AND without the barrier")
		seed     = flag.Uint64("seed", 11, "random seed")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *p <= 0 {
		fail("-p must be positive (got %d)", *p)
	}
	if *n <= 0 {
		fail("-n must be positive (got %d)", *n)
	}
	if *ne <= 0 || *nc <= 0 || *nw < 0 {
		fail("-ne and -nc must be positive, -nw non-negative (got ne=%d nc=%d nw=%d)", *ne, *nc, *nw)
	}
	if *periodUs <= 0 {
		fail("-period must be positive microseconds (got %d)", *periodUs)
	}
	if *slicePct <= 0 || *slicePct > 100 {
		fail("-slicepct must be in (0,100] (got %d)", *slicePct)
	}
	if *fine && *coarse {
		fail("-fine and -coarse are mutually exclusive")
	}

	params := bsp.Params{P: *p, NE: *ne, NC: *nc, NW: *nw, N: *n,
		FirstCPU: 1, UseBarrier: true, PhaseCorrection: true}
	if *fine {
		params = bsp.FineGrain(*p, *n)
	}
	if *coarse {
		params = bsp.CoarseGrain(*p, *n)
	}
	if *aper {
		params.Constraints = core.AperiodicConstraints(50)
	} else {
		periodNs := *periodUs * 1000
		params.Constraints = core.PeriodicConstraints(0, periodNs, periodNs**slicePct/100)
	}

	run := func(useBarrier bool) bsp.Result {
		spec := machine.PhiKNL().Scaled(*p + 1)
		m := machine.New(spec, *seed)
		k := core.Boot(m, core.DefaultConfig(spec))
		pp := params
		pp.UseBarrier = useBarrier
		return bsp.New(k, pp).Run(1 << 32)
	}

	print := func(tag string, r bsp.Result) {
		if r.GroupFailed {
			fmt.Fprintf(os.Stderr, "%s: group admission FAILED\n", tag)
			os.Exit(1)
		}
		fmt.Printf("%-16s util=%.2f exec=%.4fs iterations=%d misses=%d skew=%d writeErrs=%d\n",
			tag, r.Params.Constraints.Utilization(), float64(r.ExecNs)/1e9,
			r.Iterations, r.Misses, r.MaxSkew, r.WriteErrors)
	}

	if *compare && !*aper {
		with := run(true)
		without := run(false)
		print("with-barrier", with)
		print("without-barrier", without)
		if without.ExecNs > 0 {
			fmt.Printf("barrier removal speedup: %.2fx\n",
				float64(with.ExecNs)/float64(without.ExecNs))
		}
		return
	}
	print("run", run(params.UseBarrier || *aper))
}
