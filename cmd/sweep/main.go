// Command sweep runs a single BSP benchmark configuration at arbitrary
// parameters — the building block of Figures 13-16 — and prints the
// result row: utilization, execution time, misses, skew, and the
// with/without-barrier comparison when requested. -json switches the row
// to one machine-readable JSON object per line (text stays the default).
//
// With -targets the command becomes a distributed what-if sweep driver
// instead: it fans a (model x utilization x seed) scenario grid over the
// listed hrtd daemons' POST /v1/simulate endpoints with bounded
// concurrency, honors their 429 Retry-After sheds, and merges the result
// rows in deterministic grid order, closing with per-(model,util)
// error-bar summaries (mean ± std of survival probability across seeds).
// Because every cell's seed is in the request, rerunning the same grid
// against the same fleet reproduces the same rows byte for byte.
//
// Usage:
//
//	sweep -p 64 -ne 8192 -nc 8 -nw 16 -n 20 -period 1000 -slicepct 50
//	sweep -p 255 -fine -compare            # with vs without barrier
//	sweep -p 64 -aperiodic                 # non-real-time reference
//	sweep -targets 127.0.0.1:8080 -models wcet,full-random -utils 0.5,0.8
//	sweep -targets $(cat /tmp/a.addr),$(cat /tmp/b.addr) -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/whatif"
)

func main() {
	var (
		p        = flag.Int("p", 64, "benchmark threads (CPUs 1..p)")
		ne       = flag.Int("ne", 8192, "elements per CPU")
		nc       = flag.Int("nc", 8, "computations per element")
		nw       = flag.Int("nw", 16, "remote writes per iteration")
		n        = flag.Int("n", 20, "iterations")
		fine     = flag.Bool("fine", false, "use the finest-granularity preset")
		coarse   = flag.Bool("coarse", false, "use the coarsest-granularity preset")
		periodUs = flag.Int64("period", 1000, "period in microseconds")
		slicePct = flag.Int64("slicepct", 50, "slice as percent of period")
		aper     = flag.Bool("aperiodic", false, "run without real-time constraints")
		compare  = flag.Bool("compare", false, "run with AND without the barrier")
		seed     = flag.Uint64("seed", 11, "random seed")
		asJSON   = flag.Bool("json", false, "print machine-readable JSON rows instead of text")

		// Distributed what-if sweep flags (active with -targets).
		targetsCSV = flag.String("targets", "", "comma-separated hrtd host:port list; fans a what-if grid over their /v1/simulate")
		modelsCSV  = flag.String("models", "wcet,full-random,half-random", "comma-separated execution models for the grid")
		utilsCSV   = flag.String("utils", "0.5,0.7,0.9", "comma-separated task-set utilizations for the grid")
		gridSeeds  = flag.Int("grid-seeds", 3, "seeds per (model,util) grid cell")
		reps       = flag.Int("reps", 20, "replications per scenario")
		hypers     = flag.Int("hyperperiods", 4, "hyperperiods simulated per replication")
		faultsCSV  = flag.String("faults", "", "comma-separated fault presets applied to every grid scenario")
		conc       = flag.Int("conc", 4, "concurrent in-flight /v1/simulate requests")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}

	if *targetsCSV != "" {
		targets := splitCSV(*targetsCSV)
		models := splitModels(*modelsCSV)
		var faults []string
		if *faultsCSV != "" {
			faults = splitCSV(*faultsCSV)
		}
		var utils []float64
		for _, s := range splitCSV(*utilsCSV) {
			u, err := strconv.ParseFloat(s, 64)
			if err != nil || u <= 0 || u > 1 {
				fail("-utils entries must be in (0,1] (got %q)", s)
			}
			utils = append(utils, u)
		}
		if len(targets) == 0 || len(models) == 0 || len(utils) == 0 {
			fail("-targets, -models and -utils must be non-empty")
		}
		for _, m := range models {
			if _, err := whatif.ParseModel(m); err != nil {
				fail("%v", err)
			}
		}
		if *gridSeeds <= 0 || *reps <= 0 || *conc <= 0 {
			fail("-grid-seeds, -reps and -conc must be positive")
		}
		if *hypers <= 0 || *hypers > whatif.MaxHyperperiods {
			fail("-hyperperiods must be in [1,%d] (got %d)", whatif.MaxHyperperiods, *hypers)
		}
		if *periodUs <= 0 {
			fail("-period must be positive microseconds (got %d)", *periodUs)
		}
		if failed := runSweep(targets, models, utils, *gridSeeds, *reps, *hypers,
			*periodUs*1000, faults, *conc, *asJSON); failed > 0 {
			fmt.Fprintf(os.Stderr, "sweep: %d grid cells failed\n", failed)
			os.Exit(1)
		}
		return
	}

	if *p <= 0 {
		fail("-p must be positive (got %d)", *p)
	}
	if *n <= 0 {
		fail("-n must be positive (got %d)", *n)
	}
	if *ne <= 0 || *nc <= 0 || *nw < 0 {
		fail("-ne and -nc must be positive, -nw non-negative (got ne=%d nc=%d nw=%d)", *ne, *nc, *nw)
	}
	if *periodUs <= 0 {
		fail("-period must be positive microseconds (got %d)", *periodUs)
	}
	if *slicePct <= 0 || *slicePct > 100 {
		fail("-slicepct must be in (0,100] (got %d)", *slicePct)
	}
	if *fine && *coarse {
		fail("-fine and -coarse are mutually exclusive")
	}

	params := bsp.Params{P: *p, NE: *ne, NC: *nc, NW: *nw, N: *n,
		FirstCPU: 1, UseBarrier: true, PhaseCorrection: true}
	if *fine {
		params = bsp.FineGrain(*p, *n)
	}
	if *coarse {
		params = bsp.CoarseGrain(*p, *n)
	}
	if *aper {
		params.Constraints = core.AperiodicConstraints(50)
	} else {
		periodNs := *periodUs * 1000
		params.Constraints = core.PeriodicConstraints(0, periodNs, periodNs**slicePct/100)
	}

	run := func(useBarrier bool) bsp.Result {
		spec := machine.PhiKNL().Scaled(*p + 1)
		m := machine.New(spec, *seed)
		k := core.Boot(m, core.DefaultConfig(spec))
		pp := params
		pp.UseBarrier = useBarrier
		return bsp.New(k, pp).Run(1 << 32)
	}

	print := func(tag string, r bsp.Result) {
		if r.GroupFailed {
			fmt.Fprintf(os.Stderr, "%s: group admission FAILED\n", tag)
			os.Exit(1)
		}
		if *asJSON {
			row := struct {
				Tag        string  `json:"tag"`
				Util       float64 `json:"util"`
				ExecS      float64 `json:"exec_s"`
				Iterations int64   `json:"iterations"`
				Misses     int64   `json:"misses"`
				MaxSkew    int64   `json:"max_skew"`
				WriteErrs  int64   `json:"write_errors"`
			}{tag, r.Params.Constraints.Utilization(), float64(r.ExecNs) / 1e9,
				r.Iterations, r.Misses, r.MaxSkew, r.WriteErrors}
			enc := json.NewEncoder(os.Stdout)
			enc.Encode(row) //nolint:errcheck
			return
		}
		fmt.Printf("%-16s util=%.2f exec=%.4fs iterations=%d misses=%d skew=%d writeErrs=%d\n",
			tag, r.Params.Constraints.Utilization(), float64(r.ExecNs)/1e9,
			r.Iterations, r.Misses, r.MaxSkew, r.WriteErrors)
	}

	if *compare && !*aper {
		with := run(true)
		without := run(false)
		print("with-barrier", with)
		print("without-barrier", without)
		if without.ExecNs > 0 && !*asJSON {
			fmt.Printf("barrier removal speedup: %.2fx\n",
				float64(with.ExecNs)/float64(without.ExecNs))
		}
		return
	}
	print("run", run(params.UseBarrier || *aper))
}

// splitModels splits the -models comma list. A "random-a,b" model
// contains a comma of its own; since no model name starts with a digit,
// a fragment that does is glued back onto the previous entry, so
// "wcet,random-1.0,1.3" parses as two models.
func splitModels(s string) []string {
	var out []string
	for _, part := range splitCSV(s) {
		if len(out) > 0 && part[0] >= '0' && part[0] <= '9' {
			out[len(out)-1] += "," + part
			continue
		}
		out = append(out, part)
	}
	return out
}

// splitCSV splits a comma list, trimming blanks and dropping empties.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
