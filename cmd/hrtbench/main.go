// Command hrtbench runs the reproduction experiments: one harness per
// figure of the paper's evaluation (Figures 3-16) plus the ablations.
//
// Usage:
//
//	hrtbench -list
//	hrtbench -fig 6                 # quick preset of Figure 6
//	hrtbench -fig 13 -full          # full-scale (255-CPU) sweep
//	hrtbench -exp ablation-eager    # named experiment
//	hrtbench -all                   # every experiment, quick preset
//	hrtbench -fig 6 -plot           # add an ASCII scatter of the series
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hrtsched/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to reproduce (3-16)")
		exp     = flag.String("exp", "", "experiment id (see -list)")
		all     = flag.Bool("all", false, "run every registered experiment")
		full    = flag.Bool("full", false, "full-scale (paper-size) parameters")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Uint64("seed", 0x5eed, "root random seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		plot    = flag.Bool("plot", false, "render an ASCII scatter plot too")
	)
	flag.Parse()

	// Every flag is validated up front: an invalid invocation exits 2 with
	// a usage line before any simulation starts.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hrtbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *workers < 0 {
		fail("-workers must be non-negative (got %d)", *workers)
	}
	selectors := 0
	for _, on := range []bool{*all, *fig != 0, *exp != "", *list} {
		if on {
			selectors++
		}
	}
	if selectors > 1 {
		fail("-fig, -exp, -all, and -list are mutually exclusive")
	}
	if *fig != 0 && (*fig < 3 || *fig > 16) {
		fail("-fig must be in 3..16 (got %d); see -list", *fig)
	}
	if *exp != "" {
		known := false
		for _, id := range experiments.IDs() {
			if id == *exp {
				known = true
				break
			}
		}
		if !known {
			fail("unknown experiment %q; see -list", *exp)
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Scale: experiments.Quick, Seed: *seed, Workers: *workers}
	if *full {
		opts.Scale = experiments.Full
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != 0:
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *exp != "":
		ids = []string{*exp}
	default:
		fail("specify -fig N, -exp ID, -all, or -list")
	}

	for _, id := range ids {
		start := time.Now()
		figure, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(figure.Format())
		if *plot {
			fmt.Print(figure.Plot(72, 20))
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
