// Command hrtbench runs the reproduction experiments: one harness per
// figure of the paper's evaluation (Figures 3-16) plus the ablations.
//
// Usage:
//
//	hrtbench -list
//	hrtbench -fig 6                 # quick preset of Figure 6
//	hrtbench -fig 13 -full          # full-scale (255-CPU) sweep
//	hrtbench -exp ablation-eager    # named experiment
//	hrtbench -all                   # every experiment, quick preset
//	hrtbench -fig 6 -plot           # add an ASCII scatter of the series
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hrtsched/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to reproduce (3-16)")
		exp     = flag.String("exp", "", "experiment id (see -list)")
		all     = flag.Bool("all", false, "run every registered experiment")
		full    = flag.Bool("full", false, "full-scale (paper-size) parameters")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Uint64("seed", 0x5eed, "root random seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		plot    = flag.Bool("plot", false, "render an ASCII scatter plot too")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Scale: experiments.Quick, Seed: *seed, Workers: *workers}
	if *full {
		opts.Scale = experiments.Full
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "hrtbench: -workers must be non-negative (got %d)\n", *workers)
		os.Exit(2)
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != 0:
		if *fig < 3 || *fig > 16 {
			fmt.Fprintf(os.Stderr, "hrtbench: -fig must be in 3..16 (got %d); see -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig N, -exp ID, -all, or -list")
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		figure, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(figure.Format())
		if *plot {
			fmt.Print(figure.Plot(72, 20))
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
