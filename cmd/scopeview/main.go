// Command scopeview renders the Figure 4 experiment as ASCII oscilloscope
// traces: it runs a periodic hard real-time thread with GPIO
// instrumentation on the simulated Phi and prints a persistence view of
// each pin — '#' columns are hit on every cycle (sharp), '.' columns only
// sometimes (fuzz).
//
// Usage:
//
//	scopeview [-period us] [-slice us] [-ms run-milliseconds] [-cols n]
package main

import (
	"flag"
	"fmt"
	"os"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/scope"
)

func main() {
	var (
		periodUs = flag.Int64("period", 100, "thread period in microseconds")
		sliceUs  = flag.Int64("slice", 50, "thread slice in microseconds")
		runMs    = flag.Int64("ms", 50, "simulated run length in milliseconds")
		cols     = flag.Int("cols", 100, "persistence view width")
		seed     = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scopeview: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *periodUs <= 0 {
		fail("-period must be positive microseconds (got %d)", *periodUs)
	}
	if *sliceUs <= 0 || *sliceUs > *periodUs {
		fail("-slice must be in (0, period] microseconds (got slice=%d period=%d)", *sliceUs, *periodUs)
	}
	if *runMs <= 0 {
		fail("-ms must be positive milliseconds (got %d)", *runMs)
	}
	if *cols <= 0 {
		fail("-cols must be positive (got %d)", *cols)
	}

	spec := machine.PhiKNL().Scaled(4)
	m := machine.New(spec, *seed)
	k := core.Boot(m, core.DefaultConfig(spec))

	const cpu = 1
	admitted := false
	cons := core.PeriodicConstraints(0, *periodUs*1000, *sliceUs*1000)
	th := k.Spawn("test", cpu, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: cons}
		}
		return core.Compute{Cycles: 20_000}
	}))
	k.SetScope(&core.ScopeHook{CPU: cpu, Thread: th})
	k.RunNs(*runMs * 1_000_000)

	fmt.Printf("periodic thread tau=%dus sigma=%dus on simulated %s (CPU %d), %d ms\n\n",
		*periodUs, *sliceUs, spec.Name, cpu, *runMs)
	for _, tr := range []*scope.Trace{
		scope.Analyze(m, 0, "test thread"),
		scope.Analyze(m, 1, "scheduler"),
		scope.Analyze(m, 2, "interrupt"),
	} {
		fmt.Println(tr)
		fmt.Print(tr.RenderPersistence(*cols))
		fmt.Println()
	}
	fmt.Printf("thread: arrivals=%d misses=%d\n", th.Arrivals, th.Misses)
}
