// Command hrtload is a closed-loop load generator for hrtd with two modes.
//
// In -mode query (the default) N connections each fire admission queries
// back-to-back for a fixed duration, mixing repeated task sets (drawn
// from a popular pool, exercising the verdict cache) with unique ones
// (forcing fresh analyses), then report throughput, latency quantiles,
// error counts, and the server-side cache hit rate scraped from /metrics.
//
// In -mode cluster the connections drive the stateful placement session
// instead: each worker keeps a small ring of live placements, evicting
// its oldest set to make room before placing a fresh one, so the cluster
// churns through admissions and removals for the whole run. The report
// adds placement/rejection counts and the scraped
// hrtd_cluster_placed_total.
//
// In -mode dag the workers drive /v1/dag/place instead: each submits
// randomized small DAG tasks (3-6 nodes, forward edges, mixed analyzers)
// through the response-time-analysis admission path, cycling a ring of
// live reservations exactly like cluster mode. The report adds the
// scraped hrtd_dag_placed_total.
//
// In -mode batch the workers drive /v1/cluster/place-batch: each places
// -live gangs per POST in one batched envelope, checks every per-item
// verdict, then removes them and goes again — the closed-loop shape of
// cluster mode with the round trips amortized across the batch. The
// report counts each envelope item as a placement.
//
// In -mode status a single GET of /v1/cluster/status is printed as one
// greppable line (placements, per-counter totals, DAG reservations,
// durability health, replication role) — the probe the recovery,
// failover, and dag smoke tests diff across a kill -9.
//
// In -mode simulate the workers drive POST /v1/simulate closed-loop with
// a small pool of precomputed what-if scenarios. Because every scenario
// body carries its own seed, repeated submissions of the same body must
// answer byte-identically; any divergence counts as a determinism
// mismatch and fails -check. 429 sheds back off for Retry-After like
// every other mode, and the report scrapes the server's hrtd_whatif_*
// counters.
//
// Against a replicated hrtd the generator is failover-aware: mutations
// sent to a follower follow its 307 redirect to the leader (counted and
// reported), and 429/503 responses back off for the server's Retry-After
// with jitter instead of hammering a cluster that is mid-election.
//
// Usage:
//
//	hrtload -addr 127.0.0.1:8080 -dur 2s -conns 16 -repeat 0.9
//	hrtload -addr $(cat /tmp/hrtd.addr) -dur 2s -check     # exit 1 on failure
//	hrtload -addr $(cat /tmp/hrtd.addr) -mode cluster -check
//	hrtload -addr $(cat /tmp/hrtd.addr) -mode simulate -check
//	hrtload -addr $(cat /tmp/hrtd.addr) -mode status -check
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// periodMenuUs are the popular-pool periods; all divide 1 ms so pool sets
// keep small hyperperiods and analyses stay cheap.
var periodMenuUs = []int64{100, 200, 250, 500, 1000}

type workerResult struct {
	requests  int64
	errors    int64 // transport failures and unexpected statuses
	sheds     int64 // 429/503 backpressure responses (each backs off)
	cacheHits int64 // X-Hrtd-Cache: hit (query mode)
	placed    int64 // admitted placements (cluster mode)
	rejected  int64 // placements every node refused (cluster mode)
	// mismatches counts simulate-mode replies that diverged from the
	// first-seen reply for the same request body: determinism violations.
	mismatches int64
	latencyUs  []float64
}

// redirects counts 307 leader redirects the HTTP client followed —
// shared across workers because the redirect hook lives on the client.
var redirects atomic.Int64

func main() {
	var (
		addr   = flag.String("addr", "", "hrtd address host:port (required)")
		mode   = flag.String("mode", "query", "load shape: query, cluster, batch, dag, simulate, or status")
		dur    = flag.Duration("dur", 2*time.Second, "how long to generate load")
		conns  = flag.Int("conns", 16, "concurrent closed-loop connections")
		pool   = flag.Int("pool", 64, "popular task-set pool size (query mode)")
		repeat = flag.Float64("repeat", 0.9, "fraction of queries drawn from the pool in [0,1]")
		live   = flag.Int("live", 4, "live placements each worker cycles through (cluster mode)")
		seed   = flag.Uint64("seed", 11, "random seed")
		check  = flag.Bool("check", false, "exit 1 on any hard error or a dead cache/cluster")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hrtload: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *addr == "" {
		fail("-addr is required")
	}
	if *mode != "query" && *mode != "cluster" && *mode != "batch" && *mode != "dag" &&
		*mode != "simulate" && *mode != "status" {
		fail("-mode must be query, cluster, batch, dag, simulate, or status (got %q)", *mode)
	}
	if *dur <= 0 {
		fail("-dur must be positive (got %v)", *dur)
	}
	if *conns <= 0 {
		fail("-conns must be positive (got %d)", *conns)
	}
	if *pool <= 0 {
		fail("-pool must be positive (got %d)", *pool)
	}
	if *repeat < 0 || *repeat > 1 {
		fail("-repeat must be in [0,1] (got %g)", *repeat)
	}
	if *live <= 0 {
		fail("-live must be positive (got %d)", *live)
	}

	base := "http://" + *addr
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *conns * 2,
			MaxIdleConnsPerHost: *conns * 2,
		},
		Timeout: 5 * time.Second,
		// A follower answers mutations with 307 + Location: leader. The
		// standard client re-sends the body (GetBody is set for string
		// readers); the hook just counts the hops and keeps the cap.
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) >= 5 {
				return fmt.Errorf("stopped after 5 redirects")
			}
			redirects.Add(1)
			return nil
		},
	}

	if *mode == "status" {
		if err := printStatus(client, base); err != nil {
			fmt.Fprintf(os.Stderr, "hrtload: status: %v\n", err)
			if *check {
				os.Exit(1)
			}
		}
		return
	}

	rng := sim.NewRand(*seed)
	deadline := time.Now().Add(*dur)
	results := make([]workerResult, *conns)
	var uniqueCtr atomic.Int64
	var wg sync.WaitGroup

	switch *mode {
	case "query":
		// Popular pool: small sets over the period menu, slices 10-30% of
		// the period — admissible alone, cheap to simulate, all distinct.
		poolBodies := make([]string, *pool)
		for i := range poolBodies {
			poolBodies[i] = poolBody(rng, i)
		}
		for w := 0; w < *conns; w++ {
			wg.Add(1)
			go func(res *workerResult, rng *sim.Rand) {
				defer wg.Done()
				queryWorker(client, base, deadline, poolBodies, *repeat, &uniqueCtr, res, rng)
			}(&results[w], rng.Split())
		}
	case "cluster":
		for w := 0; w < *conns; w++ {
			wg.Add(1)
			go func(w int, res *workerResult, rng *sim.Rand) {
				defer wg.Done()
				clusterWorker(client, base, deadline, w, *live, &uniqueCtr, res, rng)
			}(w, &results[w], rng.Split())
		}
	case "batch":
		for w := 0; w < *conns; w++ {
			wg.Add(1)
			go func(w int, res *workerResult, rng *sim.Rand) {
				defer wg.Done()
				batchWorker(client, base, deadline, w, *live, &uniqueCtr, res, rng)
			}(w, &results[w], rng.Split())
		}
	case "dag":
		for w := 0; w < *conns; w++ {
			wg.Add(1)
			go func(w int, res *workerResult, rng *sim.Rand) {
				defer wg.Done()
				dagWorker(client, base, deadline, w, *live, &uniqueCtr, res, rng)
			}(w, &results[w], rng.Split())
		}
	case "simulate":
		// A small shared pool of scenario bodies: every worker re-submits
		// bodies its peers have run, so the byte-identity check exercises
		// cross-worker (and, routed, cross-group) determinism.
		simBodies := make([]string, 8)
		for i := range simBodies {
			simBodies[i] = simBody(rng, i)
		}
		var seen sync.Map // body index -> first-seen reply
		for w := 0; w < *conns; w++ {
			wg.Add(1)
			go func(res *workerResult, rng *sim.Rand) {
				defer wg.Done()
				simulateWorker(client, base, deadline, simBodies, &seen, res, rng)
			}(&results[w], rng.Split())
		}
	}
	wg.Wait()

	var total workerResult
	for i := range results {
		total.requests += results[i].requests
		total.errors += results[i].errors
		total.sheds += results[i].sheds
		total.cacheHits += results[i].cacheHits
		total.placed += results[i].placed
		total.rejected += results[i].rejected
		total.mismatches += results[i].mismatches
		total.latencyUs = append(total.latencyUs, results[i].latencyUs...)
	}
	ok := int64(len(total.latencyUs))
	qps := float64(ok) / dur.Seconds()
	fmt.Printf("hrtload: %d requests in %v (%d ok, %d shed, %d errors)\n",
		total.requests, *dur, ok, total.sheds, total.errors)
	if n := redirects.Load(); n > 0 {
		fmt.Printf("hrtload: %d leader redirects followed\n", n)
	}
	fmt.Printf("hrtload: %.0f queries/s\n", qps)
	if ok > 0 {
		fmt.Printf("hrtload: latency us p50=%.0f p95=%.0f p99=%.0f\n",
			stats.Quantile(total.latencyUs, 0.5),
			stats.Quantile(total.latencyUs, 0.95),
			stats.Quantile(total.latencyUs, 0.99))
	}

	switch *mode {
	case "query":
		if ok > 0 {
			fmt.Printf("hrtload: client-observed cache hits %d/%d (%.1f%%)\n",
				total.cacheHits, ok, 100*float64(total.cacheHits)/float64(ok))
		}
		serverHitRate, err := scrapeMetric(client, base, "hrtd_cache_hit_rate")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrtload: scrape /metrics: %v\n", err)
			if *check {
				os.Exit(1)
			}
		} else {
			fmt.Printf("hrtload: server cache hit rate %.3f\n", serverHitRate)
		}
		if *check {
			switch {
			case total.errors > 0:
				fmt.Fprintf(os.Stderr, "hrtload: FAIL: %d hard errors\n", total.errors)
				os.Exit(1)
			case ok == 0:
				fmt.Fprintln(os.Stderr, "hrtload: FAIL: no successful queries")
				os.Exit(1)
			case total.cacheHits == 0 || serverHitRate == 0:
				fmt.Fprintln(os.Stderr, "hrtload: FAIL: cache never hit")
				os.Exit(1)
			}
			fmt.Println("hrtload: OK")
		}
	case "simulate":
		fmt.Printf("hrtload: %d simulations ok, %d determinism mismatches\n", ok, total.mismatches)
		for _, m := range []string{"hrtd_whatif_requests_total", "hrtd_whatif_replications_total", "hrtd_whatif_shed_total"} {
			if v, err := scrapeMetric(client, base, m); err == nil {
				fmt.Printf("hrtload: server %s %.0f\n", m, v)
			}
		}
		if *check {
			switch {
			case total.errors > 0:
				fmt.Fprintf(os.Stderr, "hrtload: FAIL: %d hard errors\n", total.errors)
				os.Exit(1)
			case ok == 0:
				fmt.Fprintln(os.Stderr, "hrtload: FAIL: no successful simulations")
				os.Exit(1)
			case total.mismatches > 0:
				fmt.Fprintf(os.Stderr, "hrtload: FAIL: %d determinism mismatches\n", total.mismatches)
				os.Exit(1)
			}
			fmt.Println("hrtload: OK")
		}
	case "cluster", "batch", "dag":
		fmt.Printf("hrtload: %d placed, %d rejected\n", total.placed, total.rejected)
		placedMetric := "hrtd_cluster_placed_total"
		if *mode == "dag" {
			placedMetric = "hrtd_dag_placed_total"
		}
		serverPlaced, err := scrapeMetric(client, base, placedMetric)
		if err != nil {
			// A routed hrtd owns no cluster of its own: its placements
			// surface on the router-side counter instead.
			if v, rerr := scrapeMetric(client, base, "hrtd_route_placed_total"); rerr == nil {
				serverPlaced, err = v, nil
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrtload: scrape /metrics: %v\n", err)
			if *check {
				os.Exit(1)
			}
		} else {
			fmt.Printf("hrtload: server placed total %.0f\n", serverPlaced)
		}
		if *check {
			switch {
			case total.errors > 0:
				fmt.Fprintf(os.Stderr, "hrtload: FAIL: %d hard errors\n", total.errors)
				os.Exit(1)
			case total.placed == 0 || serverPlaced == 0:
				fmt.Fprintln(os.Stderr, "hrtload: FAIL: nothing placed")
				os.Exit(1)
			}
			fmt.Println("hrtload: OK")
		}
	}
}

// queryWorker fires /v1/analyze queries back-to-back until the deadline.
func queryWorker(client *http.Client, base string, deadline time.Time,
	poolBodies []string, repeat float64, uniqueCtr *atomic.Int64,
	res *workerResult, rng *sim.Rand) {
	for time.Now().Before(deadline) {
		var body string
		if rng.Float64() < repeat {
			body = poolBodies[rng.Intn(len(poolBodies))]
		} else {
			// Unique single-task set: the counter makes the slice, and so
			// the canonical digest, never repeat.
			n := uniqueCtr.Add(1)
			body = fmt.Sprintf(`{"tasks":[{"period_ns":1000000,"slice_ns":%d}]}`, 1_000+n)
		}
		start := time.Now()
		resp, err := client.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
		lat := float64(time.Since(start).Nanoseconds()) / 1e3
		res.requests++
		if err != nil {
			res.errors++
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for keep-alive
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			res.latencyUs = append(res.latencyUs, lat)
			if resp.Header.Get("X-Hrtd-Cache") == "hit" {
				res.cacheHits++
			}
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			res.sheds++
			time.Sleep(retryDelay(resp, rng))
		default:
			res.errors++
		}
	}
}

// clusterWorker churns the placement session: before each new placement
// it evicts its oldest live set once the ring is full, so admissions and
// removals interleave for the whole run.
func clusterWorker(client *http.Client, base string, deadline time.Time,
	w, ringSize int, uniqueCtr *atomic.Int64, res *workerResult, rng *sim.Rand) {
	var ring []string
	for time.Now().Before(deadline) {
		if len(ring) >= ringSize {
			id := ring[0]
			ring = ring[1:]
			body := fmt.Sprintf(`{"id":%q}`, id)
			resp, err := client.Post(base+"/v1/cluster/remove", "application/json", strings.NewReader(body))
			res.requests++
			if err != nil {
				res.errors++
				time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
				continue
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusNotFound:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				res.sheds++
				time.Sleep(retryDelay(resp, rng))
			default:
				res.errors++
			}
		}

		// The pid keeps ids unique across hrtload runs: against a durable
		// cluster a second run would otherwise collide with the previous
		// run's surviving placements and take 409s.
		n := uniqueCtr.Add(1)
		id := fmt.Sprintf("w%d-%d-%d", w, os.Getpid(), n)
		periodNs := periodMenuUs[rng.Intn(len(periodMenuUs))] * 1000
		sliceNs := periodNs/20 + rng.Int63n(periodNs/10)
		body := fmt.Sprintf(`{"id":%q,"tasks":[{"period_ns":%d,"slice_ns":%d}]}`,
			id, periodNs, sliceNs)
		start := time.Now()
		resp, err := client.Post(base+"/v1/cluster/place", "application/json", strings.NewReader(body))
		lat := float64(time.Since(start).Nanoseconds()) / 1e3
		res.requests++
		if err != nil {
			res.errors++
			// Transport failures fail in microseconds (connection refused
			// to a killed replica); pace them so a closed loop doesn't
			// record millions of errors while an election settles.
			time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			res.latencyUs = append(res.latencyUs, lat)
			var placed struct {
				Placed bool `json:"placed"`
			}
			if json.Unmarshal(b, &placed) == nil && placed.Placed {
				res.placed++
				ring = append(ring, id)
			} else {
				res.rejected++
			}
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			res.sheds++
			time.Sleep(retryDelay(resp, rng))
		default:
			res.errors++
		}
	}
}

// batchWorker drives the batched placement path: place batchSize gangs in
// one /v1/cluster/place-batch POST, check every per-item verdict, remove
// them, repeat. Each admitted envelope item counts as one placement; a
// per-item error envelope counts as a hard error (ids are unique, so a
// healthy server never produces one).
func batchWorker(client *http.Client, base string, deadline time.Time,
	w, batchSize int, uniqueCtr *atomic.Int64, res *workerResult, rng *sim.Rand) {
	for time.Now().Before(deadline) {
		ids := make([]string, batchSize)
		var b strings.Builder
		b.WriteString(`{"items":[`)
		for i := range ids {
			n := uniqueCtr.Add(1)
			ids[i] = fmt.Sprintf("bw%d-%d-%d", w, os.Getpid(), n)
			periodNs := periodMenuUs[rng.Intn(len(periodMenuUs))] * 1000
			sliceNs := periodNs/20 + rng.Int63n(periodNs/10)
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"id":%q,"tasks":[{"period_ns":%d,"slice_ns":%d}]}`,
				ids[i], periodNs, sliceNs)
		}
		b.WriteString(`]}`)

		start := time.Now()
		resp, err := client.Post(base+"/v1/cluster/place-batch", "application/json", strings.NewReader(b.String()))
		lat := float64(time.Since(start).Nanoseconds()) / 1e3
		res.requests++
		if err != nil {
			res.errors++
			time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var placed []string
		switch {
		case resp.StatusCode == http.StatusOK:
			res.latencyUs = append(res.latencyUs, lat)
			var env struct {
				Items []struct {
					ID     string `json:"id"`
					Result *struct {
						Placed bool `json:"placed"`
					} `json:"result"`
					Error *struct {
						Code string `json:"code"`
					} `json:"error"`
				} `json:"items"`
			}
			if json.Unmarshal(body, &env) != nil || len(env.Items) != batchSize {
				res.errors++
				break
			}
			for _, it := range env.Items {
				switch {
				case it.Error != nil:
					res.errors++
				case it.Result != nil && it.Result.Placed:
					res.placed++
					placed = append(placed, it.ID)
				default:
					res.rejected++
				}
			}
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			res.sheds++
			time.Sleep(retryDelay(resp, rng))
		default:
			res.errors++
		}

		for _, id := range placed {
			body := fmt.Sprintf(`{"id":%q}`, id)
			resp, err := client.Post(base+"/v1/cluster/remove", "application/json", strings.NewReader(body))
			res.requests++
			if err != nil {
				res.errors++
				time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
				continue
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusNotFound:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				res.sheds++
				time.Sleep(retryDelay(resp, rng))
			default:
				res.errors++
			}
		}
	}
}

// simModels are the execution models simulate mode cycles through.
var simModels = []string{"wcet", "full-random", "half-random", "random-0.6,1.1:normal"}

// simBody builds the i-th what-if scenario body: two rate-harmonic tasks
// on two CPUs, a model from the menu, a couple of replications over one
// hyperperiod — heavy enough to exercise the pool, light enough that a
// closed loop turns over fast. The seed is baked into the body, so the
// body fully determines the reply.
func simBody(rng *sim.Rand, i int) string {
	periodNs := periodMenuUs[rng.Intn(len(periodMenuUs))] * 1000
	s1 := periodNs/5 + rng.Int63n(periodNs/5)
	s2 := periodNs/10 + rng.Int63n(periodNs/10)
	model := simModels[i%len(simModels)]
	var faults string
	if i%2 == 0 {
		faults = `"faults":["smi-storm"],`
	}
	return fmt.Sprintf(`{"scenario":{"name":"load-%d","cpus":2,"tasks":[`+
		`{"period_ns":%d,"slice_ns":%d,"cpu":0},`+
		`{"period_ns":%d,"slice_ns":%d,"cpu":1}],`+
		`"model":%q,%s"replications":3},"seed":%d}`,
		i, periodNs, s1, periodNs, s2, model, faults, 1000+i)
}

// simulateWorker fires /v1/simulate requests from the shared body pool
// back-to-back until the deadline. The first reply for each body is
// published to seen; every later reply must match it byte for byte.
func simulateWorker(client *http.Client, base string, deadline time.Time,
	bodies []string, seen *sync.Map, res *workerResult, rng *sim.Rand) {
	for time.Now().Before(deadline) {
		i := rng.Intn(len(bodies))
		start := time.Now()
		resp, err := client.Post(base+"/v1/simulate", "application/json", strings.NewReader(bodies[i]))
		lat := float64(time.Since(start).Nanoseconds()) / 1e3
		res.requests++
		if err != nil {
			res.errors++
			time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			res.latencyUs = append(res.latencyUs, lat)
			if prev, loaded := seen.LoadOrStore(i, string(b)); loaded && prev.(string) != string(b) {
				res.mismatches++
			}
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			res.sheds++
			time.Sleep(retryDelay(resp, rng))
		default:
			res.errors++
		}
	}
}

// dagAnalyzers are the analyzer names dag mode cycles through.
var dagAnalyzers = []string{"classical", "alpha-beta"}

// dagWorker churns DAG reservations: randomized small DAGs go in through
// /v1/dag/place and come back out through /v1/cluster/remove (an admitted
// DAG is an ordinary placement), the same ring discipline as clusterWorker.
func dagWorker(client *http.Client, base string, deadline time.Time,
	w, ringSize int, uniqueCtr *atomic.Int64, res *workerResult, rng *sim.Rand) {
	var ring []string
	for time.Now().Before(deadline) {
		if len(ring) >= ringSize {
			id := ring[0]
			ring = ring[1:]
			body := fmt.Sprintf(`{"id":%q}`, id)
			resp, err := client.Post(base+"/v1/cluster/remove", "application/json", strings.NewReader(body))
			res.requests++
			if err != nil {
				res.errors++
				time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
				continue
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusNotFound:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				res.sheds++
				time.Sleep(retryDelay(resp, rng))
			default:
				res.errors++
			}
		}

		n := uniqueCtr.Add(1)
		id := fmt.Sprintf("dag-w%d-%d-%d", w, os.Getpid(), n)
		body := fmt.Sprintf(`{"id":%q,"task":%s,"analyzer":%q}`,
			id, dagBody(rng), dagAnalyzers[rng.Intn(len(dagAnalyzers))])
		start := time.Now()
		resp, err := client.Post(base+"/v1/dag/place", "application/json", strings.NewReader(body))
		lat := float64(time.Since(start).Nanoseconds()) / 1e3
		res.requests++
		if err != nil {
			res.errors++
			time.Sleep(time.Duration(5+rng.Int63n(20)) * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			res.latencyUs = append(res.latencyUs, lat)
			var placed struct {
				Placed bool `json:"placed"`
			}
			if json.Unmarshal(b, &placed) == nil && placed.Placed {
				res.placed++
				ring = append(ring, id)
			} else {
				res.rejected++
			}
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			res.sheds++
			time.Sleep(retryDelay(resp, rng))
		default:
			res.errors++
		}
	}
}

// dagBody builds one randomized DAG task: 3-6 nodes, forward-only edges
// (guaranteeing acyclicity), short WCETs against a 10-20 ms period so
// most submissions admit and the ring keeps cycling.
func dagBody(rng *sim.Rand) string {
	nodes := 3 + int(rng.Int63n(4))
	var b strings.Builder
	b.WriteString(`{"nodes":[`)
	for i := 0; i < nodes; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"wcet_ns":%d}`, (20+rng.Int63n(100))*1000)
	}
	b.WriteString(`],"edges":[`)
	edges := 0
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			if rng.Float64() < 0.4 {
				if edges > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"from":%d,"to":%d}`, i, j)
				edges++
			}
		}
	}
	periodNs := (10 + 10*rng.Int63n(2)) * 1_000_000
	cores := 2 + rng.Int63n(3)
	fmt.Fprintf(&b, `],"period_ns":%d,"cores":%d}`, periodNs, cores)
	return b.String()
}

// retryDelay says how long to wait before retrying after a 429 or 503.
// It honors the server's Retry-After seconds when present (hrtd sends
// Retry-After: 1 while a cluster has no ready leader), caps the base at
// 2s, and jitters the result across [base/2, base*3/2) so the workers
// that were shed together don't re-stampede together.
func retryDelay(resp *http.Response, rng *sim.Rand) time.Duration {
	base := 50 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && secs > 0 {
			base = time.Duration(secs) * time.Second
		}
	}
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	return base/2 + time.Duration(rng.Int63n(int64(base)))
}

// poolBody builds the i-th popular task set: 1-3 tasks from the period
// menu with slices well under the bound, serialized once up front so the
// hot loop only swaps strings.
func poolBody(rng *sim.Rand, i int) string {
	ntasks := 1 + i%3
	var b strings.Builder
	b.WriteString(`{"tasks":[`)
	for t := 0; t < ntasks; t++ {
		periodNs := periodMenuUs[rng.Intn(len(periodMenuUs))] * 1000
		sliceNs := periodNs/10 + rng.Int63n(periodNs/5)
		if t > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"period_ns":%d,"slice_ns":%d}`, periodNs, sliceNs)
	}
	b.WriteString(`]}`)
	return b.String()
}

// printStatus fetches /v1/cluster/status and prints one greppable line.
func printStatus(client *http.Client, base string) error {
	resp, err := client.Get(base + "/v1/cluster/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var st struct {
		// Groups/Reachable are only present in a routed (sharded) status
		// body; an unrouted cluster leaves them zero.
		Groups     int   `json:"groups"`
		Reachable  int   `json:"reachable"`
		Placements int   `json:"placements"`
		Placed     int64 `json:"placed_total"`
		Removed    int64 `json:"removed_total"`
		Rebalanced int64 `json:"rebalanced_total"`
		Drained    int64 `json:"drained_total"`
		Nodes      []struct {
			Tasks int64 `json:"tasks"`
		} `json:"nodes"`
		DAG *struct {
			Placements int   `json:"placements"`
			Placed     int64 `json:"placed_total"`
		} `json:"dag"`
		Durability *struct {
			LastLSN  uint64 `json:"last_lsn"`
			Degraded bool   `json:"degraded"`
		} `json:"durability"`
		Replication *struct {
			Role       string `json:"role"`
			Term       uint64 `json:"term"`
			Leader     int    `json:"leader"`
			CommitLSN  uint64 `json:"commit_lsn"`
			AppliedLSN uint64 `json:"applied_lsn"`
		} `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	var tasks int64
	for _, n := range st.Nodes {
		tasks += n.Tasks
	}
	line := fmt.Sprintf("hrtload: status placements=%d tasks=%d placed_total=%d removed_total=%d rebalanced_total=%d drained_total=%d",
		st.Placements, tasks, st.Placed, st.Removed, st.Rebalanced, st.Drained)
	if st.Groups > 0 {
		line += fmt.Sprintf(" groups=%d reachable=%d", st.Groups, st.Reachable)
	}
	if st.DAG != nil {
		line += fmt.Sprintf(" dag_placements=%d dag_placed_total=%d",
			st.DAG.Placements, st.DAG.Placed)
	}
	if st.Durability != nil {
		line += fmt.Sprintf(" durable=true last_lsn=%d degraded=%v",
			st.Durability.LastLSN, st.Durability.Degraded)
	}
	if st.Replication != nil {
		line += fmt.Sprintf(" role=%s term=%d leader=%d commit_lsn=%d applied_lsn=%d",
			st.Replication.Role, st.Replication.Term, st.Replication.Leader,
			st.Replication.CommitLSN, st.Replication.AppliedLSN)
	}
	fmt.Println(line)
	return nil
}

// scrapeMetric pulls /metrics and extracts the named unlabelled sample.
func scrapeMetric(client *http.Client, base, name string) (float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if v, found := strings.CutPrefix(line, name+" "); found {
			return strconv.ParseFloat(strings.TrimSpace(v), 64)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("%s not found in /metrics", name)
}
