// Command chaos runs seed-deterministic fault-injection scenarios against
// the scheduler and prints the replayable report. An invariant violation
// found by any run prints a repro line of the form
//
//	cmd/chaos -seed N -scenario X -until-event K
//
// which replays the identical run bit-for-bit up to the violating event.
//
// Usage:
//
//	chaos -list
//	chaos -scenario smi-storm -seed 42
//	chaos -scenario overload-shed -seed 7 -until-event 120000
//	chaos -scenario smi-storm -seed 42 -lazy    # lazy-EDF ablation
//	chaos -scenario smi-storm -metrics          # append Prometheus counters
package main

import (
	"flag"
	"fmt"
	"os"

	"hrtsched/internal/fault"
	"hrtsched/internal/serve"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (see -list)")
		seed     = flag.Uint64("seed", 0x5eed, "root random seed")
		until    = flag.Uint64("until-event", 0, "stop after this many engine events (0 = run scenario duration)")
		lazy     = flag.Bool("lazy", false, "use lazy EDF instead of eager")
		list     = flag.Bool("list", false, "list scenarios")
		metrics  = flag.Bool("metrics", false, "append the run's robustness counters in Prometheus text form")
	)
	flag.Parse()

	if *list {
		for _, name := range fault.Names() {
			fmt.Printf("%-16s %s\n", name, fault.Scenarios[name].Desc)
		}
		return
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "specify -scenario NAME or -list")
		os.Exit(2)
	}

	res, err := fault.Run(fault.Options{
		Scenario:   *scenario,
		Seed:       *seed,
		UntilEvent: *until,
		Lazy:       *lazy,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(res.Report)
	if *metrics {
		// The same registry + collectors hrtd exposes on /metrics, so the
		// two report robustness counters through one code path.
		reg := serve.NewRegistry()
		serve.RegisterKernel(reg, res.Kernel)
		fmt.Println()
		reg.WriteTo(os.Stdout) //nolint:errcheck — stdout
	}
	if !res.Checker.Ok() {
		os.Exit(1)
	}
}
