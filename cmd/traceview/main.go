// Command traceview runs a small mixed workload with tracing attached and
// either prints a per-CPU timeline summary or emits Chrome trace-event
// JSON (load it in chrome://tracing or Perfetto).
//
// Usage:
//
//	traceview                    # human-readable summary
//	traceview -chrome > out.json # Chrome trace-event JSON on stdout
//	traceview -ms 100 -cpus 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/trace"
)

func main() {
	var (
		chrome = flag.Bool("chrome", false, "emit Chrome trace-event JSON to stdout")
		runMs  = flag.Int64("ms", 50, "simulated milliseconds")
		ncpus  = flag.Int("cpus", 4, "CPUs")
		seed   = flag.Uint64("seed", 3, "random seed")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *runMs <= 0 {
		fail("-ms must be positive milliseconds (got %d)", *runMs)
	}
	if *ncpus < 1 {
		fail("-cpus must be at least 1 (got %d)", *ncpus)
	}

	spec := machine.PhiKNL().Scaled(*ncpus)
	m := machine.New(spec, *seed)
	k := core.Boot(m, core.DefaultConfig(spec))
	rec := trace.NewRecorder(1 << 20)
	trace.Attach(k, rec)

	// A periodic thread, a sporadic burst and background work.
	admitted := false
	k.Spawn("periodic", 1%*ncpus, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: core.PeriodicConstraints(0, 100_000, 40_000)}
		}
		return core.Compute{Cycles: 15_000}
	}))
	sp := false
	k.Spawn("burst", (*ncpus - 1), core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !sp {
			sp = true
			return core.ChangeConstraints{C: core.SporadicConstraints(0, 500_000, 5_000_000, 90)}
		}
		return core.Compute{Cycles: 25_000}
	}))
	for i := 0; i < 3; i++ {
		k.SpawnStealable(fmt.Sprintf("bg%d", i), 0, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			return core.Compute{Cycles: 50_000}
		}))
	}
	runNs := *runMs * 1_000_000
	k.RunNs(runNs)

	if *chrome {
		if err := rec.WriteChromeTrace(os.Stdout, runNs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("trace: %d events over %d ms on %d CPUs (%d dropped)\n\n",
		rec.Len(), *runMs, *ncpus, rec.Dropped())
	util := rec.Utilization(0, runNs)
	var names []string
	for n := range util {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("per-thread CPU utilization:")
	for _, n := range names {
		fmt.Printf("  %-10s %6.2f%%\n", n, 100*util[n])
	}
	fmt.Printf("\narrivals=%d misses=%d switches=%d irqs=%d\n",
		len(rec.Filter(trace.Arrival, -1, "", 0, 0)),
		len(rec.Filter(trace.Miss, -1, "", 0, 0)),
		len(rec.Filter(trace.SwitchIn, -1, "", 0, 0)),
		len(rec.Filter(trace.IRQ, -1, "", 0, 0)))
}
