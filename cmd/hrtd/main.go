// Command hrtd is the admission-query daemon: an HTTP/JSON front end over
// the schedulability engine in internal/plan, served through the sharded,
// batching, caching layer in internal/serve.
//
// Usage:
//
//	hrtd -machine phi -util 0.99 -addr 127.0.0.1:8080
//	hrtd -addr 127.0.0.1:0 -addr-file /tmp/hrtd.addr   # ephemeral port
//	hrtd -nodes 8 -policy worst-fit                    # placement cluster
//	hrtd -nodes 4 -data-dir /var/lib/hrtd              # durable cluster state
//
// A replicated placement service runs one hrtd per replica, each naming
// every peer (including itself):
//
//	hrtd -addr 127.0.0.1:9101 -data-dir /var/lib/hrtd-0 -replicas 3 -id 0 \
//	     -peer 0=127.0.0.1:9101 -peer 1=127.0.0.1:9102 -peer 2=127.0.0.1:9103
//
// Mutations commit once a majority of replicas has fsynced them; a
// follower answers mutations with a 307 redirect to the leader and serves
// GET /v1/cluster/status from its own durable view. On SIGTERM a leader
// hands leadership to the most caught-up follower before draining.
//
// Endpoints: POST /v1/analyze, POST /v1/capacity, POST /v1/simulate,
// POST /v1/cluster/{place,remove,drain,undrain,rebalance},
// GET /v1/cluster/status, GET /metrics, GET /healthz. POST /analyze and
// /capacity remain as deprecated aliases.
//
// POST /v1/simulate runs stochastic what-if replications (internal/whatif)
// on a bounded worker pool (-sim-workers, -sim-queue); a full queue sheds
// with 429 + Retry-After. Routing daemons forward the run to a shard
// group by rendezvous hash of (scenario name, seed).
//
// Horizontal scale-out shards the node fleet into independent groups
// behind the placement router (internal/route):
//
//	hrtd -nodes 8 -shard-groups 4            # 4 in-process shard groups
//	hrtd -route http://10.0.0.1:9101 -route http://10.0.0.2:9101
//
// With -shard-groups K the fleet partitions into K in-process clusters
// (each optionally durable under -data-dir/group-<k>); with -route the
// daemon is a pure stateless router over remote group daemons, each of
// which may itself be a replica set (the router follows 307 leader
// redirects). The /v1/cluster and /v1/dag routes answer through the
// router either way, with X-Hrtd-Shard-Group attribution headers.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hrtsched/internal/machine"
	"hrtsched/internal/route"
	"hrtsched/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 for ephemeral)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		mach     = flag.String("machine", "phi", "platform model: phi or r415")
		util     = flag.Float64("util", 0.99, "admission utilization limit in (0,1]")
		overhead = flag.Int64("overhead-ns", 0, "override per-invocation overhead ns (0 = derive from -machine)")
		shards   = flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "per-shard queue depth (0 = default 1024)")
		batch    = flag.Int("batch", 0, "max requests per flush (0 = default 64)")
		flush    = flag.Duration("flush", 0, "batch flush window (0 = default 200us)")
		cache    = flag.Int("cache", 0, "per-shard verdict cache entries (0 = default 4096)")
		nodes    = flag.Int("nodes", 4, "placement-cluster nodes (0 disables the cluster routes)")
		policy   = flag.String("policy", "first-fit", "placement policy: first-fit or worst-fit")
		dataDir  = flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty = in-memory only")
		replicas = flag.Int("replicas", 1, "total replica count (>1 replicates the placement log)")
		replID   = flag.Int("id", 0, "this replica's id in [0,replicas)")
		groups   = flag.Int("shard-groups", 1, "partition the node fleet into this many in-process shard groups behind the placement router")
		simWork  = flag.Int("sim-workers", 0, "what-if simulation workers (0 = GOMAXPROCS/2)")
		simQueue = flag.Int("sim-queue", 0, "what-if simulation queue depth (0 = default 16)")
	)
	var routes []string
	flag.Func("route", "shard-group daemon base URL (repeat once per group); makes this daemon a stateless router", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty -route URL")
		}
		if !strings.Contains(v, "://") {
			v = "http://" + v
		}
		routes = append(routes, v)
		return nil
	})
	peers := map[int]string{}
	flag.Func("peer", "replica address as id=host:port (repeat once per replica)", func(v string) error {
		id, hostport, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want id=host:port, got %q", v)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return fmt.Errorf("bad replica id %q: %w", id, err)
		}
		peers[n] = "http://" + hostport
		return nil
	})
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hrtd: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *addr == "" {
		fail("-addr must not be empty")
	}
	var spec machine.Spec
	switch *mach {
	case "phi":
		spec = machine.PhiKNL()
	case "r415":
		spec = machine.R415()
	default:
		fail("-machine must be phi or r415 (got %q)", *mach)
	}
	if *util <= 0 || *util > 1 {
		fail("-util must be in (0,1] (got %g)", *util)
	}
	if *overhead < 0 {
		fail("-overhead-ns must be non-negative (got %d)", *overhead)
	}
	if *shards < 0 || *queue < 0 || *batch < 0 || *cache < 0 || *nodes < 0 {
		fail("-shards, -queue, -batch, -cache and -nodes must be non-negative")
	}
	if *simWork < 0 || *simQueue < 0 {
		fail("-sim-workers and -sim-queue must be non-negative")
	}
	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		fail("%v", err)
	}
	if *flush < 0 {
		fail("-flush must be non-negative (got %v)", *flush)
	}
	if *dataDir != "" && *nodes == 0 {
		fail("-data-dir requires a placement cluster (-nodes > 0)")
	}
	if *replicas < 1 {
		fail("-replicas must be at least 1 (got %d)", *replicas)
	}
	if *groups < 1 {
		fail("-shard-groups must be at least 1 (got %d)", *groups)
	}
	if len(routes) > 0 {
		// A routing daemon owns no nodes of its own: the groups do.
		if *groups > 1 {
			fail("-route and -shard-groups are mutually exclusive (the -route targets are the groups)")
		}
		if *dataDir != "" || *replicas > 1 {
			fail("-route is a stateless router; -data-dir and -replicas belong on the group daemons")
		}
	}
	if *groups > 1 {
		if *nodes < *groups {
			fail("-shard-groups %d needs at least that many nodes (got -nodes %d)", *groups, *nodes)
		}
		if *replicas > 1 {
			fail("-shard-groups > 1 cannot replicate in-process; run replicated group daemons and front them with -route")
		}
	}
	if *replicas > 1 {
		if *dataDir == "" {
			fail("-replicas > 1 requires -data-dir (the replicated log lives there)")
		}
		if *replID < 0 || *replID >= *replicas {
			fail("-id %d outside [0,%d)", *replID, *replicas)
		}
		for i := 0; i < *replicas; i++ {
			if peers[i] == "" {
				fail("-replicas %d needs -peer %d=host:port", *replicas, i)
			}
		}
	}

	planSpec := serve.SpecFor(spec, *util)
	if *overhead > 0 {
		planSpec.OverheadNs = *overhead
	}
	srv, err := serve.New(serve.Config{
		Spec:          planSpec,
		Shards:        *shards,
		QueueDepth:    *queue,
		BatchSize:     *batch,
		FlushWindow:   *flush,
		CacheEntries:  *cache,
		SimWorkers:    *simWork,
		SimQueueDepth: *simQueue,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrtd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	var (
		cluster  *serve.Cluster
		clusters []*serve.Cluster
		router   *route.Router
	)
	switch {
	case len(routes) > 0:
		// Stateless router over remote shard-group daemons. Boot retries the
		// status probe briefly so the router can start alongside its groups.
		rgroups := make([]route.Group, len(routes))
		for i, u := range routes {
			var rg *route.RemoteGroup
			deadline := time.Now().Add(10 * time.Second)
			for {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				rg, err = route.NewRemoteGroup(ctx, u, 30*time.Second)
				cancel()
				if err == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(200 * time.Millisecond)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "hrtd: %v\n", err)
				os.Exit(1)
			}
			rgroups[i] = rg
		}
		router, err = route.New(rgroups, route.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrtd: %v\n", err)
			os.Exit(1)
		}
		router.RegisterMetrics(srv.Registry())
		fmt.Printf("hrtd: routing: groups=%d targets=%s\n", len(routes), strings.Join(routes, ","))
	case *groups > 1 && *nodes > 0:
		// In-process sharding: partition the fleet into K independent
		// clusters (each optionally durable under its own subdirectory)
		// behind the router.
		part := route.PartitionNodes(*nodes, *groups)
		lgroups := make([]route.Group, *groups)
		for g := range lgroups {
			ccfg := serve.ClusterConfig{
				Spec:   planSpec,
				Nodes:  len(part[g]),
				Policy: pol,
			}
			if *dataDir != "" {
				ccfg.Durability = &serve.DurabilityConfig{
					Dir: filepath.Join(*dataDir, fmt.Sprintf("group-%d", g)),
				}
			}
			cl, cerr := serve.NewCluster(ccfg)
			if cerr != nil {
				fmt.Fprintf(os.Stderr, "hrtd: group %d: %v\n", g, cerr)
				os.Exit(1)
			}
			clusters = append(clusters, cl)
			defer cl.Close()
			cl.RegisterMetrics(srv.Registry().Labeled(serve.Label{Key: "group", Value: strconv.Itoa(g)}))
			// The server carries the simulation pool, so local groups wrap it
			// too: the router's /v1/simulate answers in process.
			lgroups[g] = route.NewLocalGroupWithServer(cl, srv)
		}
		router, err = route.New(lgroups, route.Config{Partition: part})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrtd: %v\n", err)
			os.Exit(1)
		}
		router.RegisterMetrics(srv.Registry())
		fmt.Printf("hrtd: sharding: groups=%d nodes=%d partition=%v durable=%v\n",
			*groups, *nodes, part, *dataDir != "")
	case *nodes > 0:
		ccfg := serve.ClusterConfig{
			Spec:   planSpec,
			Nodes:  *nodes,
			Policy: pol,
		}
		if *dataDir != "" {
			ccfg.Durability = &serve.DurabilityConfig{Dir: *dataDir}
		}
		if *replicas > 1 {
			ccfg.Replication = &serve.ReplicationConfig{
				ID:       *replID,
				Replicas: *replicas,
				Peers:    peers,
			}
		}
		cluster, err = serve.NewCluster(ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrtd: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		cluster.RegisterMetrics(srv.Registry())
		if *dataDir != "" {
			rec := cluster.Recovery()
			fmt.Printf("hrtd: recovery: snapshot_lsn=%d replayed=%d rejected=%d truncated_bytes=%d dropped_segments=%d bad_snapshots=%d orphans=%d last_lsn=%d spec_changed=%v\n",
				rec.SnapshotLSN, rec.Replayed, rec.Rejected, rec.TruncatedBytes,
				rec.DroppedSegments, rec.BadSnapshots, rec.OrphansReleased,
				rec.LastLSN, rec.SpecChanged)
		}
		if *replicas > 1 {
			fmt.Printf("hrtd: replication: id=%d replicas=%d peers=%s\n",
				*replID, *replicas, peerList(peers, *replicas))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrtd: listen: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hrtd: write -addr-file: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := srv.Config()
	fmt.Printf("hrtd: listening on %s (machine=%s overhead=%dns util=%g shards=%d queue=%d batch=%d flush=%v cache=%d nodes=%d policy=%s)\n",
		bound, spec.Name, planSpec.OverheadNs, planSpec.UtilizationLimit,
		cfg.Shards, cfg.QueueDepth, cfg.BatchSize, cfg.FlushWindow, cfg.CacheEntries,
		*nodes, pol)

	var handler http.Handler = srv.HandlerWithCluster(cluster)
	if router != nil {
		// The router owns the /v1/cluster and /v1/dag routes; the query
		// server keeps /v1/analyze, /metrics, and /healthz underneath it.
		handler = router.Handler(srv.Handler())
	}
	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		// Orderly teardown: stop accepting HTTP and drain in-flight
		// requests, then let the node workers drain their bounded queues
		// and the WAL flush + final snapshot (cluster.Close), bounded by a
		// timeout so a wedged worker cannot hold the process hostage.
		fmt.Printf("hrtd: %v, shutting down\n", got)
		start := time.Now()
		// A replicated leader hands off before draining so the cluster
		// keeps accepting mutations while this replica goes away. Failure
		// is fine — the survivors elect on the missed-heartbeat path.
		if cluster != nil && *replicas > 1 {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			if to, err := cluster.TransferLeadership(ctx); err == nil {
				fmt.Printf("hrtd: leadership transferred to replica %d\n", to)
			} else {
				fmt.Printf("hrtd: leadership transfer skipped: %v\n", err)
			}
			cancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpErr := hs.Shutdown(ctx)
		cancel()
		clusterDrained := true
		if cluster != nil || len(clusters) > 0 {
			done := make(chan struct{})
			go func() {
				if cluster != nil {
					cluster.Close()
				}
				for _, cl := range clusters {
					cl.Close()
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				clusterDrained = false
			}
		}
		srv.Close()
		fmt.Printf("hrtd: shutdown summary: signal=%v http_drained=%v cluster_drained=%v durable=%v took=%.2fs\n",
			got, httpErr == nil, clusterDrained, *dataDir != "", time.Since(start).Seconds())
		if !clusterDrained {
			os.Exit(1)
		}
	case err := <-errCh:
		if err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "hrtd: serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// peerList renders the peer map in id order for the boot line.
func peerList(peers map[int]string, n int) string {
	parts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, strconv.Itoa(i)+"="+peers[i])
	}
	return strings.Join(parts, ",")
}
