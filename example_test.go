package hrtsched_test

import (
	"context"
	"fmt"

	"hrtsched"
)

// Example reproduces the README quickstart: boot a simulated Phi, admit a
// hard real-time periodic thread, and observe the zero-miss guarantee.
func Example() {
	spec := hrtsched.PhiKNL()
	spec.NumCPUs = 4
	m := hrtsched.NewMachine(spec, 42)
	k := hrtsched.Boot(m, hrtsched.DefaultConfig(spec))

	cons := hrtsched.PeriodicConstraints(0, 100_000, 50_000)
	admitted := false
	th := k.Spawn("worker", 1, hrtsched.ProgramFunc(
		func(tc *hrtsched.ThreadCtx) hrtsched.Action {
			if !admitted {
				admitted = true
				return hrtsched.ChangeConstraints{C: cons}
			}
			return hrtsched.Compute{Cycles: 20_000}
		}))

	k.RunNs(50_000_000)
	fmt.Println(th.Arrivals, "arrivals,", th.Misses, "misses")
	// Output: 500 arrivals, 0 misses
}

// ExampleNewGroup gang-schedules a group through distributed admission
// control (Algorithm 1) with phase correction.
func ExampleNewGroup() {
	spec := hrtsched.PhiKNL()
	spec.NumCPUs = 5
	m := hrtsched.NewMachine(spec, 7)
	k := hrtsched.Boot(m, hrtsched.DefaultConfig(spec))

	const n = 4
	g, err := hrtsched.NewGroup(k, "workers", n, hrtsched.DefaultGroupCosts())
	if err != nil {
		panic(err)
	}
	cons := hrtsched.PeriodicConstraints(0, 100_000, 50_000)
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons,
		hrtsched.GroupAdmitOptions{PhaseCorrection: true}, nil))
	body := hrtsched.ProgramFunc(func(tc *hrtsched.ThreadCtx) hrtsched.Action {
		return hrtsched.Compute{Cycles: 10_000}
	})
	for i := 0; i < n; i++ {
		k.Spawn("member", 1+i, hrtsched.FlowThen(flow, body))
	}
	k.RunNs(50_000_000)
	fmt.Println("failed:", g.Failed(), "members:", len(g.Members()))
	// Output: failed: false members: 4
}

// ExampleBuildCyclic compiles a periodic task set into a static cyclic
// executive table.
func ExampleBuildCyclic() {
	tbl, err := hrtsched.BuildCyclic([]hrtsched.CyclicTask{
		{Name: "a", PeriodNs: 100_000, SliceNs: 30_000},
		{Name: "b", PeriodNs: 200_000, SliceNs: 60_000},
	}, 0.99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hyperperiod %d ns, %.0f%% utilization, valid: %v\n",
		tbl.HyperperiodNs, tbl.UtilPct, tbl.Validate() == nil)
	// Output: hyperperiod 200000 ns, 60% utilization, valid: true
}

// ExampleNewBSP runs the paper's BSP microbenchmark under gang scheduling
// with barriers removed.
func ExampleNewBSP() {
	spec := hrtsched.PhiKNL()
	spec.NumCPUs = 9
	m := hrtsched.NewMachine(spec, 3)
	k := hrtsched.Boot(m, hrtsched.DefaultConfig(spec))

	p := hrtsched.BSPFineGrain(8, 20)
	p.UseBarrier = false
	p.Constraints = hrtsched.PeriodicConstraints(0, 200_000, 180_000)
	p.PhaseCorrection = true
	res := hrtsched.NewBSP(k, p).Run(1 << 28)
	fmt.Println("iterations:", res.Iterations, "write errors:", res.WriteErrors,
		"skew:", res.MaxSkew <= 2)
	// Output: iterations: 160 write errors: 0 skew: true
}

// ExampleNewMMU demonstrates the Section 2 paging claim: a TLB that covers
// the identity map never misses after startup.
func ExampleNewMMU() {
	mmu := hrtsched.NewMMU(112<<30, hrtsched.Page1G, 128, 40)
	mmu.Warmup()
	before := mmu.TLB.Misses
	for addr := uint64(0); addr < 112<<30; addr += 7 << 28 {
		if _, err := mmu.Translate(addr); err != nil {
			panic(err)
		}
	}
	fmt.Println("covered:", mmu.Covered(), "misses after startup:", mmu.TLB.Misses-before)
	// Output: covered: true misses after startup: 0
}

// ExampleAnalyzeTaskSet answers offline admission for a periodic task set
// on the Phi platform model: the closed-form utilization bound plus an
// exact hyperperiod simulation with charged scheduler overhead.
func ExampleAnalyzeTaskSet() {
	spec := hrtsched.PlanSpecFor(hrtsched.PhiKNL(), 0.99)
	v := hrtsched.AnalyzeTaskSet(spec, hrtsched.PlanTaskSet{
		{PeriodNs: 100_000, SliceNs: 30_000},
		{PeriodNs: 200_000, SliceNs: 60_000},
	})
	fmt.Printf("admit: %v reason: %s utilization: %.2f hyperperiod: %d ns\n",
		v.Admit, v.Reason, v.Utilization, v.Sim.HyperperiodNs)
	// Output: admit: true reason: ok utilization: 0.60 hyperperiod: 200000 ns
}

// ExampleNewServer runs the admission-query service in-process: queries
// are sharded by task-set digest and repeated sets answer from the
// verdict cache.
func ExampleNewServer() {
	srv, err := hrtsched.NewServer(hrtsched.ServeConfig{
		Spec:   hrtsched.PlanSpecFor(hrtsched.PhiKNL(), 0.99),
		Shards: 2,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	set := hrtsched.PlanTaskSet{{PeriodNs: 1_000_000, SliceNs: 250_000}}
	v, cached1, err := srv.AnalyzeContext(context.Background(), set)
	if err != nil {
		panic(err)
	}
	_, cached2, err := srv.AnalyzeContext(context.Background(), set)
	if err != nil {
		panic(err)
	}
	fmt.Println("admit:", v.Admit, "first cached:", cached1, "second cached:", cached2)
	// Output: admit: true first cached: false second cached: true
}
