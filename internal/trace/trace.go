// Package trace records structured execution timelines from a running
// kernel: context switches, real-time arrivals and misses, scheduler
// invocations, and custom marks. Timelines are queryable in-process and
// exportable as Chrome trace-event JSON (chrome://tracing, Perfetto).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// SwitchIn marks a thread being dispatched on a CPU.
	SwitchIn Kind = iota
	// SwitchOut marks a thread leaving a CPU.
	SwitchOut
	// Arrival marks a real-time arrival.
	Arrival
	// Miss marks a deadline miss.
	Miss
	// IRQ marks an interrupt delivery.
	IRQ
	// Mark is a user-defined instant.
	Mark
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SwitchIn:
		return "switch-in"
	case SwitchOut:
		return "switch-out"
	case Arrival:
		return "arrival"
	case Miss:
		return "miss"
	case IRQ:
		return "irq"
	case Mark:
		return "mark"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	AtNs   int64
	CPU    int
	Kind   Kind
	Thread string
	Label  string
}

// Recorder accumulates events up to a capacity bound (oldest kept).
type Recorder struct {
	events []Event
	limit  int
	drops  int64
}

// NewRecorder creates a recorder holding up to limit events.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Add records an event.
func (r *Recorder) Add(e Event) {
	if len(r.events) >= r.limit {
		r.drops++
		return
	}
	r.events = append(r.events, e)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns the number of events discarded at capacity.
func (r *Recorder) Dropped() int64 { return r.drops }

// Events returns the recorded events in insertion order.
func (r *Recorder) Events() []Event { return r.events }

// Filter returns events matching all non-zero criteria: kind (use 255 for
// any), cpu (-1 for any), thread ("" for any), window [fromNs, toNs)
// (to = 0 means unbounded).
func (r *Recorder) Filter(kind Kind, cpu int, thread string, fromNs, toNs int64) []Event {
	var out []Event
	for _, e := range r.events {
		if kind != 255 && e.Kind != kind {
			continue
		}
		if cpu >= 0 && e.CPU != cpu {
			continue
		}
		if thread != "" && e.Thread != thread {
			continue
		}
		if e.AtNs < fromNs {
			continue
		}
		if toNs > 0 && e.AtNs >= toNs {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Spans reconstructs per-CPU execution intervals from switch events: for
// each CPU, the list of (thread, start, end) slices.
type Span struct {
	CPU     int
	Thread  string
	StartNs int64
	EndNs   int64
}

// Spans returns execution intervals per CPU, derived from SwitchIn and
// SwitchOut pairs. Unterminated intervals are closed at endNs.
func (r *Recorder) Spans(endNs int64) []Span {
	type open struct {
		thread  string
		startNs int64
	}
	current := map[int]*open{}
	var spans []Span
	for _, e := range r.events {
		switch e.Kind {
		case SwitchIn:
			if o := current[e.CPU]; o != nil {
				spans = append(spans, Span{e.CPU, o.thread, o.startNs, e.AtNs})
			}
			current[e.CPU] = &open{e.Thread, e.AtNs}
		case SwitchOut:
			if o := current[e.CPU]; o != nil && o.thread == e.Thread {
				spans = append(spans, Span{e.CPU, o.thread, o.startNs, e.AtNs})
				delete(current, e.CPU)
			}
		}
	}
	var cpus []int
	for cpu := range current {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)
	for _, cpu := range cpus {
		o := current[cpu]
		spans = append(spans, Span{cpu, o.thread, o.startNs, endNs})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].CPU < spans[j].CPU
	})
	return spans
}

// Utilization returns, per thread name, the fraction of [fromNs, toNs)
// spent executing, aggregated over all CPUs.
func (r *Recorder) Utilization(fromNs, toNs int64) map[string]float64 {
	if toNs <= fromNs {
		return nil
	}
	busy := map[string]int64{}
	for _, s := range r.Spans(toNs) {
		lo, hi := s.StartNs, s.EndNs
		if lo < fromNs {
			lo = fromNs
		}
		if hi > toNs {
			hi = toNs
		}
		if hi > lo {
			busy[s.Thread] += hi - lo
		}
	}
	out := map[string]float64{}
	for th, ns := range busy {
		out[th] = float64(ns) / float64(toNs-fromNs)
	}
	return out
}

// chromeEvent is the Chrome trace-event JSON schema (subset).
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"` // microseconds
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// WriteChromeTrace exports the timeline in Chrome trace-event format:
// complete ("X") events for execution spans and instant ("i") events for
// arrivals, misses, and IRQs.
func (r *Recorder) WriteChromeTrace(w io.Writer, endNs int64) error {
	var out []chromeEvent
	for _, s := range r.Spans(endNs) {
		out = append(out, chromeEvent{
			Name: s.Thread, Cat: "exec", Ph: "X",
			TS: s.StartNs / 1000, Dur: (s.EndNs - s.StartNs) / 1000,
			PID: 1, TID: s.CPU,
		})
	}
	for _, e := range r.events {
		switch e.Kind {
		case Arrival, Miss, IRQ, Mark:
			out = append(out, chromeEvent{
				Name: e.Kind.String() + ":" + e.Thread + e.Label, Cat: e.Kind.String(),
				Ph: "i", TS: e.AtNs / 1000, PID: 1, TID: e.CPU,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
