package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func bootTraced(t *testing.T, ncpus int, seed uint64) (*core.Kernel, *Recorder) {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	k := core.Boot(m, core.DefaultConfig(spec))
	r := NewRecorder(1 << 18)
	Attach(k, r)
	return k, r
}

func periodicProg(c core.Constraints) core.Program {
	admitted := false
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: c}
		}
		return core.Compute{Cycles: 20_000}
	})
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	k, r := bootTraced(t, 1, 121)
	k.Spawn("rt", 0, periodicProg(core.PeriodicConstraints(0, 100_000, 50_000)))
	k.RunNs(10_000_000)

	arrivals := r.Filter(Arrival, 0, "rt", 0, 0)
	if len(arrivals) < 90 {
		t.Fatalf("arrivals recorded: %d", len(arrivals))
	}
	ins := r.Filter(SwitchIn, 0, "rt", 0, 0)
	outs := r.Filter(SwitchOut, 0, "rt", 0, 0)
	if len(ins) < 90 || len(outs) < 89 {
		t.Fatalf("switch events: in=%d out=%d", len(ins), len(outs))
	}
	if len(r.Filter(Miss, -1, "", 0, 0)) != 0 {
		t.Fatalf("spurious misses recorded")
	}
}

func TestRecorderMisses(t *testing.T) {
	spec := machine.PhiKNL().Scaled(1)
	m := machine.New(spec, 122)
	cfg := core.DefaultConfig(spec)
	cfg.Admit = core.AdmitNone
	k := core.Boot(m, cfg)
	r := NewRecorder(1 << 18)
	Attach(k, r)
	// Infeasible: 10us period at 80% slice.
	k.Spawn("rt", 0, periodicProg(core.PeriodicConstraints(0, 10_000, 8_000)))
	k.RunNs(10_000_000)
	if len(r.Filter(Miss, 0, "rt", 0, 0)) < 100 {
		t.Fatalf("misses recorded: %d", len(r.Filter(Miss, 0, "rt", 0, 0)))
	}
}

func TestSpansAndUtilization(t *testing.T) {
	k, r := bootTraced(t, 1, 123)
	k.Spawn("rt", 0, periodicProg(core.PeriodicConstraints(0, 100_000, 50_000)))
	runNs := int64(20_000_000)
	k.RunNs(runNs)
	spans := r.Spans(runNs)
	if len(spans) < 100 {
		t.Fatalf("spans: %d", len(spans))
	}
	for _, s := range spans {
		if s.EndNs < s.StartNs {
			t.Fatalf("negative span: %+v", s)
		}
	}
	util := r.Utilization(2_000_000, runNs)
	u := util["rt"]
	if u < 0.45 || u > 0.60 {
		t.Fatalf("traced utilization %.3f, want ~0.5", u)
	}
}

func TestChromeTraceExport(t *testing.T) {
	k, r := bootTraced(t, 1, 124)
	k.Spawn("rt", 0, periodicProg(core.PeriodicConstraints(0, 100_000, 50_000)))
	k.RunNs(5_000_000)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, 5_000_000); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var execs, instants int
	for _, e := range parsed {
		switch e["ph"] {
		case "X":
			execs++
		case "i":
			instants++
		}
	}
	if execs < 20 || instants < 20 {
		t.Fatalf("export shape: %d exec, %d instant", execs, instants)
	}
}

func TestRecorderCapacity(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Add(Event{AtNs: int64(i)})
	}
	if r.Len() != 3 || r.Dropped() != 7 {
		t.Fatalf("capacity handling: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestFilterWindow(t *testing.T) {
	r := NewRecorder(100)
	for i := int64(0); i < 10; i++ {
		r.Add(Event{AtNs: i * 100, CPU: int(i % 2), Kind: Mark, Thread: "x"})
	}
	got := r.Filter(Mark, 0, "x", 200, 700)
	if len(got) != 3 { // 200, 400, 600
		t.Fatalf("window filter: %d events", len(got))
	}
	if len(r.Filter(255, -1, "", 0, 0)) != 10 {
		t.Fatalf("wildcard filter broken")
	}
}
