package trace

import "hrtsched/internal/core"

// Attach wires a recorder into a kernel's instrumentation hooks. It
// overwrites any previously installed hooks.
func Attach(k *core.Kernel, r *Recorder) {
	k.Hooks = core.Hooks{
		SwitchIn: func(cpu int, t *core.Thread, nowNs int64) {
			r.Add(Event{AtNs: nowNs, CPU: cpu, Kind: SwitchIn, Thread: t.Name()})
		},
		SwitchOut: func(cpu int, t *core.Thread, nowNs int64) {
			r.Add(Event{AtNs: nowNs, CPU: cpu, Kind: SwitchOut, Thread: t.Name()})
		},
		Arrival: func(cpu int, t *core.Thread, nowNs int64) {
			r.Add(Event{AtNs: nowNs, CPU: cpu, Kind: Arrival, Thread: t.Name()})
		},
		Miss: func(cpu int, t *core.Thread, nowNs int64, missNs int64) {
			r.Add(Event{AtNs: nowNs, CPU: cpu, Kind: Miss, Thread: t.Name()})
		},
		DeviceIRQ: func(cpu int, vector uint8, nowNs int64) {
			r.Add(Event{AtNs: nowNs, CPU: cpu, Kind: IRQ})
		},
	}
}
