package experiments

// Fault-injection experiments: the chaos scenarios of internal/fault run
// as registered harnesses, reporting miss-rate degradation and recovery
// curves. These are the robustness counterparts of the paper's evaluation
// figures: instead of measuring the scheduler on a healthy machine, they
// measure how far it bends — and how fast it recovers — on a hostile one.

import (
	"hrtsched/internal/fault"
	"hrtsched/internal/stats"
)

// missCurve adds a scenario's per-bucket miss counts to a series.
func missCurve(s *stats.Series, r *fault.Result) {
	for i, n := range r.MissCurve {
		s.Add(float64(int64(i)*r.BucketNs)/1e6, float64(n))
	}
}

// totalMissRate sums misses/arrivals over the watched threads.
func totalMissRate(r *fault.Result) float64 {
	var misses, arrivals int64
	for _, t := range r.Watched {
		misses += t.Misses
		arrivals += t.Arrivals
	}
	if arrivals == 0 {
		return 0
	}
	return 100 * float64(misses) / float64(arrivals)
}

// FaultSMIStorm runs the smi-storm scenario under eager and lazy EDF and
// reports the miss-per-bucket degradation curves. The acceptance claim of
// Section 3.6 must survive faults too: eager EDF's miss rate stays at or
// below lazy EDF's under the same storm.
func FaultSMIStorm(o Options) *stats.Figure {
	fig := stats.NewFigure("fault-smi-storm",
		"Miss degradation under Markov-modulated SMI storms (eager vs lazy EDF)",
		"time (ms)", "misses per bucket")
	eager, err := fault.Run(fault.Options{Scenario: "smi-storm", Seed: o.Seed})
	if err != nil {
		panic(err)
	}
	lazy, err := fault.Run(fault.Options{Scenario: "smi-storm", Seed: o.Seed, Lazy: true})
	if err != nil {
		panic(err)
	}
	missCurve(fig.AddSeries("eager EDF"), eager)
	missCurve(fig.AddSeries("lazy EDF"), lazy)
	fig.Note("total miss rate: eager %.2f%% vs lazy %.2f%%; invariant passes eager=%d violations=%d",
		totalMissRate(eager), totalMissRate(lazy),
		eager.Checker.Passes(), len(eager.Checker.Violations()))
	return fig
}

// FaultIRQStorm runs the irq-storm scenario (priority filtering off, the
// control thread on the interrupt-free CPU) and reports per-thread curves.
func FaultIRQStorm(o Options) *stats.Figure {
	fig := stats.NewFigure("fault-irq-storm",
		"Device-IRQ storms on the laden CPU, priority filtering off",
		"time (ms)", "misses per bucket")
	eager, err := fault.Run(fault.Options{Scenario: "irq-storm", Seed: o.Seed})
	if err != nil {
		panic(err)
	}
	lazy, err := fault.Run(fault.Options{Scenario: "irq-storm", Seed: o.Seed, Lazy: true})
	if err != nil {
		panic(err)
	}
	missCurve(fig.AddSeries("eager EDF"), eager)
	missCurve(fig.AddSeries("lazy EDF"), lazy)
	ev, lv := eager.Watched[0], lazy.Watched[0]
	fig.Note("laden-CPU victim: eager %d/%d vs lazy %d/%d misses; interrupt-free control: %d and %d",
		ev.Misses, ev.Arrivals, lv.Misses, lv.Arrivals,
		eager.Watched[1].Misses, lazy.Watched[1].Misses)
	return fig
}

// FaultDrift runs the timer-drift scenario: miscalibrated, delayed and lost
// one-shot firings, with the cross-CPU watchdog as the recovery path.
func FaultDrift(o Options) *stats.Figure {
	fig := stats.NewFigure("fault-drift",
		"APIC timer drift, delay and loss (watchdog recovery enabled)",
		"time (ms)", "misses per bucket")
	r, err := fault.Run(fault.Options{Scenario: "drift", Seed: o.Seed})
	if err != nil {
		panic(err)
	}
	missCurve(fig.AddSeries("misses"), r)
	var kicks, lost int64
	for i, s := range r.Kernel.Locals {
		kicks += s.Stats.WatchdogKicks
		lost += r.Kernel.M.CPU(i).LostTimerFires()
	}
	fig.Note("miss rate %.2f%%; %d one-shot firings lost, %d watchdog recoveries",
		totalMissRate(r), lost, kicks)
	return fig
}

// FaultOverloadShed runs the overload-shed scenario: a persistent SMI drain
// overloads an admitted 90% set, the degradation layer sheds until the
// survivors fit, and the re-admission supervisor probes recovery. The curve
// shows degradation and recovery; the note quantifies both.
func FaultOverloadShed(o Options) *stats.Figure {
	fig := stats.NewFigure("fault-overload-shed",
		"Overload shedding and re-admission under a persistent SMI drain",
		"time (ms)", "misses per bucket")
	r, err := fault.Run(fault.Options{Scenario: "overload-shed", Seed: o.Seed})
	if err != nil {
		panic(err)
	}
	missCurve(fig.AddSeries("misses"), r)
	d := r.Kernel.Degradation()
	lastStable := r.LastShedNs
	for _, ns := range r.ReadmitNs {
		if ns > lastStable {
			lastStable = ns
		}
	}
	var lastSurvivorMiss int64
	survivors := 0
	for _, t := range r.Watched {
		if _, shed := t.Degraded(); !shed {
			survivors++
			if m := r.LastMissNs[t.ID()]; m > lastSurvivorMiss {
				lastSurvivorMiss = m
			}
		}
	}
	fig.Note("sheds=%d readmitted=%d gave_up=%d; %d survivors, last shed/readmit at %dms, last survivor miss at %dms",
		d.Sheds, d.Readmitted, d.ReadmitGaveUp, survivors,
		lastStable/1e6, lastSurvivorMiss/1e6)
	return fig
}
