package experiments

import (
	"fmt"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/stats"
)

// bspSweep is the shared driver for Figures 13-16: the BSP microbenchmark
// on the Phi under a grid of (period, slice) combinations.
type bspSweep struct {
	p          int // threads (paper: 255, one per interrupt-free CPU)
	iterations int
	coarse     bool
	periodsUs  []int64
	slicePcts  []int64
}

func newBSPSweep(coarse bool, o Options) *bspSweep {
	s := &bspSweep{coarse: coarse}
	switch o.Scale {
	case Full:
		s.p = 255
		s.iterations = 40
		s.periodsUs = []int64{100, 200, 400, 600, 800, 1000, 1500, 2000, 3000, 4000}
		s.slicePcts = []int64{10, 20, 30, 40, 50, 60, 70, 80, 90}
	default:
		s.p = 16
		s.iterations = 10
		s.periodsUs = []int64{200, 500, 1000}
		s.slicePcts = []int64{10, 30, 50, 70, 90}
	}
	return s
}

func (s *bspSweep) params(useBarrier bool, cons core.Constraints) bsp.Params {
	var p bsp.Params
	if s.coarse {
		p = bsp.CoarseGrain(s.p, s.iterations)
	} else {
		p = bsp.FineGrain(s.p, s.iterations)
	}
	p.UseBarrier = useBarrier
	p.Constraints = cons
	p.PhaseCorrection = true
	return p
}

// runOne executes the benchmark on a fresh kernel.
func (s *bspSweep) runOne(seed uint64, useBarrier bool, cons core.Constraints) bsp.Result {
	k := bootPhi(s.p+1, seed, nil)
	return bsp.New(k, s.params(useBarrier, cons)).Run(1 << 30)
}

// Fig13 reproduces Figure 13: resource control with commensurate
// performance at the coarsest granularity. Every (period, slice)
// combination is plotted as (utilization, execution time): regardless of
// the period chosen, benchmark execution rate tracks the time resources
// given — T ~ work/utilization.
func Fig13(o Options) *stats.Figure {
	return throttleFigure("fig13", true, o)
}

// Fig14 reproduces Figure 14: the same at the finest granularity, where
// more variation appears across combinations with equal utilization
// because task execution time approaches the timing constraints.
func Fig14(o Options) *stats.Figure {
	return throttleFigure("fig14", false, o)
}

func throttleFigure(id string, coarse bool, o Options) *stats.Figure {
	s := newBSPSweep(coarse, o)
	gran := "coarsest"
	if !coarse {
		gran = "finest"
	}
	fig := stats.NewFigure(id,
		fmt.Sprintf("Resource control with commensurate performance, %s granularity, %d CPUs",
			gran, s.p),
		"utilization (slice/period)", "execution time (s)")

	type combo struct{ periodNs, sliceNs int64 }
	var combos []combo
	for _, pUs := range s.periodsUs {
		for _, pct := range s.slicePcts {
			pNs := pUs * 1000
			combos = append(combos, combo{pNs, pNs * pct / 100})
		}
	}
	times := make([]bsp.Result, len(combos))
	parallelMap(len(combos), o.workers(), func(i int) {
		cons := core.PeriodicConstraints(0, combos[i].periodNs, combos[i].sliceNs)
		times[i] = s.runOne(o.comboSeed(i), true, cons)
	})

	ser := fig.AddSeries("period x slice combinations")
	for i, c := range combos {
		u := float64(c.sliceNs) / float64(c.periodNs)
		ser.Add(u, float64(times[i].ExecNs)/1e9)
	}
	// The aperiodic (100% utilization) reference point.
	aper := s.runOne(o.comboSeed(len(combos)), true, core.AperiodicConstraints(50))
	ser.Add(1.0, float64(aper.ExecNs)/1e9)

	// Commensurability check: T(u) * u should be roughly flat.
	var norm stats.Summary
	for i, c := range combos {
		u := float64(c.sliceNs) / float64(c.periodNs)
		norm.Add(float64(times[i].ExecNs) / 1e9 * u)
	}
	fig.Note("T(u)*u: mean %.4fs, std %.4fs — execution rate tracks allocated time (flat = commensurate)",
		norm.Mean(), norm.Std())
	fig.Note("aperiodic 100%% utilization reference: %.4fs", float64(aper.ExecNs)/1e9)
	var incomplete int
	for _, r := range times {
		if r.Iterations != int64(s.p*s.iterations) {
			incomplete++
		}
	}
	if incomplete > 0 {
		fig.Note("WARNING: %d combinations did not complete", incomplete)
	}
	return fig
}
