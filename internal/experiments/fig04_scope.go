package experiments

import (
	"hrtsched/internal/core"
	"hrtsched/internal/scope"
	"hrtsched/internal/stats"
)

// Fig4 reproduces Figure 4: external (GPIO + oscilloscope) verification of
// a periodic thread with period 100 us and slice 50 us. The paper's
// qualitative result: the test thread's trace is sharp while the scheduler
// pass and interrupt handler traces carry fuzz — the scheduler absorbs the
// jitter so the thread doesn't see it.
func Fig4(o Options) *stats.Figure {
	runNs := int64(200_000_000) // 2000 periods
	if o.Scale == Quick {
		runNs = 30_000_000
	}
	k := bootPhi(4, o.Seed, nil)
	const cpu = 1
	th := k.Spawn("test", cpu, periodicSpin(
		core.PeriodicConstraints(0, 100_000, 50_000), 20_000))
	k.SetScope(&core.ScopeHook{CPU: cpu, Thread: th})
	k.RunNs(runNs)

	thread := scope.Analyze(k.M, 0, "test thread")
	sched := scope.Analyze(k.M, 1, "scheduler")
	irq := scope.Analyze(k.M, 2, "interrupt")

	fig := stats.NewFigure("fig4",
		"External scope verification: periodic thread tau=100us sigma=50us on Phi",
		"trace", "timing (us)")
	for _, tr := range []*scope.Trace{thread, sched, irq} {
		s := fig.AddSeries(tr.Label)
		s.AddErr(0, tr.Period.Mean()/1000, tr.Period.Std()/1000) // period
		s.AddErr(1, tr.Width.Mean()/1000, tr.Width.Std()/1000)   // width
		s.Add(2, tr.DutyPct)                                     // duty
		fig.Note("%s", tr.String())
	}
	fig.Note("thread period fuzz %.0f ns vs interrupt width fuzz %.0f ns (sharp vs fuzzy)",
		thread.FuzzNs(), irq.Width.Std())
	fig.Note("thread duty %.1f%% (slightly above 50%%: active time includes the scheduler pass, as in the paper)",
		thread.DutyPct)
	if th.Misses > 0 {
		fig.Note("WARNING: %d deadline misses during scope run", th.Misses)
	}
	return fig
}
