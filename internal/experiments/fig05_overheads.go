package experiments

import (
	"hrtsched/internal/core"
	"hrtsched/internal/stats"
)

// Fig5 reproduces Figure 5: the breakdown of local scheduler overhead into
// IRQ, Other, Resched and Switch, in cycles, on the Phi (a) and the R415
// (b). About half the ~6,000-cycle Phi overhead is the scheduling pass.
func Fig5(o Options) *stats.Figure {
	runNs := int64(100_000_000)
	if o.Scale == Quick {
		runNs = 20_000_000
	}
	fig := stats.NewFigure("fig5",
		"Breakdown of local scheduler overheads",
		"category (0=IRQ 1=Other 2=Resched 3=Switch)", "overhead in cycle count")

	measure := func(k *core.Kernel, label string) {
		k.Spawn("rt", 0, periodicSpin(core.PeriodicConstraints(0, 100_000, 50_000), 20_000))
		k.RunNs(runNs)
		st := &k.Locals[0].Stats
		s := fig.AddSeries(label)
		s.AddErr(0, st.IRQCycles.Mean(), st.IRQCycles.Std())
		s.AddErr(1, st.OtherCycles.Mean(), st.OtherCycles.Std())
		s.AddErr(2, st.ReschedCycles.Mean(), st.ReschedCycles.Std())
		s.AddErr(3, st.SwitchCycles.Mean(), st.SwitchCycles.Std())
		total := st.IRQCycles.Mean() + st.OtherCycles.Mean() +
			st.ReschedCycles.Mean() + st.SwitchCycles.Mean()
		fig.Note("%s: total software overhead %.0f cycles over %d invocations (paper Phi: ~6000)",
			label, total, st.Invocations)
	}

	measure(bootPhi(1, o.Seed, nil), "phi")
	measure(bootR415(o.Seed+1, nil), "r415")
	return fig
}
