package experiments

import "testing"

// goldenDigests pins the exact stats.Figure contents of three experiments
// at the Quick preset with the default seed. The values were captured from
// the pre-PR-4 container/heap engine and must never drift: the event core
// may be rearchitected for speed, but event ordering, SMI slip accounting
// and RNG consumption have to stay bit-for-bit identical, and these three
// harnesses together exercise single-CPU timer churn (fig6), cross-CPU
// group synchronization (fig11), and device-interrupt storms with priority
// filtering (ablation-steering).
var goldenDigests = map[string]string{
	"fig6":              "56e59cdff2ee650aec0e5a86653de9ec2bea766961bac8eb90ba238f2e76ccce",
	"fig11":             "780332f9d534e2876c6808895e0dfbe8b3cf8e5f52d740a94c8af5841fc69159",
	"ablation-steering": "e494eee085db1980ab6a39cbfd7f39599045650fdb95242b5901f45baa5d18a2",
}

func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment runs, skipped in -short")
	}
	for id, want := range goldenDigests {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := Run(id, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			got := fig.Digest()
			if got != want {
				t.Fatalf("digest drifted: got %s, want %s\nthe engine rewrite changed observable behaviour; figure now:\n%s",
					got, want, fig.Format())
			}
		})
	}
}

// TestGoldenRerunStable guards the guard: the same harness run twice in
// one process must digest identically, otherwise the pinned values above
// test nothing.
func TestGoldenRerunStable(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs, skipped in -short")
	}
	a, err := Run("fig6", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig6", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("fig6 is not deterministic within one process: %s vs %s", a.Digest(), b.Digest())
	}
}
