package experiments

import (
	"hrtsched/internal/core"
	"hrtsched/internal/cyclic"
	"hrtsched/internal/machine"
	"hrtsched/internal/omp"
	"hrtsched/internal/stats"
)

// ExtCyclic evaluates the paper's future-work direction (Section 8):
// compiling the task set into a cyclic executive versus scheduling it with
// the online EDF scheduler. Both meet all deadlines; the executive needs
// far fewer scheduler interactions per hyperperiod.
func ExtCyclic(o Options) *stats.Figure {
	runNs := int64(200_000_000)
	if o.Scale == Quick {
		runNs = 50_000_000
	}
	tasks := []cyclic.Task{
		{Name: "a", PeriodNs: 100_000, SliceNs: 25_000},
		{Name: "b", PeriodNs: 200_000, SliceNs: 70_000},
		{Name: "c", PeriodNs: 400_000, SliceNs: 60_000},
	}
	fig := stats.NewFigure("ext-cyclic",
		"Cyclic executive (static construction) vs online EDF",
		"approach (0=EDF 1=cyclic)", "scheduler invocations per ms")

	// Online EDF.
	spec := machine.PhiKNL().Scaled(2)
	mEDF := machine.New(spec, o.Seed)
	kEDF := core.Boot(mEDF, core.DefaultConfig(spec))
	var misses int64
	for _, task := range tasks {
		cons := core.PeriodicConstraints(0, task.PeriodNs, task.SliceNs)
		kEDF.Spawn(task.Name, 1, periodicSpin(cons, 10_000))
	}
	kEDF.RunNs(runNs)
	for _, th := range kEDF.Threads() {
		misses += th.Misses
	}
	edfInv := kEDF.Locals[1].Stats.Invocations

	// Cyclic executive.
	tbl, err := cyclic.Build(tasks, 0.99)
	if err != nil {
		fig.Note("BUILD FAILED: %v", err)
		return fig
	}
	mCyc := machine.New(spec, o.Seed+1)
	kCyc := core.Boot(mCyc, core.DefaultConfig(spec))
	ex := cyclic.NewExecutive(kCyc, 1, tbl)
	ex.Start()
	kCyc.RunNs(runNs)
	cycInv := kCyc.Locals[1].Stats.Invocations

	ms := float64(runNs) / 1e6
	s := fig.AddSeries("invocations/ms")
	s.Add(0, float64(edfInv)/ms)
	s.Add(1, float64(cycInv)/ms)
	fig.Note("EDF: %d invocations, %d misses; cyclic: %d invocations, worst dispatch jitter %d ns",
		edfInv, misses, cycInv, ex.WorstJitterNs)
	fig.Note("static construction needs %.1fx fewer scheduler interactions",
		float64(edfInv)/float64(cycInv))
	return fig
}

// ExtOMP evaluates the Section 8 run-time integration: the OpenMP-like
// team under (a) aperiodic scheduling with barriers, (b) 90% gang
// scheduling with barriers, (c) 90% gang scheduling with barriers removed,
// across region granularities.
func ExtOMP(o Options) *stats.Figure {
	workers := 16
	regions := 40
	if o.Scale == Quick {
		workers = 8
		regions = 20
	}
	fig := stats.NewFigure("ext-omp",
		"OpenMP-like run-time: barriers vs gang-scheduled timing",
		"region grain (cycles of work per worker)", "execution time (ms)")

	grains := []int64{20_000, 60_000, 200_000, 600_000}
	run := func(cons core.Constraints, sync omp.SyncMode, grain int64, seed uint64) float64 {
		spec := machine.PhiKNL().Scaled(workers + 1)
		m := machine.New(spec, seed)
		k := core.Boot(m, core.DefaultConfig(spec))
		team := omp.MustNewTeam(k, omp.Config{Workers: workers, FirstCPU: 1,
			Constraints: cons, Sync: sync})
		iters := workers * 8
		costPer := grain / 8
		start := k.NowNs()
		for r := 0; r < regions; r++ {
			team.Submit(omp.Region{Iterations: iters, CostPerIter: costPer})
		}
		if !team.Wait(regions, 1<<30) {
			return -1
		}
		return float64(k.NowNs()-start) / 1e6
	}

	rt := core.PeriodicConstraints(0, 200_000, 180_000)
	aper := fig.AddSeries("aperiodic + barriers")
	gangBar := fig.AddSeries("gang 90% + barriers")
	gangTimed := fig.AddSeries("gang 90% timed (no barriers)")
	type row struct{ a, gb, gt float64 }
	rows := make([]row, len(grains))
	parallelMap(len(grains), o.workers(), func(i int) {
		rows[i] = row{
			a:  run(core.AperiodicConstraints(50), omp.SyncBarrier, grains[i], o.comboSeed(3*i)),
			gb: run(rt, omp.SyncBarrier, grains[i], o.comboSeed(3*i+1)),
			gt: run(rt, omp.SyncTimed, grains[i], o.comboSeed(3*i+2)),
		}
	})
	for i, g := range grains {
		aper.Add(float64(g), rows[i].a)
		gangBar.Add(float64(g), rows[i].gb)
		gangTimed.Add(float64(g), rows[i].gt)
	}
	fine := rows[0]
	fig.Note("finest grain: removing barriers buys the gang %.0f%% (%.3f -> %.3f ms); aperiodic+barrier reference %.3f ms",
		100*(fine.gb-fine.gt)/fine.gb, fine.gb, fine.gt, fine.a)
	fig.Note("the gang runs at 90%% utilization; at scale (more workers) timed mode also beats the aperiodic reference, as in Figure 16")
	return fig
}
