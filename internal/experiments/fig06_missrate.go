package experiments

import (
	"fmt"

	"hrtsched/internal/stats"
)

// missSweep is the shared driver for Figures 6-9: a grid of (period, slice%)
// combinations run with admission control disabled so infeasible
// constraints are observable, one periodic thread per single-CPU kernel.
type missSweep struct {
	phi       bool
	periodsUs []int64
	slicePcts []int64
	runNs     int64
	results   []missResult
}

func newMissSweep(phi bool, o Options) *missSweep {
	s := &missSweep{phi: phi}
	if phi {
		s.periodsUs = []int64{10, 20, 30, 40, 50, 100, 1000}
	} else {
		s.periodsUs = []int64{4, 10, 20, 30, 40, 50, 100, 1000}
	}
	switch o.Scale {
	case Full:
		for p := int64(10); p <= 90; p += 5 {
			s.slicePcts = append(s.slicePcts, p)
		}
		s.runNs = 120_000_000
	default:
		s.slicePcts = []int64{10, 30, 50, 70, 90}
		s.runNs = 30_000_000
	}
	return s
}

func (s *missSweep) run(o Options) {
	n := len(s.periodsUs) * len(s.slicePcts)
	s.results = make([]missResult, n)
	parallelMap(n, o.workers(), func(i int) {
		pi, si := i/len(s.slicePcts), i%len(s.slicePcts)
		periodNs := s.periodsUs[pi] * 1000
		sliceNs := periodNs * s.slicePcts[si] / 100
		s.results[i] = missRun(s.phi, o.comboSeed(i), periodNs, sliceNs, s.runNs)
	})
}

func (s *missSweep) at(pi, si int) missResult {
	return s.results[pi*len(s.slicePcts)+si]
}

// Fig6 reproduces Figure 6: deadline miss rate on the Phi as a function of
// period and slice, with admission control off. Expected shape: a sharp
// feasibility edge — zero misses once period and slice are feasible given
// the ~6,000-cycle scheduler overhead, with the edge at a period of about
// 10 us.
func Fig6(o Options) *stats.Figure {
	return missRateFigure("fig6", true, o)
}

// Fig7 reproduces Figure 7: the same on the faster-per-core R415, where
// the edge of feasibility drops to about 4 us.
func Fig7(o Options) *stats.Figure {
	return missRateFigure("fig7", false, o)
}

func missRateFigure(id string, phi bool, o Options) *stats.Figure {
	name := "Phi"
	if !phi {
		name = "R415"
	}
	s := newMissSweep(phi, o)
	s.run(o)
	fig := stats.NewFigure(id,
		fmt.Sprintf("Local scheduler deadline miss rate on %s vs period and slice", name),
		"slice (% of period)", "miss rate (%)")
	for pi, pUs := range s.periodsUs {
		ser := fig.AddSeries(fmt.Sprintf("%d us", pUs))
		for si, pct := range s.slicePcts {
			r := s.at(pi, si)
			rate := 0.0
			if r.Arrivals > 0 {
				rate = 100 * float64(r.Misses) / float64(r.Arrivals)
			}
			ser.Add(float64(pct), rate)
		}
	}
	edge := feasibilityEdgeUs(s)
	fig.Note("edge of feasibility: smallest period with a zero-miss slice is %d us (paper: ~%s)",
		edge, map[bool]string{true: "10 us", false: "4 us"}[phi])
	return fig
}

// feasibilityEdgeUs finds the smallest period that achieved zero misses at
// any plotted slice.
func feasibilityEdgeUs(s *missSweep) int64 {
	best := int64(0)
	for pi, pUs := range s.periodsUs {
		ok := false
		for si := range s.slicePcts {
			r := s.at(pi, si)
			if r.Arrivals > 0 && r.Misses == 0 {
				ok = true
				break
			}
		}
		if ok && (best == 0 || pUs < best) {
			best = pUs
		}
	}
	return best
}

// Fig8 reproduces Figure 8: average and standard deviation of miss times
// on the Phi. For feasible constraints the miss time is zero; for
// infeasible ones the deadlines are missed by only small amounts (a few
// microseconds).
func Fig8(o Options) *stats.Figure {
	return missTimeFigure("fig8", true, o)
}

// Fig9 reproduces Figure 9: miss times on the R415.
func Fig9(o Options) *stats.Figure {
	return missTimeFigure("fig9", false, o)
}

func missTimeFigure(id string, phi bool, o Options) *stats.Figure {
	name := "Phi"
	if !phi {
		name = "R415"
	}
	s := newMissSweep(phi, o)
	s.run(o)
	fig := stats.NewFigure(id,
		fmt.Sprintf("Average and std of miss times for schedules on %s", name),
		"slice (% of period)", "miss time (us)")
	var worst float64
	for pi, pUs := range s.periodsUs {
		ser := fig.AddSeries(fmt.Sprintf("%d us", pUs))
		for si, pct := range s.slicePcts {
			r := s.at(pi, si)
			ser.AddErr(float64(pct), r.MissNsMean/1000, r.MissNsStd/1000)
			if r.MissNsMean/1000 > worst {
				worst = r.MissNsMean / 1000
			}
		}
	}
	fig.Note("largest mean miss time %.1f us: infeasible constraints miss by small amounts only", worst)
	return fig
}
