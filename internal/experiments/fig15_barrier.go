package experiments

import (
	"fmt"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/stats"
)

// Fig15 reproduces Figure 15: the benefit of barrier removal at the
// coarsest granularity. Each (period, slice) combination is run twice —
// with and without the optional barrier — and plotted as (time without
// barrier, time with barrier). Points above the y=x line benefit from
// removal. The real-time benchmark without barriers at ~90% utilization
// approaches the non-real-time (aperiodic, 100% utilization) benchmark
// with barriers.
func Fig15(o Options) *stats.Figure {
	return barrierFigure("fig15", true, o)
}

// Fig16 reproduces Figure 16: the same at the finest granularity, where
// Amdahl's law makes the barrier dominant — gains range from tens of
// percent to several hundred percent, and the barrier-free real-time runs
// beat the aperiodic/100% + barrier configuration outright.
func Fig16(o Options) *stats.Figure {
	return barrierFigure("fig16", false, o)
}

func barrierFigure(id string, coarse bool, o Options) *stats.Figure {
	s := newBSPSweep(coarse, o)
	gran := "coarsest"
	if !coarse {
		gran = "finest"
	}
	fig := stats.NewFigure(id,
		fmt.Sprintf("Benefit of barrier removal, %s granularity, %d CPUs", gran, s.p),
		"time with barrier removal (ns)", "time without barrier removal (ns)")

	type combo struct{ periodNs, sliceNs int64 }
	var combos []combo
	for _, pUs := range s.periodsUs {
		for _, pct := range s.slicePcts {
			pNs := pUs * 1000
			combos = append(combos, combo{pNs, pNs * pct / 100})
		}
	}
	type pair struct{ with, without bsp.Result }
	res := make([]pair, len(combos))
	parallelMap(len(combos), o.workers(), func(i int) {
		cons := core.PeriodicConstraints(0, combos[i].periodNs, combos[i].sliceNs)
		res[i] = pair{
			with:    s.runOne(o.comboSeed(2*i), true, cons),
			without: s.runOne(o.comboSeed(2*i+1), false, cons),
		}
	})

	ser := fig.AddSeries("period x slice combinations")
	faster, total := 0, 0
	var gain stats.Summary
	var maxSkew int64
	for _, r := range res {
		x := float64(r.without.ExecNs) // time with barrier removal
		y := float64(r.with.ExecNs)    // time without barrier removal
		ser.Add(x, y)
		total++
		if y > x {
			faster++
		}
		if x > 0 {
			gain.Add(100 * (y - x) / x)
		}
		if r.without.MaxSkew > maxSkew {
			maxSkew = r.without.MaxSkew
		}
	}
	// Aperiodic reference (barrier required for correctness).
	aper := s.runOne(o.comboSeed(2*len(combos)), true, core.AperiodicConstraints(50))

	fig.Note("%d of %d combinations run faster without the barrier", faster, total)
	fig.Note("speed benefit: mean %.0f%%, max %.0f%% (paper %s: %s)",
		gain.Mean(), gain.Max(), gran,
		map[bool]string{true: "modest gains", false: "20%-300%"}[coarse])
	fig.Note("aperiodic+barrier reference (100%% util): %.4g ns", float64(aper.ExecNs))
	// Headline comparison: best barrier-free RT (90% util) vs aperiodic.
	var best90 int64
	for i, c := range combos {
		if c.sliceNs*10 == c.periodNs*9 { // 90% slices
			if best90 == 0 || res[i].without.ExecNs < best90 {
				best90 = res[i].without.ExecNs
			}
		}
	}
	if best90 > 0 {
		fig.Note("best 90%%-utilization barrier-free RT: %.4g ns (%.2fx the aperiodic+barrier reference)",
			float64(best90), float64(best90)/float64(aper.ExecNs))
	}
	fig.Note("max iteration skew observed in any barrier-free run: %d (lockstep holds)", maxSkew)
	return fig
}
