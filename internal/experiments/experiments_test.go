package experiments

import (
	"strings"
	"testing"
)

func quick() Options { return Options{Scale: Quick, Seed: 0xabc, Workers: 4} }

func TestFig3Shape(t *testing.T) {
	fig := Fig3(quick())
	if len(fig.Series) != 1 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	var total float64
	for _, p := range fig.Series[0].Points {
		total += p.Y
	}
	if total != 255 {
		t.Fatalf("histogram covers %v CPUs, want 255", total)
	}
	// The paper's claim: all CPUs within ~1000 cycles. Allow a little slack.
	for _, p := range fig.Series[0].Points {
		if p.X > 1200 && p.Y > 0 {
			t.Fatalf("CPU with residual beyond 1200 cycles: bucket %v count %v", p.X, p.Y)
		}
	}
}

func TestFig4ThreadSharpSchedulerFuzzy(t *testing.T) {
	fig := Fig4(quick())
	// Sharp vs fuzzy is relative to each trace's own scale, as on the
	// scope: the thread's period jitter is a fraction of a percent of its
	// period, while the interrupt handler's width jitters by several
	// percent of its width.
	threadPeriodCoV := fig.Series[0].Points[0].Err / fig.Series[0].Points[0].Y
	irqWidthCoV := fig.Series[2].Points[1].Err / fig.Series[2].Points[1].Y
	if threadPeriodCoV > 0.02 {
		t.Fatalf("test thread trace not sharp: period CoV %.4f", threadPeriodCoV)
	}
	if irqWidthCoV < 0.03 {
		t.Fatalf("interrupt trace not fuzzy: width CoV %.4f", irqWidthCoV)
	}
	if irqWidthCoV <= 3*threadPeriodCoV {
		t.Fatalf("interrupt trace (CoV %.4f) not clearly fuzzier than thread (CoV %.4f)",
			irqWidthCoV, threadPeriodCoV)
	}
	// Duty cycle slightly above 50%.
	duty := fig.Series[0].Points[2].Y
	if duty < 49 || duty > 60 {
		t.Fatalf("thread duty %.1f%% outside [49,60]", duty)
	}
}

func TestFig5OverheadBreakdown(t *testing.T) {
	fig := Fig5(quick())
	if len(fig.Series) != 2 {
		t.Fatalf("want phi and r415 series")
	}
	sum := func(si int) float64 {
		var s float64
		for _, p := range fig.Series[si].Points {
			s += p.Y
		}
		return s
	}
	phi, r415 := sum(0), sum(1)
	if phi < 5000 || phi > 7000 {
		t.Fatalf("phi total overhead %.0f outside [5000,7000] cycles", phi)
	}
	if r415 >= phi {
		t.Fatalf("r415 overhead (%.0f) should be below phi (%.0f)", r415, phi)
	}
	// Resched is the largest component on both platforms.
	for si := 0; si < 2; si++ {
		pts := fig.Series[si].Points
		for i, p := range pts {
			if i != 2 && p.Y >= pts[2].Y {
				t.Fatalf("series %d: category %d (%.0f) >= resched (%.0f)", si, i, p.Y, pts[2].Y)
			}
		}
	}
}

func TestFig6FeasibilityEdge(t *testing.T) {
	fig := Fig6(quick())
	bySeries := map[string][]float64{}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			bySeries[s.Label] = append(bySeries[s.Label], p.Y)
		}
	}
	// 1000us and 100us must be fully feasible; 10us must miss at high slice.
	for _, label := range []string{"1000 us", "100 us"} {
		for _, rate := range bySeries[label] {
			if rate != 0 {
				t.Fatalf("%s period shows misses: %v", label, bySeries[label])
			}
		}
	}
	tens := bySeries["10 us"]
	if tens[len(tens)-1] < 50 {
		t.Fatalf("10us at 90%% slice should miss heavily, got %.1f%%", tens[len(tens)-1])
	}
}

func TestFig7R415FinerEdge(t *testing.T) {
	fig := Fig7(quick())
	var fourUs []float64
	for _, s := range fig.Series {
		if s.Label == "4 us" {
			for _, p := range s.Points {
				fourUs = append(fourUs, p.Y)
			}
		}
	}
	if len(fourUs) == 0 {
		t.Fatalf("no 4us series")
	}
	// 4us must be feasible at SOME low slice on the R415 (edge ~4us).
	if fourUs[0] != 0 {
		t.Fatalf("4us at lowest slice should be feasible on R415, got %.1f%%", fourUs[0])
	}
}

func TestFig8MissTimesSmall(t *testing.T) {
	fig := Fig8(quick())
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y > 40 { // microseconds
				t.Fatalf("miss time %v us too large for %s", p.Y, s.Label)
			}
		}
	}
}

func TestFig10LinearGrowth(t *testing.T) {
	fig := Fig10(quick())
	find := func(label string) []float64 {
		for _, s := range fig.Series {
			if s.Label == label {
				ys := make([]float64, len(s.Points))
				for i, p := range s.Points {
					ys[i] = p.Y
				}
				return ys
			}
		}
		t.Fatalf("missing series %q", label)
		return nil
	}
	for _, label := range []string{"group join (avg)", "group change constraints (avg)"} {
		ys := find(label)
		if ys[len(ys)-1] <= ys[0] {
			t.Fatalf("%s not growing: %v", label, ys)
		}
	}
	local := find("local change constraints")
	for _, v := range local {
		if v != local[0] {
			t.Fatalf("local change constraints not flat: %v", local)
		}
	}
	// Group admission must cost more than local admission at every size.
	gcc := find("group change constraints (avg)")
	for i := range gcc {
		if gcc[i] <= local[i] {
			t.Fatalf("group admission (%.0f) not above local floor (%.0f)", gcc[i], local[i])
		}
	}
}

func TestFig11SpreadBounded(t *testing.T) {
	fig := Fig11(quick())
	for _, p := range fig.Series[0].Points {
		if p.Y > 40_000 {
			t.Fatalf("8-thread group spread %v cycles is implausibly large", p.Y)
		}
		if p.Y < 0 {
			t.Fatalf("negative spread")
		}
	}
}

func TestFig12BiasGrowsWithSize(t *testing.T) {
	fig := Fig12(quick())
	means := make([]float64, len(fig.Series))
	for i, s := range fig.Series {
		var sum float64
		for _, p := range s.Points {
			sum += p.Y
		}
		means[i] = sum / float64(len(s.Points))
	}
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1] {
			t.Fatalf("spread bias not growing with group size: %v", means)
		}
	}
}

func TestFig13Commensurate(t *testing.T) {
	fig := Fig13(quick())
	pts := fig.Series[0].Points
	// Execution time should decrease with utilization: compare low vs high.
	var lo, hi []float64
	for _, p := range pts {
		if p.X <= 0.31 {
			lo = append(lo, p.Y)
		}
		if p.X >= 0.69 {
			hi = append(hi, p.Y)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		t.Fatalf("sweep missing low/high utilization points")
	}
	avg := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if avg(lo) < 1.8*avg(hi) {
		t.Fatalf("throttling not commensurate: lo=%.4f hi=%.4f", avg(lo), avg(hi))
	}
}

func TestFig16BarrierRemovalWins(t *testing.T) {
	fig := Fig16(quick())
	above, total := 0, 0
	for _, p := range fig.Series[0].Points {
		total++
		if p.Y > p.X {
			above++
		}
	}
	if above*10 < total*8 {
		t.Fatalf("only %d/%d fine-grain combos benefit from barrier removal", above, total)
	}
	joined := strings.Join(fig.Notes, "\n")
	if !strings.Contains(joined, "lockstep holds") {
		t.Fatalf("missing lockstep note: %s", joined)
	}
}

func TestRegistryRunsAll(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("id %q not in registry", id)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Fatalf("unknown id accepted")
	}
}

func TestExtCyclicFewerInvocations(t *testing.T) {
	fig := ExtCyclic(quick())
	pts := fig.Series[0].Points
	if pts[1].Y >= pts[0].Y {
		t.Fatalf("cyclic executive (%v/ms) not cheaper than EDF (%v/ms)", pts[1].Y, pts[0].Y)
	}
}

func TestExtOMPTimedBeatsGangBarrier(t *testing.T) {
	fig := ExtOMP(quick())
	gangBar := fig.Series[1].Points
	gangTimed := fig.Series[2].Points
	// At the finest grain, removing barriers must speed up the gang.
	if gangTimed[0].Y >= gangBar[0].Y {
		t.Fatalf("timed (%v ms) not faster than gang+barrier (%v ms) at finest grain",
			gangTimed[0].Y, gangBar[0].Y)
	}
	for i := range gangTimed {
		if gangTimed[i].Y <= 0 || gangBar[i].Y <= 0 {
			t.Fatalf("a configuration stalled")
		}
	}
}

func TestAblationEagerShape(t *testing.T) {
	fig := AblationEagerVsLazy(quick())
	eager := fig.Series[0].Points
	lazy := fig.Series[1].Points
	// No SMIs: both perfect.
	if eager[0].Y != 0 || lazy[0].Y != 0 {
		t.Fatalf("misses without SMIs: eager=%v lazy=%v", eager[0].Y, lazy[0].Y)
	}
	// At the highest SMI rate lazy must miss clearly more.
	le, ll := eager[len(eager)-1].Y, lazy[len(lazy)-1].Y
	if ll < 2 {
		t.Fatalf("lazy EDF barely misses (%v%%) at the highest SMI rate", ll)
	}
	if ll < 3*le+1 {
		t.Fatalf("eager advantage not visible: eager=%v lazy=%v", le, ll)
	}
}

func TestAblationPhaseShape(t *testing.T) {
	fig := AblationPhaseCorrection(quick())
	raw := fig.Series[0].Points
	cor := fig.Series[1].Points
	// Uncorrected bias grows with group size.
	if raw[len(raw)-1].Y <= raw[0].Y {
		t.Fatalf("uncorrected bias not growing: %v", raw)
	}
	// Corrected spread grows much more slowly than uncorrected.
	growRaw := raw[len(raw)-1].Y - raw[0].Y
	growCor := cor[len(cor)-1].Y - cor[0].Y
	if growCor > growRaw/2 {
		t.Fatalf("phase correction not flattening growth: raw +%v, corrected +%v", growRaw, growCor)
	}
}

func TestAblationSteeringShape(t *testing.T) {
	fig := AblationInterruptSteering(quick())
	unfiltered := fig.Series[0].Points
	filtered := fig.Series[1].Points
	free := fig.Series[2].Points
	last := len(unfiltered) - 1
	if unfiltered[last].Y < 20 {
		t.Fatalf("unfiltered RT thread should miss heavily: %v%%", unfiltered[last].Y)
	}
	if filtered[last].Y != 0 || free[last].Y != 0 {
		t.Fatalf("steering mechanisms leaked misses: filtered=%v free=%v",
			filtered[last].Y, free[last].Y)
	}
}

func TestAblationStealShape(t *testing.T) {
	fig := AblationStealPolicy(quick())
	pts := fig.Series[0].Points
	p2c, off := pts[0].Y, pts[2].Y
	if off < 2*p2c {
		t.Fatalf("stealing shows no makespan benefit: p2c=%v off=%v", p2c, off)
	}
}

func TestAblationAdmitSimShape(t *testing.T) {
	fig := AblationAdmitSim(quick())
	bound := fig.Series[0].Points
	sim := fig.Series[1].Points
	boundMissing, simMissing, simAdmitted := 0, 0, 0
	for i := range bound {
		if bound[i].Y > 0 {
			boundMissing++
		}
		if sim[i].Y > 0 {
			simMissing++
		}
		if sim[i].Y >= 0 {
			simAdmitted++
		}
	}
	if boundMissing == 0 {
		t.Fatalf("the classic bound's optimism did not manifest")
	}
	if simMissing != 0 {
		t.Fatalf("the simulation admitted %d missing configurations", simMissing)
	}
	if simAdmitted == 0 {
		t.Fatalf("the simulation rejected everything — vacuous safety")
	}
}

func TestExtIsolationHolds(t *testing.T) {
	fig := ExtIsolation(quick())
	joined := strings.Join(fig.Notes, "\n")
	if !strings.Contains(joined, "ISOLATION HOLDS") {
		t.Fatalf("isolation violated:\n%s", joined)
	}
	// Every tenant made progress.
	for _, p := range fig.Series[0].Points {
		if p.Y <= 0 {
			t.Fatalf("tenant %v made no progress", p.X)
		}
	}
}
