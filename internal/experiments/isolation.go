package experiments

import (
	"fmt"

	"hrtsched/internal/bsp"
	"hrtsched/internal/core"
	"hrtsched/internal/legion"
	"hrtsched/internal/managed"
	"hrtsched/internal/omp"
	"hrtsched/internal/stats"
)

// ExtIsolation is the fusion capstone: one node time-shares a hard
// real-time BSP gang, an OpenMP-like team, a Legion-like task pool, a
// managed tenant with sporadic GC, background batch threads balanced by
// work stealing, and a device interrupt stream — and every hard real-time
// thread still meets every deadline while each tenant makes progress.
// This is the paper's introduction realized: predictable timing as the
// basis for performance isolation under time-sharing (Section 1).
func ExtIsolation(o Options) *stats.Figure {
	ncpus := 17
	runNs := int64(120_000_000)
	if o.Scale == Full {
		ncpus = 33
		runNs = 400_000_000
	}
	k := bootPhi(ncpus, o.Seed, func(c *core.Config) { c.InterruptThread = true })
	m := k.M
	m.IRQ.AddDevice("nic", 260_000, 9_000) // ~5 interrupts/ms at CPU 0

	// Tenant 1: a gang-scheduled BSP group at 40% utilization on half the
	// interrupt-free CPUs, no barriers.
	half := (ncpus - 1) / 2
	p := bsp.FineGrain(half, 1<<30) // effectively endless; we stop the clock
	p.FirstCPU = 1
	p.UseBarrier = false
	p.Constraints = core.PeriodicConstraints(0, 200_000, 80_000)
	p.PhaseCorrection = true
	bench := bsp.New(k, p)
	bench.Start()

	// Tenant 2: an OpenMP-like team at 30% utilization on the other half.
	team := omp.MustNewTeam(k, omp.Config{
		Workers: ncpus - 1 - half, FirstCPU: 1 + half,
		Constraints: core.PeriodicConstraints(0, 200_000, 60_000),
		Sync:        omp.SyncBarrier,
	})
	for r := 0; r < 1<<20; r++ {
		if r == 64 {
			break
		}
		team.Submit(omp.Region{Iterations: 256, CostPerIter: 900})
	}

	// Tenant 3: a Legion-like task pool in the leftover aperiodic time of
	// the BSP half.
	rt := legion.MustNew(k, legion.Config{Workers: 4, FirstCPU: 1})
	reg := rt.NewRegion("state", 16)
	const legionTasks = 40
	for i := 0; i < legionTasks; i++ {
		rt.Submit(legion.Task{Name: "t", CostCycles: 400_000,
			Reqs: []legion.Req{{Region: reg, Mode: legion.ReadWrite}},
			Fn:   func() { reg.Data[0]++ }})
	}

	// Tenant 4: a managed tenant with sporadic GC on the OMP half.
	ten := managed.MustNew(k, managed.Config{
		CPU: 1 + half, Strategy: managed.SporadicGC,
		NurseryBytes: 64 << 10, AllocBytes: 1 << 10, AllocCostCycles: 4_000,
		GCCycles: 130_000, GCDeadlineNs: 2_000_000, GCPriority: 60,
	})

	// Background batch, spawned in one pile; stealing spreads it.
	batchDone := 0
	for i := 0; i < 12; i++ {
		th := k.SpawnStealable(fmt.Sprintf("batch%d", i), 1,
			core.Seq(core.Compute{Cycles: 3_000_000}))
		th.OnExit = func(*core.Thread) { batchDone++ }
	}

	k.RunNs(runNs)

	fig := stats.NewFigure("ext-isolation",
		"Whole-node fusion: RT gang + OMP team + Legion pool + managed tenant + batch + device IRQs",
		"tenant (0=bsp 1=omp 2=legion 3=managed 4=batch)", "progress")

	var bspMisses, bspArrivals, bspSupply int64
	for _, th := range bench.Threads() {
		bspMisses += th.Misses
		bspArrivals += th.Arrivals
		bspSupply += th.SupplyCycles
	}
	var ompMisses int64
	for _, th := range team.Group().Members() {
		ompMisses += th.Misses
	}
	s := fig.AddSeries("progress")
	s.Add(0, float64(bspSupply))
	s.Add(1, float64(team.Completed()))
	s.Add(2, float64(rt.Done()))
	s.Add(3, float64(ten.Collections))
	s.Add(4, float64(batchDone))

	fig.Note("hard real-time: BSP gang %d arrivals, %d misses; OMP gang %d misses",
		bspArrivals, bspMisses, ompMisses)
	fig.Note("legion tasks %d/%d; managed collections %d (worst pause %.2f ms, %d admission fallbacks); batch %d/12",
		rt.Done(), legionTasks, ten.Collections, float64(ten.WorstPause)/1e6, ten.GCRejected(), batchDone)
	var steals, devIRQs int64
	for _, ls := range k.Locals {
		steals += ls.Stats.Steals
		devIRQs += ls.Stats.DeviceIRQs
	}
	fig.Note("work stealing migrations %d; device interrupts handled %d (CPU 0 partition)", steals, devIRQs)
	if bspMisses == 0 && ompMisses == 0 {
		fig.Note("ISOLATION HOLDS: every hard real-time deadline met while all five tenants progressed")
	} else {
		fig.Note("WARNING: isolation violated")
	}
	return fig
}
