package experiments

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/group"
	"hrtsched/internal/stats"
)

// groupAdmitRun runs one group admission of n threads on a full-size Phi
// and returns the group's per-step metrics.
func groupAdmitRun(n int, seed uint64, correct bool, cons core.Constraints) (*group.Group, *core.Kernel, []*core.Thread) {
	ncpus := n + 1 // CPU 0 stays the interrupt-laden partition
	k := bootPhi(ncpus, seed, nil)
	g := group.MustNew(k, "bench", n, group.DefaultCosts())
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons,
		group.AdmitOptions{PhaseCorrection: correct}, nil))
	body := spinProgram(20_000)
	ths := make([]*core.Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = k.Spawn(fmt.Sprintf("g%d", i), 1+i, core.FlowThen(flow, body))
	}
	k.RunUntil(func() bool {
		s := g.Metrics["barrier"]
		return s != nil && s.N() == int64(n)
	}, 1<<26)
	return g, k, ths
}

// Fig10 reproduces Figure 10: absolute group admission control costs on
// the Phi as a function of group size — (a) group join, (b) leader
// election, (c) distributed admission control vs the flat local admission,
// (d) final barrier / phase correction. All grow linearly with the group
// (simple coordination schemes); the total at 255 threads is on the order
// of 10^6-10^7 cycles, dominated by admission and the final barrier.
func Fig10(o Options) *stats.Figure {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 192, 255}
	if o.Scale == Quick {
		sizes = []int{2, 4, 8, 16, 32}
	}
	cons := core.PeriodicConstraints(0, 1_000_000, 200_000)

	type row struct {
		metrics map[string]*stats.Summary
	}
	rows := make([]row, len(sizes))
	parallelMap(len(sizes), o.workers(), func(i int) {
		g, _, _ := groupAdmitRun(sizes[i], o.comboSeed(i), false, cons)
		rows[i] = row{metrics: g.Metrics}
	})

	fig := stats.NewFigure("fig10",
		"Absolute group admission control costs on Phi vs number of threads",
		"number of threads", "overhead in cycle count")
	steps := []struct{ key, label string }{
		{"join", "group join"},
		{"election", "leader election"},
		{"changecons", "group change constraints"},
		{"barrier", "barrier/phase correction"},
	}
	for _, st := range steps {
		avg := fig.AddSeries(st.label + " (avg)")
		min := fig.AddSeries(st.label + " (min)")
		max := fig.AddSeries(st.label + " (max)")
		for i, n := range sizes {
			m := rows[i].metrics[st.key]
			if m == nil {
				continue
			}
			avg.Add(float64(n), m.Mean())
			min.Add(float64(n), m.Min())
			max.Add(float64(n), m.Max())
		}
	}
	// The hard floor: local change constraints is constant in group size.
	local := fig.AddSeries("local change constraints")
	admitCost := float64(bootCostProbe())
	for _, n := range sizes {
		local.Add(float64(n), admitCost)
	}
	if m := rows[len(rows)-1].metrics["changecons"]; m != nil {
		bar := rows[len(rows)-1].metrics["barrier"]
		total := m.Mean()
		if bar != nil {
			total += bar.Mean()
		}
		fig.Note("at %d threads: admission+barrier ~ %.2g cycles (paper @255: ~8e6 cycles / 6.2 ms)",
			sizes[len(sizes)-1], total)
	}
	fig.Note("per-step cost grows linearly with group size (simple coordination schemes)")
	return fig
}

// bootCostProbe returns the platform's local admission cost in cycles.
func bootCostProbe() int64 {
	k := bootPhi(1, 1, nil)
	return k.AdmitCostCycles
}
