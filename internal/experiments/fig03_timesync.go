package experiments

import (
	"hrtsched/internal/core"
	"hrtsched/internal/stats"
)

// Fig3 reproduces Figure 3: the histogram of post-calibration cycle-counter
// offsets between each CPU and CPU 0 on the 256-CPU Phi. The paper keeps
// all counters within about 1,000 cycles.
func Fig3(o Options) *stats.Figure {
	ncpus := 256
	if o.Scale == Quick {
		ncpus = 256 // calibration is cheap; always run at paper scale
	}
	k := bootPhi(ncpus, o.Seed, nil)
	fig := stats.NewFigure("fig3",
		"Cross-CPU cycle counter synchronization on Phi",
		"difference in cycle count vs CPU 0", "number of CPUs")

	h := stats.NewHistogram(0, 1100, 11)
	var sum stats.Summary
	for i := 1; i < ncpus; i++ {
		r := float64(k.Calib.Residual[i])
		h.Add(r)
		sum.Add(r)
	}
	s := fig.AddSeries("post-calibration offsets")
	for i, c := range h.Buckets {
		s.Add(h.BucketLo(i), float64(c))
	}
	if h.Over > 0 {
		s.Add(h.Hi, float64(h.Over))
	}
	fig.Note("mean residual %.0f cycles, max %d cycles (paper: all within ~1000)",
		sum.Mean(), k.Calib.MaxResidual())
	fig.Note("calibration used %d handshake rounds per CPU", k.Calib.Rounds)
	_ = core.Aperiodic
	return fig
}
