// Package experiments contains one harness per table/figure of the paper's
// evaluation (Figures 3-16) plus the ablation studies called out in
// DESIGN.md. Each harness builds the workload, runs it on the simulated
// platform, and returns a stats.Figure whose rows/series mirror what the
// paper reports. Absolute values are simulated-platform cycles/seconds;
// the reproduction target is the shape (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/stats"
)

// Scale selects experiment size.
type Scale int

const (
	// Quick runs a reduced parameter grid sized for tests and CI. It
	// exercises the identical code paths as Full.
	Quick Scale = iota
	// Full runs at (or near) the paper's scale: 255-thread groups on the
	// 256-CPU Phi, full parameter sweeps.
	Full
)

// Options configures a harness run.
type Options struct {
	Scale   Scale
	Seed    uint64
	Workers int // parallel independent simulations; 0 = GOMAXPROCS
}

// DefaultOptions returns Quick options with a fixed seed.
func DefaultOptions() Options { return Options{Scale: Quick, Seed: 0x5eed} }

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// comboSeed derives a per-combination seed so results are independent of
// worker scheduling.
func (o Options) comboSeed(i int) uint64 {
	x := o.Seed + 0x9e3779b97f4a7c15*uint64(i+1)
	x ^= x >> 29
	return x*0xbf58476d1ce4e5b9 + 1
}

// parallelMap runs fn(i) for i in [0, n) on a bounded worker pool. Each
// call must be independent (its own machine/kernel).
func parallelMap(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// bootPhi boots a Phi kernel with ncpus CPUs.
func bootPhi(ncpus int, seed uint64, mutate func(*core.Config)) *core.Kernel {
	spec := machine.PhiKNL()
	if ncpus > 0 {
		spec = spec.Scaled(ncpus)
	}
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Boot(m, cfg)
}

// bootR415 boots an R415 kernel.
func bootR415(seed uint64, mutate func(*core.Config)) *core.Kernel {
	spec := machine.R415()
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Boot(m, cfg)
}

// spinProgram returns a CPU-bound program in fixed-size chunks.
func spinProgram(chunk int64) core.Program {
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		return core.Compute{Cycles: chunk}
	})
}

// periodicSpin admits the thread with the given periodic constraints and
// then spins forever.
func periodicSpin(cons core.Constraints, chunk int64) core.Program {
	admitted := false
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: cons}
		}
		return core.Compute{Cycles: chunk}
	})
}

// missRun measures miss behaviour of one periodic thread with the given
// constraints on a single-CPU Phi or R415 with admission disabled, over
// runNs of simulated time.
type missResult struct {
	Arrivals   int64
	Misses     int64
	MissNsMean float64
	MissNsStd  float64
}

func missRun(phi bool, seed uint64, periodNs, sliceNs, runNs int64) missResult {
	var k *core.Kernel
	off := func(c *core.Config) { c.Admit = core.AdmitNone }
	if phi {
		k = bootPhi(1, seed, off)
	} else {
		spec := machine.R415().Scaled(1)
		m := machine.New(spec, seed)
		cfg := core.DefaultConfig(spec)
		off(&cfg)
		k = core.Boot(m, cfg)
	}
	th := k.Spawn("rt", 0, periodicSpin(
		core.PeriodicConstraints(0, periodNs, sliceNs), 50_000))
	k.RunNs(runNs)
	return missResult{
		Arrivals:   th.Arrivals,
		Misses:     th.Misses,
		MissNsMean: th.MissTimeNs.Mean(),
		MissNsStd:  th.MissTimeNs.Std(),
	}
}

// Registry maps experiment ids to harness functions.
var Registry = map[string]func(Options) *stats.Figure{
	"fig3":  Fig3,
	"fig4":  Fig4,
	"fig5":  Fig5,
	"fig6":  Fig6,
	"fig7":  Fig7,
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	"fig16": Fig16,

	"ext-cyclic":    ExtCyclic,
	"ext-omp":       ExtOMP,
	"ext-isolation": ExtIsolation,

	"ablation-eager":    AblationEagerVsLazy,
	"ablation-phase":    AblationPhaseCorrection,
	"ablation-rm":       AblationRMvsEDF,
	"ablation-steering": AblationInterruptSteering,
	"ablation-admitsim": AblationAdmitSim,
	"ablation-steal":    AblationStealPolicy,

	"fault-smi-storm":     FaultSMIStorm,
	"fault-irq-storm":     FaultIRQStorm,
	"fault-drift":         FaultDrift,
	"fault-overload-shed": FaultOverloadShed,
}

// Run dispatches an experiment by id.
func Run(id string, o Options) (*stats.Figure, error) {
	fn, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return fn(o), nil
}

// IDs returns the registered experiment ids in a stable order.
func IDs() []string {
	ids := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"ablation-eager", "ablation-phase", "ablation-rm",
		"ablation-steering", "ablation-steal", "ablation-admitsim",
		"ext-cyclic", "ext-omp", "ext-isolation",
		"fault-smi-storm", "fault-irq-storm", "fault-drift",
		"fault-overload-shed",
	}
	return ids
}
