package experiments

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// AblationEagerVsLazy evaluates the design choice of Section 3.6: eager,
// work-conserving EDF versus the classic latest-possible-switch (lazy)
// EDF, under SMI "missing time" injection. Eager scheduling starts early
// to end early, so an SMI landing near the deadline is far less likely to
// push completion past it.
func AblationEagerVsLazy(o Options) *stats.Figure {
	runNs := int64(400_000_000)
	if o.Scale == Quick {
		runNs = 80_000_000
	}
	smiGaps := []int64{0, 20_000_000, 10_000_000, 5_000_000, 2_000_000, 1_000_000}
	fig := stats.NewFigure("ablation-eager",
		"Eager vs lazy EDF under SMI injection (periodic 100us/60us on Phi)",
		"mean SMI gap (Mcycles; 0 = no SMIs)", "miss rate (%)")

	run := func(mode core.EDFMode, gap int64, seed uint64) float64 {
		spec := machine.PhiKNL().Scaled(1)
		spec.MeanSMIGapCycles = gap
		// SMIs shorter than the period's slack (40us): an eager scheduler,
		// having started the slice at arrival, absorbs them entirely; a
		// lazy scheduler that deferred to the latest start cannot.
		spec.SMIDurationCycles = 33_000 // ~25us
		spec.SMIDurationJitter = 6_000
		m := machine.New(spec, seed)
		cfg := core.DefaultConfig(spec)
		cfg.Mode = mode
		k := core.Boot(m, cfg)
		th := k.Spawn("rt", 0, periodicSpin(
			core.PeriodicConstraints(0, 100_000, 60_000), 20_000))
		k.RunNs(runNs)
		if th.Arrivals == 0 {
			return 0
		}
		return 100 * float64(th.Misses) / float64(th.Arrivals)
	}

	type cell struct{ eager, lazy float64 }
	rows := make([]cell, len(smiGaps))
	parallelMap(len(smiGaps), o.workers(), func(i int) {
		rows[i] = cell{
			eager: run(core.EagerEDF, smiGaps[i], o.comboSeed(2*i)),
			lazy:  run(core.LazyEDF, smiGaps[i], o.comboSeed(2*i+1)),
		}
	})
	eager := fig.AddSeries("eager EDF")
	lazy := fig.AddSeries("lazy EDF")
	for i, g := range smiGaps {
		x := float64(g) / 1e6
		eager.Add(x, rows[i].eager)
		lazy.Add(x, rows[i].lazy)
	}
	worst := rows[len(rows)-1]
	fig.Note("at the highest SMI rate: eager %.2f%% vs lazy %.2f%% misses", worst.eager, worst.lazy)
	return fig
}

// AblationPhaseCorrection quantifies Section 4.4: the barrier-departure
// bias in group schedules with and without the phase correction
// phi_i = phi + (n-i)*delta.
func AblationPhaseCorrection(o Options) *stats.Figure {
	sizes := []int{8, 32, 64}
	inv := 400
	if o.Scale == Quick {
		sizes = []int{4, 8}
		inv = 200
	}
	fig := stats.NewFigure("ablation-phase",
		"Group schedule bias with and without phase correction",
		"group size", "mean max-difference across CPUs (cycles)")
	type cell struct{ raw, corrected float64 }
	rows := make([]cell, len(sizes))
	parallelMap(len(sizes), o.workers(), func(i int) {
		mean := func(vs []float64) float64 {
			var s stats.Summary
			for _, v := range vs {
				s.Add(v)
			}
			return s.Mean()
		}
		rows[i] = cell{
			raw:       mean(groupSyncRun(sizes[i], o.comboSeed(2*i), false, inv)),
			corrected: mean(groupSyncRun(sizes[i], o.comboSeed(2*i+1), true, inv)),
		}
	})
	raw := fig.AddSeries("uncorrected")
	cor := fig.AddSeries("phase corrected")
	for i, n := range sizes {
		raw.Add(float64(n), rows[i].raw)
		cor.Add(float64(n), rows[i].corrected)
	}
	last := rows[len(rows)-1]
	fig.Note("at %d threads: %.0f cycles uncorrected vs %.0f corrected", sizes[len(sizes)-1], last.raw, last.corrected)
	return fig
}

// AblationRMvsEDF compares the classic admission tests of Section 3.2:
// how many identical periodic threads each policy admits onto one CPU
// before rejecting, as a function of per-thread utilization.
func AblationRMvsEDF(o Options) *stats.Figure {
	fig := stats.NewFigure("ablation-rm",
		"RM vs EDF admission: threads admitted per CPU vs per-thread utilization",
		"per-thread utilization (%)", "threads admitted")
	utils := []int64{5, 10, 15, 20, 25, 30, 40}
	count := func(policy core.AdmitPolicy, u int64, seed uint64) float64 {
		k := bootPhi(1, seed, func(c *core.Config) { c.Admit = policy })
		admitted := 0
		done := 0
		// 14 requests: enough to hit both bounds' rejection points without
		// the classic bound's overhead-blindness saturating the CPU at the
		// smallest utilizations (see ablation-admitsim for that story).
		n := 14
		for i := 0; i < n; i++ {
			cons := core.PeriodicConstraints(0, 1_000_000, 1_000_000*u/100)
			local, reported := false, false
			k.Spawn(fmt.Sprintf("p%d", i), 0, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
				if !local {
					local = true
					return core.ChangeConstraints{C: cons}
				}
				if !reported {
					reported = true
					done++
					if tc.AdmitOK {
						admitted++
					}
				}
				if tc.AdmitOK {
					// Coarse chunks: the spin only needs to hold the
					// reservation, and fine chunks would inflate the event
					// count across the long round-robin admission tail.
					return core.Compute{Cycles: 2_000_000}
				}
				return core.Exit{}
			}))
		}
		k.RunUntil(func() bool { return done == n }, 1<<27)
		return float64(admitted)
	}
	edf := fig.AddSeries("EDF (utilization bound)")
	rm := fig.AddSeries("RM (Liu & Layland bound)")
	type cell struct{ e, r float64 }
	rows := make([]cell, len(utils))
	parallelMap(len(utils), o.workers(), func(i int) {
		rows[i] = cell{
			e: count(core.AdmitEDF, utils[i], o.comboSeed(2*i)),
			r: count(core.AdmitRM, utils[i], o.comboSeed(2*i+1)),
		}
	})
	for i, u := range utils {
		edf.Add(float64(u), rows[i].e)
		rm.Add(float64(u), rows[i].r)
	}
	fig.Note("EDF admits up to the 99%% utilization limit; RM stops earlier (n(2^(1/n)-1) -> ln 2)")
	return fig
}

// AblationInterruptSteering evaluates Section 3.5: a real-time thread
// under external device interrupt load in three configurations — on the
// interrupt-laden CPU with APIC priority filtering disabled (interrupts
// land on the thread), on the laden CPU with filtering enabled (interrupts
// steered away by processor priority), and on an interrupt-free CPU
// (steered away by partitioning).
func AblationInterruptSteering(o Options) *stats.Figure {
	runNs := int64(200_000_000)
	if o.Scale == Quick {
		runNs = 50_000_000
	}
	fig := stats.NewFigure("ablation-steering",
		"Interrupt steering: RT thread vs device interrupts (50us/35us on Phi)",
		"device interrupt rate (per ms)", "miss rate (%)")
	rates := []int64{1, 5, 10, 20, 50}
	run := func(freeCPU, filtering bool, perMs int64, seed uint64) float64 {
		spec := machine.PhiKNL().Scaled(2)
		m := machine.New(spec, seed)
		cfg := core.DefaultConfig(spec)
		cfg.PriorityFiltering = filtering
		k := core.Boot(m, cfg)
		gap := int64(1_300_000) / perMs // cycles between interrupts
		m.IRQ.AddDevice("nic", gap, 9_000)
		cpu := 0
		if freeCPU {
			cpu = 1
		}
		th := k.Spawn("rt", cpu, periodicSpin(
			core.PeriodicConstraints(0, 50_000, 35_000), 20_000))
		k.RunNs(runNs)
		if th.Arrivals == 0 {
			return 0
		}
		return 100 * float64(th.Misses) / float64(th.Arrivals)
	}
	type cell struct{ unfiltered, filtered, free float64 }
	rows := make([]cell, len(rates))
	parallelMap(len(rates), o.workers(), func(i int) {
		rows[i] = cell{
			unfiltered: run(false, false, rates[i], o.comboSeed(3*i)),
			filtered:   run(false, true, rates[i], o.comboSeed(3*i+1)),
			free:       run(true, true, rates[i], o.comboSeed(3*i+2)),
		}
	})
	unf := fig.AddSeries("laden CPU, no priority filtering")
	fil := fig.AddSeries("laden CPU, priority filtering")
	free := fig.AddSeries("interrupt-free CPU")
	for i, r := range rates {
		unf.Add(float64(r), rows[i].unfiltered)
		fil.Add(float64(r), rows[i].filtered)
		free.Add(float64(r), rows[i].free)
	}
	last := rows[len(rows)-1]
	fig.Note("at the highest rate: %.1f%% misses unfiltered vs %.1f%% filtered vs %.1f%% interrupt-free",
		last.unfiltered, last.filtered, last.free)
	fig.Note("both Section 3.5 mechanisms (priority filtering and partitioning) shield RT threads")
	return fig
}

// AblationStealPolicy compares work-stealing victim selection policies
// (Section 3.4): power-of-two-choices vs linear scan, by makespan of an
// imbalanced batch of aperiodic threads.
func AblationStealPolicy(o Options) *stats.Figure {
	ncpus := 16
	jobs := 64
	if o.Scale == Quick {
		ncpus = 8
		jobs = 24
	}
	fig := stats.NewFigure("ablation-steal",
		"Work stealing policy: makespan of an imbalanced aperiodic batch",
		"policy (0=p2c 1=linear 2=off)", "makespan (ms)")
	run := func(p core.StealPolicy, seed uint64) (float64, int64) {
		k := bootPhi(ncpus, seed, func(c *core.Config) { c.Steal = p })
		done := 0
		for i := 0; i < jobs; i++ {
			// All jobs start piled on CPU 0: only stealing spreads them.
			th := k.SpawnStealable(fmt.Sprintf("j%d", i), 0,
				core.Seq(core.Compute{Cycles: 2_000_000}))
			th.OnExit = func(*core.Thread) { done++ }
		}
		k.RunUntil(func() bool { return done == jobs }, 1<<26)
		var steals int64
		for _, ls := range k.Locals {
			steals += ls.Stats.Steals
		}
		return float64(k.NowNs()) / 1e6, steals
	}
	s := fig.AddSeries("makespan")
	for i, p := range []core.StealPolicy{core.StealPowerOfTwo, core.StealLinear, core.StealOff} {
		ms, steals := run(p, o.comboSeed(i))
		s.Add(float64(i), ms)
		fig.Note("policy %d: makespan %.2f ms, %d steals", i, ms, steals)
	}
	_ = sim.Time(0)
	return fig
}

// AblationAdmitSim compares the classic utilization-bound admission test
// with the hyperperiod-simulation prototype of Section 3.2 on fine-grain
// periodic requests. The bound ignores scheduler overhead and admits
// requests that then miss; the simulation charges the overhead and only
// admits what the platform can actually schedule.
func AblationAdmitSim(o Options) *stats.Figure {
	runNs := int64(100_000_000)
	if o.Scale == Quick {
		runNs = 30_000_000
	}
	fig := stats.NewFigure("ablation-admitsim",
		"Utilization-bound vs hyperperiod-simulation admission (Phi, 70% slice)",
		"period (us)", "outcome (-1=rejected, else miss rate %)")
	periodsUs := []int64{20, 25, 30, 40, 50, 100, 500}

	run := func(policy core.AdmitPolicy, periodUs int64, seed uint64) (admitted bool, missPct float64) {
		k := bootPhi(1, seed, func(c *core.Config) { c.Admit = policy })
		periodNs := periodUs * 1000
		th := k.Spawn("rt", 0, periodicSpin(
			core.PeriodicConstraints(0, periodNs, periodNs*7/10), 20_000))
		k.RunNs(runNs)
		if !th.IsRT() {
			return false, 0
		}
		if th.Arrivals == 0 {
			return true, 0
		}
		return true, 100 * float64(th.Misses) / float64(th.Arrivals)
	}

	type cell struct {
		boundAdmit bool
		boundMiss  float64
		simAdmit   bool
		simMiss    float64
	}
	rows := make([]cell, len(periodsUs))
	parallelMap(len(periodsUs), o.workers(), func(i int) {
		var c cell
		c.boundAdmit, c.boundMiss = run(core.AdmitEDF, periodsUs[i], o.comboSeed(2*i))
		c.simAdmit, c.simMiss = run(core.AdmitSim, periodsUs[i], o.comboSeed(2*i+1))
		rows[i] = c
	})
	bound := fig.AddSeries("utilization bound")
	sim := fig.AddSeries("hyperperiod simulation")
	badBound, badSim := 0, 0
	for i, p := range periodsUs {
		bv, sv := -1.0, -1.0 // -1 marks rejected
		if rows[i].boundAdmit {
			bv = rows[i].boundMiss
			if bv > 0 {
				badBound++
			}
		}
		if rows[i].simAdmit {
			sv = rows[i].simMiss
			if sv > 0 {
				badSim++
			}
		}
		bound.Add(float64(p), bv)
		sim.Add(float64(p), sv)
	}
	fig.Note("admitted-but-missing configurations: bound %d, simulation %d", badBound, badSim)
	fig.Note("the simulation never admits a set that misses; where it is conservative (near the edge) that is the hard-real-time-correct verdict under worst-case jitter")
	return fig
}
