package experiments

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/group"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// groupSyncRun admits a group of n periodic threads (phase correction
// configurable), records per-CPU context-switch-in times from the OnSwitch
// hook, and returns, for each scheduler invocation index, the max-min
// spread in cycles across the group.
func groupSyncRun(n int, seed uint64, correct bool, invocations int) []float64 {
	k := bootPhi(n+1, seed, nil)
	cons := core.PeriodicConstraints(0, 100_000, 50_000)
	g := group.MustNew(k, "sync", n, group.DefaultCosts())
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons,
		group.AdmitOptions{PhaseCorrection: correct}, nil))
	members := make(map[*core.Thread]int, n)
	times := make([][]int64, n)
	for i := 0; i < n; i++ {
		th := k.Spawn(fmt.Sprintf("s%d", i), 1+i, core.FlowThen(flow, spinProgram(20_000)))
		members[th] = i
	}
	k.OnSwitch = func(cpu int, t *core.Thread, nowNs int64, wall sim.Time) {
		i, ok := members[t]
		if !ok || t.Constraints().Type != core.Periodic {
			return
		}
		if len(times[i]) < invocations+8 {
			times[i] = append(times[i], int64(sim.NanosToCycles(nowNs, k.M.Spec.FreqHz)))
		}
	}
	k.RunUntil(func() bool {
		for i := range times {
			if len(times[i]) < invocations+8 {
				return false
			}
		}
		return true
	}, 1<<27)

	// Skip the first few invocations (admission settling), then compute the
	// per-index spread.
	const skip = 4
	out := make([]float64, 0, invocations)
	for idx := skip; idx < invocations+skip; idx++ {
		var min, max int64
		for i := range times {
			v := times[i][idx]
			if i == 0 || v < min {
				min = v
			}
			if i == 0 || v > max {
				max = v
			}
		}
		out = append(out, float64(max-min))
	}
	return out
}

// Fig11 reproduces Figure 11: cross-CPU scheduler synchronization in an
// 8-thread group with a periodic constraint on the Phi, phase correction
// disabled. Context-switch events across the local schedulers stay within
// a few thousand cycles; the average bias is correctable, the remaining
// variation (~4000 cycles / ~3 us) is not.
func Fig11(o Options) *stats.Figure {
	inv := 10000
	if o.Scale == Quick {
		inv = 600
	}
	spreads := groupSyncRun(8, o.Seed, false, inv)
	fig := stats.NewFigure("fig11",
		"Cross-CPU scheduler synchronization, 8-thread periodic group on Phi",
		"scheduler invocation index", "max difference in cycle count")
	s := fig.AddSeries("8 threads")
	stride := len(spreads)/2000 + 1
	var sum stats.Summary
	for i, v := range spreads {
		sum.Add(v)
		if i%stride == 0 {
			s.Add(float64(i), v)
		}
	}
	fig.Note("spread: mean %.0f cycles, std %.0f, min %.0f, max %.0f (paper: ~5000 bias, <=4000 variation)",
		sum.Mean(), sum.Std(), sum.Min(), sum.Max())
	return fig
}

// Fig12 reproduces Figure 12: the same measurement for groups of 8, 64,
// 128 and 255 threads. The average difference (bias) grows with group size
// — and is removable via phase correction — while the uncorrectable
// variation stays largely independent of group size.
func Fig12(o Options) *stats.Figure {
	sizes := []int{8, 64, 128, 255}
	inv := 1000
	if o.Scale == Quick {
		sizes = []int{4, 8, 16}
		inv = 300
	}
	fig := stats.NewFigure("fig12",
		"Cross-CPU scheduler synchronization vs group size (periodic constraints)",
		"scheduler invocation index", "max difference in cycle count")
	type res struct {
		spreads []float64
	}
	rows := make([]res, len(sizes))
	parallelMap(len(sizes), o.workers(), func(i int) {
		rows[i] = res{spreads: groupSyncRun(sizes[i], o.comboSeed(i), false, inv)}
	})
	for i, n := range sizes {
		s := fig.AddSeries(fmt.Sprintf("%d threads", n))
		var sum stats.Summary
		stride := len(rows[i].spreads)/500 + 1
		for j, v := range rows[i].spreads {
			sum.Add(v)
			if j%stride == 0 {
				s.Add(float64(j), v)
			}
		}
		fig.Note("%d threads: mean spread %.0f cycles, std %.0f (bias grows with n, variation does not)",
			n, sum.Mean(), sum.Std())
	}
	return fig
}
