package plan

import (
	"fmt"
	"sort"
	"sync"
)

// Analysis is the pluggable admission-analysis contract: everything the
// serving layer needs from a schedulability theory, behind one interface.
// An implementation answers stateless verdicts (Analyze/AnalyzeGang),
// what-if capacity probes, and manufactures stateful incremental engines
// for per-node delta admission. Implementations must be deterministic and
// side-effect-free: equal (spec, canonical set) inputs produce identical
// verdicts, and an Engine's committed verdict must stay equivalent (see
// VerdictsEquivalent) to a from-scratch Analyze of its committed set —
// the planverify build enforces exactly that.
type Analysis interface {
	// Name is the registry name of the analysis (stable, wire-visible).
	Name() string
	// Spec returns the platform spec verdicts are computed under.
	Spec() Spec
	// Analyze returns the admission verdict for one task set.
	Analyze(set TaskSet) Verdict
	// AnalyzeGang answers all-or-nothing group admission: the verdict of
	// existing and gang combined.
	AnalyzeGang(existing, gang TaskSet) Verdict
	// AnalyzeBatch answers many sets in one pass, sharing analysis work
	// across canonically-equal sets; out[i] must be bit-identical to
	// Analyze of sets[i]'s canonical ordering.
	AnalyzeBatch(sets []TaskSet) []Verdict
	// Capacity produces the what-if headroom report for a CPU running set.
	Capacity(set TaskSet, probePeriodNs int64) CapacityReport
	// NewEngine creates an empty incremental engine whose verdicts agree
	// with Analyze on every committed set.
	NewEngine() Engine
}

// Engine is the stateful half of an Analysis: a per-CPU (or per-node)
// admission engine that commits admitted sets and answers single-delta
// questions without re-analyzing from scratch. *Incremental is the
// default implementation; the interface is exactly its method set, so
// any committed-set invariant documented there binds every plug-in.
// Engines are not safe for concurrent use.
type Engine interface {
	// Spec returns the platform spec the engine analyzes under.
	Spec() Spec
	// Len returns the number of committed tasks.
	Len() int
	// Tasks returns a copy of the committed task set in admission order.
	Tasks() TaskSet
	// Hyperperiod returns the committed set's hyperperiod (0 when empty).
	Hyperperiod() int64
	// Utilization returns the committed set's summed utilization.
	Utilization() float64
	// Verdict returns the verdict of the committed set.
	Verdict() Verdict
	// Stats reports how many operations took each decision path.
	Stats() IncrementalStats
	// Reset empties the engine.
	Reset()
	// Restore replaces the committed set wholesale, committing regardless
	// of the verdict (the crash-recovery path).
	Restore(tasks TaskSet) Verdict
	// Add evaluates the committed set plus one task, committing on admit.
	Add(t Task) Verdict
	// TryGang evaluates the committed set plus a gang, all-or-nothing.
	TryGang(gang TaskSet) Verdict
	// EvaluateGang answers the committed set plus a gang without
	// committing anything — the what-if half of TryGang.
	EvaluateGang(gang TaskSet) Verdict
	// TryGangBatch evaluates many candidate gangs against the committed
	// set in one pass, committing nothing: out[i] = EvaluateGang(gangs[i]).
	TryGangBatch(gangs []TaskSet) []Verdict
	// Remove evicts one committed task matching t; false when unmatched.
	Remove(t Task) (Verdict, bool)
	// RemoveGang evicts one committed instance of every gang member,
	// all-or-nothing; false (and no change) when any member is unmatched.
	RemoveGang(gang TaskSet) (Verdict, bool)
}

// Compile-time proof that the incumbent implementation satisfies the
// interface it was refactored behind.
var _ Engine = (*Incremental)(nil)

// DefaultAnalysisName names the incumbent analysis: the closed-form EDF
// utilization bound plus the overhead-charging hyperperiod simulation.
const DefaultAnalysisName = "edf-hyperperiod"

// Factory builds an Analysis for a spec.
type Factory func(spec Spec) (Analysis, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterAnalysis adds a named analysis factory to the registry.
// Registration normally happens from init; duplicate names panic because
// two theories answering under one name is a wiring bug, not a runtime
// condition.
func RegisterAnalysis(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("plan: RegisterAnalysis with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("plan: analysis %q registered twice", name))
	}
	registry[name] = f
}

// NewAnalysis builds the named analysis for spec, or an error naming the
// registered alternatives.
func NewAnalysis(name string, spec Spec) (Analysis, error) {
	registryMu.RLock()
	f := registry[name]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("plan: unknown analysis %q (have %v)", name, AnalysisNames())
	}
	return f(spec)
}

// AnalysisNames lists the registered analyses, sorted.
func AnalysisNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultEDF returns the default analysis for spec: the exact machinery
// the package-level Analyze/AnalyzeGang/Capacity/NewIncremental functions
// run, behind the interface. Its verdicts are those functions' verdicts,
// bit for bit.
func DefaultEDF(spec Spec) Analysis { return edfAnalysis{spec: spec} }

// edfAnalysis adapts the package-level EDF machinery to the Analysis
// interface. It holds no state beyond the spec: every method delegates to
// the same free functions callers used before the refactor, which is what
// the planverify bit-identity assertions lean on.
type edfAnalysis struct {
	spec Spec
}

func (a edfAnalysis) Name() string { return DefaultAnalysisName }

func (a edfAnalysis) Spec() Spec { return a.spec }

func (a edfAnalysis) Analyze(set TaskSet) Verdict { return Analyze(a.spec, set) }

func (a edfAnalysis) AnalyzeGang(existing, gang TaskSet) Verdict {
	return AnalyzeGang(a.spec, existing, gang)
}

func (a edfAnalysis) AnalyzeBatch(sets []TaskSet) []Verdict {
	return AnalyzeBatch(a.spec, sets)
}

func (a edfAnalysis) Capacity(set TaskSet, probePeriodNs int64) CapacityReport {
	return Capacity(a.spec, set, probePeriodNs)
}

func (a edfAnalysis) NewEngine() Engine { return NewIncremental(a.spec) }

func init() {
	RegisterAnalysis(DefaultAnalysisName, func(spec Spec) (Analysis, error) {
		return DefaultEDF(spec), nil
	})
}
