package plan

import (
	"reflect"
	"testing"

	"hrtsched/internal/sim"
)

func TestIncrementalMatchesAnalyzeScripted(t *testing.T) {
	inc := NewIncremental(specPhi79)

	check := func(got Verdict, set TaskSet, ctx string) {
		t.Helper()
		want := Analyze(specPhi79, set)
		if !VerdictsEquivalent(got, want) {
			t.Fatalf("%s: verdict diverges\nincremental %+v\nfull        %+v", ctx, got, want)
		}
	}

	// Empty engine answers like the empty analysis.
	check(inc.Verdict(), nil, "empty")

	// First add: full path (no retained state yet).
	a := Task{PeriodNs: 200_000, SliceNs: 40_000}
	check(inc.Add(a), TaskSet{a}, "first add")

	// A dividing period keeps the hyperperiod: answered by patching.
	b := Task{PeriodNs: 100_000, SliceNs: 20_000}
	check(inc.Add(b), TaskSet{a, b}, "dividing-period add")
	if inc.Stats().IncrementalOps == 0 {
		t.Fatalf("harmonic add did not take the incremental path: %+v", inc.Stats())
	}

	// A rejected add must leave the committed set unchanged.
	fat := Task{PeriodNs: 100_000, SliceNs: 90_000}
	v := inc.Add(fat)
	if v.Admit {
		t.Fatalf("over-capacity task admitted: %+v", v)
	}
	if got := inc.Tasks(); !reflect.DeepEqual(got, TaskSet{a, b}) {
		t.Fatalf("rejected add mutated state: %v", got)
	}
	check(inc.Verdict(), TaskSet{a, b}, "after rejected add")

	// LCM shift (300us does not divide the 200us hyperperiod): fallback.
	c := Task{PeriodNs: 300_000, SliceNs: 30_000}
	full := inc.Stats().FullAnalyses
	check(inc.Add(c), TaskSet{a, b, c}, "lcm-shift add")
	if inc.Stats().FullAnalyses == full {
		t.Fatalf("hyperperiod shift did not fall back to the full analysis")
	}
	if inc.Hyperperiod() != 600_000 {
		t.Fatalf("hyperperiod = %d, want 600000", inc.Hyperperiod())
	}

	// Remove with unchanged hyperperiod (100us contributes nothing to the
	// 600us LCM of 200us and 300us): incremental path.
	incOps := inc.Stats().IncrementalOps
	gone, found := inc.Remove(b)
	if !found {
		t.Fatalf("committed task not found for removal")
	}
	check(gone, TaskSet{a, c}, "remove")
	if inc.Stats().IncrementalOps == incOps {
		t.Fatalf("same-hyperperiod removal did not take the incremental path")
	}

	// Removing a task that is not committed is a found=false no-op.
	if _, found := inc.Remove(Task{PeriodNs: 7, SliceNs: 1}); found {
		t.Fatalf("removal of an uncommitted task reported found")
	}
	check(inc.Verdict(), TaskSet{a, c}, "after failed remove")

	// Gang add and all-or-nothing gang removal.
	gang := TaskSet{{PeriodNs: 200_000, SliceNs: 10_000}, {PeriodNs: 600_000, SliceNs: 30_000}}
	check(inc.TryGang(gang), TaskSet{a, c, gang[0], gang[1]}, "gang add")
	if _, found := inc.RemoveGang(TaskSet{gang[0], {PeriodNs: 1, SliceNs: 1}}); found {
		t.Fatalf("partial gang removal must be all-or-nothing")
	}
	check(inc.Verdict(), TaskSet{a, c, gang[0], gang[1]}, "after refused gang removal")
	rem, found := inc.RemoveGang(gang)
	if !found {
		t.Fatalf("committed gang not found for removal")
	}
	check(rem, TaskSet{a, c}, "gang removal")

	// Reset empties the engine.
	inc.Reset()
	if inc.Len() != 0 || inc.Hyperperiod() != 0 {
		t.Fatalf("Reset left state: %d tasks, hyper %d", inc.Len(), inc.Hyperperiod())
	}
	check(inc.Verdict(), nil, "after reset")
}

func TestIncrementalBadTaskAndConservativeReasons(t *testing.T) {
	inc := NewIncremental(specPhi79)
	seedTask := Task{PeriodNs: 100_000, SliceNs: 10_000}
	inc.Add(seedTask)

	cases := []struct {
		name   string
		task   Task
		reason Reason
	}{
		{"slice-over-period", Task{PeriodNs: 10_000, SliceNs: 20_000}, BadTask},
		{"zero-period", Task{PeriodNs: 0, SliceNs: 1}, BadTask},
		// Coprime-ish period: the ~10^11 ns hyperperiod fits under the
		// ceiling but needs ~10^6 release events, so the step budget
		// rejects conservatively.
		{"sim-steps", Task{PeriodNs: 999_983, SliceNs: 10}, SimSteps},
		// A period past the 2^40 ns hyperperiod ceiling rejects outright.
		{"overflow", Task{PeriodNs: 1 << 41, SliceNs: 1000}, HyperperiodOverflow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := inc.Add(tc.task)
			want := Analyze(specPhi79, TaskSet{seedTask, tc.task})
			if !VerdictsEquivalent(v, want) {
				t.Fatalf("verdict diverges\nincremental %+v\nfull        %+v", v, want)
			}
			if v.Admit || v.Reason != tc.reason {
				t.Fatalf("reason = %v (admit %v), want %v", v.Reason, v.Admit, tc.reason)
			}
			if inc.Len() != 1 {
				t.Fatalf("rejected add mutated state: %v", inc.Tasks())
			}
		})
	}
}

// TestIncrementalPropertyRandomSequences is the planverify property: over
// 1000 seeded random add/remove/gang sequences, every engine verdict must
// be equivalent to the full analysis of the same candidate set. The whole
// property runs through the Analysis interface — the engine comes from the
// registry's NewEngine and the oracles are the interface Analyze and
// AnalyzeGang — so registry dispatch is proven to change nothing. Under
// `-tags planverify` the engine additionally self-checks every verdict.
func TestIncrementalPropertyRandomSequences(t *testing.T) {
	const sequences = 1000
	periods := []int64{50_000, 100_000, 200_000, 400_000, 1_000_000, 999_983}
	rng := sim.NewRand(0x19c7e)

	analysis, err := NewAnalysis(DefaultAnalysisName, specPhi79)
	if err != nil {
		t.Fatal(err)
	}

	var totals IncrementalStats
	var gangRemovals int
	for seq := 0; seq < sequences; seq++ {
		r := rng.Split()
		var eng Engine = analysis.NewEngine()
		var mirror TaskSet
		ops := 8 + r.Intn(6)
		for op := 0; op < ops; op++ {
			roll := r.Float64()
			switch {
			case len(mirror) > 1 && roll < 0.12:
				// Multi-task gang removal: evict 2-3 distinct committed
				// instances at once. The engine consumes the first
				// committed instance equal to each member, so mirror that.
				k := 2 + r.Intn(2)
				if k > len(mirror) {
					k = len(mirror)
				}
				gang := TaskSet{}
				for _, i := range r.Perm(len(mirror))[:k] {
					gang = append(gang, mirror[i])
				}
				candidate := removeFirstEqual(mirror, gang)
				v, found := eng.RemoveGang(gang)
				if !found {
					t.Fatalf("seq %d op %d: committed gang %v not found", seq, op, gang)
				}
				if want := analysis.Analyze(candidate); !VerdictsEquivalent(v, want) {
					t.Fatalf("seq %d op %d: gang-remove verdict diverges\nset  %v\ninc  %+v\nfull %+v",
						seq, op, candidate, v, want)
				}
				mirror = candidate
				gangRemovals++

			case len(mirror) > 0 && roll < 0.35:
				// Remove a random committed task; the engine evicts the
				// first committed instance equal to it, so mirror that.
				victim := mirror[r.Intn(len(mirror))]
				candidate := removeFirstEqual(mirror, TaskSet{victim})
				v, found := eng.Remove(victim)
				if !found {
					t.Fatalf("seq %d op %d: committed task %v not found", seq, op, victim)
				}
				if want := analysis.Analyze(candidate); !VerdictsEquivalent(v, want) {
					t.Fatalf("seq %d op %d: remove verdict diverges\nset  %v\ninc  %+v\nfull %+v",
						seq, op, candidate, v, want)
				}
				mirror = candidate

			default:
				gang := TaskSet{randTask(r, periods)}
				for r.Float64() < 0.2 { // occasional multi-task gang
					gang = append(gang, randTask(r, periods))
				}
				candidate := append(append(TaskSet{}, mirror...), gang...)
				v := eng.TryGang(gang)
				if want := analysis.AnalyzeGang(mirror, gang); !VerdictsEquivalent(v, want) {
					t.Fatalf("seq %d op %d: gang verdict diverges\nset  %v\ninc  %+v\nfull %+v",
						seq, op, candidate, v, want)
				}
				if v.Admit {
					mirror = candidate
				}
			}
		}
		if want := analysis.Analyze(mirror); !VerdictsEquivalent(eng.Verdict(), want) {
			t.Fatalf("seq %d: final committed verdict diverges\nset  %v\ninc  %+v\nfull %+v",
				seq, mirror, eng.Verdict(), want)
		}
		s := eng.Stats()
		totals.IncrementalOps += s.IncrementalOps
		totals.FullAnalyses += s.FullAnalyses
	}
	// The property is only meaningful if every path was actually hit.
	if totals.IncrementalOps == 0 || totals.FullAnalyses == 0 || gangRemovals == 0 {
		t.Fatalf("random sequences did not exercise all paths: %+v, %d gang removals",
			totals, gangRemovals)
	}
	t.Logf("paths over %d sequences: %+v, %d gang removals (verify tag: %v)",
		sequences, totals, gangRemovals, VerifyEnabled)
}

// removeFirstEqual mirrors the engine's multiset removal: each gang member
// consumes the first unconsumed instance of set equal to it.
func removeFirstEqual(set, gang TaskSet) TaskSet {
	drop := make(map[int]bool, len(gang))
	for _, g := range gang {
		for i, t := range set {
			if !drop[i] && t == g {
				drop[i] = true
				break
			}
		}
	}
	out := make(TaskSet, 0, len(set)-len(gang))
	for i, t := range set {
		if !drop[i] {
			out = append(out, t)
		}
	}
	return out
}

// randTask draws a mostly-wellformed task; a small fraction is malformed
// (slice over period, zero period) to exercise the BadTask path.
func randTask(r *sim.Rand, periods []int64) Task {
	p := periods[r.Intn(len(periods))]
	switch {
	case r.Float64() < 0.03:
		return Task{PeriodNs: 0, SliceNs: 1}
	case r.Float64() < 0.03:
		return Task{PeriodNs: p, SliceNs: p + 1 + r.Int63n(p)}
	default:
		// Slices up to ~40% of the period: deep sequences still admit
		// several tasks before the bound or the simulation rejects.
		return Task{PeriodNs: p, SliceNs: 1 + r.Int63n(p*2/5)}
	}
}

func TestIncrementalRestore(t *testing.T) {
	inc := NewIncremental(specPhi79)
	a := Task{PeriodNs: 200_000, SliceNs: 40_000}
	b := Task{PeriodNs: 100_000, SliceNs: 20_000}
	inc.Add(a)

	// Restore replaces the committed set wholesale with a fresh analysis.
	set := TaskSet{a, b}
	full := inc.Stats().FullAnalyses
	v := inc.Restore(set)
	if inc.Stats().FullAnalyses != full+1 {
		t.Fatalf("Restore did not run a full analysis")
	}
	if want := Analyze(specPhi79, set); !VerdictsEquivalent(v, want) {
		t.Fatalf("restore verdict diverges:\n got %+v\nwant %+v", v, want)
	}
	if got := inc.Tasks(); !reflect.DeepEqual(got, set) {
		t.Fatalf("restored set = %v, want %v", got, set)
	}

	// The engine keeps answering incrementally after a restore.
	c := Task{PeriodNs: 100_000, SliceNs: 10_000}
	if want := Analyze(specPhi79, TaskSet{a, b, c}); !VerdictsEquivalent(inc.Add(c), want) {
		t.Fatalf("add after restore diverges")
	}

	// Restore commits even a set the spec rejects: a spec change across a
	// restart must never evict running work, only report it as over-budget.
	fat := TaskSet{{PeriodNs: 100_000, SliceNs: 90_000}}
	if v := inc.Restore(fat); v.Admit {
		t.Fatalf("over-capacity restore admitted: %+v", v)
	}
	if got := inc.Tasks(); !reflect.DeepEqual(got, fat) {
		t.Fatalf("rejected restore did not commit: %v", got)
	}
}
