package plan

import (
	"testing"

	"hrtsched/internal/sim"
)

// memoBenchSet is a large admitted set whose uncached analysis pays a
// real hyperperiod simulation: many tasks, dividing periods, modest
// utilization so every admission question is non-trivial but admitted.
func memoBenchSet() TaskSet {
	periods := []int64{5_000_000, 10_000_000, 20_000_000, 40_000_000}
	set := make(TaskSet, 0, 40)
	for i := 0; i < 40; i++ {
		p := periods[i%len(periods)]
		set = append(set, Task{PeriodNs: p, SliceNs: p / 100})
	}
	return set
}

func TestMemoAnalyzeBitIdenticalAndCached(t *testing.T) {
	m := NewMemo(specPhi79, 8)
	set := memoBenchSet()
	want := Analyze(specPhi79, set.Canonical())

	if got := m.Analyze(set); got != want {
		t.Fatalf("memo miss verdict diverged:\n got %+v\nwant %+v", got, want)
	}
	// A permuted copy of the same multiset must hit and answer the same
	// stored verdict, bit for bit.
	perm := append(TaskSet(nil), set...)
	perm[0], perm[len(perm)-1] = perm[len(perm)-1], perm[0]
	if got := m.Analyze(perm); got != want {
		t.Fatalf("memo hit verdict diverged:\n got %+v\nwant %+v", got, want)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := NewMemo(specPhi79, 2)
	a := TaskSet{{PeriodNs: 100_000, SliceNs: 10_000}}
	b := TaskSet{{PeriodNs: 200_000, SliceNs: 10_000}}
	c := TaskSet{{PeriodNs: 400_000, SliceNs: 10_000}}
	m.Analyze(a)
	m.Analyze(b)
	m.Analyze(a) // refresh a; b is now oldest
	m.Analyze(c) // evicts b
	m.Analyze(a)
	if st := m.Stats(); st.Entries != 2 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 entries / 2 hits", st)
	}
	m.Analyze(b) // must be a miss again
	if st := m.Stats(); st.Misses != 4 {
		t.Fatalf("stats = %+v, want 4 misses after re-analyzing evicted set", st)
	}
}

// TestMemoAndBatchPropertyRandomSequences is the cached/batched
// counterpart of TestIncrementalPropertyRandomSequences: 1000 random
// mutation sequences driven through a committed engine, where every
// step's answers from (a) the Memo cache, (b) the evaluate-only
// EvaluateGang/TryGangBatch curve path, and (c) the package batch
// functions are compared against the serial uncached Analyze oracle.
// Under -tags planverify every curve answer is additionally
// self-checked inside the engine.
func TestMemoAndBatchPropertyRandomSequences(t *testing.T) {
	const sequences = 1000
	periods := []int64{50_000, 100_000, 200_000, 400_000, 1_000_000, 999_983}
	rng := sim.NewRand(0x8ba7c)

	memo := NewMemo(specPhi79, 64) // small: exercises eviction across sequences
	for seq := 0; seq < sequences; seq++ {
		r := rng.Split()
		eng := NewIncremental(specPhi79)
		mirror := TaskSet{}
		ops := 6 + r.Intn(5)
		for op := 0; op < ops; op++ {
			roll := r.Float64()
			switch {
			case roll < 0.15 && len(mirror) > 1:
				// RemoveGang keeps the committed set moving so batch
				// probes run against post-removal curves too.
				k := 1 + r.Intn(2)
				gang := TaskSet{}
				for _, idx := range r.Perm(len(mirror))[:k] {
					gang = append(gang, mirror[idx])
				}
				if _, ok := eng.RemoveGang(gang); !ok {
					t.Fatalf("seq %d: RemoveGang unmatched", seq)
				}
				mirror = removeFirstEqual(mirror, gang)
			default:
				gang := TaskSet{randTask(r, periods)}
				for r.Float64() < 0.25 {
					gang = append(gang, randTask(r, periods))
				}

				// (b) evaluate-only single probe vs oracle.
				candidate := append(append(TaskSet(nil), mirror...), gang...)
				want := Analyze(specPhi79, candidate)
				if got := eng.EvaluateGang(gang); !VerdictsEquivalent(got, want) {
					t.Fatalf("seq %d op %d: EvaluateGang diverged\n got %+v\nwant %+v",
						seq, op, got, want)
				}

				// (b) batch probe: several candidates against one curve.
				gangs := []TaskSet{gang, {randTask(r, periods)}, nil}
				batch := eng.TryGangBatch(gangs)
				for i, g := range gangs {
					cand := append(append(TaskSet(nil), mirror...), g...)
					if w := Analyze(specPhi79, cand); !VerdictsEquivalent(batch[i], w) {
						t.Fatalf("seq %d op %d: TryGangBatch[%d] diverged\n got %+v\nwant %+v",
							seq, op, i, batch[i], w)
					}
				}

				// (a) memo answers for the candidate, twice: the second
				// call must be a cache hit and still bit-identical to the
				// uncached oracle on the canonical ordering.
				wantCanon := Analyze(specPhi79, candidate.Canonical())
				if got := memo.Analyze(candidate); got != wantCanon {
					t.Fatalf("seq %d op %d: memo.Analyze diverged\n got %+v\nwant %+v",
						seq, op, got, wantCanon)
				}
				if got := memo.Analyze(candidate); got != wantCanon {
					t.Fatalf("seq %d op %d: memo.Analyze (hit) diverged\n got %+v\nwant %+v",
						seq, op, got, wantCanon)
				}

				if v := eng.TryGang(gang); v.Admit {
					mirror = append(mirror, gang...)
				}
			}

			// Committed-state audit after every mutation.
			if want := Analyze(specPhi79, mirror); !VerdictsEquivalent(eng.Verdict(), want) {
				t.Fatalf("seq %d op %d: committed verdict diverged", seq, op)
			}
		}

		// (c) package batch functions over this sequence's final state.
		sets := []TaskSet{mirror, append(TaskSet(nil), mirror...), {randTask(r, periods)}}
		for i, got := range AnalyzeBatch(specPhi79, sets) {
			if want := Analyze(specPhi79, sets[i].Canonical()); got != want {
				t.Fatalf("seq %d: AnalyzeBatch[%d] diverged\n got %+v\nwant %+v", seq, i, got, want)
			}
		}
		gangs := []TaskSet{{randTask(r, periods)}, {randTask(r, periods), randTask(r, periods)}}
		for i, got := range TryGangBatch(specPhi79, mirror, gangs) {
			cand := append(mirror.Canonical(), gangs[i]...)
			if want := Analyze(specPhi79, cand); !VerdictsEquivalent(got, want) {
				t.Fatalf("seq %d: TryGangBatch[%d] diverged\n got %+v\nwant %+v", seq, i, got, want)
			}
		}
	}
	if st := memo.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("property run exercised no cache traffic: %+v", st)
	}
}

func TestMemoCapacityMatchesUncached(t *testing.T) {
	m := NewMemo(specPhi79, 8)
	sets := []TaskSet{
		nil,
		{{PeriodNs: 100_000, SliceNs: 25_000}},
		memoBenchSet(),
		{{PeriodNs: 999_983, SliceNs: 500_000}}, // prime period: curve fallback path
	}
	for i, set := range sets {
		for _, probe := range []int64{0, 50_000, 1_000_000} {
			want := Capacity(specPhi79, set.Canonical(), probe)
			if got := m.Capacity(set, probe); got != want {
				t.Fatalf("set %d probe %d: memo capacity diverged\n got %+v\nwant %+v",
					i, probe, got, want)
			}
			// Repeat: answered from the cached curve, still identical.
			if got := m.Capacity(set, probe); got != want {
				t.Fatalf("set %d probe %d: cached capacity diverged", i, probe)
			}
		}
	}
}

// --- zero-alloc gates (the PR 4 engine-gate idiom) ---

// raceEnabled is set by race_enabled_test.go under -race, where
// sync.Pool's deliberate randomization makes AllocsPerRun nonzero and
// instrumentation cost swamps the speedup ratios.
var raceEnabled bool

// skipUnderRace skips an allocation or wall-clock gate under -race; the
// non-race `make ci` perf/test legs keep the gates binding.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("skipping under -race: pool randomization and instrumentation skew the measurement")
	}
}

func TestAnalyzeSteadyStateZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	set := memoBenchSet()
	Analyze(specPhi79, set) // prime the simulation and digest pools
	allocs := testing.AllocsPerRun(200, func() {
		Analyze(specPhi79, set)
	})
	if allocs != 0 {
		t.Fatalf("Analyze allocates %v per op in steady state, want 0", allocs)
	}
}

func TestDigestZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	set := memoBenchSet()
	set.Digest()
	allocs := testing.AllocsPerRun(1000, func() {
		set.Digest()
	})
	if allocs != 0 {
		t.Fatalf("Digest allocates %v per op in steady state, want 0", allocs)
	}
}

func TestMemoHitZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	m := NewMemo(specPhi79, 8)
	set := memoBenchSet()
	m.Analyze(set)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Analyze(set)
	})
	if allocs != 0 {
		t.Fatalf("memo cache hit allocates %v per op, want 0", allocs)
	}
}

func TestEvaluateGangSteadyStateZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	eng := NewIncremental(specPhi79)
	if v := eng.TryGang(memoBenchSet()); !v.Admit {
		t.Fatalf("bench set unexpectedly rejected: %+v", v)
	}
	gang := TaskSet{{PeriodNs: 10_000_000, SliceNs: 2_000}}
	eng.EvaluateGang(gang) // prime scratch buffers
	allocs := testing.AllocsPerRun(1000, func() {
		eng.EvaluateGang(gang)
	})
	if allocs != 0 {
		t.Fatalf("EvaluateGang allocates %v per op in steady state, want 0", allocs)
	}
}

// --- repeated-admission and batch-probe microbenchmarks (BENCH_PR8) ---

var verdictSink Verdict

func BenchmarkAnalyzeRepeatUncached(b *testing.B) {
	set := memoBenchSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		verdictSink = Analyze(specPhi79, set)
	}
}

func BenchmarkAnalyzeRepeatMemo(b *testing.B) {
	set := memoBenchSet()
	m := NewMemo(specPhi79, 8)
	m.Analyze(set)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdictSink = m.Analyze(set)
	}
}

func BenchmarkGangProbeUncached(b *testing.B) {
	existing := memoBenchSet()
	gang := TaskSet{{PeriodNs: 10_000_000, SliceNs: 2_000}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		verdictSink = AnalyzeGang(specPhi79, existing, gang)
	}
}

func BenchmarkGangProbeCurve(b *testing.B) {
	eng := NewIncremental(specPhi79)
	eng.Restore(memoBenchSet())
	gang := TaskSet{{PeriodNs: 10_000_000, SliceNs: 2_000}}
	eng.EvaluateGang(gang)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdictSink = eng.EvaluateGang(gang)
	}
}

// TestRepeatAdmissionSpeedupAtLeast10x is the BENCH_PR8 acceptance gate in
// test form: a repeated admission answered from the memo must be at least
// 10x faster than re-running the uncached analysis, and a batch gang
// probe answered from the retained curve at least 10x faster than a full
// re-analysis per candidate.
func TestRepeatAdmissionSpeedupAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark-backed gate in -short mode")
	}
	skipUnderRace(t)
	if VerifyEnabled {
		// planverify cross-checks every curve verdict with a full Analyze,
		// which is exactly the work the fast path exists to avoid.
		t.Skip("skipping under -tags planverify: per-verdict verification erases the fast path")
	}
	uncached := testing.Benchmark(BenchmarkAnalyzeRepeatUncached)
	memo := testing.Benchmark(BenchmarkAnalyzeRepeatMemo)
	if memo.NsPerOp() == 0 {
		t.Skip("memo path too fast to measure")
	}
	if ratio := float64(uncached.NsPerOp()) / float64(memo.NsPerOp()); ratio < 10 {
		t.Fatalf("repeated-admission speedup %.1fx, want >= 10x (uncached %v, memo %v)",
			ratio, uncached.NsPerOp(), memo.NsPerOp())
	}
	full := testing.Benchmark(BenchmarkGangProbeUncached)
	curve := testing.Benchmark(BenchmarkGangProbeCurve)
	if curve.NsPerOp() == 0 {
		t.Skip("curve path too fast to measure")
	}
	if ratio := float64(full.NsPerOp()) / float64(curve.NsPerOp()); ratio < 10 {
		t.Fatalf("batch-probe speedup %.1fx, want >= 10x (full %v, curve %v)",
			ratio, full.NsPerOp(), curve.NsPerOp())
	}
}
