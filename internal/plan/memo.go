package plan

import (
	"container/list"
	"sync"
)

// DefaultMemoEntries is the Memo capacity when the caller passes <= 0.
const DefaultMemoEntries = 1024

// Memo is a digest-keyed LRU over canonically-equal task sets that caches
// both the admission verdict and the retained demand-bound curve of each
// set, so repeated Analyze/Capacity/gang questions about an equivalent
// set skip the hyperperiod simulation entirely. The serving layer's
// verdict LRU proved the keying approach; the Memo goes further by
// keeping the *curve* (an Incremental committed to the canonical set),
// which answers gang probes and capacity binary-search steps by patching
// instead of simulating.
//
// Answer convention: like the serving layer, the Memo canonicalizes
// before analyzing, so Memo.Analyze(set) is bit-identical to
// Analyze(spec, set.Canonical()) — the order a client listed tasks in
// does not perturb float summation. Gang answers describe the
// canonical(existing) ++ gang candidate. Verdicts never go stale —
// they are pure functions of (spec, canonical set) — so the only
// invalidation is LRU eviction; a 64-bit digest collision would alias
// two sets, the same accepted risk as the serving layer's cache.
//
// A Memo is safe for concurrent use; operations serialize on an internal
// lock because the cached curves are stateful single-owner engines.
type Memo struct {
	spec Spec
	cap  int

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[uint64]*list.Element

	hits   int64
	misses int64
}

// memoEntry is one cached set: its verdict and its demand-bound curve.
type memoEntry struct {
	key     uint64
	verdict Verdict
	curve   *Incremental // committed to the canonical set
}

// MemoStats reports cache effectiveness.
type MemoStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// NewMemo creates a memo for spec holding up to entries cached sets
// (DefaultMemoEntries when entries <= 0).
func NewMemo(spec Spec, entries int) *Memo {
	if entries <= 0 {
		entries = DefaultMemoEntries
	}
	return &Memo{
		spec:    spec,
		cap:     entries,
		ll:      list.New(),
		entries: make(map[uint64]*list.Element, entries),
	}
}

// Spec returns the platform spec answers are computed under.
func (m *Memo) Spec() Spec { return m.spec }

// Len returns the number of cached sets.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Stats reports hit/miss counts and the live entry count.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: m.ll.Len()}
}

// Analyze returns the admission verdict for the set — bit-identical to
// Analyze(spec, set.Canonical()). A hit returns the stored verdict
// without touching the simulation (and without allocating); a miss runs
// the full analysis once and caches verdict and curve.
func (m *Memo) Analyze(set TaskSet) Verdict {
	digest := set.Digest()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entryLocked(set, digest).verdict
}

// AnalyzeGang answers all-or-nothing group admission for existing plus
// gang: the verdict of the canonical(existing) ++ gang candidate,
// answered by patching existing's cached demand curve when eligible.
func (m *Memo) AnalyzeGang(existing, gang TaskSet) Verdict {
	digest := existing.Digest()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entryLocked(existing, digest).curve.EvaluateGang(gang)
}

// TryGangBatch evaluates many candidate gangs against one existing set in
// a single retained-curve pass: out[i] describes canonical(existing) ++
// gangs[i], and nothing is committed anywhere.
func (m *Memo) TryGangBatch(existing TaskSet, gangs []TaskSet) []Verdict {
	digest := existing.Digest()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entryLocked(existing, digest).curve.TryGangBatch(gangs)
}

// Capacity produces the what-if headroom report for a CPU running set —
// identical to Capacity(spec, set.Canonical(), probePeriodNs) — with
// every binary-search probe answered from the cached demand curve
// instead of a fresh hyperperiod simulation.
func (m *Memo) Capacity(set TaskSet, probePeriodNs int64) CapacityReport {
	digest := set.Digest()
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryLocked(set, digest)
	var probeBuf [1]Task
	return capacitySearch(m.spec, e.curve.tasks, probePeriodNs, func(probe Task) bool {
		probeBuf[0] = probe
		return e.curve.EvaluateGang(probeBuf[:]).Admit
	})
}

// entryLocked returns the cached entry for the set's digest, building and
// inserting it (with LRU eviction) on a miss. Callers hold m.mu.
func (m *Memo) entryLocked(set TaskSet, digest uint64) *memoEntry {
	if el, ok := m.entries[digest]; ok {
		m.hits++
		m.ll.MoveToFront(el)
		return el.Value.(*memoEntry)
	}
	m.misses++
	curve := NewIncremental(m.spec)
	e := &memoEntry{key: digest, curve: curve, verdict: curve.Restore(set.Canonical())}
	m.entries[digest] = m.ll.PushFront(e)
	for m.ll.Len() > m.cap {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.entries, oldest.Value.(*memoEntry).key)
	}
	return e
}

// AnalyzeBatch answers many admission questions in one pass, sharing
// analysis work across canonically-equal sets: each distinct digest is
// analyzed once and its verdict reused for every equal set in the batch.
// out[i] is bit-identical to Analyze(spec, sets[i].Canonical()).
func AnalyzeBatch(spec Spec, sets []TaskSet) []Verdict {
	n := len(sets)
	if n == 0 {
		return nil
	}
	m := NewMemo(spec, n)
	out := make([]Verdict, n)
	for i, s := range sets {
		out[i] = m.Analyze(s)
	}
	return out
}

// TryGangBatch evaluates many candidate gangs against one existing set:
// one demand-curve decomposition of canonical(existing) answers every
// candidate, so out[i] — the verdict of canonical(existing) ++ gangs[i]
// — costs a curve patch instead of a hyperperiod simulation. Nothing is
// committed; this is the pure batch-placement probe.
func TryGangBatch(spec Spec, existing TaskSet, gangs []TaskSet) []Verdict {
	eng := NewIncremental(spec)
	eng.Restore(existing.Canonical())
	return eng.TryGangBatch(gangs)
}
