package plan

// Incremental is the stateful, per-CPU admission engine. It answers the
// same admit/reject question as Analyze — bit-identically, see
// VerdictsEquivalent and the planverify build tag — but keeps the admitted
// task set, its hyperperiod decomposition, and the demand each admitted
// task places on every deadline checkpoint as reusable state, so a
// single-task delta is answered by patching that state instead of
// re-simulating the whole hyperperiod from scratch.
//
// The retained state is the processor demand curve of the admitted set:
// for a synchronous periodic set with deadlines equal to periods, EDF
// meets every deadline over the hyperperiod H exactly when, at every
// deadline checkpoint t (every multiple of an admitted period up to H),
// the total inflated demand released with deadline <= t fits in t. That
// criterion is exact — it accepts and rejects precisely the sets the
// hyperperiod simulation accepts and rejects — and it is patchable: a new
// task with period P dividing H adds floor(t/P)*rem demand at each
// retained checkpoint plus introduces its own multiples of P, and a
// removed task subtracts the same, both in time proportional to the delta
// rather than to the hyperperiod.
//
// The engine falls back to the full simulation (Analyze) whenever the
// patch would not be exact or would not be cheap:
//
//   - the hyperperiod changes (LCM shift): the checkpoint set is stale,
//     so the candidate is re-analyzed in full and the state rebuilt;
//   - the candidate is within reach of the simulation's conservative
//     rejections (step budget): the simulation's SimSteps verdict depends
//     on its exact event count, so any set whose worst-case event count
//     could exceed MaxSimSteps is handed to the real simulation;
//   - the engine holds no valid state (empty set, or a committed set the
//     full analysis itself rejected conservatively).
//
// Incremental is not safe for concurrent use; give each CPU (or each
// cluster node) its own engine.
type Incremental struct {
	spec Spec

	tasks TaskSet // committed tasks, in admission order
	rems  []int64 // per-task inflated per-job demand (slice + 2*overhead)
	hyper int64   // hyperperiod of tasks (0 when empty)
	jobs  int64   // total jobs per hyperperiod: sum of hyper/period

	// points is the retained demand curve: one entry per deadline
	// checkpoint, demand = total inflated demand with deadline <= t.
	// Unordered; index maps checkpoint time to its slice position.
	points []demandPoint
	index  map[int64]int

	// valid reports whether points/jobs describe tasks exactly; it is
	// false while the committed set is one the full analysis rejected
	// conservatively (possible only through Remove) — every operation
	// then takes the full path until an admitted commit rebuilds state.
	valid bool

	last  Verdict // verdict of the committed set
	stats IncrementalStats

	// scratch holds per-engine evaluation buffers reused across
	// EvaluateGang/TryGangBatch calls, so the batch-query hot path does no
	// per-call slice growth. Safe because the engine is single-owner and
	// nothing retains these buffers past a call.
	scratch struct {
		candidate TaskSet
		rems      []int64
	}
}

type demandPoint struct {
	t      int64
	demand int64
}

// IncrementalStats counts which path answered each operation.
type IncrementalStats struct {
	// IncrementalOps is the number of verdicts produced by patching the
	// retained demand curve.
	IncrementalOps int64
	// FullAnalyses is the number of verdicts that fell back to the full
	// Analyze (hyperperiod shift, step-budget risk, bad task, or no
	// retained state).
	FullAnalyses int64
}

// stepRiskMargin: the hyperperiod simulation takes at most 3*jobs+1 steps
// (every job completes in >=1 segment, each release instant truncates at
// most one running segment and absorbs at most one idle advance), so any
// set with 3*jobs+stepRiskMargin <= MaxSimSteps is guaranteed never to hit
// the SimSteps conservative rejection and the demand-curve verdict is
// exact. Anything closer to the budget is handed to the real simulation.
const stepRiskMargin = 8

// NewIncremental creates an empty engine for the spec.
func NewIncremental(spec Spec) *Incremental {
	inc := &Incremental{spec: spec, index: map[int64]int{}, valid: true}
	inc.last = Analyze(spec, nil)
	return inc
}

// Spec returns the platform spec the engine analyzes under.
func (inc *Incremental) Spec() Spec { return inc.spec }

// Len returns the number of committed tasks.
func (inc *Incremental) Len() int { return len(inc.tasks) }

// Tasks returns a copy of the committed task set in admission order.
func (inc *Incremental) Tasks() TaskSet { return append(TaskSet(nil), inc.tasks...) }

// Hyperperiod returns the committed set's hyperperiod (0 when empty).
func (inc *Incremental) Hyperperiod() int64 { return inc.hyper }

// Utilization returns the committed set's summed utilization.
func (inc *Incremental) Utilization() float64 { return inc.tasks.Utilization() }

// Verdict returns the verdict of the committed set, as Analyze would
// report it.
func (inc *Incremental) Verdict() Verdict { return inc.last }

// Stats reports how many operations took each decision path.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// Reset empties the engine.
func (inc *Incremental) Reset() {
	inc.tasks, inc.rems, inc.points = nil, nil, nil
	inc.index = map[int64]int{}
	inc.hyper, inc.jobs = 0, 0
	inc.valid = true
	inc.last = Analyze(inc.spec, nil)
}

// Restore replaces the committed set wholesale — the crash-recovery path
// after loading a durable snapshot. Unlike TryGang it commits regardless
// of the verdict: the set was admitted before the restart, and a spec
// change across restarts must not silently evict running work. The
// returned verdict describes the restored set under the current spec.
func (inc *Incremental) Restore(tasks TaskSet) Verdict {
	candidate := append(TaskSet(nil), tasks...)
	inc.stats.FullAnalyses++
	v := Analyze(inc.spec, candidate)
	inc.rebuild(candidate, v)
	return v
}

// Add evaluates the committed set plus one task and commits it when
// admitted. The verdict describes the combined set either way; a
// rejection leaves the engine unchanged.
func (inc *Incremental) Add(t Task) Verdict { return inc.TryGang(TaskSet{t}) }

// TryGang evaluates the committed set plus a gang, all-or-nothing: the
// gang is committed only when the combined set is admitted, and a
// rejection admits no member. The verdict describes the combined set.
func (inc *Incremental) TryGang(gang TaskSet) Verdict {
	if len(gang) == 0 {
		return inc.last
	}
	candidate := make(TaskSet, 0, len(inc.tasks)+len(gang))
	candidate = append(append(candidate, inc.tasks...), gang...)

	gangRems, gangJobs, eligible := inc.gangEligible(gang)
	var v Verdict
	if eligible {
		inc.stats.IncrementalOps++
		v = inc.patchVerdict(candidate, gang, gangRems)
		verifyVerdict(inc.spec, candidate, v)
		if v.Admit {
			inc.commitGang(gang, gangRems, gangJobs)
			inc.last = v
		}
		return v
	}

	inc.stats.FullAnalyses++
	v = Analyze(inc.spec, candidate)
	verifyVerdict(inc.spec, candidate, v)
	if v.Admit {
		inc.rebuild(candidate, v)
	}
	return v
}

// Remove evicts one committed task matching t (by value) and returns the
// remaining set's verdict. The second result is false — and the engine
// unchanged — when no committed task matches. Unlike Add, a removal
// always commits: eviction is not an admission question.
func (inc *Incremental) Remove(t Task) (Verdict, bool) {
	return inc.RemoveGang(TaskSet{t})
}

// RemoveGang evicts one committed instance of every task in gang,
// all-or-nothing: if any member has no match the engine is unchanged and
// the second result is false. The verdict describes the remaining set.
func (inc *Incremental) RemoveGang(gang TaskSet) (Verdict, bool) {
	if len(gang) == 0 {
		return inc.last, true
	}
	drop, ok := inc.matchIndices(gang)
	if !ok {
		return inc.last, false
	}
	candidate := make(TaskSet, 0, len(inc.tasks)-len(gang))
	for i, t := range inc.tasks {
		if !drop[i] {
			candidate = append(candidate, t)
		}
	}

	newHyper, overflow := hyperOf(candidate)
	var removedJobs int64
	if inc.hyper > 0 {
		for i := range drop {
			removedJobs += inc.hyper / inc.tasks[i].PeriodNs
		}
	}
	if inc.valid && len(candidate) > 0 && !overflow && newHyper == inc.hyper &&
		3*(inc.jobs-removedJobs)+stepRiskMargin <= MaxSimSteps {
		inc.stats.IncrementalOps++
		v := inc.removeVerdict(candidate)
		verifyVerdict(inc.spec, candidate, v)
		inc.commitRemove(drop, removedJobs, candidate)
		inc.last = v
		return v, true
	}

	inc.stats.FullAnalyses++
	v := Analyze(inc.spec, candidate)
	verifyVerdict(inc.spec, candidate, v)
	inc.rebuild(candidate, v)
	return v, true
}

// EvaluateGang answers the verdict of the committed set plus gang without
// committing anything — the what-if half of TryGang. It patches the
// retained demand curve when eligible and falls back to the full Analyze
// otherwise, so the verdict is equivalent (see VerdictsEquivalent) to
// Analyze on the combined set either way; the planverify build asserts
// it. The engine state is unchanged, and per-engine scratch buffers make
// the patch path allocation-free in the steady state.
func (inc *Incremental) EvaluateGang(gang TaskSet) Verdict {
	if len(gang) == 0 {
		return inc.last
	}
	candidate := append(inc.scratch.candidate[:0], inc.tasks...)
	candidate = append(candidate, gang...)
	inc.scratch.candidate = candidate

	gangRems, _, eligible := inc.gangEligible(gang)
	var v Verdict
	if eligible {
		inc.stats.IncrementalOps++
		v = inc.patchVerdict(candidate, gang, gangRems)
	} else {
		inc.stats.FullAnalyses++
		v = Analyze(inc.spec, candidate)
	}
	verifyVerdict(inc.spec, candidate, v)
	return v
}

// TryGangBatch evaluates many candidate gangs against the committed set
// in one retained-curve pass, committing nothing: out[i] is exactly
// EvaluateGang(gangs[i]). One demand-bound decomposition of the committed
// set answers every candidate, so a k-candidate probe costs k curve
// patches instead of k hyperperiod simulations.
func (inc *Incremental) TryGangBatch(gangs []TaskSet) []Verdict {
	out := make([]Verdict, len(gangs))
	for i, g := range gangs {
		out[i] = inc.EvaluateGang(g)
	}
	return out
}

// gangEligible decides whether the gang can be answered by patching:
// state valid and non-empty, every member well-formed, no hyperperiod
// shift, and the grown set safely inside the simulation's step budget.
// The returned rems buffer is engine scratch, valid until the next
// EvaluateGang/TryGang-family call; commit paths copy its values.
func (inc *Incremental) gangEligible(gang TaskSet) (rems []int64, gangJobs int64, ok bool) {
	if !inc.valid || len(inc.tasks) == 0 || inc.hyper <= 0 {
		return nil, 0, false
	}
	if cap(inc.scratch.rems) < len(gang) {
		inc.scratch.rems = make([]int64, len(gang))
	}
	rems = inc.scratch.rems[:len(gang)]
	for i, g := range gang {
		if g.PeriodNs <= 0 || g.SliceNs <= 0 || g.SliceNs > g.PeriodNs {
			return nil, 0, false
		}
		if inc.hyper%g.PeriodNs != 0 {
			return nil, 0, false // LCM shift: hyperperiod would grow
		}
		rems[i] = inflateDemand(g.SliceNs+2*inc.spec.OverheadNs, inc.spec.UtilizationLimit)
		gangJobs += inc.hyper / g.PeriodNs
	}
	if 3*(inc.jobs+gangJobs)+stepRiskMargin > MaxSimSteps {
		return nil, 0, false
	}
	return rems, gangJobs, true
}

// patchVerdict evaluates candidate (= committed set + gang) against the
// patched demand curve without committing anything.
func (inc *Incremental) patchVerdict(candidate, gang TaskSet, gangRems []int64) Verdict {
	v := Verdict{Utilization: candidate.Utilization(), Digest: candidate.Digest()}
	v.BoundOK = v.Utilization <= inc.spec.UtilizationLimit+utilEpsilon

	simOK := true
	steps := 0
	for i := range inc.points {
		p := inc.points[i]
		steps++
		if p.demand+gangDemandAt(p.t, gang, gangRems) > p.t {
			simOK = false
			break
		}
	}
	if simOK {
	newPoints:
		for _, g := range gang {
			for t := g.PeriodNs; t <= inc.hyper; t += g.PeriodNs {
				if _, seen := inc.index[t]; seen {
					continue
				}
				steps++
				if inc.baseDemandAt(t)+gangDemandAt(t, gang, gangRems) > t {
					simOK = false
					break newPoints
				}
			}
		}
	}

	v.Sim = SimResult{OK: simOK, Reason: OK, HyperperiodNs: inc.hyper, Steps: steps}
	if !simOK {
		v.Sim.Reason = HyperperiodMiss
	}
	v.Admit = v.BoundOK && simOK
	switch {
	case v.Admit:
		v.Reason = OK
	case !v.BoundOK:
		v.Reason = UtilBound
	default:
		v.Reason = v.Sim.Reason
	}
	return v
}

// removeVerdict builds the verdict for candidate (= committed set minus a
// gang, hyperperiod unchanged). Demand only shrinks, so the simulation
// gate still passes; only the utilization bound needs re-checking.
func (inc *Incremental) removeVerdict(candidate TaskSet) Verdict {
	v := Verdict{Utilization: candidate.Utilization(), Digest: candidate.Digest()}
	v.BoundOK = v.Utilization <= inc.spec.UtilizationLimit+utilEpsilon
	v.Sim = SimResult{OK: true, Reason: OK, HyperperiodNs: inc.hyper, Steps: len(inc.points)}
	v.Admit = v.BoundOK
	if v.Admit {
		v.Reason = OK
	} else {
		v.Reason = UtilBound
	}
	return v
}

// commitGang applies an admitted gang to the retained state. baseDemandAt
// must see the pre-gang tasks, so tasks/rems are appended last.
func (inc *Incremental) commitGang(gang TaskSet, gangRems []int64, gangJobs int64) {
	for i := range inc.points {
		inc.points[i].demand += gangDemandAt(inc.points[i].t, gang, gangRems)
	}
	for _, g := range gang {
		for t := g.PeriodNs; t <= inc.hyper; t += g.PeriodNs {
			if _, seen := inc.index[t]; seen {
				continue
			}
			inc.index[t] = len(inc.points)
			inc.points = append(inc.points, demandPoint{
				t: t, demand: inc.baseDemandAt(t) + gangDemandAt(t, gang, gangRems)})
		}
	}
	inc.tasks = append(inc.tasks, gang...)
	inc.rems = append(inc.rems, gangRems...)
	inc.jobs += gangJobs
}

// commitRemove applies a committed eviction: removed tasks' demand is
// subtracted at every checkpoint. Checkpoints that were multiples only of
// a removed period are retained — their demand stays exact and checking
// them is merely redundant — until the next full rebuild prunes them.
func (inc *Incremental) commitRemove(drop map[int]bool, removedJobs int64, candidate TaskSet) {
	dropped := make([]int, 0, len(drop))
	for j := range drop {
		dropped = append(dropped, j)
	}
	for i := range inc.points {
		t := inc.points[i].t
		for _, j := range dropped {
			inc.points[i].demand -= (t / inc.tasks[j].PeriodNs) * inc.rems[j]
		}
	}
	rems := make([]int64, 0, len(candidate))
	for j := range inc.tasks {
		if !drop[j] {
			rems = append(rems, inc.rems[j])
		}
	}
	inc.tasks, inc.rems = candidate, rems
	inc.jobs -= removedJobs
}

// rebuild replaces the retained state with a fresh decomposition of an
// analyzed candidate (the full-analysis fallback path).
func (inc *Incremental) rebuild(candidate TaskSet, v Verdict) {
	inc.tasks = candidate
	inc.last = v
	inc.points, inc.rems = nil, nil
	inc.index = map[int64]int{}
	inc.hyper, inc.jobs = 0, 0
	inc.valid = false

	if len(candidate) == 0 {
		inc.valid = true
		return
	}
	// State is reusable only for a cleanly simulated set safely inside
	// the step budget; conservative or failed verdicts leave the engine
	// on the full path.
	if v.Sim.Reason != OK || v.Sim.HyperperiodNs <= 0 {
		return
	}
	inc.hyper = v.Sim.HyperperiodNs
	inc.rems = make([]int64, len(candidate))
	for i, t := range candidate {
		inc.rems[i] = inflateDemand(t.SliceNs+2*inc.spec.OverheadNs, inc.spec.UtilizationLimit)
		inc.jobs += inc.hyper / t.PeriodNs
	}
	if 3*inc.jobs+stepRiskMargin > MaxSimSteps {
		inc.hyper, inc.jobs, inc.rems = 0, 0, nil
		return
	}
	for _, t := range candidate {
		for p := t.PeriodNs; p <= inc.hyper; p += t.PeriodNs {
			if _, seen := inc.index[p]; seen {
				continue
			}
			inc.index[p] = len(inc.points)
			inc.points = append(inc.points, demandPoint{t: p})
		}
	}
	for i := range inc.points {
		inc.points[i].demand = inc.baseDemandAt(inc.points[i].t)
	}
	inc.valid = true
}

// baseDemandAt returns the committed set's inflated demand with deadline
// <= t.
func (inc *Incremental) baseDemandAt(t int64) int64 {
	var d int64
	for i := range inc.tasks {
		d += (t / inc.tasks[i].PeriodNs) * inc.rems[i]
	}
	return d
}

func gangDemandAt(t int64, gang TaskSet, gangRems []int64) int64 {
	var d int64
	for i := range gang {
		d += (t / gang[i].PeriodNs) * gangRems[i]
	}
	return d
}

// matchIndices resolves a gang to committed task indices, multiset-style:
// each member consumes the first unconsumed committed task equal to it.
func (inc *Incremental) matchIndices(gang TaskSet) (map[int]bool, bool) {
	drop := make(map[int]bool, len(gang))
	for _, g := range gang {
		found := false
		for i, t := range inc.tasks {
			if !drop[i] && t == g {
				drop[i] = true
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return drop, true
}

// hyperOf folds the hyperperiod of set the same way Simulate does,
// reporting overflow past the simulation ceiling. Empty sets report 0.
func hyperOf(set TaskSet) (int64, bool) {
	if len(set) == 0 {
		return 0, false
	}
	h := int64(1)
	for _, t := range set {
		if t.PeriodNs <= 0 {
			return 0, true
		}
		h = lcm64(h, t.PeriodNs)
		if h <= 0 || h > maxHyperperiodNs {
			return 0, true
		}
	}
	return h, false
}
