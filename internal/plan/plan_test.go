package plan

import (
	"reflect"
	"testing"
)

// specPhi79 mirrors the configuration the core admission tests use: the
// Phi's ~6000-cycle invocation cost (~4.6 us at 1.3 GHz) and a 79%
// utilization limit.
var specPhi79 = Spec{OverheadNs: 4_600, UtilizationLimit: 0.79}

func TestAnalyzeBoundaryTable(t *testing.T) {
	// Boundary cases around the Figure 6/7 infeasible region and the
	// conservative rejection paths of the hyperperiod simulation.
	cases := []struct {
		name    string
		set     TaskSet
		admit   bool
		boundOK bool
		simOK   bool
		reason  Reason
	}{
		{
			// The heart of Figures 6/7: 20 us period at 70% slice passes
			// the utilization bound, but with ~9.2 us of charged scheduler
			// overhead per period the platform cannot schedule it. The
			// bound admits; the simulation correctly rejects.
			name:    "infeasible-region-bound-admits-sim-rejects",
			set:     TaskSet{{PeriodNs: 20_000, SliceNs: 14_000}},
			admit:   false,
			boundOK: true,
			simOK:   false,
			reason:  HyperperiodMiss,
		},
		{
			// Same utilization at coarse granularity is feasible: overhead
			// is amortized over a 1 ms period.
			name:    "same-utilization-coarse-feasible",
			set:     TaskSet{{PeriodNs: 1_000_000, SliceNs: 700_000}},
			admit:   true,
			boundOK: true,
			simOK:   true,
			reason:  OK,
		},
		{
			// Over the bound: rejected by the closed form before the
			// simulation's verdict matters.
			name:    "over-utilization-bound",
			set:     TaskSet{{PeriodNs: 10_000, SliceNs: 8_000}},
			admit:   false,
			boundOK: false,
			simOK:   false,
			reason:  UtilBound,
		},
		{
			// Harmonic two-task set well inside the feasible region.
			name:    "feasible-harmonic-pair",
			set:     TaskSet{{PeriodNs: 100_000, SliceNs: 30_000}, {PeriodNs: 200_000, SliceNs: 60_000}},
			admit:   true,
			boundOK: true,
			simOK:   true,
			reason:  OK,
		},
		{
			// Empty set: trivially admissible.
			name:    "empty-set",
			set:     nil,
			admit:   true,
			boundOK: true,
			simOK:   true,
			reason:  OK,
		},
		{
			// Coprime ~1 ms periods: the hyperperiod explodes past the
			// simulation ceiling and the set is rejected conservatively.
			name: "hyperperiod-overflow-conservative-reject",
			set: TaskSet{{PeriodNs: 999_983, SliceNs: 10},
				{PeriodNs: 999_979, SliceNs: 10}, {PeriodNs: 999_961, SliceNs: 10}},
			admit:   false,
			boundOK: true,
			simOK:   false,
			reason:  HyperperiodOverflow,
		},
		{
			// Two coprime periods whose hyperperiod fits under the ceiling
			// but needs ~2M release events: the step bound trips first and
			// the set is rejected conservatively, not simulated forever.
			name:    "sim-step-bound-conservative-reject",
			set:     TaskSet{{PeriodNs: 999_983, SliceNs: 10}, {PeriodNs: 1_000_003, SliceNs: 10}},
			admit:   false,
			boundOK: true,
			simOK:   false,
			reason:  SimSteps,
		},
		{
			// Structurally malformed: slice exceeds period.
			name:    "bad-task-slice-over-period",
			set:     TaskSet{{PeriodNs: 10_000, SliceNs: 20_000}},
			admit:   false,
			boundOK: false,
			simOK:   false,
			reason:  BadTask,
		},
		{
			// Structurally malformed: non-positive period.
			name:    "bad-task-zero-period",
			set:     TaskSet{{PeriodNs: 0, SliceNs: 1}},
			admit:   false,
			boundOK: false,
			simOK:   false,
			reason:  BadTask,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Analyze(specPhi79, tc.set)
			if v.Admit != tc.admit {
				t.Fatalf("Admit = %v, want %v (verdict %+v)", v.Admit, tc.admit, v)
			}
			if v.BoundOK != tc.boundOK {
				t.Fatalf("BoundOK = %v, want %v", v.BoundOK, tc.boundOK)
			}
			if v.Sim.OK != tc.simOK {
				t.Fatalf("Sim.OK = %v, want %v (sim %+v)", v.Sim.OK, tc.simOK, v.Sim)
			}
			if v.Reason != tc.reason {
				t.Fatalf("Reason = %v, want %v", v.Reason, tc.reason)
			}
		})
	}
}

func TestSimStepBoundActuallyBounds(t *testing.T) {
	res := Simulate(TaskSet{{PeriodNs: 999_983, SliceNs: 10}, {PeriodNs: 1_000_003, SliceNs: 10}},
		specPhi79.OverheadNs, specPhi79.UtilizationLimit)
	if res.OK || res.Reason != SimSteps {
		t.Fatalf("expected SimSteps rejection, got %+v", res)
	}
	if res.Steps > MaxSimSteps+1 {
		t.Fatalf("simulation overran its step bound: %d steps", res.Steps)
	}
}

func TestAnalyzeDeterministicAndOrderIndependent(t *testing.T) {
	a := TaskSet{{PeriodNs: 200_000, SliceNs: 60_000}, {PeriodNs: 100_000, SliceNs: 30_000}}
	b := TaskSet{{PeriodNs: 100_000, SliceNs: 30_000}, {PeriodNs: 200_000, SliceNs: 60_000}}
	va, vb := Analyze(specPhi79, a), Analyze(specPhi79, b)
	if !reflect.DeepEqual(va, vb) {
		t.Fatalf("verdicts differ across task orderings:\n%+v\n%+v", va, vb)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ across task orderings")
	}
	if a.Digest() == (TaskSet{{PeriodNs: 100_000, SliceNs: 30_001}}).Digest() {
		t.Fatalf("distinct sets share a digest")
	}
	if again := Analyze(specPhi79, a); !reflect.DeepEqual(va, again) {
		t.Fatalf("Analyze is not deterministic")
	}
}

func TestAnalyzeGangAllOrNothing(t *testing.T) {
	existing := TaskSet{{PeriodNs: 1_000_000, SliceNs: 300_000}}
	fits := TaskSet{{PeriodNs: 1_000_000, SliceNs: 200_000}, {PeriodNs: 1_000_000, SliceNs: 200_000}}
	if v := AnalyzeGang(specPhi79, existing, fits); !v.Admit {
		t.Fatalf("feasible gang rejected: %+v", v)
	}
	tooBig := TaskSet{{PeriodNs: 1_000_000, SliceNs: 300_000}, {PeriodNs: 1_000_000, SliceNs: 300_000}}
	v := AnalyzeGang(specPhi79, existing, tooBig)
	if v.Admit {
		t.Fatalf("over-capacity gang admitted")
	}
	if v.Reason != UtilBound {
		t.Fatalf("Reason = %v, want UtilBound", v.Reason)
	}
}

func TestCapacityReportOverheadBites(t *testing.T) {
	set := TaskSet{{PeriodNs: 1_000_000, SliceNs: 300_000}}
	coarse := Capacity(specPhi79, set, 0) // probe at the set's own period
	if coarse.ProbePeriodNs != 1_000_000 {
		t.Fatalf("default probe period = %d, want the set's largest period", coarse.ProbePeriodNs)
	}
	if coarse.MaxExtraSliceNs <= 0 {
		t.Fatalf("coarse probe found no headroom at all: %+v", coarse)
	}
	if coarse.MaxExtraUtilization > coarse.BoundHeadroom+0.01 {
		t.Fatalf("found more capacity (%.3f) than the bound allows (%.3f)",
			coarse.MaxExtraUtilization, coarse.BoundHeadroom)
	}
	// A larger slice than the reported maximum must be rejected.
	probe := append(TaskSet(nil), set...)
	probe = append(probe, Task{PeriodNs: coarse.ProbePeriodNs, SliceNs: coarse.MaxExtraSliceNs + 1_000})
	if Analyze(specPhi79, probe).Admit {
		t.Fatalf("capacity report understated the admit edge")
	}

	// At fine granularity the per-invocation overhead eats most of the
	// headroom: the same CPU takes much less extra utilization.
	fine := Capacity(specPhi79, set, 20_000)
	if fine.MaxExtraUtilization >= coarse.MaxExtraUtilization {
		t.Fatalf("fine-grain capacity (%.3f) should be below coarse (%.3f)",
			fine.MaxExtraUtilization, coarse.MaxExtraUtilization)
	}
}

func TestCapacityEmptySetDefaults(t *testing.T) {
	r := Capacity(specPhi79, nil, 0)
	if r.ProbePeriodNs != 1_000_000 {
		t.Fatalf("empty-set probe period = %d, want 1ms default", r.ProbePeriodNs)
	}
	if r.MaxExtraUtilization <= 0.5 {
		t.Fatalf("an idle CPU should take most of the limit, got %.3f", r.MaxExtraUtilization)
	}
}

func TestPlaceFirstFit(t *testing.T) {
	s := func(sliceNs int64) TaskSet { return TaskSet{{PeriodNs: 1_000_000, SliceNs: sliceNs}} }
	sets := []TaskSet{s(300_000), s(300_000), s(300_000), s(300_000)}
	p, err := PlaceFirstFit(specPhi79, 2, sets)
	if err != nil {
		t.Fatalf("PlaceFirstFit: %v", err)
	}
	want := []int{0, 0, 1, 1} // 0.6 per CPU; a third 0.3 would break the 0.79 limit
	if !reflect.DeepEqual(p.CPUOf, want) {
		t.Fatalf("assignment = %v, want %v", p.CPUOf, want)
	}
	for c, u := range p.Utilization {
		if u > specPhi79.UtilizationLimit {
			t.Fatalf("CPU %d overpacked: %.3f", c, u)
		}
	}
	if _, err := PlaceFirstFit(specPhi79, 1, sets); err == nil {
		t.Fatalf("four 0.3-util sets cannot fit one CPU under a 0.79 limit")
	}
	if _, err := PlaceFirstFit(specPhi79, 0, nil); err == nil {
		t.Fatalf("zero CPUs must be rejected")
	}
}

func TestPlaceFirstFitRespectsSimulationNotJustArithmetic(t *testing.T) {
	// Each set passes the bound on paper (0.30 util) but is fine-grain
	// enough that two of them on one CPU fail the hyperperiod simulation
	// even though 0.60 < 0.79. First-fit must consult the simulation and
	// spread them.
	fine := TaskSet{{PeriodNs: 40_000, SliceNs: 12_000}}
	if !Analyze(specPhi79, fine).Admit {
		t.Fatalf("single fine-grain set should be feasible")
	}
	if AnalyzeGang(specPhi79, fine, fine).Admit {
		t.Fatalf("test premise broken: two fine-grain sets fit one CPU")
	}
	p, err := PlaceFirstFit(specPhi79, 2, []TaskSet{fine, fine})
	if err != nil {
		t.Fatalf("PlaceFirstFit: %v", err)
	}
	if p.CPUOf[0] == p.CPUOf[1] {
		t.Fatalf("simulation-infeasible pair packed onto one CPU: %v", p.CPUOf)
	}
}
