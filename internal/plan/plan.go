// Package plan is the exported, side-effect-free schedulability engine
// behind the scheduler's admission control (Section 3.2). It answers
// admit/reject questions about periodic task sets two ways: the closed-form
// EDF utilization bound, and the hyperperiod simulation prototype that
// charges the scheduler's own per-invocation overhead (two interrupts per
// period, Section 5.3) and therefore correctly rejects fine-grain task sets
// the bound would admit but the platform cannot actually schedule — the
// infeasible region of Figures 6 and 7.
//
// Everything in this package is a pure function of its arguments: no
// kernel, no clock, no global state. internal/core consumes it for online
// admission; internal/serve exposes it as a query service; external
// planners use it for what-if capacity reports and first-fit placement.
package plan

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
)

// Task is one periodic task: a slice of SliceNs guaranteed every PeriodNs.
type Task struct {
	PeriodNs int64 `json:"period_ns"`
	SliceNs  int64 `json:"slice_ns"`
}

// Utilization returns slice/period, or 0 for a malformed task.
func (t Task) Utilization() float64 {
	if t.PeriodNs <= 0 {
		return 0
	}
	return float64(t.SliceNs) / float64(t.PeriodNs)
}

// TaskSet is a set of periodic tasks competing for one CPU.
type TaskSet []Task

// Utilization returns the summed utilization of the set.
func (ts TaskSet) Utilization() float64 {
	u := 0.0
	for _, t := range ts {
		u += t.Utilization()
	}
	return u
}

// Canonical returns a sorted copy of the set: ascending by period, then by
// slice. Two task sets with the same multiset of tasks canonicalize to the
// same sequence, so digests — and therefore cached answers — agree no
// matter the order a client listed the tasks in.
func (ts TaskSet) Canonical() TaskSet {
	out := append(TaskSet(nil), ts...)
	canonSort(out)
	return out
}

// canonSort sorts a set in place into canonical order: ascending by
// period, then by slice. slices.SortFunc, not sort.Slice: this is on the
// hot path of every digest (cache keys, shard routing, incremental
// verdicts) and the reflection-based swapper costs several times the
// comparisons. Unstable sorting is safe — ties are identical Task values.
func canonSort(ts TaskSet) {
	slices.SortFunc(ts, func(a, b Task) int {
		if a.PeriodNs != b.PeriodNs {
			return cmp.Compare(a.PeriodNs, b.PeriodNs)
		}
		return cmp.Compare(a.SliceNs, b.SliceNs)
	})
}

// digestScratch pools the sort buffer Digest canonicalizes into, so
// digesting — which every Analyze, cache lookup, and shard route does —
// allocates nothing in the steady state.
var digestScratch = sync.Pool{New: func() any {
	buf := make(TaskSet, 0, 64)
	return &buf
}}

// Digest returns a 64-bit FNV-1a hash of the canonical task sequence. Equal
// multisets of tasks have equal digests; the digest is the cache key and
// the shard-routing key of the serving layer.
func (ts TaskSet) Digest() uint64 {
	bp := digestScratch.Get().(*TaskSet)
	buf := append((*bp)[:0], ts...)
	canonSort(buf)
	h := digestOf(buf)
	*bp = buf
	digestScratch.Put(bp)
	return h
}

// digest2 is Digest over the concatenation a ++ b without materializing
// it: the combined-set key the batch evaluation paths need per candidate.
func digest2(a, b TaskSet) uint64 {
	bp := digestScratch.Get().(*TaskSet)
	buf := append(append((*bp)[:0], a...), b...)
	canonSort(buf)
	h := digestOf(buf)
	*bp = buf
	digestScratch.Put(bp)
	return h
}

// digestOf hashes an already-canonical sequence.
func digestOf(ts TaskSet) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int64) {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	for _, t := range ts {
		mix(t.PeriodNs)
		mix(t.SliceNs)
	}
	return h
}

// Spec describes the platform and policy a task set is analyzed under.
type Spec struct {
	// OverheadNs is the cost of one local scheduler invocation in
	// nanoseconds; the simulation charges two per job (arrival and slice
	// completion), per Section 5.3.
	OverheadNs int64 `json:"overhead_ns"`
	// UtilizationLimit is the boot-time admission cap (fraction of 1.0);
	// the paper's default configuration uses 0.99.
	UtilizationLimit float64 `json:"utilization_limit"`
}

// Reason says why an analysis rejected a task set (or OK).
type Reason uint8

const (
	// OK: the set is admissible.
	OK Reason = iota
	// BadTask: a task has a non-positive period or slice.
	BadTask
	// UtilBound: total utilization exceeds the utilization limit.
	UtilBound
	// HyperperiodMiss: the EDF hyperperiod simulation found a job that
	// cannot meet its deadline once scheduler overhead is charged.
	HyperperiodMiss
	// HyperperiodOverflow: the task-set hyperperiod is too long to
	// simulate; the set is rejected conservatively.
	HyperperiodOverflow
	// SimSteps: the simulation's step bound was exhausted before the
	// hyperperiod completed; the set is rejected conservatively.
	SimSteps
)

// String names the reason with the stable tags used on the wire.
func (r Reason) String() string {
	switch r {
	case OK:
		return "ok"
	case BadTask:
		return "bad-task"
	case UtilBound:
		return "util-cap"
	case HyperperiodMiss:
		return "hyperperiod-miss"
	case HyperperiodOverflow:
		return "hyperperiod-overflow"
	case SimSteps:
		return "sim-steps-exhausted"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// MarshalText renders the reason tag into JSON and text encodings.
func (r Reason) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText parses a reason tag, so clients can decode verdicts that
// travelled over the wire.
func (r *Reason) UnmarshalText(b []byte) error {
	for cand := OK; cand <= SimSteps; cand++ {
		if string(b) == cand.String() {
			*r = cand
			return nil
		}
	}
	return fmt.Errorf("plan: unknown reason %q", b)
}

// MaxSimSteps bounds the hyperperiod simulation so analysis cost stays
// bounded no matter how pathological the hyperperiod is.
const MaxSimSteps = 1 << 16

// maxHyperperiodNs is the largest hyperperiod the simulation will attempt
// (about 18 simulated minutes); anything longer is rejected conservatively.
const maxHyperperiodNs = int64(1) << 40

// SimResult reports one hyperperiod simulation.
type SimResult struct {
	// OK is true when every job of every task met its deadline.
	OK bool `json:"ok"`
	// Reason is OK, BadTask, HyperperiodMiss, HyperperiodOverflow or
	// SimSteps.
	Reason Reason `json:"reason"`
	// HyperperiodNs is the simulated hyperperiod (0 when it overflowed).
	HyperperiodNs int64 `json:"hyperperiod_ns"`
	// Steps is the number of simulation steps consumed.
	Steps int `json:"steps"`
}

// Simulate runs EDF over one hyperperiod of the task set, charging
// overheadNs of scheduler time at each arrival and each slice completion,
// and reserving the non-periodic fraction implied by utilLimit. It reports
// whether every job met its deadline. A task set whose hyperperiod is too
// long — or which needs more than MaxSimSteps steps — is rejected
// conservatively. This is the exact decision procedure internal/core uses
// for the AdmitSim policy.
func Simulate(tasks TaskSet, overheadNs int64, utilLimit float64) SimResult {
	if len(tasks) == 0 {
		return SimResult{OK: true, Reason: OK}
	}
	hyper := int64(1)
	for _, t := range tasks {
		if t.PeriodNs <= 0 || t.SliceNs <= 0 {
			return SimResult{Reason: BadTask}
		}
		hyper = lcm64(hyper, t.PeriodNs)
		if hyper <= 0 || hyper > maxHyperperiodNs {
			return SimResult{Reason: HyperperiodOverflow}
		}
	}
	rp := simScratch.Get().(*[]simJob)
	res, buf := simulate(tasks, overheadNs, utilLimit, hyper, (*rp)[:0])
	*rp = buf
	simScratch.Put(rp)
	return res
}

// simJob is one released, not-yet-finished job in the EDF simulation.
type simJob struct {
	task     int
	deadline int64
	rem      int64
}

// simScratch pools the ready-queue buffer so a steady-state Simulate —
// and therefore a steady-state Analyze — allocates nothing.
var simScratch = sync.Pool{New: func() any {
	buf := make([]simJob, 0, 64)
	return &buf
}}

// releaseJobs appends the jobs of every task with an arrival at `at`.
func releaseJobs(ready []simJob, tasks TaskSet, at, overheadNs int64, utilLimit float64) []simJob {
	for i, t := range tasks {
		if at%t.PeriodNs == 0 {
			// Each arrival costs one scheduler invocation and a second
			// fires at slice completion; charge both to the job.
			ready = append(ready, simJob{task: i, deadline: at + t.PeriodNs,
				rem: inflateDemand(t.SliceNs+2*overheadNs, utilLimit)})
		}
	}
	return ready
}

// nextReleaseAfter returns the earliest arrival instant strictly after
// `after`.
func nextReleaseAfter(tasks TaskSet, after int64) int64 {
	next := int64(-1)
	for _, t := range tasks {
		r := (after/t.PeriodNs + 1) * t.PeriodNs
		if next == -1 || r < next {
			next = r
		}
	}
	return next
}

// simulate is Simulate's validated core; it returns the (possibly grown)
// ready buffer alongside the result so the caller can pool it.
func simulate(tasks TaskSet, overheadNs int64, utilLimit float64, hyper int64, ready []simJob) (SimResult, []simJob) {
	now := int64(0)
	steps := 0
	ready = releaseJobs(ready, tasks, 0, overheadNs, utilLimit)
	for now < hyper {
		steps++
		if steps > MaxSimSteps {
			return SimResult{Reason: SimSteps, HyperperiodNs: hyper, Steps: steps}, ready
		}
		if len(ready) == 0 {
			now = nextReleaseAfter(tasks, now)
			if now < hyper {
				ready = releaseJobs(ready, tasks, now, overheadNs, utilLimit)
			}
			continue
		}
		// EDF: find the earliest deadline.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i].deadline < ready[best].deadline {
				best = i
			}
		}
		j := &ready[best]
		runUntil := now + j.rem
		if nr := nextReleaseAfter(tasks, now); nr < runUntil {
			runUntil = nr
		}
		if runUntil > j.deadline {
			// This job cannot finish in time.
			return SimResult{Reason: HyperperiodMiss, HyperperiodNs: hyper, Steps: steps}, ready
		}
		j.rem -= runUntil - now
		if j.rem <= 0 {
			ready[best] = ready[len(ready)-1]
			ready = ready[:len(ready)-1]
		}
		now = runUntil
		if now < hyper {
			ready = releaseJobs(ready, tasks, now, overheadNs, utilLimit)
		}
	}
	// Jobs still outstanding at the hyperperiod boundary have deadlines at
	// or before it only if they missed.
	for _, j := range ready {
		if j.rem > 0 && j.deadline <= hyper {
			return SimResult{Reason: HyperperiodMiss, HyperperiodNs: hyper, Steps: steps}, ready
		}
	}
	return SimResult{OK: true, Reason: OK, HyperperiodNs: hyper, Steps: steps}, ready
}

// inflateDemand converts ns of periodic demand into the wall time the
// simulation charges for it: the utilization limit reserves a fraction of
// every interval for non-periodic work, so serving D ns of demand takes
// D/limit ns of wall time (ceil). Simulate and Incremental share this one
// definition so their per-job demand is bit-identical.
func inflateDemand(ns int64, utilLimit float64) int64 {
	if utilLimit <= 0 || utilLimit >= 1 {
		return ns
	}
	return int64(float64(ns)/utilLimit) + 1
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b int64) int64 { return a / gcd64(a, b) * b }

// utilEpsilon matches the tolerance internal/core applies to its
// utilization-cap comparisons.
const utilEpsilon = 1e-12

// Verdict is the combined answer of both admission tests for one task set.
type Verdict struct {
	// Admit is the overall verdict: both the utilization bound and the
	// hyperperiod simulation accept the set.
	Admit bool `json:"admit"`
	// Reason is OK when admitted, else the first failing test's reason
	// (UtilBound before the simulation reasons).
	Reason Reason `json:"reason"`
	// Utilization is the set's summed periodic utilization.
	Utilization float64 `json:"utilization"`
	// BoundOK reports the closed-form test: utilization <= limit.
	BoundOK bool `json:"bound_ok"`
	// Sim is the hyperperiod simulation's report. Note the paper's point:
	// BoundOK with !Sim.OK is the infeasible region — sets the bound
	// admits but the platform cannot schedule.
	Sim SimResult `json:"sim"`
	// Digest is the canonical task-set digest the verdict answers for.
	Digest uint64 `json:"digest"`
}

// Analyze runs both admission tests on the task set under the spec and
// returns the combined verdict. It is deterministic and side-effect-free:
// equal (spec, canonical set) pairs produce identical verdicts.
func Analyze(spec Spec, set TaskSet) Verdict {
	v := Verdict{
		Utilization: set.Utilization(),
		Digest:      set.Digest(),
	}
	for _, t := range set {
		if t.PeriodNs <= 0 || t.SliceNs <= 0 || t.SliceNs > t.PeriodNs {
			v.Reason = BadTask
			v.Sim = SimResult{Reason: BadTask}
			return v
		}
	}
	v.BoundOK = v.Utilization <= spec.UtilizationLimit+utilEpsilon
	v.Sim = Simulate(set, spec.OverheadNs, spec.UtilizationLimit)
	v.Admit = v.BoundOK && v.Sim.OK
	switch {
	case v.Admit:
		v.Reason = OK
	case !v.BoundOK:
		v.Reason = UtilBound
	default:
		v.Reason = v.Sim.Reason
	}
	return v
}

// VerdictsEquivalent reports whether two verdicts agree on everything that
// constitutes the admission decision: Admit, Reason, BoundOK, Utilization,
// Digest, and the simulation's OK/Reason/HyperperiodNs. Sim.Steps is
// excluded — it measures the work a particular decision procedure did
// (simulation events for Simulate, demand checkpoints for Incremental),
// not the decision itself. The planverify build and the incremental
// property tests compare through this one definition.
func VerdictsEquivalent(a, b Verdict) bool {
	a.Sim.Steps, b.Sim.Steps = 0, 0
	return a == b
}

// AnalyzeGang answers group admission the way Algorithm 1 does:
// all-or-nothing. The gang joins an existing admitted set only if the
// combined set passes both tests; a rejection admits no member. The verdict
// describes the combined set.
func AnalyzeGang(spec Spec, existing, gang TaskSet) Verdict {
	combined := make(TaskSet, 0, len(existing)+len(gang))
	combined = append(combined, existing...)
	combined = append(combined, gang...)
	return Analyze(spec, combined)
}

// CapacityReport is the what-if answer: how much more work fits on a CPU
// that already runs the given set.
type CapacityReport struct {
	// Utilization is the existing set's summed utilization.
	Utilization float64 `json:"utilization"`
	// BoundHeadroom is the closed-form headroom: limit - utilization
	// (clamped at zero).
	BoundHeadroom float64 `json:"bound_headroom"`
	// ProbePeriodNs is the period of the hypothetical extra task used to
	// measure real headroom.
	ProbePeriodNs int64 `json:"probe_period_ns"`
	// MaxExtraSliceNs is the largest slice an extra task with the probe
	// period could have and still be admitted (0 if even the smallest
	// probe is rejected).
	MaxExtraSliceNs int64 `json:"max_extra_slice_ns"`
	// MaxExtraUtilization is MaxExtraSliceNs / ProbePeriodNs — the real
	// additional utilization the platform can take at this granularity,
	// which is below BoundHeadroom exactly when scheduler overhead bites.
	MaxExtraUtilization float64 `json:"max_extra_utilization"`
}

// Capacity produces the what-if capacity report for a CPU running set. The
// probe period selects the granularity of the hypothetical extra work;
// probePeriodNs <= 0 picks the largest period in the set (so the
// hyperperiod is unchanged), or 1 ms for an empty set. The search is a
// binary search on the probe task's slice, each step a full Analyze.
func Capacity(spec Spec, set TaskSet, probePeriodNs int64) CapacityReport {
	return capacitySearch(spec, set, probePeriodNs, func(probe Task) bool {
		cand := append(append(TaskSet(nil), set...), probe)
		return Analyze(spec, cand).Admit
	})
}

// capacitySearch is Capacity's search over an injectable admit probe, so
// the memoized path can answer each step from a retained demand curve
// while producing the identical report: the probe's Admit bits are the
// only thing the search consumes.
func capacitySearch(spec Spec, set TaskSet, probePeriodNs int64, admitsProbe func(Task) bool) CapacityReport {
	r := CapacityReport{Utilization: set.Utilization()}
	r.BoundHeadroom = spec.UtilizationLimit - r.Utilization
	if r.BoundHeadroom < 0 {
		r.BoundHeadroom = 0
	}
	if probePeriodNs <= 0 {
		for _, t := range set {
			if t.PeriodNs > probePeriodNs {
				probePeriodNs = t.PeriodNs
			}
		}
		if probePeriodNs <= 0 {
			probePeriodNs = 1_000_000 // 1 ms
		}
	}
	r.ProbePeriodNs = probePeriodNs

	admits := func(sliceNs int64) bool {
		return admitsProbe(Task{PeriodNs: probePeriodNs, SliceNs: sliceNs})
	}
	lo, hi := int64(0), probePeriodNs // invariant: admits(lo), !admits(hi+1)
	if !admits(1) {
		return r
	}
	if admits(probePeriodNs) {
		lo = probePeriodNs
	} else {
		lo = 1
		for hi-lo > 1 { // binary search the admit/reject edge
			mid := lo + (hi-lo)/2
			if admits(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	r.MaxExtraSliceNs = lo
	r.MaxExtraUtilization = float64(lo) / float64(probePeriodNs)
	return r
}

// Placement assigns task sets to CPUs.
type Placement struct {
	// CPUOf[i] is the CPU the i-th input set was placed on.
	CPUOf []int `json:"cpu_of"`
	// Utilization[c] is the summed utilization placed on CPU c.
	Utilization []float64 `json:"utilization"`
}

// PlaceFirstFit packs the task sets onto ncpus CPUs first-fit: each set, in
// input order, lands on the lowest-numbered CPU whose combined set still
// passes Analyze. Every bin decision runs the full analysis, so a placement
// that "fits" by utilization arithmetic but fails the hyperperiod
// simulation is correctly pushed to another CPU. It returns an error naming
// the first set that fits nowhere.
func PlaceFirstFit(spec Spec, ncpus int, sets []TaskSet) (Placement, error) {
	if ncpus < 1 {
		return Placement{}, fmt.Errorf("plan: need at least one CPU (got %d)", ncpus)
	}
	bins := make([]TaskSet, ncpus)
	p := Placement{CPUOf: make([]int, len(sets)), Utilization: make([]float64, ncpus)}
	for i, set := range sets {
		placed := -1
		for c := 0; c < ncpus; c++ {
			if AnalyzeGang(spec, bins[c], set).Admit {
				placed = c
				break
			}
		}
		if placed < 0 {
			return Placement{}, fmt.Errorf("plan: task set %d (util %.3f) fits on no CPU", i, set.Utilization())
		}
		bins[placed] = append(bins[placed], set...)
		p.CPUOf[i] = placed
		p.Utilization[placed] = bins[placed].Utilization()
	}
	return p, nil
}
