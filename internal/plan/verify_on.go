//go:build planverify

package plan

import "fmt"

// VerifyEnabled reports whether this binary was built with the planverify
// tag, in which case every Incremental verdict is cross-checked against
// the full Analyze and any divergence panics.
const VerifyEnabled = true

// verifyVerdict asserts that an Incremental verdict for candidate is
// equivalent (VerdictsEquivalent: everything but Sim.Steps) to the full
// analysis of the same candidate. A divergence is a bug in the
// incremental engine, never a data error, so it panics with both
// verdicts and the candidate for reproduction.
func verifyVerdict(spec Spec, candidate TaskSet, got Verdict) {
	want := Analyze(spec, candidate)
	if !VerdictsEquivalent(got, want) {
		panic(fmt.Sprintf("plan: incremental verdict diverges from full analysis\n"+
			"spec:        %+v\ncandidate:   %v\nincremental: %+v\nfull:        %+v",
			spec, candidate, got, want))
	}
}
