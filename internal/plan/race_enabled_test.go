//go:build race

package plan

// Under -race, sync.Pool deliberately randomizes Put/Get so pooled
// buffers are sometimes dropped and reallocated — the zero-alloc gates
// would measure that randomization, not the code. The speedup gate
// likewise measures several-fold instrumentation cost; see
// TestRepeatAdmissionSpeedupAtLeast10x.
func init() { raceEnabled = true }
