//go:build !planverify

package plan

// VerifyEnabled reports whether this binary was built with the planverify
// tag, in which case every Incremental verdict is cross-checked against
// the full Analyze and any divergence panics.
const VerifyEnabled = false

// verifyVerdict is a no-op outside planverify builds.
func verifyVerdict(Spec, TaskSet, Verdict) {}
