package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample in a figure series, optionally with an error
// bar (standard deviation) attached.
type Point struct {
	X, Y float64
	Err  float64
}

// Series is one labelled curve in a reproduced figure, e.g. the "100 us"
// miss-rate curve of Figure 6.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// AddErr appends a point with an error bar.
func (s *Series) AddErr(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// SortByX orders the points by increasing x.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Figure is a reproduced table or figure: a caption plus one or more series.
// Its Format method prints the rows the paper reports.
type Figure struct {
	ID      string // e.g. "fig6"
	Caption string
	XLabel  string
	YLabel  string
	Series  []*Series
	Notes   []string
}

// NewFigure creates an empty figure.
func NewFigure(id, caption, xlabel, ylabel string) *Figure {
	return &Figure{ID: id, Caption: caption, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers and returns a new series with the label.
func (f *Figure) AddSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// Note attaches a free-form observation line (e.g. a derived headline
// number) printed after the data.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Format renders the figure as aligned text columns: one block per series,
// one row per point.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Caption)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- series %q (%s vs %s)\n", s.Label, f.YLabel, f.XLabel)
		hasErr := false
		for _, p := range s.Points {
			if p.Err != 0 {
				hasErr = true
				break
			}
		}
		for _, p := range s.Points {
			if hasErr {
				fmt.Fprintf(&b, "%14.6g %14.6g %14.6g\n", p.X, p.Y, p.Err)
			} else {
				fmt.Fprintf(&b, "%14.6g %14.6g\n", p.X, p.Y)
			}
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Plot renders a crude ASCII scatter of all series on one panel, good
// enough to eyeball shapes (monotone decay, feasibility cliffs, y=x splits).
func (f *Figure) Plot(cols, rows int) string {
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if first {
		return "(empty figure)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(cols-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(rows-1))
			grid[rows-1-cy][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%g..%g] vs %s [%g..%g]\n", f.YLabel, minY, maxY, f.XLabel, minX, maxX)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}
