// Package stats provides the small set of statistics used by the experiment
// harnesses: streaming summaries (Welford), fixed-width histograms, and
// labelled series that print in the same row/series layout as the paper's
// tables and figures.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count, mean, variance, min and max using Welford's
// online algorithm. The zero value is ready to use.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	haveSample bool
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.haveSample || x < s.min {
		s.min = x
	}
	if !s.haveSample || x > s.max {
		s.max = x
	}
	s.haveSample = true
}

// AddN folds x into the summary n times.
func (s *Summary) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// Merge folds another summary into this one (Chan et al. parallel variance).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	d := o.mean - s.mean
	n := s.n + o.n
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of samples.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if !s.haveSample {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if !s.haveSample {
		return 0
	}
	return s.max
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy of xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a histogram over [Lo, Hi) with underflow and overflow
// buckets. By default the buckets are equal-width; a non-nil Edges gives
// explicit ascending bucket boundaries (len(Buckets)+1 of them, with
// Edges[0] == Lo and Edges[len(Buckets)] == Hi), which is how
// NewLogHistogram builds geometric latency buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	// Edges, when non-nil, holds the explicit bucket boundaries; bucket i
	// covers [Edges[i], Edges[i+1]).
	Edges []float64
	Under int64
	Over  int64
	n     int64
}

// NewHistogram creates a histogram with nbuckets equal-width buckets
// covering [lo, hi). It panics if hi <= lo or nbuckets < 1.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if hi <= lo || nbuckets < 1 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, nbuckets)}
}

// NewLogHistogram creates a histogram with nbuckets geometrically spaced
// buckets covering [lo, hi) — constant relative resolution, the right
// shape for latencies spanning decades (fsync on tmpfs vs spinning rust).
// It panics if lo <= 0, hi <= lo, or nbuckets < 1.
func NewLogHistogram(lo, hi float64, nbuckets int) *Histogram {
	if lo <= 0 || hi <= lo || nbuckets < 1 {
		panic("stats: invalid log histogram bounds")
	}
	edges := make([]float64, nbuckets+1)
	ratio := math.Log(hi / lo)
	for i := range edges {
		edges[i] = lo * math.Exp(ratio*float64(i)/float64(nbuckets))
	}
	edges[0] = lo
	edges[nbuckets] = hi
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, nbuckets), Edges: edges}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		var i int
		if h.Edges != nil {
			// First edge strictly above x, minus one, is x's bucket.
			i = sort.SearchFloat64s(h.Edges, x)
			if i < len(h.Edges) && h.Edges[i] == x {
				i++ // buckets are half-open [lo, hi): x on an edge belongs above
			}
			i--
		} else {
			i = int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		}
		if i >= len(h.Buckets) { // guard float rounding at the top edge
			i = len(h.Buckets) - 1
		}
		if i < 0 {
			i = 0
		}
		h.Buckets[i]++
	}
}

// N returns the total number of recorded samples including out-of-range.
func (h *Histogram) N() int64 { return h.n }

// BucketLo returns the lower edge of bucket i.
func (h *Histogram) BucketLo(i int) float64 {
	if h.Edges != nil {
		return h.Edges[i]
	}
	return h.Lo + (h.Hi-h.Lo)*float64(i)/float64(len(h.Buckets))
}

// BucketHi returns the upper edge of bucket i.
func (h *Histogram) BucketHi(i int) float64 {
	if h.Edges != nil {
		return h.Edges[i+1]
	}
	return h.Lo + (h.Hi-h.Lo)*float64(i+1)/float64(len(h.Buckets))
}

// Quantile returns the q-th quantile (0 <= q <= 1) estimated from the
// bucket counts by linear interpolation inside the containing bucket.
// Underflow mass is attributed to the Lo edge and overflow mass to the Hi
// edge, so the estimate is clamped to [Lo, Hi]. It returns NaN for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := float64(h.Under)
	if target <= cum {
		return h.Lo
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			lo := h.BucketLo(i)
			return lo + (h.BucketHi(i)-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return h.Hi // the target rank lies in the overflow mass
}

// Merge folds another histogram with identical bounds and bucket count into
// this one — the aggregation step behind merged per-shard latency
// histograms. Merging a nil or empty histogram is a no-op; mismatched
// shapes are an error.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Buckets) != len(h.Buckets) ||
		len(o.Edges) != len(h.Edges) {
		return fmt.Errorf("stats: merge shape mismatch: [%g,%g)x%d vs [%g,%g)x%d",
			h.Lo, h.Hi, len(h.Buckets), o.Lo, o.Hi, len(o.Buckets))
	}
	for i := range h.Edges {
		if o.Edges[i] != h.Edges[i] {
			return fmt.Errorf("stats: merge edge mismatch at %d: %g vs %g",
				i, h.Edges[i], o.Edges[i])
		}
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.n += o.n
	return nil
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Buckets = append([]int64(nil), h.Buckets...)
	if h.Edges != nil {
		c.Edges = append([]float64(nil), h.Edges...)
	}
	return &c
}

// histogramJSON is the wire form of Histogram. The unexported sample count
// is carried explicitly so a histogram survives a decode/re-encode hop
// (e.g. a routing proxy) with Quantile and N intact.
type histogramJSON struct {
	Lo      float64   `json:"lo"`
	Hi      float64   `json:"hi"`
	Buckets []int64   `json:"buckets"`
	Edges   []float64 `json:"edges,omitempty"`
	Under   int64     `json:"under,omitempty"`
	Over    int64     `json:"over,omitempty"`
	N       int64     `json:"n"`
}

// MarshalJSON encodes the histogram including its sample count.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Lo: h.Lo, Hi: h.Hi, Buckets: h.Buckets, Edges: h.Edges,
		Under: h.Under, Over: h.Over, N: h.n,
	})
}

// UnmarshalJSON decodes a histogram produced by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.Lo, h.Hi, h.Buckets, h.Edges = w.Lo, w.Hi, w.Buckets, w.Edges
	h.Under, h.Over, h.n = w.Under, w.Over, w.N
	return nil
}

// Render draws the histogram as rows of "lo..hi count bar" text, a
// plain-terminal stand-in for the paper's figure panels.
func (h *Histogram) Render(width int) string {
	var max int64
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	if h.Under > 0 {
		fmt.Fprintf(&b, "%12s %8d\n", "<lo", h.Under)
	}
	for i, c := range h.Buckets {
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		fmt.Fprintf(&b, "%12.4g %8d %s\n", h.BucketLo(i), c, strings.Repeat("#", bar))
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%12s %8d\n", ">=hi", h.Over)
	}
	return b.String()
}
