package stats

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Digest returns a hex SHA-256 over the figure's complete contents — id,
// caption, axis labels, every series label, every point (exact float64
// bits, not a printed rounding), and every note. Two figures digest equal
// iff they are bit-for-bit the same result, which is what the
// golden-determinism tests pin across engine rewrites: any change to event
// ordering, slip accounting or RNG consumption shows up here.
func (f *Figure) Digest() string {
	h := sha256.New()
	writeStr(h, f.ID)
	writeStr(h, f.Caption)
	writeStr(h, f.XLabel)
	writeStr(h, f.YLabel)
	writeUint(h, uint64(len(f.Series)))
	for _, s := range f.Series {
		writeStr(h, s.Label)
		writeUint(h, uint64(len(s.Points)))
		for _, p := range s.Points {
			writeFloat(h, p.X)
			writeFloat(h, p.Y)
			writeFloat(h, p.Err)
		}
	}
	writeUint(h, uint64(len(f.Notes)))
	for _, n := range f.Notes {
		writeStr(h, n)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeStr(h hash.Hash, s string) {
	writeUint(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeUint(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func writeFloat(h hash.Hash, v float64) {
	writeUint(h, math.Float64bits(v))
}
