package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("zero value not neutral")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %f", s.Mean())
	}
	// Sample std of this classic set is sqrt(32/7).
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %f", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("negative handling wrong: %s", s.String())
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		// Keep magnitudes where the d*d intermediate cannot overflow; the
		// summaries in this repo hold cycle counts and nanoseconds.
		sane := func(v float64) bool {
			return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100
		}
		var whole, left, right Summary
		for _, v := range a {
			if !sane(v) {
				return true
			}
			whole.Add(v)
			left.Add(v)
		}
		for _, v := range b {
			if !sane(v) {
				return true
			}
			whole.Add(v)
			right.Add(v)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(whole.Mean()))
		return math.Abs(left.Mean()-whole.Mean()) < tol &&
			math.Abs(left.Var()-whole.Var()) < 1e-6*(1+whole.Var()) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3.5, 5)
	for i := 0; i < 5; i++ {
		b.Add(3.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Fatalf("AddN mismatch")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %f", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %f", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %f", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %f", q)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatalf("Quantile sorted its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatalf("empty quantile not NaN")
	}
	// Clamping.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Fatalf("quantile clamping failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	if h.BucketLo(1) != 2 {
		t.Fatalf("BucketLo(1) = %f", h.BucketLo(1))
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "<lo") {
		t.Fatalf("render missing parts:\n%s", out)
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	// A value just below the top edge must land in the last bucket even
	// under float rounding.
	h.Add(math.Nextafter(1, 0))
	if h.Buckets[2] != 1 || h.Over != 0 {
		t.Fatalf("edge value misplaced: %v over=%d", h.Buckets, h.Over)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for hi <= lo")
		}
	}()
	NewHistogram(1, 1, 3)
}

// Property: every added value is counted exactly once.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := int64(0)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		var sum int64 = h.Under + h.Over
		for _, c := range h.Buckets {
			sum += c
		}
		return sum == n && h.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureFormatAndPlot(t *testing.T) {
	fig := NewFigure("figX", "caption", "x", "y")
	s := fig.AddSeries("a")
	s.Add(1, 10)
	s.Add(2, 20)
	s2 := fig.AddSeries("b")
	s2.AddErr(1, 5, 0.5)
	fig.Note("hello %d", 42)
	out := fig.Format()
	for _, want := range []string{"figX", "caption", `series "a"`, "hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	plot := fig.Plot(40, 10)
	if !strings.Contains(plot, "o") || !strings.Contains(plot, "x") {
		t.Fatalf("plot missing series marks:\n%s", plot)
	}
	if (&Figure{}).Plot(10, 5) != "(empty figure)\n" {
		t.Fatalf("empty plot output wrong")
	}
}

func TestSeriesSortByX(t *testing.T) {
	s := &Series{}
	s.Add(3, 1)
	s.Add(1, 2)
	s.Add(2, 3)
	s.SortByX()
	if s.Points[0].X != 1 || s.Points[2].X != 3 {
		t.Fatalf("not sorted: %+v", s.Points)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram quantile should be NaN, got %g", h.Quantile(0.5))
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 7; i++ {
		h.Add(45) // all mass in bucket [40,50)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		v := h.Quantile(q)
		if v < 40 || v > 50 {
			t.Fatalf("q=%g landed at %g, want inside the single occupied bucket [40,50)", q, v)
		}
	}
	// Clamping: quantiles never escape [Lo, Hi].
	if v := h.Quantile(0); v < 0 || v > 100 {
		t.Fatalf("q=0 escaped range: %g", v)
	}
	if v := h.Quantile(1); v < 0 || v > 100 {
		t.Fatalf("q=1 escaped range: %g", v)
	}
}

func TestHistogramQuantileOutOfRangeMass(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(-5) // underflow
	h.Add(-7)
	h.Add(500) // overflow
	if v := h.Quantile(0.1); v != 0 {
		t.Fatalf("underflow-dominated quantile = %g, want Lo edge 0", v)
	}
	if v := h.Quantile(0.99); v != 100 {
		t.Fatalf("overflow-dominated quantile = %g, want Hi edge 100", v)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := NewHistogram(0, 100, 100) // 1-wide buckets
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	for _, q := range []float64{0.25, 0.5, 0.9} {
		v := h.Quantile(q)
		want := q * 100
		if math.Abs(v-want) > 1.5 {
			t.Fatalf("q=%g: got %g, want ~%g", q, v, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 100, 10)
	b := NewHistogram(0, 100, 10)
	seq := NewHistogram(0, 100, 10)
	for i := 0; i < 50; i++ {
		x := float64(i * 3 % 120) // spills into overflow sometimes
		a.Add(x)
		seq.Add(x)
	}
	for i := 0; i < 30; i++ {
		x := float64(i) - 3 // some underflow
		b.Add(x)
		seq.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.N() != seq.N() || a.Under != seq.Under || a.Over != seq.Over {
		t.Fatalf("merged totals differ: n=%d/%d under=%d/%d over=%d/%d",
			a.N(), seq.N(), a.Under, seq.Under, a.Over, seq.Over)
	}
	for i := range a.Buckets {
		if a.Buckets[i] != seq.Buckets[i] {
			t.Fatalf("bucket %d: merged %d != sequential %d", i, a.Buckets[i], seq.Buckets[i])
		}
	}
	if a.Quantile(0.5) != seq.Quantile(0.5) {
		t.Fatalf("merged median %g != sequential %g", a.Quantile(0.5), seq.Quantile(0.5))
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	a.Add(3)
	if err := a.Merge(nil); err != nil || a.N() != 1 {
		t.Fatalf("nil merge changed state or errored: %v n=%d", err, a.N())
	}
	if err := a.Merge(NewHistogram(0, 10, 5)); err != nil || a.N() != 1 {
		t.Fatalf("empty merge changed state or errored: %v n=%d", err, a.N())
	}
	// Shape mismatch must error (only detected once the source has data).
	bad := NewHistogram(0, 20, 5)
	bad.Add(1)
	if err := a.Merge(bad); err == nil {
		t.Fatalf("shape-mismatched merge silently accepted")
	}
}

func TestHistogramClone(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	a.Add(1)
	c := a.Clone()
	c.Add(2)
	if a.N() != 1 || c.N() != 2 {
		t.Fatalf("clone not independent: a.n=%d c.n=%d", a.N(), c.N())
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	if len(h.Edges) != 4 || h.Edges[0] != 1 || h.Edges[3] != 1000 {
		t.Fatalf("edges = %v", h.Edges)
	}
	// Geometric spacing: each edge is 10x the previous for 1..1000 over 3.
	if math.Abs(h.Edges[1]-10) > 1e-9 || math.Abs(h.Edges[2]-100) > 1e-9 {
		t.Fatalf("edges not geometric: %v", h.Edges)
	}
	if h.BucketLo(1) != h.Edges[1] || h.BucketHi(1) != h.Edges[2] {
		t.Fatalf("bucket edges: [%g, %g)", h.BucketLo(1), h.BucketHi(1))
	}
	for _, bad := range []func(){
		func() { NewLogHistogram(0, 10, 4) },
		func() { NewLogHistogram(-1, 10, 4) },
		func() { NewLogHistogram(10, 10, 4) },
		func() { NewLogHistogram(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid log histogram did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestLogHistogramAddPlacement(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3) // buckets [1,10) [10,100) [100,1000)
	for _, x := range []float64{0.5, 1, 5, 9.999, 10, 99, 100, 999, 1000, 5000} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	// Half-open buckets: an exact edge sample belongs to the bucket above.
	if h.Buckets[0] != 3 || h.Buckets[1] != 2 || h.Buckets[2] != 2 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.N() != 10 {
		t.Fatalf("n = %d", h.N())
	}
}

func TestLogHistogramQuantileUsesGeometricWidths(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	// All mass in [10, 100): the median must interpolate inside it.
	for i := 0; i < 100; i++ {
		h.Add(50)
	}
	if q := h.Quantile(0.5); q < 10 || q >= 100 {
		t.Fatalf("p50 = %g, want inside [10, 100)", q)
	}
	if q := h.Quantile(0); q < 1 || q > 10 {
		t.Fatalf("p0 = %g", q)
	}
}

func TestLogHistogramMergeAndClone(t *testing.T) {
	a := NewLogHistogram(1, 1000, 3)
	b := NewLogHistogram(1, 1000, 3)
	a.Add(5)
	b.Add(50)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.N() != 2 || a.Buckets[0] != 1 || a.Buckets[1] != 1 {
		t.Fatalf("merged: n=%d buckets=%v", a.N(), a.Buckets)
	}
	// A linear histogram with the same bounds has a different shape.
	if err := a.Merge(NewHistogram(1, 1000, 3).Clone()); err != nil {
		t.Fatalf("merging empty linear histogram should no-op: %v", err)
	}
	lin := NewHistogram(1, 1000, 3)
	lin.Add(5)
	if err := a.Merge(lin); err == nil {
		t.Fatalf("merged a linear histogram into a log one")
	}
	c := a.Clone()
	c.Add(2)
	c.Edges[0] = 99
	if a.N() != 2 || a.Edges[0] != 1 {
		t.Fatalf("clone shares storage with the original")
	}
}
