// Package ksync provides the streamlined kernel synchronization primitives
// of Section 2 — wait queues (event signaling), mutexes and semaphores —
// built directly on the scheduler's block/wake machinery. Their hot paths
// have deterministic bounded length, in keeping with the platform's
// predictability requirements.
//
// All primitives are expressed as flow steps (core.Step): a thread acquires
// or waits as one stage of its program, and signalling may come from any
// simulation context.
package ksync

import (
	"hrtsched/internal/core"
)

// WaitQueue is an event-signaling primitive: threads wait until a
// condition holds; signallers wake one or all waiters. Spurious wakeups
// are absorbed by re-checking the condition.
type WaitQueue struct {
	k       *core.Kernel
	waiters []*core.Thread

	Signals int64
	Waits   int64
}

// NewWaitQueue creates a wait queue on the kernel.
func NewWaitQueue(k *core.Kernel) *WaitQueue {
	return &WaitQueue{k: k}
}

// Waiters returns the number of blocked threads.
func (w *WaitQueue) Waiters() int { return len(w.waiters) }

// WaitSteps returns a flow stage that blocks the thread until cond holds.
// cond is evaluated in thread context before waiting and again after every
// wakeup.
func (w *WaitQueue) WaitSteps(cond func(tc *core.ThreadCtx) bool, next core.Step) core.Step {
	var loop core.Step
	loop = func(tc *core.ThreadCtx) (core.Action, core.Step) {
		if cond(tc) {
			return nil, next
		}
		w.Waits++
		w.waiters = append(w.waiters, tc.T)
		return core.Block{}, loop
	}
	return loop
}

// Signal wakes up to n waiters (all of them if n <= 0).
func (w *WaitQueue) Signal(n int) {
	w.Signals++
	if n <= 0 || n > len(w.waiters) {
		n = len(w.waiters)
	}
	woken := w.waiters[:n]
	w.waiters = append([]*core.Thread(nil), w.waiters[n:]...)
	for _, t := range woken {
		w.k.Wake(t)
	}
}

// SignalAll wakes every waiter.
func (w *WaitQueue) SignalAll() { w.Signal(0) }

// Mutex is a blocking kernel mutex with FIFO handoff.
type Mutex struct {
	k      *core.Kernel
	owner  *core.Thread
	queue  []*core.Thread
	Aquire int64
	Waited int64
}

// NewMutex creates a mutex.
func NewMutex(k *core.Kernel) *Mutex { return &Mutex{k: k} }

// Owner returns the holding thread, or nil.
func (m *Mutex) Owner() *core.Thread { return m.owner }

// LockSteps returns a flow stage acquiring the mutex.
func (m *Mutex) LockSteps(next core.Step) core.Step {
	var attempt core.Step
	attempt = func(tc *core.ThreadCtx) (core.Action, core.Step) {
		if m.owner == nil {
			m.owner = tc.T
			m.Aquire++
			return nil, next
		}
		if m.owner == tc.T {
			panic("ksync: recursive lock")
		}
		// FIFO handoff: on unlock, ownership transfers to the queue head,
		// so a woken thread finds itself already the owner.
		m.Waited++
		m.queue = append(m.queue, tc.T)
		return core.Block{}, func(tc2 *core.ThreadCtx) (core.Action, core.Step) {
			if m.owner != tc2.T {
				// Spurious wake; retry.
				return nil, attempt
			}
			m.Aquire++
			return nil, next
		}
	}
	return attempt
}

// UnlockSteps returns a flow stage releasing the mutex. It panics if the
// caller does not hold it.
func (m *Mutex) UnlockSteps(next core.Step) core.Step {
	return core.DoCall(func(tc *core.ThreadCtx) {
		m.unlock(tc.T)
	}, func(tc *core.ThreadCtx) (core.Action, core.Step) { return nil, next })
}

func (m *Mutex) unlock(t *core.Thread) {
	if m.owner != t {
		panic("ksync: unlock by non-owner")
	}
	if len(m.queue) == 0 {
		m.owner = nil
		return
	}
	next := m.queue[0]
	m.queue = append([]*core.Thread(nil), m.queue[1:]...)
	m.owner = next
	m.k.Wake(next)
}

// WithLockSteps brackets body steps with lock/unlock.
func (m *Mutex) WithLockSteps(body func(next core.Step) core.Step, next core.Step) core.Step {
	return m.LockSteps(body(m.UnlockSteps(next)))
}

// Semaphore is a counting semaphore with blocking acquire.
type Semaphore struct {
	k     *core.Kernel
	count int64
	queue []*core.Thread
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *core.Kernel, initial int64) *Semaphore {
	return &Semaphore{k: k, count: initial}
}

// Count returns the available permits (may be negative while threads are
// queued).
func (s *Semaphore) Count() int64 { return s.count }

// AcquireSteps returns a flow stage taking one permit, blocking if none is
// available.
func (s *Semaphore) AcquireSteps(next core.Step) core.Step {
	return func(tc *core.ThreadCtx) (core.Action, core.Step) {
		s.count--
		if s.count >= 0 {
			return nil, next
		}
		s.queue = append(s.queue, tc.T)
		return core.Block{}, func(tc2 *core.ThreadCtx) (core.Action, core.Step) {
			return nil, next // handoff: the release granted our permit
		}
	}
}

// Release returns one permit, waking a queued thread if any. Callable from
// any simulation context.
func (s *Semaphore) Release() {
	s.count++
	if len(s.queue) > 0 {
		t := s.queue[0]
		s.queue = append([]*core.Thread(nil), s.queue[1:]...)
		s.k.Wake(t)
	}
}

// ReleaseSteps is Release as a flow stage.
func (s *Semaphore) ReleaseSteps(next core.Step) core.Step {
	return core.DoCall(func(*core.ThreadCtx) { s.Release() },
		func(tc *core.ThreadCtx) (core.Action, core.Step) { return nil, next })
}
