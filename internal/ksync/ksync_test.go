package ksync

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func boot(t *testing.T, ncpus int, seed uint64) *core.Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	return core.Boot(m, core.DefaultConfig(spec))
}

func TestWaitQueueSignalOne(t *testing.T) {
	k := boot(t, 2, 131)
	wq := NewWaitQueue(k)
	ready := false
	woke := 0
	flow := wq.WaitSteps(func(tc *core.ThreadCtx) bool { return ready },
		core.DoCall(func(*core.ThreadCtx) { woke++ }, nil))
	k.Spawn("w1", 0, core.FlowProgram(flow))
	k.Spawn("w2", 1, core.FlowProgram(flow))
	k.RunNs(5_000_000)
	if wq.Waiters() != 2 || woke != 0 {
		t.Fatalf("waiters=%d woke=%d", wq.Waiters(), woke)
	}
	// Signal without satisfying the condition: spurious wake, re-block.
	wq.Signal(1)
	k.RunNs(5_000_000)
	if woke != 0 || wq.Waiters() != 2 {
		t.Fatalf("spurious wake passed the condition: woke=%d waiters=%d", woke, wq.Waiters())
	}
	ready = true
	wq.SignalAll()
	k.RunNs(5_000_000)
	if woke != 2 {
		t.Fatalf("woke=%d after broadcast", woke)
	}
}

func TestWaitQueueConditionShortCircuit(t *testing.T) {
	k := boot(t, 1, 132)
	wq := NewWaitQueue(k)
	done := false
	flow := wq.WaitSteps(func(*core.ThreadCtx) bool { return true },
		core.DoCall(func(*core.ThreadCtx) { done = true }, nil))
	k.Spawn("nc", 0, core.FlowProgram(flow))
	k.RunNs(2_000_000)
	if !done || wq.Waits != 0 {
		t.Fatalf("true condition still waited (waits=%d)", wq.Waits)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := boot(t, 4, 133)
	mu := NewMutex(k)
	inside, maxInside, entries := 0, 0, 0
	body := func(next core.Step) core.Step {
		return core.DoCall(func(*core.ThreadCtx) {
			inside++
			entries++
			if inside > maxInside {
				maxInside = inside
			}
		}, core.DoCompute(200_000, core.DoCall(func(*core.ThreadCtx) { inside-- }, next)))
	}
	for i := 0; i < 4; i++ {
		k.Spawn("m", i, core.FlowProgram(mu.WithLockSteps(body, nil)))
	}
	k.RunNs(50_000_000)
	if entries != 4 {
		t.Fatalf("entries = %d", entries)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d threads inside", maxInside)
	}
	if mu.Owner() != nil {
		t.Fatalf("mutex still held")
	}
	if mu.Waited == 0 {
		t.Fatalf("no contention observed — test is vacuous")
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	k := boot(t, 1, 134)
	mu := NewMutex(k)
	var order []string
	body := func(next core.Step) core.Step {
		return core.DoCall(func(tc *core.ThreadCtx) {
			order = append(order, tc.T.Name())
		}, core.DoCompute(100_000, next))
	}
	// All on one CPU: spawn order = queue order.
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, 0, core.FlowProgram(mu.WithLockSteps(body, nil)))
	}
	k.RunNs(50_000_000)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("handoff order: %v", order)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := boot(t, 6, 135)
	sem := NewSemaphore(k, 2)
	inside, maxInside, total := 0, 0, 0
	for i := 0; i < 6; i++ {
		flow := sem.AcquireSteps(core.Chain(
			func(n core.Step) core.Step {
				return core.DoCall(func(*core.ThreadCtx) {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
				}, n)
			},
			func(n core.Step) core.Step { return core.DoCompute(300_000, n) },
			func(n core.Step) core.Step {
				return core.DoCall(func(*core.ThreadCtx) { inside--; total++ }, n)
			},
			func(n core.Step) core.Step { return sem.ReleaseSteps(n) },
		))
		k.Spawn("s", i, core.FlowProgram(flow))
	}
	k.RunNs(100_000_000)
	if total != 6 {
		t.Fatalf("completed %d of 6", total)
	}
	if maxInside > 2 {
		t.Fatalf("semaphore admitted %d concurrent holders", maxInside)
	}
	if maxInside < 2 {
		t.Fatalf("semaphore never reached its limit (%d)", maxInside)
	}
	if sem.Count() != 2 {
		t.Fatalf("count = %d after all released", sem.Count())
	}
}

func TestSignalLatencyBounded(t *testing.T) {
	// Event signaling cost: signal -> wake -> dispatch is one kick IPI plus
	// one scheduler invocation — microseconds, not milliseconds.
	k := boot(t, 2, 136)
	wq := NewWaitQueue(k)
	ready := false
	var wokeNs int64
	flow := wq.WaitSteps(func(*core.ThreadCtx) bool { return ready },
		core.DoCall(func(tc *core.ThreadCtx) { wokeNs = tc.NowNs }, nil))
	k.Spawn("sleeper", 1, core.FlowProgram(flow))
	k.RunNs(5_000_000)
	ready = true
	signalNs := k.NowNs()
	wq.SignalAll()
	k.RunNs(5_000_000)
	if wokeNs == 0 {
		t.Fatalf("never woke")
	}
	latency := wokeNs - signalNs
	if latency <= 0 || latency > 20_000 {
		t.Fatalf("signal latency %d ns outside (0, 20us]", latency)
	}
}
