package dag

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"hrtsched/internal/plan"
)

// diamond is the canonical 4-node test graph:
//
//	    0 (100us)
//	   / \
//	  1   2 (300us, 200us)
//	   \ /
//	    3 (100us)
//
// Critical path 0->1->3 = 500us, volume 700us.
func diamond() *Task {
	return &Task{
		Name: "diamond",
		Nodes: []Node{
			{Name: "src", WCETNs: 100_000},
			{Name: "left", WCETNs: 300_000},
			{Name: "right", WCETNs: 200_000},
			{Name: "sink", WCETNs: 100_000},
		},
		Edges:      []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		PeriodNs:   2_000_000,
		DeadlineNs: 1_000_000,
		Cores:      2,
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectionCodes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Task)
		code   ErrorCode
	}{
		{"no nodes", func(d *Task) { d.Nodes = nil; d.Edges = nil }, ErrNoNodes},
		{"zero wcet", func(d *Task) { d.Nodes[1].WCETNs = 0 }, ErrBadWCET},
		{"negative wcet", func(d *Task) { d.Nodes[3].WCETNs = -5 }, ErrBadWCET},
		{"zero period", func(d *Task) { d.PeriodNs = 0 }, ErrBadPeriod},
		{"negative deadline", func(d *Task) { d.DeadlineNs = -1 }, ErrBadDeadline},
		{"deadline beyond period", func(d *Task) { d.DeadlineNs = d.PeriodNs + 1 }, ErrBadDeadline},
		{"zero cores", func(d *Task) { d.Cores = 0 }, ErrBadCores},
		{"edge from out of range", func(d *Task) { d.Edges[0].From = 9 }, ErrEdgeRange},
		{"edge to out of range", func(d *Task) { d.Edges[0].To = -1 }, ErrEdgeRange},
		{"self edge", func(d *Task) { d.Edges[0] = Edge{2, 2} }, ErrSelfEdge},
		{"duplicate edge", func(d *Task) { d.Edges = append(d.Edges, Edge{0, 1}) }, ErrDupEdge},
		{"cycle", func(d *Task) { d.Edges = append(d.Edges, Edge{3, 0}) }, ErrCycle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := diamond()
			tc.mutate(d)
			err := d.Validate()
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("Validate() = %v, want *ValidationError", err)
			}
			if verr.Code != tc.code {
				t.Fatalf("code = %q, want %q (err: %v)", verr.Code, tc.code, verr)
			}
		})
	}
}

func TestValidateCycleCarriesPath(t *testing.T) {
	d := diamond()
	d.Edges = append(d.Edges, Edge{3, 0})
	err := d.Validate()
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Code != ErrCycle {
		t.Fatalf("Validate() = %v, want cycle error", err)
	}
	want := []int{0, 1, 3}
	if !reflect.DeepEqual(verr.Path, want) {
		t.Fatalf("cycle path = %v, want %v", verr.Path, want)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	d := diamond()
	want := []int{0, 1, 2, 3}
	for i := 0; i < 5; i++ {
		if got := d.TopoOrder(); !reflect.DeepEqual(got, want) {
			t.Fatalf("TopoOrder() = %v, want %v", got, want)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	d := diamond()
	lenNs, path := d.CriticalPath()
	if lenNs != 500_000 {
		t.Fatalf("critical path length = %d, want 500000", lenNs)
	}
	if want := []int{0, 1, 3}; !reflect.DeepEqual(path, want) {
		t.Fatalf("critical path = %v, want %v", path, want)
	}
	if v := d.Volume(); v != 700_000 {
		t.Fatalf("volume = %d, want 700000", v)
	}
}

func TestCriticalPathNoEdges(t *testing.T) {
	d := &Task{
		Nodes:    []Node{{WCETNs: 10}, {WCETNs: 30}, {WCETNs: 20}},
		PeriodNs: 100,
		Cores:    3,
	}
	lenNs, path := d.CriticalPath()
	if lenNs != 30 || !reflect.DeepEqual(path, []int{1}) {
		t.Fatalf("CriticalPath() = %d %v, want 30 [1]", lenNs, path)
	}
}

func TestClassicalBound(t *testing.T) {
	d := diamond()
	r := Classical{}.Analyze(d)
	// R = L + ceil((V-L)/m) = 500us + ceil(200us/2) = 600us <= D = 1ms.
	if !r.Admit || r.Reason != OK {
		t.Fatalf("verdict = %+v, want admit/ok", r)
	}
	if r.BoundNs != 600_000 || r.CriticalPathNs != 500_000 || r.VolumeNs != 700_000 || r.InterferenceNs != 200_000 {
		t.Fatalf("bound fields = %+v", r)
	}
	if want := []int{0, 1, 3}; !reflect.DeepEqual(r.BlockingPath, want) {
		t.Fatalf("blocking path = %v, want %v", r.BlockingPath, want)
	}
	if r.Utilization != 0.35 {
		t.Fatalf("utilization = %v, want 0.35", r.Utilization)
	}
}

func TestClassicalDeadlineMiss(t *testing.T) {
	d := diamond()
	d.DeadlineNs = 550_000 // L = 500us fits, R = 600us does not.
	r := Classical{}.Analyze(d)
	if r.Admit || r.Reason != DeadlineMiss {
		t.Fatalf("verdict = %+v, want deadline-miss", r)
	}
}

func TestClassicalPathOverrun(t *testing.T) {
	d := diamond()
	d.DeadlineNs = 400_000 // below L = 500us: no core count helps.
	r := Classical{}.Analyze(d)
	if r.Admit || r.Reason != PathOverrun {
		t.Fatalf("verdict = %+v, want path-overrun", r)
	}
}

func TestAlphaBetaNeverLooserThanClassical(t *testing.T) {
	d := diamond()
	// Add an independent straggler that outranks nothing on the path
	// under longest-path-first: its chain (50us) is shorter than every
	// path node's chain, so it drops out of the interference set.
	d.Nodes = append(d.Nodes, Node{Name: "straggler", WCETNs: 50_000})
	c := Classical{}.Analyze(d)
	ab := AlphaBeta{}.Analyze(d)
	if ab.BoundNs > c.BoundNs {
		t.Fatalf("alpha-beta bound %d looser than classical %d", ab.BoundNs, c.BoundNs)
	}
	if ab.InterferenceNs >= c.InterferenceNs {
		t.Fatalf("straggler not filtered: alpha-beta interference %d, classical %d",
			ab.InterferenceNs, c.InterferenceNs)
	}
}

func TestPriorityPolicies(t *testing.T) {
	d := diamond()
	topo := TopoOrderPolicy{}.Assign(d)
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(topo, want) {
		t.Fatalf("topo ranks = %v, want %v", topo, want)
	}
	// Downward chains: 0: 500us, 1: 400us, 2: 300us, 3: 100us.
	lpf := LongestPathFirstPolicy{}.Assign(d)
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(lpf, want) {
		t.Fatalf("lpf ranks = %v, want %v", lpf, want)
	}
	// Make node 2 the heavy branch; it must outrank node 1.
	d.Nodes[2].WCETNs = 600_000
	lpf = LongestPathFirstPolicy{}.Assign(d)
	if lpf[2] >= lpf[1] {
		t.Fatalf("heavy branch not promoted: ranks %v", lpf)
	}
}

func TestReasonTags(t *testing.T) {
	for r, want := range map[Reason]string{OK: "ok", PathOverrun: "path-overrun", DeadlineMiss: "deadline-miss"} {
		if r.String() != want {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
		b, err := json.Marshal(r)
		if err != nil || string(b) != `"`+want+`"` {
			t.Fatalf("marshal %v = %s, %v", r, b, err)
		}
		var back Reason
		if err := json.Unmarshal(b, &back); err != nil || back != r {
			t.Fatalf("unmarshal %s = %v, %v", b, back, err)
		}
	}
	var bad Reason
	if err := bad.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("UnmarshalText accepted junk")
	}
}

func TestNewAnalyzer(t *testing.T) {
	for _, name := range append(AnalyzerNames(), "") {
		a, err := NewAnalyzer(name)
		if err != nil || a == nil {
			t.Fatalf("NewAnalyzer(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := NewAnalyzer("bogus"); err == nil {
		t.Fatal("NewAnalyzer accepted an unknown name")
	}
	a, _ := NewAnalyzer("")
	if a.Name() != "classical" {
		t.Fatalf("default analyzer = %q, want classical", a.Name())
	}
}

func TestPlanRegistryIntegration(t *testing.T) {
	spec := plan.Spec{OverheadNs: 4_600, UtilizationLimit: 0.79}
	for _, name := range []string{"dag-classical", "dag-alpha-beta"} {
		a, err := plan.NewAnalysis(name, spec)
		if err != nil {
			t.Fatalf("NewAnalysis(%q) = %v", name, err)
		}
		if a.Spec() != spec {
			t.Fatalf("spec = %+v, want %+v", a.Spec(), spec)
		}
		// The periodic half must agree with the default EDF analysis bit
		// for bit — a DAG plug-in changes nothing about periodic verdicts.
		set := plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 200_000}, {PeriodNs: 500_000, SliceNs: 100_000}}
		got, want := a.Analyze(set), plan.Analyze(spec, set)
		if !plan.VerdictsEquivalent(got, want) {
			t.Fatalf("%s periodic verdict diverged: %+v vs %+v", name, got, want)
		}
		eng := a.NewEngine()
		if v := eng.TryGang(set); !v.Admit {
			t.Fatalf("engine rejected %+v", v)
		}
	}
}

func TestAnalyzeDAGAndServerTask(t *testing.T) {
	spec := plan.Spec{OverheadNs: 4_600, UtilizationLimit: 0.79}
	a := New(spec, Classical{})
	if a.Name() != "dag-classical" {
		t.Fatalf("Name() = %q", a.Name())
	}
	d := diamond()
	r, err := a.AnalyzeDAG(d)
	if err != nil || !r.Admit {
		t.Fatalf("AnalyzeDAG = %+v, %v", r, err)
	}
	st := ServerTask(d, r)
	if st.PeriodNs != d.PeriodNs || st.SliceNs != r.BoundNs {
		t.Fatalf("server task = %+v, want period %d slice %d", st, d.PeriodNs, r.BoundNs)
	}
	// Structural rejection comes back as a typed error, not a Result.
	bad := diamond()
	bad.Edges = append(bad.Edges, Edge{3, 0})
	if _, err := a.AnalyzeDAG(bad); err == nil {
		t.Fatal("AnalyzeDAG accepted a cyclic task")
	}
}
