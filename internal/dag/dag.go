// Package dag is the parallel task model the admission service grew
// beyond independent periodic tasks: a task is a directed acyclic graph
// of nodes with worst-case execution times and precedence edges,
// released every period with a (constrained) relative deadline, and
// scheduled across a gang of cores. Admission is a response-time
// analysis: a bound R on the makespan of one release, admitted when
// R <= deadline. The admitted DAG then reserves a derived periodic
// server task (period T, slice R) through the ordinary plan machinery —
// the RT-Gang reduction: one gang-scheduled reservation whose budget
// covers the whole graph, so everything downstream (placement,
// durability, replication) handles DAGs exactly like periodic sets.
//
// Everything here is deterministic and side-effect-free: equal tasks
// produce identical validation outcomes and identical bounds.
package dag

import (
	"fmt"
	"strings"
)

// Node is one unit of work in a DAG task.
type Node struct {
	// Name is an optional label, used in error paths; defaults to the
	// node's index when empty.
	Name string `json:"name,omitempty"`
	// WCETNs is the node's worst-case execution time in nanoseconds.
	WCETNs int64 `json:"wcet_ns"`
}

// Edge is a precedence constraint: From must complete before To starts.
// Endpoints are node indexes.
type Edge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Task is one periodic DAG task.
type Task struct {
	// Name identifies the task in placements and errors.
	Name string `json:"name,omitempty"`
	// Nodes are the units of work, referenced by index from Edges.
	Nodes []Node `json:"nodes"`
	// Edges are the precedence constraints.
	Edges []Edge `json:"edges,omitempty"`
	// PeriodNs is the release period.
	PeriodNs int64 `json:"period_ns"`
	// DeadlineNs is the relative deadline; 0 means implicit (= period).
	// Constrained deadlines only: DeadlineNs > PeriodNs is rejected.
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
	// Cores is the gang width the response-time bound is computed for.
	Cores int `json:"cores"`
}

// Deadline returns the effective relative deadline (period when implicit).
func (t *Task) Deadline() int64 {
	if t.DeadlineNs == 0 {
		return t.PeriodNs
	}
	return t.DeadlineNs
}

// Volume returns the summed WCET of every node (the work of one release).
func (t *Task) Volume() int64 {
	var v int64
	for _, n := range t.Nodes {
		v += n.WCETNs
	}
	return v
}

// ErrorCode is the typed reason a task failed structural validation.
// Codes are stable wire tags (the HTTP layer surfaces them verbatim).
type ErrorCode string

const (
	// ErrNoNodes: the task has no nodes.
	ErrNoNodes ErrorCode = "no-nodes"
	// ErrTooManyNodes: the node count exceeds the wire format's bound.
	ErrTooManyNodes ErrorCode = "too-many-nodes"
	// ErrBadWCET: a node's WCET is non-positive.
	ErrBadWCET ErrorCode = "bad-wcet"
	// ErrBadPeriod: the period is non-positive.
	ErrBadPeriod ErrorCode = "bad-period"
	// ErrBadDeadline: the deadline is negative or exceeds the period.
	ErrBadDeadline ErrorCode = "bad-deadline"
	// ErrBadCores: the gang width is non-positive.
	ErrBadCores ErrorCode = "bad-cores"
	// ErrEdgeRange: an edge endpoint names no node (an orphan edge).
	ErrEdgeRange ErrorCode = "edge-out-of-range"
	// ErrSelfEdge: an edge's endpoints are the same node.
	ErrSelfEdge ErrorCode = "self-edge"
	// ErrDupEdge: the same edge appears twice.
	ErrDupEdge ErrorCode = "duplicate-edge"
	// ErrCycle: the precedence relation is cyclic; the error carries the
	// blocking path.
	ErrCycle ErrorCode = "cycle"
)

// maxNodes bounds the node count to what the durable wire format's u16
// fields can carry.
const maxNodes = 1<<16 - 1

// ValidationError is a typed structural rejection. Node and Edge locate
// the offending element where applicable (Node is -1 otherwise); Path
// carries the blocking node path for ErrCycle.
type ValidationError struct {
	Code ErrorCode
	Node int
	Edge *Edge
	// Path is the blocking path, as node indexes, for ErrCycle: a walk
	// along precedence edges that returns to its first element.
	Path []int
	msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("dag: %s: %s", e.Code, e.msg)
}

// pathString renders a node path as "a -> b -> c" using names.
func (t *Task) pathString(path []int) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = t.nodeName(n)
	}
	return strings.Join(parts, " -> ")
}

func (t *Task) nodeName(i int) string {
	if i >= 0 && i < len(t.Nodes) && t.Nodes[i].Name != "" {
		return t.Nodes[i].Name
	}
	return fmt.Sprintf("#%d", i)
}

// Validate checks the task's structure and parameters, returning a typed
// *ValidationError for the first violation found (nodes first, then
// parameters, then edges, then acyclicity). A nil return guarantees the
// graph helpers (TopoOrder, CriticalPath) are well-defined.
func (t *Task) Validate() error {
	if len(t.Nodes) == 0 {
		return &ValidationError{Code: ErrNoNodes, Node: -1, msg: "task has no nodes"}
	}
	if len(t.Nodes) > maxNodes {
		return &ValidationError{Code: ErrTooManyNodes, Node: -1,
			msg: fmt.Sprintf("%d nodes exceeds the limit of %d", len(t.Nodes), maxNodes)}
	}
	for i, n := range t.Nodes {
		if n.WCETNs <= 0 {
			return &ValidationError{Code: ErrBadWCET, Node: i,
				msg: fmt.Sprintf("node %s has wcet %dns", t.nodeName(i), n.WCETNs)}
		}
	}
	if t.PeriodNs <= 0 {
		return &ValidationError{Code: ErrBadPeriod, Node: -1,
			msg: fmt.Sprintf("period %dns", t.PeriodNs)}
	}
	if t.DeadlineNs < 0 || t.DeadlineNs > t.PeriodNs {
		return &ValidationError{Code: ErrBadDeadline, Node: -1,
			msg: fmt.Sprintf("deadline %dns outside [0, period %dns]", t.DeadlineNs, t.PeriodNs)}
	}
	if t.Cores <= 0 {
		return &ValidationError{Code: ErrBadCores, Node: -1,
			msg: fmt.Sprintf("cores %d", t.Cores)}
	}
	seen := make(map[Edge]bool, len(t.Edges))
	for i, e := range t.Edges {
		e := e
		if e.From < 0 || e.From >= len(t.Nodes) || e.To < 0 || e.To >= len(t.Nodes) {
			return &ValidationError{Code: ErrEdgeRange, Node: -1, Edge: &e,
				msg: fmt.Sprintf("edge %d [%d -> %d] names no node (have %d)", i, e.From, e.To, len(t.Nodes))}
		}
		if e.From == e.To {
			return &ValidationError{Code: ErrSelfEdge, Node: e.From, Edge: &e,
				msg: fmt.Sprintf("edge %d loops on node %s", i, t.nodeName(e.From))}
		}
		if seen[e] {
			return &ValidationError{Code: ErrDupEdge, Node: -1, Edge: &e,
				msg: fmt.Sprintf("edge [%d -> %d] appears twice", e.From, e.To)}
		}
		seen[e] = true
	}
	if cycle := t.findCycle(); cycle != nil {
		return &ValidationError{Code: ErrCycle, Node: cycle[0], Path: cycle,
			msg: "precedence cycle " + t.pathString(cycle)}
	}
	return nil
}

// succs builds the successor adjacency lists.
func (t *Task) succs() [][]int {
	out := make([][]int, len(t.Nodes))
	for _, e := range t.Edges {
		out[e.From] = append(out[e.From], e.To)
	}
	return out
}

// findCycle returns a precedence cycle as a node path whose last element
// has an edge back to the first, or nil when the graph is acyclic.
// Deterministic: DFS from the lowest node index, lowest successor first.
func (t *Task) findCycle() []int {
	succ := t.succs()
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := make([]int, len(t.Nodes))
	var stack []int
	var found []int
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = grey
		stack = append(stack, u)
		for _, v := range succ[u] {
			if color[v] == grey {
				// Extract the cycle: the stack suffix from v's position.
				for i, w := range stack {
					if w == v {
						found = append([]int(nil), stack[i:]...)
						return true
					}
				}
			}
			if color[v] == white && visit(v) {
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	for u := range t.Nodes {
		if color[u] == white && visit(u) {
			return found
		}
	}
	return nil
}

// TopoOrder returns the node indexes in a deterministic topological
// order (Kahn's algorithm, lowest index first among ready nodes). The
// task must validate.
func (t *Task) TopoOrder() []int {
	indeg := make([]int, len(t.Nodes))
	succ := t.succs()
	for _, e := range t.Edges {
		indeg[e.To]++
	}
	// ready is kept as a sorted min-heap-by-scan; node counts are small
	// (u16-bounded) and admission runs off the hot path.
	var ready []int
	for i := range t.Nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, len(t.Nodes))
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		u := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, u)
		for _, v := range succ[u] {
			if indeg[v]--; indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return order
}

// CriticalPath returns the longest chain through the graph by summed
// WCET — its length L (the makespan floor no core count can beat) and
// its node indexes in execution order. The task must validate.
func (t *Task) CriticalPath() (int64, []int) {
	order := t.TopoOrder()
	succ := t.succs()
	// down[u] is the longest chain length starting at u (inclusive);
	// next[u] the successor continuing it (ties to the lowest index, so
	// the reported blocking path is deterministic).
	down := make([]int64, len(t.Nodes))
	next := make([]int, len(t.Nodes))
	for i := range next {
		next[i] = -1
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		down[u] = t.Nodes[u].WCETNs
		for _, v := range succ[u] {
			if cand := t.Nodes[u].WCETNs + down[v]; cand > down[u] || (cand == down[u] && (next[u] == -1 || v < next[u])) {
				down[u] = cand
				next[u] = v
			}
		}
	}
	start, best := -1, int64(0)
	for u := range t.Nodes {
		if down[u] > best || (down[u] == best && (start == -1 || u < start)) {
			start, best = u, down[u]
		}
	}
	var path []int
	for u := start; u != -1; u = next[u] {
		path = append(path, u)
	}
	return best, path
}
