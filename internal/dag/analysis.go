package dag

import (
	"fmt"

	"hrtsched/internal/plan"
)

// NewAnalyzer returns the named RTA plug-in. Accepted names: "classical",
// "alpha-beta" (longest-path-first priorities), and "alpha-beta/<policy>"
// for an explicit priority policy.
func NewAnalyzer(name string) (Analyzer, error) {
	switch name {
	case "", "classical":
		return Classical{}, nil
	case "alpha-beta", "alpha-beta/longest-path-first":
		return AlphaBeta{Policy: LongestPathFirstPolicy{}}, nil
	case "alpha-beta/topo-order":
		return AlphaBeta{Policy: TopoOrderPolicy{}}, nil
	default:
		return nil, fmt.Errorf("dag: unknown analyzer %q (have %v)", name, AnalyzerNames())
	}
}

// AnalyzerNames lists the accepted NewAnalyzer names, sorted.
func AnalyzerNames() []string {
	return []string{"alpha-beta", "alpha-beta/longest-path-first", "alpha-beta/topo-order", "classical"}
}

// Analysis is the DAG admission theory behind the plan.Analysis
// interface: periodic-set questions (Analyze, engines, capacity) delegate
// to the default EDF-hyperperiod machinery — a DAG reservation IS a
// derived periodic server task once admitted — while AnalyzeDAG answers
// the graph-level response-time question the periodic theory cannot.
type Analysis struct {
	base plan.Analysis
	rta  Analyzer
}

// New builds a DAG analysis over spec using the given RTA plug-in.
func New(spec plan.Spec, rta Analyzer) *Analysis {
	return &Analysis{base: plan.DefaultEDF(spec), rta: rta}
}

// Name returns "dag-" + the RTA plug-in's name.
func (a *Analysis) Name() string { return "dag-" + a.rta.Name() }

// Spec returns the platform spec.
func (a *Analysis) Spec() plan.Spec { return a.base.Spec() }

// Analyze delegates periodic-set admission to the default EDF analysis.
func (a *Analysis) Analyze(set plan.TaskSet) plan.Verdict { return a.base.Analyze(set) }

// AnalyzeGang delegates gang admission to the default EDF analysis.
func (a *Analysis) AnalyzeGang(existing, gang plan.TaskSet) plan.Verdict {
	return a.base.AnalyzeGang(existing, gang)
}

// AnalyzeBatch delegates batched periodic-set admission to the default
// EDF analysis.
func (a *Analysis) AnalyzeBatch(sets []plan.TaskSet) []plan.Verdict {
	return a.base.AnalyzeBatch(sets)
}

// Capacity delegates headroom probing to the default EDF analysis.
func (a *Analysis) Capacity(set plan.TaskSet, probePeriodNs int64) plan.CapacityReport {
	return a.base.Capacity(set, probePeriodNs)
}

// NewEngine delegates incremental engines to the default EDF analysis.
func (a *Analysis) NewEngine() plan.Engine { return a.base.NewEngine() }

// AnalyzeDAG validates t and, when structurally sound, runs the RTA
// plug-in. The error is a *ValidationError on structural rejection; a
// nil error with Result.Admit == false is an analytical rejection.
func (a *Analysis) AnalyzeDAG(t *Task) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	return a.rta.Analyze(t), nil
}

// ServerTask derives the periodic server reservation for an admitted DAG:
// one gang-scheduled slice of the response-time bound every period — the
// RT-Gang reduction. Everything downstream of admission (placement,
// durability, replication) sees only this task.
func ServerTask(t *Task, r Result) plan.Task {
	return plan.Task{PeriodNs: t.PeriodNs, SliceNs: r.BoundNs}
}

func init() {
	plan.RegisterAnalysis("dag-classical", func(spec plan.Spec) (plan.Analysis, error) {
		return New(spec, Classical{}), nil
	})
	plan.RegisterAnalysis("dag-alpha-beta", func(spec plan.Spec) (plan.Analysis, error) {
		return New(spec, AlphaBeta{Policy: LongestPathFirstPolicy{}}), nil
	})
}
