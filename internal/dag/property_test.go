package dag

import (
	"reflect"
	"testing"

	"hrtsched/internal/sim"
)

// randDAG draws a random valid task: 2-10 nodes, forward-only edges (so
// the graph is acyclic by construction and any additional forward edge
// stays consistent with the same topological order), WCETs of 10-200us,
// and a deadline drawn between half the critical-path floor and the
// period so both admissions and both rejection reasons occur.
func randDAG(r *sim.Rand) Task {
	n := 2 + r.Intn(9)
	t := Task{
		PeriodNs: (5 + r.Int63n(20)) * 1_000_000,
		Cores:    1 + r.Intn(4),
	}
	for i := 0; i < n; i++ {
		t.Nodes = append(t.Nodes, Node{WCETNs: (10 + r.Int63n(191)) * 1000})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.3 {
				t.Edges = append(t.Edges, Edge{From: u, To: v})
			}
		}
	}
	// Deadlines from generous to impossible, implicit included.
	switch r.Intn(4) {
	case 0:
		t.DeadlineNs = 0 // implicit (= period)
	case 1:
		t.DeadlineNs = t.PeriodNs / 2
	case 2:
		t.DeadlineNs = 200_000 + r.Int63n(1_000_000)
	case 3:
		t.DeadlineNs = 50_000 + r.Int63n(200_000)
	}
	return t
}

// missingForwardEdges lists every (u,v) with u < v not already an edge —
// the candidate set for monotonicity probes.
func missingForwardEdges(t *Task) []Edge {
	have := make(map[Edge]bool, len(t.Edges))
	for _, e := range t.Edges {
		have[e] = true
	}
	var out []Edge
	for u := 0; u < len(t.Nodes); u++ {
		for v := u + 1; v < len(t.Nodes); v++ {
			if e := (Edge{From: u, To: v}); !have[e] {
				out = append(out, e)
			}
		}
	}
	return out
}

// TestRTAPropertyRandomDAGs is the analysis property suite over seeded
// random DAGs:
//
//  1. Determinism — analyzing the same task twice (for every registered
//     analyzer) yields deeply equal Results, blocking paths included.
//  2. Classical edge-monotonicity — adding one precedence edge never
//     shrinks the classical bound and never turns a rejection into an
//     admission (the bound moves by delta*(1-1/m) >= 0 when the critical
//     path grows by delta and the volume is unchanged).
//  3. Alpha-beta tightness — the interference-set bound is never looser
//     than classical on the same task, for both priority policies.
func TestRTAPropertyRandomDAGs(t *testing.T) {
	const trials = 400
	rng := sim.NewRand(0xda6)

	var admitted, rejected, probes int
	for trial := 0; trial < trials; trial++ {
		r := rng.Split()
		task := randDAG(r)
		if err := task.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid task: %v", trial, err)
		}

		classical := Classical{}.Analyze(&task)
		if classical.Admit {
			admitted++
		} else {
			rejected++
		}

		// 1. Determinism across every registered analyzer.
		for _, name := range AnalyzerNames() {
			a, err := NewAnalyzer(name)
			if err != nil {
				t.Fatalf("NewAnalyzer(%q): %v", name, err)
			}
			first, second := a.Analyze(&task), a.Analyze(&task)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("trial %d: %s not deterministic\nfirst  %+v\nsecond %+v",
					trial, name, first, second)
			}
		}

		// 2. Classical monotonicity under one extra forward edge.
		if missing := missingForwardEdges(&task); len(missing) > 0 {
			grown := task
			grown.Edges = append(append([]Edge{}, task.Edges...),
				missing[r.Intn(len(missing))])
			after := Classical{}.Analyze(&grown)
			if after.BoundNs < classical.BoundNs {
				t.Fatalf("trial %d: adding edge shrank classical bound %d -> %d\ntask %+v",
					trial, classical.BoundNs, after.BoundNs, task)
			}
			if !classical.Admit && after.Admit {
				t.Fatalf("trial %d: adding an edge flipped REJECT to ADMIT\nbefore %+v\nafter  %+v",
					trial, classical, after)
			}
			probes++
		}

		// 3. Alpha-beta never looser than classical, either policy.
		for _, ab := range []Analyzer{
			AlphaBeta{},
			AlphaBeta{Policy: TopoOrderPolicy{}},
		} {
			res := ab.Analyze(&task)
			if res.BoundNs > classical.BoundNs {
				t.Fatalf("trial %d: %s bound %d looser than classical %d\ntask %+v",
					trial, ab.Name(), res.BoundNs, classical.BoundNs, task)
			}
			if classical.Admit && !res.Admit {
				t.Fatalf("trial %d: %s rejected a classically-admitted task\ntask %+v",
					trial, ab.Name(), task)
			}
		}
	}

	// The property is vacuous unless both verdicts and the probe occurred.
	if admitted == 0 || rejected == 0 || probes == 0 {
		t.Fatalf("trials did not exercise all outcomes: %d admitted, %d rejected, %d probes",
			admitted, rejected, probes)
	}
	t.Logf("%d trials: %d admitted, %d rejected, %d monotonicity probes",
		trials, admitted, rejected, probes)
}
