package dag

import "fmt"

// Reason says why a response-time analysis rejected a DAG task (or OK).
type Reason uint8

const (
	// OK: the bound meets the deadline.
	OK Reason = iota
	// PathOverrun: the critical path alone exceeds the deadline — no
	// number of cores can make this graph meet it.
	PathOverrun
	// DeadlineMiss: the response-time bound (path plus interference)
	// exceeds the deadline at the requested gang width.
	DeadlineMiss
)

// String names the reason with the stable tags used on the wire.
func (r Reason) String() string {
	switch r {
	case OK:
		return "ok"
	case PathOverrun:
		return "path-overrun"
	case DeadlineMiss:
		return "deadline-miss"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// MarshalText renders the reason tag into JSON and text encodings.
func (r Reason) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText parses a reason tag.
func (r *Reason) UnmarshalText(b []byte) error {
	for cand := OK; cand <= DeadlineMiss; cand++ {
		if string(b) == cand.String() {
			*r = cand
			return nil
		}
	}
	return fmt.Errorf("dag: unknown reason %q", b)
}

// Result is one response-time analysis verdict. It names the analyzer
// that produced it and, on rejection, carries the blocking path — the
// chain of nodes whose serialized execution drives the bound — so a
// client knows which dependency chain to break.
type Result struct {
	// Admit is true when the bound meets the deadline.
	Admit bool `json:"admit"`
	// Reason is OK when admitted, else the failing test's reason.
	Reason Reason `json:"reason"`
	// Analyzer names the RTA plug-in that produced the bound.
	Analyzer string `json:"analyzer"`
	// BoundNs is the response-time bound R for one release.
	BoundNs int64 `json:"bound_ns"`
	// CriticalPathNs is the blocking path's length L (the makespan floor).
	CriticalPathNs int64 `json:"critical_path_ns"`
	// VolumeNs is the total work V of one release.
	VolumeNs int64 `json:"volume_ns"`
	// InterferenceNs is the work the analysis charges against the path
	// (V - L for the classical bound, the priority-filtered subset for
	// the alpha-beta bound).
	InterferenceNs int64 `json:"interference_ns"`
	// BlockingPath is the blocking path as node indexes in execution
	// order.
	BlockingPath []int `json:"blocking_path"`
	// Utilization is V / period — the long-run core demand.
	Utilization float64 `json:"utilization"`
}

// Analyzer is a pluggable DAG response-time analysis: given a validated
// task, produce a deterministic admission verdict. Analyze may assume
// t.Validate() returned nil.
type Analyzer interface {
	// Name is the analyzer's stable registry name.
	Name() string
	// Analyze bounds the response time of one release of t.
	Analyze(t *Task) Result
}

// finish fills the shared Result fields and applies the admission test
// R <= D, charging interNs of interference on top of the path.
func finish(t *Task, name string, pathNs int64, path []int, interNs int64) Result {
	m := int64(t.Cores)
	r := Result{
		Analyzer:       name,
		CriticalPathNs: pathNs,
		VolumeNs:       t.Volume(),
		InterferenceNs: interNs,
		BlockingPath:   path,
		BoundNs:        pathNs + (interNs+m-1)/m,
		Utilization:    float64(t.Volume()) / float64(t.PeriodNs),
	}
	d := t.Deadline()
	switch {
	case r.BoundNs <= d:
		r.Admit = true
		r.Reason = OK
	case pathNs > d:
		r.Reason = PathOverrun
	default:
		r.Reason = DeadlineMiss
	}
	return r
}

// Classical is the 1/m self-interference bound (Graham's list-scheduling
// bound): R = L + ceil((V - L) / m). Every unit of non-path work may
// delay the path, spread over m cores. It is edge-monotone — adding a
// precedence edge leaves V unchanged and can only lengthen L, and
// L + ceil((V-L)/m) is non-decreasing in L — so tightening a graph's
// precedence can never flip a rejection into an admission (the
// randomized property test asserts exactly this).
type Classical struct{}

// Name returns "classical".
func (Classical) Name() string { return "classical" }

// Analyze bounds the response time with the 1/m bound.
func (Classical) Analyze(t *Task) Result {
	pathNs, path := t.CriticalPath()
	return finish(t, "classical", pathNs, path, t.Volume()-pathNs)
}

// PriorityPolicy assigns intra-task priorities to a validated task's
// nodes: Assign returns one rank per node, smaller = higher priority.
// Policies must be deterministic and topology-consistent (a node never
// outranks its own ancestor is NOT required — the analysis only uses
// ranks to bound interference).
type PriorityPolicy interface {
	// Name is the policy's stable name.
	Name() string
	// Assign returns a priority rank per node (smaller = higher).
	Assign(t *Task) []int
}

// TopoOrderPolicy ranks nodes by their deterministic topological order:
// earlier in the order = higher priority.
type TopoOrderPolicy struct{}

// Name returns "topo-order".
func (TopoOrderPolicy) Name() string { return "topo-order" }

// Assign ranks by topological position.
func (TopoOrderPolicy) Assign(t *Task) []int {
	ranks := make([]int, len(t.Nodes))
	for rank, u := range t.TopoOrder() {
		ranks[u] = rank
	}
	return ranks
}

// LongestPathFirstPolicy ranks nodes by descending downward path length
// (the longest chain starting at the node, inclusive): nodes on long
// chains get high priority, which is the classical heuristic for keeping
// the critical path moving. Ties break to the lower node index.
type LongestPathFirstPolicy struct{}

// Name returns "longest-path-first".
func (LongestPathFirstPolicy) Name() string { return "longest-path-first" }

// Assign ranks by descending downward chain length.
func (LongestPathFirstPolicy) Assign(t *Task) []int {
	order := t.TopoOrder()
	succ := t.succs()
	down := make([]int64, len(t.Nodes))
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		down[u] = t.Nodes[u].WCETNs
		for _, v := range succ[u] {
			if cand := t.Nodes[u].WCETNs + down[v]; cand > down[u] {
				down[u] = cand
			}
		}
	}
	idx := make([]int, len(t.Nodes))
	for i := range idx {
		idx[i] = i
	}
	// Selection order: longer chain first, index breaks ties.
	for i := 0; i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if down[idx[j]] > down[idx[best]] ||
				(down[idx[j]] == down[idx[best]] && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	ranks := make([]int, len(t.Nodes))
	for rank, u := range idx {
		ranks[u] = rank
	}
	return ranks
}

// AlphaBeta is the (alpha, beta)-style response-time bound for
// priority-ordered work-conserving scheduling: R = alpha + ceil(beta/m),
// where alpha is the critical path length L and beta is the interfering
// workload — the WCET of every off-path node that outranks (or ties)
// some path node under the policy's priorities. Under preemptive
// intra-task priority scheduling, whenever a path node is ready but not
// running every core is busy with strictly higher-priority work, so only
// such nodes can delay the path.
//
// beta is a subset of the classical bound's V - L by construction, so
// AlphaBeta is never looser than Classical on the same task (the
// property test asserts the tightness ordering). It is NOT
// edge-monotone: an added edge can re-rank nodes and shrink the
// interference set, so only Classical carries the monotonicity contract.
type AlphaBeta struct {
	// Policy assigns the intra-task priorities; default
	// LongestPathFirstPolicy.
	Policy PriorityPolicy
}

// Name returns "alpha-beta/<policy>".
func (a AlphaBeta) Name() string { return "alpha-beta/" + a.policy().Name() }

func (a AlphaBeta) policy() PriorityPolicy {
	if a.Policy == nil {
		return LongestPathFirstPolicy{}
	}
	return a.Policy
}

// Analyze bounds the response time with the priority-filtered bound.
func (a AlphaBeta) Analyze(t *Task) Result {
	pathNs, path := t.CriticalPath()
	ranks := a.policy().Assign(t)
	onPath := make([]bool, len(t.Nodes))
	worstPathRank := 0
	for _, u := range path {
		onPath[u] = true
		if ranks[u] > worstPathRank {
			worstPathRank = ranks[u]
		}
	}
	var beta int64
	for u := range t.Nodes {
		if !onPath[u] && ranks[u] <= worstPathRank {
			beta += t.Nodes[u].WCETNs
		}
	}
	return finish(t, a.Name(), pathNs, path, beta)
}
