package whatif

import "testing"

// benchScenario is the unit of the recorded throughput figures: a 2-CPU
// half-random what-if with a 1 ms hyperperiod.
func benchScenario(reps int) Scenario {
	return Scenario{
		Name: "bench",
		CPUs: 2,
		Tasks: []Task{
			{PeriodNs: 1_000_000, SliceNs: 300_000, CPU: 0},
			{PeriodNs: 1_000_000, SliceNs: 300_000, CPU: 1},
		},
		Model:        "half-random",
		Replications: reps,
		Hyperperiods: 1,
	}
}

// BenchmarkWhatifHyperperiod measures one seeded single-hyperperiod
// replication end to end; 1e9/ns-per-op is simulate_hyperperiods_per_sec
// in BENCH_PR10.json.
func BenchmarkWhatifHyperperiod(b *testing.B) {
	sc := benchScenario(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatifScenario measures a full default-sized request (20
// replications); 1e9/ns-per-op is simulate_scenarios_per_sec.
func BenchmarkWhatifScenario(b *testing.B) {
	sc := benchScenario(0) // Normalize applies the default 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
