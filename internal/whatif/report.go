package whatif

import (
	"fmt"
	"strings"

	"hrtsched/internal/stats"
)

// TaskReport aggregates one task's observations across all replications.
type TaskReport struct {
	Name     string `json:"name"`
	PeriodNs int64  `json:"period_ns"`
	SliceNs  int64  `json:"slice_ns"`
	WcetNs   int64  `json:"wcet_ns"`
	// Arrivals and Misses are scheduler-counted totals summed over
	// replications; MissRate is their ratio.
	Arrivals int64 `json:"arrivals"`
	Misses   int64 `json:"misses"`
	// LateJobs counts jobs whose observed response time exceeded the
	// period — demand-side overruns the scheduler's supply-side Misses
	// counter cannot see.
	LateJobs      int64   `json:"late_jobs"`
	MissRate      float64 `json:"miss_rate"`
	MaxMissStreak int     `json:"max_miss_streak"`
	Degrades      int64   `json:"degrades"`
	Readmits      int64   `json:"readmits"`
	// Response-time distribution of completed jobs (ns from period
	// arrival to completion), merged across replications.
	RespP50Ns  float64          `json:"resp_p50_ns"`
	RespP99Ns  float64          `json:"resp_p99_ns"`
	RespMeanNs float64          `json:"resp_mean_ns"`
	RespMaxNs  float64          `json:"resp_max_ns"`
	RespHist   *stats.Histogram `json:"resp_hist,omitempty"`
}

// Disagreement counts replications whose observed outcome contradicts the
// analytical admission verdict — the gap Pinho 2023 names between
// analytical admission and observed timing variability.
type Disagreement struct {
	// AdmittedMissedReps: the analysis admitted the set, yet the
	// replication observed at least one deadline miss.
	AdmittedMissedReps int `json:"admitted_missed_reps"`
	// RejectedCleanReps: the analysis rejected the set, yet the
	// replication completed without a single miss.
	RejectedCleanReps int `json:"rejected_clean_reps"`
}

// Report is the aggregated answer to one what-if question. Equal
// (Scenario, Seed) inputs produce byte-identical reports — both the JSON
// encoding (fixed field order, no maps) and Render's text.
type Report struct {
	Scenario      string   `json:"scenario,omitempty"`
	Machine       string   `json:"machine"`
	CPUs          int      `json:"cpus"`
	Model         string   `json:"model"`
	Faults        []string `json:"faults,omitempty"`
	Degrade       string   `json:"degrade"`
	Seed          uint64   `json:"seed"`
	Replications  int      `json:"replications"`
	Hyperperiods  int      `json:"hyperperiods"`
	HyperperiodNs int64    `json:"hyperperiod_ns"`

	// Analytical verdict for the task set on this platform.
	Utilization float64 `json:"utilization"`
	Admit       bool    `json:"admit"`
	AdmitReason string  `json:"admit_reason"`

	// Observed outcomes.
	SurvivedReps  int          `json:"survived_reps"`
	SurvivalProb  float64      `json:"survival_prob"`
	TotalMisses   int64        `json:"total_misses"`
	TotalLateJobs int64        `json:"total_late_jobs"`
	Disagreement  Disagreement `json:"disagreement"`
	Tasks         []TaskReport `json:"tasks"`

	EngineSteps         uint64 `json:"engine_steps"`
	InvariantViolations int    `json:"invariant_violations"`
}

// Render returns the deterministic text form: fixed iteration order, fixed
// float precision, no timestamps.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "whatif %q machine=%s cpus=%d model=%s faults=[%s] degrade=%s seed=%d\n",
		r.Scenario, r.Machine, r.CPUs, r.Model, strings.Join(r.Faults, ","), r.Degrade, r.Seed)
	fmt.Fprintf(&b, "  reps=%d hyperperiods=%d hyperperiod=%dns\n",
		r.Replications, r.Hyperperiods, r.HyperperiodNs)
	fmt.Fprintf(&b, "  verdict: admit=%t reason=%s util=%.4f\n",
		r.Admit, r.AdmitReason, r.Utilization)
	fmt.Fprintf(&b, "  observed: survived=%d/%d prob=%.4f misses=%d late=%d admitted-missed=%d rejected-clean=%d\n",
		r.SurvivedReps, r.Replications, r.SurvivalProb, r.TotalMisses,
		r.TotalLateJobs, r.Disagreement.AdmittedMissedReps, r.Disagreement.RejectedCleanReps)
	for _, t := range r.Tasks {
		fmt.Fprintf(&b, "  task %-12s period=%dns slice=%dns wcet=%dns arrivals=%d misses=%d late=%d rate=%.4f streak=%d degrades=%d readmits=%d\n",
			t.Name, t.PeriodNs, t.SliceNs, t.WcetNs, t.Arrivals, t.Misses, t.LateJobs, t.MissRate,
			t.MaxMissStreak, t.Degrades, t.Readmits)
		fmt.Fprintf(&b, "       resp p50=%.0fns p99=%.0fns mean=%.0fns max=%.0fns n=%d\n",
			t.RespP50Ns, t.RespP99Ns, t.RespMeanNs, t.RespMaxNs, histN(t.RespHist))
	}
	fmt.Fprintf(&b, "  engine steps=%d invariant-violations=%d\n",
		r.EngineSteps, r.InvariantViolations)
	return b.String()
}

func histN(h *stats.Histogram) int64 {
	if h == nil {
		return 0
	}
	return h.N()
}
