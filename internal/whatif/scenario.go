package whatif

import (
	"fmt"
	"sort"
	"strings"

	"hrtsched/internal/core"
	"hrtsched/internal/fault"
	"hrtsched/internal/machine"
	"hrtsched/internal/plan"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// Limits on scenario size: one request must stay a bounded unit of work so
// the serving pool's shed arithmetic means something.
const (
	MaxTasks        = 64
	MaxReplications = 10_000
	MaxHyperperiods = 1_000
	// maxHyperperiodNs rejects task sets whose period LCM makes a single
	// replication unboundedly long (mirrors plan's HyperperiodOverflow).
	maxHyperperiodNs = 10_000_000_000 // 10 s simulated
	respHistBuckets  = 40
)

// Task is one periodic task of a scenario. SliceNs is the reserved
// budget the admission analysis sees; WcetNs is the nominal worst-case
// compute the execution model draws each job's actual cost against. It
// defaults to SliceNs — a zero-margin reservation where even the wcet
// model finishes a hair past its deadline (the record step lands after
// the compute exhausts the slice). Set WcetNs below SliceNs to model a
// real admission pipeline that reserves WCET plus headroom.
type Task struct {
	Name     string `json:"name,omitempty"`
	PeriodNs int64  `json:"period_ns"`
	SliceNs  int64  `json:"slice_ns"`
	WcetNs   int64  `json:"wcet_ns,omitempty"`
	PhaseNs  int64  `json:"phase_ns,omitempty"`
	CPU      int    `json:"cpu,omitempty"`
}

// Scenario is one what-if question. The zero values of the optional
// fields select the defaults applied by Normalize.
type Scenario struct {
	Name    string   `json:"name,omitempty"`
	Machine string   `json:"machine,omitempty"` // platform preset; default phiknl
	CPUs    int      `json:"cpus,omitempty"`    // scaled CPU count; default 2
	Tasks   []Task   `json:"tasks"`
	Model   string   `json:"model,omitempty"`   // execution model; default wcet
	Faults  []string `json:"faults,omitempty"`  // fault.Presets names, applied in order
	Degrade string   `json:"degrade,omitempty"` // off|demote|shrink|evict; default off
	// Replications is the number of independently seeded runs; default 20.
	Replications int `json:"replications,omitempty"`
	// Hyperperiods is the simulated length of each replication in task-set
	// hyperperiods; default 1.
	Hyperperiods int `json:"hyperperiods,omitempty"`
	// UtilizationLimit is the admission cap used for the analytical
	// verdict; default 0.99 (the paper's configuration).
	UtilizationLimit float64 `json:"utilization_limit,omitempty"`
}

// Normalize returns a copy with defaults applied.
func (sc Scenario) Normalize() Scenario {
	if sc.Machine == "" {
		sc.Machine = "phiknl"
	}
	if sc.CPUs <= 0 {
		sc.CPUs = 2
	}
	if sc.Model == "" {
		sc.Model = "wcet"
	}
	if sc.Degrade == "" {
		sc.Degrade = "off"
	}
	if sc.Replications <= 0 {
		sc.Replications = 20
	}
	if sc.Hyperperiods <= 0 {
		sc.Hyperperiods = 1
	}
	if sc.UtilizationLimit <= 0 {
		sc.UtilizationLimit = 0.99
	}
	for i := range sc.Tasks {
		if sc.Tasks[i].Name == "" {
			sc.Tasks[i].Name = fmt.Sprintf("task%d", i)
		}
		if sc.Tasks[i].WcetNs <= 0 {
			sc.Tasks[i].WcetNs = sc.Tasks[i].SliceNs
		}
	}
	return sc
}

// degradePolicy maps the textual policy names.
func degradePolicy(s string) (core.DegradePolicy, error) {
	switch s {
	case "off", "":
		return core.DegradeOff, nil
	case "demote":
		return core.DegradeDemote, nil
	case "shrink":
		return core.DegradeShrink, nil
	case "evict":
		return core.DegradeEvict, nil
	default:
		return 0, fmt.Errorf("whatif: unknown degrade policy %q (want off, demote, shrink, or evict)", s)
	}
}

// Validate checks a normalized scenario without running it.
func (sc Scenario) Validate() error {
	if _, ok := machine.SpecByName(sc.Machine); !ok {
		return fmt.Errorf("whatif: unknown machine %q (want %s)",
			sc.Machine, strings.Join(machine.SpecNames(), ", "))
	}
	if len(sc.Tasks) == 0 {
		return fmt.Errorf("whatif: scenario has no tasks")
	}
	if len(sc.Tasks) > MaxTasks {
		return fmt.Errorf("whatif: %d tasks exceeds limit %d", len(sc.Tasks), MaxTasks)
	}
	if sc.Replications > MaxReplications {
		return fmt.Errorf("whatif: %d replications exceeds limit %d", sc.Replications, MaxReplications)
	}
	if sc.Hyperperiods > MaxHyperperiods {
		return fmt.Errorf("whatif: %d hyperperiods exceeds limit %d", sc.Hyperperiods, MaxHyperperiods)
	}
	if _, err := ParseModel(sc.Model); err != nil {
		return err
	}
	if _, err := degradePolicy(sc.Degrade); err != nil {
		return err
	}
	for _, f := range sc.Faults {
		if _, ok := fault.Presets[f]; !ok {
			return fmt.Errorf("whatif: unknown fault preset %q (want %s)",
				f, strings.Join(fault.PresetNames(), ", "))
		}
	}
	for i, t := range sc.Tasks {
		if t.PeriodNs <= 0 || t.SliceNs <= 0 || t.SliceNs > t.PeriodNs {
			return fmt.Errorf("whatif: task %d: want 0 < slice_ns <= period_ns", i)
		}
		// WcetNs above PeriodNs would make even a dedicated CPU insufficient;
		// above SliceNs is allowed (deliberate under-reservation).
		if t.WcetNs < 0 || t.WcetNs > t.PeriodNs {
			return fmt.Errorf("whatif: task %d: want 0 <= wcet_ns <= period_ns", i)
		}
		if t.PhaseNs < 0 || t.PhaseNs >= t.PeriodNs {
			return fmt.Errorf("whatif: task %d: want 0 <= phase_ns < period_ns", i)
		}
		if t.CPU < 0 || t.CPU >= sc.CPUs {
			return fmt.Errorf("whatif: task %d: cpu %d outside [0, %d)", i, t.CPU, sc.CPUs)
		}
	}
	if hp := hyperperiodNs(sc.Tasks); hp <= 0 || hp > maxHyperperiodNs {
		return fmt.Errorf("whatif: task-set hyperperiod exceeds %d ns", int64(maxHyperperiodNs))
	}
	return nil
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// hyperperiodNs returns the LCM of the task periods, or 0 on overflow.
func hyperperiodNs(tasks []Task) int64 {
	h := int64(1)
	for _, t := range tasks {
		g := gcd64(h, t.PeriodNs)
		if g == 0 {
			return 0
		}
		q := h / g
		if t.PeriodNs != 0 && q > maxHyperperiodNs/t.PeriodNs {
			return 0
		}
		h = q * t.PeriodNs
	}
	return h
}

// repOutcome collects one replication's observations.
type repOutcome struct {
	arrivals, misses []int64
	maxStreak        []int
	degrades         []int64
	readmits         []int64
	steps            uint64
	violations       int
}

// jobRecorder is the per-task observation sink shared between the job
// program and the replication driver.
type jobRecorder struct {
	hist *stats.Histogram
	sum  stats.Summary
	// late counts jobs that completed after their deadline. The scheduler's
	// Misses counter only fires when the reserved slice goes unserved
	// (supply-side overload); a job whose drawn cost exceeds its budget
	// still gets its full reservation every period and finishes late
	// without a scheduler miss — the demand-side overrun only the
	// observation layer can see.
	late int64
}

// jobProgram is the canonical what-if workload: per period, draw the job's
// cost from the execution model, compute it, record the observed response
// time, and sleep until the next arrival. Overrun periods are abandoned —
// the scheduler has already rolled the arrivals forward and counted the
// misses; the program just resynchronizes to the next future boundary.
func jobProgram(cons core.Constraints, wcetCycles int64, model ExecModel, rng *sim.Rand, rec *jobRecorder) core.Program {
	const (
		stAdmit = iota
		stCompute
		stRecord
		stSleep
	)
	state := stAdmit
	var arrivalNs int64
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		switch state {
		case stAdmit:
			state = stCompute
			return core.ChangeConstraints{C: cons}
		case stCompute:
			arrivalNs = tc.T.ArrivalNs()
			state = stRecord
			return core.Compute{Cycles: model.Draw(rng, wcetCycles)}
		case stRecord:
			state = stSleep
			return core.Call{Fn: func(tc *core.ThreadCtx) {
				resp := tc.NowNs - arrivalNs
				rec.hist.Add(float64(resp))
				rec.sum.Add(float64(resp))
				if resp > cons.PeriodNs {
					rec.late++
				}
			}}
		default:
			state = stCompute
			// The task's schedule is anchored at its admission time Gamma,
			// not at absolute zero, so the next arrival boundary is the
			// scheduler's current deadline — never recompute it as k*P.
			// After an overrun the scheduler has already rolled arrival and
			// deadline forward (counting the misses), so the deadline is
			// still the first boundary strictly after now.
			return core.SleepUntil{WallNs: tc.T.DeadlineNs()}
		}
	})
}

// runReplication executes one seeded replication and returns its
// observations. All randomness derives from machine.New(spec, seed) in a
// fixed construction order: kernel boot, per-task model streams (in task
// order), then the fault environment.
func runReplication(sc Scenario, spec machine.Spec, model ExecModel, policy core.DegradePolicy, seed uint64, durationNs int64, recs []*jobRecorder) repOutcome {
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	// Admission is judged analytically by plan.Analyze; the engine runs
	// every task so rejected sets still produce observations (that is the
	// disagreement report's whole point).
	cfg.Admit = core.AdmitNone
	if policy != core.DegradeOff {
		cfg.Degrade = core.DegradeConfig{Policy: policy, MissStreak: 3}
	}
	// A lost one-shot firing under timer-drift otherwise bricks the CPU
	// for the rest of the replication.
	cfg.WatchdogNs = 10_000_000
	k := core.Boot(m, cfg)
	chk := core.AttachInvariants(k, seed, "whatif:"+sc.Name)

	out := repOutcome{
		arrivals:  make([]int64, len(sc.Tasks)),
		misses:    make([]int64, len(sc.Tasks)),
		maxStreak: make([]int, len(sc.Tasks)),
		degrades:  make([]int64, len(sc.Tasks)),
		readmits:  make([]int64, len(sc.Tasks)),
	}

	threads := make([]*core.Thread, len(sc.Tasks))
	index := make(map[*core.Thread]int, len(sc.Tasks))
	for i, task := range sc.Tasks {
		cons := core.PeriodicConstraints(task.PhaseNs, task.PeriodNs, task.SliceNs)
		wcet := int64(spec.NanosToCycles(task.WcetNs))
		if wcet < 1 {
			wcet = 1
		}
		rng := m.Rand()
		threads[i] = k.Spawn(task.Name, task.CPU, jobProgram(cons, wcet, model, rng, recs[i]))
		index[threads[i]] = i
	}

	prevMiss := k.Hooks.Miss
	k.Hooks.Miss = func(cpu int, t *core.Thread, nowNs, missNs int64) {
		if prevMiss != nil {
			prevMiss(cpu, t, nowNs, missNs)
		}
		if i, ok := index[t]; ok {
			if s := t.MissStreak(); s > out.maxStreak[i] {
				out.maxStreak[i] = s
			}
		}
	}
	prevDegrade := k.Hooks.Degrade
	k.Hooks.Degrade = func(cpu int, t *core.Thread, ev core.DegradeEvent) {
		if prevDegrade != nil {
			prevDegrade(cpu, t, ev)
		}
		if i, ok := index[t]; ok {
			out.degrades[i]++
		}
	}
	prevReadmit := k.Hooks.Readmit
	k.Hooks.Readmit = func(cpu int, t *core.Thread, nowNs int64) {
		if prevReadmit != nil {
			prevReadmit(cpu, t, nowNs)
		}
		if i, ok := index[t]; ok {
			out.readmits[i]++
		}
	}

	env := &fault.Env{M: m, K: k, Rng: m.Rand()}
	for _, name := range sc.Faults {
		for _, inj := range fault.Presets[name](spec) {
			inj.Start(env)
		}
	}

	k.RunUntilNs(durationNs)

	for i, t := range threads {
		out.arrivals[i] = t.Arrivals
		out.misses[i] = t.Misses
	}
	out.steps = k.Eng.Steps()
	out.violations = len(chk.Violations())
	return out
}

// Run executes the scenario's replications and aggregates the Report.
// Replication r runs on its own machine seeded from the r-th draw of a
// root stream over seed, so reports are reproducible per (scenario, seed)
// and replications are statistically independent.
func Run(sc Scenario, seed uint64) (*Report, error) {
	sc = sc.Normalize()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	spec, _ := machine.SpecByName(sc.Machine)
	spec = spec.Scaled(sc.CPUs)
	model, _ := ParseModel(sc.Model)
	policy, _ := degradePolicy(sc.Degrade)

	set := make(plan.TaskSet, len(sc.Tasks))
	for i, t := range sc.Tasks {
		set[i] = plan.Task{PeriodNs: t.PeriodNs, SliceNs: t.SliceNs}
	}
	planSpec := plan.Spec{
		OverheadNs:       spec.CyclesToNanos(sim.Time(spec.TotalSchedCycles())),
		UtilizationLimit: sc.UtilizationLimit,
	}
	verdict := plan.Analyze(planSpec, set)

	hp := hyperperiodNs(sc.Tasks)
	durationNs := hp * int64(sc.Hyperperiods)

	recs := make([]*jobRecorder, len(sc.Tasks))
	for i, t := range sc.Tasks {
		recs[i] = &jobRecorder{hist: stats.NewHistogram(0, float64(2*t.PeriodNs), respHistBuckets)}
	}

	rep := &Report{
		Scenario:      sc.Name,
		Machine:       sc.Machine,
		CPUs:          sc.CPUs,
		Model:         model.String(),
		Faults:        sc.Faults,
		Degrade:       sc.Degrade,
		Seed:          seed,
		Replications:  sc.Replications,
		Hyperperiods:  sc.Hyperperiods,
		HyperperiodNs: hp,
		Utilization:   verdict.Utilization,
		Admit:         verdict.Admit,
		AdmitReason:   verdict.Reason.String(),
	}

	agg := repOutcome{
		arrivals:  make([]int64, len(sc.Tasks)),
		misses:    make([]int64, len(sc.Tasks)),
		maxStreak: make([]int, len(sc.Tasks)),
		degrades:  make([]int64, len(sc.Tasks)),
		readmits:  make([]int64, len(sc.Tasks)),
	}
	seeds := sim.NewRand(seed)
	lateBefore := make([]int64, len(sc.Tasks))
	for r := 0; r < sc.Replications; r++ {
		for i := range recs {
			lateBefore[i] = recs[i].late
		}
		out := runReplication(sc, spec, model, policy, seeds.Uint64(), durationNs, recs)
		// A replication "misses" if any reserved slice went unserved
		// (scheduler miss) or any job completed past its deadline (late
		// job); survival demands neither.
		repBad := int64(0)
		for i := range sc.Tasks {
			agg.arrivals[i] += out.arrivals[i]
			agg.misses[i] += out.misses[i]
			repBad += out.misses[i] + (recs[i].late - lateBefore[i])
			if out.maxStreak[i] > agg.maxStreak[i] {
				agg.maxStreak[i] = out.maxStreak[i]
			}
			agg.degrades[i] += out.degrades[i]
			agg.readmits[i] += out.readmits[i]
		}
		agg.steps += out.steps
		agg.violations += out.violations
		if repBad == 0 {
			rep.SurvivedReps++
			if !verdict.Admit {
				rep.Disagreement.RejectedCleanReps++
			}
		} else if verdict.Admit {
			rep.Disagreement.AdmittedMissedReps++
		}
	}

	rep.SurvivalProb = float64(rep.SurvivedReps) / float64(sc.Replications)
	rep.EngineSteps = agg.steps
	rep.InvariantViolations = agg.violations
	rep.Tasks = make([]TaskReport, len(sc.Tasks))
	for i, t := range sc.Tasks {
		tr := TaskReport{
			Name:          t.Name,
			PeriodNs:      t.PeriodNs,
			SliceNs:       t.SliceNs,
			WcetNs:        t.WcetNs,
			Arrivals:      agg.arrivals[i],
			Misses:        agg.misses[i],
			LateJobs:      recs[i].late,
			MaxMissStreak: agg.maxStreak[i],
			Degrades:      agg.degrades[i],
			Readmits:      agg.readmits[i],
			RespHist:      recs[i].hist,
		}
		if agg.arrivals[i] > 0 {
			tr.MissRate = float64(agg.misses[i]) / float64(agg.arrivals[i])
		}
		if recs[i].hist.N() > 0 {
			tr.RespP50Ns = recs[i].hist.Quantile(0.50)
			tr.RespP99Ns = recs[i].hist.Quantile(0.99)
			tr.RespMeanNs = recs[i].sum.Mean()
			tr.RespMaxNs = recs[i].sum.Max()
		}
		rep.TotalMisses += agg.misses[i]
		rep.TotalLateJobs += recs[i].late
		rep.Tasks[i] = tr
	}
	return rep, nil
}

// FaultNames returns the accepted fault preset names in stable order —
// a convenience re-export so CLI layers need not import internal/fault.
func FaultNames() []string {
	names := fault.PresetNames()
	sort.Strings(names)
	return names
}
