package whatif

import (
	"encoding/json"
	"testing"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/fault"
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

func testScenario() Scenario {
	return Scenario{
		Name: "unit",
		CPUs: 2,
		Tasks: []Task{
			{PeriodNs: 1_000_000, SliceNs: 400_000, CPU: 0},
			{PeriodNs: 2_000_000, SliceNs: 600_000, CPU: 1},
			{PeriodNs: 1_000_000, SliceNs: 300_000, CPU: 1, PhaseNs: 200_000},
		},
		Model:        "full-random",
		Faults:       []string{"smi-storm"},
		Degrade:      "demote",
		Replications: 5,
		Hyperperiods: 3,
	}
}

func TestModelParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"wcet", "full-random", "half-random", "random-0.8,1.2",
		"full-random:normal", "half-random:normal", "random-0.25,0.75:normal",
	} {
		m, err := ParseModel(s)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", s, err)
		}
		if got := m.String(); got != s {
			t.Errorf("ParseModel(%q).String() = %q", s, got)
		}
	}
	for _, s := range []string{
		"", "bogus", "wcet:normal", "random-1", "random-0,1", "random-2,1",
		"random-1,9", "full-random:cauchy",
	} {
		if _, err := ParseModel(s); err == nil {
			t.Errorf("ParseModel(%q): want error", s)
		}
	}
}

func TestDrawBounds(t *testing.T) {
	const wcet = 100_000
	cases := []struct {
		model  string
		lo, hi int64
	}{
		{"full-random", 1, wcet},
		{"half-random", wcet / 2, wcet},
		{"random-0.8,1.2", 80_000, 120_000},
		{"full-random:normal", 1, wcet},
		{"half-random:normal", wcet / 2, wcet},
	}
	for _, c := range cases {
		m, err := ParseModel(c.model)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(42)
		for i := 0; i < 2000; i++ {
			got := m.Draw(rng, wcet)
			if got < c.lo || got > c.hi {
				t.Fatalf("%s draw %d outside [%d, %d]", c.model, got, c.lo, c.hi)
			}
		}
	}
}

func TestWCETDrawInertAndConsumesNoRandomness(t *testing.T) {
	m, _ := ParseModel("wcet")
	rng := sim.NewRand(7)
	before := *rng
	if got := m.Draw(rng, 12345); got != 12345 {
		t.Fatalf("wcet draw = %d, want 12345", got)
	}
	if *rng != before {
		t.Fatal("wcet draw consumed randomness")
	}
	if m.Stochastic() {
		t.Fatal("wcet model reports stochastic")
	}
}

// TestSeededDeterminism: same scenario + seed => byte-identical report,
// text and JSON, across independent runs.
func TestSeededDeterminism(t *testing.T) {
	sc := testScenario()
	r1, err := Run(sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatalf("renders differ:\n%s\n--- vs ---\n%s", r1.Render(), r2.Render())
	}
	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("JSON encodings differ")
	}
	if r1.EngineSteps == 0 {
		t.Fatal("no engine steps recorded")
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	sc := testScenario()
	r1, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() == r2.Render() {
		t.Fatal("different seeds produced identical stochastic reports")
	}
}

// TestReportJSONRoundTrip: a decode/re-encode hop (what the routing proxy
// does for remote groups) must preserve the bytes exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	r, err := Run(testScenario(), 5)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("round trip changed bytes:\n%s\n--- vs ---\n%s", j1, j2)
	}
	if back.Tasks[0].RespHist.N() != r.Tasks[0].RespHist.N() {
		t.Fatal("histogram sample count lost in round trip")
	}
}

// baselineReplication reproduces runReplication with the model layer
// stripped out: jobs compute their WCET directly, no model, no per-task
// randomness. The wcet execution model must be indistinguishable from it.
func baselineReplication(sc Scenario, spec machine.Spec, seed uint64, durationNs int64, recs []*jobRecorder) (steps uint64, arrivals, misses []int64) {
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	cfg.Admit = core.AdmitNone
	cfg.WatchdogNs = 10_000_000
	k := core.Boot(m, cfg)
	core.AttachInvariants(k, seed, "whatif-baseline")

	threads := make([]*core.Thread, len(sc.Tasks))
	for i, task := range sc.Tasks {
		cons := core.PeriodicConstraints(task.PhaseNs, task.PeriodNs, task.SliceNs)
		wcet := int64(spec.NanosToCycles(task.SliceNs))
		if wcet < 1 {
			wcet = 1
		}
		rec := recs[i]
		state := 0
		var arrivalNs int64
		prog := core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			switch state {
			case 0:
				state = 1
				return core.ChangeConstraints{C: cons}
			case 1:
				arrivalNs = tc.T.ArrivalNs()
				state = 2
				return core.Compute{Cycles: wcet}
			case 2:
				state = 3
				return core.Call{Fn: func(tc *core.ThreadCtx) {
					resp := tc.NowNs - arrivalNs
					rec.hist.Add(float64(resp))
					rec.sum.Add(float64(resp))
				}}
			default:
				state = 1
				return core.SleepUntil{WallNs: tc.T.DeadlineNs()}
			}
		})
		threads[i] = k.Spawn(task.Name, task.CPU, prog)
	}
	_ = &fault.Env{M: m, K: k, Rng: m.Rand()}
	k.RunUntilNs(durationNs)
	arrivals = make([]int64, len(threads))
	misses = make([]int64, len(threads))
	for i, th := range threads {
		arrivals[i] = th.Arrivals
		misses[i] = th.Misses
	}
	return k.Eng.Steps(), arrivals, misses
}

// TestWCETInertDifferential proves the wcet model is inert: a whatif
// replication with model=wcet and no faults is bit-identical — engine
// step count, scheduler counters, and response-time observations — to the
// same workload hand-coded against the engine with no model layer at all.
func TestWCETInertDifferential(t *testing.T) {
	sc := testScenario()
	sc.Model = "wcet"
	sc.Faults = nil
	sc.Degrade = "off"
	sc = sc.Normalize()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	spec, _ := machine.SpecByName(sc.Machine)
	spec = spec.Scaled(sc.CPUs)
	model, _ := ParseModel(sc.Model)
	durationNs := hyperperiodNs(sc.Tasks) * int64(sc.Hyperperiods)

	for _, seed := range []uint64{1, 7, 42} {
		mkRecs := func() []*jobRecorder {
			recs := make([]*jobRecorder, len(sc.Tasks))
			for i, task := range sc.Tasks {
				recs[i] = &jobRecorder{hist: stats.NewHistogram(0, float64(2*task.PeriodNs), respHistBuckets)}
			}
			return recs
		}
		wRecs, bRecs := mkRecs(), mkRecs()
		out := runReplication(sc, spec, model, core.DegradeOff, seed, durationNs, wRecs)
		bSteps, bArrivals, bMisses := baselineReplication(sc, spec, seed, durationNs, bRecs)
		if out.steps != bSteps {
			t.Fatalf("seed %d: engine steps %d != baseline %d", seed, out.steps, bSteps)
		}
		for i := range sc.Tasks {
			if out.arrivals[i] != bArrivals[i] || out.misses[i] != bMisses[i] {
				t.Fatalf("seed %d task %d: arrivals/misses %d/%d != baseline %d/%d",
					seed, i, out.arrivals[i], out.misses[i], bArrivals[i], bMisses[i])
			}
			wj, _ := json.Marshal(wRecs[i].hist)
			bj, _ := json.Marshal(bRecs[i].hist)
			if string(wj) != string(bj) {
				t.Fatalf("seed %d task %d: response histograms differ", seed, i)
			}
		}
		if out.violations != 0 {
			t.Fatalf("seed %d: %d invariant violations", seed, out.violations)
		}
	}
}

// TestAdmissionDisagreementObserved: an overrun model (jobs may exceed
// their analytical budget) on an admitted set must surface
// admitted-but-missed replications, and the survival probability must
// reflect them.
func TestAdmissionDisagreementObserved(t *testing.T) {
	sc := Scenario{
		Name: "overrun",
		CPUs: 1,
		Tasks: []Task{
			{PeriodNs: 1_000_000, SliceNs: 450_000},
			{PeriodNs: 1_000_000, SliceNs: 450_000, PhaseNs: 500_000},
		},
		Model:        "random-1.0,1.6",
		Replications: 10,
		Hyperperiods: 4,
	}
	r, err := Run(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Admit {
		t.Fatalf("expected analytical admit, got reason %s", r.AdmitReason)
	}
	if r.TotalLateJobs == 0 {
		t.Fatal("overrun model produced no late jobs")
	}
	if r.Disagreement.AdmittedMissedReps == 0 {
		t.Fatal("no admitted-but-missed replications recorded")
	}
	if r.SurvivalProb >= 1 {
		t.Fatalf("survival prob %v should be < 1", r.SurvivalProb)
	}
}

// TestSimulateSustains1000Hyperperiods is the acceptance gate: one request
// worth of work — 1000 single-hyperperiod replications — completes well
// inside the default request timeout.
func TestSimulateSustains1000Hyperperiods(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Scenario{
		Name: "throughput",
		CPUs: 2,
		Tasks: []Task{
			{PeriodNs: 1_000_000, SliceNs: 300_000, CPU: 0},
			{PeriodNs: 1_000_000, SliceNs: 300_000, CPU: 1},
		},
		Model:        "half-random",
		Replications: 1000,
		Hyperperiods: 1,
	}
	start := time.Now()
	r, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 30*time.Second {
		t.Fatalf("1000 hyperperiod replications took %v, want < 30s", elapsed)
	}
	if r.Replications != 1000 {
		t.Fatalf("replications = %d", r.Replications)
	}
	t.Logf("1000 hyperperiod replications in %v (%.0f/s)",
		elapsed, 1000/elapsed.Seconds())
}

func TestValidateRejects(t *testing.T) {
	base := testScenario()
	cases := []func(*Scenario){
		func(s *Scenario) { s.Machine = "cray" },
		func(s *Scenario) { s.Tasks = nil },
		func(s *Scenario) { s.Tasks[0].SliceNs = s.Tasks[0].PeriodNs + 1 },
		func(s *Scenario) { s.Tasks[0].CPU = 99 },
		func(s *Scenario) { s.Tasks[0].PhaseNs = s.Tasks[0].PeriodNs },
		func(s *Scenario) { s.Model = "bogus" },
		func(s *Scenario) { s.Faults = []string{"meteor"} },
		func(s *Scenario) { s.Degrade = "ignore" },
		func(s *Scenario) { s.Replications = MaxReplications + 1 },
		func(s *Scenario) { s.Hyperperiods = MaxHyperperiods + 1 },
		func(s *Scenario) { s.Tasks[0].PeriodNs = 999_983; s.Tasks[1].PeriodNs = 999_979 },
	}
	for i, mutate := range cases {
		sc := base
		sc.Tasks = append([]Task(nil), base.Tasks...)
		mutate(&sc)
		sc = sc.Normalize()
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid scenario", i)
		}
	}
	if err := base.Normalize().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
}
