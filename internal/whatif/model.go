// Package whatif answers stochastic scheduling questions against the
// simulated machine: "would this task set survive this node under this
// fault mix?" A Scenario composes a periodic task set, a stochastic
// execution-time model, a named fault mix, and a degradation policy, and
// Run executes N seeded replications on the event engine, reporting miss
// behaviour, response-time distributions, survival probability, and how
// often the analytical admission verdict disagrees with observed timing.
//
// Determinism contract: every source of randomness derives from the
// machine's root seed through sim.Rand.Split in a fixed construction
// order, so a given (Scenario, Seed) pair produces a byte-identical
// Report — rendering and JSON included — on every run, platform, and
// routing path.
package whatif

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hrtsched/internal/sim"
)

// Dist selects the sampling distribution of a stochastic execution model.
type Dist uint8

const (
	// DistUniform draws uniformly over the model's [lo, hi] cycle range.
	DistUniform Dist = iota
	// DistNormal draws from a normal centred on the range midpoint with
	// sigma = (hi-lo)/6, truncated to the range — the "3σ" convention of
	// the DAG-simulator exemplar: the untruncated distribution puts
	// ~99.7% of its mass inside the range.
	DistNormal
)

// ModelKind selects how per-job execution cost relates to the task's WCET.
type ModelKind uint8

const (
	// ModelWCET runs every job for exactly its WCET. The model is inert:
	// Draw returns the budget unchanged and consumes no randomness, so a
	// wcet scenario is bit-identical to driving the engine directly.
	ModelWCET ModelKind = iota
	// ModelFullRandom draws from [1, C] where C is the WCET in cycles.
	ModelFullRandom
	// ModelHalfRandom draws from [C/2, C].
	ModelHalfRandom
	// ModelRange draws from [a*C, b*C] for configured fractions a <= b.
	// b may exceed 1 to model jobs that overrun their analytical budget.
	ModelRange
)

// maxRangeFrac caps ModelRange fractions; an overrun model beyond 4x WCET
// is a configuration error, not an experiment.
const maxRangeFrac = 4.0

// ExecModel is a per-job execution-cost model. The zero value is the
// inert WCET model.
type ExecModel struct {
	Kind ModelKind
	Dist Dist
	// LoFrac and HiFrac bound ModelRange draws as fractions of WCET.
	LoFrac, HiFrac float64
}

// ParseModel parses the textual model forms used in scenario JSON and on
// CLI flags:
//
//	wcet
//	full-random        half-random        random-<a>,<b>
//
// any of which (except wcet) may carry a ":uniform" or ":normal" suffix
// selecting the distribution (default uniform). Examples: "half-random",
// "full-random:normal", "random-0.8,1.2".
func ParseModel(s string) (ExecModel, error) {
	base, distName := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		base, distName = s[:i], s[i+1:]
	}
	var m ExecModel
	switch {
	case base == "wcet":
		if distName != "" {
			return m, fmt.Errorf("whatif: model %q: wcet takes no distribution", s)
		}
		return m, nil
	case base == "full-random":
		m.Kind = ModelFullRandom
	case base == "half-random":
		m.Kind = ModelHalfRandom
	case strings.HasPrefix(base, "random-"):
		m.Kind = ModelRange
		parts := strings.Split(strings.TrimPrefix(base, "random-"), ",")
		if len(parts) != 2 {
			return m, fmt.Errorf("whatif: model %q: want random-<a>,<b>", s)
		}
		lo, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return m, fmt.Errorf("whatif: model %q: bad lower fraction: %v", s, err)
		}
		hi, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return m, fmt.Errorf("whatif: model %q: bad upper fraction: %v", s, err)
		}
		if !(lo > 0) || hi < lo || hi > maxRangeFrac {
			return m, fmt.Errorf("whatif: model %q: want 0 < a <= b <= %g", s, maxRangeFrac)
		}
		m.LoFrac, m.HiFrac = lo, hi
	default:
		return m, fmt.Errorf("whatif: unknown model %q (want wcet, full-random, half-random, or random-<a>,<b>)", s)
	}
	switch distName {
	case "", "uniform":
		m.Dist = DistUniform
	case "normal":
		m.Dist = DistNormal
	default:
		return m, fmt.Errorf("whatif: model %q: unknown distribution %q (want uniform or normal)", s, distName)
	}
	return m, nil
}

// String renders the canonical textual form ParseModel accepts.
func (m ExecModel) String() string {
	var base string
	switch m.Kind {
	case ModelWCET:
		return "wcet"
	case ModelFullRandom:
		base = "full-random"
	case ModelHalfRandom:
		base = "half-random"
	case ModelRange:
		base = fmt.Sprintf("random-%g,%g", m.LoFrac, m.HiFrac)
	default:
		return fmt.Sprintf("ExecModel(%d)", uint8(m.Kind))
	}
	if m.Dist == DistNormal {
		return base + ":normal"
	}
	return base
}

// Stochastic reports whether Draw consumes randomness.
func (m ExecModel) Stochastic() bool { return m.Kind != ModelWCET }

// bounds returns the [lo, hi] cycle range for a WCET of c cycles.
func (m ExecModel) bounds(c int64) (lo, hi int64) {
	switch m.Kind {
	case ModelFullRandom:
		lo, hi = 1, c
	case ModelHalfRandom:
		lo, hi = c/2, c
	case ModelRange:
		lo = int64(math.Round(m.LoFrac * float64(c)))
		hi = int64(math.Round(m.HiFrac * float64(c)))
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Draw samples one job's execution cost in cycles given the task's WCET
// budget. The WCET model returns wcetCycles without touching rng — that
// inertness is load-bearing: it is what makes a wcet scenario reproduce
// the unmodelled engine bit-identically.
func (m ExecModel) Draw(rng *sim.Rand, wcetCycles int64) int64 {
	if m.Kind == ModelWCET {
		return wcetCycles
	}
	lo, hi := m.bounds(wcetCycles)
	if lo == hi {
		return lo
	}
	switch m.Dist {
	case DistNormal:
		mean := float64(lo+hi) / 2
		sigma := float64(hi-lo) / 6
		x := rng.TruncNormFloat64(mean, sigma, float64(lo), float64(hi))
		c := int64(math.Round(x))
		if c < lo {
			c = lo
		} else if c > hi {
			c = hi
		}
		return c
	default:
		return rng.Range(lo, hi)
	}
}
