// Tests live in wal_test so they can drive the log through the fault
// injector in internal/fault (which itself imports wal) without a cycle.
package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hrtsched/internal/fault"
	"hrtsched/internal/wal"
)

func payload(i int) []byte { return fmt.Appendf(nil, "record-%04d", i) }

func mustOpen(t *testing.T, opts wal.Options) (*wal.Log, wal.OpenReport) {
	t.Helper()
	l, rep, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return l, rep
}

func collect(t *testing.T, l *wal.Log, from uint64) (lsns []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(from, func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return lsns, payloads
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rep := mustOpen(t, wal.Options{Dir: dir})
	if rep.LastLSN != 0 || rep.TruncatedBytes != 0 || rep.DroppedSegments != 0 {
		t.Fatalf("fresh dir report: %+v", rep)
	}
	for i := 1; i <= 20; i++ {
		lsn, err := l.Append(payload(i))
		if err != nil || lsn != uint64(i) {
			t.Fatalf("Append(%d) = %d, %v", i, lsn, err)
		}
	}
	st := l.Stats()
	if st.Appends != 20 || st.LastLSN != 20 || st.SyncedLSN != 20 || st.Fsyncs == 0 {
		t.Fatalf("stats after 20 appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rep2 := mustOpen(t, wal.Options{Dir: dir})
	defer l2.Close()
	if rep2.LastLSN != 20 || rep2.TruncatedBytes != 0 || rep2.DroppedSegments != 0 {
		t.Fatalf("clean reopen report: %+v", rep2)
	}
	lsns, payloads := collect(t, l2, 5)
	if len(lsns) != 16 {
		t.Fatalf("replayed %d records, want 16", len(lsns))
	}
	for i, lsn := range lsns {
		want := uint64(5 + i)
		if lsn != want || !bytes.Equal(payloads[i], payload(int(want))) {
			t.Fatalf("record %d: lsn=%d payload=%q", i, lsn, payloads[i])
		}
	}
	// A reopened log appends after the recovered tail.
	if lsn, err := l2.Append(payload(21)); err != nil || lsn != 21 {
		t.Fatalf("append after reopen = %d, %v", lsn, err)
	}
}

func TestAppendBatchSingleFsync(t *testing.T) {
	l, _ := mustOpen(t, wal.Options{Dir: t.TempDir()})
	defer l.Close()
	payloads := make([][]byte, 100)
	for i := range payloads {
		payloads[i] = payload(i + 1)
	}
	tk, err := l.AppendBatch(payloads)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if tk.FirstLSN != 1 || tk.LastLSN != 100 {
		t.Fatalf("ticket LSNs: %+v", tk)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st := l.Stats()
	if st.Fsyncs != 1 || st.Batches != 1 || st.Appends != 100 {
		t.Fatalf("one batch should cost one fsync: %+v", st)
	}
	if st.FsyncLatencyUs.N() != 1 {
		t.Fatalf("fsync latency samples = %d, want 1", st.FsyncLatencyUs.N())
	}
}

func TestConcurrentAppendsAssignUniqueLSNs(t *testing.T) {
	l, _ := mustOpen(t, wal.Options{Dir: t.TempDir()})
	defer l.Close()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	lsnCh := make(chan uint64, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append(payload(w*perWorker + i))
				if err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
				lsnCh <- lsn
			}
		}(w)
	}
	wg.Wait()
	close(lsnCh)
	seen := map[uint64]bool{}
	for lsn := range lsnCh {
		if seen[lsn] {
			t.Fatalf("lsn %d assigned twice", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d lsns, want %d", len(seen), workers*perWorker)
	}
	st := l.Stats()
	if st.SyncedLSN != workers*perWorker || st.Appends != workers*perWorker {
		t.Fatalf("stats: %+v", st)
	}
	// Group commit should have shared at least some fsyncs under this much
	// concurrency — but never more fsyncs than appends.
	if st.Fsyncs > st.Appends {
		t.Fatalf("more fsyncs (%d) than appends (%d)", st.Fsyncs, st.Appends)
	}
}

func TestSegmentRollCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	// 64-byte threshold with 19-byte frames: segments hold 3 records each.
	l, _ := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 9; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Segments != 3 {
		t.Fatalf("segments = %d, want 3 (bases 1,4,7)", st.Segments)
	}
	// LSN 5 still lives in the second segment, so only the first
	// (records 1..3) is fully covered.
	removed, err := l.CompactBefore(5)
	if err != nil || removed != 1 {
		t.Fatalf("CompactBefore(5) = %d, %v", removed, err)
	}
	// The active segment survives even when fully covered.
	if removed, err = l.CompactBefore(100); err != nil || removed != 1 {
		t.Fatalf("CompactBefore(100) = %d, %v", removed, err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after compaction = %d, want 1", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen finds only the surviving suffix, with LSNs intact.
	l2, rep := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	if rep.LastLSN != 9 || rep.DroppedSegments != 0 {
		t.Fatalf("post-compaction reopen: %+v", rep)
	}
	lsns, _ := collect(t, l2, 1)
	if len(lsns) != 3 || lsns[0] != 7 || lsns[2] != 9 {
		t.Fatalf("replay after compaction: %v", lsns)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, FS: ffs})
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// The sixth record's bytes reach the file but its fsync fails: the log
	// latches the error and every later append reports it.
	ffs.FailSyncAt(1)
	if _, err := l.Append(payload(6)); !errors.Is(err, fault.ErrInjectedSync) {
		t.Fatalf("append over failed fsync: %v", err)
	}
	if _, err := l.Append(payload(7)); !errors.Is(err, fault.ErrInjectedSync) {
		t.Fatalf("latched log accepted an append: %v", err)
	}
	if st := l.Stats(); st.SyncedLSN != 5 || st.AppendErrors == 0 {
		t.Fatalf("stats after failed fsync: %+v", st)
	}
	l.Close() //nolint:errcheck // returns the latched injected error

	// Power loss keeps 5 unsynced bytes — a torn frame header.
	if err := ffs.Crash(fault.CrashOptions{KeepUnsynced: 5}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	ffs.Restart()
	l2, rep := mustOpen(t, wal.Options{Dir: dir, FS: ffs})
	defer l2.Close()
	if rep.LastLSN != 5 || rep.TruncatedBytes != 5 {
		t.Fatalf("torn-tail reopen: %+v", rep)
	}
	lsns, _ := collect(t, l2, 1)
	if len(lsns) != 5 {
		t.Fatalf("replay after torn tail: %v", lsns)
	}
	// New appends continue exactly where the valid prefix ended.
	if lsn, err := l2.Append(payload(6)); err != nil || lsn != 6 {
		t.Fatalf("append after repair = %d, %v", lsn, err)
	}
}

func TestCorruptedKeptByteDetectedByCRC(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, FS: ffs})
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ffs.FailSyncAt(1)
	l.Append(payload(6)) //nolint:errcheck // injected failure is the point
	l.Close()            //nolint:errcheck

	// Keep the whole unsynced frame but flip a bit in its last byte: the
	// frame is structurally complete and fails only its checksum.
	if err := ffs.Crash(fault.CrashOptions{KeepUnsynced: 1 << 20, CorruptKept: true}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	ffs.Restart()
	l2, rep := mustOpen(t, wal.Options{Dir: dir, FS: ffs})
	defer l2.Close()
	frameLen := int64(8 + len(payload(6)))
	if rep.LastLSN != 5 || rep.TruncatedBytes != frameLen {
		t.Fatalf("crc-corrupt reopen: %+v, want truncated=%d", rep, frameLen)
	}
}

func TestMidLogCorruptionDropsUnreachableSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 9; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip a payload byte in the middle segment (records 4..6): its frames
	// die at the CRC, and segment 7..9 becomes unreachable by replay.
	seg2 := filepath.Join(dir, "0000000000000004.wal")
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatalf("read %s: %v", seg2, err)
	}
	data[16+8] ^= 0xff // first payload byte: header (16) + frame header (8)
	if err := os.WriteFile(seg2, data, 0o644); err != nil {
		t.Fatalf("rewrite %s: %v", seg2, err)
	}

	l2, rep := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	if rep.LastLSN != 3 || rep.DroppedSegments != 1 || rep.TruncatedBytes == 0 {
		t.Fatalf("mid-log corruption report: %+v", rep)
	}
	lsns, _ := collect(t, l2, 1)
	if len(lsns) != 3 || lsns[len(lsns)-1] != 3 {
		t.Fatalf("replay served records past the corruption: %v", lsns)
	}
	if _, err := os.Stat(filepath.Join(dir, "0000000000000007.wal")); !os.IsNotExist(err) {
		t.Fatalf("unreachable segment not deleted: %v", err)
	}
	// The log keeps serving: appends restart at the first lost LSN.
	if lsn, err := l2.Append(payload(4)); err != nil || lsn != 4 {
		t.Fatalf("append after drop = %d, %v", lsn, err)
	}
}

func TestBaseLSNStartsPastSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, rep := mustOpen(t, wal.Options{Dir: dir, BaseLSN: 100})
	if rep.LastLSN != 99 {
		t.Fatalf("BaseLSN report: %+v", rep)
	}
	if lsn, err := l.Append(payload(0)); err != nil || lsn != 100 {
		t.Fatalf("first append = %d, %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// BaseLSN only applies to empty directories: reopening follows the log.
	l2, rep2 := mustOpen(t, wal.Options{Dir: dir, BaseLSN: 5})
	defer l2.Close()
	if rep2.LastLSN != 100 {
		t.Fatalf("reopen ignored existing records: %+v", rep2)
	}
}

func TestRemoveAllWipesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n, err := wal.RemoveAll(nil, dir)
	if err != nil || n != 2 {
		t.Fatalf("RemoveAll = %d, %v; want 2 segments", n, err)
	}
	l2, rep := mustOpen(t, wal.Options{Dir: dir})
	defer l2.Close()
	if rep.LastLSN != 0 {
		t.Fatalf("wiped dir still has records: %+v", rep)
	}
}

func TestAppendValidationAndClose(t *testing.T) {
	l, _ := mustOpen(t, wal.Options{Dir: t.TempDir()})
	if _, err := l.AppendBatch(nil); err == nil {
		t.Fatalf("empty batch accepted")
	}
	if _, err := l.Append(nil); err == nil {
		t.Fatalf("empty payload accepted")
	}
	if _, err := l.AppendBatch([][]byte{make([]byte, wal.MaxRecordBytes+1)}); err == nil {
		t.Fatalf("oversized payload accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(payload(1)); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestWriteFailureLatchesLog(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	l, _ := mustOpen(t, wal.Options{Dir: t.TempDir(), FS: ffs})
	if _, err := l.Append(payload(1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	ffs.FailWriteAt(1)
	if _, err := l.Append(payload(2)); !errors.Is(err, fault.ErrInjectedWrite) {
		t.Fatalf("append over failed write: %v", err)
	}
	if _, err := l.Append(payload(3)); !errors.Is(err, fault.ErrInjectedWrite) {
		t.Fatalf("latched log accepted an append: %v", err)
	}
	if st := l.Stats(); st.AppendErrors != 1 || st.SyncedLSN != 1 {
		t.Fatalf("stats after latched failure: %+v", st)
	}
	if err := l.Close(); !errors.Is(err, fault.ErrInjectedWrite) {
		t.Fatalf("Close should surface the latched error: %v", err)
	}
}

func TestReadFromWhileAppending(t *testing.T) {
	l, _ := mustOpen(t, wal.Options{Dir: t.TempDir(), SegmentBytes: 64})
	defer l.Close()
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Concurrent appends must not disturb a committed-suffix read.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 31; i <= 60; i++ {
			l.Append(payload(i)) //nolint:errcheck
		}
	}()
	recs, err := l.ReadFrom(7, 10)
	<-done
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(recs) != 10 {
		t.Fatalf("ReadFrom returned %d records, want 10", len(recs))
	}
	for i, r := range recs {
		want := uint64(7 + i)
		if r.LSN != want || !bytes.Equal(r.Payload, payload(int(want))) {
			t.Fatalf("rec %d: lsn=%d payload=%q", i, r.LSN, r.Payload)
		}
	}
	if recs, err := l.ReadFrom(1000, 5); err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom past the end: %d recs, %v", len(recs), err)
	}
}

func TestTruncateFromDropsSuffixAndReassignsLSNs(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 20; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("want multiple segments, got %d", l.Stats().Segments)
	}
	// Cut inside an earlier segment: whole later segments drop, the cut
	// segment truncates in place.
	n, err := l.TruncateFrom(8)
	if err != nil || n != 13 {
		t.Fatalf("TruncateFrom(8) = %d, %v; want 13 dropped", n, err)
	}
	if st := l.Stats(); st.LastLSN != 7 || st.SyncedLSN != 7 {
		t.Fatalf("stats after truncate: %+v", st)
	}
	// The next append reuses LSN 8 with different content.
	if lsn, err := l.Append([]byte("replacement-8")); err != nil || lsn != 8 {
		t.Fatalf("append after truncate = %d, %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rep := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	if rep.LastLSN != 8 || rep.TruncatedBytes != 0 || rep.DroppedSegments != 0 {
		t.Fatalf("reopen after truncate: %+v", rep)
	}
	lsns, payloads := collect(t, l2, 7)
	if len(lsns) != 2 || !bytes.Equal(payloads[1], []byte("replacement-8")) {
		t.Fatalf("replay after truncate: lsns=%v payloads=%q", lsns, payloads)
	}
	// No-op cuts.
	if n, err := l2.TruncateFrom(100); err != nil || n != 0 {
		t.Fatalf("TruncateFrom past end = %d, %v", n, err)
	}
}

func TestTruncateFromWholeLog(t *testing.T) {
	l, _ := mustOpen(t, wal.Options{Dir: t.TempDir(), SegmentBytes: 64})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n, err := l.TruncateFrom(1); err != nil || n != 10 {
		t.Fatalf("TruncateFrom(1) = %d, %v", n, err)
	}
	if st := l.Stats(); st.LastLSN != 0 {
		t.Fatalf("stats after full truncate: %+v", st)
	}
	if lsn, err := l.Append(payload(1)); err != nil || lsn != 1 {
		t.Fatalf("append after full truncate = %d, %v", lsn, err)
	}
}

// TestCorruptionOnSegmentBoundaryFrame covers the cross-segment torn-tail
// case: the corrupt frame is the LAST frame of a sealed (non-tail)
// segment, so repair must truncate that segment at the boundary AND drop
// every later segment as unreachable, never resurrecting records past the
// cut.
func TestCorruptionOnSegmentBoundaryFrame(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 20; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	segs := l.Stats().Segments
	if segs < 3 {
		t.Fatalf("want >= 3 segments, got %d", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip a bit in the FINAL byte of the second segment: its boundary
	// frame (the last record before the roll) fails CRC.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	var segNames []string
	for _, e := range names {
		segNames = append(segNames, e.Name())
	}
	// Lexicographic order == LSN order for %016x names.
	victim := filepath.Join(dir, segNames[1])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("read victim: %v", err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatalf("corrupt victim: %v", err)
	}

	l2, rep := mustOpen(t, wal.Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	if rep.TruncatedBytes == 0 {
		t.Fatalf("boundary corruption not truncated: %+v", rep)
	}
	if rep.DroppedSegments != segs-2 {
		t.Fatalf("dropped %d segments, want %d: %+v", rep.DroppedSegments, segs-2, rep)
	}
	lsns, _ := collect(t, l2, 1)
	if len(lsns) == 0 || lsns[len(lsns)-1] != rep.LastLSN {
		t.Fatalf("replay end %v != report %d", lsns, rep.LastLSN)
	}
	// Every surviving record is an unbroken prefix 1..LastLSN.
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("hole in recovered prefix at %d: %v", i, lsns)
		}
	}
	// And the log keeps appending from the repaired tail.
	if lsn, err := l2.Append(payload(999)); err != nil || lsn != rep.LastLSN+1 {
		t.Fatalf("append after boundary repair = %d, %v (want %d)", lsn, err, rep.LastLSN+1)
	}
}

// TestCrashCorruptKeptAcrossSegmentRoll drives the same cross-segment case
// through the crash injector: the torn-and-corrupted tail lands exactly on
// the frame that opens a fresh segment, so the kept byte count ends inside
// the new segment's first frame while the sealed segment stays intact.
func TestCrashCorruptKeptAcrossSegmentRoll(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	l, _ := mustOpen(t, wal.Options{Dir: dir, FS: ffs, SegmentBytes: 64})
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	before := l.Stats()
	// The next batch rolls into a fresh segment; its fsync fails, so the
	// header and frame bytes exist but are not durable.
	ffs.FailSyncAt(1)
	if _, err := l.Append(payload(7)); !errors.Is(err, fault.ErrInjectedSync) {
		t.Fatalf("append over failed sync: %v", err)
	}
	// Keep the whole unsynced tail but corrupt its last byte: the damage
	// sits exactly on the boundary frame of the new segment.
	if err := ffs.Crash(fault.CrashOptions{KeepUnsynced: 1 << 20, CorruptKept: true}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	l.Close() //nolint:errcheck — log is latched by the injected failure
	ffs.Restart()

	l2, rep := mustOpen(t, wal.Options{Dir: dir, FS: ffs, SegmentBytes: 64})
	defer l2.Close()
	if rep.LastLSN != before.SyncedLSN {
		t.Fatalf("recovered LastLSN %d, want synced pre-crash %d (report %+v)",
			rep.LastLSN, before.SyncedLSN, rep)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatalf("corrupt boundary frame not amputated: %+v", rep)
	}
	lsns, _ := collect(t, l2, 1)
	if uint64(len(lsns)) != before.SyncedLSN {
		t.Fatalf("replay found %d records, want %d", len(lsns), before.SyncedLSN)
	}
	if lsn, err := l2.Append(payload(7)); err != nil || lsn != before.SyncedLSN+1 {
		t.Fatalf("append after crash repair = %d, %v", lsn, err)
	}
}
