// Package wal is a segmented, CRC32C-framed, fsync-batched write-ahead
// log. Records are opaque payloads framed as [u32 length][u32 crc32c]
// [payload] and numbered by a monotonically increasing LSN starting at 1;
// frames are appended to segment files named <first-LSN-hex>.wal that
// roll at a size threshold and are deleted wholesale once a snapshot
// covers them (CompactBefore).
//
// Durability is group-committed: appenders enqueue batches and block on a
// Ticket while a single writer goroutine gathers everything queued,
// writes it with one fsync, and releases every waiter — so the fsync cost
// amortizes across all concurrent appenders, not per record.
//
// Open repairs the log before handing it back: the tail segment is
// scanned frame by frame and truncated at the first torn or
// CRC-mismatching frame (the normal crash artifact), while corruption in
// a non-tail segment stops replay at the last valid record — everything
// after it is dropped and counted, never silently served.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hrtsched/internal/stats"
)

const (
	segmentMagic = "hrtwal01"
	headerSize   = 16 // magic (8) + base LSN (8)
	frameHeader  = 8  // payload length (4) + crc32c (4)
	segSuffix    = ".wal"

	// MaxRecordBytes bounds one payload; a longer length field in a frame
	// is treated as corruption, so garbage cannot force a huge read.
	MaxRecordBytes = 16 << 20

	// maxGroup caps how many queued append requests one fsync covers.
	maxGroup = 512
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options parameterizes Open. Zero fields take defaults.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// FS is the filesystem to write through; default OSFS.
	FS FS
	// SegmentBytes is the roll threshold; default 4 MiB.
	SegmentBytes int64
	// QueueDepth bounds the writer queue; default 1024.
	QueueDepth int
	// BaseLSN is the first LSN to assign when the directory holds no
	// valid records (default 1). A caller whose snapshot outruns a torn
	// log wipes the stale segments and reopens with BaseLSN just past the
	// snapshot, so already-covered LSNs are never reassigned.
	BaseLSN uint64
}

func (o *Options) fillDefaults() {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 1024
	}
	if o.BaseLSN == 0 {
		o.BaseLSN = 1
	}
}

// OpenReport summarizes the repairs Open performed.
type OpenReport struct {
	// LastLSN is the last valid record found (0 for an empty log).
	LastLSN uint64 `json:"last_lsn"`
	// TruncatedBytes counts bytes amputated from torn or corrupt frames.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// DroppedSegments counts whole segments discarded because they sat
	// after a corrupt frame or a hole in the LSN chain.
	DroppedSegments int `json:"dropped_segments"`
}

// Stats is a point-in-time snapshot of the log.
type Stats struct {
	Segments     int
	Bytes        int64
	LastLSN      uint64 // last LSN assigned to an append
	SyncedLSN    uint64 // last LSN known durable
	Appends      int64  // records appended this session
	Batches      int64  // group commits this session
	Fsyncs       int64
	AppendErrors int64
	// FsyncLatencyUs is a log-scale histogram of fsync latencies.
	FsyncLatencyUs *stats.Histogram
}

type segMeta struct {
	base    uint64
	records int64
	bytes   int64
	name    string
}

func (s segMeta) end() uint64 { return s.base + uint64(s.records) - 1 }

type appendReq struct {
	payloads [][]byte
	first    uint64
	done     chan error
}

// Ticket is one in-flight append batch; Wait blocks until the batch is
// durable (fsynced) or failed. Wait may be called at most once.
type Ticket struct {
	// FirstLSN and LastLSN are the LSNs assigned to the batch's records.
	FirstLSN, LastLSN uint64
	done              chan error
}

// Wait blocks until the batch is durable, returning the write error if
// the group commit failed.
func (t Ticket) Wait() error { return <-t.done }

// Log is an open write-ahead log.
type Log struct {
	opts Options

	// mu orders LSN assignment with writer-queue insertion, so channel
	// order always equals LSN order.
	mu      sync.Mutex
	nextLSN uint64
	closed  bool
	ch      chan *appendReq
	done    chan struct{}

	// segMu guards segment metadata, counters, and the failure latch; it
	// is never held while waiting on the queue, so the writer and
	// appenders cannot deadlock through it.
	segMu     sync.Mutex
	segs      []segMeta
	f         File // active segment handle (writer-owned after Open)
	err       error
	syncedLSN uint64
	appends   int64
	batches   int64
	fsyncs    int64
	appendErr int64
	fsyncLat  *stats.Histogram

	buf bytes.Buffer // writer-only frame staging
}

// Open scans dir, repairs the tail, and returns an appendable log plus a
// report of what recovery found. Replay must be called (if at all) before
// the first append.
func Open(opts Options) (*Log, OpenReport, error) {
	opts.fillDefaults()
	if opts.Dir == "" {
		return nil, OpenReport{}, errors.New("wal: Options.Dir is required")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, OpenReport{}, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}
	l := &Log{
		opts: opts,
		ch:   make(chan *appendReq, opts.QueueDepth),
		done: make(chan struct{}),
		// 1 µs .. 1 s on a log scale: fsync spans tmpfs to spinning rust.
		fsyncLat: stats.NewLogHistogram(1, 1e6, 36),
	}
	rep, err := l.scan()
	if err != nil {
		return nil, rep, err
	}
	l.nextLSN = rep.LastLSN + 1
	if len(l.segs) == 0 && l.nextLSN < opts.BaseLSN {
		l.nextLSN = opts.BaseLSN
		rep.LastLSN = opts.BaseLSN - 1
	}
	l.syncedLSN = rep.LastLSN
	if err := l.openActive(); err != nil {
		return nil, rep, err
	}
	go l.run()
	return l, rep, nil
}

// segPath returns the path of the segment with the given name.
func (l *Log) segPath(name string) string { return filepath.Join(l.opts.Dir, name) }

func segName(base uint64) string { return fmt.Sprintf("%016x%s", base, segSuffix) }

// scan validates every segment in LSN order, truncating the first invalid
// frame and dropping everything after it.
func (l *Log) scan() (OpenReport, error) {
	var rep OpenReport
	names, err := l.opts.FS.ReadDir(l.opts.Dir)
	if err != nil {
		return rep, fmt.Errorf("wal: list %s: %w", l.opts.Dir, err)
	}
	type cand struct {
		base uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		base, ok := parseSegName(name)
		if ok {
			cands = append(cands, cand{base, name})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].base < cands[j].base })

	corrupted := false
	for i, cd := range cands {
		last := i == len(cands)-1
		if corrupted || (len(l.segs) > 0 && cd.base != l.segs[len(l.segs)-1].end()+1) {
			// Past a corrupt frame — or past a hole in the LSN chain —
			// records are unreachable by replay; drop them loudly.
			corrupted = true
			rep.DroppedSegments++
			if err := l.opts.FS.Remove(l.segPath(cd.name)); err != nil {
				return rep, fmt.Errorf("wal: drop unreachable segment %s: %w", cd.name, err)
			}
			continue
		}
		meta, truncated, ok, err := l.scanSegment(cd.name, cd.base)
		if err != nil {
			return rep, err
		}
		rep.TruncatedBytes += truncated
		if !ok && !last {
			corrupted = true
		}
		l.segs = append(l.segs, meta)
		if meta.records > 0 {
			rep.LastLSN = meta.end()
		} else if len(l.segs) == 1 {
			rep.LastLSN = meta.base - 1
		}
	}
	return rep, nil
}

// scanSegment walks one segment's frames, truncating the file at the
// first invalid one. ok reports whether the whole file was valid.
func (l *Log) scanSegment(name string, base uint64) (segMeta, int64, bool, error) {
	path := l.segPath(name)
	f, err := l.opts.FS.Open(path)
	if err != nil {
		return segMeta{}, 0, false, fmt.Errorf("wal: open %s: %w", name, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return segMeta{}, 0, false, fmt.Errorf("wal: read %s: %w", name, err)
	}
	valid := int64(0)
	records := int64(0)
	if len(data) >= headerSize &&
		string(data[:8]) == segmentMagic &&
		binary.LittleEndian.Uint64(data[8:16]) == base {
		valid = headerSize
		for {
			_, _, next := nextFrame(data, valid)
			if next < 0 {
				break
			}
			valid = next
			records++
		}
	}
	truncated := int64(len(data)) - valid
	if truncated > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return segMeta{}, 0, false, fmt.Errorf("wal: truncate %s: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return segMeta{}, 0, false, fmt.Errorf("wal: sync %s: %w", name, err)
		}
	}
	if err := f.Close(); err != nil {
		return segMeta{}, 0, false, fmt.Errorf("wal: close %s: %w", name, err)
	}
	return segMeta{base: base, records: records, bytes: valid, name: name},
		truncated, truncated == 0, nil
}

// nextFrame validates the frame at off and returns its payload and the
// next offset, or next < 0 when the frame is torn, corrupt, or absent.
func nextFrame(data []byte, off int64) (length int, payload []byte, next int64) {
	if off+frameHeader > int64(len(data)) {
		return 0, nil, -1
	}
	n := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > MaxRecordBytes {
		return 0, nil, -1
	}
	end := off + frameHeader + int64(n)
	if end > int64(len(data)) {
		return 0, nil, -1
	}
	p := data[off+frameHeader : end]
	if crc32.Checksum(p, castagnoli) != crc {
		return 0, nil, -1
	}
	return int(n), p, end
}

// openActive opens the newest segment for appending (creating the first
// one for an empty log) and repairs a missing header.
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		l.segs = append(l.segs, segMeta{base: l.nextLSN, name: segName(l.nextLSN)})
		f, err := l.opts.FS.Create(l.segPath(l.segs[0].name))
		if err != nil {
			return fmt.Errorf("wal: create segment: %w", err)
		}
		l.f = f
		return l.writeHeader(&l.segs[0])
	}
	active := &l.segs[len(l.segs)-1]
	f, err := l.opts.FS.Open(l.segPath(active.name))
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	l.f = f
	if active.bytes < headerSize {
		// The header itself was torn off; rewrite it in place.
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("wal: reset active segment: %w", err)
		}
		return l.writeHeader(active)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: seek active segment: %w", err)
	}
	return nil
}

func (l *Log) writeHeader(seg *segMeta) error {
	var hdr [headerSize]byte
	copy(hdr[:8], segmentMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seg.base)
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	seg.bytes = headerSize
	return nil
}

// Append appends one payload and blocks until it is durable.
func (l *Log) Append(payload []byte) (uint64, error) {
	t, err := l.AppendBatch([][]byte{payload})
	if err != nil {
		return 0, err
	}
	return t.FirstLSN, t.Wait()
}

// AppendBatch assigns LSNs to the payloads and enqueues them for the
// writer; the returned Ticket's Wait blocks until the whole batch is
// durable. Batches from concurrent callers share fsyncs (group commit).
func (l *Log) AppendBatch(payloads [][]byte) (Ticket, error) {
	if len(payloads) == 0 {
		return Ticket{}, errors.New("wal: empty batch")
	}
	for _, p := range payloads {
		if len(p) == 0 || len(p) > MaxRecordBytes {
			return Ticket{}, fmt.Errorf("wal: payload size %d outside (0,%d]", len(p), MaxRecordBytes)
		}
	}
	if err := l.failedErr(); err != nil {
		return Ticket{}, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	req := &appendReq{payloads: payloads, first: l.nextLSN, done: make(chan error, 1)}
	l.nextLSN += uint64(len(payloads))
	// Enqueue under mu so queue order equals LSN order; a full queue
	// blocks here, back-pressuring all appenders.
	l.ch <- req
	l.mu.Unlock()
	return Ticket{
		FirstLSN: req.first,
		LastLSN:  req.first + uint64(len(payloads)) - 1,
		done:     req.done,
	}, nil
}

// run is the writer loop: block for one request, gather everything else
// queued, commit the group with a single fsync.
func (l *Log) run() {
	for {
		req, ok := <-l.ch
		if !ok {
			break
		}
		batch := []*appendReq{req}
	gather:
		for len(batch) < maxGroup {
			select {
			case r, more := <-l.ch:
				if !more {
					l.writeBatch(batch)
					batch = nil
					break gather
				}
				batch = append(batch, r)
			default:
				break gather
			}
		}
		if batch != nil {
			l.writeBatch(batch)
		} else {
			break
		}
	}
	l.segMu.Lock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.segMu.Unlock()
	close(l.done)
}

func (l *Log) writeBatch(batch []*appendReq) {
	if err := l.failedErr(); err != nil {
		failAll(batch, err)
		return
	}
	l.segMu.Lock()
	active := &l.segs[len(l.segs)-1]
	needRoll := active.bytes >= l.opts.SegmentBytes && active.records > 0
	f := l.f
	l.segMu.Unlock()

	if needRoll {
		if err := l.roll(batch[0].first); err != nil {
			l.fail(err, batch)
			return
		}
		l.segMu.Lock()
		f = l.f
		l.segMu.Unlock()
	}

	l.buf.Reset()
	records := int64(0)
	last := uint64(0)
	var hdr [frameHeader]byte
	for _, r := range batch {
		for _, p := range r.payloads {
			binary.LittleEndian.PutUint32(hdr[:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(p, castagnoli))
			l.buf.Write(hdr[:])
			l.buf.Write(p)
			records++
		}
		last = r.first + uint64(len(r.payloads)) - 1
	}
	if _, err := f.Write(l.buf.Bytes()); err != nil {
		l.fail(fmt.Errorf("wal: write: %w", err), batch)
		return
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: fsync: %w", err), batch)
		return
	}
	latUs := float64(time.Since(t0).Nanoseconds()) / 1e3

	l.segMu.Lock()
	seg := &l.segs[len(l.segs)-1]
	seg.bytes += int64(l.buf.Len())
	seg.records += records
	l.appends += records
	l.batches++
	l.fsyncs++
	l.fsyncLat.Add(latUs)
	l.syncedLSN = last
	l.segMu.Unlock()

	for _, r := range batch {
		r.done <- nil
	}
}

// roll seals the active segment and starts a new one whose base is the
// next LSN to be written.
func (l *Log) roll(base uint64) error {
	l.segMu.Lock()
	old := l.f
	l.segMu.Unlock()
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: close sealed segment: %w", err)
	}
	seg := segMeta{base: base, name: segName(base)}
	f, err := l.opts.FS.Create(l.segPath(seg.name))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.segMu.Lock()
	l.f = f
	l.segs = append(l.segs, seg)
	activePtr := &l.segs[len(l.segs)-1]
	l.segMu.Unlock()
	return l.writeHeader(activePtr)
}

// fail latches the log into a failed state: the current batch and every
// later append report the error, and nothing further touches the disk.
func (l *Log) fail(err error, batch []*appendReq) {
	l.segMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.appendErr += int64(len(batch))
	l.segMu.Unlock()
	failAll(batch, err)
}

func failAll(batch []*appendReq, err error) {
	for _, r := range batch {
		r.done <- err
	}
}

func (l *Log) failedErr() error {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	return l.err
}

// Replay streams every valid record with LSN >= fromLSN, in order, to fn.
// It must complete before the first append of the session.
func (l *Log) Replay(fromLSN uint64, fn func(lsn uint64, payload []byte) error) error {
	l.segMu.Lock()
	if l.appends > 0 {
		l.segMu.Unlock()
		return errors.New("wal: Replay after Append")
	}
	segs := append([]segMeta(nil), l.segs...)
	l.segMu.Unlock()

	for _, seg := range segs {
		if seg.records == 0 || seg.end() < fromLSN {
			continue
		}
		f, err := l.opts.FS.Open(l.segPath(seg.name))
		if err != nil {
			return fmt.Errorf("wal: replay open %s: %w", seg.name, err)
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("wal: replay read %s: %w", seg.name, err)
		}
		off := int64(headerSize)
		for lsn := seg.base; lsn <= seg.end(); lsn++ {
			_, payload, next := nextFrame(data, off)
			if next < 0 {
				return fmt.Errorf("wal: replay: segment %s changed under us at offset %d", seg.name, off)
			}
			off = next
			if lsn < fromLSN {
				continue
			}
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// CompactBefore removes sealed segments every record of which has LSN
// < lsn (typically the latest snapshot LSN + 1). The active segment is
// never removed. Returns the number of segments deleted.
func (l *Log) CompactBefore(lsn uint64) (int, error) {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	removed := 0
	for len(l.segs) > 1 {
		s := l.segs[0]
		covered := s.records == 0 || s.end() < lsn
		if !covered || s.base > lsn {
			break
		}
		if err := l.opts.FS.Remove(l.segPath(s.name)); err != nil {
			return removed, fmt.Errorf("wal: compact %s: %w", s.name, err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	return removed, nil
}

// Rec is one record streamed out of the log by ReadFrom.
type Rec struct {
	LSN     uint64
	Payload []byte
}

// ReadFrom returns up to max records starting at fromLSN, reading only
// frames already covered by a successful group commit. Unlike Replay it is
// safe to call while appends are in flight: segment metadata (advanced
// only after each fsync) bounds how far into a file it will read, so a
// half-written trailing frame is never touched. Used by the replication
// layer to ship committed suffixes to lagging followers.
func (l *Log) ReadFrom(fromLSN uint64, max int) ([]Rec, error) {
	if max <= 0 {
		return nil, nil
	}
	l.segMu.Lock()
	segs := append([]segMeta(nil), l.segs...)
	l.segMu.Unlock()

	var out []Rec
	for _, seg := range segs {
		if seg.records == 0 || seg.end() < fromLSN {
			continue
		}
		f, err := l.opts.FS.Open(l.segPath(seg.name))
		if err != nil {
			return nil, fmt.Errorf("wal: read open %s: %w", seg.name, err)
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", seg.name, err)
		}
		off := int64(headerSize)
		for lsn := seg.base; lsn <= seg.end(); lsn++ {
			_, payload, next := nextFrame(data, off)
			if next < 0 {
				return out, fmt.Errorf("wal: read: segment %s invalid at offset %d", seg.name, off)
			}
			off = next
			if lsn < fromLSN {
				continue
			}
			out = append(out, Rec{LSN: lsn, Payload: append([]byte(nil), payload...)})
			if len(out) >= max {
				return out, nil
			}
		}
	}
	return out, nil
}

// TruncateFrom discards every record with LSN >= lsn: whole segments past
// the cut are removed, the segment holding the cut is truncated and
// synced, and the next append is assigned lsn again. The caller must
// guarantee no append is in flight (the replication layer serializes
// follower appends); records already handed to waiters stay valid only
// below the cut. Returns how many records were discarded.
func (l *Log) TruncateFrom(lsn uint64) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.segMu.Lock()
	defer l.segMu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if lsn >= l.nextLSN {
		return 0, nil
	}

	var removed int64
	// Drop whole segments whose base is at or past the cut (never the
	// first: the log always keeps an active segment).
	for len(l.segs) > 1 && l.segs[len(l.segs)-1].base >= lsn {
		s := l.segs[len(l.segs)-1]
		if l.f != nil {
			l.f.Close() //nolint:errcheck // about to unlink the file
			l.f = nil
		}
		if err := l.opts.FS.Remove(l.segPath(s.name)); err != nil {
			l.err = fmt.Errorf("wal: truncate remove %s: %w", s.name, err)
			return removed, l.err
		}
		removed += s.records
		l.segs = l.segs[:len(l.segs)-1]
	}

	active := &l.segs[len(l.segs)-1]
	if lsn <= active.base+uint64(active.records)-1 && active.records > 0 {
		// The cut lands inside this segment: walk frames to its offset.
		if l.f != nil {
			l.f.Close() //nolint:errcheck
			l.f = nil
		}
		f, err := l.opts.FS.Open(l.segPath(active.name))
		if err != nil {
			l.err = fmt.Errorf("wal: truncate open %s: %w", active.name, err)
			return removed, l.err
		}
		data, err := io.ReadAll(f)
		if err != nil {
			f.Close()
			l.err = fmt.Errorf("wal: truncate read %s: %w", active.name, err)
			return removed, l.err
		}
		off := int64(headerSize)
		keep := int64(0)
		cut := lsn
		if cut < active.base {
			cut = active.base
		}
		for i := active.base; i < cut; i++ {
			_, _, next := nextFrame(data, off)
			if next < 0 {
				f.Close()
				l.err = fmt.Errorf("wal: truncate: segment %s invalid at offset %d", active.name, off)
				return removed, l.err
			}
			off = next
			keep++
		}
		if err := f.Truncate(off); err != nil {
			f.Close()
			l.err = fmt.Errorf("wal: truncate %s: %w", active.name, err)
			return removed, l.err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			l.err = fmt.Errorf("wal: truncate sync %s: %w", active.name, err)
			return removed, l.err
		}
		f.Close()
		removed += active.records - keep
		active.records = keep
		active.bytes = off
	}

	// Reopen the active segment for appending at its new end.
	if l.f == nil {
		f, err := l.opts.FS.Open(l.segPath(active.name))
		if err != nil {
			l.err = fmt.Errorf("wal: truncate reopen %s: %w", active.name, err)
			return removed, l.err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			l.err = fmt.Errorf("wal: truncate seek %s: %w", active.name, err)
			return removed, l.err
		}
		l.f = f
	}
	end := active.base + uint64(active.records) - 1
	if active.records == 0 {
		end = active.base - 1
	}
	l.nextLSN = end + 1
	if l.syncedLSN > end {
		l.syncedLSN = end
	}
	return removed, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	lastLSN := l.nextLSN - 1
	l.mu.Unlock()
	l.segMu.Lock()
	defer l.segMu.Unlock()
	st := Stats{
		Segments:       len(l.segs),
		LastLSN:        lastLSN,
		SyncedLSN:      l.syncedLSN,
		Appends:        l.appends,
		Batches:        l.batches,
		Fsyncs:         l.fsyncs,
		AppendErrors:   l.appendErr,
		FsyncLatencyUs: l.fsyncLat.Clone(),
	}
	for _, s := range l.segs {
		st.Bytes += s.bytes
	}
	return st
}

// Close flushes queued appends, syncs, and releases the log. Safe to call
// more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.failedErr()
	}
	l.closed = true
	close(l.ch)
	l.mu.Unlock()
	<-l.done
	return l.failedErr()
}

// RemoveAll deletes every segment file in dir (not other files), for
// callers whose snapshot has overtaken a torn log and who are about to
// reopen at a higher BaseLSN. The log must not be open on dir.
func RemoveAll(fs FS, dir string) (int, error) {
	if fs == nil {
		fs = OSFS{}
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, name := range names {
		if _, ok := parseSegName(name); !ok {
			continue
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(name, segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	base, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil || base == 0 {
		return 0, false
	}
	return base, true
}
