package wal

import (
	"io"
	"os"
)

// FS is the narrow filesystem surface the log and snapshot codecs write
// through. Production code uses OSFS; tests swap in the fault-injecting
// wrapper from internal/fault to model short writes, fsync failures, and
// crashes at arbitrary byte boundaries without killing the process.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the entry names in dir (files only are required).
	ReadDir(dir string) ([]string, error)
	// Create opens name for read/write, creating or truncating it.
	Create(name string) (File, error)
	// Open opens an existing name for read/write without truncating; the
	// cursor starts at offset 0.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
}

// File is the per-file surface: sequential read/write plus the durability
// and repair operations the log needs (Sync for group commit, Truncate for
// torn-tail amputation, Seek to find ends and re-read).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }
