// Package legion is a miniature Legion-like task-based run-time — the
// first of the run-times the paper lists as ported to the HRT environment
// (Section 2). Programs submit tasks with declared region requirements;
// the run-time extracts the implicit dependence graph (tasks conflict when
// they touch the same logical region and at least one writes), and a pool
// of worker threads executes ready tasks greedily.
//
// Unlike the BSP/OpenMP tenants, this is a dependence-driven workload: no
// global phases, no barriers — parallelism is whatever the region usage
// permits. The workers are ordinary kernel threads and can be given
// hard real-time constraints like any other.
package legion

import (
	"fmt"
	"sort"

	"hrtsched/internal/core"
	"hrtsched/internal/ksync"
)

// AccessMode declares how a task uses a region.
type AccessMode uint8

const (
	// ReadOnly accesses may share the region with other readers.
	ReadOnly AccessMode = iota
	// ReadWrite accesses conflict with every other access.
	ReadWrite
)

// Region is a logical region: a named block of data tasks operate on.
type Region struct {
	Name string
	Data []float64

	// Dependence bookkeeping: the last writer task id and the reader task
	// ids since that write.
	lastWriter   int
	readersSince []int
}

// Req is one region requirement of a task.
type Req struct {
	Region *Region
	Mode   AccessMode
}

// Task is a unit of work with declared region requirements.
type Task struct {
	Name string
	// CostCycles is the task's execution cost.
	CostCycles int64
	// Reqs declares the regions the task touches.
	Reqs []Req
	// Fn runs when the task executes; regions are safe to touch per the
	// declared modes.
	Fn func()

	id         int
	waitingOn  int   // unfinished predecessors
	dependents []int // tasks waiting on this one
	state      taskState
}

type taskState uint8

const (
	taskPending taskState = iota
	taskReady
	taskRunning
	taskDone
)

// Runtime is a Legion-like task scheduler over a pool of kernel threads.
type Runtime struct {
	k   *core.Kernel
	cfg Config
	wq  *ksync.WaitQueue

	tasks   []*Task
	ready   []int
	done    int
	regions []*Region

	// Executed records completion order for tests.
	Executed []string
	// MaxConcurrent tracks the peak number of simultaneously running tasks.
	MaxConcurrent int
	running       int
}

// Config configures the runtime's worker pool.
type Config struct {
	Workers  int
	FirstCPU int
	// Constraints, when periodic, is applied to every worker individually
	// (task workers are independent; they need no gang admission).
	Constraints core.Constraints
}

// New creates a runtime and spawns its workers. It returns an error for a
// non-positive worker count.
func New(k *core.Kernel, cfg Config) (*Runtime, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("legion: need at least one worker (got %d)", cfg.Workers)
	}
	rt := &Runtime{k: k, cfg: cfg, wq: ksync.NewWaitQueue(k)}
	for w := 0; w < cfg.Workers; w++ {
		prog := rt.workerProgram()
		if cfg.Constraints.Type == core.Periodic {
			cons := cfg.Constraints
			inner := prog
			admitted := false
			prog = core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
				if !admitted {
					admitted = true
					return core.ChangeConstraints{C: cons}
				}
				return inner.Next(tc)
			})
		}
		k.Spawn(fmt.Sprintf("legion-%d", w), cfg.FirstCPU+w, prog)
	}
	return rt, nil
}

// MustNew is New for statically-correct call sites; it panics on error.
func MustNew(k *core.Kernel, cfg Config) *Runtime {
	rt, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// NewRegion creates a logical region of n elements.
func (rt *Runtime) NewRegion(name string, n int) *Region {
	r := &Region{Name: name, Data: make([]float64, n), lastWriter: -1}
	rt.regions = append(rt.regions, r)
	return r
}

// Submit adds a task. Dependences are derived from region requirements in
// program order: a writer depends on the region's previous writer and all
// readers since; a reader depends on the previous writer only. Returns the
// task id.
func (rt *Runtime) Submit(t Task) int {
	task := &t
	task.id = len(rt.tasks)
	rt.tasks = append(rt.tasks, task)

	deps := map[int]bool{}
	for _, req := range t.Reqs {
		r := req.Region
		if req.Mode == ReadWrite {
			if r.lastWriter >= 0 {
				deps[r.lastWriter] = true
			}
			for _, rd := range r.readersSince {
				deps[rd] = true
			}
			r.lastWriter = task.id
			r.readersSince = nil
		} else {
			if r.lastWriter >= 0 {
				deps[r.lastWriter] = true
			}
			r.readersSince = append(r.readersSince, task.id)
		}
	}
	delete(deps, task.id)
	// Deterministic dependence order: map iteration order must not leak
	// into the schedule.
	ids := make([]int, 0, len(deps))
	for d := range deps {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	for _, d := range ids {
		dep := rt.tasks[d]
		if dep.state != taskDone {
			dep.dependents = append(dep.dependents, task.id)
			task.waitingOn++
		}
	}
	if task.waitingOn == 0 {
		task.state = taskReady
		rt.ready = append(rt.ready, task.id)
	}
	rt.wq.SignalAll()
	return task.id
}

// workerProgram builds the pull-execute loop of one worker.
func (rt *Runtime) workerProgram() core.Program {
	var current *Task
	flow := core.FlowProgram(rt.loopStep(&current))
	return flow
}

func (rt *Runtime) loopStep(current **Task) core.Step {
	var loop core.Step
	loop = func(tc *core.ThreadCtx) (core.Action, core.Step) {
		wait := rt.wq.WaitSteps(func(*core.ThreadCtx) bool {
			return len(rt.ready) > 0
		}, core.Chain(
			func(n core.Step) core.Step {
				return core.DoCall(func(*core.ThreadCtx) {
					// Pop in submission order for determinism.
					id := rt.ready[0]
					rt.ready = rt.ready[1:]
					*current = rt.tasks[id]
					(*current).state = taskRunning
					rt.running++
					if rt.running > rt.MaxConcurrent {
						rt.MaxConcurrent = rt.running
					}
				}, n)
			},
			func(n core.Step) core.Step {
				return core.DoComputeFn(func(*core.ThreadCtx) int64 {
					c := (*current).CostCycles
					if c < 1 {
						c = 1
					}
					return c
				}, n)
			},
			func(n core.Step) core.Step {
				return core.DoCall(func(*core.ThreadCtx) {
					rt.complete(*current)
					*current = nil
				}, n)
			},
			func(core.Step) core.Step { return loop },
		))
		return nil, wait
	}
	return loop
}

// complete finishes a task: run its body, release dependents.
func (rt *Runtime) complete(t *Task) {
	if t.Fn != nil {
		t.Fn()
	}
	t.state = taskDone
	rt.running--
	rt.done++
	rt.Executed = append(rt.Executed, t.Name)
	newlyReady := false
	for _, d := range t.dependents {
		dep := rt.tasks[d]
		dep.waitingOn--
		if dep.waitingOn == 0 && dep.state == taskPending {
			dep.state = taskReady
			rt.ready = append(rt.ready, d)
			newlyReady = true
		}
	}
	if newlyReady {
		rt.wq.SignalAll()
	}
}

// Done reports completed task count.
func (rt *Runtime) Done() int { return rt.done }

// Wait drives the kernel until n tasks have completed.
func (rt *Runtime) Wait(n int, maxEvents uint64) bool {
	return rt.k.RunUntil(func() bool { return rt.done >= n }, maxEvents)
}
