package legion

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func boot(t *testing.T, ncpus int, seed uint64) *core.Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	return core.Boot(m, core.DefaultConfig(spec))
}

func TestWriteReadOrdering(t *testing.T) {
	k := boot(t, 3, 211)
	rt := MustNew(k, Config{Workers: 2, FirstCPU: 1})
	grid := rt.NewRegion("grid", 4)
	rt.Submit(Task{Name: "init", CostCycles: 50_000,
		Reqs: []Req{{grid, ReadWrite}},
		Fn:   func() { grid.Data[0] = 42 }})
	var observed float64
	rt.Submit(Task{Name: "read", CostCycles: 10_000,
		Reqs: []Req{{grid, ReadOnly}},
		Fn:   func() { observed = grid.Data[0] }})
	if !rt.Wait(2, 1<<24) {
		t.Fatalf("tasks did not complete")
	}
	if observed != 42 {
		t.Fatalf("reader ran before writer: observed %v", observed)
	}
	if rt.Executed[0] != "init" || rt.Executed[1] != "read" {
		t.Fatalf("order: %v", rt.Executed)
	}
}

func TestReadersRunConcurrently(t *testing.T) {
	k := boot(t, 5, 212)
	rt := MustNew(k, Config{Workers: 4, FirstCPU: 1})
	r := rt.NewRegion("shared", 1)
	rt.Submit(Task{Name: "w", CostCycles: 10_000, Reqs: []Req{{r, ReadWrite}}})
	for i := 0; i < 4; i++ {
		rt.Submit(Task{Name: "r", CostCycles: 500_000, Reqs: []Req{{r, ReadOnly}}})
	}
	if !rt.Wait(5, 1<<24) {
		t.Fatalf("stalled")
	}
	if rt.MaxConcurrent < 3 {
		t.Fatalf("readers did not overlap: max concurrent %d", rt.MaxConcurrent)
	}
}

func TestWritersSerialize(t *testing.T) {
	k := boot(t, 5, 213)
	rt := MustNew(k, Config{Workers: 4, FirstCPU: 1})
	r := rt.NewRegion("acc", 1)
	const n = 6
	for i := 0; i < n; i++ {
		rt.Submit(Task{Name: "w", CostCycles: 100_000,
			Reqs: []Req{{r, ReadWrite}},
			Fn:   func() { r.Data[0]++ }})
	}
	if !rt.Wait(n, 1<<24) {
		t.Fatalf("stalled")
	}
	if rt.MaxConcurrent != 1 {
		t.Fatalf("conflicting writers overlapped: %d", rt.MaxConcurrent)
	}
	if r.Data[0] != n {
		t.Fatalf("accumulator = %v", r.Data[0])
	}
}

func TestDiamondDependence(t *testing.T) {
	k := boot(t, 5, 214)
	rt := MustNew(k, Config{Workers: 4, FirstCPU: 1})
	a := rt.NewRegion("a", 1)
	b := rt.NewRegion("b", 1)
	c := rt.NewRegion("c", 1)
	// top writes a; left reads a writes b; right reads a writes c;
	// bottom reads b and c.
	rt.Submit(Task{Name: "top", CostCycles: 50_000, Reqs: []Req{{a, ReadWrite}},
		Fn: func() { a.Data[0] = 1 }})
	rt.Submit(Task{Name: "left", CostCycles: 400_000,
		Reqs: []Req{{a, ReadOnly}, {b, ReadWrite}},
		Fn:   func() { b.Data[0] = a.Data[0] + 1 }})
	rt.Submit(Task{Name: "right", CostCycles: 400_000,
		Reqs: []Req{{a, ReadOnly}, {c, ReadWrite}},
		Fn:   func() { c.Data[0] = a.Data[0] + 2 }})
	var sum float64
	rt.Submit(Task{Name: "bottom", CostCycles: 50_000,
		Reqs: []Req{{b, ReadOnly}, {c, ReadOnly}},
		Fn:   func() { sum = b.Data[0] + c.Data[0] }})
	if !rt.Wait(4, 1<<24) {
		t.Fatalf("stalled")
	}
	if sum != 5 {
		t.Fatalf("diamond result %v, want 5", sum)
	}
	if rt.Executed[0] != "top" || rt.Executed[3] != "bottom" {
		t.Fatalf("order: %v", rt.Executed)
	}
	// left and right must have overlapped.
	if rt.MaxConcurrent < 2 {
		t.Fatalf("independent branches did not overlap")
	}
}

func TestIndependentTasksSpeedup(t *testing.T) {
	makespan := func(workers int, seed uint64) int64 {
		k := boot(t, workers+1, seed)
		rt := MustNew(k, Config{Workers: workers, FirstCPU: 1})
		for i := 0; i < 8; i++ {
			r := rt.NewRegion("r", 1)
			rt.Submit(Task{Name: "t", CostCycles: 1_000_000, Reqs: []Req{{r, ReadWrite}}})
		}
		start := k.NowNs()
		if !rt.Wait(8, 1<<26) {
			t.Fatalf("stalled")
		}
		return k.NowNs() - start
	}
	one := makespan(1, 215)
	four := makespan(4, 216)
	if four*3 > one {
		t.Fatalf("no parallel speedup: 1w=%dns 4w=%dns", one, four)
	}
}

func TestLateSubmissionAfterCompletion(t *testing.T) {
	// A task submitted after its predecessor already finished must not
	// wait on it.
	k := boot(t, 2, 217)
	rt := MustNew(k, Config{Workers: 1, FirstCPU: 1})
	r := rt.NewRegion("r", 1)
	rt.Submit(Task{Name: "w1", CostCycles: 10_000, Reqs: []Req{{r, ReadWrite}},
		Fn: func() { r.Data[0] = 7 }})
	if !rt.Wait(1, 1<<24) {
		t.Fatalf("stalled")
	}
	var got float64
	rt.Submit(Task{Name: "r1", CostCycles: 10_000, Reqs: []Req{{r, ReadOnly}},
		Fn: func() { got = r.Data[0] }})
	if !rt.Wait(2, 1<<24) {
		t.Fatalf("late submission stalled")
	}
	if got != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestLegionUnderRTConstraints(t *testing.T) {
	// Workers individually admitted as periodic threads: the task graph
	// still completes correctly, just throttled.
	k := boot(t, 3, 218)
	rt := MustNew(k, Config{Workers: 2, FirstCPU: 1,
		Constraints: core.PeriodicConstraints(0, 100_000, 50_000)})
	r := rt.NewRegion("r", 1)
	const n = 5
	for i := 0; i < n; i++ {
		rt.Submit(Task{Name: "w", CostCycles: 200_000,
			Reqs: []Req{{r, ReadWrite}},
			Fn:   func() { r.Data[0]++ }})
	}
	if !rt.Wait(n, 1<<26) {
		t.Fatalf("stalled under RT constraints")
	}
	if r.Data[0] != n {
		t.Fatalf("result %v", r.Data[0])
	}
	for _, th := range k.Threads() {
		if th.IsRT() && th.Misses > 0 {
			t.Fatalf("RT worker missed %d deadlines", th.Misses)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		k := boot(t, 4, 219)
		rt := MustNew(k, Config{Workers: 3, FirstCPU: 1})
		a := rt.NewRegion("a", 1)
		b := rt.NewRegion("b", 1)
		rt.Submit(Task{Name: "w-a", CostCycles: 80_000, Reqs: []Req{{a, ReadWrite}}})
		rt.Submit(Task{Name: "w-b", CostCycles: 90_000, Reqs: []Req{{b, ReadWrite}}})
		rt.Submit(Task{Name: "r-ab1", CostCycles: 70_000, Reqs: []Req{{a, ReadOnly}, {b, ReadOnly}}})
		rt.Submit(Task{Name: "r-ab2", CostCycles: 60_000, Reqs: []Req{{a, ReadOnly}, {b, ReadOnly}}})
		rt.Submit(Task{Name: "w-ab", CostCycles: 50_000, Reqs: []Req{{a, ReadWrite}, {b, ReadWrite}}})
		if !rt.Wait(5, 1<<24) {
			t.Fatalf("stalled")
		}
		return rt.Executed
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("schedule not deterministic: %v vs %v", first, again)
			}
		}
	}
}
