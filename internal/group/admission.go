package group

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/sim"
)

// AdmitOptions tunes group admission control.
type AdmitOptions struct {
	// PhaseCorrection applies the Section 4.4 correction: the i-th thread
	// released from the final barrier gets phase phi + (n-i)*delta so every
	// member's schedule aligns to the last release, cancelling the barrier
	// departure stagger. Figures 11 and 12 run with this disabled to expose
	// the uncorrected bias.
	PhaseCorrection bool
}

// ChangeConstraintsSteps implements Algorithm 1: the group-wide equivalent
// of nk_sched_thread_change_constraints. Every member of the group runs
// this flow; it either succeeds for all members (each ends up admitted with
// identical constraints and a corrected phase) or fails for all (each is
// readmitted under default aperiodic constraints).
//
// After the flow completes, AdmitError(t) reports the thread's verdict and
// Failed() the group outcome.
//
// Build the step chain ONCE per admission round and share it across all
// member programs (wrap it per-thread with core.FlowThen): the chain holds
// the round's shared barrier, and all per-thread state lives in the thread
// context. A chain built per member would give each member a private
// barrier that never fills.
func (g *Group) ChangeConstraintsSteps(cons core.Constraints, opts AdmitOptions, next core.Step) core.Step {
	bar := g.NewBarrier()
	round := g.barSeq
	verdictPhase := fmt.Sprintf("verdict-%d", round)

	leader := func(tc *core.ThreadCtx) bool { return g.IsLeader(tc.T) }

	return core.Chain(
		// Leader election.
		func(n core.Step) core.Step { return g.ElectSteps(n) },
		func(n core.Step) core.Step { return core.DoCall(g.markStart("changecons"), n) },

		// Leader: lock the group and attach the constraints.
		func(n core.Step) core.Step {
			return core.If(leader,
				core.DoCompute(g.c.ApplyCycles, core.DoCall(func(tc *core.ThreadCtx) {
					g.locked = true
					g.attached = cons
					g.hasAttached = true
					g.admitFailed.Store(false)
				}, n)),
				n)
		},

		// Group barrier: everyone sees the attached constraints.
		func(n core.Step) core.Step { return bar.Steps(n) },

		// Local admission control, run in the context of each thread on its
		// own CPU — simultaneously across the group (Section 3.2).
		func(n core.Step) core.Step {
			return core.DoCompute(g.k.AdmitCostCycles, core.DoCall(func(tc *core.ThreadCtx) {
				ms := g.state(tc.T)
				ms.admitErr = g.k.Locals[tc.CPU].AdmitCheck(tc.T, g.attached)
			}, n))
		},

		// Group reduction over errors: a serialized merge under the group
		// lock (the linear growth of Figure 10(c)).
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				g.state(tc.T).ticket = g.takeTicket(verdictPhase)
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoComputeFn(func(tc *core.ThreadCtx) int64 {
				return 1 + g.state(tc.T).ticket*g.c.VerdictPerTicket
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				if g.state(tc.T).admitErr != nil {
					g.admitFailed.Store(true)
				}
			}, n)
		},
		func(n core.Step) core.Step { return bar.Steps(n) },
		func(n core.Step) core.Step { return core.DoCall(g.markEnd("changecons"), n) },

		// Final barrier: departure order determines the phase correction.
		func(n core.Step) core.Step { return core.DoCall(g.markStart("barrier"), n) },
		func(n core.Step) core.Step { return bar.Steps(n) },
		func(n core.Step) core.Step { return core.DoCall(g.markEnd("barrier"), n) },

		// Outcome.
		func(n core.Step) core.Step {
			return core.If(func(tc *core.ThreadCtx) bool { return g.admitFailed.Load() },
				g.failTail(bar, n),
				g.successTail(cons, opts, n))
		},
		func(core.Step) core.Step { return next },
	)
}

// failTail readmits every member under default aperiodic constraints (which
// cannot fail), barriers, and has the leader unlock the group.
func (g *Group) failTail(bar *Barrier, next core.Step) core.Step {
	return core.Chain(
		func(n core.Step) core.Step {
			return core.DoCompute(g.c.ApplyCycles, core.DoCall(func(tc *core.ThreadCtx) {
				fallback := core.AperiodicConstraints(tc.T.Constraints().Priority)
				_ = g.k.Locals[tc.CPU].AdmitCurrent(tc.T, fallback)
			}, n))
		},
		func(n core.Step) core.Step { return bar.Steps(n) },
		func(n core.Step) core.Step {
			return core.If(func(tc *core.ThreadCtx) bool { return g.IsLeader(tc.T) },
				core.DoCall(func(*core.ThreadCtx) { g.locked = false }, n),
				n)
		},
		func(core.Step) core.Step { return next },
	)
}

// successTail applies the (optionally phase-corrected) constraints and
// unlocks.
func (g *Group) successTail(cons core.Constraints, opts AdmitOptions, next core.Step) core.Step {
	return core.Chain(
		func(n core.Step) core.Step {
			return core.If(func(tc *core.ThreadCtx) bool { return g.IsLeader(tc.T) },
				core.DoCall(func(*core.ThreadCtx) { g.locked = false }, n),
				n)
		},
		func(n core.Step) core.Step {
			return core.DoCompute(g.c.ApplyCycles, core.DoCall(func(tc *core.ThreadCtx) {
				ms := g.state(tc.T)
				final := cons
				if opts.PhaseCorrection {
					n := g.expect
					i := ms.releaseOrder // 0-based: 0 departed first
					corr := int64(n-1-i) * g.deltaEstCycles
					if corr > 0 {
						final.PhaseNs += g.k.M.Spec.CyclesToNanos(sim.Time(corr))
					}
				}
				ms.admitErr = g.k.Locals[tc.CPU].AdmitCurrent(tc.T, final)
			}, n))
		},
		func(core.Step) core.Step { return next },
	)
}

// Failed reports whether the most recent group admission failed.
func (g *Group) Failed() bool { return g.admitFailed.Load() }
