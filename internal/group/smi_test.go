package group

// Fault-interaction tests: SMI missing time striking group workloads at
// their most delicate moments (mid-barrier, with phase-corrected periodic
// schedules) must corrupt neither per-thread execution accounting nor
// deadline roll-forward, and the degradation layer must treat a group as
// one atomic cohort.

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/fault"
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// admitOnceSpin requests cons once and then spins in chunks.
func admitOnceSpin(cons core.Constraints, chunk int64) core.Program {
	admitted := false
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: cons}
		}
		return core.Compute{Cycles: chunk}
	})
}

// spinBody computes forever in chunks.
func spinBody(chunk int64) core.Program {
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		return core.Compute{Cycles: chunk}
	})
}

// TestSMIDuringBarrierAccounting drives a phase-corrected periodic group
// through compute+barrier rounds while a Markov-modulated SMI storm steals
// time, including mid-barrier. Missing time must not inflate any member's
// execution accounting, must not fabricate negative miss magnitudes, and
// deadline roll-forward must keep every member on schedule.
func TestSMIDuringBarrierAccounting(t *testing.T) {
	const n = 4
	const seed = 21
	spec := machine.PhiKNL().Scaled(n)
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	k := core.Boot(m, cfg)
	chk := core.AttachInvariants(k, seed, "group-smi")

	g := MustNew(k, "bsp", n, DefaultCosts())
	bar := g.NewBarrier()
	cons := core.PeriodicConstraints(0, 1_000_000, 450_000)
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons,
		AdmitOptions{PhaseCorrection: true}, nil))

	computeCycles := int64(sim.NanosToCycles(200_000, spec.FreqHz))
	rounds := make([]int64, n)
	ths := make([]*core.Thread, n)
	for i := 0; i < n; i++ {
		rank := i
		var loop core.Step
		loop = core.DoCompute(computeCycles,
			bar.Steps(core.DoCall(func(tc *core.ThreadCtx) { rounds[rank]++ },
				func(tc *core.ThreadCtx) (core.Action, core.Step) { return nil, loop })))
		ths[i] = k.Spawn("member", i, core.FlowThen(flow, core.FlowProgram(loop)))
	}

	env := &fault.Env{M: m, K: k, Rng: m.Rand()}
	(&fault.SMIStorm{
		MeanCalmCycles:  float64(sim.NanosToCycles(20_000_000, spec.FreqHz)),
		MeanStormCycles: float64(sim.NanosToCycles(10_000_000, spec.FreqHz)),
		StormGapCycles:  float64(sim.NanosToCycles(600_000, spec.FreqHz)),
		DurationCycles:  int64(sim.NanosToCycles(150_000, spec.FreqHz)),
	}).Start(env)

	const runNs = 400_000_000
	k.RunNs(runNs)

	if g.Failed() {
		t.Fatal("group admission failed")
	}
	sliceCycles := int64(sim.NanosToCycles(cons.SliceNs, spec.FreqHz))
	var minRounds, maxRounds int64
	for i, th := range ths {
		if th.Constraints().Type != core.Periodic {
			t.Fatalf("member %d lost its periodic constraints", i)
		}
		// Execution accounting: a periodic thread can never be credited
		// more than one slice per arrival. SMI freezes happening inside a
		// barrier (or anywhere else) must not be booked as execution.
		if cap := (th.Arrivals + 1) * sliceCycles; th.SupplyCycles > cap {
			t.Errorf("member %d credited %d cycles over %d arrivals (cap %d): missing time booked as execution",
				i, th.SupplyCycles, th.Arrivals, cap)
		}
		// Deadline roll-forward: the schedule must end in the future and
		// the thread must have kept arriving through the storm. Barrier
		// blocking plus Wake's silent roll means arrivals can be far below
		// wall/period, but progress must not stall.
		if th.DeadlineNs() <= k.NowNs()-cons.PeriodNs {
			t.Errorf("member %d deadline %d stuck behind now %d", i, th.DeadlineNs(), k.NowNs())
		}
		if th.Arrivals < 50 {
			t.Errorf("member %d made only %d arrivals in %dms", i, th.Arrivals, int64(runNs)/1_000_000)
		}
		if i == 0 || rounds[i] < minRounds {
			minRounds = rounds[i]
		}
		if i == 0 || rounds[i] > maxRounds {
			maxRounds = rounds[i]
		}
	}
	// Barrier lockstep: no member can be more than one round ahead.
	if maxRounds-minRounds > 1 {
		t.Errorf("rounds out of lockstep: min %d max %d", minRounds, maxRounds)
	}
	if minRounds < 20 {
		t.Errorf("group made only %d rounds under the storm", minRounds)
	}
	for i, s := range k.Locals {
		if s.Stats.Miss.ClampedNegative != 0 {
			t.Errorf("cpu%d recorded %d negative miss magnitudes (worst %dns): accounting corrupted",
				i, s.Stats.Miss.ClampedNegative, s.Stats.Miss.WorstRawNegNs)
		}
	}
	if !chk.Ok() {
		t.Fatalf("invariants violated:\n%s", chk.Report())
	}
}

// TestAtomicGroupShed admits a gang whose reservation leaves no slack for
// the persistent SMI drain, and checks the degradation layer sheds the
// whole group in one atomic step: every member demoted in the same
// scheduler pass, none left behind as a stranded real-time gang fragment.
func TestAtomicGroupShed(t *testing.T) {
	const n = 3
	const seed = 31
	spec := machine.PhiKNL().Scaled(n + 1)
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	cfg.Degrade = core.DegradeConfig{Policy: core.DegradeDemote, MissStreak: 3}
	k := core.Boot(m, cfg)
	chk := core.AttachInvariants(k, seed, "group-shed")
	EnableAtomicShed(k)

	type shedRec struct {
		thread *core.Thread
		ev     core.DegradeEvent
	}
	var sheds []shedRec
	k.Hooks.Degrade = func(cpu int, th *core.Thread, ev core.DegradeEvent) {
		sheds = append(sheds, shedRec{th, ev})
	}

	g := MustNew(k, "gang", n, DefaultCosts())
	// 92% per CPU: admissible on a healthy machine, unservable once the
	// drain steals its share.
	cons := core.PeriodicConstraints(0, 1_000_000, 920_000)
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons,
		AdmitOptions{PhaseCorrection: true}, nil))
	ths := make([]*core.Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = k.Spawn("member", 1+i, core.FlowThen(flow, spinBody(20_000)))
	}

	env := &fault.Env{M: m, K: k, Rng: m.Rand()}
	(&fault.SMIStorm{
		MeanCalmCycles:  float64(sim.NanosToCycles(100_000, spec.FreqHz)),
		MeanStormCycles: float64(sim.NanosToCycles(100_000_000, spec.FreqHz)),
		StormGapCycles:  float64(sim.NanosToCycles(1_000_000, spec.FreqHz)),
		DurationCycles:  int64(sim.NanosToCycles(130_000, spec.FreqHz)),
	}).Start(env)

	k.RunNs(400_000_000)

	if g.Failed() {
		t.Fatal("group admission failed")
	}
	var memberSheds []shedRec
	for _, r := range sheds {
		for _, th := range ths {
			if r.thread == th {
				memberSheds = append(memberSheds, r)
			}
		}
	}
	if len(memberSheds) == 0 {
		t.Fatal("overloaded group never shed")
	}
	if len(memberSheds)%n != 0 {
		t.Fatalf("partial group shed: %d member sheds, group size %d", len(memberSheds), n)
	}
	// Atomicity: the first n member sheds happen at one instant, as one
	// cohort, covering every member exactly once.
	atNs := memberSheds[0].ev.NowNs
	seen := map[*core.Thread]bool{}
	for _, r := range memberSheds[:n] {
		if r.ev.NowNs != atNs {
			t.Errorf("member shed at %dns, cohort started at %dns: not atomic", r.ev.NowNs, atNs)
		}
		if r.ev.Cohort != n {
			t.Errorf("shed event records cohort %d, want %d", r.ev.Cohort, n)
		}
		if seen[r.thread] {
			t.Errorf("thread %s shed twice in one cohort", r.thread.Name())
		}
		seen[r.thread] = true
	}
	// All-or-nothing end state: no gang fragment left real-time.
	periodic := 0
	for _, th := range ths {
		if th.Constraints().Type == core.Periodic {
			periodic++
		}
	}
	if periodic != 0 && periodic != n {
		t.Fatalf("group left partially real-time: %d of %d members periodic", periodic, n)
	}
	if !chk.Ok() {
		t.Fatalf("invariants violated:\n%s", chk.Report())
	}
}
