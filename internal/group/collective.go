package group

import (
	"hrtsched/internal/core"
)

// The group programming interface of Section 4.2 includes, besides join and
// leave, "distributed election, barrier, reduction, and broadcast, all
// scoped to the group". Election and barrier live in group.go/barrier.go;
// this file provides the generic reduction and broadcast collectives that
// group admission control's error reduction is a special case of.

// ReduceOp combines two contribution values.
type ReduceOp func(a, b any) any

// Reduction is a reusable all-reduce scoped to the group: every member
// contributes a value, the values are combined with a serialized merge
// under the group lock (linear cost, like all of the paper's simple
// coordination schemes), and after the closing barrier every member
// observes the combined result.
type Reduction struct {
	g   *Group
	op  ReduceOp
	bar *Barrier

	round       int
	pending     int
	contributed int
	acc         any
	result      any
	hasAcc      bool
}

// NewReduction creates a reduction over the group using op.
func (g *Group) NewReduction(op ReduceOp) *Reduction {
	return &Reduction{g: g, op: op, bar: g.NewBarrier()}
}

// Result returns the combined value of the most recently completed round.
func (r *Reduction) Result() any { return r.result }

// Steps returns the flow for one reduction round. contribute is called in
// thread context to produce the member's value; after the flow completes,
// Result() holds the combined value and every member has passed the
// closing barrier.
func (r *Reduction) Steps(contribute func(tc *core.ThreadCtx) any, next core.Step) core.Step {
	return core.Chain(
		// Take a merge ticket: merges serialize under the group lock.
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				ms := r.g.state(tc.T)
				ms.ticket = int64(r.pending)
				r.pending++
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoComputeFn(func(tc *core.ThreadCtx) int64 {
				return 1 + r.g.state(tc.T).ticket*r.g.c.VerdictPerTicket
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				v := contribute(tc)
				if !r.hasAcc {
					r.acc = v
					r.hasAcc = true
				} else {
					r.acc = r.op(r.acc, v)
				}
				r.contributed++
				// The final contributor publishes and resets — before the
				// closing barrier, so a fast member's next-round
				// contribution can never race with publication.
				if r.contributed == r.g.expect {
					r.result = r.acc
					r.hasAcc = false
					r.contributed = 0
					r.pending = 0
					r.round++
				}
			}, n)
		},
		func(n core.Step) core.Step { return r.bar.Steps(n) },
		func(core.Step) core.Step { return next },
	)
}

// Broadcast is a one-to-all value distribution scoped to the group: one
// designated member (usually the leader) publishes a value; after the
// closing barrier every member can read it.
type Broadcast struct {
	g     *Group
	bar   *Barrier
	value any
	set   bool
}

// NewBroadcast creates a broadcast channel scoped to the group.
func (g *Group) NewBroadcast() *Broadcast {
	return &Broadcast{g: g, bar: g.NewBarrier()}
}

// Value returns the most recently broadcast value.
func (b *Broadcast) Value() any { return b.value }

// Steps returns the flow for one broadcast round: members for whom isRoot
// returns true publish produce(tc); everyone then barriers, after which
// Value() is visible to all.
func (b *Broadcast) Steps(isRoot func(tc *core.ThreadCtx) bool, produce func(tc *core.ThreadCtx) any, next core.Step) core.Step {
	return core.Chain(
		func(n core.Step) core.Step {
			return core.If(isRoot,
				core.DoCompute(b.g.c.ApplyCycles, core.DoCall(func(tc *core.ThreadCtx) {
					b.value = produce(tc)
					b.set = true
				}, n)),
				n)
		},
		func(n core.Step) core.Step { return b.bar.Steps(n) },
		func(core.Step) core.Step { return next },
	)
}
