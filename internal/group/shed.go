package group

import "hrtsched/internal/core"

// EnableAtomicShed wires the kernel's graceful-degradation layer to group
// membership: when any member of a group crosses the miss-streak threshold,
// the whole group is shed — and later re-admitted — atomically, never
// partially. This is the revocation mirror of Algorithm 1: a gang that
// cannot run as a gang is worthless half-degraded, so membership defines
// the degradation cohort.
func EnableAtomicShed(k *core.Kernel) {
	k.GroupResolver = func(t *core.Thread) []*core.Thread {
		ms, ok := t.GroupData().(*memberState)
		if !ok || !ms.joined {
			return nil
		}
		// Copy: the degradation layer mutates scheduler state while it
		// walks the cohort, and membership must not shift under it.
		members := ms.g.members
		out := make([]*core.Thread, len(members))
		copy(out, members)
		return out
	}
}
