package group

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func bootKernel(t *testing.T, ncpus int, seed uint64, mutate func(*core.Config)) *core.Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Boot(m, cfg)
}

// spawnGroupMembers spawns n threads (one per CPU starting at cpu0) that
// join g, run group admission for cons, and then run body forever.
func spawnGroupMembers(k *core.Kernel, g *Group, cons core.Constraints, opts AdmitOptions, body core.Program) []*core.Thread {
	// One shared step chain (and thus one shared barrier) for the round;
	// each thread gets its own program cursor over it.
	flow := g.JoinSteps(g.ChangeConstraintsSteps(cons, opts, nil))
	ths := make([]*core.Thread, g.Size())
	for i := 0; i < g.Size(); i++ {
		ths[i] = k.Spawn("member", i, core.FlowThen(flow, body))
	}
	return ths
}

func TestGroupAdmissionSucceeds(t *testing.T) {
	const n = 8
	k := bootKernel(t, n, 11, nil)
	g := MustNew(k, "bsp", n, DefaultCosts())
	cons := core.PeriodicConstraints(0, 100_000, 50_000)
	body := core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		return core.Compute{Cycles: 10_000}
	})
	ths := spawnGroupMembers(k, g, cons, AdmitOptions{PhaseCorrection: true}, body)
	k.RunNs(100_000_000) // 100 ms

	if g.Failed() {
		t.Fatalf("group admission failed")
	}
	if len(g.Members()) != n {
		t.Fatalf("members = %d, want %d", len(g.Members()), n)
	}
	if g.Leader() == nil {
		t.Fatalf("no leader elected")
	}
	for i, th := range ths {
		if err := g.AdmitError(th); err != nil {
			t.Fatalf("member %d admit error: %v", i, err)
		}
		if th.Constraints().Type != core.Periodic {
			t.Fatalf("member %d not periodic: %v", i, th.Constraints().Type)
		}
		if th.Arrivals < 100 {
			t.Fatalf("member %d only %d arrivals", i, th.Arrivals)
		}
		if th.Misses > th.Arrivals/50 {
			t.Fatalf("member %d missed %d of %d", i, th.Misses, th.Arrivals)
		}
	}
}

func TestGroupAdmissionFailsForAll(t *testing.T) {
	const n = 4
	k := bootKernel(t, n, 12, nil)
	g := MustNew(k, "greedy", n, DefaultCosts())
	// 99.5% > the 99% utilization limit: local admission must reject, so
	// the whole group must fail and fall back to aperiodic constraints.
	cons := core.PeriodicConstraints(0, 100_000, 99_500)
	body := core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		return core.Compute{Cycles: 10_000}
	})
	ths := spawnGroupMembers(k, g, cons, AdmitOptions{}, body)
	k.RunNs(100_000_000)

	if !g.Failed() {
		t.Fatalf("infeasible group admission succeeded")
	}
	if g.Locked() {
		t.Fatalf("group left locked after failure")
	}
	for i, th := range ths {
		if th.Constraints().Type != core.Aperiodic {
			t.Fatalf("member %d not reverted to aperiodic: %v", i, th.Constraints().Type)
		}
		if th.SupplyCycles == 0 {
			t.Fatalf("member %d starved after fallback", i)
		}
	}
}

func TestBarrierReleaseOrdersDistinct(t *testing.T) {
	const n = 6
	k := bootKernel(t, n, 13, nil)
	g := MustNew(k, "bar", n, DefaultCosts())
	bar := g.NewBarrier()
	done := 0
	for i := 0; i < n; i++ {
		flow := g.JoinSteps(bar.Steps(core.DoCall(func(tc *core.ThreadCtx) { done++ }, nil)))
		k.Spawn("b", i, core.FlowProgram(flow))
	}
	k.RunNs(50_000_000)
	if done != n {
		t.Fatalf("only %d of %d threads passed the barrier", done, n)
	}
	seen := map[int]bool{}
	for _, th := range k.Threads() {
		o := g.ReleaseOrder(th)
		if seen[o] {
			t.Fatalf("duplicate release order %d", o)
		}
		seen[o] = true
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Fatalf("missing release order %d", i)
		}
	}
	if bar.SpreadNs() <= 0 {
		t.Fatalf("barrier release spread not positive: %d", bar.SpreadNs())
	}
}

func TestGroupMetricsRecorded(t *testing.T) {
	const n = 8
	k := bootKernel(t, n, 14, nil)
	g := MustNew(k, "m", n, DefaultCosts())
	cons := core.PeriodicConstraints(0, 200_000, 50_000)
	spawnGroupMembers(k, g, cons, AdmitOptions{}, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		return core.Compute{Cycles: 10_000}
	}))
	k.RunNs(100_000_000)
	for _, step := range []string{"join", "election", "changecons", "barrier"} {
		s := g.Metrics[step]
		if s == nil || s.N() != n {
			t.Fatalf("step %q: expected %d samples, got %v", step, n, s)
		}
		if s.Mean() <= 0 {
			t.Fatalf("step %q: non-positive mean %f", step, s.Mean())
		}
	}
}

func TestLeaveGroup(t *testing.T) {
	const n = 3
	k := bootKernel(t, n, 15, nil)
	g := MustNew(k, "rotating", n, DefaultCosts())
	left := 0
	for i := 0; i < n; i++ {
		flow := g.JoinSteps(g.LeaveSteps(core.DoCall(func(tc *core.ThreadCtx) { left++ }, nil)))
		k.Spawn("member", i, core.FlowProgram(flow))
	}
	k.RunUntil(func() bool { return left == n }, 1<<24)
	if len(g.Members()) != 0 {
		t.Fatalf("%d members remain after everyone left", len(g.Members()))
	}
	if g.Leader() != nil {
		t.Fatalf("leader survived departure")
	}
}

func TestGroupReadmissionSecondRound(t *testing.T) {
	// A group changes its constraints twice: the second round must release
	// the first round's reservations and succeed.
	const n = 4
	k := bootKernel(t, n, 16, nil)
	g := MustNew(k, "twice", n, DefaultCosts())
	cons1 := core.PeriodicConstraints(0, 100_000, 60_000)
	cons2 := core.PeriodicConstraints(0, 200_000, 120_000)
	round2 := g.ChangeConstraintsSteps(cons2, AdmitOptions{PhaseCorrection: true}, nil)
	round1 := g.ChangeConstraintsSteps(cons1, AdmitOptions{PhaseCorrection: true},
		// Spin a few periods under cons1, then re-admit.
		core.DoCompute(500_000, round2))
	flow := g.JoinSteps(round1)
	ths := make([]*core.Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = k.Spawn("m", i, core.FlowThen(flow, core.ProgramFunc(
			func(tc *core.ThreadCtx) core.Action { return core.Compute{Cycles: 10_000} })))
	}
	k.RunNs(150_000_000)
	if g.Failed() {
		t.Fatalf("second-round admission failed")
	}
	for i, th := range ths {
		c := th.Constraints()
		if c.Type != core.Periodic || c.PeriodNs != 200_000 {
			t.Fatalf("member %d not on round-2 constraints: %+v", i, c)
		}
		if th.Misses > th.Arrivals/50 {
			t.Fatalf("member %d missing after re-admission: %d/%d", i, th.Misses, th.Arrivals)
		}
	}
	// 60% utilization charged once, not twice.
	for i := 0; i < n; i++ {
		if u := k.Locals[i].PeriodicUtilization(); u < 0.59 || u > 0.61 {
			t.Fatalf("CPU %d utilization %f after re-admission, want 0.60", i, u)
		}
	}
}
