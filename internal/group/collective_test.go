package group

import (
	"testing"

	"hrtsched/internal/core"
)

func TestReductionSumsAllContributions(t *testing.T) {
	const n = 8
	k := bootKernel(t, n, 91, nil)
	g := MustNew(k, "red", n, DefaultCosts())
	red := g.NewReduction(func(a, b any) any { return a.(int) + b.(int) })
	var results [n]int
	done := 0
	flow := g.JoinSteps(red.Steps(
		func(tc *core.ThreadCtx) any { return tc.CPU + 1 }, // ranks 1..n
		core.DoCall(func(tc *core.ThreadCtx) {
			results[tc.CPU] = red.Result().(int)
			done++
		}, nil)))
	for i := 0; i < n; i++ {
		k.Spawn("r", i, core.FlowProgram(flow))
	}
	k.RunUntil(func() bool { return done == n }, 1<<24)
	want := n * (n + 1) / 2
	for i, r := range results {
		if r != want {
			t.Fatalf("member %d saw %d, want %d", i, r, want)
		}
	}
}

func TestReductionMultipleRounds(t *testing.T) {
	const n = 4
	k := bootKernel(t, n, 92, nil)
	g := MustNew(k, "red2", n, DefaultCosts())
	red := g.NewReduction(func(a, b any) any {
		if a.(int) > b.(int) {
			return a
		}
		return b
	})
	var round1, round2 [n]int
	done := 0
	flow := g.JoinSteps(
		red.Steps(func(tc *core.ThreadCtx) any { return tc.CPU },
			core.DoCall(func(tc *core.ThreadCtx) { round1[tc.CPU] = red.Result().(int) },
				red.Steps(func(tc *core.ThreadCtx) any { return 100 - tc.CPU },
					core.DoCall(func(tc *core.ThreadCtx) {
						round2[tc.CPU] = red.Result().(int)
						done++
					}, nil)))))
	for i := 0; i < n; i++ {
		k.Spawn("r", i, core.FlowProgram(flow))
	}
	k.RunUntil(func() bool { return done == n }, 1<<24)
	for i := 0; i < n; i++ {
		if round1[i] != n-1 {
			t.Fatalf("round1[%d] = %d, want %d", i, round1[i], n-1)
		}
		if round2[i] != 100 {
			t.Fatalf("round2[%d] = %d, want 100", i, round2[i])
		}
	}
}

func TestBroadcastFromLeader(t *testing.T) {
	const n = 6
	k := bootKernel(t, n, 93, nil)
	g := MustNew(k, "bc", n, DefaultCosts())
	bc := g.NewBroadcast()
	var got [n]string
	done := 0
	flow := g.JoinSteps(g.ElectSteps(bc.Steps(
		func(tc *core.ThreadCtx) bool { return g.IsLeader(tc.T) },
		func(tc *core.ThreadCtx) any { return "constraints-v1" },
		core.DoCall(func(tc *core.ThreadCtx) {
			got[tc.CPU] = bc.Value().(string)
			done++
		}, nil))))
	for i := 0; i < n; i++ {
		k.Spawn("b", i, core.FlowProgram(flow))
	}
	k.RunUntil(func() bool { return done == n }, 1<<24)
	for i, v := range got {
		if v != "constraints-v1" {
			t.Fatalf("member %d saw %q", i, v)
		}
	}
}

func TestReductionCostGrowsWithRank(t *testing.T) {
	// The serialized merge makes later-ticketed members spend more cycles,
	// mirroring the linear growth of the paper's reduction costs.
	const n = 6
	k := bootKernel(t, n, 94, nil)
	g := MustNew(k, "cost", n, DefaultCosts())
	red := g.NewReduction(func(a, b any) any { return a.(int) + b.(int) })
	done := 0
	flow := g.JoinSteps(red.Steps(
		func(tc *core.ThreadCtx) any { return 1 },
		core.DoCall(func(tc *core.ThreadCtx) { done++ }, nil)))
	ths := make([]*core.Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = k.Spawn("c", i, core.FlowProgram(flow))
	}
	k.RunUntil(func() bool { return done == n }, 1<<24)
	var min, max int64
	for i, th := range ths {
		s := th.SupplyCycles
		if i == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min < int64(n-2)*DefaultCosts().VerdictPerTicket {
		t.Fatalf("merge serialization not visible: min=%d max=%d", min, max)
	}
}
