// Package group implements the thread-group programming interface of
// Section 4: named groups with join/leave, leader election, group barriers
// with measured release stagger, reductions, group admission control
// (Algorithm 1), and the phase correction of Section 4.4 that makes
// communication-free gang scheduling possible.
package group

import (
	"fmt"
	"sync/atomic"

	"hrtsched/internal/core"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// Costs models the serialized and per-member work inside group operations.
// The defaults are calibrated to the per-step breakdown of Figure 10.
type Costs struct {
	JoinBase      int64 // fixed cost of a group join
	JoinPerTicket int64 // serialized (lock-contended) cost per earlier joiner

	ElectBase      int64 // fixed cost of leader election
	ElectPerMember int64 // per-member cost of the election scan

	VerdictPerTicket int64 // serialized merge of admission verdicts
	ApplyCycles      int64 // installing checked constraints

	BarrierArriveBase int64 // fixed barrier arrival cost
	BarrierArrivePer  int64 // per-member barrier arrival cost
}

// DefaultCosts returns the Figure 10 calibration.
func DefaultCosts() Costs {
	return Costs{
		JoinBase:          2_000,
		JoinPerTicket:     1_150,
		ElectBase:         2_000,
		ElectPerMember:    190,
		VerdictPerTicket:  20_000,
		ApplyCycles:       2_500,
		BarrierArriveBase: 0, // filled from machine spec at group creation
		BarrierArrivePer:  0,
	}
}

// Group is a named thread group.
type Group struct {
	k    *core.Kernel
	name string
	c    Costs
	rng  *sim.Rand

	members []*core.Thread
	leader  *core.Thread
	locked  bool

	attached    core.Constraints
	hasAttached bool
	admitFailed atomic.Bool

	expect  int // declared size, for barrier counts before all join
	tickets map[string]*int64

	deltaEstCycles int64 // measured per-thread barrier release stagger

	// Metrics records per-thread wall-clock duration (cycles) of each
	// group admission step, keyed "join", "election", "changecons",
	// "barrier" — the four panels of Figure 10.
	Metrics map[string]*stats.Summary

	barSeq int
}

// New creates a group expecting size members. The expected size drives the
// barrier participant count so members can proceed as soon as all expected
// threads have joined. It returns an error for a non-positive size.
func New(k *core.Kernel, name string, size int, costs Costs) (*Group, error) {
	if size < 1 {
		return nil, fmt.Errorf("group: size must be positive (got %d)", size)
	}
	spec := k.M.Spec
	if costs.BarrierArriveBase == 0 {
		costs.BarrierArriveBase = spec.BarrierBaseCycles
	}
	if costs.BarrierArrivePer == 0 {
		costs.BarrierArrivePer = spec.BarrierPerCPUCycles
	}
	g := &Group{
		k:       k,
		name:    name,
		c:       costs,
		rng:     k.M.Rand(),
		expect:  size,
		tickets: map[string]*int64{},
		Metrics: map[string]*stats.Summary{},
	}
	g.deltaEstCycles = spec.ReleaseStaggerCycles // refined by measurement
	return g, nil
}

// MustNew is New for statically-sized call sites; it panics on error.
func MustNew(k *core.Kernel, name string, size int, costs Costs) *Group {
	g, err := New(k, name, size, costs)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Size returns the expected member count.
func (g *Group) Size() int { return g.expect }

// Members returns the joined members in join order.
func (g *Group) Members() []*core.Thread { return g.members }

// Leader returns the elected leader, or nil before election.
func (g *Group) Leader() *core.Thread { return g.leader }

// Locked reports whether the group lock is held.
func (g *Group) Locked() bool { return g.locked }

// DeltaEstimateCycles returns the measured per-thread barrier release
// stagger used by phase correction.
func (g *Group) DeltaEstimateCycles() int64 { return g.deltaEstCycles }

// AttachedConstraints returns the constraints the leader attached.
func (g *Group) AttachedConstraints() (core.Constraints, bool) {
	return g.attached, g.hasAttached
}

// memberState is the per-thread group bookkeeping, stored in the thread's
// group slot.
type memberState struct {
	g            *Group
	joined       bool
	isLeader     bool
	ticket       int64
	waiting      bool
	releaseOrder int
	releaseNs    int64
	admitErr     error
	stepStartNs  map[string]int64
	lastBarrier  *Barrier
}

func (g *Group) state(t *core.Thread) *memberState {
	if ms, ok := t.GroupData().(*memberState); ok && ms.g == g {
		return ms
	}
	ms := &memberState{g: g, stepStartNs: map[string]int64{}}
	t.SetGroupData(ms)
	return ms
}

// AdmitError returns the thread's local admission verdict from the most
// recent group admission, or nil.
func (g *Group) AdmitError(t *core.Thread) error {
	return g.state(t).admitErr
}

// takeTicket returns the caller's rank in a serialized (lock-contended)
// phase of the given name, starting from zero.
func (g *Group) takeTicket(phase string) int64 {
	p := g.tickets[phase]
	if p == nil {
		var v int64
		p = &v
		g.tickets[phase] = p
	}
	v := *p
	*p++
	return v
}

func (g *Group) metric(name string) *stats.Summary {
	s := g.Metrics[name]
	if s == nil {
		s = &stats.Summary{}
		g.Metrics[name] = s
	}
	return s
}

// markStart/markEnd bracket a measured step for Figure 10: per-thread
// wall-clock duration in cycles.
func (g *Group) markStart(name string) func(tc *core.ThreadCtx) {
	return func(tc *core.ThreadCtx) {
		g.state(tc.T).stepStartNs[name] = tc.NowNs
	}
}

func (g *Group) markEnd(name string) func(tc *core.ThreadCtx) {
	return func(tc *core.ThreadCtx) {
		ms := g.state(tc.T)
		start, ok := ms.stepStartNs[name]
		if !ok {
			return
		}
		durNs := tc.NowNs - start
		cycles := sim.NanosToCycles(durNs, g.k.M.Spec.FreqHz)
		g.metric(name).Add(float64(cycles))
	}
}

// JoinSteps returns the flow for joining the group: a serialized update of
// the member list under the group lock (the linear growth of Figure 10(a)).
func (g *Group) JoinSteps(next core.Step) core.Step {
	return core.Chain(
		func(n core.Step) core.Step {
			return core.DoCall(g.markStart("join"), n)
		},
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				g.state(tc.T).ticket = g.takeTicket("join")
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoComputeFn(func(tc *core.ThreadCtx) int64 {
				return g.c.JoinBase + g.state(tc.T).ticket*g.c.JoinPerTicket
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				ms := g.state(tc.T)
				if !ms.joined {
					ms.joined = true
					g.members = append(g.members, tc.T)
				}
			}, n)
		},
		func(n core.Step) core.Step {
			return core.DoCall(g.markEnd("join"), n)
		},
		func(core.Step) core.Step { return next },
	)
}

// LeaveSteps removes the thread from the group.
func (g *Group) LeaveSteps(next core.Step) core.Step {
	return core.DoCompute(g.c.JoinBase, core.DoCall(func(tc *core.ThreadCtx) {
		ms := g.state(tc.T)
		if !ms.joined {
			return
		}
		ms.joined = false
		for i, m := range g.members {
			if m == tc.T {
				g.members = append(g.members[:i], g.members[i+1:]...)
				break
			}
		}
		if g.leader == tc.T {
			g.leader = nil
		}
	}, func(tc *core.ThreadCtx) (core.Action, core.Step) { return nil, next }))
}

// ElectSteps performs distributed leader election: every member scans the
// membership; the first to complete the scan claims leadership.
func (g *Group) ElectSteps(next core.Step) core.Step {
	return core.Chain(
		func(n core.Step) core.Step { return core.DoCall(g.markStart("election"), n) },
		func(n core.Step) core.Step {
			return core.DoCompute(g.c.ElectBase+int64(g.expect)*g.c.ElectPerMember, n)
		},
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				if g.leader == nil {
					g.leader = tc.T
					g.state(tc.T).isLeader = true
				}
			}, n)
		},
		func(n core.Step) core.Step { return core.DoCall(g.markEnd("election"), n) },
		func(core.Step) core.Step { return next },
	)
}

// IsLeader reports whether t won the most recent election.
func (g *Group) IsLeader(t *core.Thread) bool { return g.leader == t }
