package group

import (
	"hrtsched/internal/core"
	"hrtsched/internal/sim"
)

// Barrier is a reusable sense-reversing group barrier. Arrival costs grow
// linearly with group size (the simple centralized scheme the paper uses),
// and threads are not released at identical times: the releasing thread
// wakes the waiters one by one, so the i-th released thread departs about
// i*delta cycles after the first — the measured stagger that phase
// correction compensates (Section 4.4).
type Barrier struct {
	g       *Group
	n       int
	arrived int
	gen     uint64

	waiters []*core.Thread

	// Departure bookkeeping of the most recent generation.
	departSeen    int
	firstDepartNs int64
	lastDepartNs  int64
	departNs      []int64 // indexed by release order
	releases      int64
}

// NewBarrier creates a barrier for the group's expected size.
func (g *Group) NewBarrier() *Barrier {
	g.barSeq++
	return &Barrier{g: g, n: g.expect}
}

// Generation returns how many times the barrier has completed.
func (b *Barrier) Generation() uint64 { return b.gen }

// Steps returns the flow for one barrier episode: arrival cost, then block
// until released. Every participant — including the last arriver, which
// performs the release loop before parking itself at the front of it —
// departs through the same wake path (kick IPI plus a scheduler
// invocation), so departures are staggered purely by the serial release
// delay. After the step completes, the thread's memberState holds its
// release order and departure time.
func (b *Barrier) Steps(next core.Step) core.Step {
	arriveCost := b.g.c.BarrierArriveBase + int64(b.n)*b.g.c.BarrierArrivePer
	return core.DoCompute(arriveCost,
		core.DoCall(b.arrive,
			core.Do(core.Block{},
				core.DoCall(b.noteDeparture, next))))
}

// arrive registers the thread; the last arriver performs the release.
func (b *Barrier) arrive(tc *core.ThreadCtx) {
	g := b.g
	ms := g.state(tc.T)
	ms.lastBarrier = b
	ms.waiting = true
	b.arrived++
	if b.arrived < b.n {
		b.waiters = append(b.waiters, tc.T)
		return
	}
	// Last arriver: release everyone, itself included (order 0, departing
	// first), with each successive departure staggered by the platform's
	// serial release delay (with jitter).
	b.arrived = 0
	b.gen++
	all := append([]*core.Thread{tc.T}, b.waiters...)
	b.waiters = nil
	b.departSeen = 0
	b.firstDepartNs = 0
	b.lastDepartNs = 0
	if cap(b.departNs) < b.n {
		b.departNs = make([]int64, b.n)
	}
	b.departNs = b.departNs[:b.n]
	for i := range b.departNs {
		b.departNs[i] = 0
	}

	delta := g.k.M.Spec.ReleaseStaggerCycles
	var offset int64
	for i, w := range all {
		wms := g.state(w)
		wms.releaseOrder = i
		wms.waiting = false
		w := w
		d := offset
		if d < 1 {
			d = 1
		}
		g.k.Eng.After(sim.Duration(d), sim.Soft, func(sim.Time) {
			g.k.Wake(w)
		})
		step := delta
		if delta > 4 {
			step += g.rng.Range(-delta/4, delta/4)
		}
		offset += step
	}
	b.releases++
}

// noteDeparture records the thread's actual post-release departure time;
// the spread of these measured departures is what refines the group's
// stagger estimate delta for phase correction (Section 4.4: "the measured
// per-thread delay in departing the barrier").
func (b *Barrier) noteDeparture(tc *core.ThreadCtx) {
	g := b.g
	ms := g.state(tc.T)
	ms.releaseNs = tc.NowNs
	if b.departSeen == 0 || tc.NowNs < b.firstDepartNs {
		b.firstDepartNs = tc.NowNs
	}
	if tc.NowNs > b.lastDepartNs {
		b.lastDepartNs = tc.NowNs
	}
	if ms.releaseOrder < len(b.departNs) {
		b.departNs[ms.releaseOrder] = tc.NowNs
	}
	b.departSeen++
	if b.departSeen == b.n && b.n > 1 {
		// Least-squares slope of departure time against release order: a
		// far lower-variance delta estimate than (last-first)/(n-1), whose
		// endpoint jitter systematically overshoots and makes the phase
		// correction overcorrect.
		var sx, sy, sxx, sxy float64
		n := 0
		for i, t := range b.departNs {
			if t == 0 {
				continue
			}
			x := float64(i)
			y := float64(t)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
		if n >= 2 {
			den := float64(n)*sxx - sx*sx
			if den > 0 {
				slopeNs := (float64(n)*sxy - sx*sy) / den
				est := int64(sim.NanosToCycles(int64(slopeNs), g.k.M.Spec.FreqHz))
				if est < 1 {
					est = 1
				}
				g.deltaEstCycles = est
			}
		}
	}
}

// ReleaseOrder returns the thread's departure rank in the most recent
// barrier episode it participated in (0 = first out).
func (g *Group) ReleaseOrder(t *core.Thread) int {
	return g.state(t).releaseOrder
}

// SpreadNs returns the first-to-last measured departure spread of the
// barrier's most recent fully departed episode in nanoseconds.
func (b *Barrier) SpreadNs() int64 { return b.lastDepartNs - b.firstDepartNs }
