package durable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hrtsched/internal/plan"
	"hrtsched/internal/wal"
)

// ReplStore is the durability engine under a *replicated* cluster. The
// replication layer owns the WAL (appends, fsyncs, truncation, shipping),
// so this store only keeps the shadow State and the snapshot cadence:
//
//   - Boot restores from the latest snapshot ONLY. A snapshot is cut at
//     an applied LSN, applied <= committed, so everything it covers is
//     committed by construction; the WAL suffix beyond it is NOT replayed
//     blindly — it re-applies through the replication commit index, which
//     is the only authority on what survived an election.
//   - ApplyCommitted folds records in as the commit index advances, on
//     leader and follower alike, keeping every replica's durable view the
//     fold of the same log prefix.
//   - Log compaction never runs: a follower can always be caught up from
//     LSN 1 without an install-snapshot RPC. Snapshots still bound local
//     replay and are pruned to the newest two as usual.
type ReplStore struct {
	cfg ReplConfig

	mu             sync.Mutex
	state          *State
	appliedLSN     uint64
	appliedTerm    uint64
	lastSnapLSN    uint64
	recSinceSnap   int64
	bytesSinceSnap int64
	rejected       int64
	closed         bool
	degradedErr    error

	snapshotting atomic.Bool
	snapWG       sync.WaitGroup
	snapshots    atomic.Int64
	snapErrors   atomic.Int64

	recovery ReplRecovery
}

// ReplConfig parameterizes a ReplStore; zero fields take defaults.
type ReplConfig struct {
	// Dir holds the snapshots (shared with the replication layer's WAL).
	Dir string
	// NumNodes is the cluster's node count.
	NumNodes int
	// Spec is the per-node admission spec.
	Spec plan.Spec
	// FS is the filesystem to write through; default the real one.
	FS wal.FS
	// SnapshotEveryRecords / SnapshotEveryBytes set the snapshot cadence;
	// defaults 4096 records / 1 MiB.
	SnapshotEveryRecords int64
	SnapshotEveryBytes   int64
}

// ReplRecovery summarizes a replicated boot.
type ReplRecovery struct {
	// SnapshotLSN / SnapshotTerm locate the restore point; they seed the
	// replication layer's applied position and log floor.
	SnapshotLSN  uint64 `json:"snapshot_lsn"`
	SnapshotTerm uint64 `json:"snapshot_term"`
	// BadSnapshots counts snapshot files skipped for CRC/decode failures.
	BadSnapshots int `json:"bad_snapshots"`
	// SpecChanged notes a snapshot taken under a different spec.
	SpecChanged bool `json:"spec_changed,omitempty"`
}

// OpenReplicated restores the shadow from the newest valid snapshot.
func OpenReplicated(cfg ReplConfig) (*ReplStore, error) {
	if cfg.FS == nil {
		cfg.FS = wal.OSFS{}
	}
	if cfg.SnapshotEveryRecords == 0 {
		cfg.SnapshotEveryRecords = 4096
	}
	if cfg.SnapshotEveryBytes == 0 {
		cfg.SnapshotEveryBytes = 1 << 20
	}
	if cfg.Dir == "" {
		return nil, errors.New("durable: ReplConfig.Dir is required")
	}
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("durable: NumNodes %d, want > 0", cfg.NumNodes)
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("durable: mkdir %s: %w", cfg.Dir, err)
	}
	state, snapLSN, snapTerm, specChanged, bad, err := loadLatestSnapshot(cfg.FS, cfg.Dir, cfg.Spec)
	if err != nil {
		return nil, err
	}
	if state == nil {
		state = NewState(cfg.NumNodes)
	} else {
		if len(state.Nodes) > cfg.NumNodes {
			return nil, fmt.Errorf("durable: snapshot holds %d nodes but %d are configured; "+
				"drain before shrinking the cluster", len(state.Nodes), cfg.NumNodes)
		}
		for len(state.Nodes) < cfg.NumNodes {
			state.Nodes = append(state.Nodes, nil)
		}
	}
	return &ReplStore{
		cfg:         cfg,
		state:       state,
		appliedLSN:  snapLSN,
		appliedTerm: snapTerm,
		lastSnapLSN: snapLSN,
		recovery: ReplRecovery{
			SnapshotLSN: snapLSN, SnapshotTerm: snapTerm,
			BadSnapshots: bad, SpecChanged: specChanged,
		},
	}, nil
}

// RecoveredState exposes the shadow for the single-threaded boot window:
// the caller restores its engines from it before the replication apply
// loop starts and must not touch it afterwards.
func (s *ReplStore) RecoveredState() *State { return s.state }

// Recovery returns the boot summary.
func (s *ReplStore) Recovery() ReplRecovery { return s.recovery }

// Peek reports whether the shadow can absorb r (same verdict the
// replay path would give).
func (s *ReplStore) Peek(r Record) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Peek(r)
}

// Resolve reconstructs the task set a record places.
func (s *ReplStore) Resolve(r Record) plan.TaskSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Resolve(r)
}

// Orphans lists placements stranded mid-move (present on two nodes at
// once); a fresh leader reconciles them by proposing OriginRelease
// removes before taking client mutations.
func (s *ReplStore) Orphans() []Orphan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Orphans()
}

// SkipCommitted records that the apply loop deliberately skipped the
// committed record at lsn (undecodable or no longer fitting the shadow),
// keeping the applied cursor moving.
func (s *ReplStore) SkipCommitted(lsn, term uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn > s.appliedLSN {
		s.appliedLSN = lsn
		s.appliedTerm = term
		s.rejected++
	}
}

// ApplyCommitted folds one committed record into the shadow, after the
// caller has applied it to the live engines. size is the encoded record
// length (drives the byte-based snapshot cadence). Records at or below
// the restore point are ignored, so replay overlap is harmless.
func (s *ReplStore) ApplyCommitted(lsn, term uint64, size int, r Record) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.degradedErr != nil {
		err := s.degradedErr
		s.mu.Unlock()
		return err
	}
	if lsn <= s.appliedLSN {
		s.mu.Unlock()
		return nil
	}
	if !s.state.Peek(r) {
		err := fmt.Errorf("durable: committed record %v %q on node %d does not fit the shadow state",
			r.Kind, r.ID, r.Node)
		s.degradeLocked(err)
		s.mu.Unlock()
		return err
	}
	s.state.Apply(r)
	s.appliedLSN = lsn
	s.appliedTerm = term
	s.recSinceSnap++
	s.bytesSinceSnap += int64(size)
	shouldSnap := s.recSinceSnap >= s.cfg.SnapshotEveryRecords ||
		s.bytesSinceSnap >= s.cfg.SnapshotEveryBytes
	s.mu.Unlock()
	if shouldSnap {
		s.maybeSnapshot()
	}
	return nil
}

// maybeSnapshot starts one background snapshot if none is running.
func (s *ReplStore) maybeSnapshot() {
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer s.snapshotting.Store(false)
		s.mu.Lock()
		clone := s.state.Clone()
		lsn, term := s.appliedLSN, s.appliedTerm
		s.recSinceSnap = 0
		s.bytesSinceSnap = 0
		s.mu.Unlock()
		s.writeAndPublish(lsn, term, clone)
	}()
}

// writeAndPublish persists one snapshot (no compaction in replicated
// mode). Failures count but do not degrade; the next trigger retries.
func (s *ReplStore) writeAndPublish(lsn, term uint64, clone *State) {
	if err := writeSnapshot(s.cfg.FS, s.cfg.Dir, lsn, term, s.cfg.Spec, clone); err != nil {
		s.snapErrors.Add(1)
		return
	}
	s.snapshots.Add(1)
	s.mu.Lock()
	if lsn > s.lastSnapLSN {
		s.lastSnapLSN = lsn
	}
	s.mu.Unlock()
	if err := pruneSnapshots(s.cfg.FS, s.cfg.Dir); err != nil {
		s.snapErrors.Add(1)
	}
}

func (s *ReplStore) degradeLocked(err error) {
	if s.degradedErr == nil {
		s.degradedErr = err
	}
}

// DegradedErr returns the latched divergence failure, or nil.
func (s *ReplStore) DegradedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradedErr
}

// AppliedLSN reports the shadow's applied position.
func (s *ReplStore) AppliedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedLSN
}

// Stats snapshots the store (the WAL field is zero — the replication
// layer owns the log and reports its stats separately).
func (s *ReplStore) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		LastSnapshotLSN: s.lastSnapLSN,
		PendingRecords:  s.recSinceSnap,
		Degraded:        s.degradedErr != nil,
	}
	s.mu.Unlock()
	st.Snapshots = s.snapshots.Load()
	st.SnapshotErrors = s.snapErrors.Load()
	return st
}

// Close waits out any background snapshot and writes a final one so a
// clean restart replays (almost) nothing.
func (s *ReplStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.snapWG.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.snapWG.Wait()

	s.mu.Lock()
	lsn, term := s.appliedLSN, s.appliedTerm
	needSnap := s.degradedErr == nil && lsn > s.lastSnapLSN
	var clone *State
	if needSnap {
		clone = s.state.Clone()
	}
	s.mu.Unlock()
	if needSnap {
		s.writeAndPublish(lsn, term, clone)
	}
	return nil
}
