package durable

import "hrtsched/internal/plan"

// Entry is one placed set on one node, in admission order. DAG is set
// only for placements committed by a KindPlaceDAG record; it is omitted
// from snapshots otherwise, so snapshots of DAG-free sessions stay
// byte-identical to previous releases.
type Entry struct {
	ID    string       `json:"id"`
	Tasks plan.TaskSet `json:"tasks"`
	DAG   *DAGMeta     `json:"dag,omitempty"`
}

// Counters are the durable per-operation totals, rebuilt from record
// origins. Rejections, cancellations, and unmatched removals are
// deliberately absent: they commit nothing, so nothing is logged.
type Counters struct {
	Placed     int64 `json:"placed"`
	Removed    int64 `json:"removed"`
	Drained    int64 `json:"drained"`
	Rebalanced int64 `json:"rebalanced"`
	// DAGPlaced counts the KindPlaceDAG subset of Placed. omitempty keeps
	// snapshots of DAG-free sessions byte-identical to previous releases.
	DAGPlaced int64 `json:"dag_placed,omitempty"`
}

// State is the shadow replica of the cluster's placement tables. It
// advances only by Apply in log order, which makes a snapshot of it
// consistent by construction — no coordination with the live engines is
// ever needed to take one.
//
// During a move there is a window where the set's entry exists on both
// the destination and the old home while Placements points at the
// destination; the release record closes it. A crash inside the window
// leaves an orphan (an entry whose node disagrees with Placements), which
// recovery reconciles explicitly.
type State struct {
	// Nodes holds each node's entries in admission order.
	Nodes [][]Entry `json:"nodes"`
	// Placements maps each id to its authoritative node.
	Placements map[string]int `json:"placements"`
	Counters   Counters       `json:"counters"`
}

// NewState returns an empty shadow for nodes placement nodes.
func NewState(nodes int) *State {
	return &State{
		Nodes:      make([][]Entry, nodes),
		Placements: map[string]int{},
	}
}

// Clone returns an independent deep copy (the snapshot cut point).
func (st *State) Clone() *State {
	c := &State{
		Nodes:      make([][]Entry, len(st.Nodes)),
		Placements: make(map[string]int, len(st.Placements)),
		Counters:   st.Counters,
	}
	for i, list := range st.Nodes {
		c.Nodes[i] = append([]Entry(nil), list...)
	}
	for id, n := range st.Placements {
		c.Placements[id] = n
	}
	return c
}

// Peek reports whether r can apply to the current state: the node exists,
// a place's id is not already on that node, a remove's id is. A false
// Peek during replay means the record does not fit the state the log
// itself built — it is counted and skipped, never force-applied.
func (st *State) Peek(r Record) bool {
	if r.Node < 0 || r.Node >= len(st.Nodes) {
		return false
	}
	onNode := st.entryIndex(r)
	switch r.Kind {
	case KindPlace, KindPlaceDAG:
		return len(r.Tasks) > 0 && onNode < 0
	case KindRemove:
		return onNode >= 0
	}
	return false
}

// Resolve returns the task set r operates on: the record's own tasks for
// a place, the stored entry's tasks for a remove (nil when Peek fails).
func (st *State) Resolve(r Record) plan.TaskSet {
	if r.Kind == KindPlace || r.Kind == KindPlaceDAG {
		return r.Tasks
	}
	if r.Node < 0 || r.Node >= len(st.Nodes) {
		return nil
	}
	if i := st.entryIndex(r); i >= 0 {
		return st.Nodes[r.Node][i].Tasks
	}
	return nil
}

// Apply advances the state by one record (Peek must hold) and returns the
// affected task set.
func (st *State) Apply(r Record) plan.TaskSet {
	switch r.Kind {
	case KindPlace, KindPlaceDAG:
		tasks := append(plan.TaskSet(nil), r.Tasks...)
		st.Nodes[r.Node] = append(st.Nodes[r.Node], Entry{ID: r.ID, Tasks: tasks, DAG: r.DAG})
		st.Placements[r.ID] = r.Node
		switch r.Origin {
		case OriginClient:
			st.Counters.Placed++
			if r.Kind == KindPlaceDAG {
				st.Counters.DAGPlaced++
			}
		case OriginDrain:
			st.Counters.Drained++
		case OriginRebalance:
			st.Counters.Rebalanced++
		}
		return tasks
	case KindRemove:
		i := st.entryIndex(r)
		if i < 0 {
			return nil
		}
		list := st.Nodes[r.Node]
		tasks := list[i].Tasks
		st.Nodes[r.Node] = append(list[:i], list[i+1:]...)
		// A release removes the stale copy of a moved set; the id still
		// points at its new home, so the map keeps it.
		if st.Placements[r.ID] == r.Node {
			delete(st.Placements, r.ID)
		}
		if r.Origin == OriginClient {
			st.Counters.Removed++
		}
		return tasks
	}
	return nil
}

// Orphan is an entry stranded by a crash inside a move's dual-reservation
// window: its node no longer matches Placements, so it is a stale copy
// the release record never reached the log for.
type Orphan struct {
	Node  int
	ID    string
	Tasks plan.TaskSet
}

// Orphans lists every stale entry, in (node, admission) order — the
// deterministic order recovery releases them in.
func (st *State) Orphans() []Orphan {
	var out []Orphan
	for nodeID, list := range st.Nodes {
		for _, e := range list {
			if home, ok := st.Placements[e.ID]; !ok || home != nodeID {
				out = append(out, Orphan{Node: nodeID, ID: e.ID, Tasks: e.Tasks})
			}
		}
	}
	return out
}

func (st *State) entryIndex(r Record) int {
	for i, e := range st.Nodes[r.Node] {
		if e.ID == r.ID {
			return i
		}
	}
	return -1
}
