package durable

import (
	"testing"

	"hrtsched/internal/plan"
)

func replTestRecord(kind Kind, node int, id string) Record {
	r := Record{Kind: kind, Origin: OriginClient, Node: node, ID: id}
	if kind == KindPlace {
		r.Tasks = plan.TaskSet{{PeriodNs: 1000, SliceNs: 100}}
	}
	return r
}

func TestReplStoreApplyCommittedAndSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := ReplConfig{Dir: dir, NumNodes: 2, Spec: testSpec, SnapshotEveryRecords: 4}
	s, err := OpenReplicated(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got := s.Recovery().SnapshotLSN; got != 0 {
		t.Fatalf("fresh recovery snapshot LSN = %d", got)
	}
	for i, id := range []string{"a", "b", "c"} {
		r := replTestRecord(KindPlace, i%2, id)
		if !s.Peek(r) {
			t.Fatalf("peek %q refused", id)
		}
		if err := s.ApplyCommitted(uint64(i+1), 3, 32, r); err != nil {
			t.Fatalf("apply %q: %v", id, err)
		}
	}
	// Replay overlap (same LSN again) is a no-op, not a divergence.
	if err := s.ApplyCommitted(3, 3, 32, replTestRecord(KindPlace, 0, "c")); err != nil {
		t.Fatalf("re-apply committed: %v", err)
	}
	if got := s.AppliedLSN(); got != 3 {
		t.Fatalf("applied LSN = %d, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: the final snapshot restores the state and carries the term.
	s2, err := OpenReplicated(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotLSN != 3 || rec.SnapshotTerm != 3 {
		t.Fatalf("recovery = %+v, want LSN 3 term 3", rec)
	}
	st := s2.RecoveredState()
	if len(st.Placements) != 3 {
		t.Fatalf("restored %d placements, want 3", len(st.Placements))
	}
	// Removing a placement that exists fits; a phantom does not.
	if !s2.Peek(replTestRecord(KindRemove, 0, "a")) {
		t.Fatalf("remove of restored placement refused")
	}
	if s2.Peek(replTestRecord(KindRemove, 0, "zzz")) {
		t.Fatalf("remove of phantom accepted")
	}
}

func TestReplStoreDegradesOnDivergence(t *testing.T) {
	s, err := OpenReplicated(ReplConfig{Dir: t.TempDir(), NumNodes: 1, Spec: testSpec})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	// A committed remove for a record the shadow never saw is divergence.
	if err := s.ApplyCommitted(1, 1, 16, replTestRecord(KindRemove, 0, "ghost")); err == nil {
		t.Fatalf("divergent record applied cleanly")
	}
	if s.DegradedErr() == nil {
		t.Fatalf("store not degraded after divergence")
	}
	if err := s.ApplyCommitted(2, 1, 16, replTestRecord(KindPlace, 0, "x")); err == nil {
		t.Fatalf("degraded store accepted a record")
	}
}

func TestReplStoreResolveRebuildsTasks(t *testing.T) {
	s, err := OpenReplicated(ReplConfig{Dir: t.TempDir(), NumNodes: 1, Spec: testSpec})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	r := Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "t", Tasks: plan.TaskSet{
		{PeriodNs: 1000, SliceNs: 250}, {PeriodNs: 2000, SliceNs: 100},
	}}
	ts := s.Resolve(r)
	if len(ts) != 2 || ts[0] != (plan.Task{PeriodNs: 1000, SliceNs: 250}) {
		t.Fatalf("resolved tasks = %+v", ts)
	}
}
