package durable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hrtsched/internal/plan"
	"hrtsched/internal/wal"
)

// ErrClosed is returned by LogBatch after Close.
var ErrClosed = errors.New("durable: store closed")

// Config parameterizes a Store. Zero fields take defaults.
type Config struct {
	// Dir holds WAL segments and snapshots; created if missing.
	Dir string
	// NumNodes is the cluster's node count; a snapshot recorded with more
	// nodes than this refuses to open (shrinking a cluster under live
	// placements needs an explicit drain, not a silent amputation).
	NumNodes int
	// Spec is the per-node admission spec; recovery flags (but tolerates)
	// a snapshot taken under a different one.
	Spec plan.Spec
	// FS is the filesystem to write through; default the real one.
	FS wal.FS
	// SegmentBytes is the WAL roll threshold; default wal's.
	SegmentBytes int64
	// SnapshotEveryRecords triggers a snapshot after this many logged
	// records; default 4096.
	SnapshotEveryRecords int64
	// SnapshotEveryBytes triggers a snapshot after this many logged
	// bytes; default 1 MiB.
	SnapshotEveryBytes int64
}

func (c *Config) fillDefaults() {
	if c.FS == nil {
		c.FS = wal.OSFS{}
	}
	if c.SnapshotEveryRecords == 0 {
		c.SnapshotEveryRecords = 4096
	}
	if c.SnapshotEveryBytes == 0 {
		c.SnapshotEveryBytes = 1 << 20
	}
}

// RecoveryResult summarizes what one recovery did, for the boot log line
// and the status endpoint.
type RecoveryResult struct {
	// SnapshotLSN is the LSN of the snapshot recovery started from (0
	// when none was usable).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// BadSnapshots counts snapshot files skipped for CRC or decode
	// failures.
	BadSnapshots int `json:"bad_snapshots"`
	// Replayed counts WAL records applied on top of the snapshot.
	Replayed int64 `json:"replayed"`
	// Rejected counts WAL records that no longer fit — undecodable,
	// aimed at a missing node, or refused by the engine under a changed
	// spec. They are skipped consistently, never force-applied.
	Rejected int64 `json:"rejected"`
	// TruncatedBytes is the torn tail the WAL amputated.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// DroppedSegments counts WAL segments discarded as unreachable.
	DroppedSegments int `json:"dropped_segments"`
	// OrphansReleased counts stale move copies reconciled after replay.
	OrphansReleased int `json:"orphans_released"`
	// LastLSN is the log's last valid LSN after recovery.
	LastLSN uint64 `json:"last_lsn"`
	// SpecChanged notes that the snapshot was taken under a different
	// admission spec than the current configuration.
	SpecChanged bool `json:"spec_changed,omitempty"`
}

// Stats snapshots the store's health for metrics and status.
type Stats struct {
	WAL             wal.Stats
	LastSnapshotLSN uint64
	Snapshots       int64
	SnapshotErrors  int64
	PendingRecords  int64 // records logged since the last snapshot cut
	Degraded        bool
}

// Store is the durability engine under one cluster: it owns the WAL, the
// shadow State, and the snapshot cadence. All mutation logging funnels
// through LogBatch, which assigns WAL order and shadow order under one
// mutex — so the shadow is always the fold of the log prefix, and
// snapshotting it never needs to stop the world.
//
// A Store that hits a write error latches into degraded mode: it stops
// logging and snapshotting (so the last durable state stays trustworthy)
// but the cluster keeps serving from memory — fail-open, surfaced through
// Stats().Degraded and the metrics.
type Store struct {
	cfg      Config
	log      *wal.Log
	recovery RecoveryResult

	mu             sync.Mutex
	state          *State
	appliedLSN     uint64
	lastSnapLSN    uint64
	recSinceSnap   int64
	bytesSinceSnap int64
	closed         bool
	degradedErr    error

	snapshotting atomic.Bool
	snapWG       sync.WaitGroup
	snapshots    atomic.Int64
	snapErrors   atomic.Int64
}

// Open loads the latest valid snapshot and scans the WAL. The caller must
// then restore its engines from RecoveredState, run Replay, and reconcile
// ReleaseOrphans — in that order — before the first LogBatch.
func Open(cfg Config) (*Store, error) {
	cfg.fillDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("durable: Config.Dir is required")
	}
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("durable: NumNodes %d, want > 0", cfg.NumNodes)
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("durable: mkdir %s: %w", cfg.Dir, err)
	}
	state, snapLSN, _, specChanged, bad, err := loadLatestSnapshot(cfg.FS, cfg.Dir, cfg.Spec)
	if err != nil {
		return nil, err
	}
	if state == nil {
		state = NewState(cfg.NumNodes)
	} else {
		if len(state.Nodes) > cfg.NumNodes {
			return nil, fmt.Errorf("durable: snapshot holds %d nodes but %d are configured; "+
				"drain before shrinking the cluster", len(state.Nodes), cfg.NumNodes)
		}
		for len(state.Nodes) < cfg.NumNodes {
			state.Nodes = append(state.Nodes, nil)
		}
	}

	walOpts := wal.Options{Dir: cfg.Dir, FS: cfg.FS, SegmentBytes: cfg.SegmentBytes}
	log, rep, err := wal.Open(walOpts)
	if err != nil {
		return nil, err
	}
	if rep.LastLSN < snapLSN {
		// The snapshot outran the surviving log (its covered tail was
		// torn off, or segments were lost). Every surviving record is
		// already inside the snapshot, so the stale segments are wiped
		// and the log restarts just past it — LSNs the snapshot covers
		// must never be reassigned to new records.
		if cerr := log.Close(); cerr != nil {
			return nil, cerr
		}
		n, werr := wal.RemoveAll(cfg.FS, cfg.Dir)
		if werr != nil {
			return nil, fmt.Errorf("durable: wipe stale log: %w", werr)
		}
		rep.DroppedSegments += n
		walOpts.BaseLSN = snapLSN + 1
		log, _, err = wal.Open(walOpts)
		if err != nil {
			return nil, err
		}
		rep.LastLSN = snapLSN
	}

	return &Store{
		cfg:   cfg,
		log:   log,
		state: state,
		recovery: RecoveryResult{
			SnapshotLSN:     snapLSN,
			BadSnapshots:    bad,
			TruncatedBytes:  rep.TruncatedBytes,
			DroppedSegments: rep.DroppedSegments,
			LastLSN:         rep.LastLSN,
			SpecChanged:     specChanged,
		},
		appliedLSN:  snapLSN,
		lastSnapLSN: snapLSN,
	}, nil
}

// RecoveredState exposes the shadow for the single-threaded recovery
// window: the caller restores its engines from it before Replay and must
// not touch it after the first LogBatch.
func (s *Store) RecoveredState() *State { return s.state }

// Recovery returns the recovery summary (complete once Replay and
// ReleaseOrphans have run).
func (s *Store) Recovery() RecoveryResult { return s.recovery }

// Replay streams the WAL suffix past the snapshot through apply in
// commit order. apply reports whether the engine accepted the record;
// refusals (and records that no longer fit the shadow) are counted as
// rejected and consistently skipped on both sides. A record whose kind
// byte this build does not know aborts replay with *UnknownKindError:
// it means the log came from a newer writer, and skipping it would
// silently diverge from the state that writer rebuilds. Must run before
// the first LogBatch.
func (s *Store) Replay(apply func(r Record, tasks plan.TaskSet) bool) error {
	err := s.log.Replay(s.recovery.SnapshotLSN+1, func(lsn uint64, payload []byte) error {
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			var unknown *UnknownKindError
			if errors.As(derr, &unknown) {
				return fmt.Errorf("durable: replay lsn %d: %w", lsn, derr)
			}
			s.recovery.Rejected++
			return nil
		}
		if !s.state.Peek(rec) {
			s.recovery.Rejected++
			return nil
		}
		if !apply(rec, s.state.Resolve(rec)) {
			s.recovery.Rejected++
			return nil
		}
		s.state.Apply(rec)
		s.recovery.Replayed++
		return nil
	})
	if err != nil {
		return err
	}
	if s.recovery.LastLSN > s.appliedLSN {
		s.appliedLSN = s.recovery.LastLSN
	}
	return nil
}

// ReleaseOrphans reconciles entries stranded mid-move by the crash: for
// each, release (drop it from the engine) runs first, then a
// OriginRelease remove is logged so the log and shadow agree with the
// engines again. Returns how many were released.
func (s *Store) ReleaseOrphans(release func(o Orphan)) (int, error) {
	orphans := s.state.Orphans()
	if len(orphans) == 0 {
		return 0, nil
	}
	recs := make([]Record, len(orphans))
	for i, o := range orphans {
		release(o)
		recs[i] = Record{Kind: KindRemove, Origin: OriginRelease, Node: o.Node, ID: o.ID}
	}
	s.recovery.OrphansReleased = len(orphans)
	return len(orphans), s.LogBatch(recs)
}

// LogBatch makes a batch of committed mutations durable: records are
// framed into the WAL (sharing fsyncs with concurrent callers via group
// commit) and folded into the shadow, and the call returns only once
// every record is on disk. The caller replies to its client after this
// returns — that ordering is the whole durability guarantee.
func (s *Store) LogBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	payloads := make([][]byte, len(recs))
	var total int64
	for i, r := range recs {
		p, err := r.Encode()
		if err != nil {
			return s.degrade(err)
		}
		payloads[i] = p
		total += int64(len(p))
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.degradedErr != nil {
		err := s.degradedErr
		s.mu.Unlock()
		return err
	}
	t, err := s.log.AppendBatch(payloads)
	if err != nil {
		s.degradeLocked(err)
		s.mu.Unlock()
		return err
	}
	for _, r := range recs {
		if !s.state.Peek(r) {
			// A committed mutation the shadow cannot absorb means the
			// replica logic diverged from the live tables — latch
			// degraded instead of snapshotting a lie.
			err := fmt.Errorf("durable: record %v %q on node %d does not fit the shadow state",
				r.Kind, r.ID, r.Node)
			s.degradeLocked(err)
			s.mu.Unlock()
			return err
		}
		s.state.Apply(r)
	}
	s.appliedLSN = t.LastLSN
	s.recSinceSnap += int64(len(recs))
	s.bytesSinceSnap += total
	shouldSnap := s.recSinceSnap >= s.cfg.SnapshotEveryRecords ||
		s.bytesSinceSnap >= s.cfg.SnapshotEveryBytes
	s.mu.Unlock()

	if err := t.Wait(); err != nil {
		return s.degrade(err)
	}
	if shouldSnap {
		s.maybeSnapshot()
	}
	return nil
}

// maybeSnapshot starts one background snapshot if none is running.
func (s *Store) maybeSnapshot() {
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer s.snapshotting.Store(false)
		s.mu.Lock()
		clone := s.state.Clone()
		lsn := s.appliedLSN
		s.recSinceSnap = 0
		s.bytesSinceSnap = 0
		s.mu.Unlock()
		s.writeAndPublish(lsn, clone)
	}()
}

// writeAndPublish persists one snapshot and compacts the log behind it.
// Failures count but do not degrade: the WAL alone still carries the
// state, and the next cadence trigger retries.
func (s *Store) writeAndPublish(lsn uint64, clone *State) {
	if err := writeSnapshot(s.cfg.FS, s.cfg.Dir, lsn, 0, s.cfg.Spec, clone); err != nil {
		s.snapErrors.Add(1)
		return
	}
	s.snapshots.Add(1)
	s.mu.Lock()
	if lsn > s.lastSnapLSN {
		s.lastSnapLSN = lsn
	}
	s.mu.Unlock()
	if err := pruneSnapshots(s.cfg.FS, s.cfg.Dir); err != nil {
		s.snapErrors.Add(1)
	}
	if _, err := s.log.CompactBefore(lsn + 1); err != nil {
		s.snapErrors.Add(1)
	}
}

// degrade latches the store into fail-open mode.
func (s *Store) degrade(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degradeLocked(err)
	return s.degradedErr
}

func (s *Store) degradeLocked(err error) {
	if s.degradedErr == nil {
		s.degradedErr = err
	}
}

// DegradedErr returns the latched failure, or nil while healthy.
func (s *Store) DegradedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradedErr
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		LastSnapshotLSN: s.lastSnapLSN,
		PendingRecords:  s.recSinceSnap,
		Degraded:        s.degradedErr != nil,
	}
	s.mu.Unlock()
	st.WAL = s.log.Stats()
	st.Snapshots = s.snapshots.Load()
	st.SnapshotErrors = s.snapErrors.Load()
	return st
}

// Close waits out any background snapshot, writes a final snapshot (so a
// clean restart replays nothing), and closes the WAL. Safe to call more
// than once.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.snapWG.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.snapWG.Wait()

	s.mu.Lock()
	lsn := s.appliedLSN
	needSnap := s.degradedErr == nil && lsn > s.lastSnapLSN
	var clone *State
	if needSnap {
		clone = s.state.Clone()
	}
	s.mu.Unlock()
	if needSnap {
		s.writeAndPublish(lsn, clone)
	}
	return s.log.Close()
}
