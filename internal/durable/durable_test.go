package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hrtsched/internal/fault"
	"hrtsched/internal/plan"
	"hrtsched/internal/wal"
)

var testSpec = plan.Spec{OverheadNs: 4_600, UtilizationLimit: 0.79}

func taskSet(n int, period int64) plan.TaskSet {
	set := make(plan.TaskSet, n)
	for i := range set {
		set[i] = plan.Task{PeriodNs: period, SliceNs: period / int64(10*(i+1))}
	}
	return set
}

func TestRecordEncodeDecodeRoundtrip(t *testing.T) {
	recs := []Record{
		{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(3, 100_000)},
		{Kind: KindPlace, Origin: OriginRebalance, Node: 7, ID: strings.Repeat("x", 300), Tasks: taskSet(1, 250_000)},
		{Kind: KindRemove, Origin: OriginClient, Node: 2, ID: "gone"},
		{Kind: KindRemove, Origin: OriginRelease, Node: 1, ID: "moved"},
	}
	for i, r := range recs {
		p, err := r.Encode()
		if err != nil {
			t.Fatalf("record %d encode: %v", i, err)
		}
		got, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("record %d decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("record %d roundtrip:\n got %+v\nwant %+v", i, got, r)
		}
	}
	// A remove's tasks are stripped on the wire: they are resolved from the
	// shadow, never trusted from the record.
	r := Record{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(2, 100_000)}
	p, err := r.Encode()
	if err != nil {
		t.Fatalf("encode remove with tasks: %v", err)
	}
	if got, _ := DecodeRecord(p); got.Tasks != nil {
		t.Fatalf("remove carried tasks onto the wire: %+v", got)
	}
}

func TestRecordEncodeValidation(t *testing.T) {
	bad := []Record{
		{Kind: 0, ID: "a"},
		{Kind: KindPlace, Origin: OriginRelease + 1, ID: "a", Tasks: taskSet(1, 1000)},
		{Kind: KindPlace, Node: -1, ID: "a", Tasks: taskSet(1, 1000)},
		{Kind: KindPlace, ID: "", Tasks: taskSet(1, 1000)},
		{Kind: KindPlace, ID: strings.Repeat("x", maxIDLen+1), Tasks: taskSet(1, 1000)},
	}
	for i, r := range bad {
		if _, err := r.Encode(); err == nil {
			t.Errorf("bad record %d encoded: %+v", i, r)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	place := Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "ab", Tasks: taskSet(2, 100_000)}
	good, err := place.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := map[string][]byte{
		"empty":            nil,
		"too short":        good[:6],
		"bad kind":         append([]byte{9}, good[1:]...),
		"bad origin":       append([]byte{good[0], 9}, good[2:]...),
		"truncated id":     good[:9],
		"truncated tasks":  good[:len(good)-4],
		"trailing garbage": append(append([]byte(nil), good...), 0),
	}
	for name, p := range cases {
		if _, err := DecodeRecord(p); err == nil {
			t.Errorf("%s decoded", name)
		}
	}
	// A place with zero tasks is structurally valid but semantically void.
	empty, err := Record{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "a"}.Encode()
	if err != nil {
		t.Fatalf("encode remove: %v", err)
	}
	empty[0] = byte(KindPlace)
	if _, err := DecodeRecord(empty); err == nil {
		t.Errorf("taskless place decoded")
	}
}

func TestStateApplyCountersAndOrphans(t *testing.T) {
	st := NewState(2)
	apply := func(r Record) plan.TaskSet {
		t.Helper()
		if !st.Peek(r) {
			t.Fatalf("Peek refused %+v", r)
		}
		return st.Apply(r)
	}
	setA := taskSet(2, 100_000)
	apply(Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: setA})
	apply(Record{Kind: KindPlace, Origin: OriginClient, Node: 1, ID: "b", Tasks: taskSet(1, 200_000)})
	// Move "a" to node 1: the place lands first (dual reservation)...
	apply(Record{Kind: KindPlace, Origin: OriginRebalance, Node: 1, ID: "a", Tasks: setA})
	if st.Placements["a"] != 1 {
		t.Fatalf("move did not repoint a: %v", st.Placements)
	}
	// ...and until the release record, the stale node-0 copy is an orphan.
	orphans := st.Orphans()
	if len(orphans) != 1 || orphans[0].Node != 0 || orphans[0].ID != "a" {
		t.Fatalf("orphans = %+v", orphans)
	}
	got := apply(Record{Kind: KindRemove, Origin: OriginRelease, Node: 0, ID: "a"})
	if !reflect.DeepEqual(got, setA) {
		t.Fatalf("release resolved wrong tasks: %v", got)
	}
	if st.Placements["a"] != 1 {
		t.Fatalf("release evicted the live placement: %v", st.Placements)
	}
	if len(st.Orphans()) != 0 {
		t.Fatalf("orphans after release: %+v", st.Orphans())
	}
	apply(Record{Kind: KindRemove, Origin: OriginClient, Node: 1, ID: "b"})
	if _, ok := st.Placements["b"]; ok {
		t.Fatalf("client remove kept the placement")
	}
	want := Counters{Placed: 2, Removed: 1, Rebalanced: 1}
	if st.Counters != want {
		t.Fatalf("counters = %+v, want %+v", st.Counters, want)
	}
}

func TestStatePeekRefusals(t *testing.T) {
	st := NewState(1)
	st.Apply(Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(1, 1000)})
	cases := []Record{
		{Kind: KindPlace, Node: 1, ID: "x", Tasks: taskSet(1, 1000)}, // no such node
		{Kind: KindPlace, Node: -1, ID: "x", Tasks: taskSet(1, 1000)},
		{Kind: KindPlace, Node: 0, ID: "a", Tasks: taskSet(1, 1000)}, // duplicate on node
		{Kind: KindPlace, Node: 0, ID: "x"},                          // no tasks
		{Kind: KindRemove, Node: 0, ID: "missing"},
		{Kind: 9, Node: 0, ID: "a"},
	}
	for i, r := range cases {
		if st.Peek(r) {
			t.Errorf("case %d: Peek accepted %+v", i, r)
		}
	}
}

func TestStateCloneIsIndependent(t *testing.T) {
	st := NewState(1)
	st.Apply(Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(1, 1000)})
	c := st.Clone()
	st.Apply(Record{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "a"})
	if len(c.Nodes[0]) != 1 || c.Placements["a"] != 0 {
		t.Fatalf("clone mutated with the original: %+v", c)
	}
}

func TestSnapshotRoundtripFallbackAndPrune(t *testing.T) {
	dir := t.TempDir()
	fs := wal.OSFS{}
	st := NewState(2)
	st.Apply(Record{Kind: KindPlace, Origin: OriginClient, Node: 1, ID: "a", Tasks: taskSet(2, 100_000)})

	if err := writeSnapshot(fs, dir, 42, 0, testSpec, st); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	got, lsn, _, specChanged, bad, err := loadLatestSnapshot(fs, dir, testSpec)
	if err != nil || lsn != 42 || specChanged || bad != 0 {
		t.Fatalf("load = lsn %d specChanged %v bad %d err %v", lsn, specChanged, bad, err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("snapshot state:\n got %+v\nwant %+v", got, st)
	}

	// A corrupt newer snapshot falls back to the older one, counted.
	if err := writeSnapshot(fs, dir, 50, 0, testSpec, st); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	path := filepath.Join(dir, snapName(50))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	_, lsn, _, _, bad, err = loadLatestSnapshot(fs, dir, testSpec)
	if err != nil || lsn != 42 || bad != 1 {
		t.Fatalf("fallback load = lsn %d bad %d err %v", lsn, bad, err)
	}

	// A spec change is flagged, not fatal.
	other := testSpec
	other.UtilizationLimit = 0.5
	if _, _, _, specChanged, _, err = loadLatestSnapshot(fs, dir, other); err != nil || !specChanged {
		t.Fatalf("spec change not flagged: %v, %v", specChanged, err)
	}

	// Pruning keeps the newest snapKeep files.
	if err := writeSnapshot(fs, dir, 60, 0, testSpec, st); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	if err := pruneSnapshots(fs, dir); err != nil {
		t.Fatalf("prune: %v", err)
	}
	names, _ := fs.ReadDir(dir)
	var snaps []string
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			snaps = append(snaps, n)
		}
	}
	if len(snaps) != snapKeep {
		t.Fatalf("snapshots after prune: %v", snaps)
	}
}

// alwaysApply replays accepting everything, the common test engine.
func alwaysApply(Record, plan.TaskSet) bool { return true }

func TestStoreLogCloseRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, NumNodes: 2, Spec: testSpec}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Replay(alwaysApply); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := s.LogBatch([]Record{
		{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(2, 100_000)},
		{Kind: KindPlace, Origin: OriginClient, Node: 1, ID: "b", Tasks: taskSet(1, 200_000)},
	}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	if err := s.LogBatch([]Record{{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "a"}}); err != nil {
		t.Fatalf("LogBatch remove: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A clean close snapshots everything: the next session replays nothing.
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Recovery(); got.SnapshotLSN != 3 || got.LastLSN != 3 {
		t.Fatalf("recovery after clean close: %+v", got)
	}
	replays := 0
	if err := s2.Replay(func(Record, plan.TaskSet) bool { replays++; return true }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if replays != 0 {
		t.Fatalf("clean restart replayed %d records", replays)
	}
	st := s2.RecoveredState()
	if len(st.Nodes[0]) != 0 || len(st.Nodes[1]) != 1 || st.Nodes[1][0].ID != "b" {
		t.Fatalf("recovered state: %+v", st)
	}
	want := Counters{Placed: 2, Removed: 1}
	if st.Counters != want {
		t.Fatalf("recovered counters = %+v, want %+v", st.Counters, want)
	}
}

func TestStoreCrashReplaysSuffix(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	cfg := Config{Dir: dir, NumNodes: 1, Spec: testSpec, FS: ffs}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	setA := taskSet(2, 100_000)
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: setA}}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginDrain, Node: 0, ID: "b", Tasks: taskSet(1, 200_000)}}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	// Power loss: everything acked was synced, but no snapshot was cut, so
	// the next session rebuilds purely from the log.
	if err := ffs.Crash(fault.CrashOptions{}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	s.Close() //nolint:errcheck // the crashed FS fails the final snapshot; that's the point
	ffs.Restart()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	var got []Record
	err = s2.Replay(func(r Record, tasks plan.TaskSet) bool {
		if r.Kind == KindPlace && !reflect.DeepEqual(tasks, r.Tasks) {
			t.Errorf("resolved tasks diverge for %q", r.ID)
		}
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rec := s2.Recovery()
	if rec.SnapshotLSN != 0 || rec.Replayed != 2 || rec.Rejected != 0 || rec.LastLSN != 2 {
		t.Fatalf("recovery: %+v", rec)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("replayed records: %+v", got)
	}
	st := s2.RecoveredState()
	if st.Counters.Placed != 1 || st.Counters.Drained != 1 {
		t.Fatalf("rebuilt counters: %+v", st.Counters)
	}
}

func TestStoreReplayCountsEngineRefusals(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	cfg := Config{Dir: dir, NumNodes: 1, Spec: testSpec, FS: ffs}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: id, Tasks: taskSet(1, 100_000)}}); err != nil {
			t.Fatalf("LogBatch: %v", err)
		}
	}
	ffs.Crash(fault.CrashOptions{}) //nolint:errcheck
	s.Close()                       //nolint:errcheck
	ffs.Restart()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	// The "engine" refuses the middle record: it is skipped on both sides,
	// and the records around it still land.
	err = s2.Replay(func(r Record, _ plan.TaskSet) bool { return r.ID != "s1" })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rec := s2.Recovery()
	if rec.Replayed != 2 || rec.Rejected != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	st := s2.RecoveredState()
	if len(st.Nodes[0]) != 2 {
		t.Fatalf("refused record leaked into the shadow: %+v", st.Nodes[0])
	}
}

func TestStoreOrphanReleaseLogsRemoves(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	cfg := Config{Dir: dir, NumNodes: 2, Spec: testSpec, FS: ffs}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	setA := taskSet(1, 100_000)
	// A move interrupted between its two halves: destination place logged,
	// home release lost to the crash.
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: setA}}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginRebalance, Node: 1, ID: "a", Tasks: setA}}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	ffs.Crash(fault.CrashOptions{}) //nolint:errcheck
	s.Close()                       //nolint:errcheck
	ffs.Restart()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := s2.Replay(alwaysApply); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	var released []Orphan
	n, err := s2.ReleaseOrphans(func(o Orphan) { released = append(released, o) })
	if err != nil || n != 1 {
		t.Fatalf("ReleaseOrphans = %d, %v", n, err)
	}
	if released[0].Node != 0 || released[0].ID != "a" {
		t.Fatalf("released = %+v", released)
	}
	st := s2.RecoveredState()
	if len(st.Nodes[0]) != 0 || st.Placements["a"] != 1 {
		t.Fatalf("post-release state: %+v", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The release was logged, so a third session sees no orphan.
	s3, err := Open(cfg)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if err := s3.Replay(alwaysApply); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n, err := s3.ReleaseOrphans(func(Orphan) {}); err != nil || n != 0 {
		t.Fatalf("orphan resurrected: %d, %v", n, err)
	}
}

func TestStoreSnapshotCadenceCompactsLog(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, NumNodes: 1, Spec: testSpec,
		SnapshotEveryRecords: 4, SegmentBytes: 128,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("s%03d", i)
		if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: id, Tasks: taskSet(1, 100_000)}}); err != nil {
			t.Fatalf("LogBatch %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := s.Stats()
	if st.Snapshots < 2 {
		t.Fatalf("cadence produced %d snapshots, want >= 2", st.Snapshots)
	}
	if st.LastSnapshotLSN != 16 {
		t.Fatalf("final snapshot LSN = %d, want 16", st.LastSnapshotLSN)
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Recovery().SnapshotLSN; got != 16 {
		t.Fatalf("recovered snapshot LSN = %d", got)
	}
	if len(s2.RecoveredState().Nodes[0]) != 16 {
		t.Fatalf("recovered entries: %d", len(s2.RecoveredState().Nodes[0]))
	}
}

func TestStoreSnapshotOutrunsTornLog(t *testing.T) {
	dir := t.TempDir()
	st := NewState(1)
	st.Apply(Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(1, 100_000)})
	// A snapshot claims LSN 10, but the log has nothing at all — the torn
	// tail it covered is gone. Reopening must not reissue LSNs <= 10.
	if err := writeSnapshot(wal.OSFS{}, dir, 10, 0, testSpec, st); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	cfg := Config{Dir: dir, NumNodes: 1, Spec: testSpec}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := s.Recovery()
	if rec.SnapshotLSN != 10 || rec.LastLSN != 10 {
		t.Fatalf("recovery: %+v", rec)
	}
	if err := s.Replay(alwaysApply); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "b", Tasks: taskSet(1, 200_000)}}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	if got := s.Stats().WAL.LastLSN; got != 11 {
		t.Fatalf("first post-outrun LSN = %d, want 11", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := s2.RecoveredState()
	if len(got.Nodes[0]) != 2 {
		t.Fatalf("state after outrun recovery: %+v", got.Nodes[0])
	}
}

func TestStoreRefusesNodeShrink(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshot(wal.OSFS{}, dir, 1, 0, testSpec, NewState(3)); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	_, err := Open(Config{Dir: dir, NumNodes: 2, Spec: testSpec})
	if err == nil || !strings.Contains(err.Error(), "drain") {
		t.Fatalf("shrink allowed: %v", err)
	}
	// Growing is fine: the new nodes start empty.
	s, err := Open(Config{Dir: dir, NumNodes: 5, Spec: testSpec})
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	defer s.Close()
	if got := len(s.RecoveredState().Nodes); got != 5 {
		t.Fatalf("padded nodes = %d", got)
	}
}

func TestStoreDegradesFailOpen(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	cfg := Config{Dir: t.TempDir(), NumNodes: 1, Spec: testSpec, FS: ffs}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(1, 100_000)}}); err != nil {
		t.Fatalf("healthy LogBatch: %v", err)
	}
	ffs.FailSyncAt(1)
	err = s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "b", Tasks: taskSet(1, 100_000)}})
	if !errors.Is(err, fault.ErrInjectedSync) {
		t.Fatalf("failed LogBatch: %v", err)
	}
	if s.DegradedErr() == nil || !s.Stats().Degraded {
		t.Fatalf("store did not latch degraded")
	}
	// Every later batch reports the same latched error, immediately.
	err = s.LogBatch([]Record{{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "a"}})
	if !errors.Is(err, fault.ErrInjectedSync) {
		t.Fatalf("post-degrade LogBatch: %v", err)
	}
}

func TestStoreLogBatchAfterClose(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), NumNodes: 1, Spec: testSpec})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	err = s.LogBatch([]Record{{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "a"}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("LogBatch after close: %v", err)
	}
}

func dagMeta() *DAGMeta {
	return &DAGMeta{
		Cores: 4, PeriodNs: 1_000_000, DeadlineNs: 800_000, BoundNs: 400_000,
		Analyzer: "dag-classical",
		WCETNs:   []int64{50_000, 80_000, 30_000},
		Edges:    [][2]int{{0, 1}, {0, 2}, {1, 2}},
	}
}

func TestDAGRecordEncodeDecodeRoundtrip(t *testing.T) {
	recs := []Record{
		{Kind: KindPlaceDAG, Origin: OriginClient, Node: 3, ID: "dag-a",
			Tasks: plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 400_000}}, DAG: dagMeta()},
		{Kind: KindPlaceDAG, Origin: OriginRebalance, Node: 0, ID: "dag-b",
			Tasks: plan.TaskSet{{PeriodNs: 2_000_000, SliceNs: 100_000}},
			DAG:   &DAGMeta{Cores: 1, PeriodNs: 2_000_000, DeadlineNs: 2_000_000, BoundNs: 100_000, Analyzer: "dag-ab", WCETNs: []int64{100_000}}},
	}
	for i, r := range recs {
		p, err := r.Encode()
		if err != nil {
			t.Fatalf("dag record %d encode: %v", i, err)
		}
		got, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("dag record %d decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("dag record %d roundtrip:\n got %+v\nwant %+v", i, got, r)
		}
	}
	// DAG meta on a plain kind, or a DAG kind without meta, refuses to encode.
	bad := []Record{
		{Kind: KindPlace, Origin: OriginClient, ID: "x", Tasks: taskSet(1, 1000), DAG: dagMeta()},
		{Kind: KindPlaceDAG, Origin: OriginClient, ID: "x", Tasks: taskSet(1, 1000)},
		{Kind: KindPlaceDAG, Origin: OriginClient, ID: "x", Tasks: taskSet(1, 1000),
			DAG: &DAGMeta{Cores: 2, WCETNs: []int64{1}, Edges: [][2]int{{0, 5}}}},
	}
	for i, r := range bad {
		if _, err := r.Encode(); err == nil {
			t.Errorf("bad dag record %d encoded: %+v", i, r)
		}
	}
	// Truncating anywhere inside the DAG section must not decode.
	good, err := recs[0].Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	base := 10 + len(recs[0].ID) + 16*len(recs[0].Tasks) // prefix shared with KindPlace
	for cut := base; cut < len(good); cut++ {
		if _, err := DecodeRecord(good[:cut]); err == nil {
			t.Fatalf("dag record truncated at %d decoded", cut)
		}
	}
}

func TestStateAppliesDAGPlacements(t *testing.T) {
	st := NewState(1)
	meta := dagMeta()
	r := Record{Kind: KindPlaceDAG, Origin: OriginClient, Node: 0, ID: "dag-a",
		Tasks: plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 400_000}}, DAG: meta}
	if !st.Peek(r) {
		t.Fatalf("Peek refused a fresh DAG place")
	}
	if got := st.Apply(r); !reflect.DeepEqual(got, r.Tasks) {
		t.Fatalf("Apply returned %+v", got)
	}
	if e := st.Nodes[0][0]; e.DAG == nil || e.DAG.BoundNs != meta.BoundNs {
		t.Fatalf("entry lost DAG meta: %+v", e)
	}
	if st.Counters.Placed != 1 {
		t.Fatalf("counters = %+v", st.Counters)
	}
	// Removal resolves and clears it like any other placement.
	rm := Record{Kind: KindRemove, Origin: OriginClient, Node: 0, ID: "dag-a"}
	if got := st.Resolve(rm); !reflect.DeepEqual(got, r.Tasks) {
		t.Fatalf("Resolve = %+v", got)
	}
	st.Apply(rm)
	if len(st.Nodes[0]) != 0 || st.Counters.Removed != 1 {
		t.Fatalf("post-remove state: %+v", st)
	}
}

func TestReplayFailsLoudOnUnknownKind(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, NumNodes: 1, Spec: testSpec}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Replay(alwaysApply); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := s.LogBatch([]Record{{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "a", Tasks: taskSet(1, 100_000)}}); err != nil {
		t.Fatalf("LogBatch: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A newer writer appends a record kind this build has never heard of.
	future, err := Record{Kind: KindPlace, Origin: OriginClient, Node: 0, ID: "b", Tasks: taskSet(1, 100_000)}.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	future[0] = 7
	l, _, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if _, err := l.Append(future); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	err = s2.Replay(alwaysApply)
	var unknown *UnknownKindError
	if !errors.As(err, &unknown) {
		t.Fatalf("replay of unknown kind: err = %v, want *UnknownKindError", err)
	}
	if unknown.Kind != 7 {
		t.Fatalf("UnknownKindError.Kind = %d, want 7", unknown.Kind)
	}
}
