// Package durable makes the cluster placement session survive crashes:
// every committed mutation (place, remove, drain move, rebalance move) is
// encoded as a Record and group-committed to an internal/wal log before
// the client hears about it, a shadow State replica of the placement
// tables advances in log order, and periodic snapshots of the shadow
// bound replay time. Recovery loads the latest valid snapshot, replays
// the WAL suffix through the admission engines, and reconciles the one
// legal intermediate state a crash can expose (a move's dual
// reservation). Replaying the same log always rebuilds the same state —
// every step is a deterministic function of the record sequence.
package durable

import (
	"encoding/binary"
	"fmt"

	"hrtsched/internal/plan"
)

// Kind says what a record does to the placement tables.
type Kind uint8

const (
	// KindPlace commits a task set onto a node.
	KindPlace Kind = 1
	// KindRemove evicts a named set from a node.
	KindRemove Kind = 2
)

// Origin says which operation committed the mutation; recovery rebuilds
// the per-operation counters from it.
type Origin uint8

const (
	// OriginClient is a direct Place or Remove call.
	OriginClient Origin = 0
	// OriginDrain is a place performed while moving a set off a draining
	// node.
	OriginDrain Origin = 1
	// OriginRebalance is a place performed by the rebalancer.
	OriginRebalance Origin = 2
	// OriginRelease is the remove half of a move (or of recovery's orphan
	// reconciliation): the set lives on elsewhere, so it counts nothing.
	OriginRelease Origin = 3
)

// Record is one committed placement mutation. Remove records carry no
// tasks — the set is resolved from the shadow state by id, which is
// well-defined because the log is replayed in commit order.
type Record struct {
	Kind   Kind
	Origin Origin
	Node   int
	ID     string
	Tasks  plan.TaskSet // place only
}

// maxIDLen bounds the id field on the wire (u16 length prefix).
const maxIDLen = 1<<16 - 1

// Encode serializes the record into the WAL payload format:
// [kind u8][origin u8][node u32][idlen u16][id][ntasks u16][{period i64,
// slice i64}...], all little-endian.
func (r Record) Encode() ([]byte, error) {
	if r.Kind != KindPlace && r.Kind != KindRemove {
		return nil, fmt.Errorf("durable: encode: bad kind %d", r.Kind)
	}
	if r.Origin > OriginRelease {
		return nil, fmt.Errorf("durable: encode: bad origin %d", r.Origin)
	}
	if r.Node < 0 || int64(r.Node) > int64(1<<31) {
		return nil, fmt.Errorf("durable: encode: bad node %d", r.Node)
	}
	if len(r.ID) == 0 || len(r.ID) > maxIDLen {
		return nil, fmt.Errorf("durable: encode: id length %d", len(r.ID))
	}
	tasks := r.Tasks
	if r.Kind == KindRemove {
		tasks = nil
	}
	if len(tasks) > maxIDLen {
		return nil, fmt.Errorf("durable: encode: %d tasks", len(tasks))
	}
	buf := make([]byte, 0, 2+4+2+len(r.ID)+2+16*len(tasks))
	buf = append(buf, byte(r.Kind), byte(r.Origin))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Node))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.ID)))
	buf = append(buf, r.ID...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tasks)))
	for _, t := range tasks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.PeriodNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.SliceNs))
	}
	return buf, nil
}

// DecodeRecord parses one WAL payload. Framing already guarantees the
// bytes arrived intact (CRC32C), so any structural error here means the
// writer and reader disagree — it is returned, never guessed around.
func DecodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) < 10 {
		return r, fmt.Errorf("durable: record too short (%d bytes)", len(p))
	}
	r.Kind = Kind(p[0])
	r.Origin = Origin(p[1])
	if r.Kind != KindPlace && r.Kind != KindRemove {
		return r, fmt.Errorf("durable: bad record kind %d", p[0])
	}
	if r.Origin > OriginRelease {
		return r, fmt.Errorf("durable: bad record origin %d", p[1])
	}
	r.Node = int(binary.LittleEndian.Uint32(p[2:6]))
	idLen := int(binary.LittleEndian.Uint16(p[6:8]))
	if len(p) < 8+idLen+2 {
		return r, fmt.Errorf("durable: record truncated inside id")
	}
	r.ID = string(p[8 : 8+idLen])
	if r.ID == "" {
		return r, fmt.Errorf("durable: empty record id")
	}
	off := 8 + idLen
	ntasks := int(binary.LittleEndian.Uint16(p[off : off+2]))
	off += 2
	if len(p) != off+16*ntasks {
		return r, fmt.Errorf("durable: record length %d != %d for %d tasks",
			len(p), off+16*ntasks, ntasks)
	}
	if ntasks > 0 {
		r.Tasks = make(plan.TaskSet, ntasks)
		for i := range r.Tasks {
			r.Tasks[i].PeriodNs = int64(binary.LittleEndian.Uint64(p[off:]))
			r.Tasks[i].SliceNs = int64(binary.LittleEndian.Uint64(p[off+8:]))
			off += 16
		}
	}
	if r.Kind == KindPlace && len(r.Tasks) == 0 {
		return r, fmt.Errorf("durable: place record %q with no tasks", r.ID)
	}
	return r, nil
}
