// Package durable makes the cluster placement session survive crashes:
// every committed mutation (place, remove, drain move, rebalance move) is
// encoded as a Record and group-committed to an internal/wal log before
// the client hears about it, a shadow State replica of the placement
// tables advances in log order, and periodic snapshots of the shadow
// bound replay time. Recovery loads the latest valid snapshot, replays
// the WAL suffix through the admission engines, and reconciles the one
// legal intermediate state a crash can expose (a move's dual
// reservation). Replaying the same log always rebuilds the same state —
// every step is a deterministic function of the record sequence.
package durable

import (
	"encoding/binary"
	"fmt"

	"hrtsched/internal/plan"
)

// Kind says what a record does to the placement tables.
type Kind uint8

const (
	// KindPlace commits a task set onto a node.
	KindPlace Kind = 1
	// KindRemove evicts a named set from a node.
	KindRemove Kind = 2
	// KindPlaceDAG commits a DAG task's derived reservation onto a node.
	// The record carries both the derived periodic server task (what the
	// engine admits, so replay never re-runs response-time analysis) and
	// the DAG provenance (structure + admitted bound, for status).
	KindPlaceDAG Kind = 3
)

// UnknownKindError reports a record whose kind byte this build does not
// understand. It is a distinct type because it means something different
// from corruption: the log was written by a NEWER writer, and skipping
// the record would silently fork the recovered state from the one every
// up-to-date replica rebuilds. Replay fails loudly on it.
type UnknownKindError struct {
	Kind uint8
}

func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("durable: unknown record kind %d (log written by a newer version?)", e.Kind)
}

// DAGMeta is the DAG provenance a KindPlaceDAG record carries alongside
// its derived server task: the admitted graph's shape, timing parameters,
// and the response-time bound the admission decision was based on.
// Entries treat it as immutable once decoded.
type DAGMeta struct {
	// Cores is the parallelism the bound was computed for.
	Cores int `json:"cores"`
	// PeriodNs and DeadlineNs are the DAG task's timing parameters.
	PeriodNs   int64 `json:"period_ns"`
	DeadlineNs int64 `json:"deadline_ns"`
	// BoundNs is the admitted response-time bound (the derived slice).
	BoundNs int64 `json:"bound_ns"`
	// Analyzer names the RTA plug-in that produced the bound.
	Analyzer string `json:"analyzer"`
	// WCETNs holds each DAG node's worst-case execution time, in the
	// submitted node order.
	WCETNs []int64 `json:"wcet_ns"`
	// Edges lists precedence edges as [from, to] node indexes.
	Edges [][2]int `json:"edges,omitempty"`
}

// Record is one committed placement mutation. Remove records carry no
// tasks — the set is resolved from the shadow state by id, which is
// well-defined because the log is replayed in commit order.
type Record struct {
	Kind   Kind
	Origin Origin
	Node   int
	ID     string
	Tasks  plan.TaskSet // place only
	DAG    *DAGMeta     // KindPlaceDAG only
}

// Origin says which operation committed the mutation; recovery rebuilds
// the per-operation counters from it.
type Origin uint8

const (
	// OriginClient is a direct Place or Remove call.
	OriginClient Origin = 0
	// OriginDrain is a place performed while moving a set off a draining
	// node.
	OriginDrain Origin = 1
	// OriginRebalance is a place performed by the rebalancer.
	OriginRebalance Origin = 2
	// OriginRelease is the remove half of a move (or of recovery's orphan
	// reconciliation): the set lives on elsewhere, so it counts nothing.
	OriginRelease Origin = 3
)

// maxIDLen bounds the id field on the wire (u16 length prefix).
const maxIDLen = 1<<16 - 1

// Encode serializes the record into the WAL payload format:
// [kind u8][origin u8][node u32][idlen u16][id][ntasks u16][{period i64,
// slice i64}...], all little-endian. A KindPlaceDAG record appends its
// DAG section after the tasks: [cores u16][period i64][deadline i64]
// [bound i64][alen u16][analyzer][nnodes u16][wcet i64...][nedges u32]
// [{from u16, to u16}...]. KindPlace and KindRemove payloads are
// byte-identical to every prior release.
func (r Record) Encode() ([]byte, error) {
	if r.Kind != KindPlace && r.Kind != KindRemove && r.Kind != KindPlaceDAG {
		return nil, fmt.Errorf("durable: encode: bad kind %d", r.Kind)
	}
	if r.Origin > OriginRelease {
		return nil, fmt.Errorf("durable: encode: bad origin %d", r.Origin)
	}
	if r.Node < 0 || int64(r.Node) > int64(1<<31) {
		return nil, fmt.Errorf("durable: encode: bad node %d", r.Node)
	}
	if len(r.ID) == 0 || len(r.ID) > maxIDLen {
		return nil, fmt.Errorf("durable: encode: id length %d", len(r.ID))
	}
	tasks := r.Tasks
	if r.Kind == KindRemove {
		tasks = nil
	}
	if len(tasks) > maxIDLen {
		return nil, fmt.Errorf("durable: encode: %d tasks", len(tasks))
	}
	if r.Kind == KindPlaceDAG {
		if err := r.DAG.validate(); err != nil {
			return nil, err
		}
	} else if r.DAG != nil {
		return nil, fmt.Errorf("durable: encode: kind %d record carries DAG meta", r.Kind)
	}
	buf := make([]byte, 0, 2+4+2+len(r.ID)+2+16*len(tasks))
	buf = append(buf, byte(r.Kind), byte(r.Origin))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Node))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.ID)))
	buf = append(buf, r.ID...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tasks)))
	for _, t := range tasks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.PeriodNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.SliceNs))
	}
	if r.Kind == KindPlaceDAG {
		d := r.DAG
		buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Cores))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.PeriodNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.DeadlineNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.BoundNs))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.Analyzer)))
		buf = append(buf, d.Analyzer...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.WCETNs)))
		for _, w := range d.WCETNs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Edges)))
		for _, e := range d.Edges {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(e[0]))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(e[1]))
		}
	}
	return buf, nil
}

// validate checks the wire invariants of a DAG section before encoding.
func (d *DAGMeta) validate() error {
	if d == nil {
		return fmt.Errorf("durable: encode: dag record without DAG meta")
	}
	if d.Cores < 1 || d.Cores > maxIDLen {
		return fmt.Errorf("durable: encode: dag cores %d", d.Cores)
	}
	if len(d.WCETNs) == 0 || len(d.WCETNs) > maxIDLen {
		return fmt.Errorf("durable: encode: dag with %d nodes", len(d.WCETNs))
	}
	if len(d.Analyzer) > maxIDLen {
		return fmt.Errorf("durable: encode: dag analyzer name length %d", len(d.Analyzer))
	}
	for _, e := range d.Edges {
		if e[0] < 0 || e[0] >= len(d.WCETNs) || e[1] < 0 || e[1] >= len(d.WCETNs) {
			return fmt.Errorf("durable: encode: dag edge %v out of range", e)
		}
	}
	return nil
}

// DecodeRecord parses one WAL payload. Framing already guarantees the
// bytes arrived intact (CRC32C), so any structural error here means the
// writer and reader disagree — it is returned, never guessed around. An
// unrecognized kind byte returns *UnknownKindError so callers can tell
// "newer writer" apart from corruption.
func DecodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) < 10 {
		return r, fmt.Errorf("durable: record too short (%d bytes)", len(p))
	}
	r.Kind = Kind(p[0])
	r.Origin = Origin(p[1])
	if r.Kind != KindPlace && r.Kind != KindRemove && r.Kind != KindPlaceDAG {
		return r, &UnknownKindError{Kind: p[0]}
	}
	if r.Origin > OriginRelease {
		return r, fmt.Errorf("durable: bad record origin %d", p[1])
	}
	r.Node = int(binary.LittleEndian.Uint32(p[2:6]))
	idLen := int(binary.LittleEndian.Uint16(p[6:8]))
	if len(p) < 8+idLen+2 {
		return r, fmt.Errorf("durable: record truncated inside id")
	}
	r.ID = string(p[8 : 8+idLen])
	if r.ID == "" {
		return r, fmt.Errorf("durable: empty record id")
	}
	off := 8 + idLen
	ntasks := int(binary.LittleEndian.Uint16(p[off : off+2]))
	off += 2
	if len(p) < off+16*ntasks {
		return r, fmt.Errorf("durable: record truncated inside tasks")
	}
	if ntasks > 0 {
		r.Tasks = make(plan.TaskSet, ntasks)
		for i := range r.Tasks {
			r.Tasks[i].PeriodNs = int64(binary.LittleEndian.Uint64(p[off:]))
			r.Tasks[i].SliceNs = int64(binary.LittleEndian.Uint64(p[off+8:]))
			off += 16
		}
	}
	if r.Kind == KindPlaceDAG {
		d, n, err := decodeDAGMeta(p[off:])
		if err != nil {
			return r, err
		}
		r.DAG = d
		off += n
	}
	if len(p) != off {
		return r, fmt.Errorf("durable: record length %d != %d", len(p), off)
	}
	if (r.Kind == KindPlace || r.Kind == KindPlaceDAG) && len(r.Tasks) == 0 {
		return r, fmt.Errorf("durable: place record %q with no tasks", r.ID)
	}
	return r, nil
}

// decodeDAGMeta parses the DAG section of a KindPlaceDAG payload and
// returns the bytes consumed.
func decodeDAGMeta(p []byte) (*DAGMeta, int, error) {
	if len(p) < 2+24+2 {
		return nil, 0, fmt.Errorf("durable: record truncated inside dag header")
	}
	d := &DAGMeta{
		Cores:      int(binary.LittleEndian.Uint16(p[0:2])),
		PeriodNs:   int64(binary.LittleEndian.Uint64(p[2:10])),
		DeadlineNs: int64(binary.LittleEndian.Uint64(p[10:18])),
		BoundNs:    int64(binary.LittleEndian.Uint64(p[18:26])),
	}
	alen := int(binary.LittleEndian.Uint16(p[26:28]))
	off := 28
	if len(p) < off+alen+2 {
		return nil, 0, fmt.Errorf("durable: record truncated inside dag analyzer")
	}
	d.Analyzer = string(p[off : off+alen])
	off += alen
	nnodes := int(binary.LittleEndian.Uint16(p[off : off+2]))
	off += 2
	if nnodes == 0 {
		return nil, 0, fmt.Errorf("durable: dag record with no nodes")
	}
	if len(p) < off+8*nnodes+4 {
		return nil, 0, fmt.Errorf("durable: record truncated inside dag wcets")
	}
	d.WCETNs = make([]int64, nnodes)
	for i := range d.WCETNs {
		d.WCETNs[i] = int64(binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	nedges := int(binary.LittleEndian.Uint32(p[off : off+4]))
	off += 4
	if len(p) < off+4*nedges {
		return nil, 0, fmt.Errorf("durable: record truncated inside dag edges")
	}
	if nedges > 0 {
		d.Edges = make([][2]int, nedges)
		for i := range d.Edges {
			from := int(binary.LittleEndian.Uint16(p[off : off+2]))
			to := int(binary.LittleEndian.Uint16(p[off+2 : off+4]))
			if from >= nnodes || to >= nnodes {
				return nil, 0, fmt.Errorf("durable: dag edge [%d %d] out of range", from, to)
			}
			d.Edges[i] = [2]int{from, to}
			off += 4
		}
	}
	return d, off, nil
}
