package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hrtsched/internal/plan"
	"hrtsched/internal/wal"
)

// Snapshot files live next to the WAL segments as snap-<LSN-hex>.snap:
// [magic "hrtsnap1"][u32 payload len][u32 crc32c][JSON payload], written
// to a temp name, fsynced, then renamed — a torn snapshot is never
// visible under its final name, and a corrupt one fails its CRC and falls
// back to the previous snapshot.

const (
	snapMagic   = "hrtsnap1"
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
	snapVersion = 1
	// snapKeep is how many snapshots survive a new one; the newest can be
	// CRC-damaged by a dying disk, so one fallback stays around.
	snapKeep = 2
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// snapshotPayload is the JSON body of a snapshot file. Term is the
// replication term of the last covered entry; it is only written in
// replicated mode (omitempty), so single-replica snapshots stay
// byte-identical to their pre-replication format.
type snapshotPayload struct {
	Version int       `json:"version"`
	LSN     uint64    `json:"lsn"`
	Term    uint64    `json:"term,omitempty"`
	Spec    plan.Spec `json:"spec"`
	State   *State    `json:"state"`
}

func snapName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	lsn, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// writeSnapshot persists state as the snapshot covering every record up
// to and including lsn (term 0 outside replicated mode).
func writeSnapshot(fs wal.FS, dir string, lsn, term uint64, spec plan.Spec, state *State) error {
	body, err := json.Marshal(snapshotPayload{
		Version: snapVersion, LSN: lsn, Term: term, Spec: spec, State: state,
	})
	if err != nil {
		return fmt.Errorf("durable: marshal snapshot: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(body, snapCRC))

	final := filepath.Join(dir, snapName(lsn))
	tmp := final + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create snapshot: %w", err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: publish snapshot: %w", err)
	}
	return nil
}

// loadLatestSnapshot returns the newest snapshot that validates, counting
// the ones that did not. A dir with no usable snapshot returns a nil
// state with lsn 0: replay starts from the beginning of the log.
func loadLatestSnapshot(fs wal.FS, dir string, spec plan.Spec) (
	state *State, lsn, term uint64, specChanged bool, bad int, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, false, 0, fmt.Errorf("durable: list %s: %w", dir, err)
	}
	type cand struct {
		lsn  uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		if l, ok := parseSnapName(name); ok {
			cands = append(cands, cand{l, name})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })

	for _, cd := range cands {
		payload, lerr := readSnapshot(fs, filepath.Join(dir, cd.name))
		if lerr != nil || payload.LSN != cd.lsn {
			bad++
			continue
		}
		return payload.State, payload.LSN, payload.Term, payload.Spec != spec, bad, nil
	}
	return nil, 0, 0, false, bad, nil
}

func readSnapshot(fs wal.FS, path string) (*snapshotPayload, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(data) < 16 || string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("durable: bad snapshot header")
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	crc := binary.LittleEndian.Uint32(data[12:16])
	if int64(len(data)) != 16+int64(n) {
		return nil, fmt.Errorf("durable: snapshot length mismatch")
	}
	body := data[16:]
	if crc32.Checksum(body, snapCRC) != crc {
		return nil, fmt.Errorf("durable: snapshot crc mismatch")
	}
	var payload snapshotPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		return nil, fmt.Errorf("durable: snapshot decode: %w", err)
	}
	if payload.Version != snapVersion || payload.State == nil {
		return nil, fmt.Errorf("durable: snapshot version %d", payload.Version)
	}
	if payload.State.Placements == nil {
		payload.State.Placements = map[string]int{}
	}
	return &payload, nil
}

// pruneSnapshots removes all but the newest snapKeep snapshot files.
func pruneSnapshots(fs wal.FS, dir string) error {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	var lsns []uint64
	byLSN := map[uint64]string{}
	for _, name := range names {
		if l, ok := parseSnapName(name); ok {
			lsns = append(lsns, l)
			byLSN[l] = name
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, l := range lsns[min(len(lsns), snapKeep):] {
		if err := fs.Remove(filepath.Join(dir, byLSN[l])); err != nil {
			return err
		}
	}
	return nil
}
