package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeString(t *testing.T, f interface{ Write([]byte) (int, error) }, s string) {
	t.Helper()
	if n, err := f.Write([]byte(s)); err != nil || n != len(s) {
		t.Fatalf("write %q = %d, %v", s, n, err)
	}
}

func TestCrashDiscardsUnsyncedBytes(t *testing.T) {
	fs := NewFaultyFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeString(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	writeString(t, f, " world")
	if err := fs.Crash(CrashOptions{}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// The dead process sees only ErrCrashed; Close still works so deferred
	// cleanups don't cascade.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if _, err := fs.Open(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "hello" {
		t.Fatalf("surviving bytes = %q, want synced prefix only", got)
	}
	fs.Restart()
	if f2, err := fs.Open(path); err != nil {
		t.Fatalf("open after restart: %v", err)
	} else {
		f2.Close()
	}
}

func TestCrashKeepsAndCorruptsTornTail(t *testing.T) {
	fs := NewFaultyFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, _ := fs.Create(path)
	writeString(t, f, "abc")
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	writeString(t, f, "defgh")
	if err := fs.Crash(CrashOptions{KeepUnsynced: 2, CorruptKept: true}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	want := "abcd" + string([]byte{'e' ^ 0x40})
	if string(got) != want {
		t.Fatalf("torn tail = %q, want %q", got, want)
	}
}

func TestShortWritePersistsHalf(t *testing.T) {
	fs := NewFaultyFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, _ := fs.Create(path)
	fs.ShortWriteAt(1)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("short write = %d, %v", n, err)
	}
	if got, _ := os.ReadFile(path); string(got) != "abc" {
		t.Fatalf("on-disk = %q, want first half", got)
	}
	// Nothing was synced, so a crash wipes even the half that landed.
	if err := fs.Crash(CrashOptions{}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	f.Close()
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Fatalf("unsynced half survived: %q", got)
	}
}

func TestInjectedFailuresCountOperations(t *testing.T) {
	fs := NewFaultyFS(nil)
	f, _ := fs.Create(filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	fs.FailSyncAt(2)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 2: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 (one-shot fault persisted): %v", err)
	}
	if fs.Syncs() != 3 {
		t.Fatalf("sync count = %d", fs.Syncs())
	}
	fs.FailWriteAt(2)
	writeString(t, f, "a")
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("write 2: %v", err)
	}
	writeString(t, f, "c")
}

func TestPreexistingFileCountsDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("durable"), 0o644); err != nil {
		t.Fatalf("seed file: %v", err)
	}
	fs := NewFaultyFS(nil)
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeString(t, f, "!!!") // overwrites the front, never synced
	if err := fs.Crash(CrashOptions{}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	f.Close()
	// The overwrite extended nothing past the durable watermark, so the
	// whole original extent survives (content-wise the overwrite may stick:
	// the injector models extent durability, not page contents).
	if got, _ := os.ReadFile(path); len(got) != len("durable") {
		t.Fatalf("pre-existing extent = %q", got)
	}
}

func TestRenameCarriesWatermarks(t *testing.T) {
	fs := NewFaultyFS(nil)
	dir := t.TempDir()
	tmp, final := filepath.Join(dir, "t.tmp"), filepath.Join(dir, "t")
	f, _ := fs.Create(tmp)
	writeString(t, f, "snapshot")
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.Crash(CrashOptions{}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if got, _ := os.ReadFile(final); string(got) != "snapshot" {
		t.Fatalf("renamed file after crash = %q", got)
	}
}

func TestRemoveForgetsTracking(t *testing.T) {
	fs := NewFaultyFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, _ := fs.Create(path)
	writeString(t, f, "x")
	f.Close()
	if err := fs.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// Crash must not try to rewind the deleted file.
	if err := fs.Crash(CrashOptions{}); err != nil {
		t.Fatalf("Crash after remove: %v", err)
	}
}
