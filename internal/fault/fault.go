// Package fault is a library of composable, seed-deterministic fault
// injectors driven by the simulation engine. Each injector models one
// hostile phenomenon the scheduler must survive — bursty SMI storms, timer
// miscalibration, lost firings, device-interrupt storms, cycle-counter
// re-skew, allocator pressure — and derives all of its randomness from a
// splittable stream, so equal seeds produce bit-identical fault schedules.
// Scenarios (scenario.go) compose injectors with workloads into named,
// replayable chaos runs.
package fault

import (
	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// Env is the injection target: the machine whose hardware is perturbed, the
// kernel running on it, and the randomness stream all injector decisions
// must derive from.
type Env struct {
	M   *machine.Machine
	K   *core.Kernel
	Rng *sim.Rand
}

// Injector is one composable fault process. Start arms it; it then drives
// itself from engine events until the simulation ends.
type Injector interface {
	Name() string
	Start(env *Env)
}

// expAfter returns an exponentially distributed delay with the given mean,
// floored at one cycle.
func expAfter(rng *sim.Rand, mean float64) sim.Duration {
	d := sim.Duration(mean * rng.ExpFloat64())
	if d < 1 {
		d = 1
	}
	return d
}

// SMIStorm injects system management interrupts from a Markov-modulated
// arrival process: the firmware alternates between a calm state and a storm
// state with exponentially distributed dwell times, and within each state
// SMIs arrive with that state's exponential inter-arrival gap. This models
// the bursty reality (a thermal event triggering a flurry of SMM entries)
// that a plain Poisson model smooths away.
type SMIStorm struct {
	MeanCalmCycles  float64 // mean dwell in the calm state
	MeanStormCycles float64 // mean dwell in the storm state
	CalmGapCycles   float64 // mean SMI inter-arrival while calm; 0 = none
	StormGapCycles  float64 // mean SMI inter-arrival while storming
	DurationCycles  int64   // SMI duration
	DurationJitter  int64   // uniform +/- jitter on the duration
}

// Name implements Injector.
func (f *SMIStorm) Name() string { return "smi-storm" }

// Start implements Injector.
func (f *SMIStorm) Start(env *Env) {
	rng := env.Rng.Split()
	eng := env.M.Eng
	storm := false
	epoch := 0

	var arm func(e int)
	arm = func(e int) {
		gap := f.CalmGapCycles
		if storm {
			gap = f.StormGapCycles
		}
		if gap <= 0 {
			return // no arrivals in this state; the next flip re-arms
		}
		eng.After(expAfter(rng, gap), sim.Hard, func(now sim.Time) {
			if e != epoch {
				return // the state flipped; a fresh arrival chain owns it
			}
			d := f.DurationCycles
			if j := f.DurationJitter; j > 0 {
				d += rng.Range(-j, j)
			}
			if d > 0 {
				env.M.SMI.InjectNow(sim.Duration(d))
			}
			arm(e)
		})
	}
	var flip func()
	flip = func() {
		mean := f.MeanCalmCycles
		if storm {
			mean = f.MeanStormCycles
		}
		eng.After(expAfter(rng, mean), sim.Hard, func(now sim.Time) {
			storm = !storm
			epoch++
			arm(epoch)
			flip()
		})
	}
	arm(epoch)
	flip()
}

// TimerDrift miscalibrates the APIC one-shot timer beyond the conservative
// rounding the scheduler plans for: each programmed countdown is scaled by
// a uniform factor in [1-EarlyFrac, 1+LateFrac], occasionally delayed by a
// fixed extra latency, and occasionally lost outright (the firing never
// delivers — the worst case for a timer-driven scheduler).
type TimerDrift struct {
	CPUs        []int   // nil = every CPU
	EarlyFrac   float64 // max fractional early firing (0.1 = up to 10% early)
	LateFrac    float64 // max fractional late firing
	LoseProb    float64 // probability a firing is swallowed
	DelayProb   float64 // probability of an added fixed delay
	DelayCycles int64   // the added delay
}

// Name implements Injector.
func (f *TimerDrift) Name() string { return "timer-drift" }

// Start implements Injector.
func (f *TimerDrift) Start(env *Env) {
	cpus := f.CPUs
	if cpus == nil {
		for i := 0; i < env.M.NumCPUs(); i++ {
			cpus = append(cpus, i)
		}
	}
	for _, id := range cpus {
		rng := env.Rng.Split()
		env.M.CPU(id).SetTimerFault(func(d int64) (int64, bool) {
			if f.LoseProb > 0 && rng.Float64() < f.LoseProb {
				return 0, false
			}
			if f.EarlyFrac > 0 || f.LateFrac > 0 {
				scale := 1 - f.EarlyFrac + (f.EarlyFrac+f.LateFrac)*rng.Float64()
				d = int64(float64(d) * scale)
			}
			if f.DelayProb > 0 && rng.Float64() < f.DelayProb {
				d += f.DelayCycles
			}
			if d < 1 {
				d = 1
			}
			return d, true
		})
	}
}

// IRQStorm registers a device source and fires Markov-modulated interrupt
// bursts at the CPUs it is steered to — the "interrupt-laden partition
// under attack" case of Section 3.5.
type IRQStorm struct {
	Targets         []int // CPUs to steer bursts at, round-robin; nil = laden default
	HandlerCycles   int64 // advertised bounded handler cost
	MeanCalmCycles  float64
	MeanBurstCycles float64
	BurstGapCycles  float64 // inter-interrupt gap within a burst

	dev *machine.DeviceSource
}

// Name implements Injector.
func (f *IRQStorm) Name() string { return "irq-storm" }

// Device returns the registered source (valid after Start), for tests that
// need ground truth on delivered interrupt counts.
func (f *IRQStorm) Device() *machine.DeviceSource { return f.dev }

// Start implements Injector.
func (f *IRQStorm) Start(env *Env) {
	rng := env.Rng.Split()
	eng := env.M.Eng
	handler := f.HandlerCycles
	if handler <= 0 {
		handler = 2000
	}
	f.dev = env.M.IRQ.AddDevice("storm-nic", 0, handler) // manual-fire only
	target := 0
	bursting := false
	epoch := 0

	raise := func() {
		if len(f.Targets) > 0 {
			env.M.IRQ.Steer(f.dev, f.Targets[target%len(f.Targets)])
			target++
		}
		f.dev.Raise()
	}
	var arm func(e int)
	arm = func(e int) {
		if !bursting {
			return
		}
		gap := f.BurstGapCycles
		if gap <= 0 {
			gap = 50_000
		}
		eng.After(expAfter(rng, gap), sim.Hard, func(now sim.Time) {
			if e != epoch {
				return
			}
			raise()
			arm(e)
		})
	}
	var flip func()
	flip = func() {
		mean := f.MeanCalmCycles
		if bursting {
			mean = f.MeanBurstCycles
		}
		eng.After(expAfter(rng, mean), sim.Hard, func(now sim.Time) {
			bursting = !bursting
			epoch++
			arm(epoch)
			flip()
		})
	}
	flip()
}

// TSCReskew models a calibration regression at runtime: firmware or a deep
// sleep state rewrites a core's cycle counter after boot-time calibration
// already ran, skewing it against the software offset. Positive skews make
// a CPU's clock jump ahead; negative skews make it run visibly backwards —
// which the InvariantChecker's tsc-monotone check is designed to catch.
type TSCReskew struct {
	CPUs          []int   // candidate CPUs; nil = all but CPU 0
	MeanGapCycles float64 // mean time between re-skew events
	MaxSkewCycles int64   // skew magnitude drawn uniformly from [-max, max]
	PositiveOnly  bool    // restrict to forward skews (no monotonicity break)
}

// Name implements Injector.
func (f *TSCReskew) Name() string { return "tsc-reskew" }

// Start implements Injector.
func (f *TSCReskew) Start(env *Env) {
	rng := env.Rng.Split()
	eng := env.M.Eng
	cpus := f.CPUs
	if cpus == nil {
		for i := 1; i < env.M.NumCPUs(); i++ {
			cpus = append(cpus, i)
		}
	}
	if len(cpus) == 0 || f.MaxSkewCycles <= 0 {
		return
	}
	var tick func()
	tick = func() {
		eng.After(expAfter(rng, f.MeanGapCycles), sim.Hard, func(now sim.Time) {
			id := cpus[rng.Intn(len(cpus))]
			var delta int64
			if f.PositiveOnly {
				delta = rng.Range(1, f.MaxSkewCycles)
			} else {
				delta = rng.Range(-f.MaxSkewCycles, f.MaxSkewCycles)
			}
			env.M.CPU(id).SkewTSC(delta)
			tick()
		})
	}
	tick()
}

// StackPressure churns the thread stack pool: bursts of short-lived thread
// spawns exercise reap/reanimate under load, and periodic pool drains force
// the allocator slow path — the robustness case for the Section 3.4 pool.
type StackPressure struct {
	MeanGapCycles float64 // mean gap between churn bursts
	Burst         int     // threads spawned per burst
	LifeCycles    int64   // compute each churn thread performs before exit
	DrainEvery    int     // drain the pool every N bursts; 0 = never
}

// Name implements Injector.
func (f *StackPressure) Name() string { return "stack-pressure" }

// Start implements Injector.
func (f *StackPressure) Start(env *Env) {
	rng := env.Rng.Split()
	eng := env.M.Eng
	burst := f.Burst
	if burst < 1 {
		burst = 4
	}
	life := f.LifeCycles
	if life < 1 {
		life = 10_000
	}
	n := 0
	var tick func()
	tick = func() {
		eng.After(expAfter(rng, f.MeanGapCycles), sim.Hard, func(now sim.Time) {
			n++
			for i := 0; i < burst; i++ {
				cpu := rng.Intn(env.M.NumCPUs())
				env.K.Spawn("churn", cpu, core.Seq(
					core.Compute{Cycles: life},
					core.Exit{},
				))
			}
			if f.DrainEvery > 0 && n%f.DrainEvery == 0 {
				env.K.DrainPool()
			}
			tick()
		})
	}
	tick()
}
