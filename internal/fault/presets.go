package fault

import (
	"sort"

	"hrtsched/internal/machine"
)

// Presets maps a fault-mix name to a constructor that builds the injector
// set for a platform. These are the same parameterizations the chaos
// scenarios use, exported so other subsystems (the what-if simulation
// service in particular) can compose them with arbitrary workloads instead
// of the fixed chaos workloads above.
//
// Injector construction is pure; all randomness is drawn at Start from the
// environment's derived stream, so a preset contributes nothing to the
// seed-determinism contract beyond its fixed parameters.
var Presets = map[string]func(spec machine.Spec) []Injector{
	// smi-storm: Markov-modulated SMI bursts — calm stretches broken by
	// storms in which firmware steals ~150 us every ~800 us.
	"smi-storm": func(spec machine.Spec) []Injector {
		return []Injector{&SMIStorm{
			MeanCalmCycles:  nsToCycles(spec, 40_000_000),
			MeanStormCycles: nsToCycles(spec, 10_000_000),
			CalmGapCycles:   0,
			StormGapCycles:  nsToCycles(spec, 800_000),
			DurationCycles:  int64(nsToCycles(spec, 150_000)),
			DurationJitter:  int64(nsToCycles(spec, 30_000)),
		}}
	},
	// smi-drain: near-permanent storm stealing ~15% of every period; the
	// overload driver used by the degradation scenarios.
	"smi-drain": func(spec machine.Spec) []Injector {
		return []Injector{&SMIStorm{
			MeanCalmCycles:  nsToCycles(spec, 100_000),
			MeanStormCycles: nsToCycles(spec, 100_000_000),
			CalmGapCycles:   0,
			StormGapCycles:  nsToCycles(spec, 1_000_000),
			DurationCycles:  int64(nsToCycles(spec, 150_000)),
		}}
	},
	// irq-storm: device-interrupt bursts against CPU 0.
	"irq-storm": func(spec machine.Spec) []Injector {
		return []Injector{&IRQStorm{
			Targets:         []int{0},
			HandlerCycles:   int64(nsToCycles(spec, 40_000)),
			MeanCalmCycles:  nsToCycles(spec, 25_000_000),
			MeanBurstCycles: nsToCycles(spec, 8_000_000),
			BurstGapCycles:  nsToCycles(spec, 80_000),
		}}
	},
	// timer-drift: APIC miscalibration with delayed and lost one-shot
	// firings plus forward-only TSC re-skew.
	"timer-drift": func(spec machine.Spec) []Injector {
		return []Injector{
			&TimerDrift{
				EarlyFrac:   0.05,
				LateFrac:    0.20,
				LoseProb:    0.01,
				DelayProb:   0.10,
				DelayCycles: int64(nsToCycles(spec, 200_000)),
			},
			&TSCReskew{
				MeanGapCycles: nsToCycles(spec, 50_000_000),
				MaxSkewCycles: int64(nsToCycles(spec, 100_000)),
				PositiveOnly:  true,
			},
		}
	},
}

// PresetNames returns the registered fault-mix names in stable order.
func PresetNames() []string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
