package fault

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"hrtsched/internal/wal"
)

// ErrCrashed is returned by every operation on a FaultyFS after Crash:
// the process is "dead" and must reopen the directory through a fresh
// view (Restart) to continue, exactly like a real reboot.
var ErrCrashed = errors.New("fault: filesystem crashed")

// ErrInjectedSync and ErrInjectedWrite mark deterministic I/O failures
// armed with FailSyncAt / FailWriteAt / ShortWriteAt.
var (
	ErrInjectedSync  = errors.New("fault: injected fsync failure")
	ErrInjectedWrite = errors.New("fault: injected write failure")
)

// CrashOptions shapes what survives a simulated power loss.
type CrashOptions struct {
	// KeepUnsynced keeps up to this many bytes written after the last
	// Sync of each file — a torn tail. Zero models a strict disk that
	// loses everything unsynced.
	KeepUnsynced int64
	// CorruptKept flips a bit in the last kept unsynced byte, modeling a
	// sector that was half-written when power dropped.
	CorruptKept bool
}

// FaultyFS wraps a wal.FS and injects storage faults: deterministic
// fsync/write failures by operation index, short writes, and whole-process
// crashes that rewind every file to its last-synced watermark (plus an
// optional torn tail). It tracks, per path, how many bytes a real disk
// would have promised durable — only bytes covered by a successful Sync
// survive Crash.
type FaultyFS struct {
	inner wal.FS

	mu           sync.Mutex
	crashed      bool
	syncs        int64
	writes       int64
	failSyncAt   int64 // 1-based Sync index to fail; 0 = never
	failWriteAt  int64 // 1-based Write index to fail; 0 = never
	shortWriteAt int64 // 1-based Write index to cut in half; 0 = never
	files        map[string]*trackedFile
}

// trackedFile is shared by every handle on one path.
type trackedFile struct {
	size   int64 // logical extent written through this wrapper
	synced int64 // extent covered by the last successful Sync
}

// NewFaultyFS wraps inner (wal.OSFS when nil).
func NewFaultyFS(inner wal.FS) *FaultyFS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &FaultyFS{inner: inner, files: map[string]*trackedFile{}}
}

// FailSyncAt arms the nth future Sync (1-based, counted across all files)
// to fail with ErrInjectedSync without persisting anything.
func (fs *FaultyFS) FailSyncAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failSyncAt = fs.syncs + n
}

// FailWriteAt arms the nth future Write to fail with ErrInjectedWrite
// before writing any bytes.
func (fs *FaultyFS) FailWriteAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failWriteAt = fs.writes + n
}

// ShortWriteAt arms the nth future Write to persist only the first half
// of its buffer and then fail — a torn frame on disk.
func (fs *FaultyFS) ShortWriteAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.shortWriteAt = fs.writes + n
}

// Syncs returns how many Sync calls have been attempted.
func (fs *FaultyFS) Syncs() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// Crash simulates power loss: every tracked file is rewound to its
// last-synced watermark (plus an optional torn tail per opts), and all
// further operations through this view return ErrCrashed until Restart.
func (fs *FaultyFS) Crash(opts CrashOptions) error {
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return nil
	}
	fs.crashed = true
	type cut struct {
		path    string
		keep    int64
		corrupt bool
	}
	var cuts []cut
	for path, tf := range fs.files {
		keep := tf.synced
		unsynced := tf.size - tf.synced
		if unsynced < 0 {
			unsynced = 0
		}
		extra := opts.KeepUnsynced
		if extra > unsynced {
			extra = unsynced
		}
		keep += extra
		cuts = append(cuts, cut{path, keep, opts.CorruptKept && extra > 0})
	}
	fs.mu.Unlock()

	for _, c := range cuts {
		if err := fs.rewind(c.path, c.keep, c.corrupt); err != nil {
			return err
		}
	}
	return nil
}

// rewind truncates path's real file to keep bytes and, when corrupt is
// set, flips a bit in its final byte.
func (fs *FaultyFS) rewind(path string, keep int64, corrupt bool) error {
	f, err := fs.inner.Open(path)
	if err != nil {
		return fmt.Errorf("fault: crash rewind %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Truncate(keep); err != nil {
		return fmt.Errorf("fault: crash truncate %s: %w", path, err)
	}
	if corrupt && keep > 0 {
		var b [1]byte
		if _, err := f.Seek(keep-1, io.SeekStart); err != nil {
			return err
		}
		if _, err := io.ReadFull(f, b[:]); err != nil {
			return err
		}
		b[0] ^= 0x40
		if _, err := f.Seek(keep-1, io.SeekStart); err != nil {
			return err
		}
		if _, err := f.Write(b[:]); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Restart clears the crashed latch and forgets per-file tracking, as if
// the machine rebooted and remounted the disk. Armed fault counters are
// cleared too.
func (fs *FaultyFS) Restart() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
	fs.failSyncAt, fs.failWriteAt, fs.shortWriteAt = 0, 0, 0
	fs.files = map[string]*trackedFile{}
}

func (fs *FaultyFS) check() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements wal.FS.
func (fs *FaultyFS) MkdirAll(dir string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.inner.MkdirAll(dir)
}

// ReadDir implements wal.FS.
func (fs *FaultyFS) ReadDir(dir string) ([]string, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	return fs.inner.ReadDir(dir)
}

// Create implements wal.FS.
func (fs *FaultyFS) Create(name string) (wal.File, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	tf := &trackedFile{}
	fs.files[name] = tf
	fs.mu.Unlock()
	return &faultFile{fs: fs, inner: f, tf: tf, path: name}, nil
}

// Open implements wal.FS.
func (fs *FaultyFS) Open(name string) (wal.File, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	tf, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		// First sighting of a pre-existing file: everything already on
		// disk counts as durable.
		size, serr := f.Seek(0, io.SeekEnd)
		if serr != nil {
			f.Close()
			return nil, serr
		}
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			f.Close()
			return nil, serr
		}
		tf = &trackedFile{size: size, synced: size}
		fs.mu.Lock()
		fs.files[name] = tf
		fs.mu.Unlock()
	}
	return &faultFile{fs: fs, inner: f, tf: tf, path: name}, nil
}

// Rename implements wal.FS. The rename itself is treated as durable (the
// WAL renames only after syncing the temp file, matching its use).
func (fs *FaultyFS) Rename(oldname, newname string) error {
	if err := fs.check(); err != nil {
		return err
	}
	if err := fs.inner.Rename(oldname, newname); err != nil {
		return err
	}
	fs.mu.Lock()
	if tf, ok := fs.files[oldname]; ok {
		delete(fs.files, oldname)
		fs.files[newname] = tf
	}
	fs.mu.Unlock()
	return nil
}

// Remove implements wal.FS.
func (fs *FaultyFS) Remove(name string) error {
	if err := fs.check(); err != nil {
		return err
	}
	if err := fs.inner.Remove(name); err != nil {
		return err
	}
	fs.mu.Lock()
	delete(fs.files, name)
	fs.mu.Unlock()
	return nil
}

// faultFile is one handle; cursor state is per-handle, durability
// watermarks are shared per-path through tf.
type faultFile struct {
	fs    *FaultyFS
	inner wal.File
	tf    *trackedFile
	path  string
	pos   int64
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	n, err := f.inner.Read(p)
	f.pos += int64(n)
	return n, err
}

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	fs.writes++
	failNow := fs.failWriteAt != 0 && fs.writes == fs.failWriteAt
	shortNow := fs.shortWriteAt != 0 && fs.writes == fs.shortWriteAt
	fs.mu.Unlock()

	if failNow {
		return 0, ErrInjectedWrite
	}
	if shortNow {
		half := p[:len(p)/2]
		n, err := f.inner.Write(half)
		f.advance(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjectedWrite
	}
	n, err := f.inner.Write(p)
	f.advance(n)
	return n, err
}

func (f *faultFile) advance(n int) {
	f.pos += int64(n)
	fs := f.fs
	fs.mu.Lock()
	if f.pos > f.tf.size {
		f.tf.size = f.pos
	}
	fs.mu.Unlock()
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	pos, err := f.inner.Seek(offset, whence)
	if err == nil {
		f.pos = pos
	}
	return pos, err
}

func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return ErrCrashed
	}
	fs.syncs++
	failNow := fs.failSyncAt != 0 && fs.syncs == fs.failSyncAt
	fs.mu.Unlock()
	if failNow {
		return ErrInjectedSync
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	fs.mu.Lock()
	f.tf.synced = f.tf.size
	fs.mu.Unlock()
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.check(); err != nil {
		return err
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	fs := f.fs
	fs.mu.Lock()
	if size < f.tf.size {
		f.tf.size = size
	}
	if size < f.tf.synced {
		f.tf.synced = size
	}
	fs.mu.Unlock()
	return nil
}

func (f *faultFile) Close() error {
	// Close is allowed after crash so deferred cleanups don't cascade.
	return f.inner.Close()
}
