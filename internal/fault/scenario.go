package fault

import (
	"fmt"
	"sort"
	"strings"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// Scenario composes a workload with a set of fault injectors into a named,
// seed-deterministic chaos run. Everything a scenario does derives from the
// run seed, so a scenario replays bit-identically: same seed, same fault
// schedule, same misses, same violations, same report bytes.
type Scenario struct {
	Name string
	Desc string
	CPUs int
	// DurationNs is the simulated run length.
	DurationNs int64
	// BucketNs is the miss-curve bucket width; 0 derives ~50 buckets.
	BucketNs int64
	// Configure mutates the boot config (degradation policy, admission).
	Configure func(cfg *core.Config)
	// Workload spawns the threads under test and returns the ones whose
	// miss behaviour the report tracks.
	Workload func(k *core.Kernel) []*core.Thread
	// Injectors builds the fault processes, sized against the platform spec.
	Injectors func(spec machine.Spec) []Injector
}

// Options selects and parameterizes a run.
type Options struct {
	Scenario string
	Seed     uint64
	// UntilEvent, when nonzero, stops the run once the engine has handled
	// this many events — the replay knob printed in repro lines.
	UntilEvent uint64
	// Lazy switches the scheduler to lazy EDF, for ablation comparisons.
	Lazy bool
}

// Result carries everything a run observed. Report is the deterministic
// text rendering; equal seeds produce byte-identical reports.
type Result struct {
	Scenario string
	Seed     uint64
	Kernel   *core.Kernel
	Checker  *core.InvariantChecker
	Watched  []*core.Thread

	// MissCurve counts deadline misses per BucketNs-wide wall-clock bucket:
	// the miss-rate degradation (and recovery) curve.
	MissCurve []int64
	BucketNs  int64

	// Degradation trace.
	Sheds       []core.DegradeEvent
	LastShedNs  int64
	ReadmitNs   []int64
	LastMissNs  map[int]int64 // thread id -> wall ns of its last miss
	TotalMisses int64

	Report string
}

// nsToCycles converts against the platform frequency.
func nsToCycles(spec machine.Spec, ns int64) float64 {
	return float64(sim.NanosToCycles(ns, spec.FreqHz))
}

// periodicSpin admits the thread with cons and then spins in chunks.
func periodicSpin(cons core.Constraints, chunk int64) core.Program {
	admitted := false
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if !admitted {
			admitted = true
			return core.ChangeConstraints{C: cons}
		}
		return core.Compute{Cycles: chunk}
	})
}

// Scenarios is the registry of named chaos scenarios.
var Scenarios = map[string]*Scenario{
	"smi-storm": {
		Name:       "smi-storm",
		Desc:       "Markov-modulated SMI bursts against a 60%-utilized periodic set",
		CPUs:       2,
		DurationNs: 400_000_000,
		Workload: func(k *core.Kernel) []*core.Thread {
			var watched []*core.Thread
			for cpu := 0; cpu < k.NumCPUs(); cpu++ {
				t := k.Spawn(fmt.Sprintf("rt%d", cpu), cpu,
					periodicSpin(core.PeriodicConstraints(0, 1_000_000, 600_000), 20_000))
				watched = append(watched, t)
			}
			return watched
		},
		Injectors: func(spec machine.Spec) []Injector {
			return []Injector{
				&SMIStorm{
					MeanCalmCycles:  nsToCycles(spec, 40_000_000),
					MeanStormCycles: nsToCycles(spec, 10_000_000),
					CalmGapCycles:   0,
					StormGapCycles:  nsToCycles(spec, 800_000),
					DurationCycles:  int64(nsToCycles(spec, 150_000)),
					DurationJitter:  int64(nsToCycles(spec, 30_000)),
				},
				// Allocator churn rides along: short-lived spawns and pool
				// drains must not disturb the periodic set.
				&StackPressure{
					MeanGapCycles: nsToCycles(spec, 5_000_000),
					Burst:         4,
					LifeCycles:    int64(nsToCycles(spec, 30_000)),
					DrainEvery:    8,
				},
			}
		},
	},
	"irq-storm": {
		Name:       "irq-storm",
		Desc:       "device-interrupt bursts against the laden partition, priority filtering off",
		CPUs:       2,
		DurationNs: 400_000_000,
		Configure: func(cfg *core.Config) {
			// With filtering on, the APIC holds device vectors while the RT
			// thread runs and the victim shrugs the storm off — that is the
			// paper's protection working. The robustness gap this scenario
			// probes is the unfiltered case, with the interrupt-free CPU as
			// the control.
			cfg.PriorityFiltering = false
		},
		Workload: func(k *core.Kernel) []*core.Thread {
			// CPU 0 is interrupt-laden and carries a periodic victim; CPU 1
			// is interrupt-free and carries the control thread.
			victim := k.Spawn("rt-laden", 0,
				periodicSpin(core.PeriodicConstraints(0, 1_000_000, 500_000), 20_000))
			control := k.Spawn("rt-free", 1,
				periodicSpin(core.PeriodicConstraints(0, 1_000_000, 500_000), 20_000))
			return []*core.Thread{victim, control}
		},
		Injectors: func(spec machine.Spec) []Injector {
			return []Injector{&IRQStorm{
				Targets:         []int{0},
				HandlerCycles:   int64(nsToCycles(spec, 40_000)),
				MeanCalmCycles:  nsToCycles(spec, 25_000_000),
				MeanBurstCycles: nsToCycles(spec, 8_000_000),
				BurstGapCycles:  nsToCycles(spec, 80_000),
			}}
		},
	},
	"drift": {
		Name:       "drift",
		Desc:       "APIC timer miscalibration with delayed and lost one-shot firings",
		CPUs:       2,
		DurationNs: 400_000_000,
		Configure: func(cfg *core.Config) {
			// Without a watchdog a single lost firing bricks scheduling on
			// that CPU for the rest of the run: the running thread keeps the
			// CPU and priority filtering holds everything else pending.
			cfg.WatchdogNs = 10_000_000
		},
		Workload: func(k *core.Kernel) []*core.Thread {
			var watched []*core.Thread
			for cpu := 0; cpu < k.NumCPUs(); cpu++ {
				t := k.Spawn(fmt.Sprintf("rt%d", cpu), cpu,
					periodicSpin(core.PeriodicConstraints(0, 1_000_000, 500_000), 20_000))
				watched = append(watched, t)
			}
			return watched
		},
		Injectors: func(spec machine.Spec) []Injector {
			return []Injector{
				&TimerDrift{
					EarlyFrac:   0.05,
					LateFrac:    0.20,
					LoseProb:    0.01,
					DelayProb:   0.10,
					DelayCycles: int64(nsToCycles(spec, 200_000)),
				},
				// Forward-only TSC re-skew: a runtime calibration regression
				// that jumps a core's clock ahead without breaking the
				// monotonicity invariant.
				&TSCReskew{
					MeanGapCycles: nsToCycles(spec, 50_000_000),
					MaxSkewCycles: int64(nsToCycles(spec, 100_000)),
					PositiveOnly:  true,
				},
			}
		},
	},
	"overload-shed": {
		Name:       "overload-shed",
		Desc:       "persistent SMI drain overloads a 90% set; degradation sheds until survivors fit",
		CPUs:       1,
		DurationNs: 400_000_000,
		Configure: func(cfg *core.Config) {
			cfg.Degrade = core.DegradeConfig{
				Policy:             core.DegradeDemote,
				MissStreak:         3,
				Readmit:            true,
				ReadmitAfterNs:     50_000_000,
				ReadmitMaxAttempts: 1,
			}
		},
		Workload: func(k *core.Kernel) []*core.Thread {
			var watched []*core.Thread
			for i := 0; i < 3; i++ {
				t := k.Spawn(fmt.Sprintf("rt%d", i), 0,
					periodicSpin(core.PeriodicConstraints(int64(i)*200_000, 1_000_000, 300_000), 20_000))
				watched = append(watched, t)
			}
			return watched
		},
		Injectors: func(spec machine.Spec) []Injector {
			return []Injector{&SMIStorm{
				// Near-permanent storm: ~15% of every period disappears.
				MeanCalmCycles:  nsToCycles(spec, 100_000),
				MeanStormCycles: nsToCycles(spec, 100_000_000),
				CalmGapCycles:   0,
				StormGapCycles:  nsToCycles(spec, 1_000_000),
				DurationCycles:  int64(nsToCycles(spec, 150_000)),
			}}
		},
	},
}

// Names returns the registered scenario names in stable order.
func Names() []string {
	names := make([]string, 0, len(Scenarios))
	for n := range Scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes a scenario to completion (or UntilEvent) and renders the
// deterministic report.
func Run(opts Options) (*Result, error) {
	sc := Scenarios[opts.Scenario]
	if sc == nil {
		return nil, fmt.Errorf("fault: unknown scenario %q (have %s)",
			opts.Scenario, strings.Join(Names(), ", "))
	}
	spec := machine.PhiKNL()
	if sc.CPUs > 0 {
		spec = spec.Scaled(sc.CPUs)
	}
	m := machine.New(spec, opts.Seed)
	cfg := core.DefaultConfig(spec)
	if sc.Configure != nil {
		sc.Configure(&cfg)
	}
	if opts.Lazy {
		cfg.Mode = core.LazyEDF
	}
	k := core.Boot(m, cfg)
	chk := core.AttachInvariants(k, opts.Seed, sc.Name)

	bucket := sc.BucketNs
	if bucket <= 0 {
		bucket = sc.DurationNs / 50
	}
	res := &Result{
		Scenario:   sc.Name,
		Seed:       opts.Seed,
		Kernel:     k,
		Checker:    chk,
		BucketNs:   bucket,
		MissCurve:  make([]int64, sc.DurationNs/bucket+1),
		LastMissNs: map[int]int64{},
	}
	prevMiss := k.Hooks.Miss
	k.Hooks.Miss = func(cpu int, t *core.Thread, nowNs, missNs int64) {
		if prevMiss != nil {
			prevMiss(cpu, t, nowNs, missNs)
		}
		res.TotalMisses++
		res.LastMissNs[t.ID()] = nowNs
		if i := nowNs / bucket; i >= 0 && i < int64(len(res.MissCurve)) {
			res.MissCurve[i]++
		}
	}
	prevDeg := k.Hooks.Degrade
	k.Hooks.Degrade = func(cpu int, t *core.Thread, ev core.DegradeEvent) {
		if prevDeg != nil {
			prevDeg(cpu, t, ev)
		}
		res.Sheds = append(res.Sheds, ev)
		if ev.NowNs > res.LastShedNs {
			res.LastShedNs = ev.NowNs
		}
	}
	prevRe := k.Hooks.Readmit
	k.Hooks.Readmit = func(cpu int, t *core.Thread, nowNs int64) {
		if prevRe != nil {
			prevRe(cpu, t, nowNs)
		}
		res.ReadmitNs = append(res.ReadmitNs, nowNs)
	}

	res.Watched = sc.Workload(k)
	env := &Env{M: m, K: k, Rng: m.Rand()}
	for _, inj := range sc.Injectors(spec) {
		inj.Start(env)
	}

	if opts.UntilEvent > 0 {
		for m.Eng.Steps() < opts.UntilEvent && m.Eng.Step() {
		}
	} else {
		k.RunUntilNs(sc.DurationNs)
	}

	res.Report = res.render(opts)
	return res, nil
}

// render builds the deterministic text report: every number derives from
// simulation state, iteration orders are fixed, floats use fixed precision.
func (r *Result) render(opts Options) string {
	var b strings.Builder
	k := r.Kernel
	fmt.Fprintf(&b, "chaos scenario=%s seed=%d cpus=%d events=%d now_ns=%d lazy=%v\n",
		r.Scenario, r.Seed, k.NumCPUs(), k.Eng.Steps(), k.Clocks[0].NowNanos(), opts.Lazy)

	fmt.Fprintf(&b, "threads:\n")
	for _, t := range r.Watched {
		state := "rt"
		if ev, ok := t.Degraded(); ok {
			state = "shed:" + ev.Policy.String()
		}
		fmt.Fprintf(&b, "  %s id=%d cpu=%d cons=%s arrivals=%d misses=%d missrate=%.4f last_miss_ns=%d state=%s\n",
			t.Name(), t.ID(), t.CPU(), t.Constraints().Type, t.Arrivals, t.Misses,
			t.MissRate(), r.LastMissNs[t.ID()], state)
	}

	fmt.Fprintf(&b, "miss curve (bucket_ms count):\n")
	for i, n := range r.MissCurve {
		if n > 0 {
			fmt.Fprintf(&b, "  %d %d\n", int64(i)*r.BucketNs/1_000_000, n)
		}
	}

	d := k.Degradation()
	fmt.Fprintf(&b, "degradation: sheds=%d cohorts=%d demoted=%d shrunk=%d evicted=%d readmit_attempts=%d readmitted=%d gave_up=%d last_shed_ns=%d\n",
		d.Sheds, d.Cohorts, d.Demoted, d.Shrunk, d.Evicted,
		d.ReadmitAttempts, d.Readmitted, d.ReadmitGaveUp, r.LastShedNs)

	fmt.Fprintf(&b, "per-cpu:\n")
	for i, s := range k.Locals {
		led := s.Ledger()
		fmt.Fprintf(&b, "  cpu%d invocations=%d switches=%d wdkicks=%d lost_timers=%d miss_recorded=%d miss_clamped=%d busy=%d overhead=%d irqwin=%d inline=%d missing=%d idle=%d\n",
			i, s.Stats.Invocations, s.Stats.Switches,
			s.Stats.WatchdogKicks, k.M.CPU(i).LostTimerFires(),
			s.Stats.Miss.Recorded, s.Stats.Miss.ClampedNegative,
			led.BusyCycles, led.OverheadCycles, led.IRQWindowCycles,
			led.InlineCycles, led.MissingCycles, led.IdleCycles)
	}

	fmt.Fprintf(&b, "invariants: passes=%d violations=%d\n",
		r.Checker.Passes(), len(r.Checker.Violations()))
	if rep := r.Checker.Report(); rep != "" {
		b.WriteString(rep)
	}
	return b.String()
}
