package fault

import (
	"math/rand"
	"sync"
	"time"
)

// NetPolicy is a seeded fault policy for a point-to-point message
// transport between numbered replicas: partitions (only pairs inside the
// same group may talk), probabilistic drops, and bounded random delays.
// The replication test transport consults Admit before delivering each
// request, so one policy object scripts the whole failure schedule of a
// partition/failover property test deterministically from its seed.
type NetPolicy struct {
	mu       sync.Mutex
	rng      *rand.Rand
	dropRate float64
	minDelay time.Duration
	maxDelay time.Duration
	// group maps replica id -> partition group; replicas in different
	// groups cannot exchange messages. nil = fully connected.
	group map[int]int
	// dropped and delivered count Admit outcomes, for assertions that a
	// schedule actually exercised the fault.
	dropped   int64
	delivered int64
}

// NewNetPolicy returns a fully-connected, lossless, zero-delay policy
// whose random choices (drops, delay lengths) derive from seed.
func NewNetPolicy(seed int64) *NetPolicy {
	return &NetPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Partition splits the network: each argument is one group of replica
// ids, and messages only flow between replicas in the same group. A
// replica named in no group is isolated entirely.
func (p *NetPolicy) Partition(groups ...[]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.group = map[int]int{}
	for gi, g := range groups {
		for _, id := range g {
			p.group[id] = gi
		}
	}
}

// Heal reconnects everything (drops and delays stay as configured).
func (p *NetPolicy) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.group = nil
}

// SetDrop sets the independent per-message drop probability in [0,1].
func (p *NetPolicy) SetDrop(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropRate = rate
}

// SetDelay sets the per-message delivery delay range.
func (p *NetPolicy) SetDelay(minD, maxD time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.minDelay, p.maxDelay = minD, maxD
}

// Admit decides one message's fate: ok=false means the network ate it
// (partition or random drop); otherwise delay says how long delivery
// should stall.
func (p *NetPolicy) Admit(from, to int) (delay time.Duration, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.group != nil {
		gf, okf := p.group[from]
		gt, okt := p.group[to]
		if !okf || !okt || gf != gt {
			p.dropped++
			return 0, false
		}
	}
	if p.dropRate > 0 && p.rng.Float64() < p.dropRate {
		p.dropped++
		return 0, false
	}
	p.delivered++
	if p.maxDelay > p.minDelay {
		delay = p.minDelay + time.Duration(p.rng.Int63n(int64(p.maxDelay-p.minDelay)))
	} else {
		delay = p.minDelay
	}
	return delay, true
}

// Counts reports how many messages were delivered and dropped so far.
func (p *NetPolicy) Counts() (delivered, dropped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delivered, p.dropped
}
