package fault

import (
	"testing"
	"time"
)

func TestNetPolicyPartitionBlocksCrossGroup(t *testing.T) {
	p := NewNetPolicy(1)
	if _, ok := p.Admit(0, 1); !ok {
		t.Fatalf("fresh policy dropped a message")
	}
	p.Partition([]int{0, 1}, []int{2})
	cases := []struct {
		from, to int
		want     bool
	}{
		{0, 1, true}, {1, 0, true}, // same group
		{0, 2, false}, {2, 1, false}, // across the cut
		{3, 0, false}, // ungrouped id is isolated
	}
	for _, c := range cases {
		if _, ok := p.Admit(c.from, c.to); ok != c.want {
			t.Errorf("Admit(%d,%d) = %v, want %v", c.from, c.to, ok, c.want)
		}
	}
	p.Heal()
	if _, ok := p.Admit(0, 2); !ok {
		t.Fatalf("healed policy still partitioned")
	}
	if delivered, dropped := p.Counts(); delivered != 4 || dropped != 3 {
		t.Fatalf("counts = %d delivered, %d dropped", delivered, dropped)
	}
}

func TestNetPolicyDropRateIsSeededAndBounded(t *testing.T) {
	run := func(seed int64) (dropped int64) {
		p := NewNetPolicy(seed)
		p.SetDrop(0.3)
		for i := 0; i < 1000; i++ {
			p.Admit(0, 1)
		}
		_, d := p.Counts()
		return d
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d drops", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("drop rate 0.3 produced %d/1000 drops", a)
	}
	if c := run(8); c == a {
		t.Fatalf("different seeds produced identical schedules (%d)", c)
	}
}

func TestNetPolicyDelayRange(t *testing.T) {
	p := NewNetPolicy(3)
	p.SetDelay(time.Millisecond, 4*time.Millisecond)
	for i := 0; i < 100; i++ {
		d, ok := p.Admit(0, 1)
		if !ok {
			t.Fatalf("lossless policy dropped")
		}
		if d < time.Millisecond || d >= 4*time.Millisecond {
			t.Fatalf("delay %v outside [1ms,4ms)", d)
		}
	}
	p.SetDelay(2*time.Millisecond, 2*time.Millisecond)
	if d, _ := p.Admit(0, 1); d != 2*time.Millisecond {
		t.Fatalf("fixed delay = %v", d)
	}
}
