package fault

import (
	"strings"
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

// TestScenarioReplayByteIdentical is the determinism contract: the same
// seed and scenario produce byte-for-byte identical reports, both for a
// full run and when truncated at an event count — the repro-line workflow.
func TestScenarioReplayByteIdentical(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := Run(Options{Scenario: name, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(Options{Scenario: name, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if a.Report != b.Report {
				t.Fatalf("full-run reports differ:\n--- first ---\n%s\n--- second ---\n%s", a.Report, b.Report)
			}
			// Replay truncated mid-run, as a violation repro line would.
			until := a.Kernel.Eng.Steps() / 2
			c, err := Run(Options{Scenario: name, Seed: 7, UntilEvent: until})
			if err != nil {
				t.Fatal(err)
			}
			d, err := Run(Options{Scenario: name, Seed: 7, UntilEvent: until})
			if err != nil {
				t.Fatal(err)
			}
			if c.Report != d.Report {
				t.Fatalf("truncated replays differ at event %d:\n--- first ---\n%s\n--- second ---\n%s",
					until, c.Report, d.Report)
			}
			if c.Kernel.Eng.Steps() != until {
				t.Fatalf("truncated run stopped at event %d, want %d", c.Kernel.Eng.Steps(), until)
			}
		})
	}
}

// TestEagerNoWorseThanLazySMIStorm regression-checks the Section 3.6 claim
// under bursty faults: eager EDF's miss count must not exceed lazy EDF's
// under the identical storm.
func TestEagerNoWorseThanLazySMIStorm(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1001} {
		eager, err := Run(Options{Scenario: "smi-storm", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := Run(Options{Scenario: "smi-storm", Seed: seed, Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if eager.TotalMisses > lazy.TotalMisses {
			t.Errorf("seed %d: eager EDF missed %d > lazy EDF %d under the same storm",
				seed, eager.TotalMisses, lazy.TotalMisses)
		}
		if lazy.TotalMisses == 0 {
			t.Errorf("seed %d: storm too weak — lazy EDF recorded no misses", seed)
		}
		if !eager.Checker.Ok() {
			t.Errorf("seed %d: invariants violated:\n%s", seed, eager.Checker.Report())
		}
	}
}

// TestOverloadShedRecovery checks the degradation layer end to end: the
// persistent drain forces sheds, the supervisor re-admits (and eventually
// gives up on the flapping thread), and every thread still holding its
// real-time constraints returns to zero misses once shedding settles.
func TestOverloadShedRecovery(t *testing.T) {
	r, err := Run(Options{Scenario: "overload-shed", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := r.Kernel.Degradation()
	if d.Sheds == 0 {
		t.Fatal("no sheds under persistent overload")
	}
	if d.Readmitted == 0 {
		t.Fatal("supervisor never re-admitted anything")
	}
	if d.ReadmitGaveUp == 0 {
		t.Fatal("flapping thread never exhausted its re-admission attempts")
	}
	if !r.Checker.Ok() {
		t.Fatalf("invariants violated:\n%s", r.Checker.Report())
	}

	lastStable := r.LastShedNs
	for _, ns := range r.ReadmitNs {
		if ns > lastStable {
			lastStable = ns
		}
	}
	const marginNs = 5_000_000 // five periods for in-flight debt to clear
	endNs := Scenarios["overload-shed"].DurationNs
	if endNs-lastStable < 100_000_000 {
		t.Fatalf("run too short to judge recovery: stable at %dns of %dns", lastStable, endNs)
	}
	survivors := 0
	for _, th := range r.Watched {
		if _, shed := th.Degraded(); shed {
			continue
		}
		survivors++
		if th.Constraints().Type != core.Periodic {
			t.Errorf("survivor %s is not periodic", th.Name())
		}
		if m := r.LastMissNs[th.ID()]; m > lastStable+marginNs {
			t.Errorf("survivor %s missed at %dns, after shedding settled at %dns",
				th.Name(), m, lastStable)
		}
	}
	if survivors == 0 {
		t.Fatal("everything was shed; no survivors to judge recovery on")
	}
}

// testEnv boots a small machine+kernel pair for direct injector tests.
func testEnv(t *testing.T, ncpus int, seed uint64) (*Env, *core.InvariantChecker) {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	cfg := core.DefaultConfig(spec)
	k := core.Boot(m, cfg)
	chk := core.AttachInvariants(k, seed, "test")
	return &Env{M: m, K: k, Rng: m.Rand()}, chk
}

// TestTSCReskewCaughtByInvariants: a backwards re-skew must surface as a
// tsc-monotone violation carrying a well-formed repro line.
func TestTSCReskewCaughtByInvariants(t *testing.T) {
	env, chk := testEnv(t, 2, 99)
	for cpu := 0; cpu < 2; cpu++ {
		env.K.Spawn("rt", cpu,
			periodicSpin(core.PeriodicConstraints(0, 1_000_000, 300_000), 20_000))
	}
	spec := env.M.Spec
	(&TSCReskew{
		CPUs:          []int{1},
		MeanGapCycles: nsToCycles(spec, 10_000_000),
		MaxSkewCycles: int64(nsToCycles(spec, 500_000)),
	}).Start(env)
	env.K.RunUntilNs(200_000_000)

	found := false
	for _, v := range chk.Violations() {
		if v.Check == "tsc-monotone" {
			found = true
			line := chk.ReproLine(v)
			if !strings.Contains(line, "cmd/chaos -seed 99 -scenario test -until-event") {
				t.Fatalf("malformed repro line: %q", line)
			}
		}
	}
	if !found {
		t.Fatalf("backwards TSC re-skew not caught; violations: %v", chk.Violations())
	}
}

// TestStackPressureChurn: allocator churn spawns, runs and reaps threads
// without upsetting scheduler invariants, and pool drains do not leak.
func TestStackPressureChurn(t *testing.T) {
	env, chk := testEnv(t, 2, 5)
	env.K.Spawn("rt", 0,
		periodicSpin(core.PeriodicConstraints(0, 1_000_000, 300_000), 20_000))
	(&StackPressure{
		MeanGapCycles: nsToCycles(env.M.Spec, 2_000_000),
		Burst:         6,
		LifeCycles:    int64(nsToCycles(env.M.Spec, 50_000)),
		DrainEvery:    4,
	}).Start(env)
	env.K.RunUntilNs(200_000_000)

	total := len(env.K.Threads())
	if total < 50 {
		t.Fatalf("churn too weak: only %d threads ever spawned", total)
	}
	if live := env.K.LiveThreads(); live > 20 {
		t.Fatalf("%d churn threads still live; reaping is broken", live)
	}
	if !chk.Ok() {
		t.Fatalf("invariants violated under churn:\n%s", chk.Report())
	}
}

// TestLostTimerWatchdogRecovery: with timer loss and no watchdog a CPU can
// go silent for the rest of the run; the watchdog bounds the damage. The
// scenario keeps the machinery honest: losses must actually occur and
// watchdog kicks must actually fire.
func TestLostTimerWatchdogRecovery(t *testing.T) {
	r, err := Run(Options{Scenario: "drift", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var lost, kicks int64
	for i, s := range r.Kernel.Locals {
		lost += r.Kernel.M.CPU(i).LostTimerFires()
		kicks += s.Stats.WatchdogKicks
	}
	if lost == 0 {
		t.Fatal("drift scenario lost no timer firings")
	}
	if kicks == 0 {
		t.Fatal("watchdog never kicked despite lost firings")
	}
	for _, th := range r.Watched {
		// Periods are 1ms over 400ms: a silent CPU would strand arrivals
		// far below the schedule; the watchdog must keep them rolling.
		if th.Arrivals < 350 {
			t.Errorf("thread %s only reached %d arrivals; CPU went silent", th.Name(), th.Arrivals)
		}
	}
	if !r.Checker.Ok() {
		t.Fatalf("invariants violated:\n%s", r.Checker.Report())
	}
}
