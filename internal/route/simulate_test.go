package route

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hrtsched/internal/serve"
	"hrtsched/internal/whatif"
)

const routeSimBody = `{"scenario":{"name":"routed","cpus":2,"tasks":[` +
	`{"period_ns":1000000,"slice_ns":400000,"cpu":0},` +
	`{"period_ns":1000000,"slice_ns":300000,"cpu":1}],` +
	`"model":"half-random","faults":["smi-storm"],"replications":3},"seed":11}`

func newSimServer(t *testing.T) *serve.Server {
	t.Helper()
	srv, err := serve.New(serve.Config{Spec: testSpec})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestSingleGroupRoutedSimulateIsByteIdentical: a simulate request through
// a one-group router answers byte-for-byte what the unrouted server
// answers, plus the shard attribution header.
func TestSingleGroupRoutedSimulateIsByteIdentical(t *testing.T) {
	newStack := func(routed bool) *httptest.Server {
		c := newTestCluster(t, 1)
		srv := newSimServer(t)
		if !routed {
			ts := httptest.NewServer(srv.HandlerWithCluster(c))
			t.Cleanup(ts.Close)
			return ts
		}
		r, err := New([]Group{NewLocalGroupWithServer(c, srv)}, Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(r.Handler(srv.Handler()))
		t.Cleanup(ts.Close)
		return ts
	}
	unrouted := newStack(false)
	routed := newStack(true)

	if code, _ := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/simulate", routeSimBody); code != http.StatusOK {
		t.Fatalf("simulate answered %d", code)
	}
	// Invalid scenarios answer the identical 400 envelope.
	bad := `{"scenario":{"tasks":[{"period_ns":1000,"slice_ns":2000}]},"seed":1}`
	if code, _ := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/simulate", bad); code != http.StatusBadRequest {
		t.Fatalf("invalid scenario answered %d, want 400", code)
	}

	// The routed response carries the shard attribution header.
	resp, err := http.Post(routed.URL+"/v1/simulate", "application/json", strings.NewReader(routeSimBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(ShardGroupHeader); got != "0" {
		t.Fatalf("%s = %q, want 0", ShardGroupHeader, got)
	}
}

// TestRouterSimulateFallsThroughCapabilityGap: a group without the
// Simulator capability is skipped; the run lands on the capable group.
func TestRouterSimulateFallsThroughCapabilityGap(t *testing.T) {
	c0 := newTestCluster(t, 1)
	c1 := newTestCluster(t, 1)
	srv := newSimServer(t)
	// Group 0 is simulation-blind (plain LocalGroup), group 1 is capable.
	r, err := New([]Group{NewLocalGroup(c0), NewLocalGroupWithServer(c1, srv)}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var req serve.SimulateRequest
	if err := json.Unmarshal([]byte(routeSimBody), &req); err != nil {
		t.Fatal(err)
	}
	req.Scenario = req.Scenario.Normalize()
	rep, g, err := r.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if g != 1 {
		t.Fatalf("answered by group %d, want 1 (the only capable group)", g)
	}
	if rep.Replications != 3 || rep.Seed != 11 {
		t.Fatalf("report fields wrong: %+v", rep)
	}

	// No capable group at all: unreachable, mapped to the 503 contract.
	r2, err := New([]Group{NewLocalGroup(c0)}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, _, err := r2.Simulate(context.Background(), req); !errors.Is(err, ErrGroupUnreachable) {
		t.Fatalf("no-capability error = %v, want ErrGroupUnreachable", err)
	}
}

// TestRemoteGroupSimulateForwards: a RemoteGroup forwards /v1/simulate to
// the group daemon and the decoded report re-encodes byte-identically to
// the daemon's own response (the histogram JSON round-trip contract).
func TestRemoteGroupSimulateForwards(t *testing.T) {
	srv := newSimServer(t)
	backend := httptest.NewServer(srv.HandlerWithCluster(newTestCluster(t, 1)))
	defer backend.Close()

	g, err := NewRemoteGroup(context.Background(), backend.URL, 30*time.Second)
	if err != nil {
		t.Fatalf("NewRemoteGroup: %v", err)
	}
	var req serve.SimulateRequest
	if err := json.Unmarshal([]byte(routeSimBody), &req); err != nil {
		t.Fatal(err)
	}
	req.Scenario = req.Scenario.Normalize()
	rep, err := g.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	direct, err := whatif.Run(req.Scenario, req.Seed)
	if err != nil {
		t.Fatalf("whatif.Run: %v", err)
	}
	got, _ := json.Marshal(rep)
	want, _ := json.Marshal(direct)
	if string(got) != string(want) {
		t.Fatalf("remote report diverges from direct run:\n%s\n--- vs ---\n%s", got, want)
	}
}
