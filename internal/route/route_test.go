package route

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
)

var testSpec = plan.Spec{OverheadNs: 4_600, UtilizationLimit: 0.79}

// newTestCluster builds one shard-group cluster with the shared test spec.
func newTestCluster(t *testing.T, nodes int) *serve.Cluster {
	t.Helper()
	c, err := serve.NewCluster(serve.ClusterConfig{Spec: testSpec, Nodes: nodes})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// newLocalRouter builds a router over len(sizes) in-process groups, group g
// owning sizes[g] nodes, contiguous default partition.
func newLocalRouter(t *testing.T, sizes ...int) (*Router, []*serve.Cluster) {
	t.Helper()
	groups := make([]Group, len(sizes))
	clusters := make([]*serve.Cluster, len(sizes))
	for g, n := range sizes {
		clusters[g] = newTestCluster(t, n)
		groups[g] = NewLocalGroup(clusters[g])
	}
	r, err := New(groups, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, clusters
}

// setOfUtil is a one-task set with roughly the given raw utilization. The
// 1 ms period keeps the per-task overhead inflation (4.6 us) small against
// the slice, so test capacities stay close to the nominal fractions.
func setOfUtil(frac float64) plan.TaskSet {
	return plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: int64(frac * 1_000_000)}}
}

func TestPartitionNodesCoversAllNodesOnce(t *testing.T) {
	for _, tc := range []struct{ total, groups int }{
		{8, 4}, {8, 1}, {16, 4}, {5, 4}, {4, 4}, {100, 7}, {3, 8},
	} {
		part := PartitionNodes(tc.total, tc.groups)
		if len(part) != tc.groups {
			t.Fatalf("PartitionNodes(%d,%d): %d groups", tc.total, tc.groups, len(part))
		}
		seen := make(map[int]bool)
		for g, ids := range part {
			if tc.total >= tc.groups && len(ids) == 0 {
				t.Errorf("PartitionNodes(%d,%d): group %d empty: %v", tc.total, tc.groups, g, part)
			}
			for _, id := range ids {
				if id < 0 || id >= tc.total || seen[id] {
					t.Fatalf("PartitionNodes(%d,%d): bad/duplicate node %d: %v", tc.total, tc.groups, id, part)
				}
				seen[id] = true
			}
		}
		if len(seen) != tc.total {
			t.Fatalf("PartitionNodes(%d,%d) covered %d nodes: %v", tc.total, tc.groups, len(seen), part)
		}
	}
}

func TestPartitionNodesDeterministic(t *testing.T) {
	a := PartitionNodes(64, 4)
	b := PartitionNodes(64, 4)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("PartitionNodes not deterministic:\n%v\n%v", a, b)
	}
}

func TestGroupForIsStableAndSpreads(t *testing.T) {
	r, _ := newLocalRouter(t, 1, 1, 1, 1)
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("placement-%d", i)
		g := r.GroupFor(id)
		if g2 := r.GroupFor(id); g2 != g {
			t.Fatalf("GroupFor(%q) unstable: %d then %d", id, g, g2)
		}
		counts[g]++
	}
	for g, n := range counts {
		if n < 100 {
			t.Fatalf("rendezvous hash starves group %d: %v", g, counts)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	c := newTestCluster(t, 2)
	g := NewLocalGroup(c)
	cases := []struct {
		groups []Group
		cfg    Config
	}{
		{nil, Config{}},
		{[]Group{g}, Config{Names: []string{"a", "b"}}},
		{[]Group{g, g}, Config{Names: []string{"dup", "dup"}}},
		{[]Group{g}, Config{Names: []string{""}}},
		{[]Group{g}, Config{Partition: [][]int{{0}}}},          // group owns 2 nodes
		{[]Group{g, g}, Config{Partition: [][]int{{0, 1}, {1, 2}}}}, // node 1 twice
		{[]Group{g}, Config{Partition: [][]int{{0, 1}, {2}}}},  // extra partition group
	}
	for i, tc := range cases {
		if _, err := New(tc.groups, tc.cfg); err == nil {
			t.Errorf("case %d: bad router config accepted", i)
		}
	}
}

func TestRoutedPlaceRemoveRoundTrip(t *testing.T) {
	r, _ := newLocalRouter(t, 2, 2)
	ctx := context.Background()
	placed := make(map[string]int)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("rt-%d", i)
		res, g, err := r.Place(ctx, id, setOfUtil(0.05))
		if err != nil || !res.Placed {
			t.Fatalf("Place(%s): placed=%v err=%v", id, res.Placed, err)
		}
		if want := r.GroupFor(id); g != want {
			t.Fatalf("Place(%s) answered by group %d, hash owns %d", id, g, want)
		}
		placed[id] = g
	}
	for id, g := range placed {
		_, rg, err := r.Remove(ctx, id)
		if err != nil {
			t.Fatalf("Remove(%s): %v", id, err)
		}
		if rg != g {
			t.Fatalf("Remove(%s) answered by group %d, placed on %d", id, rg, g)
		}
	}
	if _, _, err := r.Remove(ctx, "never-placed"); !errors.Is(err, serve.ErrUnknownID) {
		t.Fatalf("Remove(unknown) = %v, want ErrUnknownID", err)
	}
}

func TestPlaceBatchSplitsAndMergesInInputOrder(t *testing.T) {
	r, clusters := newLocalRouter(t, 1, 1, 1, 1)
	ctx := context.Background()
	const n = 64
	items := make([]serve.BatchPlaceItem, n)
	for i := range items {
		items[i] = serve.BatchPlaceItem{ID: fmt.Sprintf("b-%d", i), Tasks: setOfUtil(0.01)}
	}
	br := r.PlaceBatch(ctx, items)
	if len(br.Results) != n || len(br.Groups) != n {
		t.Fatalf("batch result sized %d/%d, want %d", len(br.Results), len(br.Groups), n)
	}
	for i, res := range br.Results {
		if res.ID != items[i].ID {
			t.Fatalf("result %d is %q, want %q (merge order broken)", i, res.ID, items[i].ID)
		}
		if res.Err != nil || !res.Result.Placed {
			t.Fatalf("item %d: placed=%v err=%v", i, res.Result.Placed, res.Err)
		}
		if want := r.GroupFor(res.ID); br.Groups[i] != want {
			t.Fatalf("item %d attributed to group %d, hash owns %d", i, br.Groups[i], want)
		}
	}
	// Union of per-group placements covers exactly the batch.
	total := 0
	for _, c := range clusters {
		total += c.Status().Placements
	}
	if total != n {
		t.Fatalf("groups hold %d placements, want %d", total, n)
	}
	// Duplicate ids in one batch resolve in input order even when the
	// duplicates hash to the same group and land in one sub-batch.
	dup := []serve.BatchPlaceItem{
		{ID: "dup-x", Tasks: setOfUtil(0.01)},
		{ID: "dup-x", Tasks: setOfUtil(0.01)},
	}
	dr := r.PlaceBatch(ctx, dup)
	if dr.Results[0].Err != nil || !dr.Results[0].Result.Placed {
		t.Fatalf("first duplicate should place: %+v", dr.Results[0])
	}
	if !errors.Is(dr.Results[1].Err, serve.ErrDuplicateID) {
		t.Fatalf("second duplicate = %v, want ErrDuplicateID", dr.Results[1].Err)
	}
}

func TestCrossShardDrainMigratesStranded(t *testing.T) {
	r, clusters := newLocalRouter(t, 1, 1)
	ctx := context.Background()

	// Fill group 0's only node with sets that group 1 can still hold.
	var onZero []string
	for i := 0; len(onZero) < 3 && i < 200; i++ {
		id := fmt.Sprintf("mig-%d", i)
		if r.GroupFor(id) != 0 {
			continue
		}
		res, _, err := r.Place(ctx, id, setOfUtil(0.10))
		if err != nil || !res.Placed {
			t.Fatalf("Place(%s): placed=%v err=%v", id, res.Placed, err)
		}
		onZero = append(onZero, id)
	}
	if len(onZero) < 3 {
		t.Fatalf("could not find 3 ids hashing to group 0")
	}

	// Draining group 0's single node leaves nowhere in-group; every set
	// must migrate to group 1.
	rep, err := r.Drain(ctx, 0)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rep.Migrated != len(onZero) || rep.Stranded != 0 {
		t.Fatalf("drain report %+v, want %d migrated, 0 stranded", rep, len(onZero))
	}
	if got := clusters[1].Status().Placements; got != len(onZero) {
		t.Fatalf("group 1 holds %d placements after migration, want %d", got, len(onZero))
	}
	if got := clusters[0].Status().Placements; got != 0 {
		t.Fatalf("group 0 still holds %d placements after migration", got)
	}

	// Remove still finds the migrated ids even though they now live off
	// their hash-owning group.
	for _, id := range onZero {
		_, g, err := r.Remove(ctx, id)
		if err != nil {
			t.Fatalf("Remove(%s) after migration: %v", id, err)
		}
		if g != 1 {
			t.Fatalf("Remove(%s) answered by group %d, migrated to 1", id, g)
		}
	}

	if _, err := r.Undrain(ctx, 0); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	if _, err := r.Drain(ctx, 99); !errors.Is(err, serve.ErrUnknownNode) {
		t.Fatalf("Drain(unknown node) = %v, want ErrUnknownNode", err)
	}
}

func TestCrossShardRebalanceNarrowsSpread(t *testing.T) {
	r, clusters := newLocalRouter(t, 1, 1)
	ctx := context.Background()

	// Pile placements onto group 0 directly (behind the router's back, as
	// if the hash had been unlucky), leaving group 1 empty.
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("skew-%d", i)
		res, err := clusters[0].Place(ctx, id, setOfUtil(0.08))
		if err != nil || !res.Placed {
			t.Fatalf("seed Place(%s): placed=%v err=%v", id, res.Placed, err)
		}
	}
	rep, err := r.Rebalance(ctx)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if rep.Migrated == 0 {
		t.Fatalf("cross-shard rebalance moved nothing: %+v", rep)
	}
	if got := clusters[1].Status().Placements; got == 0 {
		t.Fatalf("group 1 still empty after rebalance: %+v", rep)
	}
	u0 := meanNodeUtil(clusters[0])
	u1 := meanNodeUtil(clusters[1])
	if gap := u0 - u1; gap < -0.25 || gap > 0.25 {
		t.Fatalf("rebalance left a wide spread: group0=%.2f group1=%.2f", u0, u1)
	}
}

func meanNodeUtil(c *serve.Cluster) float64 {
	st := c.Status()
	sum := 0.0
	for _, n := range st.Nodes {
		sum += n.Utilization
	}
	return sum / float64(len(st.Nodes))
}

// failingGroup errors on everything, simulating an unreachable group.
type failingGroup struct {
	Group
}

func (f failingGroup) Status(context.Context) (serve.ClusterStatus, error) {
	return serve.ClusterStatus{}, fmt.Errorf("%w: injected", ErrGroupUnreachable)
}

func TestStatusAggregatesAndServesStale(t *testing.T) {
	c0 := newTestCluster(t, 2)
	c1 := newTestCluster(t, 2)
	g1 := &flipGroup{Group: NewLocalGroup(c1)}
	r, err := New([]Group{NewLocalGroup(c0), g1}, Config{StatusTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, _, err := r.Place(ctx, fmt.Sprintf("st-%d", i), setOfUtil(0.02)); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	st := r.Status(ctx)
	if st.Groups != 2 || st.Reachable != 2 {
		t.Fatalf("status groups=%d reachable=%d, want 2/2", st.Groups, st.Reachable)
	}
	if st.Placements != 8 {
		t.Fatalf("aggregate placements = %d, want 8", st.Placements)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("aggregate has %d node rows, want 4", len(st.Nodes))
	}
	for i, n := range st.Nodes {
		if n.Node != i {
			t.Fatalf("node rows not globally renumbered: row %d is node %d", i, n.Node)
		}
	}

	// Kill group 1's status: the aggregate degrades to staleness, serving
	// the cached snapshot with an age, and the totals hold steady.
	g1.fail = true
	st2 := r.Status(ctx)
	if st2.Reachable != 1 {
		t.Fatalf("reachable = %d with one group down, want 1", st2.Reachable)
	}
	pg := st2.PerGroup[1]
	if pg.Reachable || pg.Error == "" || pg.Status == nil {
		t.Fatalf("down group row should be stale-but-present: %+v", pg)
	}
	if st2.Placements != 8 {
		t.Fatalf("stale aggregate placements = %d, want 8", st2.Placements)
	}
}

// flipGroup fails Status on demand.
type flipGroup struct {
	Group
	fail bool
}

func (f *flipGroup) Status(ctx context.Context) (serve.ClusterStatus, error) {
	if f.fail {
		return serve.ClusterStatus{}, fmt.Errorf("%w: injected", ErrGroupUnreachable)
	}
	return f.Group.Status(ctx)
}

func TestRemoteGroupErrorMapping(t *testing.T) {
	// Canned 429 with the serve envelope and Retry-After.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/cluster/status" {
			serve.WriteJSON(w, http.StatusOK, serve.ClusterStatus{
				Nodes: []serve.NodeStatus{{Node: 0}}, Policy: "first-fit"})
			return
		}
		serve.WriteAPIError(w, http.StatusTooManyRequests,
			serve.APIError{Code: "overloaded", Reason: "server-overload", RetryAfterMs: 1500}, 2)
	}))
	defer ts.Close()

	g, err := NewRemoteGroup(context.Background(), ts.URL, time.Second)
	if err != nil {
		t.Fatalf("NewRemoteGroup: %v", err)
	}
	if g.NodeCount() != 1 {
		t.Fatalf("probed node count %d, want 1", g.NodeCount())
	}
	_, err = g.Place(context.Background(), "x", setOfUtil(0.1))
	var env *EnvelopeError
	if !errors.As(err, &env) {
		t.Fatalf("remote 429 did not map to EnvelopeError: %v", err)
	}
	if env.Status != http.StatusTooManyRequests || env.Envelope.Code != "overloaded" ||
		env.Envelope.RetryAfterMs != 1500 || env.RetryAfterSecs != 2 {
		t.Fatalf("envelope lost fidelity: %+v", env)
	}

	// A dead server is unreachable, not a protocol error.
	ts.Close()
	_, err = g.Place(context.Background(), "x", setOfUtil(0.1))
	if !errors.Is(err, ErrGroupUnreachable) {
		t.Fatalf("dead server error = %v, want ErrGroupUnreachable", err)
	}
	res := g.PlaceBatch(context.Background(), []serve.BatchPlaceItem{{ID: "a"}, {ID: "b"}})
	for i, it := range res {
		if !errors.Is(it.Err, ErrGroupUnreachable) {
			t.Fatalf("batch item %d against dead server = %v, want unreachable", i, it.Err)
		}
	}
}

func TestEnvelopeErrorIsMapsSentinels(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{"not_found", serve.ErrUnknownID},
		{"conflict", serve.ErrDuplicateID},
		{"no_leader", serve.ErrNoLeader},
		{"indeterminate", serve.ErrIndeterminate},
		{"unavailable", serve.ErrClusterClosed},
	}
	for _, tc := range cases {
		e := &EnvelopeError{Status: statusForCode(tc.code), Envelope: serve.APIError{Code: tc.code}}
		if !errors.Is(e, tc.want) {
			t.Errorf("EnvelopeError(%s) does not match %v", tc.code, tc.want)
		}
	}
}

// --- single-group byte-identity -------------------------------------------

// driveIdentical fires the same request at an unrouted and a routed
// handler and requires byte-identical status and body.
func driveIdentical(t *testing.T, unrouted, routed *httptest.Server, method, path, body string) (int, string) {
	t.Helper()
	do := func(base string) (int, string) {
		var resp *http.Response
		var err error
		if method == http.MethodGet {
			resp, err = http.Get(base + path)
		} else {
			resp, err = http.Post(base+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	uCode, uBody := do(unrouted.URL)
	rCode, rBody := do(routed.URL)
	if uCode != rCode || uBody != rBody {
		t.Fatalf("%s %s diverges between unrouted and routed:\nunrouted: %d %s\nrouted:   %d %s",
			method, path, uCode, uBody, rCode, rBody)
	}
	return uCode, uBody
}

func TestSingleGroupRoutedIsByteIdentical(t *testing.T) {
	// Two identical clusters driven with identical request streams stay in
	// identical states, so every response must match byte for byte.
	newStack := func(routed bool) *httptest.Server {
		c := newTestCluster(t, 2)
		srv, err := serve.New(serve.Config{Spec: testSpec})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		t.Cleanup(srv.Close)
		if !routed {
			ts := httptest.NewServer(srv.HandlerWithCluster(c))
			t.Cleanup(ts.Close)
			return ts
		}
		r, err := New([]Group{NewLocalGroup(c)}, Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(r.Handler(srv.Handler()))
		t.Cleanup(ts.Close)
		return ts
	}
	unrouted := newStack(false)
	routed := newStack(true)

	place := `{"id":"idn-a","tasks":[{"period_ns":100000,"slice_ns":10000}]}`
	if code, _ := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/place", place); code != http.StatusOK {
		t.Fatalf("place answered %d", code)
	}
	// Duplicate id: 409 envelope.
	if code, _ := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/place", place); code != http.StatusConflict {
		t.Fatalf("duplicate place answered %d, want 409", code)
	}
	// Batch, including a rejected item (utilization above the limit).
	batch := `{"items":[` +
		`{"id":"idn-b","tasks":[{"period_ns":100000,"slice_ns":5000}]},` +
		`{"id":"idn-c","tasks":[{"period_ns":100000,"slice_ns":99000}]},` +
		`{"id":"idn-b","tasks":[{"period_ns":100000,"slice_ns":5000}]}]}`
	if code, _ := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/place-batch", batch); code != http.StatusOK {
		t.Fatalf("batch answered %d", code)
	}
	// Over-cap batch: the 400 must quote the cap identically.
	var over strings.Builder
	over.WriteString(`{"items":[`)
	for i := 0; i <= serve.DefaultMaxBatchItems; i++ {
		if i > 0 {
			over.WriteByte(',')
		}
		fmt.Fprintf(&over, `{"id":"o-%d","tasks":[{"period_ns":100000,"slice_ns":100}]}`, i)
	}
	over.WriteString(`]}`)
	if code, body := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/place-batch", over.String()); code != http.StatusBadRequest ||
		!strings.Contains(body, strconv.Itoa(serve.DefaultMaxBatchItems)+"-item cap") {
		t.Fatalf("over-cap batch answered %d %s", code, body)
	}
	// Remove, then remove again: 200 then 404.
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/remove", `{"id":"idn-a"}`)
	if code, _ := driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/remove", `{"id":"idn-a"}`); code != http.StatusNotFound {
		t.Fatalf("second remove answered %d, want 404", code)
	}
	// Drain / undrain / rebalance / status bodies.
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/drain", `{"node":0}`)
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/undrain", `{"node":0}`)
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/cluster/rebalance", `{}`)
	driveIdentical(t, unrouted, routed, http.MethodGet, "/v1/cluster/status", "")
	// DAG placement and analysis.
	dagBody := `{"id":"idn-dag","task":{"nodes":[{"wcet_ns":10000},{"wcet_ns":10000}],` +
		`"edges":[{"from":0,"to":1}],"period_ns":1000000,"cores":2}}`
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/dag/place", dagBody)
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/dag/analyze",
		`{"task":{"nodes":[{"wcet_ns":10000}],"edges":[],"period_ns":1000000,"cores":1}}`)
	// Non-cluster routes fall through to the query server identically.
	driveIdentical(t, unrouted, routed, http.MethodPost, "/v1/analyze",
		`{"tasks":[{"period_ns":1000000,"slice_ns":1000}]}`)
}

func TestRoutedHTTPMultiGroupEndToEnd(t *testing.T) {
	r, _ := newLocalRouter(t, 1, 1, 1, 1)
	srv, err := serve.New(serve.Config{Spec: testSpec})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(srv.Close)
	r.RegisterMetrics(srv.Registry())
	ts := httptest.NewServer(r.Handler(srv.Handler()))
	defer ts.Close()

	// A batch across all groups: every item placed, the shard header names
	// one group per item, and they match the hash map.
	var b strings.Builder
	b.WriteString(`{"items":[`)
	const n = 16
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":"e2e-%d","tasks":[{"period_ns":100000,"slice_ns":1000}]}`, i)
	}
	b.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/v1/cluster/place-batch", "application/json", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("POST place-batch: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place-batch: %d %s", resp.StatusCode, body)
	}
	hdr := resp.Header.Get(ShardGroupHeader)
	parts := strings.Split(hdr, ",")
	if len(parts) != n {
		t.Fatalf("shard header has %d entries, want %d: %q", len(parts), n, hdr)
	}
	for i, p := range parts {
		if want := strconv.Itoa(r.GroupFor(fmt.Sprintf("e2e-%d", i))); p != want {
			t.Fatalf("item %d attributed to group %s, hash owns %s", i, p, want)
		}
	}
	var env struct {
		Items []struct {
			ID     string `json:"id"`
			Result *struct {
				Placed bool `json:"placed"`
			} `json:"result"`
		} `json:"items"`
	}
	if err := json.Unmarshal(body, &env); err != nil || len(env.Items) != n {
		t.Fatalf("batch envelope: %s (%v)", body, err)
	}
	for i, it := range env.Items {
		if it.ID != fmt.Sprintf("e2e-%d", i) || it.Result == nil || !it.Result.Placed {
			t.Fatalf("item %d wrong or unplaced: %+v", i, it)
		}
	}

	// Routed status aggregates all four groups.
	sresp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st RoutedStatus
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatalf("status decode: %v\n%s", err, sbody)
	}
	if st.Groups != 4 || st.Reachable != 4 || st.Placements != n {
		t.Fatalf("routed status groups=%d reachable=%d placements=%d, want 4/4/%d: %s",
			st.Groups, st.Reachable, st.Placements, n, sbody)
	}

	// The route metrics surfaced on the shared registry.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"hrtd_route_groups 4",
		`hrtd_route_requests_total{group="0"}`,
		"hrtd_route_fanout_width_count",
		`hrtd_route_http_duration_us_count{route="place-batch"}`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}
