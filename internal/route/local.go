package route

import (
	"context"

	"hrtsched/internal/dag"
	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
	"hrtsched/internal/whatif"
)

// LocalGroup adapts an in-process serve.Cluster as a shard group. It
// implements Migrator, so local groups fully participate in cross-shard
// drain and rebalance migrations. When constructed with
// NewLocalGroupWithServer it also implements Simulator, delegating
// what-if runs to the owning server's simulation pool.
type LocalGroup struct {
	c   *serve.Cluster
	srv *serve.Server
}

// NewLocalGroup wraps a cluster.
func NewLocalGroup(c *serve.Cluster) *LocalGroup { return &LocalGroup{c: c} }

// NewLocalGroupWithServer wraps a cluster plus the server that owns it,
// enabling the Simulator capability (the simulation worker pool lives on
// the server, not the cluster).
func NewLocalGroupWithServer(c *serve.Cluster, srv *serve.Server) *LocalGroup {
	return &LocalGroup{c: c, srv: srv}
}

// Cluster returns the wrapped cluster.
func (g *LocalGroup) Cluster() *serve.Cluster { return g.c }

// NodeCount implements Group.
func (g *LocalGroup) NodeCount() int { return g.c.NodeCount() }

// MaxBatchItems implements Group.
func (g *LocalGroup) MaxBatchItems() int { return g.c.Config().MaxBatchItems }

// Place implements Group.
func (g *LocalGroup) Place(ctx context.Context, id string, set plan.TaskSet) (serve.PlaceResult, error) {
	return g.c.Place(ctx, id, set)
}

// PlaceBatch implements Group.
func (g *LocalGroup) PlaceBatch(ctx context.Context, items []serve.BatchPlaceItem) []serve.BatchPlaceResult {
	return g.c.PlaceBatch(ctx, items)
}

// PlaceDAG implements Group.
func (g *LocalGroup) PlaceDAG(ctx context.Context, id string, t dag.Task, analyzer string) (serve.DAGPlaceResult, error) {
	return g.c.PlaceDAG(ctx, id, t, analyzer)
}

// AnalyzeDAG implements Group: a placement-free analysis against the
// group's platform spec.
func (g *LocalGroup) AnalyzeDAG(_ context.Context, t dag.Task, analyzer string) (dag.Result, error) {
	rta, err := dag.NewAnalyzer(analyzer)
	if err != nil {
		return dag.Result{}, err
	}
	return dag.New(g.c.Config().Spec, rta).AnalyzeDAG(&t)
}

// Remove implements Group.
func (g *LocalGroup) Remove(ctx context.Context, id string) (plan.Verdict, error) {
	return g.c.Remove(ctx, id)
}

// Drain implements Group.
func (g *LocalGroup) Drain(ctx context.Context, localNode int) (serve.DrainReport, error) {
	return g.c.Drain(ctx, localNode)
}

// Undrain implements Group.
func (g *LocalGroup) Undrain(_ context.Context, localNode int) error {
	return g.c.Undrain(localNode)
}

// Rebalance implements Group.
func (g *LocalGroup) Rebalance(ctx context.Context) (int, error) {
	return g.c.Rebalance(ctx)
}

// Status implements Group; an in-process snapshot cannot fail.
func (g *LocalGroup) Status(context.Context) (serve.ClusterStatus, error) {
	return g.c.Status(), nil
}

// Simulate implements Simulator when the group was constructed with
// NewLocalGroupWithServer; otherwise the router falls through to the next
// capable group.
func (g *LocalGroup) Simulate(ctx context.Context, req serve.SimulateRequest) (*whatif.Report, error) {
	if g.srv == nil {
		return nil, errSimUnsupported
	}
	return g.srv.Simulate(ctx, req)
}

// Evaluate implements Migrator via the cluster's evaluate-only queue path.
func (g *LocalGroup) Evaluate(ctx context.Context, set plan.TaskSet) ([]plan.Verdict, error) {
	return g.c.Evaluate(ctx, set)
}

// Placement implements Migrator.
func (g *LocalGroup) Placement(id string) (serve.PlacementInfo, bool) {
	return g.c.Placement(id)
}

// BestMovableUnder implements Migrator.
func (g *LocalGroup) BestMovableUnder(gap float64) (string, serve.PlacementInfo, bool) {
	return g.c.BestMovableUnder(gap)
}
