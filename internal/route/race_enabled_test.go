//go:build race

package route

// raceEnabled lets timing-sensitive gates skip under the race detector,
// where throughput is not representative.
func init() { raceEnabled = true }
