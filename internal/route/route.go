// Package route shards the placement fleet horizontally: the simulated
// node fleet is partitioned into K independent shard groups — each its own
// serve.Cluster (optionally with its own durability/replication stack) —
// behind a thin stateless Router that owns the node→group assignment via a
// rendezvous-hash map. Placements route to their owning group by id hash,
// batches are split per group and re-merged in input order, status is
// aggregated across groups with per-group staleness, and each group's
// 307/429 error contracts pass through unchanged (per-item in batches).
// Drain and Rebalance gain a cross-shard mode: the router probes migration
// destinations through the evaluate-only engine path before committing
// admit-before-release moves between groups.
//
// The router holds no placement state of its own — the id→group map is a
// pure hash and the node→group map is fixed at construction — so any
// number of router processes can front the same groups.
package route

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hrtsched/internal/dag"
	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
	"hrtsched/internal/whatif"
)

// Group is one shard group: the subset of the placement surface the router
// fans out to. LocalGroup adapts an in-process serve.Cluster; RemoteGroup
// speaks the /v1/ HTTP contract to a group daemon.
type Group interface {
	// NodeCount is the number of simulated nodes the group owns.
	NodeCount() int
	Place(ctx context.Context, id string, set plan.TaskSet) (serve.PlaceResult, error)
	PlaceBatch(ctx context.Context, items []serve.BatchPlaceItem) []serve.BatchPlaceResult
	PlaceDAG(ctx context.Context, id string, t dag.Task, analyzer string) (serve.DAGPlaceResult, error)
	AnalyzeDAG(ctx context.Context, t dag.Task, analyzer string) (dag.Result, error)
	Remove(ctx context.Context, id string) (plan.Verdict, error)
	// Drain and Undrain address the group's LOCAL node index; the router
	// translates global node ids through its partition map.
	Drain(ctx context.Context, localNode int) (serve.DrainReport, error)
	Undrain(ctx context.Context, localNode int) error
	Rebalance(ctx context.Context) (int, error)
	Status(ctx context.Context) (serve.ClusterStatus, error)
	// MaxBatchItems is the group's place-batch cap; the router sizes
	// sub-batches against it.
	MaxBatchItems() int
}

// Migrator is the optional capability a Group needs to participate in
// cross-shard migrations (evaluate-only probes plus placement
// introspection). LocalGroup implements it; RemoteGroup does not — remote
// groups keep their stranded sets, which the failure matrix in DESIGN.md
// §13 documents.
type Migrator interface {
	Evaluate(ctx context.Context, set plan.TaskSet) ([]plan.Verdict, error)
	Placement(id string) (serve.PlacementInfo, bool)
	BestMovableUnder(gap float64) (id string, info serve.PlacementInfo, ok bool)
}

// Simulator is the optional capability a Group needs to serve routed
// /v1/simulate requests. RemoteGroup always implements it (the remote
// daemon owns the worker pool); LocalGroup implements it when constructed
// with the serve.Server that holds the in-process simulation pool.
type Simulator interface {
	Simulate(ctx context.Context, req serve.SimulateRequest) (*whatif.Report, error)
}

// errSimUnsupported makes a capability gap distinguishable from a real
// failure: the router falls through to the next group instead of
// answering an error.
var errSimUnsupported = errors.New("route: group does not support simulation")

// ErrGroupUnreachable reports that a shard group could not be reached at
// all (transport failure, not a protocol error). The HTTP layer answers it
// as 503 unavailable with a retry hint.
var ErrGroupUnreachable = errors.New("route: shard group unreachable")

// ErrUnknownGroupNode reports a global node id outside the partition map.
var errUnknownGroupNode = serve.ErrUnknownNode

// crossShardSlack is the per-group mean-utilization spread below which the
// cross-shard rebalance stops, mirroring the in-group rebalance slack.
const crossShardSlack = 0.02

// Config parameterizes a Router. Zero fields take defaults.
type Config struct {
	// Names are the rendezvous identities of the groups; they determine
	// the id→group map, so they must be stable across router restarts for
	// routing to stay consistent. Default "group-0", "group-1", ...
	Names []string
	// Partition assigns global node ids to groups: Partition[g][i] is the
	// global id of group g's local node i. Default: contiguous blocks in
	// group order. PartitionNodes builds a rendezvous-hashed assignment.
	Partition [][]int
	// MaxConcurrent bounds how many groups one request fans out to
	// simultaneously (batch splits, status aggregation, migrations
	// probes). Default min(8, groups).
	MaxConcurrent int
	// StatusTimeout bounds each group's status fetch during aggregation;
	// an overrun marks the group unreachable and serves its last cached
	// status with an age. Default 2s.
	StatusTimeout time.Duration
}

type nodeRef struct {
	group, local int
}

// Router fans the placement surface out across shard groups.
type Router struct {
	groups []Group
	names  []string
	cfg    Config

	// globalNodes maps a global node id to its owning group and local
	// index; partition is the inverse (group → local → global).
	globalNodes map[int]nodeRef
	partition   [][]int

	m routeMetrics

	// statusMu guards lastStatus, the per-group cache serving staleness
	// when a group is unreachable.
	statusMu   sync.Mutex
	lastStatus []cachedStatus
}

type cachedStatus struct {
	st serve.ClusterStatus
	at time.Time
	ok bool
}

// New builds a router over the given groups. At least one group is
// required; the partition map must cover every group's nodes with unique
// global ids.
func New(groups []Group, cfg Config) (*Router, error) {
	if len(groups) == 0 {
		return nil, errors.New("route: at least one group is required")
	}
	if len(cfg.Names) == 0 {
		cfg.Names = make([]string, len(groups))
		for i := range cfg.Names {
			cfg.Names[i] = fmt.Sprintf("group-%d", i)
		}
	}
	if len(cfg.Names) != len(groups) {
		return nil, fmt.Errorf("route: %d names for %d groups", len(cfg.Names), len(groups))
	}
	seen := make(map[string]bool, len(cfg.Names))
	for _, n := range cfg.Names {
		if n == "" || seen[n] {
			return nil, fmt.Errorf("route: group names must be unique and non-empty: %q", n)
		}
		seen[n] = true
	}
	if cfg.Partition == nil {
		cfg.Partition = make([][]int, len(groups))
		next := 0
		for g, grp := range groups {
			ids := make([]int, grp.NodeCount())
			for i := range ids {
				ids[i] = next
				next++
			}
			cfg.Partition[g] = ids
		}
	}
	if len(cfg.Partition) != len(groups) {
		return nil, fmt.Errorf("route: partition has %d groups, router has %d", len(cfg.Partition), len(groups))
	}
	globalNodes := make(map[int]nodeRef)
	for g, ids := range cfg.Partition {
		if len(ids) != groups[g].NodeCount() {
			return nil, fmt.Errorf("route: partition gives group %d %d nodes, group owns %d",
				g, len(ids), groups[g].NodeCount())
		}
		for local, id := range ids {
			if _, dup := globalNodes[id]; dup {
				return nil, fmt.Errorf("route: global node %d assigned twice", id)
			}
			globalNodes[id] = nodeRef{group: g, local: local}
		}
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
		if len(groups) < cfg.MaxConcurrent {
			cfg.MaxConcurrent = len(groups)
		}
	}
	if cfg.StatusTimeout <= 0 {
		cfg.StatusTimeout = 2 * time.Second
	}
	r := &Router{
		groups:      groups,
		names:       cfg.Names,
		cfg:         cfg,
		globalNodes: globalNodes,
		partition:   cfg.Partition,
		lastStatus:  make([]cachedStatus, len(groups)),
	}
	r.m.init(len(groups))
	return r, nil
}

// Groups returns the number of shard groups behind the router.
func (r *Router) Groups() int { return len(r.groups) }

// GroupName returns group g's rendezvous identity.
func (r *Router) GroupName(g int) string { return r.names[g] }

// fnv64Pair hashes a (name, key) pair: FNV-1a over both halves (a NUL
// separating them so ("ab","c") and ("a","bc") score differently), then a
// splitmix64-style finalizer. The finalizer matters: raw FNV-1a is nearly
// affine in the name's contribution (score_i ≈ nameConst_i + keyConst mod
// 2^64), so rendezvous comparisons between names degenerate into comparing
// wraparound gaps and one name can win almost every key.
func fnv64Pair(name, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h *= prime64 // NUL separator: ^= 0 is a no-op, the extra multiply is not
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// rendezvous picks the highest-random-weight name for key.
func rendezvous(key string, names []string) int {
	best, bestScore := 0, uint64(0)
	for i, n := range names {
		if s := fnv64Pair(n, key); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// GroupFor maps a placement id to its owning group by rendezvous hash.
// Every router over the same group names computes the same map, so the
// router needs no shared state.
func (r *Router) GroupFor(id string) int { return rendezvous(id, r.names) }

// PartitionNodes assigns `total` global node ids across `groups` groups by
// rendezvous hash over the default group names, then rebalances so no
// group is empty (a cluster needs at least one node). Deterministic for a
// given (total, groups).
func PartitionNodes(total, groups int) [][]int {
	if groups < 1 {
		groups = 1
	}
	names := make([]string, groups)
	for i := range names {
		names[i] = fmt.Sprintf("group-%d", i)
	}
	part := make([][]int, groups)
	for n := 0; n < total; n++ {
		g := rendezvous(fmt.Sprintf("node-%d", n), names)
		part[g] = append(part[g], n)
	}
	// No group may be empty: steal the last node of the largest group,
	// deterministically, until every group has one.
	for {
		empty, largest := -1, 0
		for g := range part {
			if len(part[g]) == 0 && empty == -1 {
				empty = g
			}
			if len(part[g]) > len(part[largest]) {
				largest = g
			}
		}
		if empty == -1 || len(part[largest]) <= 1 {
			break
		}
		n := part[largest][len(part[largest])-1]
		part[largest] = part[largest][:len(part[largest])-1]
		part[empty] = append(part[empty], n)
	}
	for g := range part {
		sort.Ints(part[g])
	}
	return part
}

// Place routes one placement to its owning group. The returned group index
// feeds the X-Hrtd-Shard-Group attribution header.
func (r *Router) Place(ctx context.Context, id string, set plan.TaskSet) (serve.PlaceResult, int, error) {
	g := r.GroupFor(id)
	start := time.Now()
	res, err := r.groups[g].Place(ctx, id, set)
	r.m.observe(g, start, err)
	if err == nil && res.Placed {
		r.m.placed.Add(1)
	}
	return res, g, err
}

// Simulate routes one what-if request to a shard group. Ownership is the
// rendezvous hash of (scenario name, seed) — a sweep's grid spreads its
// CPU-heavy replications across every group — and a group that lacks the
// Simulator capability falls through to the next candidate in rendezvous
// preference order. Errors from a capable group (sheds included) pass
// through verbatim; only the capability gap falls through.
func (r *Router) Simulate(ctx context.Context, req serve.SimulateRequest) (*whatif.Report, int, error) {
	key := fmt.Sprintf("%s#%d", req.Scenario.Name, req.Seed)
	order := rendezvousOrder(key, r.names)
	for _, g := range order {
		sim, ok := r.groups[g].(Simulator)
		if !ok {
			continue
		}
		start := time.Now()
		rep, err := sim.Simulate(ctx, req)
		if errors.Is(err, errSimUnsupported) {
			continue
		}
		r.m.observe(g, start, err)
		return rep, g, err
	}
	return nil, -1, fmt.Errorf("%w: no shard group supports simulation", ErrGroupUnreachable)
}

// rendezvousOrder ranks group indexes by descending rendezvous score for
// key: element 0 is the owner, the rest are the deterministic fallback
// order.
func rendezvousOrder(key string, names []string) []int {
	type scored struct {
		idx   int
		score uint64
	}
	ss := make([]scored, len(names))
	for i, n := range names {
		ss[i] = scored{i, fnv64Pair(n, key)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// PlaceDAG routes one DAG submission to its owning group.
func (r *Router) PlaceDAG(ctx context.Context, id string, t dag.Task, analyzer string) (serve.DAGPlaceResult, int, error) {
	g := r.GroupFor(id)
	start := time.Now()
	res, err := r.groups[g].PlaceDAG(ctx, id, t, analyzer)
	r.m.observe(g, start, err)
	if err == nil && res.Placed {
		r.m.placed.Add(1)
	}
	return res, g, err
}

// AnalyzeDAG answers a placement-free DAG analysis. Analysis depends only
// on the shared platform spec, so any group can answer; group 0 does.
func (r *Router) AnalyzeDAG(ctx context.Context, t dag.Task, analyzer string) (dag.Result, error) {
	start := time.Now()
	res, err := r.groups[0].AnalyzeDAG(ctx, t, analyzer)
	r.m.observe(0, start, err)
	return res, err
}

// Remove routes an eviction to the id's owning group. A cross-shard
// migration may have moved the placement off its hash-owning group, so an
// unknown-id answer falls back to asking every other group before
// reporting the id unknown.
func (r *Router) Remove(ctx context.Context, id string) (plan.Verdict, int, error) {
	g := r.GroupFor(id)
	start := time.Now()
	v, err := r.groups[g].Remove(ctx, id)
	r.m.observe(g, start, err)
	if err == nil || !errors.Is(err, serve.ErrUnknownID) {
		return v, g, err
	}
	for og := range r.groups {
		if og == g {
			continue
		}
		start := time.Now()
		ov, oerr := r.groups[og].Remove(ctx, id)
		r.m.observe(og, start, oerr)
		if oerr == nil {
			return ov, og, nil
		}
		if !errors.Is(oerr, serve.ErrUnknownID) {
			return plan.Verdict{}, og, oerr
		}
	}
	return v, g, err
}

// BatchResult pairs the merged batch results with each item's owning
// group, in input order.
type BatchResult struct {
	Results []serve.BatchPlaceResult
	Groups  []int
}

// PlaceBatch splits a batch by owning group, fans the sub-batches out with
// bounded concurrency, and re-merges the answers in input order. Each
// group's items are forwarded in their original relative order, chunked to
// the group's MaxBatchItems, chunks applied sequentially per group — so
// in-batch duplicate-id semantics (first occurrence in input order wins)
// hold exactly as they do on one flat cluster. With a single group the
// whole batch forwards unsplit, byte-identical to the unrouted path.
func (r *Router) PlaceBatch(ctx context.Context, items []serve.BatchPlaceItem) BatchResult {
	out := BatchResult{
		Results: make([]serve.BatchPlaceResult, len(items)),
		Groups:  make([]int, len(items)),
	}
	if len(r.groups) == 1 {
		start := time.Now()
		out.Results = r.groups[0].PlaceBatch(ctx, items)
		r.m.observe(0, start, nil)
		r.m.fanout(1)
		r.countPlaced(out.Results)
		return out
	}
	// Split: per-group item lists, preserving input order within a group.
	type member struct {
		item serve.BatchPlaceItem
		idx  int
	}
	perGroup := make([][]member, len(r.groups))
	for i, it := range items {
		g := r.GroupFor(it.ID)
		out.Groups[i] = g
		perGroup[g] = append(perGroup[g], member{item: it, idx: i})
	}
	width := 0
	for _, ms := range perGroup {
		if len(ms) > 0 {
			width++
		}
	}
	r.m.fanout(width)
	sem := make(chan struct{}, r.cfg.MaxConcurrent)
	var wg sync.WaitGroup
	for g, ms := range perGroup {
		if len(ms) == 0 {
			continue
		}
		wg.Add(1)
		go func(g int, ms []member) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cap := r.groups[g].MaxBatchItems()
			if cap < 1 {
				cap = serve.DefaultMaxBatchItems
			}
			// Chunks run sequentially so a duplicate id split across chunks
			// still resolves in input order (the first chunk commits before
			// the second is judged).
			for off := 0; off < len(ms); off += cap {
				end := off + cap
				if end > len(ms) {
					end = len(ms)
				}
				chunk := make([]serve.BatchPlaceItem, end-off)
				for i, m := range ms[off:end] {
					chunk[i] = m.item
				}
				start := time.Now()
				res := r.groups[g].PlaceBatch(ctx, chunk)
				r.m.observe(g, start, nil)
				for i, m := range ms[off:end] {
					out.Results[m.idx] = res[i]
				}
			}
		}(g, ms)
	}
	wg.Wait()
	r.countPlaced(out.Results)
	return out
}

// countPlaced feeds successful batch items into the router's placed
// counter.
func (r *Router) countPlaced(results []serve.BatchPlaceResult) {
	n := int64(0)
	for i := range results {
		if results[i].Err == nil && results[i].Result.Placed {
			n++
		}
	}
	if n > 0 {
		r.m.placed.Add(n)
	}
}

// DrainReport is the routed drain summary. With one group (or no
// cross-shard migrations) it marshals byte-identically to
// serve.DrainReport — the migrated fields are omitted when zero.
type DrainReport struct {
	Node        int      `json:"node"`
	Moved       int      `json:"moved"`
	Migrated    int      `json:"migrated,omitempty"`
	MigratedIDs []string `json:"migrated_ids,omitempty"`
	Stranded    int      `json:"stranded"`
	StrandedIDs []string `json:"stranded_ids,omitempty"`
}

// Drain drains one global node: the owning group re-places its sets
// in-group first, then the router tries to migrate each stranded set onto
// another group — evaluate-only probe first, then admit-before-release —
// so a set survives a drain whenever ANY group in the fleet can hold it.
func (r *Router) Drain(ctx context.Context, globalNode int) (DrainReport, error) {
	ref, ok := r.globalNodes[globalNode]
	if !ok {
		return DrainReport{Node: globalNode}, fmt.Errorf("%w: %d", errUnknownGroupNode, globalNode)
	}
	start := time.Now()
	rep, err := r.groups[ref.group].Drain(ctx, ref.local)
	r.m.observe(ref.group, start, err)
	out := DrainReport{
		Node:     globalNode,
		Moved:    rep.Moved,
		Stranded: rep.Stranded,
	}
	if err != nil {
		return out, err
	}
	if len(r.groups) == 1 {
		out.StrandedIDs = rep.StrandedIDs
		return out, nil
	}
	for _, id := range rep.StrandedIDs {
		if r.migrateOut(ctx, ref.group, id) {
			out.Migrated++
			out.MigratedIDs = append(out.MigratedIDs, id)
			out.Stranded--
		} else {
			out.StrandedIDs = append(out.StrandedIDs, id)
		}
	}
	return out, nil
}

// Undrain re-opens a drained global node.
func (r *Router) Undrain(ctx context.Context, globalNode int) (int, error) {
	ref, ok := r.globalNodes[globalNode]
	if !ok {
		return -1, fmt.Errorf("%w: %d", errUnknownGroupNode, globalNode)
	}
	start := time.Now()
	err := r.groups[ref.group].Undrain(ctx, ref.local)
	r.m.observe(ref.group, start, err)
	return ref.group, err
}

// migrateOut moves one placement from group src to the first other group
// whose evaluate-only probe admits it, destination groups tried in
// ascending mean-utilization order. The move is admit-before-release: the
// destination holds the set before the source drops it, so a failure at
// any step leaves the set placed somewhere. DAG reservations never migrate
// (their provenance cannot survive a plain re-place).
func (r *Router) migrateOut(ctx context.Context, src int, id string) bool {
	mig, ok := r.groups[src].(Migrator)
	if !ok {
		return false
	}
	info, ok := mig.Placement(id)
	if !ok || info.DAG {
		return false
	}
	for _, dst := range r.groupsByUtilization(ctx, src) {
		if !r.probeAdmits(ctx, dst, info.Tasks) {
			continue
		}
		res, err := r.groups[dst].Place(ctx, id, info.Tasks)
		if err != nil || !res.Placed {
			continue
		}
		if _, err := r.groups[src].Remove(ctx, id); err != nil {
			// The destination holds a copy but the source release failed —
			// roll the copy back rather than leave double-counted demand.
			r.groups[dst].Remove(ctx, id) //nolint:errcheck — best-effort rollback
			r.m.migrationFails.Add(1)
			return false
		}
		r.m.migrations.Add(1)
		return true
	}
	r.m.migrationFails.Add(1)
	return false
}

// probeAdmits runs the evaluate-only engine path on a destination group
// and reports whether any node there admits the set.
func (r *Router) probeAdmits(ctx context.Context, g int, set plan.TaskSet) bool {
	mig, ok := r.groups[g].(Migrator)
	if !ok {
		return false
	}
	verdicts, err := mig.Evaluate(ctx, set)
	if err != nil {
		return false
	}
	for _, v := range verdicts {
		if v.Admit {
			return true
		}
	}
	return false
}

// groupsByUtilization orders every group but `exclude` by ascending mean
// node utilization (unreachable groups sort last).
func (r *Router) groupsByUtilization(ctx context.Context, exclude int) []int {
	type gu struct {
		g    int
		util float64
	}
	var gus []gu
	for g := range r.groups {
		if g == exclude {
			continue
		}
		gus = append(gus, gu{g: g, util: r.meanUtilization(ctx, g)})
	}
	sort.SliceStable(gus, func(i, j int) bool { return gus[i].util < gus[j].util })
	out := make([]int, len(gus))
	for i, e := range gus {
		out[i] = e.g
	}
	return out
}

// meanUtilization is group g's mean node utilization, +Inf when its status
// is unavailable (so it sorts last as a migration destination).
func (r *Router) meanUtilization(ctx context.Context, g int) float64 {
	st, err := r.groups[g].Status(ctx)
	if err != nil || len(st.Nodes) == 0 {
		return inf
	}
	sum := 0.0
	for _, n := range st.Nodes {
		sum += n.Utilization
	}
	return sum / float64(len(st.Nodes))
}

var inf = math.Inf(1)

// RebalanceReport is the routed rebalance summary. With one group (or no
// cross-shard moves) it marshals byte-identically to the unrouted
// {"moved":N} body.
type RebalanceReport struct {
	Moved    int `json:"moved"`
	Migrated int `json:"migrated,omitempty"`
}

// Rebalance rebalances every group internally, then narrows the spread of
// mean utilization ACROSS groups: repeatedly probe the best movable set of
// the most-utilized group against the least-utilized group's nodes
// (evaluate-only), and commit admit-before-release moves while the spread
// exceeds the slack. Remote groups participate as in-group rebalancers but
// are skipped as cross-shard sources/destinations (no Migrator).
func (r *Router) Rebalance(ctx context.Context) (RebalanceReport, error) {
	var rep RebalanceReport
	for g := range r.groups {
		start := time.Now()
		moved, err := r.groups[g].Rebalance(ctx)
		r.m.observe(g, start, err)
		rep.Moved += moved
		if err != nil {
			return rep, err
		}
	}
	if len(r.groups) == 1 {
		return rep, nil
	}
	for iter := 0; iter < len(r.groups)*4; iter++ {
		hi, lo, gap := r.spreadEnds(ctx)
		if hi < 0 || lo < 0 || hi == lo || gap <= crossShardSlack {
			break
		}
		himig, ok := r.groups[hi].(Migrator)
		if !ok {
			break
		}
		id, info, ok := himig.BestMovableUnder(gap)
		if !ok {
			break
		}
		if !r.probeAdmits(ctx, lo, info.Tasks) {
			break
		}
		res, err := r.groups[lo].Place(ctx, id, info.Tasks)
		if err != nil || !res.Placed {
			r.m.migrationFails.Add(1)
			break
		}
		if _, err := r.groups[hi].Remove(ctx, id); err != nil {
			r.groups[lo].Remove(ctx, id) //nolint:errcheck — best-effort rollback
			r.m.migrationFails.Add(1)
			break
		}
		r.m.migrations.Add(1)
		rep.Migrated++
	}
	return rep, nil
}

// spreadEnds finds the most- and least-utilized migratable groups and the
// mean-utilization gap between them.
func (r *Router) spreadEnds(ctx context.Context) (hi, lo int, gap float64) {
	hi, lo = -1, -1
	var hiU, loU float64
	for g := range r.groups {
		if _, ok := r.groups[g].(Migrator); !ok {
			continue
		}
		u := r.meanUtilization(ctx, g)
		if u == inf {
			continue
		}
		if hi < 0 || u > hiU {
			hi, hiU = g, u
		}
		if lo < 0 || u < loU {
			lo, loU = g, u
		}
	}
	return hi, lo, hiU - loU
}
