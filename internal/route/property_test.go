package route

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
	"hrtsched/internal/sim"
)

// TestRoutedMatchesMonolithUnderRandomStream drives one randomized
// mutation stream through a routed 4x2 fleet and an unrouted 8-node
// monolith with the same spec and policy, and requires identical admission
// outcomes for every operation plus an identical union of live placements
// at the end.
//
// The stream keeps per-node demand far below the utilization limit, so
// admissibility never depends on which nodes a topology offers: admissible
// sets admit everywhere, deterministically-inadmissible sets (a single
// task above the limit) reject everywhere, and session errors (duplicate
// ids, unknown removals) are topology-independent by construction. The
// test runs in the -race and -tags planverify CI configurations unchanged
// — it is deliberately small enough to afford verification.
func TestRoutedMatchesMonolithUnderRandomStream(t *testing.T) {
	ctx := context.Background()
	mono := newTestCluster(t, 8)
	router, _ := newLocalRouter(t, 2, 2, 2, 2)
	rng := sim.NewRand(1117)

	admissible := func() plan.TaskSet {
		// 0.1%-1% inflated utilization at a 10 ms period: hundreds fit on
		// any single node, so no admissible set is ever refused.
		return plan.TaskSet{{PeriodNs: 10_000_000, SliceNs: 1_000 + rng.Int63n(90_000)}}
	}
	inadmissible := func() plan.TaskSet {
		// A single task above the utilization limit rejects on every node
		// of every topology.
		return plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 950_000}}
	}

	classify := func(err error) string {
		switch {
		case err == nil:
			return "ok"
		case errors.Is(err, serve.ErrDuplicateID):
			return "duplicate"
		case errors.Is(err, serve.ErrUnknownID):
			return "unknown"
		default:
			return fmt.Sprintf("other:%v", err)
		}
	}

	var live []string
	next := 0
	for op := 0; op < 400; op++ {
		switch roll := rng.Float64(); {
		case roll < 0.40: // place a fresh admissible set
			id := fmt.Sprintf("p-%d", next)
			next++
			set := admissible()
			mres, merr := mono.Place(ctx, id, set)
			rres, _, rerr := router.Place(ctx, id, set)
			if classify(merr) != classify(rerr) || mres.Placed != rres.Placed {
				t.Fatalf("op %d place(%s): mono placed=%v err=%v, routed placed=%v err=%v",
					op, id, mres.Placed, merr, rres.Placed, rerr)
			}
			if mres.Placed {
				live = append(live, id)
			}
		case roll < 0.50: // place an inadmissible set: rejected everywhere
			id := fmt.Sprintf("p-%d", next)
			next++
			set := inadmissible()
			mres, merr := mono.Place(ctx, id, set)
			rres, _, rerr := router.Place(ctx, id, set)
			if merr != nil || rerr != nil || mres.Placed || rres.Placed {
				t.Fatalf("op %d inadmissible place(%s): mono placed=%v err=%v, routed placed=%v err=%v",
					op, id, mres.Placed, merr, rres.Placed, rerr)
			}
		case roll < 0.60 && len(live) > 0: // duplicate id: conflict everywhere
			id := live[rng.Intn(len(live))]
			_, merr := mono.Place(ctx, id, admissible())
			_, _, rerr := router.Place(ctx, id, admissible())
			if classify(merr) != "duplicate" || classify(rerr) != "duplicate" {
				t.Fatalf("op %d duplicate place(%s): mono %v, routed %v", op, id, merr, rerr)
			}
		case roll < 0.75: // batch of fresh admissible sets
			n := 2 + rng.Intn(6)
			items := make([]serve.BatchPlaceItem, n)
			for i := range items {
				items[i] = serve.BatchPlaceItem{ID: fmt.Sprintf("p-%d", next), Tasks: admissible()}
				next++
			}
			mres := mono.PlaceBatch(ctx, items)
			rres := router.PlaceBatch(ctx, items)
			for i := range items {
				if classify(mres[i].Err) != classify(rres.Results[i].Err) ||
					mres[i].Result.Placed != rres.Results[i].Result.Placed {
					t.Fatalf("op %d batch item %d (%s): mono placed=%v err=%v, routed placed=%v err=%v",
						op, i, items[i].ID, mres[i].Result.Placed, mres[i].Err,
						rres.Results[i].Result.Placed, rres.Results[i].Err)
				}
				if mres[i].Result.Placed {
					live = append(live, items[i].ID)
				}
			}
		case roll < 0.95 && len(live) > 0: // remove a live id
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			_, merr := mono.Remove(ctx, id)
			_, _, rerr := router.Remove(ctx, id)
			if classify(merr) != classify(rerr) || merr != nil {
				t.Fatalf("op %d remove(%s): mono %v, routed %v", op, id, merr, rerr)
			}
		default: // remove an unknown id: not found everywhere
			id := fmt.Sprintf("never-%d", op)
			_, merr := mono.Remove(ctx, id)
			_, _, rerr := router.Remove(ctx, id)
			if classify(merr) != "unknown" || classify(rerr) != "unknown" {
				t.Fatalf("op %d remove unknown(%s): mono %v, routed %v", op, id, merr, rerr)
			}
		}
	}

	// The union of the routed groups' placements must equal the monolith's.
	monoIDs := liveIDs(t, mono)
	var routedIDs []string
	for g := 0; g < router.Groups(); g++ {
		lg := router.groups[g].(*LocalGroup)
		routedIDs = append(routedIDs, liveIDs(t, lg.Cluster())...)
	}
	sort.Strings(monoIDs)
	sort.Strings(routedIDs)
	if fmt.Sprint(monoIDs) != fmt.Sprint(routedIDs) {
		t.Fatalf("live placement unions diverge:\nmono:   %v\nrouted: %v", monoIDs, routedIDs)
	}
	sort.Strings(live)
	if fmt.Sprint(live) != fmt.Sprint(monoIDs) {
		t.Fatalf("live set diverges from the stream's bookkeeping:\nwant: %v\ngot:  %v", live, monoIDs)
	}
}

// liveIDs lists a cluster's live placement ids via removal probes on the
// tracked set — Status counts them but does not name them, so the test
// asks the placement surface directly.
func liveIDs(t *testing.T, c *serve.Cluster) []string {
	t.Helper()
	var ids []string
	st := c.Status()
	// PlacementInfo gives per-id lookups; walk the id space the stream
	// used. The stream's ids are p-0..p-N and never-*, bounded well below
	// 10000.
	for i := 0; i < 10_000 && len(ids) < st.Placements; i++ {
		id := fmt.Sprintf("p-%d", i)
		if _, ok := c.Placement(id); ok {
			ids = append(ids, id)
		}
	}
	if len(ids) != st.Placements {
		t.Fatalf("found %d live ids, status says %d", len(ids), st.Placements)
	}
	return ids
}
