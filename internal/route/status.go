package route

import (
	"context"
	"sort"
	"sync"
	"time"

	"hrtsched/internal/serve"
)

// GroupStatus is one group's row in the routed status report, including
// its staleness: a reachable group answers fresh (age_ms 0); an
// unreachable one serves the router's last cached snapshot with its age,
// or no snapshot at all when none was ever fetched.
type GroupStatus struct {
	Group     int    `json:"group"`
	Name      string `json:"name"`
	Nodes     []int  `json:"nodes"`
	Reachable bool   `json:"reachable"`
	AgeMs     int64  `json:"age_ms"`
	Error     string `json:"error,omitempty"`
	// Status is the group's own report (possibly stale, see AgeMs); absent
	// when the group is unreachable and never answered.
	Status *serve.ClusterStatus `json:"status,omitempty"`
}

// RoutedStatus is the fleet-wide status report: aggregate counters summed
// across groups (stale snapshots standing in for unreachable ones), a
// flattened global node table, and the per-group detail.
type RoutedStatus struct {
	Groups     int                `json:"groups"`
	Reachable  int                `json:"reachable"`
	Nodes      []serve.NodeStatus `json:"nodes"`
	Policy     string             `json:"policy"`
	Placements int                `json:"placements"`
	Placed     int64              `json:"placed_total"`
	Rejected   int64              `json:"rejected_total"`
	Removed    int64              `json:"removed_total"`
	Rebalanced int64              `json:"rebalanced_total"`
	Drained    int64              `json:"drained_total"`
	Canceled   int64              `json:"canceled_total"`
	Unmatched  int64              `json:"unmatched_removals_total"`
	// Migrated counts cross-shard migrations committed by THIS router
	// process (the groups see them as ordinary places and removes).
	Migrated int64         `json:"migrated_total"`
	PerGroup []GroupStatus `json:"per_group"`
}

// Status aggregates every group's status concurrently, each fetch bounded
// by the configured StatusTimeout. Unreachable groups are reported with
// the router's last good snapshot and its age, so the aggregate view
// degrades to staleness — never to absence — while any group is down.
func (r *Router) Status(ctx context.Context) RoutedStatus {
	type fetched struct {
		st  serve.ClusterStatus
		err error
	}
	results := make([]fetched, len(r.groups))
	sem := make(chan struct{}, r.cfg.MaxConcurrent)
	var wg sync.WaitGroup
	for g := range r.groups {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fctx, cancel := context.WithTimeout(ctx, r.cfg.StatusTimeout)
			defer cancel()
			start := time.Now()
			st, err := r.groups[g].Status(fctx)
			r.m.observe(g, start, err)
			results[g] = fetched{st: st, err: err}
		}(g)
	}
	wg.Wait()

	now := time.Now()
	out := RoutedStatus{Groups: len(r.groups), Migrated: r.m.migrations.Load()}
	r.statusMu.Lock()
	for g, f := range results {
		if f.err == nil {
			r.lastStatus[g] = cachedStatus{st: f.st, at: now, ok: true}
		}
	}
	cache := append([]cachedStatus(nil), r.lastStatus...)
	r.statusMu.Unlock()

	for g, f := range results {
		gs := GroupStatus{
			Group: g,
			Name:  r.names[g],
			Nodes: append([]int(nil), r.partition[g]...),
		}
		st, have := f.st, f.err == nil
		switch {
		case f.err == nil:
			gs.Reachable = true
			out.Reachable++
		case cache[g].ok:
			gs.Error = f.err.Error()
			gs.AgeMs = now.Sub(cache[g].at).Milliseconds()
			st, have = cache[g].st, true
		default:
			gs.Error = f.err.Error()
		}
		if have {
			cp := st
			gs.Status = &cp
			out.Policy = st.Policy
			out.Placements += st.Placements
			out.Placed += st.Placed
			out.Rejected += st.Rejected
			out.Removed += st.Removed
			out.Rebalanced += st.Rebalanced
			out.Drained += st.Drained
			out.Canceled += st.Canceled
			out.Unmatched += st.Unmatched
			for i, n := range st.Nodes {
				if i < len(r.partition[g]) {
					n.Node = r.partition[g][i]
				}
				out.Nodes = append(out.Nodes, n)
			}
		}
		out.PerGroup = append(out.PerGroup, gs)
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	return out
}
