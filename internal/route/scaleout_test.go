package route

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
)

// raceEnabled is set by race_enabled_test.go under -race, where the
// throughput gate is meaningless.
var raceEnabled bool

// The scale-out workload: one 8-node fleet, prefilled with prefillSets
// live placements, then hammered with place-batch/remove rounds of
// opBatchSize fresh sets each. Admission cost scales with the committed
// set size the candidate is evaluated against (the canonical digest is an
// O(m log m) sort per evaluation), so sharding the same 8 nodes into 4
// groups cuts each group's committed set — and so each admission — by
// roughly 4x. That is an algorithmic speedup, not parallelism: it holds on
// a single CPU.
const (
	scaleoutNodes = 8
	prefillSets   = 3072
	opBatchSize   = 64
)

// tinySet is the i-th prefill/op set: 100 ms period, sub-0.005% inflated
// utilization, so thousands fit on one node and admission outcome never
// depends on topology.
func tinySet(i int) plan.TaskSet {
	return plan.TaskSet{{PeriodNs: 100_000_000, SliceNs: 100 + int64(i%7)}}
}

// newScaleoutRouter builds a routed fleet of `groups` groups splitting
// scaleoutNodes nodes evenly, prefilled with prefillSets placements.
func newScaleoutRouter(tb testing.TB, groups int) *Router {
	tb.Helper()
	gs := make([]Group, groups)
	for g := range gs {
		c, err := serve.NewCluster(serve.ClusterConfig{
			Spec:  plan.Spec{OverheadNs: 4_600, UtilizationLimit: 0.79},
			Nodes: scaleoutNodes / groups,
		})
		if err != nil {
			tb.Fatalf("NewCluster: %v", err)
		}
		tb.Cleanup(c.Close)
		gs[g] = NewLocalGroup(c)
	}
	r, err := New(gs, Config{})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	items := make([]serve.BatchPlaceItem, prefillSets)
	for i := range items {
		items[i] = serve.BatchPlaceItem{ID: fmt.Sprintf("fill-%d", i), Tasks: tinySet(i)}
	}
	br := r.PlaceBatch(context.Background(), items)
	for i, res := range br.Results {
		if res.Err != nil || !res.Result.Placed {
			tb.Fatalf("prefill %d: placed=%v err=%v", i, res.Result.Placed, res.Err)
		}
	}
	return r
}

// scaleoutRound is one measured unit: place a batch of opBatchSize fresh
// sets through the router, then remove them all, returning the fleet to
// the prefilled state.
func scaleoutRound(tb testing.TB, r *Router, round int) {
	tb.Helper()
	ctx := context.Background()
	items := make([]serve.BatchPlaceItem, opBatchSize)
	for i := range items {
		items[i] = serve.BatchPlaceItem{ID: fmt.Sprintf("op-%d-%d", round, i), Tasks: tinySet(i)}
	}
	br := r.PlaceBatch(ctx, items)
	for i, res := range br.Results {
		if res.Err != nil || !res.Result.Placed {
			tb.Fatalf("round %d item %d: placed=%v err=%v", round, i, res.Result.Placed, res.Err)
		}
	}
	for i := range items {
		if _, _, err := r.Remove(ctx, items[i].ID); err != nil {
			tb.Fatalf("round %d remove %d: %v", round, i, err)
		}
	}
}

func benchmarkRoutedPlace(b *testing.B, groups int) {
	r := newScaleoutRouter(b, groups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scaleoutRound(b, r, i)
	}
}

// BenchmarkRoutedPlaceOneGroup is the monolith baseline: 1x8 nodes behind
// the router (single-group fast path, no splitting).
func BenchmarkRoutedPlaceOneGroup(b *testing.B) { benchmarkRoutedPlace(b, 1) }

// BenchmarkRoutedPlaceFourGroups shards the same 8 nodes 4x2.
func BenchmarkRoutedPlaceFourGroups(b *testing.B) { benchmarkRoutedPlace(b, 4) }

// measureRoutedOpsPerSec times `rounds` scaleout rounds against a fresh
// fleet and returns placements (batch items) per second.
func measureRoutedOpsPerSec(tb testing.TB, groups, rounds int) float64 {
	r := newScaleoutRouter(tb, groups)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		scaleoutRound(tb, r, i)
	}
	elapsed := time.Since(start)
	return float64(rounds*opBatchSize) / elapsed.Seconds()
}

// TestRoutedPlaceScaleoutAtLeast1_8x is the PR's acceptance gate: routed
// place-batch throughput across 4 shard groups must be at least 1.8x a
// single group on the same 8 nodes. The mechanism is algorithmic (smaller
// per-group committed sets make every admission cheaper), so the gate does
// not depend on core count. Best of 3 attempts; skipped where timing is
// not representative (-race, planverify, -short).
func TestRoutedPlaceScaleoutAtLeast1_8x(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under -race")
	}
	if plan.VerifyEnabled {
		t.Skip("timing gate skipped under planverify")
	}
	const want = 1.8
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		one := measureRoutedOpsPerSec(t, 1, 6)
		four := measureRoutedOpsPerSec(t, 4, 6)
		ratio := four / one
		t.Logf("attempt %d: one-group %.0f ops/s, four-group %.0f ops/s, ratio %.2fx",
			attempt, one, four, ratio)
		if ratio > best {
			best = ratio
		}
		if best >= want {
			return
		}
	}
	t.Fatalf("routed place scale-out %.2fx, want >= %.1fx", best, want)
}
