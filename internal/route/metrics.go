package route

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hrtsched/internal/serve"
	"hrtsched/internal/stats"
)

// Latency histogram shape mirrors the serve layer: 10 us resolution over
// [0, 20 ms); the fan-out histogram counts groups touched per batch.
const (
	routeLatLoUs    = 0
	routeLatHiUs    = 20_000
	routeLatBuckets = 2_000
	fanoutMax       = 64
)

// routeMetrics holds the router's counters and histograms; everything is
// sampled lazily by the registry at scrape time.
type routeMetrics struct {
	reqs        []atomic.Int64
	errs        []atomic.Int64
	unreachable []atomic.Int64

	histMu     sync.Mutex
	groupHists []*stats.Histogram
	fanoutHist *stats.Histogram

	// placed counts placements committed through this router (single,
	// batched, and DAG routes) — the routed analogue of the per-group
	// hrtd_cluster_placed_total, so fleet probes work against a router
	// that owns no cluster of its own.
	placed atomic.Int64

	migrations     atomic.Int64
	migrationFails atomic.Int64

	routeMu    sync.Mutex
	routeHists map[string]*stats.Histogram
}

func (m *routeMetrics) init(k int) {
	m.reqs = make([]atomic.Int64, k)
	m.errs = make([]atomic.Int64, k)
	m.unreachable = make([]atomic.Int64, k)
	m.groupHists = make([]*stats.Histogram, k)
	for i := range m.groupHists {
		m.groupHists[i] = stats.NewHistogram(routeLatLoUs, routeLatHiUs, routeLatBuckets)
	}
	m.fanoutHist = stats.NewHistogram(0, fanoutMax, fanoutMax)
	m.routeHists = make(map[string]*stats.Histogram)
}

// observe records one per-group request: count, latency, error class.
func (m *routeMetrics) observe(g int, start time.Time, err error) {
	m.reqs[g].Add(1)
	if err != nil {
		m.errs[g].Add(1)
		if errors.Is(err, ErrGroupUnreachable) {
			m.unreachable[g].Add(1)
		}
	}
	lat := float64(time.Since(start).Nanoseconds()) / 1e3
	m.histMu.Lock()
	m.groupHists[g].Add(lat)
	m.histMu.Unlock()
}

// fanout records how many groups one batch touched.
func (m *routeMetrics) fanout(width int) {
	m.histMu.Lock()
	m.fanoutHist.Add(float64(width))
	m.histMu.Unlock()
}

// observeRoute records one HTTP request's duration on the router mux.
func (m *routeMetrics) observeRoute(route string, d time.Duration) {
	m.routeMu.Lock()
	h, ok := m.routeHists[route]
	if !ok {
		h = stats.NewHistogram(routeLatLoUs, routeLatHiUs, routeLatBuckets)
		m.routeHists[route] = h
	}
	h.Add(float64(d.Nanoseconds()) / 1e3)
	m.routeMu.Unlock()
}

// RegisterMetrics exposes the router's hrtd_route_* families on a registry
// (typically the query Server's, so one /metrics scrape covers the whole
// routed process).
func (r *Router) RegisterMetrics(reg *serve.Registry) {
	m := &r.m
	perGroup := func(vals []atomic.Int64) func() []serve.Sample {
		return func() []serve.Sample {
			out := make([]serve.Sample, len(vals))
			for g := range vals {
				out[g] = serve.Sample{
					Labels: []serve.Label{{Key: "group", Value: fmt.Sprint(g)}},
					Value:  float64(vals[g].Load()),
				}
			}
			return out
		}
	}
	reg.Gauge("hrtd_route_groups", "Number of shard groups behind the router.",
		func() float64 { return float64(len(r.groups)) })
	reg.CounterVec("hrtd_route_requests_total", "Requests fanned to each shard group.",
		perGroup(m.reqs))
	reg.CounterVec("hrtd_route_errors_total", "Failed requests per shard group.",
		perGroup(m.errs))
	reg.CounterVec("hrtd_route_unreachable_total",
		"Requests that failed because the shard group was unreachable.",
		perGroup(m.unreachable))
	reg.Counter("hrtd_route_placed_total", "Placements committed through the router.",
		func() float64 { return float64(m.placed.Load()) })
	reg.Counter("hrtd_route_migrations_total", "Cross-shard migrations committed.",
		func() float64 { return float64(m.migrations.Load()) })
	reg.Counter("hrtd_route_migration_failures_total",
		"Cross-shard migrations attempted but not committed.",
		func() float64 { return float64(m.migrationFails.Load()) })
	reg.Histogram("hrtd_route_group_latency_us",
		"Per-group request latency through the router, microseconds.",
		func() []serve.HistSample {
			m.histMu.Lock()
			defer m.histMu.Unlock()
			out := make([]serve.HistSample, len(m.groupHists))
			for g, h := range m.groupHists {
				out[g] = serve.HistSample{
					Labels: []serve.Label{{Key: "group", Value: fmt.Sprint(g)}},
					H:      h.Clone(),
				}
			}
			return out
		})
	reg.Histogram("hrtd_route_fanout_width",
		"Shard groups touched per routed batch.",
		func() []serve.HistSample {
			m.histMu.Lock()
			defer m.histMu.Unlock()
			return []serve.HistSample{{H: m.fanoutHist.Clone()}}
		})
	reg.Histogram("hrtd_route_http_duration_us",
		"Router mux request duration per route, microseconds.",
		func() []serve.HistSample {
			m.routeMu.Lock()
			defer m.routeMu.Unlock()
			names := make([]string, 0, len(m.routeHists))
			for name := range m.routeHists {
				names = append(names, name)
			}
			sort.Strings(names)
			out := make([]serve.HistSample, 0, len(names))
			for _, name := range names {
				out = append(out, serve.HistSample{
					Labels: []serve.Label{{Key: "route", Value: name}},
					H:      m.routeHists[name].Clone(),
				})
			}
			return out
		})
}
