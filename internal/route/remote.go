package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hrtsched/internal/dag"
	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
	"hrtsched/internal/whatif"
)

// EnvelopeError carries a shard group's v1 error envelope through the
// router verbatim: the HTTP layer re-emits Status, Envelope, and the
// Retry-After header unchanged, so a group's 429/409/404/503 contracts
// survive the extra hop byte-identically.
type EnvelopeError struct {
	Status         int
	Envelope       serve.APIError
	RetryAfterSecs int64
}

// Error implements error.
func (e *EnvelopeError) Error() string {
	return fmt.Sprintf("route: group answered %d %s: %s", e.Status, e.Envelope.Code, e.Envelope.Reason)
}

// Is maps envelope codes back onto the serve sentinels, so router-level
// logic (and callers) can errors.Is a remote group's answer exactly like a
// local one's.
func (e *EnvelopeError) Is(target error) bool {
	switch e.Envelope.Code {
	case "not_found":
		return target == serve.ErrUnknownID || target == serve.ErrUnknownNode
	case "conflict":
		return target == serve.ErrDuplicateID
	case "no_leader":
		return target == serve.ErrNoLeader
	case "indeterminate":
		return target == serve.ErrIndeterminate
	case "unavailable":
		return target == serve.ErrClusterClosed
	}
	return false
}

// statusForCode maps an envelope code to the HTTP status the v1 contract
// pairs it with — used when only the embedded (per-item) envelope is on
// the wire.
func statusForCode(code string) int {
	switch code {
	case "overloaded":
		return http.StatusTooManyRequests
	case "conflict":
		return http.StatusConflict
	case "not_found":
		return http.StatusNotFound
	case "canceled":
		return 499
	case "no_leader", "indeterminate", "unavailable":
		return http.StatusServiceUnavailable
	case "bad_request":
		return http.StatusBadRequest
	case "invalid_dag":
		return http.StatusUnprocessableEntity
	case "method_not_allowed":
		return http.StatusMethodNotAllowed
	default:
		return http.StatusInternalServerError
	}
}

// RemoteGroup speaks the /v1/ HTTP contract to a shard-group daemon. Its
// client follows 307 leader redirects internally (the request body is
// replayable), so a replicated group's follower URL works as the group
// address; when no leader is electable the group's 503 no_leader envelope
// passes through as an EnvelopeError. RemoteGroup does not implement
// Migrator: cross-shard migrations need the evaluate-only probe surface,
// which stays in-process.
type RemoteGroup struct {
	base     string
	client   *http.Client
	nodes    int
	maxBatch int
}

// NewRemoteGroup probes the group daemon's status to learn its node count
// and returns the adapter. The timeout bounds every request to the group,
// including this probe.
func NewRemoteGroup(ctx context.Context, baseURL string, timeout time.Duration) (*RemoteGroup, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	g := &RemoteGroup{
		base:     trimSlash(baseURL),
		client:   &http.Client{Timeout: timeout},
		maxBatch: serve.DefaultMaxBatchItems,
	}
	st, err := g.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("route: probing group %s: %w", baseURL, err)
	}
	g.nodes = len(st.Nodes)
	if g.nodes == 0 {
		return nil, fmt.Errorf("route: group %s reports no nodes", baseURL)
	}
	return g, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// BaseURL returns the group daemon's address.
func (g *RemoteGroup) BaseURL() string { return g.base }

// NodeCount implements Group.
func (g *RemoteGroup) NodeCount() int { return g.nodes }

// MaxBatchItems implements Group. The group's cap is not discoverable
// without tripping it, so the adapter assumes the default; SetMaxBatchItems
// overrides it for groups running a custom cap.
func (g *RemoteGroup) MaxBatchItems() int { return g.maxBatch }

// SetMaxBatchItems overrides the assumed place-batch cap.
func (g *RemoteGroup) SetMaxBatchItems(n int) {
	if n > 0 {
		g.maxBatch = n
	}
}

// do round-trips one JSON request. Transport failures wrap
// ErrGroupUnreachable; protocol errors decode into EnvelopeError.
func (g *RemoteGroup) do(ctx context.Context, method, path string, body, out any) error {
	var req *http.Request
	var err error
	if method == http.MethodGet {
		req, err = http.NewRequestWithContext(ctx, method, g.base+path, nil)
	} else {
		var buf []byte
		buf, err = json.Marshal(body)
		if err == nil {
			req, err = http.NewRequestWithContext(ctx, method, g.base+path, bytes.NewReader(buf))
			if req != nil {
				req.Header.Set("Content-Type", "application/json")
			}
		}
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrGroupUnreachable, err)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrGroupUnreachable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		e := &EnvelopeError{Status: resp.StatusCode}
		if derr := json.NewDecoder(resp.Body).Decode(&e.Envelope); derr != nil || e.Envelope.Code == "" {
			e.Envelope = serve.APIError{Code: "internal",
				Reason: fmt.Sprintf("group answered %d with an undecodable body", resp.StatusCode)}
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.ParseInt(ra, 10, 64); perr == nil {
				e.RetryAfterSecs = secs
			}
		}
		return e
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: decoding %s: %v", ErrGroupUnreachable, path, err)
	}
	return nil
}

type wirePlaceRequest struct {
	ID    string       `json:"id"`
	Tasks plan.TaskSet `json:"tasks"`
}

type wireBatchRequest struct {
	Items []wirePlaceRequest `json:"items"`
}

type wireBatchItem struct {
	ID     string             `json:"id"`
	Result *serve.PlaceResult `json:"result,omitempty"`
	Error  *serve.APIError    `json:"error,omitempty"`
}

type wireIDRequest struct {
	ID string `json:"id"`
}

type wireNodeRequest struct {
	Node int `json:"node"`
}

type wireDAGRequest struct {
	ID       string   `json:"id,omitempty"`
	Task     dag.Task `json:"task"`
	Analyzer string   `json:"analyzer,omitempty"`
}

// Place implements Group.
func (g *RemoteGroup) Place(ctx context.Context, id string, set plan.TaskSet) (serve.PlaceResult, error) {
	var res serve.PlaceResult
	err := g.do(ctx, http.MethodPost, "/v1/cluster/place", wirePlaceRequest{ID: id, Tasks: set}, &res)
	return res, err
}

// PlaceBatch implements Group. A transport failure fails every item with
// the same unreachable error; protocol failures come back per item as
// EnvelopeErrors, exactly as the group embedded them.
func (g *RemoteGroup) PlaceBatch(ctx context.Context, items []serve.BatchPlaceItem) []serve.BatchPlaceResult {
	out := make([]serve.BatchPlaceResult, len(items))
	req := wireBatchRequest{Items: make([]wirePlaceRequest, len(items))}
	for i, it := range items {
		req.Items[i] = wirePlaceRequest{ID: it.ID, Tasks: it.Tasks}
		out[i] = serve.BatchPlaceResult{ID: it.ID, Result: serve.PlaceResult{Node: -1}}
	}
	var resp struct {
		Items []wireBatchItem `json:"items"`
	}
	if err := g.do(ctx, http.MethodPost, "/v1/cluster/place-batch", req, &resp); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i := range out {
		if i >= len(resp.Items) {
			out[i].Err = fmt.Errorf("%w: group answered %d items for %d",
				ErrGroupUnreachable, len(resp.Items), len(items))
			continue
		}
		it := resp.Items[i]
		switch {
		case it.Error != nil:
			out[i].Err = &EnvelopeError{Status: statusForCode(it.Error.Code), Envelope: *it.Error}
		case it.Result != nil:
			out[i].Result = *it.Result
		}
	}
	return out
}

// PlaceDAG implements Group.
func (g *RemoteGroup) PlaceDAG(ctx context.Context, id string, t dag.Task, analyzer string) (serve.DAGPlaceResult, error) {
	var res serve.DAGPlaceResult
	err := g.do(ctx, http.MethodPost, "/v1/dag/place",
		wireDAGRequest{ID: id, Task: t, Analyzer: analyzer}, &res)
	return res, err
}

// AnalyzeDAG implements Group.
func (g *RemoteGroup) AnalyzeDAG(ctx context.Context, t dag.Task, analyzer string) (dag.Result, error) {
	var res dag.Result
	err := g.do(ctx, http.MethodPost, "/v1/dag/analyze",
		wireDAGRequest{Task: t, Analyzer: analyzer}, &res)
	return res, err
}

// Simulate implements Simulator: every remote group daemon serves
// /v1/simulate, so the router can always forward what-if runs here.
func (g *RemoteGroup) Simulate(ctx context.Context, req serve.SimulateRequest) (*whatif.Report, error) {
	var rep whatif.Report
	if err := g.do(ctx, http.MethodPost, "/v1/simulate", req, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Remove implements Group.
func (g *RemoteGroup) Remove(ctx context.Context, id string) (plan.Verdict, error) {
	var resp struct {
		Verdict plan.Verdict `json:"verdict"`
	}
	err := g.do(ctx, http.MethodPost, "/v1/cluster/remove", wireIDRequest{ID: id}, &resp)
	return resp.Verdict, err
}

// Drain implements Group.
func (g *RemoteGroup) Drain(ctx context.Context, localNode int) (serve.DrainReport, error) {
	var rep serve.DrainReport
	err := g.do(ctx, http.MethodPost, "/v1/cluster/drain", wireNodeRequest{Node: localNode}, &rep)
	return rep, err
}

// Undrain implements Group.
func (g *RemoteGroup) Undrain(ctx context.Context, localNode int) error {
	return g.do(ctx, http.MethodPost, "/v1/cluster/undrain", wireNodeRequest{Node: localNode}, nil)
}

// Rebalance implements Group.
func (g *RemoteGroup) Rebalance(ctx context.Context) (int, error) {
	var resp struct {
		Moved int `json:"moved"`
	}
	err := g.do(ctx, http.MethodPost, "/v1/cluster/rebalance", struct{}{}, &resp)
	return resp.Moved, err
}

// Status implements Group.
func (g *RemoteGroup) Status(ctx context.Context) (serve.ClusterStatus, error) {
	var st serve.ClusterStatus
	err := g.do(ctx, http.MethodGet, "/v1/cluster/status", nil, &st)
	return st, err
}
