package route

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hrtsched/internal/dag"
	"hrtsched/internal/plan"
	"hrtsched/internal/serve"
)

// ShardGroupHeader attributes a routed response to the shard group(s) that
// answered it: the owning group index for single-item routes,
// comma-joined per-item indexes for batches.
const ShardGroupHeader = "X-Hrtd-Shard-Group"

type placeRequest struct {
	ID    string       `json:"id"`
	Tasks plan.TaskSet `json:"tasks"`
}

type placeBatchRequest struct {
	Items []placeRequest `json:"items"`
}

type placeBatchItem struct {
	ID     string             `json:"id"`
	Result *serve.PlaceResult `json:"result,omitempty"`
	Error  *serve.APIError    `json:"error,omitempty"`
}

type idRequest struct {
	ID string `json:"id"`
}

type nodeRequest struct {
	Node int `json:"node"`
}

type dagRequest struct {
	ID       string   `json:"id,omitempty"`
	Task     dag.Task `json:"task"`
	Analyzer string   `json:"analyzer,omitempty"`
}

// MaxBatchItems is the router's own batch cap: the largest cap any group
// advertises (the router splits per group, so one group's cap does not
// bound the routed batch).
func (r *Router) MaxBatchItems() int {
	max := 0
	for _, g := range r.groups {
		if n := g.MaxBatchItems(); n > max {
			max = n
		}
	}
	if max < 1 {
		max = serve.DefaultMaxBatchItems
	}
	return max
}

// Handler returns the router's HTTP mux: the /v1/cluster/* and /v1/dag/*
// routes answer through the shard router (every body and error envelope
// byte-identical to the unrouted single-group contract, plus the
// X-Hrtd-Shard-Group attribution header), and every other path — /v1/
// analyze routes, /metrics, /healthz — falls through to next. Each route
// is timed into the hrtd_route_http_duration_us histogram.
func (r *Router) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/place", r.timed("place", r.handlePlace))
	mux.HandleFunc("/v1/cluster/place-batch", r.timed("place-batch", r.handlePlaceBatch))
	mux.HandleFunc("/v1/cluster/remove", r.timed("remove", r.handleRemove))
	mux.HandleFunc("/v1/cluster/drain", r.timed("drain", r.handleDrain))
	mux.HandleFunc("/v1/cluster/undrain", r.timed("undrain", r.handleUndrain))
	mux.HandleFunc("/v1/cluster/rebalance", r.timed("rebalance", r.handleRebalance))
	mux.HandleFunc("/v1/cluster/status", r.timed("status", r.handleStatus))
	mux.HandleFunc("/v1/dag/place", r.timed("dag-place", r.handleDAGPlace))
	mux.HandleFunc("/v1/dag/analyze", r.timed("dag-analyze", r.handleDAGAnalyze))
	mux.HandleFunc("/v1/simulate", r.timed("simulate", r.handleSimulate))
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}

func (r *Router) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		h(w, req)
		r.m.observeRoute(name, time.Since(start))
	}
}

// redirectToLeader mirrors the serve layer's whole-request 307 contract
// for a redirectable NotLeaderError surfacing from a group.
func redirectToLeader(w http.ResponseWriter, req *http.Request, err error) bool {
	var nl *serve.NotLeaderError
	if !errors.As(err, &nl) || nl.LeaderURL == "" {
		return false
	}
	w.Header().Set("Location", strings.TrimSuffix(nl.LeaderURL, "/")+req.URL.Path)
	serve.WriteError(w, http.StatusTemporaryRedirect, "not_leader", err.Error(), 0)
	return true
}

// writeGroupError answers a group's failure with the group's own contract:
// a remote group's envelope passes through verbatim (status, body, and
// Retry-After), a redirectable leadership error becomes the 307 contract,
// an unreachable group becomes 503 unavailable with a retry hint, and
// everything else maps through the standard serve envelope.
func writeGroupError(w http.ResponseWriter, req *http.Request, err error) {
	var env *EnvelopeError
	if errors.As(err, &env) {
		serve.WriteAPIError(w, env.Status, env.Envelope, env.RetryAfterSecs)
		return
	}
	if redirectToLeader(w, req, err) {
		return
	}
	if errors.Is(err, ErrGroupUnreachable) {
		serve.WriteAPIError(w, http.StatusServiceUnavailable,
			serve.APIError{Code: "unavailable", Reason: err.Error(), RetryAfterMs: 1000}, 1)
		return
	}
	serve.WriteQueryError(w, err)
}

func (r *Router) handlePlace(w http.ResponseWriter, req *http.Request) {
	var body placeRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	res, g, err := r.Place(req.Context(), body.ID, body.Tasks)
	if err != nil {
		writeGroupError(w, req, err)
		return
	}
	w.Header().Set(ShardGroupHeader, strconv.Itoa(g))
	serve.WriteJSON(w, http.StatusOK, res)
}

func (r *Router) handlePlaceBatch(w http.ResponseWriter, req *http.Request) {
	var body placeBatchRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	if cap := r.MaxBatchItems(); len(body.Items) > cap {
		serve.WriteError(w, http.StatusBadRequest, "bad_request",
			batchCapReason(len(body.Items), cap), 0)
		return
	}
	items := make([]serve.BatchPlaceItem, len(body.Items))
	for i, it := range body.Items {
		items[i] = serve.BatchPlaceItem{ID: it.ID, Tasks: it.Tasks}
	}
	br := r.PlaceBatch(req.Context(), items)
	out := make([]placeBatchItem, len(br.Results))
	groups := make([]string, len(br.Results))
	for i, res := range br.Results {
		out[i].ID = res.ID
		groups[i] = strconv.Itoa(br.Groups[i])
		if res.Err != nil {
			if redirectToLeader(w, req, res.Err) {
				return
			}
			var env *EnvelopeError
			if errors.As(res.Err, &env) {
				e := env.Envelope
				out[i].Error = &e
				continue
			}
			if errors.Is(res.Err, ErrGroupUnreachable) {
				out[i].Error = &serve.APIError{Code: "unavailable",
					Reason: res.Err.Error(), RetryAfterMs: 1000}
				continue
			}
			_, e, _ := serve.QueryError(res.Err)
			out[i].Error = &e
			continue
		}
		rcopy := res.Result
		out[i].Result = &rcopy
	}
	w.Header().Set(ShardGroupHeader, strings.Join(groups, ","))
	serve.WriteJSON(w, http.StatusOK, map[string]any{"items": out})
}

// batchCapReason formats the over-cap rejection exactly as the serve layer
// does, so routed and unrouted 400 bodies match byte for byte.
func batchCapReason(n, cap int) string {
	return "batch of " + strconv.Itoa(n) + " items exceeds the " + strconv.Itoa(cap) + "-item cap"
}

func (r *Router) handleRemove(w http.ResponseWriter, req *http.Request) {
	var body idRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	v, g, err := r.Remove(req.Context(), body.ID)
	if err != nil {
		writeGroupError(w, req, err)
		return
	}
	w.Header().Set(ShardGroupHeader, strconv.Itoa(g))
	serve.WriteJSON(w, http.StatusOK, map[string]any{"verdict": v})
}

func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	var body nodeRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	// Detached context: a client hangup must not abort a multi-step admin
	// operation (or its cross-shard migrations) halfway through.
	rep, err := r.Drain(context.WithoutCancel(req.Context()), body.Node)
	if err != nil {
		writeGroupError(w, req, err)
		return
	}
	if ref, ok := r.globalNodes[body.Node]; ok {
		w.Header().Set(ShardGroupHeader, strconv.Itoa(ref.group))
	}
	serve.WriteJSON(w, http.StatusOK, rep)
}

func (r *Router) handleUndrain(w http.ResponseWriter, req *http.Request) {
	var body nodeRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	g, err := r.Undrain(req.Context(), body.Node)
	if err != nil {
		writeGroupError(w, req, err)
		return
	}
	w.Header().Set(ShardGroupHeader, strconv.Itoa(g))
	serve.WriteJSON(w, http.StatusOK, map[string]any{"node": body.Node})
}

func (r *Router) handleRebalance(w http.ResponseWriter, req *http.Request) {
	var body struct{}
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	rep, err := r.Rebalance(context.WithoutCancel(req.Context()))
	if err != nil {
		writeGroupError(w, req, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, rep)
}

// handleStatus answers the aggregate fleet view. With one group the
// group's own status body passes through byte-identically (the routed
// aggregate adds nothing a single group doesn't already say); with
// several, the RoutedStatus aggregate carries per-group staleness.
func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", 0)
		return
	}
	if len(r.groups) == 1 {
		st, err := r.groups[0].Status(req.Context())
		if err != nil {
			writeGroupError(w, req, err)
			return
		}
		w.Header().Set(ShardGroupHeader, "0")
		serve.WriteJSON(w, http.StatusOK, st)
		return
	}
	serve.WriteJSON(w, http.StatusOK, r.Status(req.Context()))
}

// handleSimulate forwards a what-if run to a simulation-capable group.
// Validation happens here so malformed scenarios answer 400 without a
// network hop; the serving group re-validates (the normalized scenario is
// forwarded, so the check is idempotent).
func (r *Router) handleSimulate(w http.ResponseWriter, req *http.Request) {
	var body serve.SimulateRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	body.Scenario = body.Scenario.Normalize()
	if err := body.Scenario.Validate(); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "invalid_scenario", err.Error(), 0)
		return
	}
	rep, g, err := r.Simulate(req.Context(), body)
	if err != nil {
		writeGroupError(w, req, err)
		return
	}
	w.Header().Set(ShardGroupHeader, strconv.Itoa(g))
	serve.WriteJSON(w, http.StatusOK, rep)
}

func (r *Router) handleDAGPlace(w http.ResponseWriter, req *http.Request) {
	var body dagRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	if _, err := dag.NewAnalyzer(body.Analyzer); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	res, g, err := r.PlaceDAG(req.Context(), body.ID, body.Task, body.Analyzer)
	if err != nil {
		if !serve.WriteDAGErrorResponse(w, err) {
			writeGroupError(w, req, err)
		}
		return
	}
	w.Header().Set(ShardGroupHeader, strconv.Itoa(g))
	serve.WriteJSON(w, http.StatusOK, res)
}

func (r *Router) handleDAGAnalyze(w http.ResponseWriter, req *http.Request) {
	var body dagRequest
	if !serve.DecodeBody(w, req, &body) {
		return
	}
	if _, err := dag.NewAnalyzer(body.Analyzer); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	res, err := r.AnalyzeDAG(req.Context(), body.Task, body.Analyzer)
	if err != nil {
		if !serve.WriteDAGErrorResponse(w, err) {
			writeGroupError(w, req, err)
		}
		return
	}
	serve.WriteJSON(w, http.StatusOK, res)
}
