package pgas

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/omp"
)

func team(t *testing.T, workers int, seed uint64, cons core.Constraints, sync omp.SyncMode) (*core.Kernel, *omp.Team) {
	t.Helper()
	spec := machine.PhiKNL().Scaled(workers + 1)
	m := machine.New(spec, seed)
	k := core.Boot(m, core.DefaultConfig(spec))
	tm := omp.MustNewTeam(k, omp.Config{Workers: workers, FirstCPU: 1, Constraints: cons, Sync: sync})
	return k, tm
}

func aper() core.Constraints { return core.AperiodicConstraints(50) }

func TestOwnership(t *testing.T) {
	_, tm := team(t, 4, 201, aper(), omp.SyncBarrier)
	blocked := NewArray(tm, 100, Blocked)
	cyclic := NewArray(tm, 100, Cyclic)
	// Blocked ownership matches the team's chunking exactly.
	for i := 0; i < 100; i++ {
		if blocked.Owner(i) != tm.ChunkOf(i, 100) {
			t.Fatalf("blocked owner mismatch at %d", i)
		}
		if cyclic.Owner(i) != i%4 {
			t.Fatalf("cyclic owner mismatch at %d", i)
		}
	}
}

func TestForAllCorrectness(t *testing.T) {
	_, tm := team(t, 4, 202, aper(), omp.SyncBarrier)
	a := NewArray(tm, 97, Blocked)
	a.Fill(func(i int) float64 { return float64(i) })
	if err := ForAll(tm, "double", 97, ByAffinity, []*Array{a},
		func(i int) { a.Set(i, 2*a.At(i)) }, 1<<26); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 97; i++ {
		if a.At(i) != float64(2*i) {
			t.Fatalf("a[%d] = %v", i, a.At(i))
		}
	}
}

func TestAffinityEliminatesRemoteTraffic(t *testing.T) {
	// The UPC claim: affinity-placed loops over a blocked array touch only
	// local elements; chunk-placed loops over a cyclic array mostly touch
	// remote ones.
	_, tm := team(t, 4, 203, aper(), omp.SyncBarrier)
	const n = 400
	blocked := NewArray(tm, n, Blocked)
	if err := ForAll(tm, "local", n, ByAffinity, []*Array{blocked},
		nil, 1<<26); err != nil {
		t.Fatal(err)
	}
	if blocked.Remote != 0 || blocked.Local != n {
		t.Fatalf("affinity loop: local=%d remote=%d", blocked.Local, blocked.Remote)
	}

	cyclic := NewArray(tm, n, Cyclic)
	if err := ForAll(tm, "striped", n, ByChunk, []*Array{cyclic},
		nil, 1<<26); err != nil {
		t.Fatal(err)
	}
	// With 4 workers and cyclic layout, ~3/4 of chunk-placed accesses are
	// remote.
	if cyclic.Remote < n/2 {
		t.Fatalf("cyclic chunk loop: local=%d remote=%d", cyclic.Local, cyclic.Remote)
	}
	if cyclic.Local+cyclic.Remote != n {
		t.Fatalf("access accounting leak: %d+%d != %d", cyclic.Local, cyclic.Remote, n)
	}
}

func TestRemoteTrafficCostsTime(t *testing.T) {
	run := func(dist Distribution) int64 {
		k, tm := team(t, 4, 204, aper(), omp.SyncBarrier)
		a := NewArray(tm, 2000, dist)
		start := k.NowNs()
		for r := 0; r < 5; r++ {
			if err := ForAll(tm, "touch", 2000, ByChunk, []*Array{a}, nil, 1<<26); err != nil {
				t.Fatal(err)
			}
		}
		return k.NowNs() - start
	}
	local := run(Blocked) // chunk placement over blocked data is all-local
	remote := run(Cyclic)
	// Remote access costs RemoteWriteCycles (240) vs LocalFlopCycles (9):
	// the cyclic run must be much slower.
	if remote < 3*local {
		t.Fatalf("remote traffic not penalized: local=%dns remote=%dns", local, remote)
	}
}

func TestPGASUnderGangSchedulingTimed(t *testing.T) {
	// The full stack: UPC-style affinity loops on a gang-scheduled team
	// with barriers removed, with identical results.
	cons := core.PeriodicConstraints(0, 200_000, 170_000)
	_, tm := team(t, 4, 205, cons, omp.SyncTimed)
	const n = 128
	a := NewArray(tm, n, Blocked)
	a.Fill(func(i int) float64 { return 1 })
	for r := 0; r < 10; r++ {
		if err := ForAll(tm, "acc", n, ByAffinity, []*Array{a},
			func(i int) { a.Set(i, a.At(i)+1) }, 1<<27); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if a.At(i) != 11 {
			t.Fatalf("a[%d] = %v, want 11", i, a.At(i))
		}
	}
	if a.Remote != 0 {
		t.Fatalf("affinity loop produced %d remote accesses", a.Remote)
	}
	for _, th := range tm.Group().Members() {
		if th.Misses > 0 {
			t.Fatalf("gang member missed %d deadlines", th.Misses)
		}
	}
}

func TestForAllRejectsNegative(t *testing.T) {
	_, tm := team(t, 2, 206, aper(), omp.SyncBarrier)
	if err := ForAll(tm, "bad", -1, ByChunk, nil, nil, 1<<20); err == nil {
		t.Fatalf("negative n accepted")
	}
}
