// Package pgas is a miniature UPC-like partitioned-global-address-space
// run-time — the third run-time the paper lists as ported to the HRT
// environment ("ports of Legion, NESL, NDPC, UPC (partial), OpenMP
// (partial), and Racket have run in HRT form", Section 2). Shared arrays
// are partitioned across the team's CPUs with explicit affinity; accesses
// to another CPU's partition cost more (the machine's remote-write
// latency), and upc_forall-style affinity placement turns remote traffic
// into local traffic.
//
// Operations execute as parallel-for regions on an omp.Team, so PGAS
// programs inherit the team's scheduling regime — including gang-scheduled
// hard real-time with barriers removed.
package pgas

import (
	"fmt"

	"hrtsched/internal/omp"
)

// Distribution places array elements onto team workers.
type Distribution uint8

const (
	// Blocked gives each worker one contiguous block, aligned with the
	// team's static parallel-for partition — affinity-placed loops touch
	// only local elements.
	Blocked Distribution = iota
	// Cyclic deals elements round-robin (UPC's default layout for shared
	// scalars): element i lives with worker i %% W.
	Cyclic
)

// Array is a shared array partitioned across the team.
type Array struct {
	team *omp.Team
	dist Distribution
	data []float64

	// Access accounting (updated when accesses are charged via CostOf
	// inside team regions).
	Local  int64
	Remote int64
}

// NewArray allocates a shared array of n elements with the distribution.
func NewArray(team *omp.Team, n int, dist Distribution) *Array {
	return &Array{team: team, dist: dist, data: make([]float64, n)}
}

// Len returns the element count.
func (a *Array) Len() int { return len(a.data) }

// Owner returns the worker whose partition holds element i.
func (a *Array) Owner(i int) int {
	switch a.dist {
	case Cyclic:
		return i % a.team.Workers()
	default:
		return a.team.ChunkOf(i, len(a.data))
	}
}

// At reads element i (cost must be charged by the enclosing region).
func (a *Array) At(i int) float64 { return a.data[i] }

// Set writes element i (cost must be charged by the enclosing region).
func (a *Array) Set(i int, v float64) { a.data[i] = v }

// Fill initializes every element (host-side setup, not charged).
func (a *Array) Fill(f func(i int) float64) {
	for i := range a.data {
		a.data[i] = f(i)
	}
}

// accessCost returns the cycle cost of worker w touching element i, and
// records the locality.
func (a *Array) accessCost(w, i int) int64 {
	spec := a.team.Spec()
	if a.Owner(i) == w {
		a.Local++
		return spec.LocalFlopCycles
	}
	a.Remote++
	return spec.RemoteWriteCycles
}

// Placement selects where forall iterations execute.
type Placement uint8

const (
	// ByAffinity runs iteration i on the worker owning affinity element i
	// — upc_forall(...; &a[i]). Only meaningful when the affinity array's
	// distribution matches the team partition (Blocked); for other layouts
	// the run-time falls back to chunk placement and charges remote costs
	// honestly.
	ByAffinity Placement = iota
	// ByChunk runs iterations in plain static-chunk order regardless of
	// data placement — upc_forall(...; continue).
	ByChunk
)

// ForAll runs body(i) for every i in [0, n) on the team, charging each
// iteration the access costs of the arrays it declares it touches.
// Returns after every worker finished the region.
func ForAll(team *omp.Team, name string, n int, placement Placement,
	touches []*Array, body func(i int), maxEvents uint64) error {
	if n < 0 {
		return fmt.Errorf("pgas: negative iteration count")
	}
	costFn := func(i int) int64 {
		w := team.ChunkOf(i, n)
		var c int64 = 1
		for _, arr := range touches {
			if placement == ByAffinity && arr.dist == Blocked && arr.Len() == n {
				// Affinity placement on an aligned blocked array: the
				// iteration executes where the data lives.
				c += arr.accessCostAtOwner(i)
				continue
			}
			c += arr.accessCost(w, i)
		}
		return c
	}
	target := team.Completed() + 1
	team.Submit(omp.Region{Name: name, Iterations: n, CostFn: costFn, Body: body})
	if !team.Wait(target, maxEvents) {
		return fmt.Errorf("pgas: forall %q stalled", name)
	}
	return nil
}

// accessCostAtOwner charges a guaranteed-local access.
func (a *Array) accessCostAtOwner(i int) int64 {
	a.Local++
	return a.team.Spec().LocalFlopCycles
}

// Stats returns (local, remote) access counts across the given arrays.
func Stats(arrays ...*Array) (local, remote int64) {
	for _, a := range arrays {
		local += a.Local
		remote += a.Remote
	}
	return
}
