package scope

import (
	"strings"
	"testing"

	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// mkSquareWave writes a square wave on pin 0: period/width in cycles, n
// pulses, with per-edge jitter supplied by jitterFn.
func mkSquareWave(m *machine.Machine, pin uint, period, width int64, n int, jitter func(i int) int64) {
	at := sim.Time(1000)
	for i := 0; i < n; i++ {
		j := jitter(i)
		rise := at + sim.Time(j)
		fall := rise + sim.Time(width)
		p := pin
		m.Eng.Schedule(rise, sim.Hard, func(sim.Time) { m.GPIO.SetPin(p, true) })
		m.Eng.Schedule(fall, sim.Hard, func(sim.Time) { m.GPIO.SetPin(p, false) })
		at += sim.Time(period)
	}
	m.Eng.RunAll(uint64(4*n + 4))
}

func TestAnalyzeCleanWave(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(1), 1)
	// 130,000-cycle period (100 us), 50% duty.
	mkSquareWave(m, 0, 130_000, 65_000, 50, func(int) int64 { return 0 })
	tr := Analyze(m, 0, "clean")
	if len(tr.Pulses) != 50 {
		t.Fatalf("pulses = %d", len(tr.Pulses))
	}
	if p := tr.Period.Mean(); p < 99_999 || p > 100_001 {
		t.Fatalf("period mean %f ns, want 100000", p)
	}
	if tr.Period.Std() > 1 {
		t.Fatalf("clean wave has period fuzz %f", tr.Period.Std())
	}
	if tr.DutyPct < 49 || tr.DutyPct > 51 {
		t.Fatalf("duty = %f", tr.DutyPct)
	}
	if tr.Sharpness() < 1000 {
		t.Fatalf("clean wave not sharp: %f", tr.Sharpness())
	}
}

func TestAnalyzeJitteryWave(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(1), 2)
	rng := sim.NewRand(3)
	mkSquareWave(m, 0, 130_000, 65_000, 200, func(int) int64 {
		return rng.Range(-6_000, 6_000)
	})
	tr := Analyze(m, 0, "fuzzy")
	if tr.FuzzNs() < 1_000 {
		t.Fatalf("jittery wave reported as sharp: fuzz %f ns", tr.FuzzNs())
	}
	if tr.Sharpness() > 100 {
		t.Fatalf("sharpness %f too high for a jittery wave", tr.Sharpness())
	}
}

func TestPersistenceRendering(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(1), 4)
	mkSquareWave(m, 0, 130_000, 65_000, 40, func(int) int64 { return 0 })
	tr := Analyze(m, 0, "clean")
	out := tr.RenderPersistence(80)
	if !strings.Contains(out, "#") {
		t.Fatalf("clean wave should render solid '#' columns:\n%s", out)
	}
	// A clean 50% wave: roughly half the columns solid.
	solid := strings.Count(out, "#")
	if solid < 30 || solid > 50 {
		t.Fatalf("solid columns = %d of 80", solid)
	}

	m2 := machine.New(machine.PhiKNL().Scaled(1), 5)
	rng := sim.NewRand(6)
	mkSquareWave(m2, 0, 130_000, 65_000, 200, func(int) int64 {
		return rng.Range(-8_000, 8_000)
	})
	fz := Analyze(m2, 0, "fuzzy").RenderPersistence(80)
	if !strings.Contains(fz, ".") {
		t.Fatalf("fuzzy wave should render '.' fringe columns:\n%s", fz)
	}
}

func TestAnalyzeEmptyPin(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(1), 7)
	tr := Analyze(m, 3, "idle")
	if len(tr.Pulses) != 0 || tr.Sharpness() != 0 {
		t.Fatalf("idle pin produced pulses")
	}
	if tr.RenderPersistence(40) != "(insufficient pulses)\n" {
		t.Fatalf("empty render wrong")
	}
	if !strings.Contains(tr.String(), "idle") {
		t.Fatalf("String() missing label")
	}
}

func TestMultiPinIndependence(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(1), 8)
	// Interleave two waves on different pins via direct writes.
	g := m.GPIO
	for i := 0; i < 10; i++ {
		at := sim.Time(1000 + i*10_000)
		m.Eng.Schedule(at, sim.Hard, func(sim.Time) { g.SetPin(0, true) })
		m.Eng.Schedule(at+2_000, sim.Hard, func(sim.Time) { g.SetPin(1, true) })
		m.Eng.Schedule(at+4_000, sim.Hard, func(sim.Time) { g.SetPin(0, false) })
		m.Eng.Schedule(at+8_500, sim.Hard, func(sim.Time) { g.SetPin(1, false) })
	}
	m.Eng.RunAll(100)
	t0 := Analyze(m, 0, "p0")
	t1 := Analyze(m, 1, "p1")
	if len(t0.Pulses) != 10 || len(t1.Pulses) != 10 {
		t.Fatalf("pulses: %d/%d", len(t0.Pulses), len(t1.Pulses))
	}
	if t0.Width.Mean() >= t1.Width.Mean() {
		t.Fatalf("pin widths confused: %f vs %f", t0.Width.Mean(), t1.Width.Mean())
	}
}
