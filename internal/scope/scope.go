// Package scope is the simulation's stand-in for the paper's external
// verification rig (Section 5.2): a parallel-port GPIO monitored by an
// oscilloscope. It analyzes recorded pin transitions in true wall-clock
// time — jitter that software self-measurement could hide is visible here.
// The paper's qualitative evidence (Figure 4) is that the test thread's
// trace stays "sharp" while the scheduler and interrupt traces are "fuzzy";
// quantitatively that is: period jitter of the thread pin is tiny compared
// to the width jitter of the scheduler pins.
package scope

import (
	"fmt"
	"strings"

	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// Pulse is one high interval of a pin.
type Pulse struct {
	StartNs int64
	WidthNs int64
}

// Trace is the analysis of a single pin.
type Trace struct {
	Pin     uint
	Label   string
	Pulses  []Pulse
	Period  stats.Summary // rising-edge to rising-edge
	Width   stats.Summary // high time
	DutyPct float64
}

// Analyze extracts a Trace for a pin from the machine's GPIO recording.
func Analyze(m *machine.Machine, pin uint, label string) *Trace {
	edges := m.GPIO.PinEdges(pin)
	tr := &Trace{Pin: pin, Label: label}
	var lastRise int64 = -1
	var prevRise int64 = -1
	var highNs, spanFirst, spanLast int64
	toNs := func(t sim.Time) int64 { return m.Spec.CyclesToNanos(t) }
	for _, e := range edges {
		at := toNs(e.At)
		if e.High {
			if prevRise >= 0 {
				tr.Period.Add(float64(at - prevRise))
			}
			prevRise = at
			lastRise = at
			if spanFirst == 0 {
				spanFirst = at
			}
		} else if lastRise >= 0 {
			w := at - lastRise
			tr.Pulses = append(tr.Pulses, Pulse{StartNs: lastRise, WidthNs: w})
			tr.Width.Add(float64(w))
			highNs += w
			spanLast = at
			lastRise = -1
		}
	}
	if spanLast > spanFirst {
		tr.DutyPct = 100 * float64(highNs) / float64(spanLast-spanFirst)
	}
	return tr
}

// FuzzNs is the trace's deviation from perfectly regular behaviour: the
// standard deviation of its period. A hard real-time thread trace should
// have a fuzz of well under one scheduler quantum; handler traces will not.
func (t *Trace) FuzzNs() float64 { return t.Period.Std() }

// Sharpness is the ratio of mean period to period jitter; higher is
// sharper. Returns 0 with insufficient pulses.
func (t *Trace) Sharpness() float64 {
	if t.Period.N() < 2 || t.Period.Std() == 0 {
		if t.Period.N() >= 2 {
			return 1e12 // perfectly sharp within measurement resolution
		}
		return 0
	}
	return t.Period.Mean() / t.Period.Std()
}

// String summarizes the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("pin%d %-12s pulses=%-6d period=%.2fus (fuzz %.3fus) width=%.2fus (fuzz %.3fus) duty=%.1f%%",
		t.Pin, t.Label, len(t.Pulses),
		t.Period.Mean()/1000, t.Period.Std()/1000,
		t.Width.Mean()/1000, t.Width.Std()/1000, t.DutyPct)
}

// RenderPersistence draws an ASCII persistence view of the trace around
// the pulse cycle: each pulse is folded onto [0, period) and its high
// interval marked; columns hit by every pulse print '#' (sharp), columns
// hit only sometimes print '.' (fuzz) — the textual analogue of trace
// persistence on the paper's oscilloscope.
func (t *Trace) RenderPersistence(cols int) string {
	if len(t.Pulses) < 2 || t.Period.Mean() <= 0 {
		return "(insufficient pulses)\n"
	}
	period := t.Period.Mean()
	base := t.Pulses[0].StartNs
	hits := make([]int, cols)
	n := 0
	for _, p := range t.Pulses {
		phase := float64((p.StartNs-base)%int64(period)) / period
		start := int(phase * float64(cols))
		width := int(float64(p.WidthNs) / period * float64(cols))
		if width < 1 {
			width = 1
		}
		for c := 0; c < width; c++ {
			hits[(start+c)%cols]++
		}
		n++
	}
	var b strings.Builder
	for _, h := range hits {
		switch {
		case h == n:
			b.WriteByte('#')
		case h > 0:
			b.WriteByte('.')
		default:
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	return b.String()
}
