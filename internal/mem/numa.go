package mem

import "fmt"

// NUMA is the zone-selected allocation layer: one buddy allocator per NUMA
// zone, with allocations placed explicitly by target zone — for threads
// bound to specific CPUs, "essential thread and scheduler state is
// guaranteed to always be in the most desirable zone" (Section 2).
type NUMA struct {
	zones []*Zone
	// cpuZone maps each CPU to its nearest zone.
	cpuZone []int
}

// NewNUMA builds a NUMA layout. cpuZone[i] gives the zone index nearest to
// CPU i.
func NewNUMA(zones []*Zone, cpuZone []int) (*NUMA, error) {
	if len(zones) == 0 {
		return nil, fmt.Errorf("%w: no zones", ErrBadRequest)
	}
	for cpu, zi := range cpuZone {
		if zi < 0 || zi >= len(zones) {
			return nil, fmt.Errorf("%w: CPU %d maps to zone %d of %d",
				ErrBadRequest, cpu, zi, len(zones))
		}
	}
	return &NUMA{zones: zones, cpuZone: cpuZone}, nil
}

// PhiLayout models the Xeon Phi 7210's two-tier memory: 16 GB of MCDRAM
// tightly coupled to the cores and 96 GB of conventional DRAM. Every CPU's
// preferred zone is MCDRAM.
func PhiLayout(ncpus int) (*NUMA, error) {
	mcdram, err := NewZone("mcdram", 16<<30, 16<<30, 4096)
	if err != nil {
		return nil, err
	}
	dram, err := NewZone("dram", 128<<30, 128<<30, 4096)
	if err != nil {
		return nil, err
	}
	cpuZone := make([]int, ncpus)
	return NewNUMA([]*Zone{mcdram, dram}, cpuZone)
}

// Zones returns the zones.
func (n *NUMA) Zones() []*Zone { return n.zones }

// Zone returns zone i.
func (n *NUMA) Zone(i int) *Zone { return n.zones[i] }

// ZoneFor returns the zone index nearest to cpu.
func (n *NUMA) ZoneFor(cpu int) int {
	if cpu < 0 || cpu >= len(n.cpuZone) {
		return 0
	}
	return n.cpuZone[cpu]
}

// AllocOn allocates size bytes from the given zone only; it fails rather
// than silently falling back, keeping placement explicit.
func (n *NUMA) AllocOn(zone int, size uint64) (uint64, error) {
	if zone < 0 || zone >= len(n.zones) {
		return 0, fmt.Errorf("%w: zone %d", ErrBadRequest, zone)
	}
	return n.zones[zone].Alloc(size)
}

// AllocNear allocates from the zone nearest to cpu, falling back to other
// zones in index order only if the preferred zone is exhausted (explicit
// spill, as a kernel would do for non-essential state).
func (n *NUMA) AllocNear(cpu int, size uint64) (uint64, int, error) {
	pref := n.ZoneFor(cpu)
	if addr, err := n.zones[pref].Alloc(size); err == nil {
		return addr, pref, nil
	}
	for i, z := range n.zones {
		if i == pref {
			continue
		}
		if addr, err := z.Alloc(size); err == nil {
			return addr, i, nil
		}
	}
	return 0, -1, fmt.Errorf("%w: %d bytes near CPU %d", ErrOutOfMemory, size, cpu)
}

// Free releases an address by locating its owning zone.
func (n *NUMA) Free(addr uint64) error {
	for _, z := range n.zones {
		if addr >= z.base && addr < z.base+z.size {
			return z.Free(addr)
		}
	}
	return fmt.Errorf("%w: %#x in no zone", ErrBadFree, addr)
}
