package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"hrtsched/internal/sim"
)

func mkZone(t *testing.T, size, minBlock uint64) *Zone {
	t.Helper()
	z, err := NewZone("test", 0, size, minBlock)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestAllocFreeRoundtrip(t *testing.T) {
	z := mkZone(t, 1<<20, 64)
	addr, err := z.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if z.BlockSize(addr) != 1024 {
		t.Fatalf("block size = %d, want 1024 (rounded up)", z.BlockSize(addr))
	}
	if err := z.Free(addr); err != nil {
		t.Fatal(err)
	}
	if z.BytesAllocated != 0 {
		t.Fatalf("bytes allocated = %d after free", z.BytesAllocated)
	}
	// Full coalescing: the next max-size alloc must succeed.
	if _, err := z.Alloc(1 << 20); err != nil {
		t.Fatalf("zone did not coalesce back to full: %v", err)
	}
}

func TestAllocAlignment(t *testing.T) {
	z := mkZone(t, 1<<16, 64)
	for _, n := range []uint64{1, 64, 65, 100, 128, 4096, 5000} {
		addr, err := z.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		size := z.BlockSize(addr)
		if size < n {
			t.Fatalf("block %d smaller than request %d", size, n)
		}
		if addr%size != 0 {
			t.Fatalf("addr %#x not aligned to block size %d", addr, size)
		}
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	z := mkZone(t, 1<<12, 64) // 4 KiB, 64 blocks of 64 B
	var addrs []uint64
	for {
		a, err := z.Alloc(64)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("wrong error: %v", err)
			}
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) != 64 {
		t.Fatalf("allocated %d blocks of 64, want 64", len(addrs))
	}
	for _, a := range addrs {
		if err := z.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := z.Alloc(1 << 12); err != nil {
		t.Fatalf("not fully coalesced after freeing everything: %v", err)
	}
}

func TestBadFrees(t *testing.T) {
	z := mkZone(t, 1<<16, 64)
	addr, _ := z.Alloc(128)
	if err := z.Free(addr + 64); err == nil {
		t.Fatalf("interior free accepted")
	}
	if err := z.Free(1 << 30); err == nil {
		t.Fatalf("out-of-zone free accepted")
	}
	if err := z.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(addr); err == nil {
		t.Fatalf("double free accepted")
	}
}

func TestDeterministicBoundedPathLength(t *testing.T) {
	// The hard real-time property: no operation ever takes more steps than
	// the zone has levels.
	z := mkZone(t, 1<<24, 64)
	rng := sim.NewRand(5)
	var live []uint64
	for i := 0; i < 20000; i++ {
		if len(live) == 0 || (rng.Float64() < 0.55 && len(live) < 4000) {
			n := uint64(rng.Range(1, 64*1024))
			if a, err := z.Alloc(n); err == nil {
				live = append(live, a)
			}
		} else {
			k := rng.Intn(len(live))
			if err := z.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if z.WorstPathSteps > int64(z.Levels()) {
		t.Fatalf("path length %d exceeds level bound %d", z.WorstPathSteps, z.Levels())
	}
	if z.Allocs < 8000 {
		t.Fatalf("allocs = %d", z.Allocs)
	}
}

// Property: after any interleaving of allocs and frees, free blocks and
// live allocations tile the zone exactly with no overlap.
func TestPropertyZoneInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		z, err := NewZone("p", 0, 1<<16, 64)
		if err != nil {
			return false
		}
		var live []uint64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				n := uint64(op%2048) + 1
				if a, aerr := z.Alloc(n); aerr == nil {
					live = append(live, a)
				}
			} else {
				k := int(op) % len(live)
				if z.Free(live[k]) != nil {
					return false
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if z.CheckInvariants() != nil {
				return false
			}
		}
		for _, a := range live {
			if z.Free(a) != nil {
				return false
			}
		}
		return z.CheckInvariants() == nil && z.BytesAllocated == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestZoneConstructionValidation(t *testing.T) {
	for _, c := range []struct{ base, size, min uint64 }{
		{0, 1000, 64},      // size not power of two
		{0, 1 << 12, 48},   // min not power of two
		{0, 64, 128},       // min > size
		{100, 1 << 12, 64}, // base misaligned
	} {
		if _, err := NewZone("bad", c.base, c.size, c.min); err == nil {
			t.Fatalf("accepted bad zone %+v", c)
		}
	}
}

func TestNUMAPlacement(t *testing.T) {
	n, err := PhiLayout(8)
	if err != nil {
		t.Fatal(err)
	}
	addr, zone, err := n.AllocNear(3, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if zone != 0 || n.Zone(0).Name() != "mcdram" {
		t.Fatalf("near allocation not in MCDRAM (zone %d)", zone)
	}
	if err := n.Free(addr); err != nil {
		t.Fatal(err)
	}
	// Explicit placement on DRAM.
	a2, err := n.AllocOn(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n.Zone(1).BytesAllocated != 1<<20 {
		t.Fatalf("DRAM accounting wrong")
	}
	if err := n.Free(a2); err != nil {
		t.Fatal(err)
	}
}

func TestNUMASpill(t *testing.T) {
	small, _ := NewZone("near", 0, 1<<12, 64)
	big, _ := NewZone("far", 1<<20, 1<<20, 64)
	n, err := NewNUMA([]*Zone{small, big}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the near zone.
	if _, _, err := n.AllocNear(0, 1<<12); err != nil {
		t.Fatal(err)
	}
	// Next near allocation must spill to the far zone.
	_, zone, err := n.AllocNear(0, 1<<12)
	if err != nil || zone != 1 {
		t.Fatalf("spill failed: zone=%d err=%v", zone, err)
	}
	// AllocOn never spills.
	if _, err := n.AllocOn(0, 64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("AllocOn spilled or wrong error: %v", err)
	}
}
