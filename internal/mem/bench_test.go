package mem

import (
	"testing"

	"hrtsched/internal/sim"
)

// BenchmarkAllocFree measures the buddy allocator's steady-state alloc/free
// pair — the path every thread spawn/exit takes.
func BenchmarkAllocFree(b *testing.B) {
	z, err := NewZone("bench", 0, 1<<30, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := z.Alloc(32 << 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := z.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocChurn measures mixed-size churn with a standing population.
func BenchmarkAllocChurn(b *testing.B) {
	z, err := NewZone("bench", 0, 1<<30, 4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRand(3)
	live := make([]uint64, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) < 512 || rng.Float64() < 0.5 {
			if a, err := z.Alloc(uint64(rng.Range(1, 64<<10))); err == nil {
				live = append(live, a)
				continue
			}
		}
		k := rng.Intn(len(live))
		_ = z.Free(live[k])
		live[k] = live[len(live)-1]
		live = live[:len(live)-1]
	}
}
