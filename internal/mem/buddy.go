// Package mem reproduces the memory-management substrate Nautilus builds
// its predictability on (Section 2): all memory management is explicit,
// and allocations are done with buddy-system allocators selected by target
// NUMA zone. The property that matters for a hard real-time kernel is that
// every allocator operation has a deterministic, bounded path length — at
// most one split/merge step per order level — which this implementation
// makes observable through per-operation step counters.
package mem

import (
	"errors"
	"fmt"
	"math/bits"
)

// Errors returned by the allocator.
var (
	ErrOutOfMemory = errors.New("mem: zone exhausted")
	ErrBadFree     = errors.New("mem: freeing unallocated or misaligned address")
	ErrBadRequest  = errors.New("mem: malformed request")
)

// Zone is one contiguous physical region managed by a buddy allocator.
type Zone struct {
	name     string
	base     uint64
	size     uint64
	minOrder uint // log2 of the smallest block
	maxOrder uint // log2 of the whole zone

	// free[o] holds offsets of free blocks of order o (LIFO).
	free [][]uint64
	// allocated maps offset -> order for live allocations.
	allocated map[uint64]uint

	// Statistics.
	Allocs, Frees  int64
	SplitSteps     int64
	MergeSteps     int64
	WorstPathSteps int64
	BytesAllocated uint64
	PeakAllocated  uint64
	FailedAllocs   int64
}

// NewZone creates a zone of the given size (a power of two) starting at
// base, with the given minimum block size (also a power of two).
func NewZone(name string, base, size, minBlock uint64) (*Zone, error) {
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("%w: zone size %d not a power of two", ErrBadRequest, size)
	}
	if minBlock == 0 || minBlock&(minBlock-1) != 0 || minBlock > size {
		return nil, fmt.Errorf("%w: min block %d", ErrBadRequest, minBlock)
	}
	if base%size != 0 {
		return nil, fmt.Errorf("%w: base %d not aligned to zone size", ErrBadRequest, base)
	}
	z := &Zone{
		name:      name,
		base:      base,
		size:      size,
		minOrder:  uint(bits.TrailingZeros64(minBlock)),
		maxOrder:  uint(bits.TrailingZeros64(size)),
		allocated: map[uint64]uint{},
	}
	z.free = make([][]uint64, z.maxOrder+1)
	z.free[z.maxOrder] = []uint64{0}
	return z, nil
}

// Name returns the zone name.
func (z *Zone) Name() string { return z.name }

// Size returns the zone size in bytes.
func (z *Zone) Size() uint64 { return z.size }

// FreeBytes returns the total free space.
func (z *Zone) FreeBytes() uint64 { return z.size - z.BytesAllocated }

// Levels returns the number of order levels — the hard bound on any
// operation's path length.
func (z *Zone) Levels() int { return int(z.maxOrder - z.minOrder + 1) }

// orderFor returns the smallest order whose block fits n bytes.
func (z *Zone) orderFor(n uint64) uint {
	if n == 0 {
		n = 1
	}
	o := uint(64 - bits.LeadingZeros64(n-1))
	if n&(n-1) == 0 {
		o = uint(bits.TrailingZeros64(n))
	}
	if o < z.minOrder {
		o = z.minOrder
	}
	return o
}

// Alloc returns the address of a block of at least n bytes. The number of
// list operations is bounded by the zone's level count.
func (z *Zone) Alloc(n uint64) (uint64, error) {
	if n == 0 || n > z.size {
		z.FailedAllocs++
		return 0, fmt.Errorf("%w: %d bytes from %q", ErrBadRequest, n, z.name)
	}
	want := z.orderFor(n)
	if want > z.maxOrder {
		z.FailedAllocs++
		return 0, fmt.Errorf("%w: %d bytes from %q", ErrOutOfMemory, n, z.name)
	}
	// Find the smallest populated order >= want.
	o := want
	for o <= z.maxOrder && len(z.free[o]) == 0 {
		o++
	}
	if o > z.maxOrder {
		z.FailedAllocs++
		return 0, fmt.Errorf("%w: %d bytes from %q", ErrOutOfMemory, n, z.name)
	}
	// Pop and split down to the wanted order.
	off := z.free[o][len(z.free[o])-1]
	z.free[o] = z.free[o][:len(z.free[o])-1]
	steps := int64(0)
	for o > want {
		o--
		steps++
		buddy := off + (uint64(1) << o)
		z.free[o] = append(z.free[o], buddy)
	}
	z.SplitSteps += steps
	if steps > z.WorstPathSteps {
		z.WorstPathSteps = steps
	}
	z.allocated[off] = want
	z.Allocs++
	z.BytesAllocated += uint64(1) << want
	if z.BytesAllocated > z.PeakAllocated {
		z.PeakAllocated = z.BytesAllocated
	}
	return z.base + off, nil
}

// Free releases a previously allocated address, coalescing buddies. The
// number of merge steps is bounded by the zone's level count.
func (z *Zone) Free(addr uint64) error {
	if addr < z.base || addr >= z.base+z.size {
		return fmt.Errorf("%w: %#x outside zone %q", ErrBadFree, addr, z.name)
	}
	off := addr - z.base
	order, ok := z.allocated[off]
	if !ok {
		return fmt.Errorf("%w: %#x in zone %q", ErrBadFree, addr, z.name)
	}
	delete(z.allocated, off)
	z.BytesAllocated -= uint64(1) << order
	z.Frees++

	steps := int64(0)
	for order < z.maxOrder {
		buddy := off ^ (uint64(1) << order)
		// The buddy must be free at exactly this order to coalesce.
		idx := -1
		for i, b := range z.free[order] {
			if b == buddy {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		last := len(z.free[order]) - 1
		z.free[order][idx] = z.free[order][last]
		z.free[order] = z.free[order][:last]
		if buddy < off {
			off = buddy
		}
		order++
		steps++
	}
	z.MergeSteps += steps
	if steps > z.WorstPathSteps {
		z.WorstPathSteps = steps
	}
	z.free[order] = append(z.free[order], off)
	return nil
}

// BlockSize returns the usable size of the block at addr, or 0 if addr is
// not a live allocation.
func (z *Zone) BlockSize(addr uint64) uint64 {
	if o, ok := z.allocated[addr-z.base]; ok {
		return uint64(1) << o
	}
	return 0
}

// CheckInvariants verifies the zone's structural invariants: free blocks
// and live allocations tile the zone exactly, without overlap. Intended
// for tests.
func (z *Zone) CheckInvariants() error {
	covered := uint64(0)
	type span struct{ off, size uint64 }
	var spans []span
	for o, list := range z.free {
		for _, off := range list {
			spans = append(spans, span{off, uint64(1) << uint(o)})
		}
	}
	for off, o := range z.allocated {
		spans = append(spans, span{off, uint64(1) << o})
	}
	seen := map[uint64]bool{}
	for _, s := range spans {
		if s.off%s.size != 0 {
			return fmt.Errorf("mem: block %#x misaligned for size %d", s.off, s.size)
		}
		for b := s.off; b < s.off+s.size; b += uint64(1) << z.minOrder {
			if seen[b] {
				return fmt.Errorf("mem: overlap at offset %#x", b)
			}
			seen[b] = true
		}
		covered += s.size
	}
	if covered != z.size {
		return fmt.Errorf("mem: coverage %d of %d bytes", covered, z.size)
	}
	return nil
}
