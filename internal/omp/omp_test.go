package omp

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func boot(t *testing.T, ncpus int, seed uint64) *core.Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	return core.Boot(m, core.DefaultConfig(spec))
}

func TestParallelForCoversAllIterations(t *testing.T) {
	k := boot(t, 5, 141)
	team := MustNewTeam(k, Config{Workers: 4, FirstCPU: 1,
		Constraints: core.AperiodicConstraints(50), Sync: SyncBarrier})
	const n = 103 // not divisible by 4: exercises remainder chunking
	counts := make([]int, n)
	team.Submit(Region{Name: "r1", Iterations: n, CostPerIter: 500,
		Body: func(i int) { counts[i]++ }})
	if !team.Wait(1, 1<<24) {
		t.Fatalf("region did not complete")
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}
	if team.IterationsRun != n || team.ChunksRun != 4 {
		t.Fatalf("iterations=%d chunks=%d", team.IterationsRun, team.ChunksRun)
	}
}

func TestMultipleRegionsInOrder(t *testing.T) {
	k := boot(t, 3, 142)
	team := MustNewTeam(k, Config{Workers: 2, FirstCPU: 1,
		Constraints: core.AperiodicConstraints(50), Sync: SyncBarrier})
	var sum1, sum2 int
	team.Submit(Region{Name: "a", Iterations: 10, CostPerIter: 1000,
		Body: func(i int) { sum1 += i }})
	team.Submit(Region{Name: "b", Iterations: 10, CostPerIter: 1000,
		Body: func(i int) { sum2 += sum1 }}) // depends on region a being done
	if !team.Wait(2, 1<<24) {
		t.Fatalf("regions did not complete (%d)", team.Completed())
	}
	if sum1 != 45 {
		t.Fatalf("sum1 = %d", sum1)
	}
	if sum2 != 450 {
		t.Fatalf("region ordering violated: sum2 = %d, want 450", sum2)
	}
}

func TestGangScheduledTeamThrottled(t *testing.T) {
	// A 50%-utilization team takes about twice as long as a full-speed one.
	elapsed := func(cons core.Constraints, seed uint64) int64 {
		k := boot(t, 5, seed)
		team := MustNewTeam(k, Config{Workers: 4, FirstCPU: 1,
			Constraints: cons, Sync: SyncBarrier})
		start := k.NowNs()
		for r := 0; r < 10; r++ {
			team.Submit(Region{Iterations: 400, CostPerIter: 2000})
		}
		if !team.Wait(10, 1<<26) {
			t.Fatalf("team stalled")
		}
		return k.NowNs() - start
	}
	full := elapsed(core.AperiodicConstraints(50), 143)
	half := elapsed(core.PeriodicConstraints(0, 200_000, 100_000), 144)
	ratio := float64(half) / float64(full)
	if ratio < 1.5 || ratio > 3.2 {
		t.Fatalf("50%% gang throttling off: full=%dns half=%dns ratio=%.2f", full, half, ratio)
	}
}

func TestTimedSyncMatchesBarrierResults(t *testing.T) {
	run := func(sync SyncMode, seed uint64) ([]int, int64) {
		k := boot(t, 5, seed)
		team := MustNewTeam(k, Config{Workers: 4, FirstCPU: 1,
			Constraints: core.PeriodicConstraints(0, 200_000, 180_000), Sync: sync})
		const n = 64
		counts := make([]int, n)
		start := k.NowNs()
		for r := 0; r < 20; r++ {
			team.Submit(Region{Iterations: n, CostPerIter: 3000,
				Body: func(i int) { counts[i]++ }})
		}
		if !team.Wait(20, 1<<26) {
			t.Fatalf("team stalled in mode %d", sync)
		}
		return counts, k.NowNs() - start
	}
	withBar, tBar := run(SyncBarrier, 145)
	timed, tTimed := run(SyncTimed, 146)
	for i := range withBar {
		if withBar[i] != 20 || timed[i] != 20 {
			t.Fatalf("iteration coverage: barrier=%d timed=%d", withBar[i], timed[i])
		}
	}
	// Barrier removal pays off for fine-grain regions.
	if tTimed >= tBar {
		t.Fatalf("timed sync (%dns) not faster than barrier (%dns)", tTimed, tBar)
	}
}

func TestTimedSyncRequiresRT(t *testing.T) {
	k := boot(t, 3, 147)
	defer func() {
		if recover() == nil {
			t.Fatalf("timed sync without gang scheduling accepted")
		}
	}()
	MustNewTeam(k, Config{Workers: 2, FirstCPU: 1,
		Constraints: core.AperiodicConstraints(50), Sync: SyncTimed})
}

func TestDynamicScheduleCoversAllIterations(t *testing.T) {
	k := boot(t, 5, 148)
	team := MustNewTeam(k, Config{Workers: 4, FirstCPU: 1,
		Constraints: core.AperiodicConstraints(50), Sync: SyncBarrier})
	const n = 101
	counts := make([]int, n)
	team.Submit(Region{Iterations: n, CostPerIter: 2000, Sched: Dynamic, DynChunk: 4,
		Body: func(i int) { counts[i]++ }})
	if !team.Wait(1, 1<<26) {
		t.Fatalf("dynamic region stalled")
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}
	if team.IterationsRun != n {
		t.Fatalf("iterations = %d", team.IterationsRun)
	}
}

func TestDynamicBeatsStaticUnderSkew(t *testing.T) {
	// Heavily skewed per-iteration cost: static chunking dumps all the
	// heavy iterations on one worker; dynamic claims rebalance.
	elapsed := func(sched Schedule, seed uint64) int64 {
		k := boot(t, 5, seed)
		team := MustNewTeam(k, Config{Workers: 4, FirstCPU: 1,
			Constraints: core.AperiodicConstraints(50), Sync: SyncBarrier})
		const n = 64
		cost := func(i int) int64 {
			if i < n/4 {
				return 800_000 // the first static chunk is 16x heavier
			}
			return 50_000
		}
		start := k.NowNs()
		for r := 0; r < 4; r++ {
			team.Submit(Region{Iterations: n, CostFn: cost, Sched: sched, DynChunk: 2})
		}
		if !team.Wait(4, 1<<27) {
			t.Fatalf("stalled")
		}
		return k.NowNs() - start
	}
	static := elapsed(Static, 149)
	dynamic := elapsed(Dynamic, 150)
	if dynamic*2 > static {
		t.Fatalf("dynamic schedule shows no balancing: static=%dns dynamic=%dns",
			static, dynamic)
	}
}

func TestDynamicDefaultChunkIsOne(t *testing.T) {
	k := boot(t, 3, 151)
	team := MustNewTeam(k, Config{Workers: 2, FirstCPU: 1,
		Constraints: core.AperiodicConstraints(50), Sync: SyncBarrier})
	team.Submit(Region{Iterations: 10, CostPerIter: 5000, Sched: Dynamic})
	if !team.Wait(1, 1<<26) {
		t.Fatalf("stalled")
	}
	if team.IterationsRun != 10 {
		t.Fatalf("iterations = %d", team.IterationsRun)
	}
}
