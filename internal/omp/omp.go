// Package omp is a miniature OpenMP-like parallel run-time built on the
// kernel — the integration the paper names as ongoing work in Section 8
// ("adding real-time and barrier removal support to Nautilus-internal
// implementations of OpenMP ... run-times"). It provides a persistent
// worker team executing statically-scheduled parallel-for regions, with
// three synchronization modes: classic barriers, hard real-time gang
// scheduling WITH barriers, and hard real-time gang scheduling with the
// barriers removed (time replaces synchronization).
package omp

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/group"
	"hrtsched/internal/ksync"
	"hrtsched/internal/machine"
)

// SyncMode selects how workers synchronize between regions.
type SyncMode uint8

const (
	// SyncBarrier places a team barrier after every region (classic).
	SyncBarrier SyncMode = iota
	// SyncTimed omits inter-region barriers, relying on the gang-scheduled
	// lockstep of hard real-time group admission. Only sound when the team
	// holds periodic constraints.
	SyncTimed
)

// Config configures a team.
type Config struct {
	Workers  int
	FirstCPU int
	// Constraints, when periodic, gang-schedules the team through group
	// admission with phase correction.
	Constraints core.Constraints
	Sync        SyncMode
}

// Schedule selects how a region's iterations are distributed.
type Schedule uint8

const (
	// Static gives each worker one contiguous chunk, fixed up front — the
	// right choice for balanced work and the only choice compatible with
	// barrier-free timed synchronization.
	Static Schedule = iota
	// Dynamic has workers repeatedly claim chunks of DynChunk iterations
	// from a shared counter — classic OpenMP schedule(dynamic) load
	// balancing for skewed per-iteration costs.
	Dynamic
)

// Region is one parallel-for: Iterations units of work, each costing
// CostPerIter cycles (or CostFn(i) when set, for affinity-dependent or
// skewed costs), distributed across the team per Schedule. Body, if
// non-nil, runs for every iteration (real data movement).
type Region struct {
	Name        string
	Iterations  int
	CostPerIter int64
	// CostFn, when non-nil, gives iteration i's cost in cycles; it
	// overrides CostPerIter. Layered run-times (pgas) use it to charge
	// local vs remote access costs.
	CostFn func(i int) int64
	Body   func(i int)
	// Sched selects static (default) or dynamic distribution.
	Sched Schedule
	// DynChunk is the dynamic-claim size (default 1).
	DynChunk int

	next int // dynamic-claim cursor
}

// Team is a persistent worker gang.
type Team struct {
	k   *core.Kernel
	cfg Config
	g   *group.Group
	bar *group.Barrier
	wq  *ksync.WaitQueue

	workers []*core.Thread

	regions   []*Region
	submitted int
	// workerDone[w] = number of regions worker w has completed.
	workerDone []int
	completed  int

	// ChunksRun counts executed chunks, IterationsRun executed iterations.
	ChunksRun     int64
	IterationsRun int64
}

// NewTeam creates and starts a team. If cfg.Constraints is periodic the
// team passes group admission (with phase correction) before accepting
// work; SyncTimed requires that. It returns an error for a non-positive
// worker count or a timed-sync configuration without periodic constraints.
func NewTeam(k *core.Kernel, cfg Config) (*Team, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("omp: team needs at least one worker (got %d)", cfg.Workers)
	}
	if cfg.Sync == SyncTimed && cfg.Constraints.Type != core.Periodic {
		return nil, fmt.Errorf("omp: timed synchronization requires periodic gang scheduling")
	}
	t := &Team{
		k:          k,
		cfg:        cfg,
		g:          group.MustNew(k, "omp", cfg.Workers, group.DefaultCosts()),
		wq:         ksync.NewWaitQueue(k),
		workerDone: make([]int, cfg.Workers),
	}
	t.bar = t.g.NewBarrier()

	var admission core.Step
	if cfg.Constraints.Type == core.Periodic {
		admission = t.g.ChangeConstraintsSteps(cfg.Constraints,
			group.AdmitOptions{PhaseCorrection: true}, nil)
	}
	pre := t.g.JoinSteps(admission)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		prog := core.FlowThen(pre, core.FlowProgram(t.workerLoop(w)))
		t.workers = append(t.workers,
			k.Spawn(fmt.Sprintf("omp-%d", w), cfg.FirstCPU+w, prog))
	}
	return t, nil
}

// MustNewTeam is NewTeam for statically-correct call sites; it panics on
// error.
func MustNewTeam(k *core.Kernel, cfg Config) *Team {
	t, err := NewTeam(k, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Group exposes the team's thread group.
func (t *Team) Group() *group.Group { return t.g }

// Workers returns the team size.
func (t *Team) Workers() int { return t.cfg.Workers }

// Spec returns the platform spec the team runs on.
func (t *Team) Spec() machine.Spec { return t.k.M.Spec }

// ChunkBounds returns the static-schedule bounds [lo, hi) that worker w
// receives for a region of n iterations — exposed so layered run-times
// (ndp) can align their per-chunk state with the team's partition.
func (t *Team) ChunkBounds(w, n int) (int, int) {
	per := n / t.cfg.Workers
	rem := n % t.cfg.Workers
	lo := w*per + min(w, rem)
	hi := lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}

// ChunkOf returns the worker that owns iteration i of an n-iteration
// region under the static schedule.
func (t *Team) ChunkOf(i, n int) int {
	per := n / t.cfg.Workers
	rem := n % t.cfg.Workers
	cut := rem * (per + 1)
	if i < cut {
		return i / (per + 1)
	}
	if per == 0 {
		return t.cfg.Workers - 1
	}
	return rem + (i-cut)/per
}

// workerLoop builds worker w's endless region-processing flow.
func (t *Team) workerLoop(w int) core.Step {
	var loop core.Step
	loop = func(tc *core.ThreadCtx) (core.Action, core.Step) {
		next := t.wq.WaitSteps(func(*core.ThreadCtx) bool {
			return t.workerDone[w] < t.submitted
		}, t.runRegion(w, loop))
		return nil, next
	}
	return loop
}

// runRegion executes worker w's share of its next region: one static
// chunk, or repeated dynamic claims until the region is exhausted.
func (t *Team) runRegion(w int, cont core.Step) core.Step {
	var lo, hi int
	var region *Region
	var claim core.Step
	chunkBody := func(n core.Step) core.Step {
		return core.Chain(
			func(n2 core.Step) core.Step {
				return core.DoComputeFn(func(tc *core.ThreadCtx) int64 {
					var c int64
					if region.CostFn != nil {
						for i := lo; i < hi; i++ {
							c += region.CostFn(i)
						}
					} else {
						c = int64(hi-lo) * region.CostPerIter
					}
					if c < 1 {
						c = 1
					}
					return c
				}, n2)
			},
			func(n2 core.Step) core.Step {
				return core.DoCall(func(tc *core.ThreadCtx) {
					if region.Body != nil {
						for i := lo; i < hi; i++ {
							region.Body(i)
						}
					}
					t.ChunksRun++
					t.IterationsRun += int64(hi - lo)
				}, n2)
			},
			func(core.Step) core.Step { return n },
		)
	}
	var afterWork core.Step // filled below
	// claim grabs the next dynamic chunk, or falls through when drained.
	claim = func(tc *core.ThreadCtx) (core.Action, core.Step) {
		if region.next >= region.Iterations {
			return nil, afterWork
		}
		lo = region.next
		hi = lo + region.DynChunk
		if region.DynChunk < 1 {
			hi = lo + 1
		}
		if hi > region.Iterations {
			hi = region.Iterations
		}
		region.next = hi
		return nil, chunkBody(claim)
	}
	return core.Chain(
		func(n core.Step) core.Step {
			afterWork = n // the post-work steps below
			return core.DoCall(func(tc *core.ThreadCtx) {
				region = t.regions[t.workerDone[w]]
				if region.Sched == Static {
					lo, hi = t.ChunkBounds(w, region.Iterations)
				}
			}, core.If(func(tc *core.ThreadCtx) bool { return region.Sched == Dynamic },
				claim,
				chunkBody(n)))
		},
		func(n core.Step) core.Step {
			if t.cfg.Sync == SyncBarrier {
				return t.bar.Steps(n)
			}
			return n
		},
		func(n core.Step) core.Step {
			return core.DoCall(func(tc *core.ThreadCtx) {
				t.workerDone[w]++
				if t.allDone(t.workerDone[w]) {
					t.completed = t.workerDone[w]
				}
			}, n)
		},
		func(core.Step) core.Step { return cont },
	)
}

func (t *Team) allDone(seq int) bool {
	for _, d := range t.workerDone {
		if d < seq {
			return false
		}
	}
	return true
}

// Submit enqueues a region for the team and wakes idle workers. Regions
// are stored by pointer: the dynamic-schedule claim cursor must be shared
// by every worker even as the slice grows.
func (t *Team) Submit(r Region) {
	t.regions = append(t.regions, &r)
	t.submitted++
	t.wq.SignalAll()
}

// Completed returns the number of regions finished by every worker.
func (t *Team) Completed() int { return t.completed }

// Wait drives the kernel until n regions have completed (or the event
// bound trips).
func (t *Team) Wait(n int, maxEvents uint64) bool {
	return t.k.RunUntil(func() bool { return t.completed >= n }, maxEvents)
}
