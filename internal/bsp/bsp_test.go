package bsp

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func bootPhi(t *testing.T, ncpus int, seed uint64) *core.Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	return core.Boot(m, core.DefaultConfig(spec))
}

func TestBSPAperiodicWithBarrier(t *testing.T) {
	k := bootPhi(t, 9, 21)
	p := Params{P: 8, NE: 256, NC: 4, NW: 8, N: 20, FirstCPU: 1, UseBarrier: true,
		Constraints: core.AperiodicConstraints(50)}
	res := New(k, p).Run(50_000_000)
	if res.Iterations != int64(p.P*p.N) {
		t.Fatalf("iterations = %d, want %d", res.Iterations, p.P*p.N)
	}
	if res.WriteErrors != 0 {
		t.Fatalf("%d ring write invariant violations", res.WriteErrors)
	}
	if res.ExecNs <= 0 {
		t.Fatalf("non-positive execution time %d", res.ExecNs)
	}
	if res.MaxSkew > 1 {
		t.Fatalf("barrier failed to bound skew: %d", res.MaxSkew)
	}
}

func TestBSPRealTimeWithBarrier(t *testing.T) {
	k := bootPhi(t, 9, 22)
	p := Params{P: 8, NE: 256, NC: 4, NW: 8, N: 20, FirstCPU: 1, UseBarrier: true,
		Constraints:     core.PeriodicConstraints(0, 100_000, 50_000),
		PhaseCorrection: true}
	res := New(k, p).Run(80_000_000)
	if res.GroupFailed {
		t.Fatalf("group admission failed")
	}
	if res.Iterations != int64(p.P*p.N) {
		t.Fatalf("iterations = %d, want %d", res.Iterations, p.P*p.N)
	}
	if res.WriteErrors != 0 {
		t.Fatalf("%d ring write invariant violations", res.WriteErrors)
	}
}

func TestBSPBarrierRemovalKeepsLockstep(t *testing.T) {
	k := bootPhi(t, 9, 23)
	p := Params{P: 8, NE: 256, NC: 4, NW: 8, N: 50, FirstCPU: 1, UseBarrier: false,
		Constraints:     core.PeriodicConstraints(0, 100_000, 50_000),
		PhaseCorrection: true}
	res := New(k, p).Run(200_000_000)
	if res.GroupFailed {
		t.Fatalf("group admission failed")
	}
	if res.Iterations != int64(p.P*p.N) {
		t.Fatalf("iterations = %d, want %d", res.Iterations, p.P*p.N)
	}
	// The paper's lockstep claim: with hard real-time group scheduling,
	// threads stay nearly synchronized without barriers.
	if res.MaxSkew > 2 {
		t.Fatalf("lockstep violated: skew %d iterations", res.MaxSkew)
	}
}

func TestBSPBarrierRemovalIsFaster(t *testing.T) {
	run := func(useBarrier bool) Result {
		k := bootPhi(t, 9, 24)
		p := Params{P: 8, NE: 64, NC: 2, NW: 4, N: 40, FirstCPU: 1, UseBarrier: useBarrier,
			Constraints:     core.PeriodicConstraints(0, 100_000, 90_000),
			PhaseCorrection: true}
		return New(k, p).Run(400_000_000)
	}
	with := run(true)
	without := run(false)
	if with.ExecNs <= without.ExecNs {
		t.Fatalf("fine-grain barrier removal not faster: with=%dns without=%dns",
			with.ExecNs, without.ExecNs)
	}
}

func TestBSPThrottlingProportional(t *testing.T) {
	exec := func(slicePct int64) int64 {
		k := bootPhi(t, 9, 25)
		period := int64(200_000)
		p := Params{P: 8, NE: 1024, NC: 8, NW: 8, N: 20, FirstCPU: 1, UseBarrier: true,
			Constraints:     core.PeriodicConstraints(0, period, period*slicePct/100),
			PhaseCorrection: true}
		res := New(k, p).Run(800_000_000)
		if res.Iterations != int64(p.P*p.N) {
			t.Fatalf("slice %d%%: incomplete run (%d iterations)", slicePct, res.Iterations)
		}
		return res.ExecNs
	}
	t30 := exec(30)
	t60 := exec(60)
	ratio := float64(t30) / float64(t60)
	// Halving utilization should roughly double the execution time.
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("throttling not commensurate: t30=%d t60=%d ratio=%.2f", t30, t60, ratio)
	}
}

func TestBSPDataVerification(t *testing.T) {
	k := bootPhi(t, 5, 26)
	p := Params{P: 4, NE: 32, NC: 2, NW: 4, N: 10, FirstCPU: 1, UseBarrier: true,
		Constraints: core.AperiodicConstraints(50), VerifyData: true}
	b := New(k, p)
	res := b.Run(50_000_000)
	if res.WriteErrors != 0 {
		t.Fatalf("write errors: %d", res.WriteErrors)
	}
	// Real arithmetic happened: the domain moved away from its initial
	// values everywhere.
	for i := range b.data {
		if b.data[i][p.NE-1] == float64(i*p.NE+p.NE-1) {
			t.Fatalf("domain %d untouched", i)
		}
	}
}
