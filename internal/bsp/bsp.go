// Package bsp implements the bulk-synchronous-parallel microbenchmark of
// Section 6.1: an iterative computation on a discrete domain (a vector of
// doubles per CPU) with fine-grain control over computation (NE elements,
// NC operations each), communication (NW ring-pattern remote writes) and
// synchronization (an optional barrier per iteration).
package bsp

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/group"
)

// Params configures one benchmark run, mirroring the paper's P/NE/NC/NW/N.
type Params struct {
	P  int // CPUs used; thread i runs on CPU FirstCPU+i
	NE int // elements of the domain local to each CPU
	NC int // computations per element per iteration
	NW int // remote writes per iteration (ring: i writes to (i+1)%P)
	N  int // iterations

	// FirstCPU offsets thread placement, e.g. 1 keeps CPU 0 free as the
	// interrupt-laden partition.
	FirstCPU int

	// UseBarrier keeps the optional_barrier() call in the loop.
	UseBarrier bool

	// Constraints applied through group admission before the loop. An
	// Aperiodic type runs the benchmark without real-time scheduling (in
	// which case the barrier is required for correctness).
	Constraints     core.Constraints
	PhaseCorrection bool

	// VerifyData performs the real element arithmetic (slower); otherwise
	// only the write-count invariants are maintained.
	VerifyData bool
}

// CoarseGrain returns the coarsest granularity of the paper's study.
func CoarseGrain(p, n int) Params {
	return Params{P: p, NE: 8192, NC: 8, NW: 16, N: n, FirstCPU: 1, UseBarrier: true}
}

// FineGrain returns the finest granularity of the paper's study.
func FineGrain(p, n int) Params {
	return Params{P: p, NE: 512, NC: 8, NW: 16, N: n, FirstCPU: 1, UseBarrier: true}
}

// Result reports one benchmark run.
type Result struct {
	Params       Params
	ExecNs       int64 // first loop entry to last loop exit
	StartNs      int64
	EndNs        int64
	Iterations   int64 // total across threads (== P*N on success)
	MaxSkew      int64 // max iteration-count divergence observed
	Misses       int64 // deadline misses across member threads
	Arrivals     int64
	GroupFailed  bool
	WriteErrors  int64 // ring write-count invariant violations
	SupplyCycles int64
}

// Bench is one instantiated benchmark attached to a kernel.
type Bench struct {
	k   *core.Kernel
	p   Params
	g   *group.Group
	bar *group.Barrier

	data     [][]float64
	writeCnt [][]int64 // writeCnt[target][src] = writes received
	iter     []int64
	started  []int64
	finished []int64
	doneN    int
	maxSkew  int64

	threads []*core.Thread
}

// New builds the benchmark on kernel k.
func New(k *core.Kernel, p Params) *Bench {
	if p.P < 1 {
		panic("bsp: P must be positive")
	}
	if p.FirstCPU+p.P > k.NumCPUs() {
		panic(fmt.Sprintf("bsp: %d threads from CPU %d exceed %d CPUs",
			p.P, p.FirstCPU, k.NumCPUs()))
	}
	b := &Bench{
		k:        k,
		p:        p,
		g:        group.MustNew(k, "bsp", p.P, group.DefaultCosts()),
		data:     make([][]float64, p.P),
		writeCnt: make([][]int64, p.P),
		iter:     make([]int64, p.P),
		started:  make([]int64, p.P),
		finished: make([]int64, p.P),
	}
	b.bar = b.g.NewBarrier()
	for i := range b.data {
		b.data[i] = make([]float64, p.NE)
		b.writeCnt[i] = make([]int64, p.P)
		for j := range b.data[i] {
			b.data[i][j] = float64(i*p.NE + j)
		}
	}
	return b
}

// Group exposes the underlying thread group.
func (b *Bench) Group() *group.Group { return b.g }

// Threads returns the spawned benchmark threads.
func (b *Bench) Threads() []*core.Thread { return b.threads }

// Start spawns the benchmark threads. Run the kernel until Done() to
// complete the benchmark.
func (b *Bench) Start() {
	spec := b.k.M.Spec
	computeCycles := int64(b.p.NE) * int64(b.p.NC) * spec.LocalFlopCycles
	writeCycles := int64(b.p.NW) * spec.RemoteWriteCycles
	if writeCycles < 1 {
		writeCycles = 1
	}

	// Shared admission chain for the whole group.
	var admission core.Step
	if b.p.Constraints.Type != core.Aperiodic {
		admission = b.g.ChangeConstraintsSteps(b.p.Constraints,
			group.AdmitOptions{PhaseCorrection: b.p.PhaseCorrection}, nil)
	}
	joined := b.g.JoinSteps(admission)

	for i := 0; i < b.p.P; i++ {
		rank := i
		loop := b.loopStep(rank, computeCycles, writeCycles)
		prog := core.FlowThen(joined, core.FlowProgram(
			// Align the start: one barrier before the measured loop, then
			// record the start time.
			b.bar.Steps(core.DoCall(func(tc *core.ThreadCtx) {
				b.started[rank] = tc.NowNs
			}, loop))))
		b.threads = append(b.threads, b.k.Spawn(
			fmt.Sprintf("bsp-%d", rank), b.p.FirstCPU+rank, prog))
	}
}

// loopStep builds the per-thread iteration loop.
func (b *Bench) loopStep(rank int, computeCycles, writeCycles int64) core.Step {
	var loop core.Step
	body := func(next core.Step) core.Step {
		steps := core.Chain(
			// compute_local_element over the local domain.
			func(n core.Step) core.Step { return core.DoCompute(computeCycles, n) },
			// write_remote_element_on((rank+1) %% P), ring pattern.
			func(n core.Step) core.Step { return core.DoCompute(writeCycles, n) },
			func(n core.Step) core.Step {
				return core.DoCall(func(tc *core.ThreadCtx) { b.remoteWrites(rank) }, n)
			},
			// optional_barrier()
			func(n core.Step) core.Step {
				if b.p.UseBarrier {
					return b.bar.Steps(n)
				}
				return n
			},
			func(n core.Step) core.Step {
				return core.DoCall(func(tc *core.ThreadCtx) {
					b.iter[rank]++
					b.observeSkew(rank)
				}, n)
			},
			func(core.Step) core.Step { return next },
		)
		return steps
	}
	done := core.DoCall(func(tc *core.ThreadCtx) {
		b.finished[rank] = tc.NowNs
		b.doneN++
	}, core.Do(core.ChangeConstraints{C: core.AperiodicConstraints(100)},
		core.Do(core.Exit{}, nil)))
	loop = func(tc *core.ThreadCtx) (core.Action, core.Step) {
		if b.iter[rank] >= int64(b.p.N) {
			return nil, done
		}
		return nil, body(loop)
	}
	return loop
}

// remoteWrites performs the NW ring-pattern writes into the neighbour's
// elements, maintaining the count invariant (and the real data when
// verification is on).
func (b *Bench) remoteWrites(rank int) {
	dst := (rank + 1) % b.p.P
	b.writeCnt[dst][rank] += int64(b.p.NW)
	if b.p.VerifyData {
		for w := 0; w < b.p.NW && w < b.p.NE; w++ {
			b.data[dst][w] = b.data[rank][w] + 1
		}
		for j := 0; j < b.p.NE; j++ {
			for c := 0; c < b.p.NC; c++ {
				b.data[rank][j] = b.data[rank][j]*1.0000001 + 0.5
			}
		}
	}
}

// observeSkew tracks the maximum divergence in iteration counts between
// ring neighbours — the quantity that must stay small for barrier removal
// to be safe.
func (b *Bench) observeSkew(rank int) {
	nxt := (rank + 1) % b.p.P
	d := b.iter[rank] - b.iter[nxt]
	if d < 0 {
		d = -d
	}
	if d > b.maxSkew {
		b.maxSkew = d
	}
}

// Done reports whether every thread finished its N iterations.
func (b *Bench) Done() bool { return b.doneN == b.p.P }

// Run starts the benchmark and drives the kernel until completion or the
// event bound is exceeded.
func (b *Bench) Run(maxEvents uint64) Result {
	b.Start()
	b.k.RunUntil(b.Done, maxEvents)
	return b.Result()
}

// Result summarizes the run so far.
func (b *Bench) Result() Result {
	r := Result{Params: b.p, GroupFailed: b.g.Failed(), MaxSkew: b.maxSkew}
	var first, last int64
	for i := 0; i < b.p.P; i++ {
		if b.started[i] > 0 && (first == 0 || b.started[i] < first) {
			first = b.started[i]
		}
		if b.finished[i] > last {
			last = b.finished[i]
		}
		r.Iterations += b.iter[i]
	}
	r.StartNs, r.EndNs = first, last
	if last > first {
		r.ExecNs = last - first
	}
	for _, t := range b.threads {
		r.Misses += t.Misses
		r.Arrivals += t.Arrivals
		r.SupplyCycles += t.SupplyCycles
	}
	// Verify the ring write invariant: after a complete run, each thread
	// received exactly N*NW writes from its predecessor.
	if b.Done() {
		for dst := 0; dst < b.p.P; dst++ {
			src := (dst - 1 + b.p.P) % b.p.P
			if b.writeCnt[dst][src] != int64(b.p.N)*int64(b.p.NW) {
				r.WriteErrors++
			}
			for s := 0; s < b.p.P; s++ {
				if s != src && b.writeCnt[dst][s] != 0 {
					r.WriteErrors++
				}
			}
		}
	}
	return r
}
