// Package cyclic implements the paper's stated future-work direction:
// "compiling parallel programs directly into cyclic executives, providing
// real-time behavior by static construction" (Section 8).
//
// A cyclic executive replaces the online EDF scheduler with a schedule
// table computed offline: the task set's hyperperiod is divided into
// dispatch entries, each granting one task a contiguous interval. At run
// time a single executive thread walks the table, driven purely by
// wall-clock time — no admission control, no run queues, and only one
// scheduler interaction per entry.
package cyclic

import (
	"errors"
	"fmt"
	"sort"

	"hrtsched/internal/core"
)

// Task is one periodic task to compile into the table.
type Task struct {
	Name     string
	PeriodNs int64
	SliceNs  int64
	// Work, if non-nil, is called once per dispatch with the entry's
	// duration; it is executed as simulated compute by the executive.
	Work func(ns int64)
}

// Entry is one dispatch of the static table: task Task runs during
// [StartNs, EndNs) of every hyperperiod.
type Entry struct {
	Task    int // index into the task set; -1 = idle
	StartNs int64
	EndNs   int64
}

// Table is a compiled cyclic executive schedule.
type Table struct {
	Tasks         []Task
	HyperperiodNs int64
	Entries       []Entry
	UtilPct       float64
}

// Errors from table construction.
var (
	ErrEmptyTaskSet   = errors.New("cyclic: empty task set")
	ErrBadTask        = errors.New("cyclic: malformed task")
	ErrNotSchedulable = errors.New("cyclic: task set not schedulable")
)

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// Build compiles a task set into a static schedule by simulating EDF
// offline over one hyperperiod. utilizationLimit (e.g. 0.99) reserves
// headroom for the executive's own dispatch costs. The resulting table is
// validated: every job of every task receives its full slice before its
// deadline, or Build fails with ErrNotSchedulable.
func Build(tasks []Task, utilizationLimit float64) (*Table, error) {
	if len(tasks) == 0 {
		return nil, ErrEmptyTaskSet
	}
	hyper := int64(1)
	var util float64
	for i, t := range tasks {
		if t.PeriodNs <= 0 || t.SliceNs <= 0 || t.SliceNs > t.PeriodNs {
			return nil, fmt.Errorf("%w: task %d (%q) period=%d slice=%d",
				ErrBadTask, i, t.Name, t.PeriodNs, t.SliceNs)
		}
		hyper = lcm(hyper, t.PeriodNs)
		util += float64(t.SliceNs) / float64(t.PeriodNs)
	}
	if util > utilizationLimit {
		return nil, fmt.Errorf("%w: utilization %.3f over limit %.3f",
			ErrNotSchedulable, util, utilizationLimit)
	}

	// Offline EDF simulation at event granularity: job releases and
	// completions are the only decision points.
	type job struct {
		task       int
		deadlineNs int64
		remNs      int64
	}
	var entries []Entry
	var ready []job
	now := int64(0)

	nextRelease := func(after int64) int64 {
		next := int64(-1)
		for _, t := range tasks {
			// First release at or after `after` (releases at k*period).
			k := (after + t.PeriodNs) / t.PeriodNs
			r := k * t.PeriodNs
			if r == after {
				r += t.PeriodNs
			}
			if next == -1 || r < next {
				next = r
			}
		}
		return next
	}
	release := func(at int64) {
		for i, t := range tasks {
			if at%t.PeriodNs == 0 {
				ready = append(ready, job{task: i, deadlineNs: at + t.PeriodNs, remNs: t.SliceNs})
			}
		}
	}

	release(0)
	for now < hyper {
		if len(ready) == 0 {
			nr := nextRelease(now)
			if nr > hyper {
				nr = hyper
			}
			entries = append(entries, Entry{Task: -1, StartNs: now, EndNs: nr})
			now = nr
			if now < hyper {
				release(now)
			}
			continue
		}
		// Earliest deadline first; ties by task index for determinism.
		sort.SliceStable(ready, func(a, b int) bool {
			if ready[a].deadlineNs != ready[b].deadlineNs {
				return ready[a].deadlineNs < ready[b].deadlineNs
			}
			return ready[a].task < ready[b].task
		})
		j := &ready[0]
		runUntil := now + j.remNs
		if nr := nextRelease(now); nr < runUntil {
			runUntil = nr
		}
		if runUntil > hyper {
			runUntil = hyper
		}
		if j.deadlineNs < runUntil {
			return nil, fmt.Errorf("%w: task %d (%q) cannot meet deadline %d",
				ErrNotSchedulable, j.task, tasks[j.task].Name, j.deadlineNs)
		}
		entries = append(entries, Entry{Task: j.task, StartNs: now, EndNs: runUntil})
		j.remNs -= runUntil - now
		if j.remNs == 0 {
			ready = ready[1:]
		}
		now = runUntil
		if now < hyper {
			release(now) // no-op unless now is a period multiple
		}
	}
	// Any job still owed time at the end of the hyperperiod missed.
	for _, j := range ready {
		if j.remNs > 0 {
			return nil, fmt.Errorf("%w: task %d (%q) under-served at hyperperiod end",
				ErrNotSchedulable, j.task, tasks[j.task].Name)
		}
	}
	tbl := &Table{Tasks: tasks, HyperperiodNs: hyper, Entries: coalesce(entries), UtilPct: util * 100}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// coalesce merges adjacent entries of the same task.
func coalesce(in []Entry) []Entry {
	var out []Entry
	for _, e := range in {
		if n := len(out); n > 0 && out[n-1].Task == e.Task && out[n-1].EndNs == e.StartNs {
			out[n-1].EndNs = e.EndNs
			continue
		}
		out = append(out, e)
	}
	return out
}

// Validate checks the table's structural invariants: entries tile the
// hyperperiod exactly, and every task receives slice*(hyper/period) total
// time with each job fully served before its deadline.
func (t *Table) Validate() error {
	expect := int64(0)
	for _, e := range t.Entries {
		if e.StartNs != expect {
			return fmt.Errorf("cyclic: gap or overlap at %d (entry starts %d)", expect, e.StartNs)
		}
		if e.EndNs <= e.StartNs {
			return fmt.Errorf("cyclic: empty entry at %d", e.StartNs)
		}
		expect = e.EndNs
	}
	if expect != t.HyperperiodNs {
		return fmt.Errorf("cyclic: table covers %d of %d", expect, t.HyperperiodNs)
	}
	// Per-job service check.
	for ti, task := range t.Tasks {
		jobs := t.HyperperiodNs / task.PeriodNs
		for j := int64(0); j < jobs; j++ {
			rel, dl := j*task.PeriodNs, (j+1)*task.PeriodNs
			var got int64
			for _, e := range t.Entries {
				if e.Task != ti {
					continue
				}
				lo, hi := e.StartNs, e.EndNs
				if lo < rel {
					lo = rel
				}
				if hi > dl {
					hi = dl
				}
				if hi > lo {
					got += hi - lo
				}
			}
			if got < task.SliceNs {
				return fmt.Errorf("cyclic: task %d job %d served %d of %d ns",
					ti, j, got, task.SliceNs)
			}
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	s := fmt.Sprintf("hyperperiod %d ns, %.1f%% utilization, %d entries\n",
		t.HyperperiodNs, t.UtilPct, len(t.Entries))
	for _, e := range t.Entries {
		name := "(idle)"
		if e.Task >= 0 {
			name = t.Tasks[e.Task].Name
		}
		s += fmt.Sprintf("  [%9d, %9d) %s\n", e.StartNs, e.EndNs, name)
	}
	return s
}

// Executive runs a compiled table on one CPU of a kernel. Dispatches are
// driven purely by wall-clock sleep — real-time behavior by static
// construction, with no admission control or run-queue work per dispatch.
type Executive struct {
	k     *core.Kernel
	cpu   int
	table *Table

	// DispatchJitterNs records |actual - planned| for every dispatch.
	Dispatches    int64
	WorstJitterNs int64
	ServedNs      []int64 // per task
	thread        *core.Thread
	cycles        int64 // hyperperiods completed
}

// NewExecutive prepares an executive for the table on the given CPU. The
// CPU should otherwise be idle (the whole point of static construction).
func NewExecutive(k *core.Kernel, cpu int, table *Table) *Executive {
	return &Executive{k: k, cpu: cpu, table: table, ServedNs: make([]int64, len(table.Tasks))}
}

// Thread returns the executive's thread after Start.
func (e *Executive) Thread() *core.Thread { return e.thread }

// Cycles returns completed hyperperiods.
func (e *Executive) Cycles() int64 { return e.cycles }

// Start spawns the executive thread. It runs hyperperiods forever (or
// until the simulation stops).
func (e *Executive) Start() {
	freq := e.k.M.Spec.FreqHz
	var baseNs int64 = -1
	idx := 0
	e.thread = e.k.Spawn("cyclic-exec", e.cpu, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		if baseNs < 0 {
			// Align the table origin to the next hyperperiod boundary.
			h := e.table.HyperperiodNs
			baseNs = (tc.NowNs/h + 1) * h
			return core.SleepUntil{WallNs: baseNs}
		}
		for {
			if idx == len(e.table.Entries) {
				idx = 0
				e.cycles++
				baseNs += e.table.HyperperiodNs
			}
			ent := e.table.Entries[idx]
			planned := baseNs + ent.StartNs
			if tc.NowNs < planned {
				return core.SleepUntil{WallNs: planned}
			}
			idx++
			if ent.Task < 0 {
				continue // idle window; loop to the sleep for the next entry
			}
			j := tc.NowNs - planned
			if j > e.WorstJitterNs {
				e.WorstJitterNs = j
			}
			e.Dispatches++
			dur := ent.EndNs - ent.StartNs
			e.ServedNs[ent.Task] += dur
			if w := e.table.Tasks[ent.Task].Work; w != nil {
				w(dur)
			}
			cycles := dur * freq / 1_000_000_000
			if cycles < 1 {
				cycles = 1
			}
			return core.Compute{Cycles: cycles}
		}
	}))
}
