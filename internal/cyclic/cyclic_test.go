package cyclic

import (
	"errors"
	"testing"
	"testing/quick"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func TestBuildSimpleHarmonic(t *testing.T) {
	tbl, err := Build([]Task{
		{Name: "a", PeriodNs: 100_000, SliceNs: 30_000},
		{Name: "b", PeriodNs: 200_000, SliceNs: 60_000},
	}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.HyperperiodNs != 200_000 {
		t.Fatalf("hyperperiod = %d", tbl.HyperperiodNs)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	// 30%+30% utilization.
	if tbl.UtilPct < 59 || tbl.UtilPct > 61 {
		t.Fatalf("util = %f", tbl.UtilPct)
	}
}

func TestBuildNonHarmonic(t *testing.T) {
	tbl, err := Build([]Task{
		{Name: "a", PeriodNs: 300_000, SliceNs: 100_000},
		{Name: "b", PeriodNs: 400_000, SliceNs: 120_000},
		{Name: "c", PeriodNs: 600_000, SliceNs: 90_000},
	}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.HyperperiodNs != 1_200_000 {
		t.Fatalf("hyperperiod = %d", tbl.HyperperiodNs)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsOverload(t *testing.T) {
	_, err := Build([]Task{
		{Name: "a", PeriodNs: 100_000, SliceNs: 60_000},
		{Name: "b", PeriodNs: 100_000, SliceNs: 50_000},
	}, 0.99)
	if !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("overload accepted: %v", err)
	}
}

func TestBuildRejectsMalformed(t *testing.T) {
	for _, tasks := range [][]Task{
		nil,
		{{Name: "x", PeriodNs: 0, SliceNs: 1}},
		{{Name: "x", PeriodNs: 100, SliceNs: 200}},
		{{Name: "x", PeriodNs: 100, SliceNs: -1}},
	} {
		if _, err := Build(tasks, 0.99); err == nil {
			t.Fatalf("malformed set accepted: %+v", tasks)
		}
	}
}

// Property: any task set under the utilization limit with harmonic-ish
// periods builds into a valid table (EDF is optimal on one CPU, so every
// feasible set must compile).
func TestPropertyFeasibleSetsCompile(t *testing.T) {
	periods := []int64{50_000, 100_000, 200_000, 400_000}
	f := func(nRaw uint8, slices []uint8) bool {
		n := int(nRaw%4) + 1
		if len(slices) < n {
			return true
		}
		var tasks []Task
		util := 0.0
		for i := 0; i < n; i++ {
			p := periods[i%len(periods)]
			frac := float64(slices[i]%30+1) / 100 / float64(n) // keep total under ~30%
			s := int64(float64(p) * frac)
			if s < 1 {
				s = 1
			}
			tasks = append(tasks, Task{Name: "t", PeriodNs: p, SliceNs: s})
			util += float64(s) / float64(p)
		}
		if util > 0.95 {
			return true
		}
		tbl, err := Build(tasks, 0.99)
		if err != nil {
			return false
		}
		return tbl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutiveRunsTable(t *testing.T) {
	spec := machine.PhiKNL().Scaled(2)
	m := machine.New(spec, 101)
	k := core.Boot(m, core.DefaultConfig(spec))

	var aWork, bWork int64
	tbl, err := Build([]Task{
		{Name: "a", PeriodNs: 100_000, SliceNs: 30_000, Work: func(ns int64) { aWork += ns }},
		{Name: "b", PeriodNs: 200_000, SliceNs: 80_000, Work: func(ns int64) { bWork += ns }},
	}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutive(k, 1, tbl)
	ex.Start()
	k.RunNs(50_000_000) // 50 ms => ~250 hyperperiods

	if ex.Cycles() < 200 {
		t.Fatalf("hyperperiods completed: %d", ex.Cycles())
	}
	// Service proportions: a gets 30us per 100us, b gets 80us per 200us.
	if aWork == 0 || bWork == 0 {
		t.Fatalf("tasks did not run: a=%d b=%d", aWork, bWork)
	}
	ratio := float64(ex.ServedNs[0]) / float64(ex.ServedNs[1])
	want := (30_000.0 * 2) / 80_000.0 // per hyperperiod: 60us vs 80us
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("service ratio %.3f, want %.3f", ratio, want)
	}
	// Static construction: dispatch jitter bounded by the scheduler's
	// wake-up path, far below the finest entry.
	if ex.WorstJitterNs > 20_000 {
		t.Fatalf("dispatch jitter %d ns too large", ex.WorstJitterNs)
	}
	if ex.Dispatches < 500 {
		t.Fatalf("dispatches = %d", ex.Dispatches)
	}
}

func TestExecutiveFewerInvocationsThanEDF(t *testing.T) {
	// The motivation for static construction: the cyclic executive needs
	// fewer scheduler interactions than online EDF for the same task set.
	tasks := []Task{
		{Name: "a", PeriodNs: 100_000, SliceNs: 30_000},
		{Name: "b", PeriodNs: 200_000, SliceNs: 60_000},
	}

	// Online EDF version.
	spec := machine.PhiKNL().Scaled(2)
	mEDF := machine.New(spec, 102)
	kEDF := core.Boot(mEDF, core.DefaultConfig(spec))
	for _, task := range tasks {
		cons := core.PeriodicConstraints(0, task.PeriodNs, task.SliceNs)
		admitted := false
		kEDF.Spawn(task.Name, 1, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			if !admitted {
				admitted = true
				return core.ChangeConstraints{C: cons}
			}
			return core.Compute{Cycles: 10_000}
		}))
	}
	kEDF.RunNs(50_000_000)
	edfInv := kEDF.Locals[1].Stats.Invocations

	// Cyclic version.
	mCyc := machine.New(spec, 103)
	kCyc := core.Boot(mCyc, core.DefaultConfig(spec))
	tbl, err := Build(tasks, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutive(kCyc, 1, tbl)
	ex.Start()
	kCyc.RunNs(50_000_000)
	cycInv := kCyc.Locals[1].Stats.Invocations

	if cycInv >= edfInv {
		t.Fatalf("cyclic executive (%d invocations) not cheaper than EDF (%d)",
			cycInv, edfInv)
	}
}
