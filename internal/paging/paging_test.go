package paging

import (
	"errors"
	"testing"
	"testing/quick"

	"hrtsched/internal/sim"
)

func TestPageSizes(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page2M.Bytes() != 2<<20 || Page1G.Bytes() != 1<<30 {
		t.Fatalf("page sizes wrong")
	}
	if Page4K.WalkLevels() != 4 || Page2M.WalkLevels() != 3 || Page1G.WalkLevels() != 2 {
		t.Fatalf("walk levels wrong")
	}
}

func TestIdentityMapRounding(t *testing.T) {
	m := NewIdentityMap(100<<30, Page1G)
	if m.Pages() != 100 {
		t.Fatalf("pages = %d", m.Pages())
	}
	m2 := NewIdentityMap(1<<30+1, Page1G)
	if m2.Pages() != 2 {
		t.Fatalf("rounding: pages = %d", m2.Pages())
	}
	if _, err := m.PageOf(100 << 30); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("out-of-map address translated")
	}
	p, err := m.PageOf(3<<30 + 5)
	if err != nil || p != 3 {
		t.Fatalf("PageOf = %d, %v", p, err)
	}
}

func TestNoMissesAfterStartupWithCoverage(t *testing.T) {
	// The paper's exact claim: 1G identity pages + a TLB that covers the
	// physical address space => zero TLB misses after startup.
	mmu := NewMMU(112<<30, Page1G, 128, 40) // Phi: 16G MCDRAM + 96G DRAM
	if !mmu.Covered() {
		t.Fatalf("TLB should cover %d 1G pages", mmu.Map.Pages())
	}
	mmu.Warmup()
	missesAfterBoot := mmu.TLB.Misses
	rng := sim.NewRand(9)
	for i := 0; i < 200_000; i++ {
		addr := uint64(rng.Int63n(112 << 30))
		cost, err := mmu.Translate(addr)
		if err != nil {
			t.Fatal(err)
		}
		if cost != 0 {
			t.Fatalf("translation walked after startup (access %d)", i)
		}
	}
	if mmu.TLB.Misses != missesAfterBoot {
		t.Fatalf("misses after startup: %d", mmu.TLB.Misses-missesAfterBoot)
	}
}

func TestSmallPagesMissForever(t *testing.T) {
	// The counterfactual: 4K pages cannot be covered, so random access
	// keeps missing — the noise a commodity kernel carries.
	mmu := NewMMU(4<<30, Page4K, 1536, 40)
	if mmu.Covered() {
		t.Fatalf("4K pages should exceed TLB coverage")
	}
	rng := sim.NewRand(10)
	for i := 0; i < 100_000; i++ {
		addr := uint64(rng.Int63n(4 << 30))
		if _, err := mmu.Translate(addr); err != nil {
			t.Fatal(err)
		}
	}
	if mmu.MissRate() < 0.5 {
		t.Fatalf("4K random-access miss rate %.3f suspiciously low", mmu.MissRate())
	}
	if mmu.WalkCycles == 0 {
		t.Fatalf("no walk cycles recorded")
	}
}

func TestWalkCostByPageSize(t *testing.T) {
	for _, c := range []struct {
		size PageSize
		want int64
	}{{Page4K, 160}, {Page2M, 120}, {Page1G, 80}} {
		mmu := NewMMU(8<<30, c.size, 4, 40)
		cost, err := mmu.Translate(0)
		if err != nil {
			t.Fatal(err)
		}
		if cost != c.want {
			t.Fatalf("%v first-touch walk = %d, want %d", c.size, cost, c.want)
		}
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1)
	tlb.Insert(2)
	if !tlb.Lookup(1) { // 1 becomes MRU
		t.Fatalf("entry 1 missing")
	}
	tlb.Insert(3) // evicts 2 (LRU)
	if tlb.Lookup(2) {
		t.Fatalf("LRU entry not evicted")
	}
	if !tlb.Lookup(1) || !tlb.Lookup(3) {
		t.Fatalf("wrong entries evicted")
	}
}

func TestTLBDuplicateInsert(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(7)
	tlb.Insert(7)
	tlb.Insert(8)
	if !tlb.Lookup(7) || !tlb.Lookup(8) {
		t.Fatalf("duplicate insert corrupted the TLB")
	}
}

// Property: a TLB never holds more than its capacity and hits+misses equals
// lookups, under any access pattern.
func TestPropertyTLBInvariants(t *testing.T) {
	f := func(pages []uint8) bool {
		tlb := NewTLB(8)
		lookups := int64(0)
		for _, p := range pages {
			page := uint64(p % 32)
			if !tlb.Lookup(page) {
				tlb.Insert(page)
			}
			lookups++
			if len(tlb.order) > 8 || len(tlb.where) > 8 {
				return false
			}
			if len(tlb.order) != len(tlb.where) {
				return false
			}
		}
		return tlb.Hits+tlb.Misses == lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: working sets within TLB capacity stop missing after one pass.
func TestPropertyWorkingSetResidency(t *testing.T) {
	f := func(seed uint64, wsRaw uint8) bool {
		ws := int(wsRaw%8) + 1 // 1..8 pages, TLB cap 8
		mmu := NewMMU(1<<30, Page2M, 8, 40)
		rng := sim.NewRand(seed)
		// One pass over the working set.
		for i := 0; i < ws; i++ {
			_, _ = mmu.Translate(uint64(i) * Page2M.Bytes())
		}
		before := mmu.TLB.Misses
		for i := 0; i < 1000; i++ {
			p := rng.Intn(ws)
			_, _ = mmu.Translate(uint64(p) * Page2M.Bytes())
		}
		return mmu.TLB.Misses == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
