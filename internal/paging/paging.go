// Package paging models the Nautilus memory-translation substrate the
// paper's predictability rests on (Section 2): identity-mapped paging
// using the largest possible page size, with all addresses mapped at boot,
// no swapping and no page movement. The consequence claimed there — "TLB
// misses are extremely rare, and, indeed, if the TLB entries can cover the
// physical address space of the machine, do not occur at all after
// startup" — is directly observable on this model.
package paging

import (
	"errors"
	"fmt"
)

// PageSize selects the mapping granularity.
type PageSize uint8

const (
	// Page4K is the x64 base page size.
	Page4K PageSize = iota
	// Page2M is a large page (one PDE level saved).
	Page2M
	// Page1G is the largest x64 page size.
	Page1G
)

// Bytes returns the page size in bytes.
func (p PageSize) Bytes() uint64 {
	switch p {
	case Page4K:
		return 4 << 10
	case Page2M:
		return 2 << 20
	default:
		return 1 << 30
	}
}

// WalkLevels returns the number of page-table levels a miss must walk.
func (p PageSize) WalkLevels() int {
	switch p {
	case Page4K:
		return 4
	case Page2M:
		return 3
	default:
		return 2
	}
}

// String names the page size.
func (p PageSize) String() string {
	switch p {
	case Page4K:
		return "4K"
	case Page2M:
		return "2M"
	default:
		return "1G"
	}
}

// ErrUnmapped is returned for addresses beyond the identity map.
var ErrUnmapped = errors.New("paging: address outside the identity map")

// IdentityMap is the boot-built page table: [0, PhysBytes) mapped 1:1 with
// a uniform page size. It never changes after construction — no page
// faults, no swapping, no movement.
type IdentityMap struct {
	PhysBytes uint64
	Size      PageSize
	pages     uint64
}

// NewIdentityMap builds the map. physBytes is rounded up to a whole page.
func NewIdentityMap(physBytes uint64, size PageSize) *IdentityMap {
	ps := size.Bytes()
	pages := (physBytes + ps - 1) / ps
	return &IdentityMap{PhysBytes: pages * ps, Size: size, pages: pages}
}

// Pages returns the number of mapped pages — the TLB reach requirement.
func (m *IdentityMap) Pages() uint64 { return m.pages }

// PageOf returns the page number of addr, or an error if unmapped.
func (m *IdentityMap) PageOf(addr uint64) (uint64, error) {
	if addr >= m.PhysBytes {
		return 0, fmt.Errorf("%w: %#x >= %#x", ErrUnmapped, addr, m.PhysBytes)
	}
	return addr / m.Size.Bytes(), nil
}

// TLB is a fully-associative translation cache with LRU replacement —
// small and simple, like the structure whose coverage the paper reasons
// about.
type TLB struct {
	capacity int
	// LRU list: index 0 is most recent.
	order []uint64
	where map[uint64]int

	Hits, Misses int64
}

// NewTLB creates a TLB holding capacity entries.
func NewTLB(capacity int) *TLB {
	if capacity < 1 {
		capacity = 1
	}
	return &TLB{capacity: capacity, where: make(map[uint64]int, capacity)}
}

// Capacity returns the entry count.
func (t *TLB) Capacity() int { return t.capacity }

// Lookup checks for page; on hit the entry becomes most-recent.
func (t *TLB) Lookup(page uint64) bool {
	idx, ok := t.where[page]
	if !ok {
		t.Misses++
		return false
	}
	t.Hits++
	t.touch(idx)
	return true
}

// Insert adds page, evicting the least-recently-used entry if full.
func (t *TLB) Insert(page uint64) {
	if _, ok := t.where[page]; ok {
		t.touch(t.where[page])
		return
	}
	if len(t.order) >= t.capacity {
		victim := t.order[len(t.order)-1]
		t.order = t.order[:len(t.order)-1]
		delete(t.where, victim)
	}
	t.order = append([]uint64{page}, t.order...)
	t.reindex()
}

func (t *TLB) touch(idx int) {
	if idx == 0 {
		return
	}
	page := t.order[idx]
	copy(t.order[1:idx+1], t.order[:idx])
	t.order[0] = page
	t.reindex()
}

func (t *TLB) reindex() {
	for i, p := range t.order {
		t.where[p] = i
	}
}

// MMU combines the identity map and a TLB; Translate returns the cycle
// cost of one memory access's translation.
type MMU struct {
	Map *IdentityMap
	TLB *TLB

	// WalkCostPerLevel is the cycles per page-table level on a miss.
	WalkCostPerLevel int64

	WalkCycles int64 // cumulative cycles spent walking
	Accesses   int64
}

// NewMMU builds an MMU with the given TLB capacity.
func NewMMU(physBytes uint64, size PageSize, tlbEntries int, walkCostPerLevel int64) *MMU {
	return &MMU{
		Map:              NewIdentityMap(physBytes, size),
		TLB:              NewTLB(tlbEntries),
		WalkCostPerLevel: walkCostPerLevel,
	}
}

// Translate performs one translation, returning its cycle cost (zero for a
// TLB hit; a full walk for a miss).
func (m *MMU) Translate(addr uint64) (int64, error) {
	m.Accesses++
	page, err := m.Map.PageOf(addr)
	if err != nil {
		return 0, err
	}
	if m.TLB.Lookup(page) {
		return 0, nil
	}
	cost := int64(m.Map.Size.WalkLevels()) * m.WalkCostPerLevel
	m.WalkCycles += cost
	m.TLB.Insert(page)
	return cost, nil
}

// Covered reports whether the TLB can hold the entire identity map — the
// paper's no-misses-after-startup condition.
func (m *MMU) Covered() bool {
	return uint64(m.TLB.Capacity()) >= m.Map.Pages()
}

// MissRate returns TLB misses per access.
func (m *MMU) MissRate() float64 {
	total := m.TLB.Hits + m.TLB.Misses
	if total == 0 {
		return 0
	}
	return float64(m.TLB.Misses) / float64(total)
}

// Warmup touches every mapped page once (what booting the identity map and
// first-touch initialization does).
func (m *MMU) Warmup() {
	ps := m.Map.Size.Bytes()
	for a := uint64(0); a < m.Map.PhysBytes; a += ps {
		_, _ = m.Translate(a)
	}
}
