package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/stats"
	"hrtsched/internal/whatif"
)

// SimulateRequest is the body of POST /v1/simulate: one what-if scenario
// and the root seed of its replication streams. Equal requests produce
// byte-identical responses.
type SimulateRequest struct {
	Scenario whatif.Scenario `json:"scenario"`
	Seed     uint64          `json:"seed"`
}

// simInitialAvgNs seeds the shed retry-after quote before the pool has
// observed any run.
const simInitialAvgNs = int64(100 * time.Millisecond)

const (
	simHistLoUs     = 10
	simHistHiUs     = 10_000_000 // 10 s
	simHistNBuckets = 48
)

type simResult struct {
	report *whatif.Report
	err    error
}

type simJob struct {
	ctx  context.Context
	req  SimulateRequest
	done chan simResult
}

// simPool is the bounded worker pool behind /v1/simulate. Simulation is
// CPU-bound for whole milliseconds at a time — orders of magnitude heavier
// than an admission query — so it gets its own small pool and queue with
// the same shed contract as the query shards: a full queue answers 429
// with a Retry-After quote sized from the queue depth and the observed
// mean run time.
type simPool struct {
	workers int
	ch      chan *simJob
	wg      sync.WaitGroup

	requests     atomic.Int64
	shed         atomic.Int64
	errors       atomic.Int64
	canceled     atomic.Int64
	replications atomic.Int64
	hyperperiods atomic.Int64
	inflight     atomic.Int64
	// avgNs is an EWMA (alpha 1/8) of run wall time, feeding retry-after.
	avgNs atomic.Int64

	histMu sync.Mutex
	hist   *stats.Histogram
}

func newSimPool(workers, depth int) *simPool {
	p := &simPool{
		workers: workers,
		ch:      make(chan *simJob, depth),
		hist:    stats.NewLogHistogram(simHistLoUs, simHistHiUs, simHistNBuckets),
	}
	p.avgNs.Store(simInitialAvgNs)
	return p
}

func (p *simPool) run() {
	defer p.wg.Done()
	for job := range p.ch {
		if job.ctx.Err() != nil {
			p.canceled.Add(1)
			job.done <- simResult{err: job.ctx.Err()}
			continue
		}
		p.inflight.Add(1)
		start := time.Now()
		report, err := whatif.Run(job.req.Scenario, job.req.Seed)
		elapsed := time.Since(start)
		p.inflight.Add(-1)
		if err != nil {
			p.errors.Add(1)
		} else {
			p.replications.Add(int64(report.Replications))
			p.hyperperiods.Add(int64(report.Replications * report.Hyperperiods))
			old := p.avgNs.Load()
			p.avgNs.Store(old + (elapsed.Nanoseconds()-old)/8)
			p.histMu.Lock()
			p.hist.Add(float64(elapsed.Microseconds()))
			p.histMu.Unlock()
		}
		job.done <- simResult{report: report, err: err}
	}
}

// Simulate runs one what-if scenario on the simulation pool. The scenario
// must already be normalized and validated (the HTTP handler and router do
// this so malformed scenarios answer 400, not 500). A full queue sheds
// with the standard overload error.
func (s *Server) Simulate(ctx context.Context, req SimulateRequest) (*whatif.Report, error) {
	p := s.sim
	p.requests.Add(1)
	job := &simJob{ctx: ctx, req: req, done: make(chan simResult, 1)}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrServerClosed
	}
	shed := false
	select {
	case p.ch <- job:
	default:
		shed = true
	}
	s.closeMu.RUnlock()
	if shed {
		p.shed.Add(1)
		return nil, &core.AdmissionError{
			Reason: "server-overload",
			Detail: fmt.Sprintf("simulate queue full (%d deep)", cap(p.ch)),
			RetryAfterNs: (int64(len(p.ch)) + 1) * p.avgNs.Load() /
				int64(p.workers),
		}
	}
	select {
	case res := <-job.done:
		return res.report, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleSimulate answers POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, req *http.Request) {
	var body SimulateRequest
	if !decodeBody(w, req, &body) {
		return
	}
	body.Scenario = body.Scenario.Normalize()
	if err := body.Scenario.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_scenario", err.Error(), 0)
		return
	}
	report, err := s.Simulate(req.Context(), body)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

func (s *Server) registerSimMetrics() {
	p := s.sim
	r := s.reg
	r.Counter("hrtd_whatif_requests_total", "Simulation requests received.",
		func() float64 { return float64(p.requests.Load()) })
	r.Counter("hrtd_whatif_shed_total", "Simulation requests shed: queue full.",
		func() float64 { return float64(p.shed.Load()) })
	r.Counter("hrtd_whatif_errors_total", "Simulation runs that failed.",
		func() float64 { return float64(p.errors.Load()) })
	r.Counter("hrtd_whatif_canceled_total", "Simulation jobs dropped: context canceled while queued.",
		func() float64 { return float64(p.canceled.Load()) })
	r.Counter("hrtd_whatif_replications_total", "Seeded replications executed.",
		func() float64 { return float64(p.replications.Load()) })
	r.Counter("hrtd_whatif_hyperperiods_total", "Hyperperiods simulated across all replications.",
		func() float64 { return float64(p.hyperperiods.Load()) })
	r.Gauge("hrtd_whatif_workers", "Simulation worker pool size.",
		func() float64 { return float64(p.workers) })
	r.Gauge("hrtd_whatif_queue_depth", "Simulation jobs queued.",
		func() float64 { return float64(len(p.ch)) })
	r.Gauge("hrtd_whatif_inflight", "Simulation jobs executing now.",
		func() float64 { return float64(p.inflight.Load()) })
	r.Histogram("hrtd_whatif_run_duration_us", "Simulation run wall time in microseconds.",
		func() []HistSample {
			p.histMu.Lock()
			c := p.hist.Clone()
			p.histMu.Unlock()
			return []HistSample{{H: c}}
		})
}
