package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hrtsched/internal/dag"
	"hrtsched/internal/durable"
	"hrtsched/internal/fault"
	"hrtsched/internal/plan"
)

// statusNoDur marshals a cluster's status with the durability block
// removed: that block carries session-local WAL counters, while everything
// else must be a pure function of the committed mutation sequence.
func statusNoDur(t *testing.T, c *Cluster) string {
	t.Helper()
	st := c.Status()
	st.Durability = nil
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal status: %v", err)
	}
	return string(b)
}

// copyDir clones src into dst — the kill -9 moment, frozen to disk.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("read %s: %v", src, err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatalf("write %s: %v", e.Name(), err)
		}
	}
}

func TestClusterDurabilityConfigValidate(t *testing.T) {
	cfg := ClusterConfig{Spec: testSpec, Nodes: 2, Durability: &DurabilityConfig{}}
	if err := cfg.Validate(); err == nil {
		t.Fatalf("empty durability dir validated")
	}
}

func TestClusterStatusOmitsDurabilityWhenDisabled(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	b, err := json.Marshal(c.Status())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(b), "durability") {
		t.Fatalf("disabled status leaks a durability block: %s", b)
	}
}

func TestClusterDurableRecoveryDeterministic(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Durability: &DurabilityConfig{Dir: dir}})
	ctx := context.Background()

	for i, frac := range []float64{0.30, 0.25, 0.20, 0.15, 0.10, 0.05} {
		id := fmt.Sprintf("set-%d", i)
		if res, err := c.Place(ctx, id, setOfUtil(frac)); err != nil || !res.Placed {
			t.Fatalf("Place(%s): %+v, %v", id, res, err)
		}
	}
	if _, err := c.Remove(ctx, "set-1"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := c.Drain(ctx, 0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := c.Undrain(0); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	if _, err := c.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	want := statusNoDur(t, c)
	if st := c.Status(); st.Durability == nil || st.Durability.Degraded {
		t.Fatalf("store unhealthy mid-test: %+v", st.Durability)
	}

	// Freeze the data dir twice without closing the cluster (kill -9: no
	// final snapshot, recovery must replay the WAL) and recover each copy.
	dir2, dir3 := t.TempDir(), t.TempDir()
	copyDir(t, dir, dir2)
	copyDir(t, dir, dir3)
	c2 := newTestCluster(t, ClusterConfig{Nodes: 3, Durability: &DurabilityConfig{Dir: dir2}})
	c3 := newTestCluster(t, ClusterConfig{Nodes: 3, Durability: &DurabilityConfig{Dir: dir3}})
	got2, got3 := statusNoDur(t, c2), statusNoDur(t, c3)
	if got2 != want {
		t.Fatalf("replay recovery diverged:\n got %s\nwant %s", got2, want)
	}
	if got3 != got2 {
		t.Fatalf("two recoveries of the same bytes diverged:\n%s\n%s", got3, got2)
	}

	// Clean shutdown cuts a final snapshot; snapshot-based recovery must
	// land on the same state replay-based recovery did.
	c2.Close()
	c4 := newTestCluster(t, ClusterConfig{Nodes: 3, Durability: &DurabilityConfig{Dir: dir2}})
	if rec := c4.Recovery(); rec.Replayed != 0 {
		t.Fatalf("clean restart replayed %d records", rec.Replayed)
	}
	if got4 := statusNoDur(t, c4); got4 != want {
		t.Fatalf("snapshot recovery diverged:\n got %s\nwant %s", got4, want)
	}
}

func TestClusterRecoveryReleasesMoveOrphans(t *testing.T) {
	ffs := fault.NewFaultyFS(nil)
	dir := t.TempDir()
	st, err := durable.Open(durable.Config{Dir: dir, NumNodes: 2, Spec: testSpec, FS: ffs})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	// Hand-craft the crash window of a move: the destination place hit the
	// log, the home release did not.
	set := setOfUtil(0.20)
	for _, r := range []durable.Record{
		{Kind: durable.KindPlace, Origin: durable.OriginClient, Node: 0, ID: "a", Tasks: set},
		{Kind: durable.KindPlace, Origin: durable.OriginRebalance, Node: 1, ID: "a", Tasks: set},
	} {
		if err := st.LogBatch([]durable.Record{r}); err != nil {
			t.Fatalf("LogBatch: %v", err)
		}
	}
	ffs.Crash(fault.CrashOptions{}) //nolint:errcheck
	st.Close()                      //nolint:errcheck

	c := newTestCluster(t, ClusterConfig{Nodes: 2, Durability: &DurabilityConfig{Dir: dir}})
	rec := c.Recovery()
	if rec.Replayed != 2 || rec.OrphansReleased != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	status := c.Status()
	if status.Placements != 1 || status.Nodes[0].Tasks != 0 || status.Nodes[1].Tasks != 1 {
		t.Fatalf("orphan survived recovery: %+v", status)
	}
	// The set is fully usable at its post-move home.
	if _, err := c.Remove(context.Background(), "a"); err != nil {
		t.Fatalf("Remove recovered set: %v", err)
	}
}

// TestClusterCrashRecoveryProperty drives a durable cluster and an
// in-memory twin through one random mutation stream, crashes the durable
// one at the end (a frozen copy of its data dir, sometimes with a torn
// append on the active segment), and requires the recovered cluster to
// report exactly the twin's state.
func TestClusterCrashRecoveryProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			mem := newTestCluster(t, ClusterConfig{Nodes: 4})
			dur := newTestCluster(t, ClusterConfig{Nodes: 4, Durability: &DurabilityConfig{Dir: dir}})
			ctx := context.Background()

			randSet := func() plan.TaskSet {
				set := make(plan.TaskSet, 1+rng.Intn(3))
				for i := range set {
					period := int64(100_000) << rng.Intn(3)
					set[i] = plan.Task{PeriodNs: period, SliceNs: period/50 + rng.Int63n(period/20)}
				}
				return set
			}
			randDAGTask := func() dag.Task {
				n := 3 + rng.Intn(4)
				dt := dag.Task{PeriodNs: int64(10_000_000) << rng.Intn(2), Cores: 2 + rng.Intn(2)}
				for j := 0; j < n; j++ {
					dt.Nodes = append(dt.Nodes, dag.Node{WCETNs: (20 + rng.Int63n(100)) * 1000})
				}
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						if rng.Float64() < 0.4 {
							dt.Edges = append(dt.Edges, dag.Edge{From: u, To: v})
						}
					}
				}
				if rng.Intn(4) == 0 {
					dt.DeadlineNs = 150_000 // tight: exercises analytical rejection
				}
				return dt
			}
			dagAnalyzers := []string{"", "classical", "alpha-beta"}
			var live []string
			next := 0
			ops := 80 + rng.Intn(60)
			for i := 0; i < ops; i++ {
				switch r := rng.Float64(); {
				case r < 0.45 || len(live) == 0:
					id := fmt.Sprintf("set-%03d", next)
					next++
					set := randSet()
					rm, err1 := mem.Place(ctx, id, set)
					rd, err2 := dur.Place(ctx, id, set)
					if err1 != nil || err2 != nil || rm.Placed != rd.Placed || rm.Node != rd.Node {
						t.Fatalf("op %d: Place(%s) diverged: mem=%+v,%v dur=%+v,%v", i, id, rm, err1, rd, err2)
					}
					if rm.Placed {
						live = append(live, id)
					}
				case r < 0.55:
					// DAG admission flows through the same durable commit
					// path (KindPlaceDAG); placements join the same lifecycle.
					id := fmt.Sprintf("dag-%03d", next)
					next++
					dt := randDAGTask()
					an := dagAnalyzers[rng.Intn(len(dagAnalyzers))]
					rm, err1 := mem.PlaceDAG(ctx, id, dt, an)
					rd, err2 := dur.PlaceDAG(ctx, id, dt, an)
					if err1 != nil || err2 != nil || rm.Placed != rd.Placed || rm.Node != rd.Node ||
						rm.Analysis.BoundNs != rd.Analysis.BoundNs {
						t.Fatalf("op %d: PlaceDAG(%s) diverged: mem=%+v,%v dur=%+v,%v", i, id, rm, err1, rd, err2)
					}
					if rm.Placed {
						live = append(live, id)
					}
				case r < 0.80:
					j := rng.Intn(len(live))
					id := live[j]
					live = append(live[:j], live[j+1:]...)
					if _, err1 := mem.Remove(ctx, id); err1 != nil {
						t.Fatalf("op %d: mem Remove(%s): %v", i, id, err1)
					}
					if _, err2 := dur.Remove(ctx, id); err2 != nil {
						t.Fatalf("op %d: dur Remove(%s): %v", i, id, err2)
					}
				case r < 0.90:
					node := rng.Intn(4)
					r1, err1 := mem.Drain(ctx, node)
					r2, err2 := dur.Drain(ctx, node)
					if err1 != nil || err2 != nil || r1.Moved != r2.Moved || r1.Stranded != r2.Stranded {
						t.Fatalf("op %d: Drain(%d) diverged: %+v,%v vs %+v,%v", i, node, r1, err1, r2, err2)
					}
					if err := mem.Undrain(node); err != nil {
						t.Fatalf("Undrain: %v", err)
					}
					if err := dur.Undrain(node); err != nil {
						t.Fatalf("Undrain: %v", err)
					}
				default:
					n1, err1 := mem.Rebalance(ctx)
					n2, err2 := dur.Rebalance(ctx)
					if err1 != nil || err2 != nil || n1 != n2 {
						t.Fatalf("op %d: Rebalance diverged: %d,%v vs %d,%v", i, n1, err1, n2, err2)
					}
				}
			}
			if st := dur.Status(); st.Durability == nil || st.Durability.Degraded {
				t.Fatalf("durable cluster unhealthy: %+v", st.Durability)
			}
			// Rejections, cancellations, and unmatched removals commit
			// nothing, so they are deliberately not durable: zero them
			// before comparing against a recovered session.
			durableView := func(c *Cluster) string {
				st := c.Status()
				st.Durability = nil
				st.Rejected, st.Canceled, st.Unmatched = 0, 0, 0
				// DAG submission/admission/rejection tallies are session
				// counters too; placements and the placed total are durable.
				if st.DAG != nil {
					st.DAG.Submitted, st.DAG.Admitted, st.DAG.Rejected = 0, 0, 0
					if *st.DAG == (DAGStatus{}) {
						st.DAG = nil
					}
				}
				b, err := json.Marshal(st)
				if err != nil {
					t.Fatalf("marshal status: %v", err)
				}
				return string(b)
			}
			want := durableView(mem)
			if got := durableView(dur); got != want {
				t.Fatalf("twins diverged before the crash:\n dur %s\n mem %s", got, want)
			}

			crashDir := t.TempDir()
			copyDir(t, dir, crashDir)
			if rng.Intn(2) == 0 {
				// A torn append that never acked: garbage after the last
				// synced frame of the newest segment. Recovery must cut it.
				var newest string
				entries, _ := os.ReadDir(crashDir)
				for _, e := range entries {
					if strings.HasSuffix(e.Name(), ".wal") && e.Name() > newest {
						newest = e.Name()
					}
				}
				f, err := os.OpenFile(filepath.Join(crashDir, newest), os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatalf("open active segment: %v", err)
				}
				if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
					t.Fatalf("tear segment: %v", err)
				}
				f.Close()
			}
			rec := newTestCluster(t, ClusterConfig{Nodes: 4, Durability: &DurabilityConfig{Dir: crashDir}})
			if got := durableView(rec); got != want {
				t.Fatalf("recovered state diverged from the twin:\n got %s\nwant %s\nrecovery %+v",
					got, want, rec.Recovery())
			}
		})
	}
}

// TestDurablePlaceThroughputAtLeast8k is the group-commit acceptance gate:
// with durability on, concurrent placement mutations must sustain at least
// 8k ops/s — each op acked only after its record is fsynced. The bar was
// 5k through PR 7; the greedy queue drain (no flush-window wait before a
// batch commits) raised the measured rate enough to hold a higher floor.
// Wall-clock fsync throughput is at the mercy of whatever else the box is
// running (the race suite runs packages in parallel), so the gate takes
// the best of three attempts: the bar stays at 8000, transient scheduler
// noise doesn't fail it.
func TestDurablePlaceThroughputAtLeast8k(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock perf gate skipped under the race detector")
	}
	var rate float64
	for attempt := 1; attempt <= 3; attempt++ {
		rate = durablePlaceRate(t)
		if t.Failed() {
			return
		}
		t.Logf("durable mutation rate: %.0f ops/s (attempt %d)", rate, attempt)
		if rate >= 8000 {
			return
		}
	}
	t.Fatalf("durable place throughput %.0f ops/s, want >= 8000", rate)
}

// raceEnabled is set by race_enabled_test.go under -race.
var raceEnabled bool

func durablePlaceRate(t *testing.T) float64 {
	c := newTestCluster(t, ClusterConfig{Nodes: 4, Durability: &DurabilityConfig{Dir: t.TempDir()}})
	ctx := context.Background()
	set := plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 2_000}}
	const workers, perWorker = 8, 400
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				res, err := c.Place(ctx, id, set)
				if err != nil || !res.Placed {
					t.Errorf("Place(%s): %+v, %v", id, res, err)
					return
				}
				if _, err := c.Remove(ctx, id); err != nil {
					t.Errorf("Remove(%s): %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if t.Failed() {
		return 0
	}
	st := c.Status()
	if st.Durability == nil || st.Durability.Degraded {
		t.Fatalf("store degraded during the run: %+v", st.Durability)
	}
	ops := int64(workers * perWorker * 2)
	if st.Durability.Records != ops {
		t.Fatalf("logged %d records, want %d", st.Durability.Records, ops)
	}
	return float64(ops) / elapsed.Seconds()
}

func benchClusterPlace(b *testing.B, durability *DurabilityConfig) {
	cfg := ClusterConfig{Spec: testSpec, Nodes: 4, Durability: durability}
	c, err := NewCluster(cfg)
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	set := plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 2_000}}
	var workerSeq sync.Mutex
	nextWorker := 0
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		workerSeq.Lock()
		w := nextWorker
		nextWorker++
		workerSeq.Unlock()
		i := 0
		for pb.Next() {
			id := fmt.Sprintf("w%d-%d", w, i)
			i++
			if res, err := c.Place(ctx, id, set); err != nil || !res.Placed {
				b.Errorf("Place(%s): %+v, %v", id, res, err)
				return
			}
			if _, err := c.Remove(ctx, id); err != nil {
				b.Errorf("Remove(%s): %v", id, err)
				return
			}
		}
	})
}

func BenchmarkClusterPlaceMemory(b *testing.B) {
	benchClusterPlace(b, nil)
}

func BenchmarkClusterPlaceDurable(b *testing.B) {
	benchClusterPlace(b, &DurabilityConfig{Dir: b.TempDir()})
}
