// Package serve is the admission-query service: a production-shaped daemon
// layer over the pure schedulability engine in internal/plan. Queries are
// routed to worker shards by canonical task-set digest (so identical sets
// always land on the shard holding their cached verdict), batched per shard
// under a bounded queue with a flush window, answered from a per-shard LRU
// when possible, and shed with a structured retry-after error when the
// queue is full. Everything observable is exported through the pull-based
// metrics Registry.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/plan"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
)

// SpecFor derives the analysis spec for a platform: the per-invocation
// scheduler overhead in nanoseconds (the same quantity core charges in its
// own admission simulation) plus a utilization limit.
func SpecFor(m machine.Spec, utilLimit float64) plan.Spec {
	return plan.Spec{
		OverheadNs:       m.CyclesToNanos(sim.Time(m.TotalSchedCycles())),
		UtilizationLimit: utilLimit,
	}
}

// ErrServerClosed is returned by queries submitted after Close.
var ErrServerClosed = errors.New("serve: server closed")

// Latency histogram shape: 10 us resolution over [0, 20 ms). Local
// admission queries answer in tens to hundreds of microseconds; anything
// past 20 ms lands in the overflow bucket and pins the quantile at Hi.
const (
	latHistLoUs      = 0
	latHistHiUs      = 20_000
	latHistNBuckets  = 2_000
	shedRetryWindows = 4 // retry-after quote: queue drains in ~this many flush windows
)

// Config parameterizes a Server. Zero fields take defaults.
type Config struct {
	// Spec is the platform model every analysis runs against.
	Spec plan.Spec
	// Shards is the number of worker shards; default GOMAXPROCS.
	Shards int
	// QueueDepth bounds each shard's request queue; default 1024.
	QueueDepth int
	// BatchSize caps how many requests one flush processes; default 64.
	BatchSize int
	// FlushWindow sizes the retry-after quote handed to shed clients (one
	// queue's worth of work is quoted as queued-batches × FlushWindow);
	// default 200 us. Shard workers drain their queues greedily and never
	// wait on it: a lone request is answered immediately, and batches form
	// exactly when the queue is deeper than the worker is fast.
	FlushWindow time.Duration
	// CacheEntries bounds each shard's verdict LRU; default 4096.
	CacheEntries int
	// MaxBatchItems caps the item count of one /v1/analyze-batch request;
	// larger batches answer 400 quoting the cap. Default
	// DefaultMaxBatchItems (1024).
	MaxBatchItems int
	// SimWorkers sizes the /v1/simulate worker pool; default
	// max(1, GOMAXPROCS/2) — simulation runs are CPU-bound for
	// milliseconds, so they never get the whole machine.
	SimWorkers int
	// SimQueueDepth bounds the /v1/simulate queue; default 16. A full
	// queue sheds with 429 and a Retry-After quote.
	SimQueueDepth int
}

func (c *Config) fillDefaults() {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.FlushWindow == 0 {
		c.FlushWindow = 200 * time.Microsecond
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = DefaultMaxBatchItems
	}
	if c.SimWorkers == 0 {
		c.SimWorkers = runtime.GOMAXPROCS(0) / 2
		if c.SimWorkers < 1 {
			c.SimWorkers = 1
		}
	}
	if c.SimQueueDepth == 0 {
		c.SimQueueDepth = 16
	}
}

// Validate rejects nonsensical settings (negative counts, bad spec).
func (c Config) Validate() error {
	if c.Shards < 0 || c.QueueDepth < 0 || c.BatchSize < 0 || c.CacheEntries < 0 || c.FlushWindow < 0 || c.MaxBatchItems < 0 || c.SimWorkers < 0 || c.SimQueueDepth < 0 {
		return fmt.Errorf("serve: negative config value: %+v", c)
	}
	if c.Spec.OverheadNs < 0 {
		return fmt.Errorf("serve: negative overhead %dns", c.Spec.OverheadNs)
	}
	if c.Spec.UtilizationLimit <= 0 || c.Spec.UtilizationLimit > 1 {
		return fmt.Errorf("serve: utilization limit %g outside (0,1]", c.Spec.UtilizationLimit)
	}
	return nil
}

type queryKind uint8

const (
	analyzeQuery queryKind = iota
	capacityQuery
)

type request struct {
	ctx     context.Context
	kind    queryKind
	set     plan.TaskSet // canonicalized before routing
	digest  uint64
	probeNs int64
	start   time.Time
	done    chan response
}

type response struct {
	verdict  plan.Verdict
	capacity plan.CapacityReport
	cached   bool
	canceled bool
}

type shard struct {
	id    int
	ch    chan *request
	cache *lru
	// memo caches demand-bound curves for capacity queries, so a repeated
	// what-if probe patches a retained curve instead of re-simulating the
	// hyperperiod per binary-search step. Owned by the shard goroutine.
	memo *plan.Memo

	// histMu guards hist; the shard goroutine writes it, scrapes clone it.
	histMu sync.Mutex
	hist   *stats.Histogram

	hits      atomic.Int64
	misses    atomic.Int64
	shed      atomic.Int64
	processed atomic.Int64
	batches   atomic.Int64
	entries   atomic.Int64
	canceled  atomic.Int64
}

// Server is the sharded admission-query service.
type Server struct {
	cfg    Config
	shards []*shard
	sim    *simPool
	reg    *Registry
	// analysis is the default plan.Analysis for cfg.Spec; every query
	// verdict dispatches through the interface.
	analysis plan.Analysis

	wg sync.WaitGroup // shard goroutines

	// closeMu serializes queue sends against Close: submitters hold the
	// read side across the closed-check and the (non-blocking) channel
	// send, so once Close holds the write side no new send can race the
	// channel close.
	closeMu sync.RWMutex
	closed  bool
}

// New starts a server with cfg's shards running. Close releases them.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(sh)
	}
	for i := 0; i < s.sim.workers; i++ {
		s.sim.wg.Add(1)
		go s.sim.run()
	}
	return s, nil
}

// newServer builds the server without starting the shard workers; tests
// use it to exercise queue-full behaviour without a drain race.
func newServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards), analysis: plan.DefaultEDF(cfg.Spec)}
	for i := range s.shards {
		s.shards[i] = &shard{
			id:    i,
			ch:    make(chan *request, cfg.QueueDepth),
			cache: newLRU(cfg.CacheEntries),
			memo:  plan.NewMemo(cfg.Spec, cfg.CacheEntries),
			hist:  stats.NewHistogram(latHistLoUs, latHistHiUs, latHistNBuckets),
		}
	}
	s.sim = newSimPool(cfg.SimWorkers, cfg.SimQueueDepth)
	s.reg = NewRegistry()
	s.registerMetrics()
	s.registerSimMetrics()
	return s, nil
}

// Registry returns the server's metrics registry so callers can add their
// own collectors (e.g. kernel robustness counters) before exposing it.
func (s *Server) Registry() *Registry { return s.reg }

// Config returns the effective configuration after defaulting.
func (s *Server) Config() Config { return s.cfg }

// Close stops accepting queries, drains the queues, and waits for the
// shard workers to exit. Safe to call more than once.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	close(s.sim.ch)
	s.wg.Wait()
	s.sim.wg.Wait()
}

// AnalyzeContext answers an admission query for set, from cache when
// possible. The returned bool reports whether the answer came from the
// cache. Canceling ctx abandons the query: a request whose context is
// done when its shard dequeues it is dropped unanswered and counted in
// hrtd_canceled_total.
func (s *Server) AnalyzeContext(ctx context.Context, set plan.TaskSet) (plan.Verdict, bool, error) {
	resp, err := s.submit(ctx, &request{kind: analyzeQuery, set: set})
	return resp.verdict, resp.cached, err
}

// AnalyzeBatchContext answers many admission queries in one call, fanning
// the sets out across their digest-routed shards concurrently and
// collecting the answers in input order. Each verdict — and each cached
// flag — is exactly what AnalyzeContext would have returned for that set
// alone, so batch and single-item answers are byte-identical on the wire.
// The error contract is all-or-nothing: the first per-item error (shed,
// cancellation, server closed) in input order fails the whole batch.
func (s *Server) AnalyzeBatchContext(ctx context.Context, sets []plan.TaskSet) ([]plan.Verdict, []bool, error) {
	verdicts := make([]plan.Verdict, len(sets))
	cached := make([]bool, len(sets))
	errs := make([]error, len(sets))
	var wg sync.WaitGroup
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i], cached[i], errs[i] = s.AnalyzeContext(ctx, sets[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return verdicts, cached, nil
}

// CapacityContext answers a what-if capacity query for set with
// cancellation; see plan.Capacity and AnalyzeContext.
func (s *Server) CapacityContext(ctx context.Context, set plan.TaskSet, probeNs int64) (plan.CapacityReport, error) {
	resp, err := s.submit(ctx, &request{kind: capacityQuery, set: set, probeNs: probeNs})
	return resp.capacity, err
}

// Analyze answers an admission query without cancellation.
//
// Deprecated: use AnalyzeContext, which can abandon queued queries when
// the caller gives up. Analyze is AnalyzeContext(context.Background(), …).
func (s *Server) Analyze(set plan.TaskSet) (plan.Verdict, bool, error) {
	return s.AnalyzeContext(context.Background(), set)
}

// Capacity answers a what-if capacity query without cancellation.
//
// Deprecated: use CapacityContext. Capacity is
// CapacityContext(context.Background(), …).
func (s *Server) Capacity(set plan.TaskSet, probeNs int64) (plan.CapacityReport, error) {
	return s.CapacityContext(context.Background(), set, probeNs)
}

func (s *Server) submit(ctx context.Context, r *request) (response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.ctx = ctx
	canon := r.set.Canonical()
	r.set = canon
	r.digest = canon.Digest()
	r.done = make(chan response, 1)
	r.start = time.Now()
	sh := s.shards[r.digest%uint64(len(s.shards))]

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return response{}, ErrServerClosed
	}
	var shed bool
	select {
	case sh.ch <- r:
	default:
		shed = true
	}
	s.closeMu.RUnlock()

	if shed {
		sh.shed.Add(1)
		return response{}, &core.AdmissionError{
			Reason: "server-overload",
			Detail: fmt.Sprintf("shard %d queue full (%d deep)", sh.id, s.cfg.QueueDepth),
			RetryAfterNs: (time.Duration(shedRetryWindows+len(sh.ch)/s.cfg.BatchSize) *
				s.cfg.FlushWindow).Nanoseconds(),
		}
	}
	select {
	case resp := <-r.done:
		if resp.canceled {
			return response{}, ctx.Err()
		}
		return resp, nil
	case <-ctx.Done():
		return response{}, ctx.Err()
	}
}

// runShard is a shard's worker loop: block for one request, then greedily
// drain whatever is already queued (up to BatchSize) and answer the batch
// in order. The drain never waits: a lone serial request is answered
// immediately, and batches form exactly when the queue is filling faster
// than the worker processes — the same adaptive shape as the WAL's group
// commit, without the fixed flush-window latency it used to add.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	batch := make([]*request, 0, s.cfg.BatchSize)
	for {
		first, ok := <-sh.ch
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		open := true
	fill:
		for len(batch) < s.cfg.BatchSize {
			select {
			case r, more := <-sh.ch:
				if !more {
					open = false
					break fill
				}
				batch = append(batch, r)
			default:
				break fill
			}
		}
		sh.batches.Add(1)
		s.process(sh, batch)
		if !open {
			// Channel closed while filling: drain stragglers and exit.
			for r := range sh.ch {
				s.process(sh, []*request{r})
			}
			return
		}
	}
}

func (s *Server) process(sh *shard, batch []*request) {
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			// The caller gave up while this request was queued: drop it
			// unanswered rather than spend analysis work on it.
			sh.canceled.Add(1)
			r.done <- response{canceled: true}
			continue
		}
		var resp response
		switch r.kind {
		case analyzeQuery:
			if v, ok := sh.cache.get(r.digest); ok {
				sh.hits.Add(1)
				resp = response{verdict: v, cached: true}
			} else {
				sh.misses.Add(1)
				v := s.analysis.Analyze(r.set)
				sh.cache.put(r.digest, v)
				sh.entries.Store(int64(sh.cache.len()))
				resp = response{verdict: v}
			}
		case capacityQuery:
			// r.set is already canonical, so the memoized answer is
			// bit-identical to s.analysis.Capacity(r.set, r.probeNs) with
			// the hyperperiod simulations replaced by curve patches.
			resp = response{capacity: sh.memo.Capacity(r.set, r.probeNs)}
		}
		lat := float64(time.Since(r.start).Nanoseconds()) / 1e3
		sh.histMu.Lock()
		sh.hist.Add(lat)
		sh.histMu.Unlock()
		sh.processed.Add(1)
		r.done <- resp
	}
}

// QueueDepth returns the total number of requests currently queued.
func (s *Server) QueueDepth() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.ch)
	}
	return n
}

// CacheHitRate returns hits/(hits+misses) across shards, 0 before any query.
func (s *Server) CacheHitRate() float64 {
	var hits, misses int64
	for _, sh := range s.shards {
		hits += sh.hits.Load()
		misses += sh.misses.Load()
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// ShedCount returns the total number of load-shed requests.
func (s *Server) ShedCount() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.shed.Load()
	}
	return n
}

// mergedLatency clones and merges every shard's latency histogram.
func (s *Server) mergedLatency() *stats.Histogram {
	merged := stats.NewHistogram(latHistLoUs, latHistHiUs, latHistNBuckets)
	for _, sh := range s.shards {
		sh.histMu.Lock()
		c := sh.hist.Clone()
		sh.histMu.Unlock()
		merged.Merge(c) //nolint:errcheck — identical shapes by construction
	}
	return merged
}

func (s *Server) registerMetrics() {
	perShard := func(val func(*shard) float64) func() []Sample {
		return func() []Sample {
			out := make([]Sample, len(s.shards))
			for i, sh := range s.shards {
				out[i] = Sample{Labels: []Label{{"shard", fmt.Sprint(sh.id)}}, Value: val(sh)}
			}
			return out
		}
	}
	r := s.reg
	r.Gauge("hrtd_shards", "Number of worker shards.", func() float64 {
		return float64(len(s.shards))
	})
	r.GaugeVec("hrtd_queue_depth", "Requests queued per shard.",
		perShard(func(sh *shard) float64 { return float64(len(sh.ch)) }))
	r.Gauge("hrtd_queue_capacity", "Per-shard queue capacity.", func() float64 {
		return float64(s.cfg.QueueDepth)
	})
	r.CounterVec("hrtd_requests_total", "Requests answered per shard.",
		perShard(func(sh *shard) float64 { return float64(sh.processed.Load()) }))
	r.CounterVec("hrtd_batches_total", "Batches flushed per shard.",
		perShard(func(sh *shard) float64 { return float64(sh.batches.Load()) }))
	r.CounterVec("hrtd_cache_hits_total", "Verdict cache hits per shard.",
		perShard(func(sh *shard) float64 { return float64(sh.hits.Load()) }))
	r.CounterVec("hrtd_cache_misses_total", "Verdict cache misses per shard.",
		perShard(func(sh *shard) float64 { return float64(sh.misses.Load()) }))
	r.GaugeVec("hrtd_cache_entries", "Live verdict cache entries per shard.",
		perShard(func(sh *shard) float64 { return float64(sh.entries.Load()) }))
	r.Gauge("hrtd_cache_hit_rate", "Aggregate cache hit rate in [0,1].", s.CacheHitRate)
	r.CounterVec("hrtd_shed_total", "Load-shed requests per shard.",
		perShard(func(sh *shard) float64 { return float64(sh.shed.Load()) }))
	r.CounterVec("hrtd_canceled_total", "Requests dropped per shard: context canceled while queued.",
		perShard(func(sh *shard) float64 { return float64(sh.canceled.Load()) }))
	r.Histogram("hrtd_latency_us", "Query latency in microseconds per shard.",
		func() []HistSample {
			out := make([]HistSample, 0, len(s.shards)+1)
			for _, sh := range s.shards {
				sh.histMu.Lock()
				c := sh.hist.Clone()
				sh.histMu.Unlock()
				out = append(out, HistSample{Labels: []Label{{"shard", fmt.Sprint(sh.id)}}, H: c})
			}
			return out
		})
	r.GaugeVec("hrtd_latency_quantile_us", "Merged query latency quantiles (us).",
		func() []Sample {
			merged := s.mergedLatency()
			qs := []struct {
				label string
				q     float64
			}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}
			out := make([]Sample, 0, len(qs))
			for _, e := range qs {
				v := merged.Quantile(e.q)
				if merged.N() == 0 {
					v = 0 // render 0, not NaN, before any traffic
				}
				out = append(out, Sample{Labels: []Label{{"q", e.label}}, Value: v})
			}
			return out
		})
}
