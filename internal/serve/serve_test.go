package serve

import (
	"context"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/plan"
)

var testSpec = plan.Spec{OverheadNs: 4_600, UtilizationLimit: 0.79}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Spec == (plan.Spec{}) {
		cfg.Spec = testSpec
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Spec: plan.Spec{UtilizationLimit: 0.79}, Shards: -1},
		{Spec: plan.Spec{UtilizationLimit: 0}},
		{Spec: plan.Spec{UtilizationLimit: 1.5}},
		{Spec: plan.Spec{OverheadNs: -1, UtilizationLimit: 0.79}},
		{Spec: plan.Spec{UtilizationLimit: 0.79}, QueueDepth: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if err := (Config{Spec: testSpec}).Validate(); err != nil {
		t.Fatalf("zero config (defaults) rejected: %v", err)
	}
}

func TestAnalyzeMatchesPlanDirectly(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4})
	sets := []plan.TaskSet{
		{{PeriodNs: 1_000_000, SliceNs: 700_000}},
		{{PeriodNs: 20_000, SliceNs: 14_000}},
		{{PeriodNs: 100_000, SliceNs: 30_000}, {PeriodNs: 200_000, SliceNs: 60_000}},
		nil,
	}
	for _, set := range sets {
		want := plan.Analyze(testSpec, set.Canonical())
		got, _, err := s.AnalyzeContext(context.Background(), set)
		if err != nil {
			t.Fatalf("Analyze(%v): %v", set, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("server verdict diverges from plan.Analyze:\nserver %+v\nplan   %+v", got, want)
		}
	}
}

func TestCacheHitByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	set := plan.TaskSet{{PeriodNs: 200_000, SliceNs: 60_000}, {PeriodNs: 100_000, SliceNs: 30_000}}

	v1, cached1, err := s.AnalyzeContext(context.Background(), set)
	if err != nil {
		t.Fatalf("first Analyze: %v", err)
	}
	if cached1 {
		t.Fatalf("first query reported a cache hit")
	}
	// Same set, different order: must hit the cache (canonical digest).
	reordered := plan.TaskSet{{PeriodNs: 100_000, SliceNs: 30_000}, {PeriodNs: 200_000, SliceNs: 60_000}}
	v2, cached2, err := s.AnalyzeContext(context.Background(), reordered)
	if err != nil {
		t.Fatalf("second Analyze: %v", err)
	}
	if !cached2 {
		t.Fatalf("repeat query missed the cache")
	}
	b1, _ := json.Marshal(v1)
	b2, _ := json.Marshal(v2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached answer not byte-identical:\n%s\n%s", b1, b2)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("cached verdict struct differs: %+v vs %+v", v1, v2)
	}
	if rate := s.CacheHitRate(); rate != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5 after one miss + one hit", rate)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	v := func(n int64) plan.Verdict { return plan.Verdict{Digest: uint64(n)} }
	c.put(1, v(1))
	c.put(2, v(2))
	c.get(1) // refresh 1; now 2 is oldest
	c.put(3, v(3))
	if _, ok := c.get(2); ok {
		t.Fatalf("LRU kept the least-recently-used entry")
	}
	if _, ok := c.get(1); !ok {
		t.Fatalf("LRU evicted a recently-used entry")
	}
	if got, _ := c.get(3); got.Digest != 3 {
		t.Fatalf("wrong verdict for key 3: %+v", got)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLoadSheddingReturnsAdmissionError(t *testing.T) {
	// White-box: build the server without starting its workers, fill the
	// single shard's queue to capacity, and submit. With nobody draining,
	// the submit must shed — deterministically, regardless of GOMAXPROCS.
	s, err := newServer(Config{Spec: testSpec, Shards: 1, QueueDepth: 2})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	sh := s.shards[0]
	for i := 0; i < s.cfg.QueueDepth; i++ {
		sh.ch <- &request{}
	}

	_, _, err = s.AnalyzeContext(context.Background(), plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 1_000}})
	if err == nil {
		t.Fatalf("full queue accepted a query")
	}
	if !errors.Is(err, core.ErrAdmission) {
		t.Fatalf("shed error is not an admission error: %v", err)
	}
	var ae *core.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("shed error lacks structure: %v", err)
	}
	if ae.Reason != "server-overload" || ae.RetryAfterNs <= 0 {
		t.Fatalf("bad shed error: %+v", ae)
	}
	if got := s.ShedCount(); got != 1 {
		t.Fatalf("ShedCount = %d, want 1", got)
	}
	if !strings.Contains(s.reg.Render(), `hrtd_shed_total{shard="0"} 1`) {
		t.Fatalf("shed not visible in metrics:\n%s", s.reg.Render())
	}
}

func TestHTTPShedAnswers429(t *testing.T) {
	s, err := newServer(Config{Spec: testSpec, Shards: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	s.shards[0].ch <- &request{} // fill the queue; no worker drains it
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"tasks":[{"period_ns":1000000,"slice_ns":1000}]}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var body APIError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if body.Code != "overloaded" || body.RetryAfterMs <= 0 {
		t.Fatalf("bad 429 body: %+v", body)
	}
	if !strings.Contains(body.Reason, "server-overload") {
		t.Fatalf("429 reason lost the admission detail: %+v", body)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s, err := New(Config{Spec: testSpec, Shards: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, _, err := s.AnalyzeContext(context.Background(), plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 1_000}}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Analyze after Close: err = %v, want ErrServerClosed", err)
	}
}

func TestConcurrentQueriesAllAnswered(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, QueueDepth: 4096, FlushWindow: 50 * time.Microsecond})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Mix of repeated (cacheable) and unique sets.
				slice := int64(100_000 + (i%10)*7_000 + w)
				v, _, err := s.AnalyzeContext(context.Background(), plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: slice}})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if !v.Admit {
					errs <- fmt.Errorf("worker %d: feasible set rejected: %+v", w, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var processed int64
	for _, sh := range s.shards {
		processed += sh.processed.Load()
	}
	if processed != workers*perWorker {
		t.Fatalf("processed %d queries, want %d", processed, workers*perWorker)
	}
	if s.CacheHitRate() == 0 {
		t.Fatalf("repeated queries produced no cache hits")
	}
}

func TestCapacityQuery(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	set := plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 300_000}}
	got, err := s.CapacityContext(context.Background(), set, 0)
	if err != nil {
		t.Fatalf("Capacity: %v", err)
	}
	want := plan.Capacity(testSpec, set.Canonical(), 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("server capacity diverges from plan.Capacity:\n%+v\n%+v", got, want)
	}
}

func TestHTTPAnalyzeRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"tasks":[{"period_ns":1000000,"slice_ns":700000}]}`
	post := func() (int, string, http.Header) {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header
	}
	code1, body1, hdr1 := post()
	code2, body2, hdr2 := post()
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status = %d, %d; body %s", code1, code2, body1)
	}
	if body1 != body2 {
		t.Fatalf("cached HTTP answer not byte-identical:\n%s\n%s", body1, body2)
	}
	if hdr1.Get("X-Hrtd-Cache") != "miss" || hdr2.Get("X-Hrtd-Cache") != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit",
			hdr1.Get("X-Hrtd-Cache"), hdr2.Get("X-Hrtd-Cache"))
	}
	var v plan.Verdict
	if err := json.Unmarshal([]byte(body1), &v); err != nil {
		t.Fatalf("unmarshal verdict: %v", err)
	}
	if !v.Admit {
		t.Fatalf("feasible set rejected over HTTP: %s", body1)
	}

	// Malformed request: 400.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(`{"nope":1}`))
	if err != nil {
		t.Fatalf("POST bad body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
	// Wrong method: 405.
	resp, err = http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatalf("GET analyze: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET analyze status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPMetricsAndHealthz(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Generate one miss and one hit so rates are non-zero.
	set := plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 500_000}}
	for i := 0; i < 2; i++ {
		if _, _, err := s.AnalyzeContext(context.Background(), set); err != nil {
			t.Fatalf("Analyze: %v", err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{
		"hrtd_queue_depth{shard=\"0\"}",
		"hrtd_cache_hit_rate 0.5",
		"hrtd_shed_total",
		"hrtd_latency_us_bucket",
		"hrtd_latency_quantile_us{q=\"0.99\"}",
		"# TYPE hrtd_latency_us histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, hb)
	}
}
