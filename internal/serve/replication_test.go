package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/dag"
	"hrtsched/internal/fault"
	"hrtsched/internal/plan"
	"hrtsched/internal/repl"
)

// replNet is an in-process 3-replica cluster: each replica is a full
// serve.Cluster whose consensus transport calls straight into its peers'
// handlers, gated by a seeded fault.NetPolicy so partitions and message
// drops are scriptable and deterministic.
type replNet struct {
	t      *testing.T
	seed   int64
	dirs   map[int]string
	policy *fault.NetPolicy

	mu       sync.Mutex
	clusters map[int]*Cluster
}

const replNetSize = 3

func newReplNet(t *testing.T, seed int64) *replNet {
	t.Helper()
	rn := &replNet{
		t:        t,
		seed:     seed,
		dirs:     map[int]string{},
		policy:   fault.NewNetPolicy(seed),
		clusters: map[int]*Cluster{},
	}
	for id := 0; id < replNetSize; id++ {
		rn.dirs[id] = t.TempDir()
	}
	t.Cleanup(rn.stopAll)
	return rn
}

func (rn *replNet) peers() map[int]string {
	p := map[int]string{}
	for id := 0; id < replNetSize; id++ {
		p[id] = fmt.Sprintf("http://replica-%d", id)
	}
	return p
}

func (rn *replNet) start(id int) *Cluster {
	rn.t.Helper()
	c, err := NewCluster(ClusterConfig{
		Spec:        testSpec,
		Nodes:       2,
		QueueDepth:  64,
		BatchSize:   8,
		FlushWindow: 100 * time.Microsecond,
		Durability:  &DurabilityConfig{Dir: rn.dirs[id]},
		Replication: &ReplicationConfig{
			ID:                id,
			Replicas:          replNetSize,
			Peers:             rn.peers(),
			Transport:         &replNetTransport{net: rn, from: id},
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   60 * time.Millisecond,
			Seed:              rn.seed + int64(id),
		},
	})
	if err != nil {
		rn.t.Fatalf("start replica %d: %v", id, err)
	}
	rn.mu.Lock()
	rn.clusters[id] = c
	rn.mu.Unlock()
	return c
}

// stop deregisters the replica (peers immediately see it dead) and closes
// it. Close on a deposed/partitioned leader is bounded by check-quorum.
func (rn *replNet) stop(id int) {
	rn.mu.Lock()
	c := rn.clusters[id]
	delete(rn.clusters, id)
	rn.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (rn *replNet) stopAll() {
	for id := 0; id < replNetSize; id++ {
		rn.stop(id)
	}
}

func (rn *replNet) cluster(id int) *Cluster {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return rn.clusters[id]
}

func (rn *replNet) live() []*Cluster {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	ids := make([]int, 0, len(rn.clusters))
	for id := range rn.clusters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Cluster, 0, len(ids))
	for _, id := range ids {
		out = append(out, rn.clusters[id])
	}
	return out
}

// waitLeader blocks until some live replica is a ready leader.
func (rn *replNet) waitLeader(timeout time.Duration) *Cluster {
	rn.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, c := range rn.live() {
			if c.leaderCheck() == nil {
				return c
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	rn.t.Fatalf("no ready leader within %v", timeout)
	return nil
}

type replNetTransport struct {
	net  *replNet
	from int
}

func (tr *replNetTransport) dial(peer int) (*repl.Node, error) {
	delay, ok := tr.net.policy.Admit(tr.from, peer)
	if !ok {
		return nil, errors.New("fault: message dropped")
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	c := tr.net.cluster(peer)
	if c == nil || c.repl == nil {
		return nil, errors.New("fault: peer down")
	}
	return c.repl, nil
}

func (tr *replNetTransport) Append(ctx context.Context, peer int, req repl.AppendRequest) (repl.AppendResponse, error) {
	n, err := tr.dial(peer)
	if err != nil {
		return repl.AppendResponse{}, err
	}
	return n.HandleAppend(req), nil
}

func (tr *replNetTransport) Vote(ctx context.Context, peer int, req repl.VoteRequest) (repl.VoteResponse, error) {
	n, err := tr.dial(peer)
	if err != nil {
		return repl.VoteResponse{}, err
	}
	return n.HandleVote(req), nil
}

func (tr *replNetTransport) TimeoutNow(ctx context.Context, peer int) error {
	n, err := tr.dial(peer)
	if err != nil {
		return err
	}
	n.HandleTimeoutNow()
	return nil
}

// retryable reports errors the mutation driver retries through: elections,
// redirects, warming leaders, indeterminate commits, load sheds, and
// replicas caught mid-restart.
func retryable(err error) bool {
	var nl *NotLeaderError
	var ae *core.AdmissionError
	return errors.As(err, &nl) ||
		errors.As(err, &ae) ||
		errors.Is(err, ErrNoLeader) ||
		errors.Is(err, ErrLeaderNotReady) ||
		errors.Is(err, ErrIndeterminate) ||
		errors.Is(err, ErrPendingID) ||
		errors.Is(err, ErrClusterClosed)
}

// place drives one placement to a determinate outcome: true when the
// cluster committed it (an eventual duplicate-id conflict after an
// indeterminate attempt counts — that IS the commit surfacing), false when
// every node determinately rejected it.
func (rn *replNet) place(t *testing.T, id string, set plan.TaskSet) bool {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c := rn.waitLeader(10 * time.Second)
		res, err := c.Place(context.Background(), id, set)
		switch {
		case err == nil:
			return res.Placed
		case errors.Is(err, ErrDuplicateID):
			return true
		case retryable(err):
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("place %q: unexpected error %v", id, err)
		}
	}
	t.Fatalf("place %q never reached a determinate outcome", id)
	return false
}

// placeDAG drives one DAG admission to a determinate outcome, mirroring
// place: true when the derived server task committed, false on a
// determinate rejection (analytical or placement).
func (rn *replNet) placeDAG(t *testing.T, id string, task dag.Task, analyzer string) bool {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c := rn.waitLeader(10 * time.Second)
		res, err := c.PlaceDAG(context.Background(), id, task, analyzer)
		switch {
		case err == nil:
			return res.Placed
		case errors.Is(err, ErrDuplicateID):
			return true
		case retryable(err):
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("placeDAG %q: unexpected error %v", id, err)
		}
	}
	t.Fatalf("placeDAG %q never reached a determinate outcome", id)
	return false
}

// remove drives one removal of a known-placed id to completion.
func (rn *replNet) remove(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c := rn.waitLeader(10 * time.Second)
		_, err := c.Remove(context.Background(), id)
		switch {
		case err == nil:
			return
		case errors.Is(err, ErrUnknownID):
			// A previous indeterminate attempt committed.
			return
		case retryable(err):
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("remove %q: unexpected error %v", id, err)
		}
	}
	t.Fatalf("remove %q never reached a determinate outcome", id)
}

// placedIDs snapshots the non-pending ids in a replica's placement map.
func placedIDs(c *Cluster) map[string]bool {
	out := map[string]bool{}
	c.mu.Lock()
	for id, rec := range c.placements {
		if !rec.pending {
			out[id] = true
		}
	}
	c.mu.Unlock()
	return out
}

// durableViewRepl marshals a replica's status with every per-replica
// session field stripped: what remains is a pure function of the
// committed log prefix and must match byte-for-byte across replicas.
func durableViewRepl(t *testing.T, c *Cluster) string {
	t.Helper()
	st := c.Status()
	st.Durability = nil
	st.Replication = nil
	st.Rejected = 0
	st.Canceled = 0
	st.Unmatched = 0
	// DAG submission tallies are leader-session counters; only the
	// placements and the replicated placed total are functions of the log.
	if st.DAG != nil {
		st.DAG.Submitted, st.DAG.Admitted, st.DAG.Rejected = 0, 0, 0
		if *st.DAG == (DAGStatus{}) {
			st.DAG = nil
		}
	}
	for i := range st.Nodes {
		st.Nodes[i].QueueDepth = 0
		st.Nodes[i].Draining = false
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal status: %v", err)
	}
	return string(b)
}

// waitConverged blocks until every live replica reports the same durable
// view, returning it.
func (rn *replNet) waitConverged(t *testing.T, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var views []string
	for time.Now().Before(deadline) {
		live := rn.live()
		views = views[:0]
		for _, c := range live {
			views = append(views, durableViewRepl(t, c))
		}
		same := len(views) > 0
		for _, v := range views[1:] {
			if v != views[0] {
				same = false
				break
			}
		}
		if same {
			return views[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replicas never converged; views:\n%s", strings.Join(views, "\n"))
	return ""
}

func TestReplicatedPlaceSurvivesLeaderFailover(t *testing.T) {
	rn := newReplNet(t, 11)
	for id := 0; id < replNetSize; id++ {
		rn.start(id)
	}
	leader := rn.waitLeader(10 * time.Second)
	leaderID := leader.cfg.Replication.ID

	for i := 0; i < 4; i++ {
		if !rn.place(t, fmt.Sprintf("s%d", i), setOfUtil(0.10)) {
			t.Fatalf("place s%d rejected", i)
		}
	}
	rn.waitConverged(t, 5*time.Second)

	// Kill the leader; a follower must take over with every acked
	// placement intact.
	rn.stop(leaderID)
	next := rn.waitLeader(10 * time.Second)
	if next.cfg.Replication.ID == leaderID {
		t.Fatalf("dead leader %d still leads", leaderID)
	}
	ids := placedIDs(next)
	for i := 0; i < 4; i++ {
		if !ids[fmt.Sprintf("s%d", i)] {
			t.Fatalf("placement s%d lost in failover; have %v", i, ids)
		}
	}

	// The survivors still form a majority: mutations keep committing.
	if !rn.place(t, "post", setOfUtil(0.10)) {
		t.Fatalf("post-failover place rejected")
	}
	rn.remove(t, "s0")

	// Restart the dead replica; it catches up to the same durable view.
	rn.start(leaderID)
	view := rn.waitConverged(t, 10*time.Second)
	if !strings.Contains(view, `"placements":4`) {
		t.Fatalf("converged view lost placements: %s", view)
	}
}

func TestReplicatedFollowerRedirectsAndServesStatus(t *testing.T) {
	rn := newReplNet(t, 23)
	for id := 0; id < replNetSize; id++ {
		rn.start(id)
	}
	leader := rn.waitLeader(10 * time.Second)
	leaderID := leader.cfg.Replication.ID
	if !rn.place(t, "a", setOfUtil(0.10)) {
		t.Fatalf("place rejected")
	}

	var follower *Cluster
	for _, c := range rn.live() {
		if c.cfg.Replication.ID != leaderID {
			follower = c
			break
		}
	}
	_, err := follower.Place(context.Background(), "b", setOfUtil(0.10))
	var nl *NotLeaderError
	if !errors.As(err, &nl) {
		t.Fatalf("follower place error = %v, want NotLeaderError", err)
	}
	if nl.LeaderID != leaderID || nl.LeaderURL != fmt.Sprintf("http://replica-%d", leaderID) {
		t.Fatalf("redirect names %d at %q, want leader %d", nl.LeaderID, nl.LeaderURL, leaderID)
	}

	// The follower's status is its durable view of the same log.
	rn.waitConverged(t, 5*time.Second)
	st := follower.Status()
	if st.Placements != 1 || st.Placed != 1 {
		t.Fatalf("follower status = %d placements / %d placed, want 1/1", st.Placements, st.Placed)
	}
	if st.Replication == nil || st.Replication.Role != "follower" || st.Replication.Leader != leaderID {
		t.Fatalf("follower replication block = %+v", st.Replication)
	}
	if st.Durability == nil || st.Durability.SyncedLSN == 0 {
		t.Fatalf("follower durability block = %+v", st.Durability)
	}
}

func TestReplicatedMetricsRender(t *testing.T) {
	rn := newReplNet(t, 31)
	for id := 0; id < replNetSize; id++ {
		rn.start(id)
	}
	leader := rn.waitLeader(10 * time.Second)
	if !rn.place(t, "m", setOfUtil(0.10)) {
		t.Fatalf("place rejected")
	}
	reg := NewRegistry()
	leader.RegisterMetrics(reg)
	text := reg.Render()
	for _, want := range []string{
		"hrtd_repl_term",
		"hrtd_repl_role 2",
		"hrtd_repl_is_leader 1",
		"hrtd_repl_commit_lsn",
		"hrtd_repl_applied_lsn",
		"hrtd_repl_elections_total",
		"hrtd_repl_redirects_total",
		`hrtd_repl_follower_match_lsn{peer="`,
		`hrtd_repl_follower_commit_lag{peer="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestReplicatedPartitionFailoverProperty is the tentpole property test:
// random mutations driven against whichever replica currently leads, with
// leader kills, restarts, and minority partitions injected throughout. An
// in-memory twin records every determinate ack. Afterwards the healed
// cluster — and a fully restarted one — must hold exactly the acked
// placements: nothing lost, nothing phantom.
func TestReplicatedPartitionFailoverProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test: long")
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReplProperty(t, seed)
		})
	}
}

func runReplProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rn := newReplNet(t, seed)
	for id := 0; id < replNetSize; id++ {
		rn.start(id)
	}
	rn.waitLeader(10 * time.Second)

	twin := map[string]bool{} // acked-placed ids not acked-removed
	nextID := 0
	const ops = 90
	for i := 0; i < ops; i++ {
		if i%18 == 17 {
			switch rng.Intn(3) {
			case 0:
				// Kill whoever leads right now and bring it back: a full
				// crash-the-leader failover mid-stream.
				c := rn.waitLeader(10 * time.Second)
				id := c.cfg.Replication.ID
				rn.stop(id)
				rn.start(id)
			case 1:
				// Isolate one replica for a few election timeouts, then
				// heal. Isolating the leader forces a failover AND a
				// divergent-suffix truncation when it rejoins.
				iso := rng.Intn(replNetSize)
				var rest []int
				for id := 0; id < replNetSize; id++ {
					if id != iso {
						rest = append(rest, id)
					}
				}
				rn.policy.Partition([]int{iso}, rest)
				time.Sleep(100 * time.Millisecond)
				rn.policy.Heal()
			case 2:
				// Lossy network for a stretch of mutations.
				rn.policy.SetDrop(0.15)
				defer rn.policy.SetDrop(0)
				time.Sleep(20 * time.Millisecond)
				rn.policy.SetDrop(0)
			}
		}
		var placeable []string
		for id := range twin {
			placeable = append(placeable, id)
		}
		if rng.Float64() < 0.7 || len(placeable) == 0 {
			if rng.Float64() < 0.25 {
				// A DAG admission replicating as KindPlaceDAG: the follower
				// applies the stored server task, never re-running the RTA.
				id := fmt.Sprintf("dag-%d", nextID)
				nextID++
				task := dag.Task{
					Nodes: []dag.Node{
						{WCETNs: (20 + rng.Int63n(80)) * 1000},
						{WCETNs: (20 + rng.Int63n(80)) * 1000},
						{WCETNs: (20 + rng.Int63n(80)) * 1000},
					},
					Edges:    []dag.Edge{{From: 0, To: 1}, {From: 0, To: 2}},
					PeriodNs: 10_000_000,
					Cores:    2,
				}
				analyzer := [3]string{"", "classical", "alpha-beta"}[rng.Intn(3)]
				if rn.placeDAG(t, id, task, analyzer) {
					twin[id] = true
				}
			} else {
				id := fmt.Sprintf("set-%d", nextID)
				nextID++
				if rn.place(t, id, setOfUtil(0.02+0.06*rng.Float64())) {
					twin[id] = true
				}
			}
		} else {
			sort.Strings(placeable)
			id := placeable[rng.Intn(len(placeable))]
			rn.remove(t, id)
			delete(twin, id)
		}
	}

	// Heal, converge, and compare the cluster's committed view with the
	// twin: every acked placement present, no phantoms.
	rn.policy.Heal()
	rn.policy.SetDrop(0)
	leader := rn.waitLeader(10 * time.Second)
	have := placedIDs(leader)
	for id := range twin {
		if !have[id] {
			t.Fatalf("seed %d: acked placement %q lost (have %d ids)", seed, id, len(have))
		}
	}
	for id := range have {
		if !twin[id] {
			t.Fatalf("seed %d: phantom placement %q survived", seed, id)
		}
	}
	view := rn.waitConverged(t, 10*time.Second)

	// Full cluster restart: recovery (snapshot + replicated log) must
	// rebuild the identical durable view.
	rn.stopAll()
	for id := 0; id < replNetSize; id++ {
		rn.start(id)
	}
	rn.waitLeader(10 * time.Second)
	leader = rn.waitLeader(10 * time.Second)
	have = placedIDs(leader)
	for id := range twin {
		if !have[id] {
			t.Fatalf("seed %d: placement %q lost across full restart", seed, id)
		}
	}
	for id := range have {
		if !twin[id] {
			t.Fatalf("seed %d: phantom %q after full restart", seed, id)
		}
	}
	restarted := rn.waitConverged(t, 10*time.Second)
	if restarted != view {
		t.Fatalf("seed %d: durable view changed across restart\nbefore: %s\nafter:  %s", seed, view, restarted)
	}
}
