package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hrtsched/internal/durable"
	"hrtsched/internal/plan"
	"hrtsched/internal/repl"
)

// ReplicationConfig opts a durable Cluster into leader-based replication:
// every mutation record is shipped to the peer replicas through the
// repl.Node consensus layer and acknowledged only once a majority has
// fsynced it. Requires ClusterConfig.Durability (the WAL directory and
// snapshot cadence come from there; the replication layer owns the WAL).
type ReplicationConfig struct {
	// ID is this replica's index in [0, Replicas).
	ID int
	// Replicas is the total replica count (including this one).
	Replicas int
	// Peers maps replica IDs to their base URLs ("http://host:port") —
	// used for mutation redirects and, when Transport is nil, to build
	// the default HTTP transport.
	Peers map[int]string
	// Transport overrides the RPC transport (in-process fault-injection
	// tests); nil builds an HTTP transport over Peers.
	Transport repl.Transport
	// HeartbeatInterval / ElectionTimeout / RPCTimeout tune the failure
	// detector; zero values take the repl package defaults.
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	RPCTimeout        time.Duration
	// Seed makes election jitter deterministic in tests.
	Seed int64
	// Logf, when non-nil, receives role-transition and recovery logs.
	Logf func(format string, args ...any)
}

// NotLeaderError reports a mutation sent to a replica that is not the
// leader. LeaderURL is empty when no leader is currently known.
type NotLeaderError struct {
	LeaderID  int
	LeaderURL string
}

func (e *NotLeaderError) Error() string {
	if e.LeaderURL != "" {
		return fmt.Sprintf("serve: not the leader; leader is replica %d at %s", e.LeaderID, e.LeaderURL)
	}
	return fmt.Sprintf("serve: not the leader; leader is replica %d", e.LeaderID)
}

// Errors the replicated mutation path can return.
var (
	// ErrNoLeader means no replica currently holds a lease; the client
	// should retry after the election settles (503 + Retry-After).
	ErrNoLeader = errors.New("serve: no replication leader elected")
	// ErrLeaderNotReady means this replica just won an election and is
	// still applying its log up to the term barrier; retry shortly.
	ErrLeaderNotReady = errors.New("serve: leader still applying its log")
	// ErrIndeterminate wraps a mutation whose commit outcome is unknown
	// (leadership was lost mid-commit). The record MAY have committed;
	// the client must re-issue the same id and treat a duplicate-id
	// conflict as success.
	ErrIndeterminate = errors.New("serve: leadership lost mid-commit; outcome indeterminate")
)

// openReplication boots the replicated store: restore engines and the
// placement map from the newest snapshot, then start the consensus node,
// whose apply loop replays the committed log suffix through the same
// engines. Runs before the node workers start.
func (c *Cluster) openReplication() error {
	rc := c.cfg.Replication
	d := c.cfg.Durability
	rs, err := durable.OpenReplicated(durable.ReplConfig{
		Dir:                  d.Dir,
		NumNodes:             c.cfg.Nodes,
		Spec:                 c.cfg.Spec,
		FS:                   d.FS,
		SnapshotEveryRecords: d.SnapshotEveryRecords,
		SnapshotEveryBytes:   d.SnapshotEveryBytes,
	})
	if err != nil {
		return err
	}
	st := rs.RecoveredState()
	for i, n := range c.nodes {
		var tasks plan.TaskSet
		for _, e := range st.Nodes[i] {
			tasks = append(tasks, e.Tasks...)
		}
		if len(tasks) > 0 {
			n.eng.Restore(tasks)
		}
	}
	for id, nodeID := range st.Placements {
		for _, e := range st.Nodes[nodeID] {
			if e.ID == id {
				c.placements[id] = &placementRec{
					node: nodeID,
					set:  e.Tasks,
					util: e.Tasks.Utilization(),
					dag:  e.DAG,
				}
				break
			}
		}
	}
	c.placed.Store(st.Counters.Placed)
	c.removed.Store(st.Counters.Removed)
	c.drained.Store(st.Counters.Drained)
	c.rebalanced.Store(st.Counters.Rebalanced)
	c.dagPlaced.Store(st.Counters.DAGPlaced)
	for _, n := range c.nodes {
		n.syncGauges()
	}
	c.rstore = rs
	rrec := rs.Recovery()
	c.recovery = durable.RecoveryResult{
		SnapshotLSN:  rrec.SnapshotLSN,
		BadSnapshots: rrec.BadSnapshots,
		SpecChanged:  rrec.SpecChanged,
	}

	tr := rc.Transport
	if tr == nil {
		tr = repl.NewHTTPTransport(rc.Peers)
	}
	node, rep, err := repl.Open(repl.Config{
		ID:                rc.ID,
		Replicas:          rc.Replicas,
		Dir:               d.Dir,
		FS:                d.FS,
		SegmentBytes:      d.SegmentBytes,
		Transport:         tr,
		Apply:             c.applyCommitted,
		OnRole:            c.onRole,
		HeartbeatInterval: rc.HeartbeatInterval,
		ElectionTimeout:   rc.ElectionTimeout,
		RPCTimeout:        rc.RPCTimeout,
		Seed:              rc.Seed,
		FloorTerm:         rrec.SnapshotTerm,
		AppliedLSN:        rrec.SnapshotLSN,
		Logf:              rc.Logf,
	})
	if err != nil {
		rs.Close() //nolint:errcheck // already failing; surface the open error
		c.rstore = nil
		return fmt.Errorf("serve: replication open: %w", err)
	}
	c.recovery.TruncatedBytes = rep.TruncatedBytes
	c.recovery.DroppedSegments = rep.DroppedSegments
	c.recovery.LastLSN = rep.LastLSN
	c.repl = node
	close(c.replBoot)
	return nil
}

// applyCommitted is the consensus apply callback: it folds one committed
// record into this replica's engines, placement map, counters, and shadow
// state, in log order, on leader and follower alike. It is the SOLE
// mutator of the engines in replicated mode (the worker's evaluation pass
// reverts itself), so every replica's live state is the fold of the same
// committed prefix.
func (c *Cluster) applyCommitted(lsn, term uint64, payload []byte) {
	rec, err := durable.DecodeRecord(payload)
	if err != nil || rec.Node < 0 || rec.Node >= len(c.nodes) || !c.rstore.Peek(rec) {
		// Undecodable or no longer fitting the shadow: skipped consistently
		// on every replica, never force-applied.
		c.replSkipped.Add(1)
		c.rstore.SkipCommitted(lsn, term)
		c.dropSkippedPending(rec)
		return
	}
	tasks := c.rstore.Resolve(rec)
	n := c.nodes[rec.Node]
	n.engMu.Lock()
	applied := false
	switch rec.Kind {
	case durable.KindPlace, durable.KindPlaceDAG:
		applied = n.eng.TryGang(tasks).Admit
	case durable.KindRemove:
		_, applied = n.eng.RemoveGang(tasks)
	}
	if applied {
		n.applied.Add(1)
		n.syncGauges()
	}
	n.engMu.Unlock()
	if !applied {
		// The engine refused what the shadow accepted. Engines are
		// deterministic folds of the same record sequence, so every
		// replica refuses identically; skipping both sides keeps the
		// shadow and the engines in agreement. A pending map entry for a
		// skipped place (a deposed leader's in-flight proposal that
		// committed under the new term but no longer fits) must go too,
		// or this replica's map would hold an id no engine backs.
		c.replSkipped.Add(1)
		c.rstore.SkipCommitted(lsn, term)
		c.dropSkippedPending(rec)
		return
	}
	c.rstore.ApplyCommitted(lsn, term, len(payload), rec) //nolint:errcheck // latches degraded internally

	c.mu.Lock()
	switch rec.Kind {
	case durable.KindPlace, durable.KindPlaceDAG:
		if old, ok := c.placements[rec.ID]; ok && old.pending {
			// The leader's own in-flight Place: update in place so the
			// caller's pending marker (and its pointer) stay valid, and
			// mark it committed so an indeterminate reply never deletes a
			// record the log already holds.
			old.node, old.set, old.util, old.committed = rec.Node, tasks, tasks.Utilization(), true
			old.dag = rec.DAG
		} else {
			c.placements[rec.ID] = &placementRec{
				node: rec.Node, set: tasks, util: tasks.Utilization(),
				dag: rec.DAG, committed: true,
			}
		}
	case durable.KindRemove:
		// Mirror the shadow's release rule: a release record removes a
		// moved set's stale copy, so the map keeps the id when it already
		// points at the new home.
		if old, ok := c.placements[rec.ID]; ok && old.node == rec.Node {
			delete(c.placements, rec.ID)
		}
	}
	c.mu.Unlock()

	isPlace := rec.Kind == durable.KindPlace || rec.Kind == durable.KindPlaceDAG
	switch {
	case isPlace && rec.Origin == durable.OriginClient:
		c.placed.Add(1)
		if rec.Kind == durable.KindPlaceDAG {
			c.dagPlaced.Add(1)
		}
	case isPlace && rec.Origin == durable.OriginDrain:
		c.drained.Add(1)
	case isPlace && rec.Origin == durable.OriginRebalance:
		c.rebalanced.Add(1)
	case rec.Kind == durable.KindRemove && rec.Origin == durable.OriginClient:
		c.removed.Add(1)
	}
}

// dropSkippedPending clears the in-flight map entry of a skipped place
// record. Without it a deposed leader whose proposal committed under the
// new term but was refused at apply would keep a map id no engine backs.
func (c *Cluster) dropSkippedPending(rec durable.Record) {
	if (rec.Kind != durable.KindPlace && rec.Kind != durable.KindPlaceDAG) || rec.ID == "" {
		return
	}
	c.mu.Lock()
	if old, ok := c.placements[rec.ID]; ok && old.pending && !old.committed {
		delete(c.placements, rec.ID)
	}
	c.mu.Unlock()
}

// applyBatchRepl is the worker's batch step in replicated mode. The
// engine pass is EVALUATION only — each admitted mutation is immediately
// reverted — because committed records re-apply through applyCommitted in
// log order on every replica. The worker proposes the batch's records,
// waits for the majority commit AND the local apply, then replies; a
// mutation whose record fails to commit answers an error instead of a
// verdict.
func (c *Cluster) applyBatchRepl(n *node, batch []*mutation) {
	results := make([]mutResult, len(batch))
	replied := make([]bool, len(batch))
	hasRec := make([]bool, len(batch))
	var recs []durable.Record
	// The evaluation must compose across the batch: each admitted entry
	// stays in the engine while the later entries are judged, so the
	// batch is evaluated exactly as applyCommitted will replay it, and a
	// boundary-fitting set can't be acked here and refused at apply.
	// Everything is reverted together (in reverse) once the batch is
	// judged — the commit re-applies it in log order on every replica.
	type revertOp struct {
		added bool // true: evaluation added the set; revert removes it
		set   plan.TaskSet
	}
	var reverts []revertOp
	n.engMu.Lock()
	for i, m := range batch {
		if m.ctx != nil && m.ctx.Err() != nil {
			n.canceled.Add(1)
			c.canceled.Add(1)
			m.done <- mutResult{canceled: true}
			replied[i] = true
			continue
		}
		var r mutResult
		switch m.op {
		case placeOp:
			r.verdict = n.eng.TryGang(m.set)
			r.matched = true
			if r.verdict.Admit {
				reverts = append(reverts, revertOp{added: true, set: m.set})
				rec := durable.Record{
					Kind: durable.KindPlace, Origin: m.origin,
					Node: n.id, ID: m.id, Tasks: m.set,
				}
				if m.dag != nil {
					rec.Kind = durable.KindPlaceDAG
					rec.DAG = m.dag
				}
				recs = append(recs, rec)
				hasRec[i] = true
			}
		case removeOp:
			r.verdict, r.matched = n.eng.RemoveGang(m.set)
			if r.matched {
				reverts = append(reverts, revertOp{added: false, set: m.set})
				recs = append(recs, durable.Record{
					Kind: durable.KindRemove, Origin: m.origin,
					Node: n.id, ID: m.id,
				})
				hasRec[i] = true
			}
		case evalOp:
			// What-if probe: evaluation only, no record, nothing to revert.
			r.verdict = n.eng.EvaluateGang(m.set)
			r.matched = true
		}
		results[i] = r
	}
	for i := len(reverts) - 1; i >= 0; i-- {
		if reverts[i].added {
			n.eng.RemoveGang(reverts[i].set)
		} else {
			n.eng.TryGang(reverts[i].set)
		}
	}
	n.engMu.Unlock()
	if len(recs) > 0 {
		if err := c.replCommit(recs); err != nil {
			serr := c.mapReplErr(err)
			for i := range batch {
				if hasRec[i] {
					results[i] = mutResult{err: serr}
				}
			}
		}
	}
	for i, m := range batch {
		if !replied[i] {
			m.done <- results[i]
		}
	}
}

// replCommit proposes one batch of records and blocks until they are
// majority-durable AND applied locally, so the reply (and any follow-up
// mutation on the same node) observes its own write.
func (c *Cluster) replCommit(recs []durable.Record) error {
	payloads := make([][]byte, len(recs))
	for i, r := range recs {
		p, err := r.Encode()
		if err != nil {
			return err
		}
		payloads[i] = p
	}
	t, err := c.repl.Propose(payloads)
	if err != nil {
		return err
	}
	if err := t.Wait(); err != nil {
		return err
	}
	return c.repl.WaitApplied(t.LastLSN)
}

// mapReplErr translates consensus errors into the session's vocabulary.
func (c *Cluster) mapReplErr(err error) error {
	var nl *repl.NotLeaderError
	switch {
	case errors.As(err, &nl):
		// Never appended here: determinately not committed.
		e := &NotLeaderError{LeaderID: nl.Leader}
		if nl.Leader >= 0 {
			e.LeaderURL = c.cfg.Replication.Peers[nl.Leader]
		}
		return e
	case errors.Is(err, repl.ErrLostLeadership):
		// Appended but the commit outcome is unknown.
		return fmt.Errorf("%w: %v", ErrIndeterminate, err)
	case errors.Is(err, repl.ErrClosed):
		return ErrClusterClosed
	default:
		return err
	}
}

// leaderCheck gates mutations: nil on a ready leader, a redirectable
// NotLeaderError on a follower that knows the leader, ErrNoLeader during
// an election, ErrLeaderNotReady while a fresh leader catches up its log
// and reconciles orphans.
func (c *Cluster) leaderCheck() error {
	if c.repl == nil {
		return nil
	}
	st := c.repl.Status()
	if st.Role == repl.RoleLeader {
		if c.repl.LeaderReady() && c.replReadyTerm.Load() == st.Term {
			return nil
		}
		return ErrLeaderNotReady
	}
	// Redirect only to a leader this follower has actually heard from
	// within the election timeout: a staler address is likely a dead
	// process mid-failover, and bouncing clients against it is worse
	// than an honest 503 + Retry-After while the election settles.
	fresh := st.MsSinceLeaderContact >= 0 &&
		time.Duration(st.MsSinceLeaderContact)*time.Millisecond <= c.repl.ElectionTimeout()
	if st.Leader >= 0 && st.Leader != c.cfg.Replication.ID && fresh {
		e := &NotLeaderError{LeaderID: st.Leader, LeaderURL: c.cfg.Replication.Peers[st.Leader]}
		return e
	}
	return ErrNoLeader
}

// onRole observes consensus role transitions. A won election starts the
// new-leader ramp: wait for the term barrier to apply (the whole
// committed log is then folded in), reconcile move-orphans, and only then
// open the gate for client mutations.
func (c *Cluster) onRole(st repl.Status) {
	<-c.replBoot // repl field is assigned before any work here needs it
	if st.Role != repl.RoleLeader {
		return
	}
	go c.leaderRamp(st.Term)
}

// leaderRamp runs once per won term.
func (c *Cluster) leaderRamp(term uint64) {
	for {
		st := c.repl.Status()
		if st.Role != repl.RoleLeader || st.Term != term {
			return
		}
		if st.ReadyLSN > 0 {
			if c.repl.WaitApplied(st.ReadyLSN) != nil {
				return
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	// The log is fully applied: any move that lost its release record to
	// a leadership change is now visible as an orphan. Release the stale
	// copies through the normal propose path so every replica folds the
	// same reconciliation.
	for _, o := range c.rstore.Orphans() {
		st := c.repl.Status()
		if st.Role != repl.RoleLeader || st.Term != term {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err := c.submit(ctx, c.nodes[o.Node], &mutation{
			op: removeOp, set: o.Tasks, id: o.ID, origin: durable.OriginRelease,
		})
		cancel()
		if err == nil {
			c.orphanReleases.Add(1)
		}
		// On error: the next election retries; orphans are transient
		// over-reservation, never loss.
	}
	st := c.repl.Status()
	if st.Role == repl.RoleLeader && st.Term == term {
		c.replReadyTerm.Store(term)
	}
}

// TransferLeadership asks the consensus layer to hand leadership to the
// most caught-up follower (SIGTERM step-down). Returns the chosen peer,
// or an error when this replica is not the leader or has no peer.
func (c *Cluster) TransferLeadership(ctx context.Context) (int, error) {
	if c.repl == nil {
		return -1, errors.New("serve: replication is not enabled")
	}
	return c.repl.TransferLeadership(ctx)
}

// ReplicationStatus is the replication block of ClusterStatus; absent
// when replication is off.
type ReplicationStatus struct {
	ID        int    `json:"id"`
	Role      string `json:"role"`
	Term      uint64 `json:"term"`
	Leader    int    `json:"leader"` // -1 when unknown
	LeaderURL string `json:"leader_url,omitempty"`
	LastLSN   uint64 `json:"last_lsn"`
	// DurableLSN is the highest locally-fsynced LSN; CommitLSN the
	// highest majority-durable one; AppliedLSN what the engines reflect.
	DurableLSN uint64 `json:"durable_lsn"`
	CommitLSN  uint64 `json:"commit_lsn"`
	AppliedLSN uint64 `json:"applied_lsn"`
	Elections  int64  `json:"elections_total"`
	Redirects  int64  `json:"redirects_total"`
	// Skipped counts committed records this replica skipped (undecodable
	// or no longer fitting); nonzero means divergence was detected.
	Skipped int64 `json:"skipped_records_total"`
	// OrphanReleases counts stale move copies reconciled after elections.
	OrphanReleases int64 `json:"orphan_releases_total"`
	// Peers is the leader's view of follower progress.
	Peers []repl.PeerStatus `json:"peers,omitempty"`
	// MsSinceLeaderContact is a follower's staleness bound: milliseconds
	// since the last accepted leader append or heartbeat.
	MsSinceLeaderContact int64 `json:"ms_since_leader_contact"`
}

// replicationStatus builds the status block, nil when replication is off.
func (c *Cluster) replicationStatus() *ReplicationStatus {
	if c.repl == nil {
		return nil
	}
	st := c.repl.Status()
	rs := &ReplicationStatus{
		ID:                   st.ID,
		Role:                 st.RoleName,
		Term:                 st.Term,
		Leader:               st.Leader,
		LastLSN:              st.LastLSN,
		DurableLSN:           st.DurableLSN,
		CommitLSN:            st.CommitLSN,
		AppliedLSN:           st.AppliedLSN,
		Elections:            st.Elections,
		Redirects:            c.redirects.Load(),
		Skipped:              c.replSkipped.Load(),
		OrphanReleases:       c.orphanReleases.Load(),
		Peers:                st.Peers,
		MsSinceLeaderContact: st.MsSinceLeaderContact,
	}
	if st.Leader >= 0 {
		rs.LeaderURL = c.cfg.Replication.Peers[st.Leader]
	}
	return rs
}

// replDurabilityStatus is the durability block in replicated mode: the
// consensus layer owns the WAL, the ReplStore owns snapshots.
func (c *Cluster) replDurabilityStatus() *DurabilityStatus {
	ws := c.repl.WALStats()
	st := c.rstore.Stats()
	return &DurabilityStatus{
		WALSegments:     ws.Segments,
		WALBytes:        ws.Bytes,
		LastLSN:         ws.LastLSN,
		SyncedLSN:       ws.SyncedLSN,
		Records:         ws.Appends,
		Fsyncs:          ws.Fsyncs,
		Batches:         ws.Batches,
		AppendErrors:    ws.AppendErrors,
		LastSnapshotLSN: st.LastSnapshotLSN,
		Snapshots:       st.Snapshots,
		SnapshotErrors:  st.SnapshotErrors,
		PendingRecords:  st.PendingRecords,
		Degraded:        st.Degraded || c.rstore.DegradedErr() != nil,
		LastRecovery:    c.recovery,
	}
}

// registerReplicationMetrics exposes hrtd_repl_* on r.
func (c *Cluster) registerReplicationMetrics(r *Registry) {
	status := func(f func(repl.Status) float64) func() float64 {
		return func() float64 { return f(c.repl.Status()) }
	}
	r.Gauge("hrtd_repl_term", "Current replication term.",
		status(func(s repl.Status) float64 { return float64(s.Term) }))
	r.Gauge("hrtd_repl_role", "Replication role: 0 follower, 1 candidate, 2 leader.",
		status(func(s repl.Status) float64 { return float64(s.Role) }))
	r.Gauge("hrtd_repl_is_leader", "1 when this replica is the ready leader.",
		func() float64 {
			if c.leaderCheck() == nil {
				return 1
			}
			return 0
		})
	r.Gauge("hrtd_repl_last_lsn", "Last LSN appended to the local log.",
		status(func(s repl.Status) float64 { return float64(s.LastLSN) }))
	r.Gauge("hrtd_repl_durable_lsn", "Last locally-fsynced LSN.",
		status(func(s repl.Status) float64 { return float64(s.DurableLSN) }))
	r.Gauge("hrtd_repl_commit_lsn", "Last majority-durable LSN.",
		status(func(s repl.Status) float64 { return float64(s.CommitLSN) }))
	r.Gauge("hrtd_repl_applied_lsn", "Last LSN folded into the engines.",
		status(func(s repl.Status) float64 { return float64(s.AppliedLSN) }))
	r.Counter("hrtd_repl_elections_total", "Elections this replica started.",
		status(func(s repl.Status) float64 { return float64(s.Elections) }))
	r.Counter("hrtd_repl_redirects_total", "Mutations redirected to the leader.",
		func() float64 { return float64(c.redirects.Load()) })
	r.Counter("hrtd_repl_skipped_records_total",
		"Committed records skipped (undecodable or divergent).",
		func() float64 { return float64(c.replSkipped.Load()) })
	r.Counter("hrtd_repl_orphan_releases_total",
		"Stale move copies reconciled after elections.",
		func() float64 { return float64(c.orphanReleases.Load()) })
	r.Counter("hrtd_repl_proposals_total", "Record batches proposed by this replica.",
		func() float64 { _, _, _, _, p, _ := c.repl.Counters(); return float64(p) })
	r.Counter("hrtd_repl_appends_sent_total", "AppendEntries RPCs sent.",
		func() float64 { _, a, _, _, _, _ := c.repl.Counters(); return float64(a) })
	r.Counter("hrtd_repl_appends_recv_total", "AppendEntries RPCs received.",
		func() float64 { _, _, a, _, _, _ := c.repl.Counters(); return float64(a) })
	r.Counter("hrtd_repl_protocol_errors_total", "Replication protocol violations detected.",
		func() float64 { _, _, _, _, _, e := c.repl.Counters(); return float64(e) })
	followerGauge := func(val func(repl.Status, repl.PeerStatus) float64) func() []Sample {
		return func() []Sample {
			s := c.repl.Status()
			out := make([]Sample, 0, len(s.Peers))
			for _, p := range s.Peers {
				out = append(out, Sample{
					Labels: []Label{{"peer", fmt.Sprint(p.ID)}},
					Value:  val(s, p),
				})
			}
			return out
		}
	}
	r.GaugeVec("hrtd_repl_follower_match_lsn",
		"Per-follower highest LSN confirmed durable (leader only).",
		followerGauge(func(s repl.Status, p repl.PeerStatus) float64 { return float64(p.MatchLSN) }))
	r.GaugeVec("hrtd_repl_follower_commit_lag",
		"Per-follower LSNs behind the commit index (leader only).",
		followerGauge(func(s repl.Status, p repl.PeerStatus) float64 {
			if s.CommitLSN > p.MatchLSN {
				return float64(s.CommitLSN - p.MatchLSN)
			}
			return 0
		}))
}
