package serve

import (
	"container/list"

	"hrtsched/internal/plan"
)

// lru is a fixed-capacity least-recently-used cache from canonical task-set
// digest to admission verdict. It is owned by exactly one shard goroutine,
// so it needs no internal locking; the shard exposes entry counts through
// its own atomics.
type lru struct {
	cap int
	ll  *list.List
	m   map[uint64]*list.Element
}

type lruEntry struct {
	key uint64
	v   plan.Verdict
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[uint64]*list.Element, capacity)}
}

// get returns the cached verdict for key and refreshes its recency.
func (c *lru) get(key uint64) (plan.Verdict, bool) {
	e, ok := c.m[key]
	if !ok {
		return plan.Verdict{}, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).v, true
}

// put inserts or refreshes key, evicting the least-recently-used entry when
// over capacity.
func (c *lru) put(key uint64, v plan.Verdict) {
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).v = v
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, v: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return c.ll.Len() }
