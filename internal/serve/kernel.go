package serve

import (
	"fmt"

	"hrtsched/internal/core"
)

// RegisterKernel exposes a kernel's robustness counters — deadline-miss
// accounting, graceful-degradation activity, watchdog recoveries — through
// a metrics registry. Both cmd/chaos (-metrics) and any embedding daemon
// report these through this single code path, so the two never drift on
// naming or aggregation.
func RegisterKernel(r *Registry, k *core.Kernel) {
	r.CounterVec("hrt_miss_recorded_total",
		"Deadline-miss magnitudes recorded per CPU (after clamping).",
		func() []Sample {
			out := make([]Sample, len(k.Locals))
			for i, l := range k.Locals {
				out[i] = Sample{Labels: cpuLabel(i), Value: float64(l.Stats.Miss.Recorded)}
			}
			return out
		})
	r.CounterVec("hrt_miss_clamped_negative_total",
		"Miss records whose raw magnitude was negative, per CPU.",
		func() []Sample {
			out := make([]Sample, len(k.Locals))
			for i, l := range k.Locals {
				out[i] = Sample{Labels: cpuLabel(i), Value: float64(l.Stats.Miss.ClampedNegative)}
			}
			return out
		})
	r.Gauge("hrt_miss_worst_raw_negative_ns",
		"Most negative raw miss magnitude observed on any CPU.",
		func() float64 {
			var worst int64
			for _, l := range k.Locals {
				if l.Stats.Miss.WorstRawNegNs < worst {
					worst = l.Stats.Miss.WorstRawNegNs
				}
			}
			return float64(worst)
		})
	r.CounterVec("hrt_watchdog_kicks_total",
		"Scheduler passes recovered by the timer watchdog, per CPU.",
		func() []Sample {
			out := make([]Sample, len(k.Locals))
			for i, l := range k.Locals {
				out[i] = Sample{Labels: cpuLabel(i), Value: float64(l.Stats.WatchdogKicks)}
			}
			return out
		})

	deg := func(name, help string, get func(core.DegradeStats) int64) {
		r.Counter(name, help, func() float64 { return float64(get(k.Degradation())) })
	}
	deg("hrt_degrade_sheds_total", "Threads shed by graceful degradation.",
		func(d core.DegradeStats) int64 { return d.Sheds })
	deg("hrt_degrade_cohorts_total", "Atomic shed operations (a whole group counts once).",
		func(d core.DegradeStats) int64 { return d.Cohorts })
	deg("hrt_degrade_demoted_total", "Threads demoted to aperiodic by shedding.",
		func(d core.DegradeStats) int64 { return d.Demoted })
	deg("hrt_degrade_shrunk_total", "Threads whose slice was shrunk by shedding.",
		func(d core.DegradeStats) int64 { return d.Shrunk })
	deg("hrt_degrade_evicted_total", "Threads parked entirely by shedding.",
		func(d core.DegradeStats) int64 { return d.Evicted })
	deg("hrt_readmit_attempts_total", "Re-admission attempts for shed threads.",
		func(d core.DegradeStats) int64 { return d.ReadmitAttempts })
	deg("hrt_readmitted_total", "Shed threads successfully re-admitted.",
		func(d core.DegradeStats) int64 { return d.Readmitted })
	deg("hrt_readmit_gave_up_total", "Shed threads whose re-admission backoff gave up.",
		func(d core.DegradeStats) int64 { return d.ReadmitGaveUp })
}

func cpuLabel(i int) []Label {
	return []Label{{"cpu", fmt.Sprint(i)}}
}
