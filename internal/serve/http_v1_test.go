package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hrtsched/internal/plan"
)

func postJSON(t *testing.T, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

func TestHTTPLegacyAliasesAreDeprecatedTwins(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"tasks":[{"period_ns":1000000,"slice_ns":600000}]}`
	for _, route := range []string{"/analyze", "/capacity"} {
		v1Code, v1Body, v1Hdr := postJSON(t, ts.URL+"/v1"+route, body)
		oldCode, oldBody, oldHdr := postJSON(t, ts.URL+route, body)
		if v1Code != http.StatusOK || oldCode != v1Code {
			t.Fatalf("%s: status v1=%d legacy=%d", route, v1Code, oldCode)
		}
		if oldBody != v1Body {
			t.Fatalf("%s: legacy body diverges from v1:\n%s\n%s", route, oldBody, v1Body)
		}
		if oldHdr.Get("Deprecation") != "true" {
			t.Fatalf("%s: legacy route not marked deprecated: %v", route, oldHdr)
		}
		if !strings.Contains(oldHdr.Get("Link"), `rel="successor-version"`) ||
			!strings.Contains(oldHdr.Get("Link"), "/v1"+route) {
			t.Fatalf("%s: legacy route lacks successor link: %q", route, oldHdr.Get("Link"))
		}
		if v1Hdr.Get("Deprecation") != "" {
			t.Fatalf("%s: v1 route marked deprecated", route)
		}
	}
}

func TestHTTPErrorEnvelopeShape(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	decode := func(body string) apiError {
		t.Helper()
		var e apiError
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatalf("error body is not the envelope: %v in %s", err, body)
		}
		if e.Code == "" || e.Reason == "" {
			t.Fatalf("envelope missing code/reason: %s", body)
		}
		return e
	}

	code, body, _ := postJSON(t, ts.URL+"/v1/analyze", `{"nope":1}`)
	if e := decode(body); code != http.StatusBadRequest || e.Code != "bad_request" {
		t.Fatalf("bad request: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if e := decode(string(b)); resp.StatusCode != http.StatusMethodNotAllowed || e.Code != "method_not_allowed" {
		t.Fatalf("method not allowed: %d %s", resp.StatusCode, b)
	}
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/place", `{"id":"x","tasks":[]}`)
	if e := decode(body); code != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("cluster route without cluster: %d %s", code, body)
	}
}

func TestHTTPClusterEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ts := httptest.NewServer(s.HandlerWithCluster(c))
	defer ts.Close()

	// Place.
	code, body, _ := postJSON(t, ts.URL+"/v1/cluster/place",
		`{"id":"svc-a","tasks":[{"period_ns":100000,"slice_ns":20000}]}`)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, body)
	}
	var res PlaceResult
	if err := json.Unmarshal([]byte(body), &res); err != nil || !res.Placed || res.Node != 0 {
		t.Fatalf("place result: %s (%v)", body, err)
	}

	// Duplicate id: 409 conflict envelope.
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/place",
		`{"id":"svc-a","tasks":[{"period_ns":100000,"slice_ns":20000}]}`)
	var e apiError
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusConflict || e.Code != "conflict" {
		t.Fatalf("duplicate place: %d %s", code, body)
	}

	// Status.
	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st ClusterStatus
	if err := json.Unmarshal(b, &st); err != nil || st.Placed != 1 || len(st.Nodes) != 2 {
		t.Fatalf("status body: %s (%v)", b, err)
	}

	// Drain, rebalance, undrain, remove.
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/drain", `{"node":0}`); code != http.StatusOK {
		t.Fatalf("drain: %d %s", code, body)
	}
	var rep DrainReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil || rep.Moved != 1 {
		t.Fatalf("drain report: %s (%v)", body, err)
	}
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/undrain", `{"node":0}`); code != http.StatusOK {
		t.Fatalf("undrain: %d %s", code, body)
	}
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/rebalance", `{}`); code != http.StatusOK {
		t.Fatalf("rebalance: %d %s", code, body)
	}
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/remove", `{"id":"svc-a"}`); code != http.StatusOK {
		t.Fatalf("remove: %d %s", code, body)
	}
	// Unknown id: 404 envelope.
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/remove", `{"id":"svc-a"}`)
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("remove unknown: %d %s", code, body)
	}
	// Unknown node: 404 envelope.
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/drain", `{"node":7}`)
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("drain unknown node: %d %s", code, body)
	}
}

func TestServerContextCancellation(t *testing.T) {
	// White-box: no workers, so the request stays queued while we cancel.
	s, err := newServer(Config{Spec: testSpec, Shards: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.AnalyzeContext(ctx, plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 1_000}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query error = %v", err)
	}
	// The queued request is dropped unprocessed when the shard gets to it.
	sh := s.shards[0]
	r := <-sh.ch
	s.process(sh, []*request{r})
	if sh.canceled.Load() != 1 || sh.processed.Load() != 0 {
		t.Fatalf("canceled=%d processed=%d, want 1/0", sh.canceled.Load(), sh.processed.Load())
	}
	if !strings.Contains(s.reg.Render(), `hrtd_canceled_total{shard="0"} 1`) {
		t.Fatalf("canceled drop not visible in metrics:\n%s", s.reg.Render())
	}
}
