package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hrtsched/internal/plan"
)

func postJSON(t *testing.T, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

func TestHTTPLegacyAliasesAreGone(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"tasks":[{"period_ns":1000000,"slice_ns":600000}]}`
	for _, route := range []string{"/analyze", "/capacity"} {
		code, respBody, hdr := postJSON(t, ts.URL+route, body)
		if code != http.StatusGone {
			t.Fatalf("%s: status = %d, want 410", route, code)
		}
		var e APIError
		if err := json.Unmarshal([]byte(respBody), &e); err != nil || e.Code != "gone" {
			t.Fatalf("%s: envelope = %s (%v)", route, respBody, err)
		}
		if !strings.Contains(e.Reason, "/v1"+route) {
			t.Fatalf("%s: reason does not name the successor: %q", route, e.Reason)
		}
		if !strings.Contains(hdr.Get("Link"), `rel="successor-version"`) ||
			!strings.Contains(hdr.Get("Link"), "/v1"+route) {
			t.Fatalf("%s: retired route lacks successor link: %q", route, hdr.Get("Link"))
		}
		// The successor still answers.
		if v1Code, v1Body, _ := postJSON(t, ts.URL+"/v1"+route, body); v1Code != http.StatusOK {
			t.Fatalf("/v1%s: %d %s", route, v1Code, v1Body)
		}
	}
}

func TestHTTPAnalyzeBatchMatchesSingleRoute(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	items := []string{
		`{"tasks":[{"period_ns":1000000,"slice_ns":600000}]}`,
		`{"tasks":[{"period_ns":2000000,"slice_ns":100000},{"period_ns":1000000,"slice_ns":50000}]}`,
		`{"tasks":[{"period_ns":1000000,"slice_ns":999999}]}`,
	}
	var singles []string
	for _, it := range items {
		code, body, _ := postJSON(t, ts.URL+"/v1/analyze", it)
		if code != http.StatusOK {
			t.Fatalf("single analyze: %d %s", code, body)
		}
		singles = append(singles, strings.TrimSuffix(body, "\n"))
	}
	code, body, hdr := postJSON(t, ts.URL+"/v1/analyze-batch",
		`{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch analyze: %d %s", code, body)
	}
	var env struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || len(env.Items) != len(items) {
		t.Fatalf("batch envelope: %s (%v)", body, err)
	}
	for i, raw := range env.Items {
		if string(raw) != singles[i] {
			t.Fatalf("item %d diverges from single route:\nbatch:  %s\nsingle: %s", i, raw, singles[i])
		}
	}
	// Items 0 and 2 repeat after the single calls primed the cache; all
	// bits must be present and comma-joined in input order.
	bits := strings.Split(hdr.Get("X-Hrtd-Cache"), ",")
	if len(bits) != len(items) {
		t.Fatalf("cache header bits = %q, want %d entries", hdr.Get("X-Hrtd-Cache"), len(items))
	}
	for i, b := range bits {
		if b != "hit" && b != "miss" {
			t.Fatalf("cache bit %d = %q", i, b)
		}
	}

	// Oversized batch: 400 envelope.
	big := `{"items":[` + strings.Repeat(items[0]+",", DefaultMaxBatchItems) + items[0] + `]}`
	code, body, _ = postJSON(t, ts.URL+"/v1/analyze-batch", big)
	var e APIError
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusBadRequest || e.Code != "bad_request" {
		t.Fatalf("oversized batch: %d %s", code, body)
	}
}

func TestHTTPPlaceBatch(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ts := httptest.NewServer(s.HandlerWithCluster(c))
	defer ts.Close()

	// Seed one placement so the batch can collide with it.
	code, body, _ := postJSON(t, ts.URL+"/v1/cluster/place",
		`{"id":"seeded","tasks":[{"period_ns":100000,"slice_ns":20000}]}`)
	if code != http.StatusOK {
		t.Fatalf("seed place: %d %s", code, body)
	}
	singleBody := strings.TrimSuffix(body, "\n")

	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/place-batch",
		`{"items":[`+
			`{"id":"batch-a","tasks":[{"period_ns":100000,"slice_ns":20000}]},`+
			`{"id":"seeded","tasks":[{"period_ns":100000,"slice_ns":20000}]},`+
			`{"id":"batch-b","tasks":[{"period_ns":200000,"slice_ns":10000}]}]}`)
	if code != http.StatusOK {
		t.Fatalf("place-batch: %d %s", code, body)
	}
	var env struct {
		Items []placeBatchItem `json:"items"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || len(env.Items) != 3 {
		t.Fatalf("batch envelope: %s (%v)", body, err)
	}
	if env.Items[0].ID != "batch-a" || env.Items[0].Error != nil || env.Items[0].Result == nil || !env.Items[0].Result.Placed {
		t.Fatalf("item 0: %+v", env.Items[0])
	}
	if env.Items[1].ID != "seeded" || env.Items[1].Result != nil ||
		env.Items[1].Error == nil || env.Items[1].Error.Code != "conflict" {
		t.Fatalf("item 1 should be a conflict envelope: %+v", env.Items[1])
	}
	if env.Items[2].ID != "batch-b" || env.Items[2].Error != nil || env.Items[2].Result == nil {
		t.Fatalf("item 2: %+v", env.Items[2])
	}

	// A one-item batch result marshals byte-identically to the single
	// route's body for the same request.
	raw, err := json.Marshal(env.Items[0].Result)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var seeded PlaceResult
	if err := json.Unmarshal([]byte(singleBody), &seeded); err != nil {
		t.Fatalf("single body: %v", err)
	}
	var batched PlaceResult
	if err := json.Unmarshal(raw, &batched); err != nil {
		t.Fatalf("batch item: %v", err)
	}
	if batched.Placed != seeded.Placed || batched.Verdict.Admit != seeded.Verdict.Admit {
		t.Fatalf("batch item shape diverges: single=%s batch=%s", singleBody, raw)
	}
}

func TestHTTPErrorEnvelopeShape(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	decode := func(body string) APIError {
		t.Helper()
		var e APIError
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatalf("error body is not the envelope: %v in %s", err, body)
		}
		if e.Code == "" || e.Reason == "" {
			t.Fatalf("envelope missing code/reason: %s", body)
		}
		return e
	}

	code, body, _ := postJSON(t, ts.URL+"/v1/analyze", `{"nope":1}`)
	if e := decode(body); code != http.StatusBadRequest || e.Code != "bad_request" {
		t.Fatalf("bad request: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if e := decode(string(b)); resp.StatusCode != http.StatusMethodNotAllowed || e.Code != "method_not_allowed" {
		t.Fatalf("method not allowed: %d %s", resp.StatusCode, b)
	}
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/place", `{"id":"x","tasks":[]}`)
	if e := decode(body); code != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("cluster route without cluster: %d %s", code, body)
	}
}

func TestHTTPClusterEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ts := httptest.NewServer(s.HandlerWithCluster(c))
	defer ts.Close()

	// Place.
	code, body, _ := postJSON(t, ts.URL+"/v1/cluster/place",
		`{"id":"svc-a","tasks":[{"period_ns":100000,"slice_ns":20000}]}`)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, body)
	}
	var res PlaceResult
	if err := json.Unmarshal([]byte(body), &res); err != nil || !res.Placed || res.Node != 0 {
		t.Fatalf("place result: %s (%v)", body, err)
	}

	// Duplicate id: 409 conflict envelope.
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/place",
		`{"id":"svc-a","tasks":[{"period_ns":100000,"slice_ns":20000}]}`)
	var e APIError
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusConflict || e.Code != "conflict" {
		t.Fatalf("duplicate place: %d %s", code, body)
	}

	// Status.
	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st ClusterStatus
	if err := json.Unmarshal(b, &st); err != nil || st.Placed != 1 || len(st.Nodes) != 2 {
		t.Fatalf("status body: %s (%v)", b, err)
	}

	// Drain, rebalance, undrain, remove.
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/drain", `{"node":0}`); code != http.StatusOK {
		t.Fatalf("drain: %d %s", code, body)
	}
	var rep DrainReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil || rep.Moved != 1 {
		t.Fatalf("drain report: %s (%v)", body, err)
	}
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/undrain", `{"node":0}`); code != http.StatusOK {
		t.Fatalf("undrain: %d %s", code, body)
	}
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/rebalance", `{}`); code != http.StatusOK {
		t.Fatalf("rebalance: %d %s", code, body)
	}
	if code, body, _ = postJSON(t, ts.URL+"/v1/cluster/remove", `{"id":"svc-a"}`); code != http.StatusOK {
		t.Fatalf("remove: %d %s", code, body)
	}
	// Unknown id: 404 envelope.
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/remove", `{"id":"svc-a"}`)
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("remove unknown: %d %s", code, body)
	}
	// Unknown node: 404 envelope.
	code, body, _ = postJSON(t, ts.URL+"/v1/cluster/drain", `{"node":7}`)
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("drain unknown node: %d %s", code, body)
	}
}

func TestServerContextCancellation(t *testing.T) {
	// White-box: no workers, so the request stays queued while we cancel.
	s, err := newServer(Config{Spec: testSpec, Shards: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.AnalyzeContext(ctx, plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 1_000}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query error = %v", err)
	}
	// The queued request is dropped unprocessed when the shard gets to it.
	sh := s.shards[0]
	r := <-sh.ch
	s.process(sh, []*request{r})
	if sh.canceled.Load() != 1 || sh.processed.Load() != 0 {
		t.Fatalf("canceled=%d processed=%d, want 1/0", sh.canceled.Load(), sh.processed.Load())
	}
	if !strings.Contains(s.reg.Render(), `hrtd_canceled_total{shard="0"} 1`) {
		t.Fatalf("canceled drop not visible in metrics:\n%s", s.reg.Render())
	}
}
