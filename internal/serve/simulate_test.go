package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/whatif"
)

func waitForQueued(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

const simBody = `{"scenario":{"name":"t","cpus":2,"tasks":[` +
	`{"period_ns":1000000,"slice_ns":400000,"cpu":0},` +
	`{"period_ns":1000000,"slice_ns":300000,"cpu":1}],` +
	`"model":"half-random","faults":["smi-storm"],"replications":3},"seed":7}`

// TestHTTPSimulateDeterministic: repeating the same request yields
// byte-identical response bodies.
func TestHTTPSimulateDeterministic(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code1, body1, _ := postJSON(t, ts.URL+"/v1/simulate", simBody)
	code2, body2, _ := postJSON(t, ts.URL+"/v1/simulate", simBody)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d/%d: %s", code1, code2, body1)
	}
	if body1 != body2 {
		t.Fatalf("repeated request bodies differ:\n%s\n--- vs ---\n%s", body1, body2)
	}
	var rep whatif.Report
	if err := json.Unmarshal([]byte(body1), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 3 || rep.Seed != 7 || rep.Model != "half-random" {
		t.Fatalf("report fields wrong: %+v", rep)
	}
}

func TestHTTPSimulateRejectsInvalid(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []string{
		`{"scenario":{"tasks":[]},"seed":1}`,
		`{"scenario":{"tasks":[{"period_ns":1000,"slice_ns":2000}]},"seed":1}`,
		`{"scenario":{"tasks":[{"period_ns":1000000,"slice_ns":1000}],"model":"bogus"},"seed":1}`,
		`{"scenario":{"tasks":[{"period_ns":1000000,"slice_ns":1000}],"faults":["nope"]},"seed":1}`,
		`{"bogus_field":1}`,
	}
	for _, body := range cases {
		code, resp, _ := postJSON(t, ts.URL+"/v1/simulate", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%s), want 400", body, code, resp)
		}
	}
	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestSimulateShedsWhenFull: with no workers draining, the queue fills and
// Simulate sheds with the standard overload error carrying a retry quote.
func TestSimulateShedsWhenFull(t *testing.T) {
	s, err := newServer(Config{Spec: testSpec, Shards: 1, SimWorkers: 1, SimQueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// newServer never started the pool workers, so jobs queue forever.
	req := SimulateRequest{
		Scenario: whatif.Scenario{
			Tasks: []whatif.Task{{PeriodNs: 1_000_000, SliceNs: 100_000}},
		}.Normalize(),
		Seed: 1,
	}
	ctx := context.Background()
	errc := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Simulate(ctx, req)
			errc <- err
		}()
	}
	// The two queued jobs park; the third submit must shed synchronously.
	waitForQueued(t, func() bool { return len(s.sim.ch) == 2 })
	_, err = s.Simulate(ctx, req)
	var adm *core.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("error = %v, want AdmissionError", err)
	}
	if adm.Reason != "server-overload" || adm.RetryAfterNs <= 0 {
		t.Fatalf("shed error = %+v", adm)
	}
	// Envelope mapping: 429 with Retry-After.
	status, e, secs := queryError(err)
	if status != http.StatusTooManyRequests || e.Code != "overloaded" || secs <= 0 {
		t.Fatalf("mapped to %d %+v secs=%d", status, e, secs)
	}
	if _, err := strconv.ParseInt(strconv.FormatInt(secs, 10), 10, 64); err != nil {
		t.Fatal(err)
	}
}
