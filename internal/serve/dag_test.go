package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hrtsched/internal/dag"
)

// testDAG is a 4-node diamond: critical path 500us, volume 700us, so the
// classical bound on 2 cores is 600us — admitted against a 1ms deadline
// within a 10ms period (server utilization 0.06 per reservation).
func testDAG() dag.Task {
	return dag.Task{
		Name: "pipeline",
		Nodes: []dag.Node{
			{Name: "src", WCETNs: 100_000},
			{Name: "left", WCETNs: 300_000},
			{Name: "right", WCETNs: 200_000},
			{Name: "sink", WCETNs: 100_000},
		},
		Edges:      []dag.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
		PeriodNs:   10_000_000,
		DeadlineNs: 1_000_000,
		Cores:      2,
	}
}

func TestClusterPlaceDAG(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})

	res, err := c.PlaceDAG(nil, "dag-a", testDAG(), "")
	if err != nil || !res.Placed || res.Node != 0 {
		t.Fatalf("PlaceDAG = %+v, %v", res, err)
	}
	if res.Analysis.BoundNs != 600_000 || res.Analysis.Reason != dag.OK {
		t.Fatalf("analysis = %+v", res.Analysis)
	}
	if res.ServerTask.PeriodNs != 10_000_000 || res.ServerTask.SliceNs != 600_000 {
		t.Fatalf("server task = %+v", res.ServerTask)
	}

	st := c.Status()
	if st.DAG == nil || st.DAG.Placements != 1 || st.DAG.Placed != 1 ||
		st.DAG.Submitted != 1 || st.DAG.Admitted != 1 || st.DAG.Rejected != 0 {
		t.Fatalf("dag status = %+v", st.DAG)
	}
	if st.Placed != 1 || st.Placements != 1 {
		t.Fatalf("status = %+v", st)
	}

	// The reservation is an ordinary placement: Remove frees it.
	if _, err := c.Remove(nil, "dag-a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if st := c.Status(); st.DAG.Placements != 0 {
		t.Fatalf("dag placement survived removal: %+v", st.DAG)
	}

	// Analytical rejection: 200-class outcome, no placement, typed reason.
	tight := testDAG()
	tight.DeadlineNs = 550_000
	res, err = c.PlaceDAG(nil, "dag-b", tight, "")
	if err != nil || res.Placed || res.Analysis.Reason != dag.DeadlineMiss {
		t.Fatalf("tight deadline: %+v, %v", res, err)
	}
	if res.Attempts != 0 {
		t.Fatalf("rejected analysis consulted nodes: %+v", res)
	}
	if st := c.Status(); st.DAG.Rejected != 1 || st.Placements != 0 {
		t.Fatalf("post-reject status: %+v", st.DAG)
	}

	// Structural rejection: typed *dag.ValidationError.
	cyclic := testDAG()
	cyclic.Edges = append(cyclic.Edges, dag.Edge{From: 3, To: 0})
	var verr *dag.ValidationError
	if _, err := c.PlaceDAG(nil, "dag-c", cyclic, ""); !errors.As(err, &verr) || verr.Code != dag.ErrCycle {
		t.Fatalf("cyclic PlaceDAG error = %v", err)
	}

	// Unknown analyzer: an error before anything is counted or reserved.
	if _, err := c.PlaceDAG(nil, "dag-d", testDAG(), "bogus"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

func TestClusterPlaceDAGAlphaBetaNoLooser(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 1})
	classical, err := c.PlaceDAG(nil, "cls", testDAG(), "classical")
	if err != nil {
		t.Fatalf("classical: %v", err)
	}
	ab, err := c.PlaceDAG(nil, "ab", testDAG(), "alpha-beta")
	if err != nil {
		t.Fatalf("alpha-beta: %v", err)
	}
	if ab.Analysis.BoundNs > classical.Analysis.BoundNs {
		t.Fatalf("alpha-beta bound %d looser than classical %d",
			ab.Analysis.BoundNs, classical.Analysis.BoundNs)
	}
}

// TestClusterDAGSurvivesRestart proves a DAG reservation rebuilds from the
// durable log with its provenance — without re-running the analysis.
func TestClusterDAGSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, ClusterConfig{Nodes: 2, Durability: &DurabilityConfig{Dir: dir}})
	res, err := c.PlaceDAG(nil, "dag-a", testDAG(), "alpha-beta")
	if err != nil || !res.Placed {
		t.Fatalf("PlaceDAG = %+v, %v", res, err)
	}
	if _, err := c.Place(nil, "periodic-a", setOfUtil(0.2)); err != nil {
		t.Fatalf("Place: %v", err)
	}
	before := c.Status()
	c.Close()

	c2 := newTestCluster(t, ClusterConfig{Nodes: 2, Durability: &DurabilityConfig{Dir: dir}})
	after := c2.Status()
	if after.Placements != 2 || after.Placed != before.Placed {
		t.Fatalf("recovered status = %+v, want placements/placed of %+v", after, before)
	}
	if after.DAG == nil || after.DAG.Placements != 1 || after.DAG.Placed != 1 {
		t.Fatalf("recovered dag status = %+v", after.DAG)
	}
	c2.mu.Lock()
	rec := c2.placements["dag-a"]
	c2.mu.Unlock()
	if rec == nil || rec.dag == nil {
		t.Fatalf("recovered placement lost its DAG provenance: %+v", rec)
	}
	if rec.dag.Analyzer != "alpha-beta/longest-path-first" || rec.dag.BoundNs != res.Analysis.BoundNs {
		t.Fatalf("recovered meta = %+v", rec.dag)
	}
	if len(rec.set) != 1 || rec.set[0] != res.ServerTask {
		t.Fatalf("recovered server task = %+v, want %+v", rec.set[0], res.ServerTask)
	}

	// The recovered reservation still behaves like a placement: removable.
	if _, err := c2.Remove(nil, "dag-a"); err != nil {
		t.Fatalf("Remove after recovery: %v", err)
	}
}

func TestHTTPDAGEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ts := httptest.NewServer(s.HandlerWithCluster(c))
	defer ts.Close()

	dagJSON := func(mutate func(*dag.Task)) string {
		d := testDAG()
		if mutate != nil {
			mutate(&d)
		}
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}

	// Analyze only: no reservation.
	code, body, _ := postJSON(t, ts.URL+"/v1/dag/analyze", `{"task":`+dagJSON(nil)+`}`)
	if code != http.StatusOK {
		t.Fatalf("analyze: %d %s", code, body)
	}
	var ar dag.Result
	if err := json.Unmarshal([]byte(body), &ar); err != nil || !ar.Admit || ar.BoundNs != 600_000 {
		t.Fatalf("analyze result: %s (%v)", body, err)
	}
	if st := c.Status(); st.DAG != nil && st.DAG.Placements != 0 {
		t.Fatalf("analyze reserved something: %+v", st.DAG)
	}

	// Place.
	code, body, _ = postJSON(t, ts.URL+"/v1/dag/place", `{"id":"dag-a","task":`+dagJSON(nil)+`}`)
	if code != http.StatusOK {
		t.Fatalf("place: %d %s", code, body)
	}
	var res DAGPlaceResult
	if err := json.Unmarshal([]byte(body), &res); err != nil || !res.Placed || res.Node != 0 {
		t.Fatalf("place result: %s (%v)", body, err)
	}

	// Duplicate id: 409 conflict.
	code, body, _ = postJSON(t, ts.URL+"/v1/dag/place", `{"id":"dag-a","task":`+dagJSON(nil)+`}`)
	var e APIError
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusConflict || e.Code != "conflict" {
		t.Fatalf("duplicate: %d %s", code, body)
	}

	// Structural rejection: 422 with the typed code and blocking path.
	code, body, _ = postJSON(t, ts.URL+"/v1/dag/place",
		`{"id":"dag-b","task":`+dagJSON(func(d *dag.Task) {
			d.Edges = append(d.Edges, dag.Edge{From: 3, To: 0})
		})+`}`)
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusUnprocessableEntity || e.Code != "invalid_dag" || e.DAGCode != "cycle" {
		t.Fatalf("cyclic: %d %s", code, body)
	}
	if len(e.BlockingPath) == 0 {
		t.Fatalf("cycle rejection lacks blocking path: %s", body)
	}

	// Analytical rejection: 200 with the typed reason and blocking path.
	code, body, _ = postJSON(t, ts.URL+"/v1/dag/place",
		`{"id":"dag-c","task":`+dagJSON(func(d *dag.Task) { d.DeadlineNs = 400_000 })+`}`)
	if code != http.StatusOK {
		t.Fatalf("overrun place: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil || res.Placed ||
		res.Analysis.Reason != dag.PathOverrun || len(res.Analysis.BlockingPath) == 0 {
		t.Fatalf("overrun result: %s (%v)", body, err)
	}

	// Unknown analyzer: 400.
	code, body, _ = postJSON(t, ts.URL+"/v1/dag/analyze",
		`{"task":`+dagJSON(nil)+`,"analyzer":"bogus"}`)
	json.Unmarshal([]byte(body), &e) //nolint:errcheck
	if code != http.StatusBadRequest || e.Code != "bad_request" {
		t.Fatalf("bogus analyzer: %d %s", code, body)
	}

	// Unknown fields rejected like every other v1 route.
	code, body, _ = postJSON(t, ts.URL+"/v1/dag/place", `{"nope":1}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "bad_request") {
		t.Fatalf("unknown field: %d %s", code, body)
	}

	// Status reports the DAG block.
	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	resp.Body.Close()
	if st.DAG == nil || st.DAG.Placements != 1 {
		t.Fatalf("status dag block: %+v", st.DAG)
	}
}

// BenchmarkDAGAdmission measures end-to-end DAG admission+placement+
// removal throughput on an in-memory cluster (the figure benchrecord
// derives dag-admission ops/s from).
func BenchmarkDAGAdmission(b *testing.B) {
	c, err := NewCluster(ClusterConfig{Spec: testSpec, Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	d := testDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("dag-%d", i)
		res, err := c.PlaceDAG(nil, id, d, "")
		if err != nil || !res.Placed {
			b.Fatalf("PlaceDAG: %+v, %v", res, err)
		}
		if _, err := c.Remove(nil, id); err != nil {
			b.Fatal(err)
		}
	}
}
